// Tests for the extension subsystems: E2E protection, clock synchronization,
// holistic distributed analysis, PDU-router gateway, dual-channel FlexRay.
#include <gtest/gtest.h>

#include "analysis/holistic.hpp"
#include "bsw/e2e_protection.hpp"
#include "bsw/pdu_router.hpp"
#include "can/can_bus.hpp"
#include "flexray/dual_channel.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"
#include "ttp/clock_sync.hpp"

namespace {

using namespace orte;
using sim::Kernel;
using sim::Trace;
using sim::microseconds;
using sim::milliseconds;

// --- E2E protection -----------------------------------------------------------

TEST(E2eProtection, RoundTripOk) {
  bsw::E2eProtector tx({.data_id = 0x123});
  bsw::E2eChecker rx({.data_id = 0x123});
  for (int i = 0; i < 40; ++i) {  // multiple counter wraps
    const auto frame = tx.protect({1, 2, 3, static_cast<std::uint8_t>(i)});
    const auto r = rx.check(frame);
    ASSERT_EQ(r.status, bsw::E2eStatus::kOk) << "i=" << i;
    EXPECT_EQ(r.payload[3], static_cast<std::uint8_t>(i));
  }
  EXPECT_EQ(rx.ok_count(), 40u);
  EXPECT_EQ(rx.error_count(), 0u);
}

TEST(E2eProtection, CorruptionDetected) {
  bsw::E2eProtector tx({.data_id = 1});
  bsw::E2eChecker rx({.data_id = 1});
  auto frame = tx.protect({10, 20});
  frame[3] ^= 0x01;  // flip a payload bit
  EXPECT_EQ(rx.check(frame).status, bsw::E2eStatus::kWrongCrc);
}

TEST(E2eProtection, MasqueradingDetected) {
  bsw::E2eProtector wrong_sender({.data_id = 7});
  bsw::E2eChecker rx({.data_id = 8});
  EXPECT_EQ(rx.check(wrong_sender.protect({1})).status,
            bsw::E2eStatus::kWrongCrc);
}

TEST(E2eProtection, RepetitionDetected) {
  bsw::E2eProtector tx({.data_id = 1});
  bsw::E2eChecker rx({.data_id = 1});
  const auto frame = tx.protect({1});
  EXPECT_EQ(rx.check(frame).status, bsw::E2eStatus::kOk);
  EXPECT_EQ(rx.check(frame).status, bsw::E2eStatus::kRepeated);
}

TEST(E2eProtection, TolerableLossVsSequenceBreak) {
  bsw::E2eProtector tx({.data_id = 1});
  bsw::E2eChecker rx({.data_id = 1, .max_delta = 2});
  EXPECT_EQ(rx.check(tx.protect({1})).status, bsw::E2eStatus::kOk);
  (void)tx.protect({2});  // lost on the wire
  EXPECT_EQ(rx.check(tx.protect({3})).status, bsw::E2eStatus::kOkSomeLost);
  (void)tx.protect({4});
  (void)tx.protect({5});
  (void)tx.protect({6});
  EXPECT_EQ(rx.check(tx.protect({7})).status,
            bsw::E2eStatus::kWrongSequence);
}

TEST(E2eProtection, TruncatedFrameRejected) {
  bsw::E2eChecker rx({.data_id = 1});
  EXPECT_EQ(rx.check({0x01}).status, bsw::E2eStatus::kWrongCrc);
}

// --- Clock synchronization --------------------------------------------------------

TEST(ClockSync, FreeRunningClocksDiverge) {
  Kernel kernel;
  Trace trace;
  ttp::ClockSyncCluster cluster(kernel, trace,
                                {.nodes = 4, .max_drift_ppm = 100,
                                 .enable_sync = false, .seed = 3});
  cluster.start();
  kernel.run_until(sim::seconds(10));
  // 100 ppm over 10 s can diverge by up to 2 ms between extreme clocks.
  EXPECT_GT(cluster.precision(), sim::microseconds(200));
}

TEST(ClockSync, FtaBoundsPrecision) {
  Kernel kernel;
  Trace trace;
  ttp::ClockSyncCluster cluster(
      kernel, trace,
      {.nodes = 4, .max_drift_ppm = 100,
       .resync_interval = milliseconds(10), .seed = 3});
  cluster.start();
  kernel.run_until(sim::seconds(10));
  // Pi ~ 2*rho*R + eps = 2 * 1e-4 * 10ms + 1us = 3us; allow margin.
  EXPECT_LT(cluster.worst_precision(), microseconds(10));
  EXPECT_EQ(cluster.rounds(), 1000u);
}

TEST(ClockSync, ByzantineClockExcludedByFta) {
  Kernel kernel;
  Trace trace;
  ttp::ClockSyncCluster cluster(
      kernel, trace,
      {.nodes = 5, .max_drift_ppm = 100,
       .resync_interval = milliseconds(10), .fault_tolerance = 1,
       .seed = 9});
  cluster.inject_byzantine(2, milliseconds(5), sim::seconds(1));
  cluster.start();
  kernel.run_until(sim::seconds(5));
  // Healthy nodes stay mutually synchronized despite node 2's 5ms error.
  sim::Time lo = INT64_MAX, hi = INT64_MIN;
  for (std::size_t i = 0; i < 5; ++i) {
    if (i == 2) continue;
    lo = std::min(lo, cluster.local_time(i));
    hi = std::max(hi, cluster.local_time(i));
  }
  EXPECT_LT(hi - lo, microseconds(10));
  // And the byzantine node really is off.
  EXPECT_GT(cluster.local_time(2) - lo, milliseconds(4));
}

TEST(ClockSync, TooFewNodesForFtaRejected) {
  Kernel kernel;
  Trace trace;
  EXPECT_THROW(ttp::ClockSyncCluster(kernel, trace,
                                     {.nodes = 2, .fault_tolerance = 1}),
               std::invalid_argument);
}

// --- Holistic analysis ---------------------------------------------------------------

TEST(Holistic, SingleChainConverges) {
  analysis::HolisticModel model;
  model.add_task({.name = "sense", .ecu = "A", .wcet = milliseconds(1),
                  .period = milliseconds(10), .priority = 2});
  model.add_task({.name = "act", .ecu = "B", .wcet = milliseconds(1),
                  .priority = 2});
  model.add_message({.name = "m1", .id = 0x10, .bytes = 8,
                     .from_task = "sense", .to_task = "act"});
  const auto r = model.analyze(500'000);
  ASSERT_TRUE(r.schedulable);
  EXPECT_EQ(r.task_response.at("sense"), milliseconds(1));
  // m1: jitter 1ms + C 270us; act: jitter = R(m1), response = jitter + 1ms.
  EXPECT_EQ(r.message_response.at("m1"), milliseconds(1) + microseconds(270));
  EXPECT_EQ(r.chain_latency.at("sense"),
            milliseconds(1) + microseconds(270) + milliseconds(1));
  EXPECT_GE(r.iterations, 2);
}

TEST(Holistic, JitterCouplingRaisesInterference) {
  // Two chains sharing ECU B: the low-priority receiver suffers from the
  // high-priority receiver's inherited jitter.
  analysis::HolisticModel model;
  model.add_task({.name = "s1", .ecu = "A", .wcet = milliseconds(2),
                  .period = milliseconds(10), .priority = 2});
  model.add_task({.name = "s2", .ecu = "A", .wcet = milliseconds(1),
                  .period = milliseconds(20), .priority = 1});
  model.add_task({.name = "r1", .ecu = "B", .wcet = milliseconds(2),
                  .priority = 2});
  model.add_task({.name = "r2", .ecu = "B", .wcet = milliseconds(2),
                  .priority = 1});
  model.add_message({.name = "m1", .id = 0x10, .bytes = 8,
                     .from_task = "s1", .to_task = "r1"});
  model.add_message({.name = "m2", .id = 0x20, .bytes = 8,
                     .from_task = "s2", .to_task = "r2"});
  const auto r = model.analyze(500'000);
  ASSERT_TRUE(r.schedulable);
  // r2 sees r1's interference inflated by r1's jitter: its response exceeds
  // the jitter-free bound 2 + 2 = 4ms.
  EXPECT_GT(r.task_response.at("r2"), milliseconds(4));
  EXPECT_EQ(r.chain_latency.count("s1"), 1u);
  EXPECT_EQ(r.chain_latency.count("s2"), 1u);
  EXPECT_EQ(r.chain_latency.count("r1"), 0u);  // not a chain head
}

TEST(Holistic, OverloadedEcuUnschedulable) {
  analysis::HolisticModel model;
  model.add_task({.name = "a", .ecu = "X", .wcet = milliseconds(6),
                  .period = milliseconds(10), .priority = 2});
  model.add_task({.name = "b", .ecu = "X", .wcet = milliseconds(6),
                  .period = milliseconds(10), .priority = 1});
  const auto r = model.analyze(500'000);
  EXPECT_FALSE(r.schedulable);
}

TEST(Holistic, ChainBoundIsSafeAgainstSimulation) {
  // Cross-check the holistic bound against the executable system: the
  // integration-test control path (sense -> m -> act) simulated on the RTE
  // stack must stay within the holistic chain latency.
  analysis::HolisticModel model;
  model.add_task({.name = "sense", .ecu = "A", .wcet = microseconds(200),
                  .period = milliseconds(10), .priority = 1});
  model.add_task({.name = "act", .ecu = "B", .wcet = microseconds(200),
                  .priority = 1});
  model.add_message({.name = "m", .id = 0x100, .bytes = 8,
                     .from_task = "sense", .to_task = "act"});
  const auto r = model.analyze(500'000);
  ASSERT_TRUE(r.schedulable);
  // Simulated equivalent (see test_integration's ControlPath, 2 stages):
  // activation -> 200us task -> 270us frame -> 200us task = 670us, which the
  // holistic bound must dominate.
  EXPECT_GE(r.chain_latency.at("sense"), microseconds(670));
  EXPECT_LE(r.chain_latency.at("sense"), milliseconds(1));
}

TEST(Holistic, UnknownTaskInMessageRejected) {
  analysis::HolisticModel model;
  model.add_task({.name = "a", .ecu = "X", .wcet = 1,
                  .period = milliseconds(10), .priority = 1});
  EXPECT_THROW(model.add_message({.name = "m", .id = 1, .bytes = 1,
                                  .from_task = "a", .to_task = "ghost"}),
               std::invalid_argument);
}

// --- PDU router -------------------------------------------------------------------------

TEST(PduRouter, ForwardsAcrossBuses) {
  Kernel kernel;
  Trace trace;
  can::CanBus bus1(kernel, trace, {.name = "b1"});
  can::CanBus bus2(kernel, trace, {.name = "b2"});
  auto& src = bus1.attach();
  auto& gw_in = bus1.attach();
  auto& gw_out = bus2.attach();
  auto& dst = bus2.attach();
  bsw::PduRouter router(kernel, trace, "gw");
  router.add_route(gw_in, gw_out,
                   {.match_id = 0x30, .remap_id = std::uint32_t{0x40},
                    .processing = microseconds(500)});
  std::vector<std::pair<sim::Time, std::uint32_t>> rx;
  dst.on_receive([&](const net::Frame& f) {
    rx.emplace_back(kernel.now(), f.id);
  });
  kernel.schedule_at(0, [&] {
    net::Frame f;
    f.id = 0x30;
    f.name = "sig";
    f.payload.assign(4, 1);
    f.enqueued_at = kernel.now();
    src.send(std::move(f));
  });
  kernel.run_until(milliseconds(10));
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].second, 0x40u);  // remapped id
  // bus1 frame (190us, 4 bytes) + 500us gateway + bus2 frame (190us).
  EXPECT_EQ(rx[0].first, microseconds(190 + 500 + 190));
  EXPECT_EQ(router.frames_forwarded(), 1u);
}

TEST(PduRouter, NonMatchingIdsIgnored) {
  Kernel kernel;
  Trace trace;
  can::CanBus bus1(kernel, trace, {});
  can::CanBus bus2(kernel, trace, {});
  auto& src = bus1.attach();
  auto& gw_in = bus1.attach();
  auto& gw_out = bus2.attach();
  auto& dst = bus2.attach();
  bsw::PduRouter router(kernel, trace, "gw");
  router.add_route(gw_in, gw_out, {.match_id = 0x30});
  int rx = 0;
  dst.on_receive([&](const net::Frame&) { ++rx; });
  kernel.schedule_at(0, [&] {
    net::Frame f;
    f.id = 0x31;
    f.payload.assign(1, 0);
    src.send(std::move(f));
  });
  kernel.run_until(milliseconds(10));
  EXPECT_EQ(rx, 0);
  EXPECT_EQ(router.frames_forwarded(), 0u);
}

// --- Dual-channel FlexRay ------------------------------------------------------------------

flexray::FlexRayConfig dual_cfg() {
  flexray::FlexRayConfig cfg;
  cfg.static_slots = 4;
  cfg.static_payload_bytes = 8;
  cfg.minislots = 10;
  cfg.minislot_len = microseconds(2);
  cfg.network_idle = microseconds(10);
  return cfg;
}

TEST(DualChannel, DeduplicatesHealthyChannels) {
  Kernel kernel;
  Trace trace;
  flexray::DualChannelFlexRay bus(kernel, trace, dual_cfg());
  auto& tx = bus.attach();
  auto& rx = bus.attach();
  bus.assign_static_slot(1, tx);
  int rx_count = 0;
  rx.on_receive([&](const net::Frame&) { ++rx_count; });
  const auto cycle = bus.channel(0).cycle_len();
  kernel.schedule_periodic(0, cycle, [&] {
    net::Frame f;
    f.id = 1;
    f.payload.assign(8, 0x11);
    tx.send(std::move(f));
  });
  bus.start();
  kernel.run_until(10 * cycle);
  EXPECT_EQ(rx_count, 9);  // one logical delivery per cycle (cycle-1 offset)
  EXPECT_EQ(bus.redundant_receptions(), static_cast<std::uint64_t>(rx_count));
}

TEST(DualChannel, SurvivesSingleChannelFailure) {
  Kernel kernel;
  Trace trace;
  flexray::DualChannelFlexRay bus(kernel, trace, dual_cfg());
  auto& tx = bus.attach();
  auto& rx = bus.attach();
  bus.assign_static_slot(1, tx);
  int rx_count = 0;
  rx.on_receive([&](const net::Frame&) { ++rx_count; });
  const auto cycle = bus.channel(0).cycle_len();
  kernel.schedule_periodic(0, cycle, [&] {
    net::Frame f;
    f.id = 1;
    f.payload.assign(8, 0x22);
    tx.send(std::move(f));
  });
  // Channel A dark for the middle third of the run.
  bus.fail_channel(0, 3 * cycle, 6 * cycle);
  bus.start();
  kernel.run_until(10 * cycle);
  EXPECT_EQ(rx_count, 9);  // no logical frame lost
  EXPECT_GT(bus.channel(0).stats().frames_dropped(), 0u);
  EXPECT_LT(bus.redundant_receptions(),
            static_cast<std::uint64_t>(rx_count));  // B-only in the window
}

}  // namespace
