// Unit + property tests: Time-Triggered Ethernet switch — TT punctuality,
// RC policing, BE starvation, class priority at the egress port.
#include <gtest/gtest.h>

#include <vector>

#include "sim/kernel.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"
#include "tte/tte_switch.hpp"

namespace {

using namespace orte;
using namespace orte::tte;
using sim::Kernel;
using sim::Time;
using sim::Trace;
using sim::microseconds;
using sim::milliseconds;

struct Fixture {
  Kernel kernel;
  Trace trace;
  TteSwitch sw{kernel, trace, {}};
};

TEST(Tte, WireTimeIncludesEthernetOverhead) {
  Fixture f;
  // 100 bytes payload + 38 overhead = 138 bytes * 8 * 10ns = 11.04 us.
  EXPECT_EQ(f.sw.tx_time(100), 11'040);
  // Minimum frame: 84 bytes on the wire.
  EXPECT_EQ(f.sw.tx_time(1), 6'720);
}

TEST(Tte, TtFrameDeliveredAtScheduledInstant) {
  Fixture f;
  auto& a = f.sw.attach("a");
  auto& b = f.sw.attach("b");
  f.sw.add_flow({.id = 1, .cls = TrafficClass::kTimeTriggered, .source = 0,
                 .destination = 1, .bytes = 100,
                 .period = milliseconds(1), .offset = microseconds(100)});
  std::vector<Time> rx;
  b.on_receive([&](const TteFrame&) { rx.push_back(f.kernel.now()); });
  f.kernel.schedule_at(0, [&] { a.send(1, std::vector<std::uint8_t>(100)); });
  f.sw.start();
  f.kernel.run_until(milliseconds(1));
  ASSERT_EQ(rx.size(), 1u);
  // offset + ingress tx + switch latency + egress tx.
  EXPECT_EQ(rx[0], microseconds(100) + 11'040 + microseconds(2) + 11'040);
}

TEST(Tte, TtStateSemanticsLatestValueWins) {
  Fixture f;
  auto& a = f.sw.attach("a");
  auto& b = f.sw.attach("b");
  f.sw.add_flow({.id = 1, .cls = TrafficClass::kTimeTriggered, .source = 0,
                 .destination = 1, .bytes = 8,
                 .period = milliseconds(1), .offset = microseconds(500)});
  std::vector<std::uint8_t> got;
  b.on_receive([&](const TteFrame& fr) { got = fr.payload; });
  f.kernel.schedule_at(0, [&] {
    a.send(1, {0x01});
    a.send(1, {0x02});
  });
  f.sw.start();
  f.kernel.run_until(milliseconds(1));
  EXPECT_EQ(got, (std::vector<std::uint8_t>{0x02}));
  EXPECT_EQ(f.sw.frames_delivered(), 1u);
}

TEST(Tte, RcPolicerDropsBagViolations) {
  Fixture f;
  auto& a = f.sw.attach("a");
  auto& b = f.sw.attach("b");
  f.sw.add_flow({.id = 2, .cls = TrafficClass::kRateConstrained, .source = 0,
                 .destination = 1, .bytes = 100, .bag = milliseconds(1)});
  int rx = 0;
  b.on_receive([&](const TteFrame&) { ++rx; });
  f.sw.start();
  // Babbling RC talker: 10 frames within one BAG window.
  for (int i = 0; i < 10; ++i) {
    f.kernel.schedule_at(microseconds(10 * i),
                         [&] { a.send(2, std::vector<std::uint8_t>(100)); });
  }
  f.kernel.run_until(milliseconds(5));
  EXPECT_EQ(rx, 1);
  EXPECT_EQ(f.sw.policing_drops(), 9u);
}

TEST(Tte, RcConformingTrafficAllPasses) {
  Fixture f;
  auto& a = f.sw.attach("a");
  auto& b = f.sw.attach("b");
  f.sw.add_flow({.id = 2, .cls = TrafficClass::kRateConstrained, .source = 0,
                 .destination = 1, .bytes = 100, .bag = milliseconds(1)});
  int rx = 0;
  b.on_receive([&](const TteFrame&) { ++rx; });
  f.sw.start();
  f.kernel.schedule_periodic(0, milliseconds(1),
                             [&] { a.send(2, std::vector<std::uint8_t>(64)); });
  f.kernel.run_until(milliseconds(10) - 1);
  EXPECT_EQ(rx, 10);
  EXPECT_EQ(f.sw.policing_drops(), 0u);
}

TEST(Tte, EgressShufflingAndClassPriority) {
  Fixture f;
  auto& a = f.sw.attach("a");
  auto& dst = f.sw.attach("dst");
  f.sw.add_flow({.id = 1, .cls = TrafficClass::kTimeTriggered, .source = 0,
                 .destination = 1, .bytes = 100,
                 .period = milliseconds(1), .offset = microseconds(50)});
  f.sw.add_flow({.id = 2, .cls = TrafficClass::kRateConstrained, .source = 0,
                 .destination = 1, .bytes = 500, .bag = microseconds(100)});
  f.sw.add_flow({.id = 3, .cls = TrafficClass::kBestEffort, .source = 0,
                 .destination = 1, .bytes = 1000});
  std::vector<std::uint32_t> order;
  dst.on_receive([&](const TteFrame& fr) { order.push_back(fr.flow); });
  // Timeline: RC (500B) reaches the egress at ~45us and starts transmitting;
  // the TT frame (dispatched at 50us) arrives at ~63us mid-RC and must
  // *shuffle* (wait for RC to finish); the BE frame (1000B) arrives at ~85us.
  // When RC completes (~88us) the egress serves TT before BE.
  f.kernel.schedule_at(0, [&] {
    a.send(3, std::vector<std::uint8_t>(1000));  // BE
    a.send(2, std::vector<std::uint8_t>(500));   // RC
    a.send(1, std::vector<std::uint8_t>(100));   // TT (buffered for 50us)
  });
  f.sw.start();
  f.kernel.run_until(milliseconds(1) - 1);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2u);  // RC was already on the wire (shuffling)
  EXPECT_EQ(order[1], 1u);  // TT preempts the *queue*, not the wire
  EXPECT_EQ(order[2], 3u);  // BE goes last
}

TEST(Tte, ConfigurationErrorsRejected) {
  Fixture f;
  f.sw.attach("a");
  f.sw.attach("b");
  EXPECT_THROW(f.sw.add_flow({.id = 1, .source = 0, .destination = 7}),
               std::invalid_argument);
  EXPECT_THROW(
      f.sw.add_flow({.id = 1, .cls = TrafficClass::kTimeTriggered,
                     .source = 0, .destination = 1, .period = 0}),
      std::invalid_argument);
  EXPECT_THROW(
      f.sw.add_flow({.id = 1, .cls = TrafficClass::kRateConstrained,
                     .source = 0, .destination = 1, .bag = 0}),
      std::invalid_argument);
  f.sw.add_flow({.id = 1, .cls = TrafficClass::kBestEffort, .source = 0,
                 .destination = 1});
  EXPECT_THROW(f.sw.add_flow({.id = 1, .cls = TrafficClass::kBestEffort,
                              .source = 0, .destination = 1}),
               std::invalid_argument);
}

TEST(Tte, WrongSenderRejected) {
  Fixture f;
  f.sw.attach("a");
  auto& b = f.sw.attach("b");
  f.sw.add_flow({.id = 1, .cls = TrafficClass::kBestEffort, .source = 0,
                 .destination = 1});
  f.sw.start();
  EXPECT_THROW(b.send(1, {1}), std::logic_error);
}

// Property: TT latency is invariant under arbitrary best-effort load — the
// §4 non-interference requirement on TTE.
class TteTtInvariance : public ::testing::TestWithParam<int> {};

TEST_P(TteTtInvariance, TtLatencyUnaffectedByBestEffortLoad) {
  const int be_senders = GetParam();
  Kernel kernel;
  Trace trace;
  trace.enable_retention(false);
  TteSwitch sw(kernel, trace, {});
  auto& tt_src = sw.attach("tt_src");
  auto& dst = sw.attach("dst");
  std::vector<TteEndpoint*> be_eps;
  for (int i = 0; i < be_senders; ++i) {
    be_eps.push_back(&sw.attach("be" + std::to_string(i)));
  }
  sw.add_flow({.id = 1, .cls = TrafficClass::kTimeTriggered, .source = 0,
               .destination = 1, .bytes = 100,
               .period = milliseconds(1), .offset = microseconds(200)});
  for (int i = 0; i < be_senders; ++i) {
    sw.add_flow({.id = static_cast<std::uint32_t>(100 + i),
                 .cls = TrafficClass::kBestEffort, .source = 2 + i,
                 .destination = 1, .bytes = 1000});
  }
  kernel.schedule_periodic(0, milliseconds(1), [&] {
    tt_src.send(1, std::vector<std::uint8_t>(100));
  });
  sim::Rng rng(static_cast<std::uint64_t>(be_senders) + 1);
  for (int i = 0; i < be_senders; ++i) {
    TteEndpoint* ep = be_eps[static_cast<std::size_t>(i)];
    const std::uint32_t id = static_cast<std::uint32_t>(100 + i);
    kernel.schedule_periodic(
        rng.uniform(0, 100'000), microseconds(120),
        [ep, id] { ep->send(id, std::vector<std::uint8_t>(1000)); });
  }
  (void)dst;
  sw.start();
  kernel.run_until(sim::seconds(1));
  const auto& lat = sw.flow_latency_us(1);
  // Jitter bound: one maximum BE frame (1038B ~ 83us) of shuffling.
  EXPECT_LT(lat.max() - lat.min(), 85.0) << "be_senders=" << be_senders;
  EXPECT_GT(lat.count(), 900u);
}

INSTANTIATE_TEST_SUITE_P(BeLoad, TteTtInvariance,
                         ::testing::Values(0, 1, 2, 4, 8));

}  // namespace
