// Unit tests: ECU kernel — fixed-priority preemptive scheduling, priority
// ceilings, schedule tables, execution budgets and partitions.
#include <gtest/gtest.h>

#include <vector>

#include "os/ecu.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"

namespace {

using namespace orte::os;
using orte::sim::Kernel;
using orte::sim::Trace;
using orte::sim::microseconds;
using orte::sim::milliseconds;

struct Fixture {
  Kernel kernel;
  Trace trace;
  Ecu ecu{kernel, trace, "ecu0"};
};

TEST(Ecu, PeriodicTaskRunsEveryPeriod) {
  Fixture f;
  Task& t = f.ecu.add_task({.name = "t1", .priority = 1,
                            .period = milliseconds(10)});
  t.set_body(milliseconds(2));
  f.ecu.start();
  f.kernel.run_until(milliseconds(100));
  EXPECT_EQ(t.jobs_completed(), 10u);
  EXPECT_EQ(t.deadline_misses(), 0u);
  // Alone on the CPU: response == wcet.
  EXPECT_DOUBLE_EQ(t.response_times().max(), 2.0);
}

TEST(Ecu, HigherPriorityPreempts) {
  Fixture f;
  Task& lo = f.ecu.add_task({.name = "lo", .priority = 1,
                             .period = milliseconds(20)});
  lo.set_body(milliseconds(8));
  Task& hi = f.ecu.add_task({.name = "hi", .priority = 2,
                             .period = milliseconds(20),
                             .offset = milliseconds(2)});
  hi.set_body(milliseconds(3));
  f.ecu.start();
  f.kernel.run_until(milliseconds(20));
  // hi released at 2ms preempts lo; hi done at 5ms, lo resumes, done at 11ms.
  EXPECT_DOUBLE_EQ(hi.response_times().max(), 3.0);
  EXPECT_DOUBLE_EQ(lo.response_times().max(), 11.0);
}

TEST(Ecu, EqualPriorityDoesNotPreempt) {
  Fixture f;
  Task& a = f.ecu.add_task({.name = "a", .priority = 1,
                            .period = milliseconds(20)});
  a.set_body(milliseconds(5));
  Task& b = f.ecu.add_task({.name = "b", .priority = 1,
                            .period = milliseconds(20),
                            .offset = milliseconds(1)});
  b.set_body(milliseconds(5));
  f.ecu.start();
  f.kernel.run_until(milliseconds(20));
  // b must wait for a to finish: response = 5 + 5 - 1 = 9ms.
  EXPECT_DOUBLE_EQ(a.response_times().max(), 5.0);
  EXPECT_DOUBLE_EQ(b.response_times().max(), 9.0);
}

TEST(Ecu, ResponseTimeMatchesClassicExample) {
  // Three-task RM example: C = {1, 2, 3}, T = {4, 8, 16}.
  Fixture f;
  Task& t1 = f.ecu.add_task({.name = "t1", .priority = 3,
                             .period = milliseconds(4)});
  t1.set_body(milliseconds(1));
  Task& t2 = f.ecu.add_task({.name = "t2", .priority = 2,
                             .period = milliseconds(8)});
  t2.set_body(milliseconds(2));
  Task& t3 = f.ecu.add_task({.name = "t3", .priority = 1,
                             .period = milliseconds(16)});
  t3.set_body(milliseconds(3));
  f.ecu.start();
  f.kernel.run_until(milliseconds(160));
  EXPECT_DOUBLE_EQ(t1.response_times().max(), 1.0);
  EXPECT_DOUBLE_EQ(t2.response_times().max(), 3.0);
  EXPECT_DOUBLE_EQ(t3.response_times().max(), 7.0);  // R3 = 3 + 1*2 + 2*1
  EXPECT_EQ(t3.deadline_misses(), 0u);
}

TEST(Ecu, DeadlineMissDetected) {
  Fixture f;
  Task& t = f.ecu.add_task({.name = "t", .priority = 1,
                            .period = milliseconds(10),
                            .relative_deadline = milliseconds(5)});
  t.set_body(milliseconds(6));  // always misses the 5ms deadline
  f.ecu.start();
  f.kernel.run_until(milliseconds(50));
  EXPECT_EQ(t.jobs_completed(), 5u);
  EXPECT_EQ(t.deadline_misses(), 5u);
}

TEST(Ecu, BudgetKillStopsOverrunningJob) {
  Fixture f;
  Task& t = f.ecu.add_task({.name = "t", .priority = 1,
                            .period = milliseconds(10),
                            .budget = milliseconds(3),
                            .overrun_action = OverrunAction::kKillJob});
  t.set_body(milliseconds(7));
  f.ecu.start();
  f.kernel.run_until(milliseconds(50));
  EXPECT_EQ(t.jobs_completed(), 0u);
  EXPECT_EQ(t.jobs_killed(), 5u);
  // CPU time consumed per job is exactly the budget.
  EXPECT_NEAR(f.ecu.utilization(), 0.3, 1e-9);
}

TEST(Ecu, BudgetDoesNotFireWithinLimit) {
  Fixture f;
  Task& t = f.ecu.add_task({.name = "t", .priority = 1,
                            .period = milliseconds(10),
                            .budget = milliseconds(3),
                            .overrun_action = OverrunAction::kKillJob});
  t.set_body(milliseconds(3));  // exactly the budget: must complete
  f.ecu.start();
  f.kernel.run_until(milliseconds(50));
  EXPECT_EQ(t.jobs_completed(), 5u);
  EXPECT_EQ(t.jobs_killed(), 0u);
}

TEST(Ecu, BudgetWithoutEnforcementIsIgnored) {
  Fixture f;
  Task& t = f.ecu.add_task({.name = "t", .priority = 1,
                            .period = milliseconds(10),
                            .budget = milliseconds(3),
                            .overrun_action = OverrunAction::kNone});
  t.set_body(milliseconds(7));
  f.ecu.start();
  f.kernel.run_until(milliseconds(50));
  EXPECT_EQ(t.jobs_completed(), 5u);
  EXPECT_EQ(t.jobs_killed(), 0u);
}

TEST(Ecu, PartitionThrottlesWhenExhausted) {
  Fixture f;
  const int part = f.ecu.add_partition(
      {.name = "p0", .budget = milliseconds(2), .period = milliseconds(10)});
  Task& greedy = f.ecu.add_task({.name = "greedy", .priority = 2,
                                 .period = milliseconds(10),
                                 .partition = part});
  greedy.set_body(milliseconds(6));
  Task& victim = f.ecu.add_task({.name = "victim", .priority = 1,
                                 .period = milliseconds(10),
                                 .offset = milliseconds(1)});
  victim.set_body(milliseconds(3));
  f.ecu.start();
  f.kernel.run_until(milliseconds(100));
  // greedy gets only 2ms per 10ms window; victim (outside the partition)
  // still completes on time every period.
  EXPECT_EQ(victim.deadline_misses(), 0u);
  EXPECT_EQ(victim.jobs_completed(), 10u);
  EXPECT_GT(f.ecu.partition_throttles(part), 0u);
  EXPECT_LT(greedy.jobs_completed(), 10u);  // it keeps being throttled
}

TEST(Ecu, PartitionBudgetReplenishes) {
  Fixture f;
  const int part = f.ecu.add_partition(
      {.name = "p0", .budget = milliseconds(5), .period = milliseconds(10)});
  Task& t = f.ecu.add_task({.name = "t", .priority = 1,
                            .period = milliseconds(10), .partition = part});
  t.set_body(milliseconds(4));  // fits the 5ms budget every period
  f.ecu.start();
  f.kernel.run_until(milliseconds(100));
  EXPECT_EQ(t.jobs_completed(), 10u);
  EXPECT_EQ(f.ecu.partition_throttles(part), 0u);
}

TEST(Ecu, PriorityCeilingPreventsPriorityInversion) {
  Fixture f;
  const int res = f.ecu.add_resource("shared");
  // Low-priority task holds the resource for 4ms starting at t=0.
  Task& lo = f.ecu.add_task({.name = "lo", .priority = 1,
                             .period = milliseconds(100)});
  lo.add_segment({.duration = [] { return milliseconds(4); },
                  .resource = res});
  lo.add_segment({.duration = [] { return milliseconds(4); }});
  // Medium task would normally preempt lo's critical section...
  Task& mid = f.ecu.add_task({.name = "mid", .priority = 2,
                              .period = milliseconds(100),
                              .offset = milliseconds(1)});
  mid.set_body(milliseconds(10));
  // ...starving hi, which also uses the resource.
  Task& hi = f.ecu.add_task({.name = "hi", .priority = 3,
                             .period = milliseconds(100),
                             .offset = milliseconds(2)});
  hi.add_segment({.duration = [] { return milliseconds(2); },
                  .resource = res});
  f.ecu.start();
  f.kernel.run_until(milliseconds(100));
  // With the immediate ceiling protocol, lo runs its critical section at
  // ceiling priority (3): mid cannot interleave, so hi is blocked at most
  // lo's critical section (4ms - release offset 2ms = 2ms) + its own 2ms.
  EXPECT_DOUBLE_EQ(hi.response_times().max(), 4.0);
  // Without PCP, mid's 10ms would sit between lo's unlock and hi: R_hi > 10.
}

TEST(Ecu, ScheduleTableDispatchesAtOffsets) {
  Fixture f;
  Task& a = f.ecu.add_task({.name = "a", .priority = 1});
  a.set_body(milliseconds(1));
  Task& b = f.ecu.add_task({.name = "b", .priority = 1});
  b.set_body(milliseconds(1));
  f.ecu.set_schedule_table({{milliseconds(0), "a"}, {milliseconds(5), "b"}},
                           milliseconds(10));
  f.ecu.start();
  f.kernel.run_until(milliseconds(100));
  EXPECT_EQ(a.jobs_completed(), 10u);
  EXPECT_EQ(b.jobs_completed(), 10u);
  // Table-dispatched tasks never contend: every response == wcet.
  EXPECT_DOUBLE_EQ(a.response_times().max(), 1.0);
  EXPECT_DOUBLE_EQ(b.response_times().max(), 1.0);
  EXPECT_DOUBLE_EQ(a.response_times().min(), 1.0);
}

TEST(Ecu, ScheduleTableRejectsBadOffsets) {
  Fixture f;
  f.ecu.add_task({.name = "a", .priority = 1}).set_body(1);
  EXPECT_THROW(
      f.ecu.set_schedule_table({{milliseconds(15), "a"}}, milliseconds(10)),
      std::invalid_argument);
}

TEST(Ecu, EventActivationAndChaining) {
  Fixture f;
  Task& consumer = f.ecu.add_task({.name = "consumer", .priority = 2});
  consumer.set_body(microseconds(100));
  Task& producer = f.ecu.add_task({.name = "producer", .priority = 1,
                                   .period = milliseconds(10)});
  producer.set_body(milliseconds(1),
                    [&] { f.ecu.activate(consumer); });
  f.ecu.start();
  f.kernel.run_until(milliseconds(100));
  EXPECT_EQ(producer.jobs_completed(), 10u);
  EXPECT_EQ(consumer.jobs_completed(), 10u);
}

TEST(Ecu, ActivationQueueingAndLoss) {
  Fixture f;
  Task& slow = f.ecu.add_task(
      {.name = "slow", .priority = 1, .max_pending_activations = 1});
  slow.set_body(milliseconds(30));
  Task& trigger = f.ecu.add_task({.name = "trigger", .priority = 2,
                                  .period = milliseconds(10)});
  trigger.set_body(microseconds(10), [&] { f.ecu.activate(slow); });
  f.ecu.start();
  f.kernel.run_until(milliseconds(95));
  // 10 activations (0..90ms); each job takes 30ms => most overlap.
  EXPECT_GT(slow.activations_lost(), 0u);
  EXPECT_EQ(slow.activations(), 10u);
}

TEST(Ecu, MultiSegmentHooksRunInOrder) {
  Fixture f;
  std::vector<std::string> log;
  Task& t = f.ecu.add_task({.name = "t", .priority = 1,
                            .period = milliseconds(10)});
  t.add_segment({.duration = [] { return milliseconds(1); },
                 .before = [&] { log.push_back("b0"); },
                 .after = [&] { log.push_back("a0"); }});
  t.add_segment({.duration = [] { return milliseconds(1); },
                 .before = [&] { log.push_back("b1"); },
                 .after = [&] { log.push_back("a1"); }});
  f.ecu.start();
  f.kernel.run_until(milliseconds(9));  // before the t=10ms activation
  EXPECT_EQ(log, (std::vector<std::string>{"b0", "a0", "b1", "a1"}));
}

TEST(Ecu, ContextSwitchOverheadCharged) {
  Fixture f;
  f.ecu.set_context_switch_overhead(microseconds(100));
  Task& t = f.ecu.add_task({.name = "t", .priority = 1,
                            .period = milliseconds(10)});
  t.set_body(milliseconds(1));
  f.ecu.start();
  f.kernel.run_until(milliseconds(100));
  // Each job = 1ms body + 0.1ms switch-in.
  EXPECT_DOUBLE_EQ(t.response_times().max(), 1.1);
}

TEST(Ecu, UtilizationAccounting) {
  Fixture f;
  Task& t = f.ecu.add_task({.name = "t", .priority = 1,
                            .period = milliseconds(10)});
  t.set_body(milliseconds(4));
  f.ecu.start();
  f.kernel.run_until(milliseconds(100));
  EXPECT_NEAR(f.ecu.utilization(), 0.4, 1e-9);
}

TEST(Ecu, CompletionCallbackReportsTimes) {
  Fixture f;
  Task& t = f.ecu.add_task({.name = "t", .priority = 1,
                            .period = milliseconds(10)});
  t.set_body(milliseconds(2));
  std::vector<std::pair<orte::sim::Time, orte::sim::Time>> jobs;
  t.on_complete([&](orte::sim::Time act, orte::sim::Time done) {
    jobs.emplace_back(act, done);
  });
  f.ecu.start();
  f.kernel.run_until(milliseconds(25));
  ASSERT_EQ(jobs.size(), 3u);  // activations at 0, 10, 20 ms
  EXPECT_EQ(jobs[0].first, 0);
  EXPECT_EQ(jobs[0].second, milliseconds(2));
  EXPECT_EQ(jobs[1].first, milliseconds(10));
  EXPECT_EQ(jobs[2].second, milliseconds(22));
}

TEST(Ecu, ConfigurationErrorsThrow) {
  Fixture f;
  EXPECT_THROW(f.ecu.add_partition({.name = "p", .budget = 0, .period = 0}),
               std::invalid_argument);
  EXPECT_THROW(
      f.ecu.add_task({.name = "x", .priority = 0, .partition = 5}),
      std::invalid_argument);
  Task& bodyless = f.ecu.add_task({.name = "nobody", .priority = 0,
                                   .period = milliseconds(1)});
  (void)bodyless;
  EXPECT_THROW(
      {
        f.ecu.start();
        f.kernel.run_until(milliseconds(2));
      },
      std::logic_error);
}

TEST(Ecu, TraceEmitsLifecycleEvents) {
  Fixture f;
  Task& t = f.ecu.add_task({.name = "t", .priority = 1,
                            .period = milliseconds(10)});
  t.set_body(milliseconds(1));
  f.ecu.start();
  f.kernel.run_until(milliseconds(35));
  EXPECT_EQ(f.trace.count("task.activate", "t"), 4u);   // 0, 10, 20, 30 ms
  EXPECT_EQ(f.trace.count("task.complete", "t"), 4u);   // 1, 11, 21, 31 ms
}

}  // namespace
