// Tests for the second extension wave: inter-arrival timing protection,
// signal-to-frame packing, the DCM diagnostic services, and the LIN bus.
#include <gtest/gtest.h>

#include "analysis/frame_packing.hpp"
#include "bsw/dcm.hpp"
#include "bsw/dem.hpp"
#include "lin/lin_bus.hpp"
#include "os/ecu.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"

namespace {

using namespace orte;
using sim::Kernel;
using sim::Trace;
using sim::microseconds;
using sim::milliseconds;

// --- Inter-arrival timing protection -------------------------------------------

TEST(ArrivalProtection, BlocksBurstsKeepsNominalRate) {
  Kernel kernel;
  Trace trace;
  os::Ecu ecu(kernel, trace, "e");
  auto& victim = ecu.add_task({.name = "victim", .priority = 1,
                               .period = milliseconds(10),
                               .relative_deadline = milliseconds(10)});
  victim.set_body(milliseconds(4));
  auto& handler = ecu.add_task(
      {.name = "handler", .priority = 2,
       .min_interarrival = milliseconds(5)});
  handler.set_body(milliseconds(2));
  // A faulty interrupt source fires the handler every 500 us — 10x its
  // contract. Without protection the victim would starve (2ms per 0.5ms).
  kernel.schedule_periodic(0, microseconds(500),
                           [&] { ecu.activate(handler); });
  ecu.start();
  kernel.run_until(sim::seconds(1));
  // Rate clamped to one activation per 5 ms.
  EXPECT_LE(handler.activations(), 201u);
  EXPECT_GE(handler.activations(), 199u);
  EXPECT_GT(handler.arrivals_blocked(), 1500u);
  EXPECT_EQ(victim.deadline_misses(), 0u);
}

TEST(ArrivalProtection, DisabledByDefault) {
  Kernel kernel;
  Trace trace;
  os::Ecu ecu(kernel, trace, "e");
  auto& t = ecu.add_task({.name = "t", .priority = 1});
  t.set_body(microseconds(10));
  kernel.schedule_periodic(0, microseconds(500), [&] { ecu.activate(t); });
  ecu.start();
  kernel.run_until(milliseconds(10));
  EXPECT_EQ(t.arrivals_blocked(), 0u);
  EXPECT_EQ(t.activations(), 21u);  // 0, 0.5, ..., 10.0 ms inclusive
}

// --- Frame packing ----------------------------------------------------------------

TEST(FramePacking, PacksWithinCapacityAndPeriodGroups) {
  std::vector<analysis::PackSignal> sigs;
  for (int i = 0; i < 10; ++i) {
    sigs.push_back({"s10_" + std::to_string(i), 16, milliseconds(10)});
  }
  for (int i = 0; i < 4; ++i) {
    sigs.push_back({"s100_" + std::to_string(i), 8, milliseconds(100)});
  }
  const auto packed = analysis::pack_signals(sigs, 64, 500'000);
  // 10 x 16 bits at 10ms -> 160 bits -> 3 frames; 4 x 8 at 100ms -> 1 frame.
  EXPECT_EQ(packed.frames.size(), 4u);
  for (const auto& f : packed.frames) {
    EXPECT_LE(f.used_bits, 64u);
    // All signals in one frame share the period.
    EXPECT_TRUE(f.period == milliseconds(10) || f.period == milliseconds(100));
  }
}

TEST(FramePacking, BeatsNaivePacking) {
  std::vector<analysis::PackSignal> sigs;
  for (int i = 0; i < 20; ++i) {
    sigs.push_back({"s" + std::to_string(i), 8, milliseconds(10)});
  }
  const auto packed = analysis::pack_signals(sigs, 64, 500'000);
  const auto naive = analysis::pack_naive(sigs, 500'000);
  EXPECT_EQ(packed.frames.size(), 3u);   // 160 bits / 64
  EXPECT_EQ(naive.frames.size(), 20u);
  EXPECT_LT(packed.can_utilization, naive.can_utilization / 3);
}

TEST(FramePacking, OffsetsAreDisjoint) {
  std::vector<analysis::PackSignal> sigs{
      {"a", 12, milliseconds(10)}, {"b", 20, milliseconds(10)},
      {"c", 32, milliseconds(10)}, {"d", 1, milliseconds(10)}};
  const auto packed = analysis::pack_signals(sigs, 64, 500'000);
  ASSERT_EQ(packed.frames.size(), 2u);  // 65 bits total
  for (const auto& f : packed.frames) {
    for (std::size_t i = 0; i + 1 < f.offsets.size(); ++i) {
      EXPECT_LT(f.offsets[i], f.offsets[i + 1]);
    }
  }
}

TEST(FramePacking, RejectsInvalidSignals) {
  EXPECT_THROW(
      analysis::pack_signals({{"too_big", 65, milliseconds(10)}}, 64, 500'000),
      std::invalid_argument);
  EXPECT_THROW(analysis::pack_signals({{"no_period", 8, 0}}, 64, 500'000),
               std::invalid_argument);
}

// --- DCM ----------------------------------------------------------------------------

struct DcmFixture {
  Kernel kernel;
  Trace trace;
  bsw::Dem dem{kernel, trace};
  bsw::Dcm dcm{kernel, trace, dem};

  DcmFixture() {
    dem.add_event({.name = "sensor_open", .debounce_threshold = 1,
                   .dtc_code = 0x123456});
    dem.add_event({.name = "bus_off", .debounce_threshold = 1,
                   .dtc_code = 0xABCDEF});
  }
};

TEST(Dcm, SessionControl) {
  DcmFixture f;
  EXPECT_EQ(f.dcm.handle({0x10, 0x03}),
            (std::vector<std::uint8_t>{0x50, 0x03}));
  EXPECT_EQ(f.dcm.session(), bsw::Dcm::Session::kExtended);
  EXPECT_EQ(f.dcm.handle({0x10, 0x05}),
            (std::vector<std::uint8_t>{0x7F, 0x10, 0x12}));
}

TEST(Dcm, ReadDtcsReportsStoredCodes) {
  DcmFixture f;
  f.dem.report("sensor_open", bsw::EventStatus::kFailed);
  const auto resp = f.dcm.handle({0x19, 0x02, 0xFF});
  ASSERT_EQ(resp.size(), 3u + 4u);
  EXPECT_EQ(resp[0], 0x59);
  EXPECT_EQ(resp[3], 0x12);
  EXPECT_EQ(resp[4], 0x34);
  EXPECT_EQ(resp[5], 0x56);
  EXPECT_EQ(resp[6] & 0x08, 0x08);  // confirmedDTC bit
}

TEST(Dcm, ClearRequiresExtendedSession) {
  DcmFixture f;
  f.dem.report("bus_off", bsw::EventStatus::kFailed);
  EXPECT_EQ(f.dcm.handle({0x14, 0xFF, 0xFF, 0xFF}),
            (std::vector<std::uint8_t>{0x7F, 0x14, 0x7F}));
  EXPECT_TRUE(f.dem.dtc("bus_off").has_value());
  f.dcm.handle({0x10, 0x03});
  EXPECT_EQ(f.dcm.handle({0x14, 0xFF, 0xFF, 0xFF}),
            (std::vector<std::uint8_t>{0x54}));
  EXPECT_FALSE(f.dem.dtc("bus_off").has_value());
  EXPECT_TRUE(f.dem.stored_dtcs().empty());
}

TEST(Dcm, ReadDataByIdentifier) {
  DcmFixture f;
  f.dcm.add_did(0xF190, [] {  // VIN
    return std::vector<std::uint8_t>{'O', 'R', 'T', 'E'};
  });
  const auto resp = f.dcm.handle({0x22, 0xF1, 0x90});
  EXPECT_EQ(resp, (std::vector<std::uint8_t>{0x62, 0xF1, 0x90, 'O', 'R', 'T',
                                             'E'}));
  EXPECT_EQ(f.dcm.handle({0x22, 0x00, 0x01}),
            (std::vector<std::uint8_t>{0x7F, 0x22, 0x31}));
}

TEST(Dcm, TesterPresentAndUnknownService) {
  DcmFixture f;
  EXPECT_EQ(f.dcm.handle({0x3E, 0x00}),
            (std::vector<std::uint8_t>{0x7E, 0x00}));
  EXPECT_EQ(f.dcm.handle({0x99}),
            (std::vector<std::uint8_t>{0x7F, 0x99, 0x11}));
  EXPECT_EQ(f.dcm.handle({}),
            (std::vector<std::uint8_t>{0x7F, 0x00, 0x13}));
}

// --- LIN ------------------------------------------------------------------------------

struct LinFixture {
  Kernel kernel;
  Trace trace;
  lin::LinBus bus{kernel, trace, {}};
  lin::LinNode& master{bus.attach("master")};
  lin::LinNode& door{bus.attach("door")};
  lin::LinNode& mirror{bus.attach("mirror")};
};

net::Frame lin_frame(std::uint8_t id, std::vector<std::uint8_t> data) {
  net::Frame f;
  f.id = id;
  f.name = "lf" + std::to_string(id);
  f.payload = std::move(data);
  return f;
}

TEST(Lin, ScheduledPollDeliversPublishedResponse) {
  LinFixture f;
  f.bus.set_schedule({{.frame_id = 0x10, .publisher = 1, .bytes = 2},
                      {.frame_id = 0x11, .publisher = 2, .bytes = 2}});
  std::vector<std::pair<std::uint32_t, std::uint8_t>> rx;
  f.master.on_receive([&](const net::Frame& fr) {
    rx.emplace_back(fr.id, fr.payload[0]);
  });
  f.kernel.schedule_at(0, [&] {
    f.door.send(lin_frame(0x10, {0xD0, 0x01}));
    f.mirror.send(lin_frame(0x11, {0x31, 0x02}));
  });
  f.bus.start();
  f.kernel.run_until(f.bus.cycle_time() * 3);
  // State semantics: each slot re-publishes the latched value every cycle.
  ASSERT_GE(rx.size(), 4u);
  EXPECT_EQ(rx[0], (std::pair<std::uint32_t, std::uint8_t>{0x10, 0xD0}));
  EXPECT_EQ(rx[1], (std::pair<std::uint32_t, std::uint8_t>{0x11, 0x31}));
  EXPECT_EQ(f.bus.no_responses(), 0u);
}

TEST(Lin, SlotTimingFollowsSchedule) {
  LinFixture f;
  f.bus.set_schedule({{.frame_id = 0x10, .publisher = 1, .bytes = 2},
                      {.frame_id = 0x11, .publisher = 2, .bytes = 2}});
  std::vector<sim::Time> rx_times;
  f.master.on_receive([&](const net::Frame&) {
    rx_times.push_back(f.kernel.now());
  });
  f.kernel.schedule_at(0, [&] {
    f.door.send(lin_frame(0x10, {1, 2}));
    f.mirror.send(lin_frame(0x11, {3, 4}));
  });
  f.bus.start();
  f.kernel.run_until(f.bus.cycle_time());
  // frame_time(2B) = (34 + 30) bits at 19.2k = 64 * 52083ns.
  ASSERT_GE(rx_times.size(), 2u);
  EXPECT_EQ(rx_times[0], f.bus.frame_time(2));
  const auto slot0 = f.bus.slot_time({.frame_id = 0x10, .bytes = 2});
  EXPECT_EQ(rx_times[1], slot0 + f.bus.frame_time(2));
}

TEST(Lin, CrashedSlaveYieldsNoResponseSlots) {
  LinFixture f;
  f.bus.set_schedule({{.frame_id = 0x10, .publisher = 1, .bytes = 2}});
  f.kernel.schedule_at(0, [&] { f.door.send(lin_frame(0x10, {1, 2})); });
  f.door.crash_at(f.bus.cycle_time() * 5);
  f.bus.start();
  f.kernel.run_until(f.bus.cycle_time() * 10);
  EXPECT_GE(f.bus.no_responses(), 4u);
  EXPECT_GT(f.trace.count("lin.no_response", "door"), 0u);
}

TEST(Lin, ChecksumErrorsSuppressDelivery) {
  Kernel kernel;
  Trace trace;
  lin::LinBus bus(kernel, trace, {.checksum_error_rate = 0.5, .seed = 5});
  bus.attach("master");
  auto& slave = bus.attach("slave");
  bus.set_schedule({{.frame_id = 0x01, .publisher = 1, .bytes = 4}});
  kernel.schedule_at(0, [&] {
    net::Frame f;
    f.id = 0x01;
    f.payload.assign(4, 0xEE);
    slave.send(std::move(f));
  });
  bus.start();
  kernel.run_until(bus.cycle_time() * 100);
  EXPECT_GT(bus.checksum_errors(), 20u);
  EXPECT_GT(bus.stats().frames_delivered(), 20u);
  EXPECT_EQ(bus.stats().frames_delivered() + bus.checksum_errors(), 100u);
}

TEST(Lin, ConfigurationErrorsRejected) {
  LinFixture f;
  EXPECT_THROW(f.door.send(lin_frame(0x70, {1})), std::invalid_argument);
  EXPECT_THROW(f.door.send(lin_frame(0x10, {})), std::invalid_argument);
  f.bus.set_schedule({{.frame_id = 0x10, .publisher = 1, .bytes = 2}});
  // Publishing an id owned by another node:
  EXPECT_THROW(f.mirror.send(lin_frame(0x10, {1, 2})), std::logic_error);
  EXPECT_THROW(f.bus.set_schedule({{.frame_id = 0x90}}),
               std::invalid_argument);
}

}  // namespace
