// Unit tests: static model validator (rules V1..V12), the Diagnostics API
// and the SARIF exporter.
//
// Each rule gets at least one deliberately broken model plus, where the rule
// separates safe from unsafe variants (V4 explicit vs implicit accesses,
// V8 transitive range overlap, V12 dead vs live relay chains), the passing
// twin of the broken model.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "contracts/contract.hpp"
#include "fi/fault.hpp"
#include "fi/workloads.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"
#include "validation/detectability.hpp"
#include "validation/sarif.hpp"
#include "validation/validator.hpp"
#include "vfb/model.hpp"
#include "vfb/system.hpp"

namespace {

using namespace orte::vfb;
using orte::contracts::Contract;
using orte::contracts::FlowSpec;
using orte::contracts::Interval;
using orte::sim::Kernel;
using orte::sim::Trace;
using orte::sim::milliseconds;
using orte::validation::Diagnostics;
using orte::validation::Severity;
using orte::validation::Validator;

PortInterface value_interface(std::string name) {
  PortInterface i;
  i.name = std::move(name);
  i.kind = PortInterface::Kind::kSenderReceiver;
  i.elements.push_back(DataElement{"val", 64, 0, false});
  return i;
}

PortInterface calc_interface(std::string name) {
  PortInterface i;
  i.name = std::move(name);
  i.kind = PortInterface::Kind::kClientServer;
  i.operations.push_back(Operation{"op", milliseconds(1)});
  return i;
}

Runnable timing_runnable(std::string name, orte::sim::Duration period) {
  Runnable r;
  r.name = std::move(name);
  r.trigger = RunnableTrigger::timing(period);
  return r;
}

/// Producer -> consumer over one connector; access kinds parameterized so the
/// same topology can be the V4 hazard or its safe implicit twin.
Composition pipeline(DataAccessKind write_kind, DataAccessKind read_kind) {
  Composition c;
  c.add_interface(value_interface("IVal"));
  Runnable produce = timing_runnable("produce", milliseconds(5));
  produce.accesses.push_back({"out", "val", write_kind});
  Runnable consume = timing_runnable("consume", milliseconds(10));
  consume.accesses.push_back({"in", "val", read_kind});
  c.add_type({"Producer", {Port{"out", "IVal", PortDirection::kProvided}},
              {produce}});
  c.add_type({"Consumer", {Port{"in", "IVal", PortDirection::kRequired}},
              {consume}});
  c.add_instance({"p", "Producer"});
  c.add_instance({"k", "Consumer"});
  c.add_connector({"p", "out", "k", "in"});
  return c;
}

DeploymentPlan same_ecu_plan() {
  DeploymentPlan plan;
  plan.instances["p"] = {.ecu = "E"};
  plan.instances["k"] = {.ecu = "E"};
  return plan;
}

bool has_rule(const Diagnostics& d, std::string_view rule) {
  return !d.by_rule(rule).empty();
}

// --- Diagnostics container -----------------------------------------------------

TEST(Diagnostics, RendersErrorsBeforeWarningsBeforeInfos) {
  Diagnostics d;
  d.add("V3", Severity::kInfo, "a.b", "dead element");
  d.add("V4", Severity::kWarning, "c.d", "race", "buffer it");
  d.add("V1", Severity::kError, "e.f", "dangling");
  const std::string report = d.render();
  const auto err = report.find("error[V1]");
  const auto warn = report.find("warning[V4]");
  const auto info = report.find("info[V3]");
  ASSERT_NE(err, std::string::npos);
  ASSERT_NE(warn, std::string::npos);
  ASSERT_NE(info, std::string::npos);
  EXPECT_LT(err, warn);
  EXPECT_LT(warn, info);
  EXPECT_NE(report.find("(hint: buffer it)"), std::string::npos);
}

TEST(Diagnostics, CountsAndFilters) {
  Diagnostics d;
  EXPECT_TRUE(d.empty());
  EXPECT_FALSE(d.has_errors());
  d.add("V2", Severity::kError, "x", "one");
  d.add("V2", Severity::kError, "y", "two");
  d.add("V5", Severity::kWarning, "z", "three");
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.count(Severity::kError), 2u);
  EXPECT_TRUE(d.has_errors());
  EXPECT_EQ(d.by_rule("V2").size(), 2u);
  EXPECT_EQ(d.rules(), (std::vector<std::string>{"V2", "V5"}));
}

// --- V1: dangling references ---------------------------------------------------

TEST(ValidatorV1, DanglingNamesAreCollectedNotThrown) {
  Composition c;
  c.add_type({"T", {Port{"out", "INope", PortDirection::kProvided}}, {}});
  c.add_instance({"a", "T"});
  c.add_instance({"b", "Ghost"});
  c.add_connector({"a", "out", "zombie", "in"});
  const Diagnostics d = orte::validation::validate(c);
  ASSERT_TRUE(has_rule(d, "V1"));
  EXPECT_GE(d.by_rule("V1").size(), 3u);  // interface, type, connector end
  EXPECT_NE(d.render().find("unknown interface INope"), std::string::npos);
  EXPECT_NE(d.render().find("unknown component type Ghost"),
            std::string::npos);
}

TEST(ValidatorV1, MissingDeploymentIsAnError) {
  Composition c = pipeline(DataAccessKind::kImplicitWrite,
                           DataAccessKind::kImplicitRead);
  DeploymentPlan plan;
  plan.instances["p"] = {.ecu = "E"};  // "k" left unmapped
  plan.instances["stranger"] = {.ecu = "E"};
  const Diagnostics d = orte::validation::validate(c, plan);
  ASSERT_TRUE(d.has_errors());
  EXPECT_NE(d.render().find("no deployment for instance k"),
            std::string::npos);
  // Deployment of a non-existent instance is only a warning.
  EXPECT_NE(d.render().find("deployment for unknown instance stranger"),
            std::string::npos);
}

TEST(ValidatorV1, UnknownPartitionIsAnError) {
  Composition c = pipeline(DataAccessKind::kImplicitWrite,
                           DataAccessKind::kImplicitRead);
  DeploymentPlan plan = same_ecu_plan();
  plan.instances["p"].partition = "safety";  // never declared
  const Diagnostics d = orte::validation::validate(c, plan);
  ASSERT_TRUE(d.has_errors());
  EXPECT_NE(d.render().find("unknown partition safety"), std::string::npos);
}

// --- V2: connector and access typing -------------------------------------------

TEST(ValidatorV2, InterfaceMismatchNamesTheElementDelta) {
  Composition c;
  c.add_interface(value_interface("IVal"));
  PortInterface wide = value_interface("IWide");
  wide.elements.push_back(DataElement{"extra", 8, 0, false});
  c.add_interface(wide);
  c.add_type({"A", {Port{"out", "IWide", PortDirection::kProvided}}, {}});
  c.add_type({"B", {Port{"in", "IVal", PortDirection::kRequired}}, {}});
  c.add_instance({"a", "A"});
  c.add_instance({"b", "B"});
  c.add_connector({"a", "out", "b", "in"});
  const Diagnostics d = orte::validation::validate(c);
  ASSERT_TRUE(has_rule(d, "V2"));
  EXPECT_NE(d.render().find("element-set disagreement: -extra"),
            std::string::npos);
}

TEST(ValidatorV2, AllViolationsReportedInOnePass) {
  // One model, three distinct V2 defects: reversed connector, write on a
  // required port, read on a provided port. The old first-error-wins
  // validate() would have surfaced exactly one of these.
  Composition c;
  c.add_interface(value_interface("IVal"));
  Runnable bad = timing_runnable("bad", milliseconds(10));
  bad.accesses.push_back({"in", "val", DataAccessKind::kExplicitWrite});
  bad.accesses.push_back({"out", "val", DataAccessKind::kExplicitRead});
  c.add_type({"A",
              {Port{"out", "IVal", PortDirection::kProvided},
               Port{"in", "IVal", PortDirection::kRequired}},
              {bad}});
  c.add_instance({"a1", "A"});
  c.add_instance({"a2", "A"});
  c.add_connector({"a1", "in", "a2", "out"});  // both ends reversed
  const Diagnostics d = orte::validation::validate(c);
  EXPECT_GE(d.by_rule("V2").size(), 4u);
  EXPECT_EQ(d.count(Severity::kError), d.by_rule("V2").size());
}

TEST(ValidatorV2, CrossEcuClientServerIsAnError) {
  Composition c;
  c.add_interface(calc_interface("ICalc"));
  Runnable r = timing_runnable("r", milliseconds(10));
  r.server_calls.push_back("req.op");
  c.add_type({"Server", {Port{"srv", "ICalc", PortDirection::kProvided}}, {}});
  c.add_type({"Client", {Port{"req", "ICalc", PortDirection::kRequired}},
              {r}});
  c.set_operation_handler("Server", "srv", "op",
                          [](std::uint64_t v) { return v; });
  c.add_instance({"s", "Server"});
  c.add_instance({"cl", "Client"});
  c.add_connector({"s", "srv", "cl", "req"});
  DeploymentPlan plan;
  plan.instances["s"] = {.ecu = "A"};
  plan.instances["cl"] = {.ecu = "B"};
  const Diagnostics d = orte::validation::validate(c, plan);
  ASSERT_TRUE(d.has_errors());
  EXPECT_NE(d.render().find("client-server connector spans ECUs"),
            std::string::npos);
  // Same plan on one ECU: clean.
  plan.instances["cl"] = {.ecu = "A"};
  EXPECT_FALSE(orte::validation::validate(c, plan).has_errors());
}

// --- V3: connectivity ----------------------------------------------------------

TEST(ValidatorV3, ReadButUnconnectedRequiredPortWarns) {
  Composition c;
  c.add_interface(value_interface("IVal"));
  Runnable consume = timing_runnable("consume", milliseconds(10));
  consume.accesses.push_back({"in", "val", DataAccessKind::kImplicitRead});
  c.add_type({"Consumer", {Port{"in", "IVal", PortDirection::kRequired}},
              {consume}});
  c.add_instance({"k", "Consumer"});
  const Diagnostics d = orte::validation::validate(c);
  EXPECT_FALSE(d.has_errors());
  const auto v3 = d.by_rule("V3");
  ASSERT_FALSE(v3.empty());
  EXPECT_EQ(v3.front()->severity, Severity::kWarning);
  EXPECT_NE(v3.front()->message.find("init value"), std::string::npos);
}

TEST(ValidatorV3, DeadElementsReportedAsInfo) {
  // Connector carries "val" but nobody writes and nobody reads it.
  Composition c = pipeline(DataAccessKind::kImplicitWrite,
                           DataAccessKind::kImplicitRead);
  Composition dead;
  dead.add_interface(value_interface("IVal"));
  dead.add_type({"Producer", {Port{"out", "IVal", PortDirection::kProvided}},
                 {}});
  dead.add_type({"Consumer", {Port{"in", "IVal", PortDirection::kRequired}},
                 {}});
  dead.add_instance({"p", "Producer"});
  dead.add_instance({"k", "Consumer"});
  dead.add_connector({"p", "out", "k", "in"});
  const Diagnostics d = orte::validation::validate(dead);
  EXPECT_FALSE(d.has_errors());
  EXPECT_GE(d.by_rule("V3").size(), 2u);  // never written + never read
  EXPECT_EQ(d.count(Severity::kInfo), d.size());
  // The live pipeline has no V3 findings at all.
  EXPECT_FALSE(has_rule(orte::validation::validate(c), "V3"));
}

TEST(ValidatorV3, ServerCallOnUnconnectedPortIsAnError) {
  Composition c;
  c.add_interface(calc_interface("ICalc"));
  Runnable r = timing_runnable("r", milliseconds(10));
  r.server_calls.push_back("req.op");
  c.add_type({"Client", {Port{"req", "ICalc", PortDirection::kRequired}},
              {r}});
  c.add_instance({"cl", "Client"});
  const Diagnostics d = orte::validation::validate(c);
  ASSERT_TRUE(d.has_errors());
  EXPECT_NE(d.render().find("server call on unconnected port cl.req"),
            std::string::npos);
}

// --- V4: cross-task data races -------------------------------------------------

TEST(ValidatorV4, ExplicitCrossPriorityAccessIsATornReadHazard) {
  const Composition c = pipeline(DataAccessKind::kExplicitWrite,
                                 DataAccessKind::kExplicitRead);
  const Diagnostics d = orte::validation::validate(c, same_ecu_plan());
  EXPECT_FALSE(d.has_errors());  // warning, not error: generation proceeds
  const auto v4 = d.by_rule("V4");
  ASSERT_EQ(v4.size(), 1u);
  EXPECT_EQ(v4.front()->severity, Severity::kWarning);
  EXPECT_EQ(v4.front()->subject, "k.in.val");
  // The message names the preempting and preempted generated tasks: the 5 ms
  // producer task outranks the 10 ms consumer task rate-monotonically.
  EXPECT_NE(v4.front()->message.find("torn-read"), std::string::npos);
  EXPECT_NE(v4.front()->message.find("tk|p|" +
                                     std::to_string(milliseconds(5))),
            std::string::npos);
  EXPECT_NE(v4.front()->message.find("tk|k|" +
                                     std::to_string(milliseconds(10))),
            std::string::npos);
}

TEST(ValidatorV4, ImplicitAccessesPassClean) {
  const Composition c = pipeline(DataAccessKind::kImplicitWrite,
                                 DataAccessKind::kImplicitRead);
  EXPECT_FALSE(has_rule(orte::validation::validate(c, same_ecu_plan()), "V4"));
  // Mixed: only one side buffered still races through the live slot? No —
  // the implicit side never touches the slot mid-execution.
  const Composition half = pipeline(DataAccessKind::kExplicitWrite,
                                    DataAccessKind::kImplicitRead);
  EXPECT_FALSE(
      has_rule(orte::validation::validate(half, same_ecu_plan()), "V4"));
}

TEST(ValidatorV4, CrossEcuOrSameTaskPairsDoNotRace) {
  const Composition c = pipeline(DataAccessKind::kExplicitWrite,
                                 DataAccessKind::kExplicitRead);
  DeploymentPlan split;
  split.instances["p"] = {.ecu = "A"};
  split.instances["k"] = {.ecu = "B"};
  EXPECT_FALSE(has_rule(orte::validation::validate(c, split), "V4"));
}

TEST(ValidatorV4, TimeTriggeredDispatchSerializesPeriodicPairs) {
  const Composition c = pipeline(DataAccessKind::kExplicitWrite,
                                 DataAccessKind::kExplicitRead);
  DeploymentPlan plan = same_ecu_plan();
  plan.scheduling = SchedulingPolicy::kTimeTriggered;
  EXPECT_FALSE(has_rule(orte::validation::validate(c, plan), "V4"));
}

TEST(ValidatorV4, EventTaskReaderStillRacesUnderTimeTriggered) {
  Composition c;
  c.add_interface(value_interface("IVal"));
  Runnable produce = timing_runnable("produce", milliseconds(5));
  produce.accesses.push_back({"out", "val", DataAccessKind::kExplicitWrite});
  Runnable on_val;
  on_val.name = "on_val";
  on_val.trigger = RunnableTrigger::data_received("in", "val");
  on_val.accesses.push_back({"in", "val", DataAccessKind::kExplicitRead});
  c.add_type({"Producer", {Port{"out", "IVal", PortDirection::kProvided}},
              {produce}});
  c.add_type({"Consumer", {Port{"in", "IVal", PortDirection::kRequired}},
              {on_val}});
  c.add_instance({"p", "Producer"});
  c.add_instance({"k", "Consumer"});
  c.add_connector({"p", "out", "k", "in"});
  DeploymentPlan plan = same_ecu_plan();
  plan.scheduling = SchedulingPolicy::kTimeTriggered;
  // The event task is not table-dispatched: it preempts the TT frame.
  EXPECT_TRUE(has_rule(orte::validation::validate(c, plan), "V4"));
}

TEST(ValidatorV4, TwoExplicitWritersAreALostUpdateHazard) {
  Composition c;
  c.add_interface(value_interface("IVal"));
  Runnable fast = timing_runnable("fast", milliseconds(5));
  fast.accesses.push_back({"out", "val", DataAccessKind::kExplicitWrite});
  Runnable slow = timing_runnable("slow", milliseconds(20));
  slow.accesses.push_back({"out", "val", DataAccessKind::kExplicitWrite});
  c.add_type({"Producer", {Port{"out", "IVal", PortDirection::kProvided}},
              {fast, slow}});
  c.add_instance({"p", "Producer"});
  DeploymentPlan plan;
  plan.instances["p"] = {.ecu = "E"};
  const Diagnostics d = orte::validation::validate(c, plan);
  const auto v4 = d.by_rule("V4");
  ASSERT_EQ(v4.size(), 1u);
  EXPECT_NE(v4.front()->message.find("lost-update"), std::string::npos);
  EXPECT_EQ(v4.front()->subject, "p.out.val");
}

// --- V5: timing sanity ---------------------------------------------------------

TEST(ValidatorV5, ZeroPeriodAndWcetOverrunAndBadTrigger) {
  Composition c;
  c.add_interface(value_interface("IVal"));
  Runnable no_period = timing_runnable("no_period", 0);
  Runnable overrun = timing_runnable("overrun", milliseconds(5));
  overrun.wcet_bound = milliseconds(7);
  Runnable on_out;
  on_out.name = "on_out";
  on_out.trigger = RunnableTrigger::data_received("out", "val");
  c.add_type({"T",
              {Port{"out", "IVal", PortDirection::kProvided},
               Port{"in", "IVal", PortDirection::kRequired}},
              {no_period, overrun, on_out}});
  c.add_instance({"t", "T"});
  const Diagnostics d = orte::validation::validate(c);
  const auto v5 = d.by_rule("V5");
  ASSERT_EQ(v5.size(), 3u);
  EXPECT_NE(d.render().find("timing runnable no_period has no period"),
            std::string::npos);
  EXPECT_NE(d.render().find("wcet_bound >= trigger period"),
            std::string::npos);
  EXPECT_NE(d.render().find("data-received trigger on provided port"),
            std::string::npos);
}

TEST(ValidatorV5, BudgetBelowWcetWarns) {
  Composition c = pipeline(DataAccessKind::kImplicitWrite,
                           DataAccessKind::kImplicitRead);
  DeploymentPlan plan = same_ecu_plan();
  plan.instances["p"].budget = milliseconds(1);
  // Producer runnable declares a WCET bound above its budget.
  Composition c2;
  c2.add_interface(value_interface("IVal"));
  Runnable produce = timing_runnable("produce", milliseconds(5));
  produce.wcet_bound = milliseconds(2);
  produce.accesses.push_back({"out", "val", DataAccessKind::kImplicitWrite});
  c2.add_type({"Producer", {Port{"out", "IVal", PortDirection::kProvided}},
               {produce}});
  c2.add_instance({"p", "Producer"});
  DeploymentPlan plan2;
  plan2.instances["p"] = {.ecu = "E", .budget = milliseconds(1)};
  const Diagnostics d = orte::validation::validate(c2, plan2);
  EXPECT_FALSE(d.has_errors());
  ASSERT_TRUE(has_rule(d, "V5"));
  EXPECT_NE(d.render().find("budget is below"), std::string::npos);
}

// --- V6: client-server call cycles ---------------------------------------------

TEST(ValidatorV6, CallCycleIsDetectedAndPrinted) {
  Composition c;
  c.add_interface(calc_interface("ICalc"));
  Runnable r = timing_runnable("r", milliseconds(10));
  r.server_calls.push_back("req.op");
  c.add_type({"Node",
              {Port{"srv", "ICalc", PortDirection::kProvided},
               Port{"req", "ICalc", PortDirection::kRequired}},
              {r}});
  c.set_operation_handler("Node", "srv", "op",
                          [](std::uint64_t v) { return v; });
  c.add_instance({"a", "Node"});
  c.add_instance({"b", "Node"});
  c.add_connector({"a", "srv", "b", "req"});  // b calls a
  c.add_connector({"b", "srv", "a", "req"});  // a calls b
  const Diagnostics d = orte::validation::validate(c);
  const auto v6 = d.by_rule("V6");
  ASSERT_FALSE(v6.empty());
  EXPECT_EQ(v6.front()->severity, Severity::kError);
  EXPECT_NE(v6.front()->message.find("call cycle"), std::string::npos);
  EXPECT_NE(v6.front()->message.find(" -> "), std::string::npos);
}

TEST(ValidatorV6, AcyclicCallChainPasses) {
  Composition c;
  c.add_interface(calc_interface("ICalc"));
  Runnable r = timing_runnable("r", milliseconds(10));
  r.server_calls.push_back("req.op");
  c.add_type({"Client", {Port{"req", "ICalc", PortDirection::kRequired}},
              {r}});
  c.add_type({"Server", {Port{"srv", "ICalc", PortDirection::kProvided}}, {}});
  c.set_operation_handler("Server", "srv", "op",
                          [](std::uint64_t v) { return v + 1; });
  c.add_instance({"cl", "Client"});
  c.add_instance({"s", "Server"});
  c.add_connector({"s", "srv", "cl", "req"});
  EXPECT_FALSE(has_rule(orte::validation::validate(c), "V6"));
}

// --- V7: contract compatibility -------------------------------------------------

TEST(ValidatorV7, IncompatibleContractsFlagged) {
  const Composition c = pipeline(DataAccessKind::kImplicitWrite,
                                 DataAccessKind::kImplicitRead);
  Contract producer{.name = "CProd"};
  producer.guarantees.push_back(
      FlowSpec{.flow = "out.val", .range = Interval{0, 100}});
  Contract consumer{.name = "CCons"};
  consumer.assumptions.push_back(
      FlowSpec{.flow = "in.val", .range = Interval{0, 50}});
  const Diagnostics d = Validator(c)
                            .with_contract("p", producer)
                            .with_contract("k", consumer)
                            .run();
  const auto v7 = d.by_rule("V7");
  ASSERT_FALSE(v7.empty());
  EXPECT_EQ(v7.front()->severity, Severity::kError);
  EXPECT_NE(v7.front()->message.find("CProd"), std::string::npos);

  // Widening the assumption restores compatibility.
  Contract tolerant{.name = "CCons"};
  tolerant.assumptions.push_back(
      FlowSpec{.flow = "in.val", .range = Interval{-1000, 1000}});
  EXPECT_FALSE(has_rule(Validator(c)
                            .with_contract("p", producer)
                            .with_contract("k", tolerant)
                            .run(),
                        "V7"));
}

// --- Strict mode ----------------------------------------------------------------

TEST(ValidatorStrict, SystemConstructionRendersTheFullReport) {
  Composition c = pipeline(DataAccessKind::kImplicitWrite,
                           DataAccessKind::kImplicitRead);
  c.add_instance({"ghost", "NoSuchType"});
  DeploymentPlan plan = same_ecu_plan();  // ghost also lacks a deployment
  Kernel kernel;
  Trace trace;
  try {
    System sys(kernel, trace, c, plan);
    FAIL() << "construction should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("model validation failed"), std::string::npos);
    // Both defects appear in one exception, each with its rule ID.
    EXPECT_NE(msg.find("error[V1]"), std::string::npos);
    EXPECT_NE(msg.find("NoSuchType"), std::string::npos);
    EXPECT_NE(msg.find("no deployment for instance ghost"),
              std::string::npos);
  }
}

TEST(ValidatorStrict, WarningsDoNotBlockGeneration) {
  // The explicit-access pipeline carries a V4 race warning; strict mode
  // still generates the system.
  const Composition c = pipeline(DataAccessKind::kExplicitWrite,
                                 DataAccessKind::kExplicitRead);
  Kernel kernel;
  Trace trace;
  EXPECT_NO_THROW(System(kernel, trace, c, same_ecu_plan()));
}

// --- V8: transitive flow ranges --------------------------------------------------

/// Producer -> relay -> consumer; the relay has no contract, so the pairwise
/// V7 check cannot relate the producer's guarantee to the consumer's
/// assumption — only the transitive V8 propagation can.
Composition relay_chain() {
  Composition c;
  c.add_interface(value_interface("IVal"));
  Runnable produce = timing_runnable("produce", milliseconds(5));
  produce.accesses.push_back({"out", "val", DataAccessKind::kImplicitWrite});
  Runnable relay = timing_runnable("relay", milliseconds(5));
  relay.accesses.push_back({"in", "val", DataAccessKind::kImplicitRead});
  relay.accesses.push_back({"out", "val", DataAccessKind::kImplicitWrite});
  Runnable consume = timing_runnable("consume", milliseconds(10));
  consume.accesses.push_back({"in", "val", DataAccessKind::kImplicitRead});
  c.add_type({"Producer", {Port{"out", "IVal", PortDirection::kProvided}},
              {produce}});
  c.add_type({"Relay",
              {Port{"in", "IVal", PortDirection::kRequired},
               Port{"out", "IVal", PortDirection::kProvided}},
              {relay}});
  c.add_type({"Consumer", {Port{"in", "IVal", PortDirection::kRequired}},
              {consume}});
  c.add_instance({"p", "Producer"});
  c.add_instance({"r", "Relay"});
  c.add_instance({"k", "Consumer"});
  c.add_connector({"p", "out", "r", "in"});
  c.add_connector({"r", "out", "k", "in"});
  return c;
}

TEST(ValidatorV8, TransitiveEmptyIntersectionIsAnError) {
  Contract producer{.name = "CProd"};
  producer.guarantees.push_back(
      FlowSpec{.flow = "out.val", .range = Interval{0, 100}});
  Contract consumer{.name = "CCons"};
  consumer.assumptions.push_back(
      FlowSpec{.flow = "in.val", .range = Interval{200, 300}});
  const Diagnostics d = Validator(relay_chain())
                            .with_contract("p", producer)
                            .with_contract("k", consumer)
                            .run();
  // The uncontracted relay hides this from the pairwise check...
  EXPECT_FALSE(has_rule(d, "V7"));
  // ...but the interval propagation sees [0,100] meet [200,300] = empty.
  const auto v8 = d.by_rule("V8");
  ASSERT_FALSE(v8.empty());
  EXPECT_EQ(v8.front()->severity, Severity::kError);
  EXPECT_EQ(v8.front()->subject, "k.in.val");
  EXPECT_NE(v8.front()->message.find("can never satisfy"), std::string::npos);
}

TEST(ValidatorV8, UnconstrainedTransitiveSourceWarns) {
  // No producer contract at all: the consumer's assumption rests on a
  // source the analysis knows nothing about.
  Contract consumer{.name = "CCons"};
  consumer.assumptions.push_back(
      FlowSpec{.flow = "in.val", .range = Interval{200, 300}});
  const Diagnostics d =
      Validator(relay_chain()).with_contract("k", consumer).run();
  const auto v8 = d.by_rule("V8");
  ASSERT_FALSE(v8.empty());
  EXPECT_EQ(v8.front()->severity, Severity::kWarning);
  EXPECT_NE(v8.front()->message.find("unconstrained"), std::string::npos);
}

TEST(ValidatorV8, ContainedTransitiveRangePassesClean) {
  Contract producer{.name = "CProd"};
  producer.guarantees.push_back(
      FlowSpec{.flow = "out.val", .range = Interval{0, 100}});
  Contract consumer{.name = "CCons"};
  consumer.assumptions.push_back(
      FlowSpec{.flow = "in.val", .range = Interval{-10, 500}});
  const Diagnostics d = Validator(relay_chain())
                            .with_contract("p", producer)
                            .with_contract("k", consumer)
                            .run();
  EXPECT_FALSE(has_rule(d, "V8")) << d.render();
}

// --- V9: static end-to-end deadlines ---------------------------------------------

/// Timing producer on one ECU feeding a data-received sink on another: the
/// exact chain shape the holistic fixpoint bounds and a LatencyMonitor
/// would watch.
Composition event_chain() {
  Composition c;
  c.add_interface(value_interface("IVal"));
  Runnable produce = timing_runnable("produce", milliseconds(5));
  produce.wcet_bound = orte::sim::microseconds(200);
  produce.accesses.push_back({"out", "val", DataAccessKind::kImplicitWrite});
  Runnable consume;
  consume.name = "consume";
  consume.trigger = RunnableTrigger::data_received("in", "val");
  consume.wcet_bound = orte::sim::microseconds(100);
  consume.accesses.push_back({"in", "val", DataAccessKind::kImplicitRead});
  c.add_type({"Producer", {Port{"out", "IVal", PortDirection::kProvided}},
              {produce}});
  c.add_type({"Consumer", {Port{"in", "IVal", PortDirection::kRequired}},
              {consume}});
  c.add_instance({"p", "Producer"});
  c.add_instance({"k", "Consumer"});
  c.add_connector({"p", "out", "k", "in"});
  return c;
}

DeploymentPlan cross_ecu_plan() {
  DeploymentPlan plan;
  plan.instances["p"] = {.ecu = "E0"};
  plan.instances["k"] = {.ecu = "E1"};
  return plan;
}

TEST(ValidatorV9, DeadlineBelowStaticBoundIsAnError) {
  Contract consumer{.name = "CCons"};
  consumer.assumptions.push_back(FlowSpec{
      .flow = "in.val", .timing = {.latency = orte::sim::microseconds(1)}});
  const Diagnostics d = Validator(event_chain())
                            .with_deployment(cross_ecu_plan())
                            .with_contract("k", consumer)
                            .run();
  const auto v9 = d.by_rule("V9");
  ASSERT_FALSE(v9.empty());
  EXPECT_EQ(v9.front()->severity, Severity::kError);
  EXPECT_EQ(v9.front()->subject, "k.in.val");
}

TEST(ValidatorV9, GenerousDeadlineReportsSlackNotError) {
  Contract consumer{.name = "CCons"};
  consumer.assumptions.push_back(FlowSpec{
      .flow = "in.val", .timing = {.latency = orte::sim::seconds(1)}});
  const Diagnostics d = Validator(event_chain())
                            .with_deployment(cross_ecu_plan())
                            .with_contract("k", consumer)
                            .run();
  const auto v9 = d.by_rule("V9");
  ASSERT_FALSE(v9.empty());
  EXPECT_EQ(v9.front()->severity, Severity::kInfo);
  EXPECT_NE(v9.front()->message.find("slack"), std::string::npos);
  EXPECT_FALSE(d.has_errors()) << d.render();
}

// --- V10: monitor coverage -------------------------------------------------------

TEST(ValidatorV10, UnresolvableLatencyAssumptionWarns) {
  const Composition c = pipeline(DataAccessKind::kImplicitWrite,
                                 DataAccessKind::kImplicitRead);
  Contract consumer{.name = "CCons"};
  consumer.assumptions.push_back(FlowSpec{
      .flow = "nosuch.val", .timing = {.latency = milliseconds(1)}});
  const Diagnostics d = Validator(c).with_contract("k", consumer).run();
  const auto v10 = d.by_rule("V10");
  ASSERT_FALSE(v10.empty());
  EXPECT_EQ(v10.front()->severity, Severity::kWarning);
  EXPECT_NE(v10.front()->message.find("no traced flow"), std::string::npos);
}

TEST(ValidatorV10, DisabledRuntimeVerificationWithObligationsWarns) {
  const Composition c = pipeline(DataAccessKind::kImplicitWrite,
                                 DataAccessKind::kImplicitRead);
  Contract consumer{.name = "CCons"};
  consumer.assumptions.push_back(FlowSpec{
      .flow = "in.val", .timing = {.latency = orte::sim::seconds(1)}});
  DeploymentPlan plan = same_ecu_plan();
  plan.runtime_verification = false;
  const Diagnostics d =
      Validator(c).with_deployment(plan).with_contract("k", consumer).run();
  bool global = false;
  for (const auto* diag : d.by_rule("V10")) {
    if (diag->subject == "deployment") global = true;
  }
  EXPECT_TRUE(global) << d.render();
}

TEST(ValidatorV10, ResolvableAssumptionIsCovered) {
  const Composition c = pipeline(DataAccessKind::kImplicitWrite,
                                 DataAccessKind::kImplicitRead);
  Contract consumer{.name = "CCons"};
  consumer.assumptions.push_back(FlowSpec{
      .flow = "in.val", .timing = {.latency = orte::sim::seconds(1)}});
  // runtime_verification defaults to on; the feeding connector resolves.
  const Diagnostics d = Validator(c)
                            .with_deployment(same_ecu_plan())
                            .with_contract("k", consumer)
                            .run();
  EXPECT_FALSE(has_rule(d, "V10")) << d.render();
}

// --- V11: resource budgets -------------------------------------------------------

TEST(ValidatorV11, OversubscribedEcuIsAnError) {
  const Composition c = pipeline(DataAccessKind::kImplicitWrite,
                                 DataAccessKind::kImplicitRead);
  Contract cp{.name = "CProd"};
  cp.vertical.cpu_utilization = 0.6;
  Contract ck{.name = "CCons"};
  ck.vertical.cpu_utilization = 0.6;
  const Diagnostics d = Validator(c)
                            .with_deployment(same_ecu_plan())
                            .with_contract("p", cp)
                            .with_contract("k", ck)
                            .run();
  const auto v11 = d.by_rule("V11");
  ASSERT_FALSE(v11.empty());
  EXPECT_EQ(v11.front()->severity, Severity::kError);
  EXPECT_EQ(v11.front()->subject, "E");
  EXPECT_NE(v11.front()->message.find("oversubscribe"), std::string::npos);
}

TEST(ValidatorV11, GeneratedLoadAboveDeclaredBudgetWarns) {
  Composition c;
  c.add_interface(value_interface("IVal"));
  Runnable produce = timing_runnable("produce", milliseconds(10));
  produce.wcet_bound = milliseconds(5);  // measured utilization 0.5
  produce.accesses.push_back({"out", "val", DataAccessKind::kImplicitWrite});
  c.add_type({"Producer", {Port{"out", "IVal", PortDirection::kProvided}},
              {produce}});
  c.add_instance({"p", "Producer"});
  DeploymentPlan plan;
  plan.instances["p"] = {.ecu = "E"};
  Contract cp{.name = "CProd"};
  cp.vertical.cpu_utilization = 0.1;  // declares far less than it generates
  const Diagnostics d =
      Validator(c).with_deployment(plan).with_contract("p", cp).run();
  const auto v11 = d.by_rule("V11");
  ASSERT_FALSE(v11.empty());
  EXPECT_EQ(v11.front()->severity, Severity::kWarning);
  EXPECT_EQ(v11.front()->subject, "p");
}

TEST(ValidatorV11, BudgetsWithinDeclarationPassClean) {
  const Composition c = pipeline(DataAccessKind::kImplicitWrite,
                                 DataAccessKind::kImplicitRead);
  Contract cp{.name = "CProd"};
  cp.vertical.cpu_utilization = 0.3;
  Contract ck{.name = "CCons"};
  ck.vertical.cpu_utilization = 0.3;
  const Diagnostics d = Validator(c)
                            .with_deployment(same_ecu_plan())
                            .with_contract("p", cp)
                            .with_contract("k", ck)
                            .run();
  EXPECT_FALSE(has_rule(d, "V11")) << d.render();
}

// --- V12: dead / unreachable flows -----------------------------------------------

TEST(ValidatorV12, RelayWithoutAutonomousSourceIsDeadFlow) {
  // Relay reads an unconnected input and feeds the consumer: the immediate
  // link p.out -> k.in is V3-clean, but nothing upstream ever produces a
  // value, so the consumer only ever sees relayed initial values.
  Composition c;
  c.add_interface(value_interface("IVal"));
  Runnable relay = timing_runnable("relay", milliseconds(5));
  relay.accesses.push_back({"in", "val", DataAccessKind::kImplicitRead});
  relay.accesses.push_back({"out", "val", DataAccessKind::kImplicitWrite});
  Runnable consume = timing_runnable("consume", milliseconds(10));
  consume.accesses.push_back({"in", "val", DataAccessKind::kImplicitRead});
  c.add_type({"Relay",
              {Port{"in", "IVal", PortDirection::kRequired},
               Port{"out", "IVal", PortDirection::kProvided}},
              {relay}});
  c.add_type({"Consumer", {Port{"in", "IVal", PortDirection::kRequired}},
              {consume}});
  c.add_instance({"r", "Relay"});
  c.add_instance({"k", "Consumer"});
  c.add_connector({"r", "out", "k", "in"});
  // Any bound contract enables the whole-program pass.
  const Diagnostics d =
      Validator(c).with_contract("k", Contract{.name = "C0"}).run();
  const auto v12 = d.by_rule("V12");
  ASSERT_FALSE(v12.empty());
  EXPECT_EQ(v12.front()->severity, Severity::kWarning);
  EXPECT_EQ(v12.front()->subject, "k.in.val");
  EXPECT_NE(v12.front()->message.find("never change"), std::string::npos);
}

TEST(ValidatorV12, UnconsumedRelayedWriteIsReportedAsInfo) {
  // Producer -> relay, but the relay's own output hangs: the producer's
  // write is delivered and read, yet no terminal consumer exists.
  Composition c2;
  c2.add_interface(value_interface("IVal"));
  Runnable produce = timing_runnable("produce", milliseconds(5));
  produce.accesses.push_back({"out", "val", DataAccessKind::kImplicitWrite});
  Runnable relay = timing_runnable("relay", milliseconds(5));
  relay.accesses.push_back({"in", "val", DataAccessKind::kImplicitRead});
  relay.accesses.push_back({"out", "val", DataAccessKind::kImplicitWrite});
  c2.add_type({"Producer", {Port{"out", "IVal", PortDirection::kProvided}},
               {produce}});
  c2.add_type({"Relay",
               {Port{"in", "IVal", PortDirection::kRequired},
                Port{"out", "IVal", PortDirection::kProvided}},
               {relay}});
  c2.add_instance({"p", "Producer"});
  c2.add_instance({"r", "Relay"});
  c2.add_connector({"p", "out", "r", "in"});
  const Diagnostics d =
      Validator(c2).with_contract("r", Contract{.name = "C0"}).run();
  const auto v12 = d.by_rule("V12");
  ASSERT_FALSE(v12.empty());
  EXPECT_EQ(v12.front()->severity, Severity::kInfo);
  EXPECT_EQ(v12.front()->subject, "p.out.val");
}

TEST(ValidatorV12, AutonomousSourceMakesChainLive) {
  const Diagnostics d = Validator(relay_chain())
                            .with_contract("k", Contract{.name = "C0"})
                            .run();
  EXPECT_FALSE(has_rule(d, "V12")) << d.render();
}

// --- V13-V15: fault detectability & fail-silence --------------------------------
//
// The brake-by-wire campaign workload is the canonical fixture here on
// purpose: the same bundle feeds the E9b campaign, so these static verdicts
// are cross-checked against measured outcomes in test_fi.

TEST(ValidatorV13, UnsupervisedProducerCrashIsUndetectable) {
  const auto bundle = orte::fi::workloads::brake_by_wire();
  const Diagnostics d =
      orte::validation::validate(bundle.model, bundle.plan);
  const auto v13 = d.by_rule("V13");
  ASSERT_FALSE(v13.empty()) << d.render();
  EXPECT_EQ(v13.front()->severity, Severity::kWarning);
  EXPECT_EQ(v13.front()->subject, "crash:pedal");
  EXPECT_NE(v13.front()->message.find("no compiled runtime monitor"),
            std::string::npos);
  // The hint names the one-flag fix.
  EXPECT_NE(v13.front()->hint.find("alive_supervision"), std::string::npos);
}

TEST(ValidatorV13, AliveSupervisionMakesTheCrashDetectable) {
  const auto bundle = orte::fi::workloads::brake_by_wire(true);
  const Diagnostics d =
      orte::validation::validate(bundle.model, bundle.plan);
  EXPECT_FALSE(has_rule(d, "V13")) << d.render();
  EXPECT_FALSE(has_rule(d, "V15")) << d.render();
}

TEST(ValidatorV14, BabblerOnCanHasNoContainmentDomain) {
  auto bundle = orte::fi::workloads::brake_by_wire();
  // On an event-triggered bus the rogue node delays every victim frame, so
  // latency monitors fire — but each one blames a victim, never the babbler.
  bundle.plan.bus = BusKind::kCan;
  const Diagnostics d =
      orte::validation::validate(bundle.model, bundle.plan);
  const auto v14 = d.by_rule("V14");
  ASSERT_FALSE(v14.empty()) << d.render();
  EXPECT_EQ(v14.front()->severity, Severity::kWarning);
  EXPECT_EQ(v14.front()->subject, "babbling_idiot:*");
  EXPECT_NE(v14.front()->message.find("containment domain"),
            std::string::npos);
}

TEST(ValidatorV14, TdmaSlottingContainsTheBabblerStructurally) {
  const auto bundle = orte::fi::workloads::brake_by_wire();
  ASSERT_EQ(bundle.plan.bus, BusKind::kFlexRay);
  // Structural containment: the babbler perturbs nothing, so it is inert —
  // predicted missed, but no gap to warn about.
  const Diagnostics d =
      orte::validation::validate(bundle.model, bundle.plan);
  EXPECT_FALSE(has_rule(d, "V14")) << d.render();
}

TEST(ValidatorV15, PeriodicGuaranteeWithoutWatchdogWarnsPerSenderKey) {
  const auto bundle = orte::fi::workloads::brake_by_wire();
  const Diagnostics d =
      orte::validation::validate(bundle.model, bundle.plan);
  const auto v15 = d.by_rule("V15");
  ASSERT_EQ(v15.size(), 1u) << d.render();  // One resolved periodic sender.
  EXPECT_EQ(v15.front()->severity, Severity::kWarning);
  EXPECT_EQ(v15.front()->subject, "pedal.out.pos");
  EXPECT_NE(v15.front()->message.find("implies a heartbeat"),
            std::string::npos);
  EXPECT_NE(v15.front()->hint.find("alive_supervision"), std::string::npos);
}

TEST(ValidatorV15, SilentWithoutAPlanOrWithRvDisabled) {
  const auto bundle = orte::fi::workloads::brake_by_wire();
  // No deployment plan: the detectability pass has no monitor inventory to
  // reason about, so none of V13-V15 may fire.
  Validator v(bundle.model);
  for (const auto& [instance, contract] : bundle.model.bound_contracts()) {
    v.with_contract(instance, contract);
  }
  const Diagnostics no_plan = v.run();
  EXPECT_FALSE(has_rule(no_plan, "V13"));
  EXPECT_FALSE(has_rule(no_plan, "V15"));

  auto off = orte::fi::workloads::brake_by_wire();
  off.plan.runtime_verification = false;
  const Diagnostics rv_off = orte::validation::validate(off.model, off.plan);
  EXPECT_FALSE(has_rule(rv_off, "V13")) << rv_off.render();
  EXPECT_FALSE(has_rule(rv_off, "V15")) << rv_off.render();
}

TEST(Detectability, StuckAtIsObservedByBothRangePlanesAndContained) {
  const auto bundle = orte::fi::workloads::brake_by_wire();
  const std::vector<orte::fi::Fault> faults = {
      {.kind = orte::fi::FaultKind::kStuckAt,
       .target = "pedal.out.pos",
       .value = 4000}};
  const auto analysis = orte::validation::analyze_detectability(
      bundle.model, bundle.plan, bundle.model.bound_contracts(), faults);
  ASSERT_EQ(analysis.verdicts.size(), 1u);
  const auto& v = analysis.verdicts.front();
  EXPECT_TRUE(v.perturbs);
  EXPECT_TRUE(v.detectable);
  EXPECT_TRUE(v.contained);
  EXPECT_FALSE(v.containment_gap);
  bool saw_write = false;
  bool saw_deliver = false;
  for (const auto& o : v.observers) {
    saw_write |= o.kind == orte::validation::MonitorPlane::Kind::kRangeWrite;
    saw_deliver |=
        o.kind == orte::validation::MonitorPlane::Kind::kRangeDeliver;
    // Both planes blame the producer — inside the fault's domain.
    EXPECT_EQ(o.blame, "pedal");
  }
  EXPECT_TRUE(saw_write);
  EXPECT_TRUE(saw_deliver);
}

// --- SARIF export ----------------------------------------------------------------

std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (auto pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(Sarif, OneResultPerDiagnosticWithMappedLevels) {
  Diagnostics d;
  d.add("V1", Severity::kError, "e.f", "dangling");
  d.add("V4", Severity::kWarning, "c.d", "race", "buffer it");
  d.add("V3", Severity::kInfo, "a.b", "dead element");
  const std::string sarif = orte::validation::to_sarif(d);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"orte-validator\""), std::string::npos);
  EXPECT_EQ(count_of(sarif, "\"ruleId\""), 3u);
  EXPECT_EQ(count_of(sarif, "\"level\": \"error\""), 1u);
  EXPECT_EQ(count_of(sarif, "\"level\": \"warning\""), 1u);
  EXPECT_EQ(count_of(sarif, "\"level\": \"note\""), 1u);
  // Subjects surface as logical locations; hints ride in properties.
  EXPECT_NE(sarif.find("\"fullyQualifiedName\": \"c.d\""), std::string::npos);
  EXPECT_NE(sarif.find("\"hint\": \"buffer it\""), std::string::npos);
  // One reportingDescriptor per distinct rule.
  EXPECT_EQ(count_of(sarif, "\"shortDescription\""), 3u);
}

TEST(Sarif, EscapesQuotesAndControlCharacters) {
  Diagnostics d;
  d.add("V2", Severity::kError, "x", "mismatch \"quoted\" and\nnewline");
  const std::string sarif = orte::validation::to_sarif(d);
  EXPECT_NE(sarif.find("mismatch \\\"quoted\\\" and\\nnewline"),
            std::string::npos);
}

TEST(Sarif, EmptyReportIsStillAValidDocument) {
  const std::string sarif = orte::validation::to_sarif(Diagnostics{});
  EXPECT_NE(sarif.find("\"results\": ["), std::string::npos);
  EXPECT_EQ(count_of(sarif, "\"ruleId\""), 0u);
}

TEST(Sarif, DetectabilityRulesCarryDescriptionsLocationsAndHints) {
  // The real pass, end to end: lint the unsupervised campaign workload and
  // check V13/V15 survive export with their rule metadata, logical
  // locations and fix hints intact (the CI model_lint.sarif contract).
  auto bundle = orte::fi::workloads::brake_by_wire();
  bundle.plan.bus = BusKind::kCan;  // Adds the V14 containment gap.
  const std::string sarif = orte::validation::to_sarif(
      orte::validation::validate(bundle.model, bundle.plan));
  EXPECT_NE(sarif.find("\"id\": \"V13\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\": \"V14\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\": \"V15\""), std::string::npos);
  EXPECT_NE(
      sarif.find("Fault planes invisible to every compiled runtime monitor"),
      std::string::npos);
  EXPECT_NE(
      sarif.find("Detectable faults no observing monitor blames in-domain"),
      std::string::npos);
  EXPECT_NE(sarif.find("Periodic guarantees without watchdog alive"),
            std::string::npos);
  EXPECT_NE(sarif.find("\"fullyQualifiedName\": \"crash:pedal\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"fullyQualifiedName\": \"pedal.out.pos\""),
            std::string::npos);
  EXPECT_NE(sarif.find("alive_supervision = true"), std::string::npos);
}

}  // namespace
