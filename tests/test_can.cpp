// Unit tests: CAN bus — arbitration, non-preemption, frame timing, faults.
#include <gtest/gtest.h>

#include <vector>

#include "can/can_bus.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"

namespace {

using namespace orte::can;
using orte::net::Frame;
using orte::sim::Kernel;
using orte::sim::Time;
using orte::sim::Trace;
using orte::sim::microseconds;
using orte::sim::milliseconds;

Frame make_frame(std::uint32_t id, std::size_t bytes, Time enq,
                 std::string name = {}) {
  Frame f;
  f.id = id;
  f.name = name.empty() ? "f" + std::to_string(id) : std::move(name);
  f.payload.assign(bytes, 0xAB);
  f.enqueued_at = enq;
  return f;
}

struct Fixture {
  Kernel kernel;
  Trace trace;
};

TEST(CanBus, FrameTimeMatchesDavisFormula) {
  Fixture f;
  CanBus bus(f.kernel, f.trace, {.bitrate_bps = 500'000});
  // (55 + 10*8) * 2us = 270us for an 8-byte frame at 500 kbit/s.
  EXPECT_EQ(bus.frame_time(8), microseconds(270));
  EXPECT_EQ(bus.frame_time(0), microseconds(110));
  EXPECT_EQ(frame_transmission_time(8, 1'000'000), microseconds(135));
}

TEST(CanBus, FanOutSharesOnePayloadBuffer) {
  // Broadcast delivery must not deep-copy the payload per receiver: every
  // controller's rx callback sees the same shared immutable buffer.
  Fixture f;
  CanBus bus(f.kernel, f.trace, {});
  auto& tx = bus.attach();
  std::vector<orte::net::Payload> seen;
  for (int i = 0; i < 4; ++i) {
    bus.attach().on_receive([&](const Frame& fr) {
      seen.push_back(fr.payload);
    });
  }
  f.kernel.schedule_at(0, [&] { tx.send(make_frame(0x10, 8, 0)); });
  f.kernel.run_until(milliseconds(10));
  ASSERT_EQ(seen.size(), 4u);
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i].shares_buffer_with(seen[0]));
  }
  EXPECT_EQ(seen[0].bytes(), std::vector<std::uint8_t>(8, 0xAB));
}

TEST(CanBus, LowestIdWinsArbitration) {
  Fixture f;
  CanBus bus(f.kernel, f.trace, {});
  auto& a = bus.attach();
  auto& b = bus.attach();
  auto& c = bus.attach();
  std::vector<std::uint32_t> rx_order;
  c.on_receive([&](const Frame& fr) { rx_order.push_back(fr.id); });
  // Enqueue while the bus is idle at t=0; all three pend simultaneously.
  f.kernel.schedule_at(0, [&] {
    a.send(make_frame(0x30, 8, 0));
    b.send(make_frame(0x10, 8, 0));
    a.send(make_frame(0x20, 8, 0));
  });
  f.kernel.run_until(milliseconds(10));
  ASSERT_EQ(rx_order.size(), 3u);
  EXPECT_EQ(rx_order, (std::vector<std::uint32_t>{0x10, 0x20, 0x30}));
}

TEST(CanBus, TransmissionIsNonPreemptive) {
  Fixture f;
  CanBus bus(f.kernel, f.trace, {.bitrate_bps = 500'000});
  auto& a = bus.attach();
  auto& b = bus.attach();
  std::vector<std::pair<Time, std::uint32_t>> rx;
  b.on_receive([&](const Frame& fr) { rx.emplace_back(f.kernel.now(), fr.id); });
  auto& sink = bus.attach();
  sink.on_receive([&](const Frame&) {});
  f.kernel.schedule_at(0, [&] { a.send(make_frame(0x50, 8, 0)); });
  // Higher-priority frame arrives mid-transmission: must wait.
  f.kernel.schedule_at(microseconds(100), [&] {
    b.send(make_frame(0x01, 8, microseconds(100)));
  });
  std::vector<std::pair<Time, std::uint32_t>> rx_a;
  a.on_receive([&](const Frame& fr) { rx_a.emplace_back(f.kernel.now(), fr.id); });
  f.kernel.run_until(milliseconds(10));
  // 0x50 completes at 270us (frame time includes the interframe space);
  // 0x01 then takes another 270us -> delivered at 540us.
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0], (std::pair<Time, std::uint32_t>{microseconds(270), 0x50}));
  ASSERT_EQ(rx_a.size(), 1u);
  EXPECT_EQ(rx_a[0].second, 0x01u);
  EXPECT_EQ(rx_a[0].first, microseconds(270 + 270));
}

TEST(CanBus, SenderDoesNotReceiveOwnFrame) {
  Fixture f;
  CanBus bus(f.kernel, f.trace, {});
  auto& a = bus.attach();
  auto& b = bus.attach();
  int a_rx = 0, b_rx = 0;
  a.on_receive([&](const Frame&) { ++a_rx; });
  b.on_receive([&](const Frame&) { ++b_rx; });
  f.kernel.schedule_at(0, [&] { a.send(make_frame(1, 4, 0)); });
  f.kernel.run_until(milliseconds(1));
  EXPECT_EQ(a_rx, 0);
  EXPECT_EQ(b_rx, 1);
}

TEST(CanBus, FifoAmongEqualIdsFromOneNode) {
  Fixture f;
  CanBus bus(f.kernel, f.trace, {});
  auto& a = bus.attach();
  auto& b = bus.attach();
  std::vector<std::string> names;
  b.on_receive([&](const Frame& fr) { names.push_back(fr.name); });
  f.kernel.schedule_at(0, [&] {
    a.send(make_frame(5, 1, 0, "first"));
    a.send(make_frame(5, 1, 0, "second"));
  });
  f.kernel.run_until(milliseconds(5));
  EXPECT_EQ(names, (std::vector<std::string>{"first", "second"}));
}

TEST(CanBus, OversizedPayloadRejected) {
  Fixture f;
  CanBus bus(f.kernel, f.trace, {});
  auto& a = bus.attach();
  EXPECT_THROW(a.send(make_frame(1, 9, 0)), std::invalid_argument);
}

TEST(CanBus, ErrorInjectionCausesRetransmission) {
  Fixture f;
  CanBus bus(f.kernel, f.trace, {.error_rate = 0.5, .seed = 42});
  auto& a = bus.attach();
  auto& b = bus.attach();
  int rx = 0;
  b.on_receive([&](const Frame&) { ++rx; });
  for (int i = 0; i < 50; ++i) {
    f.kernel.schedule_at(milliseconds(i), [&] { a.send(make_frame(1, 8, 0)); });
  }
  f.kernel.run_until(milliseconds(100));
  // Automatic retransmission: every frame eventually delivered.
  EXPECT_EQ(rx, 50);
  EXPECT_GT(bus.retransmissions(), 10u);
  EXPECT_EQ(bus.stats().frames_delivered(), 50u);
  EXPECT_EQ(bus.stats().frames_corrupted(), bus.retransmissions());
}

TEST(CanBus, UtilizationTracksBusyTime) {
  Fixture f;
  CanBus bus(f.kernel, f.trace, {.bitrate_bps = 500'000});
  auto& a = bus.attach();
  bus.attach();
  // One 8-byte frame (270us) every ms for 10ms => ~27% utilization.
  for (int i = 0; i < 10; ++i) {
    f.kernel.schedule_at(milliseconds(i), [&] { a.send(make_frame(1, 8, 0)); });
  }
  f.kernel.run_until(milliseconds(10));
  EXPECT_NEAR(bus.stats().utilization(f.kernel.now()), 0.27, 0.001);
}

TEST(CanBus, QueueingDelayMeasured) {
  Fixture f;
  CanBus bus(f.kernel, f.trace, {.bitrate_bps = 500'000});
  auto& a = bus.attach();
  bus.attach();
  f.kernel.schedule_at(0, [&] {
    a.send(make_frame(1, 8, 0));
    a.send(make_frame(2, 8, 0));  // waits one 270us frame
  });
  f.kernel.run_until(milliseconds(5));
  EXPECT_DOUBLE_EQ(bus.stats().queueing_delay().max(), 270.0);  // us
}

}  // namespace
