// Unit tests: temporal firewall, fault injectors, containment monitor — and
// the headline timing-isolation behaviour (victim protected from aggressor).
#include <gtest/gtest.h>

#include "isolation/fault_injection.hpp"
#include "isolation/monitor.hpp"
#include "isolation/temporal_firewall.hpp"
#include "os/ecu.hpp"
#include "sim/kernel.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace {

using namespace orte::isolation;
using orte::os::Ecu;
using orte::os::OverrunAction;
using orte::os::Task;
using orte::sim::Kernel;
using orte::sim::Trace;
using orte::sim::microseconds;
using orte::sim::milliseconds;

TEST(TemporalFirewall, ValidWithinHorizon) {
  TemporalFirewall<std::uint64_t> fw;
  fw.publish(42, 100, 500);
  const auto entry = fw.read(300);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->value, 42u);
  EXPECT_EQ(entry->observation_time, 100);
}

TEST(TemporalFirewall, StaleAfterHorizon) {
  TemporalFirewall<std::uint64_t> fw;
  fw.publish(42, 100, 500);
  EXPECT_FALSE(fw.read(501).has_value());
  EXPECT_EQ(fw.stale_reads(), 1u);
  EXPECT_TRUE(fw.raw().has_value());  // raw value still inspectable
}

TEST(TemporalFirewall, EmptyReadsStale) {
  TemporalFirewall<int> fw;
  EXPECT_FALSE(fw.read(0).has_value());
}

TEST(TemporalFirewall, OverwriteInPlace) {
  TemporalFirewall<int> fw;
  fw.publish(1, 0, 100);
  fw.publish(2, 50, 200);
  EXPECT_EQ(fw.read(150)->value, 2);
  EXPECT_EQ(fw.updates(), 2u);
}

TEST(FaultInjection, OverrunOnlyInsideWindow) {
  Kernel kernel;
  auto wcet = overrunning_wcet(kernel, milliseconds(1), 3.0,
                               milliseconds(10), milliseconds(20));
  EXPECT_EQ(wcet(), milliseconds(1));  // t = 0
  kernel.schedule_at(milliseconds(15), [] {});
  kernel.run_until(milliseconds(15));
  EXPECT_EQ(wcet(), milliseconds(3));
  kernel.schedule_at(milliseconds(25), [] {});
  kernel.run_until(milliseconds(25));
  EXPECT_EQ(wcet(), milliseconds(1));
}

TEST(FaultInjection, FactorBelowOneRejected) {
  Kernel kernel;
  EXPECT_THROW(overrunning_wcet(kernel, 1, 0.5, 0, 1), std::invalid_argument);
}

TEST(FaultInjection, JitteryWcetBounded) {
  orte::sim::Rng rng(1);
  auto wcet = jittery_wcet(rng, milliseconds(2), 0.3);
  for (int i = 0; i < 200; ++i) {
    const auto c = wcet();
    EXPECT_LE(c, milliseconds(2));
    EXPECT_GE(c, static_cast<orte::sim::Duration>(milliseconds(2) * 0.7) - 1);
  }
}

TEST(FaultInjection, OverrunWindowBoundariesAreHalfOpen) {
  // [from, until): active exactly at `from`, back to nominal at `until`.
  Kernel kernel;
  auto wcet = overrunning_wcet(kernel, milliseconds(1), 2.0,
                               milliseconds(10), milliseconds(20));
  kernel.schedule_at(milliseconds(10), [] {});
  kernel.run_until(milliseconds(10));
  EXPECT_EQ(wcet(), milliseconds(2));
  kernel.schedule_at(milliseconds(20), [] {});
  kernel.run_until(milliseconds(20));
  EXPECT_EQ(wcet(), milliseconds(1));
}

TEST(FaultInjection, JitteryWcetDeterministicForSameSeed) {
  orte::sim::Rng a(9), b(9);
  auto wa = jittery_wcet(a, milliseconds(2), 0.5);
  auto wb = jittery_wcet(b, milliseconds(2), 0.5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(wa(), wb());
}

TEST(FaultInjection, JitteryWcetRejectsFractionOutsideUnit) {
  orte::sim::Rng rng(1);
  EXPECT_THROW(jittery_wcet(rng, milliseconds(1), -0.1),
               std::invalid_argument);
  EXPECT_THROW(jittery_wcet(rng, milliseconds(1), 1.5),
               std::invalid_argument);
}

TEST(FaultInjection, CrashingWcetGoesSilent) {
  Kernel kernel;
  auto wcet = crashing_wcet(kernel, milliseconds(1), milliseconds(5));
  EXPECT_EQ(wcet(), milliseconds(1));
  kernel.schedule_at(milliseconds(6), [] {});
  kernel.run_until(milliseconds(6));
  EXPECT_EQ(wcet(), 0);
}

// The paper's core isolation scenario as a single test: three suppliers on
// one ECU; supplier B's task overruns x4. Without budgets the victim misses
// deadlines; with budget enforcement it never does.
struct IsolationScenario {
  Kernel kernel;
  Trace trace;
  Ecu ecu{kernel, trace, "host"};
  Task* victim = nullptr;
  Task* aggressor = nullptr;

  explicit IsolationScenario(bool enforce) {
    auto& a = ecu.add_task(
        {.name = "supplierA", .priority = 3, .period = milliseconds(5),
         .budget = enforce ? milliseconds(1) : 0,
         .overrun_action =
             enforce ? OverrunAction::kKillJob : OverrunAction::kNone});
    a.set_body(microseconds(800));
    auto& b = ecu.add_task(
        {.name = "supplierB", .priority = 2, .period = milliseconds(10),
         .budget = enforce ? milliseconds(2) : 0,
         .overrun_action =
             enforce ? OverrunAction::kKillJob : OverrunAction::kNone});
    // B overruns its 2ms contract by 4x from t=100ms on.
    b.add_segment({.duration = orte::isolation::overrunning_wcet(
                       kernel, milliseconds(2), 4.0, milliseconds(100),
                       milliseconds(400))});
    auto& c = ecu.add_task(
        {.name = "supplierC", .priority = 1, .period = milliseconds(10),
         .relative_deadline = milliseconds(10),
         .budget = enforce ? milliseconds(3) : 0,
         .overrun_action =
             enforce ? OverrunAction::kKillJob : OverrunAction::kNone});
    c.set_body(milliseconds(3));
    victim = &c;
    aggressor = &b;
    ecu.start();
  }
};

TEST(TimingIsolation, WithoutBudgetsVictimSuffers) {
  IsolationScenario s(/*enforce=*/false);
  s.kernel.run_until(milliseconds(500));
  EXPECT_GT(s.victim->deadline_misses(), 0u);
}

TEST(TimingIsolation, WithBudgetsVictimProtected) {
  IsolationScenario s(/*enforce=*/true);
  s.kernel.run_until(milliseconds(500));
  EXPECT_EQ(s.victim->deadline_misses(), 0u);
  EXPECT_GT(s.aggressor->jobs_killed(), 0u);  // the fault is sanctioned
  // Outside the fault window the aggressor completes normally.
  EXPECT_GT(s.aggressor->jobs_completed(), 0u);
}

TEST(ContainmentMonitor, ClassifiesTraceEvents) {
  IsolationScenario s(/*enforce=*/true);
  ContainmentMonitor mon(s.trace);
  s.kernel.run_until(milliseconds(500));
  EXPECT_EQ(mon.deadline_misses("supplierC"), 0u);
  EXPECT_GT(mon.kills("supplierB"), 0u);
  EXPECT_EQ(mon.victim_misses("supplierB"), mon.total_deadline_misses());
}

TEST(ContainmentMonitor, CountsVictimMissesWithoutEnforcement) {
  IsolationScenario s(/*enforce=*/false);
  ContainmentMonitor mon(s.trace);
  s.kernel.run_until(milliseconds(500));
  EXPECT_GT(mon.victim_misses("supplierB"), 0u);
  EXPECT_EQ(mon.kills("supplierB"), 0u);
}

}  // namespace
