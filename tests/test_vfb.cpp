// Unit tests: VFB component model, RTE semantics, system generation.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/trace.hpp"
#include "vfb/model.hpp"
#include "vfb/rte.hpp"
#include "vfb/system.hpp"

namespace {

using namespace orte::vfb;
using orte::sim::Kernel;
using orte::sim::Time;
using orte::sim::Trace;
using orte::sim::microseconds;
using orte::sim::milliseconds;

PortInterface value_interface(std::string name, bool queued = false) {
  PortInterface i;
  i.name = std::move(name);
  i.kind = PortInterface::Kind::kSenderReceiver;
  i.elements.push_back(DataElement{"val", 64, 0, queued});
  return i;
}

// --- Composition validation ----------------------------------------------------

TEST(Composition, ValidModelPasses) {
  Composition c;
  c.add_interface(value_interface("IVal"));
  ComponentType producer{"Producer",
                         {Port{"out", "IVal", PortDirection::kProvided}},
                         {}};
  ComponentType consumer{"Consumer",
                         {Port{"in", "IVal", PortDirection::kRequired}},
                         {}};
  c.add_type(producer);
  c.add_type(consumer);
  c.add_instance({"p", "Producer"});
  c.add_instance({"k", "Consumer"});
  c.add_connector({"p", "out", "k", "in"});
  EXPECT_NO_THROW(c.validate());
}

TEST(Composition, ConnectorDirectionMismatchFails) {
  Composition c;
  c.add_interface(value_interface("IVal"));
  c.add_type({"A", {Port{"out", "IVal", PortDirection::kProvided}}, {}});
  c.add_type({"B", {Port{"in", "IVal", PortDirection::kRequired}}, {}});
  c.add_instance({"a", "A"});
  c.add_instance({"b", "B"});
  c.add_connector({"b", "in", "a", "out"});  // reversed
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Composition, InterfaceMismatchFails) {
  Composition c;
  c.add_interface(value_interface("I1"));
  c.add_interface(value_interface("I2"));
  c.add_type({"A", {Port{"out", "I1", PortDirection::kProvided}}, {}});
  c.add_type({"B", {Port{"in", "I2", PortDirection::kRequired}}, {}});
  c.add_instance({"a", "A"});
  c.add_instance({"b", "B"});
  c.add_connector({"a", "out", "b", "in"});
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Composition, MultipleFeedsToRequiredPortFail) {
  Composition c;
  c.add_interface(value_interface("IVal"));
  c.add_type({"A", {Port{"out", "IVal", PortDirection::kProvided}}, {}});
  c.add_type({"B", {Port{"in", "IVal", PortDirection::kRequired}}, {}});
  c.add_instance({"a1", "A"});
  c.add_instance({"a2", "A"});
  c.add_instance({"b", "B"});
  c.add_connector({"a1", "out", "b", "in"});
  c.add_connector({"a2", "out", "b", "in"});
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Composition, WriteAccessOnRequiredPortFails) {
  Composition c;
  c.add_interface(value_interface("IVal"));
  Runnable r;
  r.name = "run";
  r.trigger = RunnableTrigger::timing(milliseconds(10));
  r.accesses.push_back({"in", "val", DataAccessKind::kExplicitWrite});
  c.add_type({"B", {Port{"in", "IVal", PortDirection::kRequired}}, {r}});
  c.add_instance({"b", "B"});
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Composition, DuplicateNamesFail) {
  Composition c;
  c.add_interface(value_interface("IVal"));
  EXPECT_THROW(c.add_interface(value_interface("IVal")),
               std::invalid_argument);
  c.add_type({"A", {}, {}});
  EXPECT_THROW(c.add_type({"A", {}, {}}), std::invalid_argument);
  c.add_instance({"a", "A"});
  EXPECT_THROW(c.add_instance({"a", "A"}), std::invalid_argument);
}

// --- Helpers to build a two-component system -----------------------------------

struct PipelineModel {
  Composition comp;
  // Producer writes its activation count; consumer records what it reads.
  std::vector<std::uint64_t>* consumed;

  explicit PipelineModel(std::vector<std::uint64_t>* sink,
                         DataAccessKind write_kind = DataAccessKind::kExplicitWrite,
                         DataAccessKind read_kind = DataAccessKind::kExplicitRead,
                         bool queued = false)
      : consumed(sink) {
    comp.add_interface(value_interface("IVal", queued));

    Runnable produce;
    produce.name = "produce";
    produce.trigger = RunnableTrigger::timing(milliseconds(10));
    produce.execution_time = [] { return microseconds(100); };
    produce.accesses.push_back({"out", "val", write_kind});
    produce.behavior = [n = std::uint64_t{0}](RunnableContext& ctx) mutable {
      ctx.write("out", "val", ++n);
    };
    comp.add_type({"Producer",
                   {Port{"out", "IVal", PortDirection::kProvided}},
                   {produce}});

    Runnable consume;
    consume.name = "consume";
    consume.trigger = RunnableTrigger::timing(milliseconds(10));
    consume.execution_time = [] { return microseconds(100); };
    consume.accesses.push_back({"in", "val", read_kind});
    consume.behavior = [sink](RunnableContext& ctx) {
      sink->push_back(ctx.read("in", "val"));
    };
    comp.add_type({"Consumer",
                   {Port{"in", "IVal", PortDirection::kRequired}},
                   {consume}});

    comp.add_instance({"p", "Producer"});
    comp.add_instance({"k", "Consumer"});
    comp.add_connector({"p", "out", "k", "in"});
  }
};

TEST(System, SameEcuCommunication) {
  Kernel kernel;
  Trace trace;
  std::vector<std::uint64_t> consumed;
  PipelineModel m(&consumed);
  DeploymentPlan plan;
  plan.instances["p"] = {.ecu = "ecu0"};
  plan.instances["k"] = {.ecu = "ecu0"};
  System sys(kernel, trace, m.comp, plan);
  EXPECT_EQ(sys.signal_count(), 0u);  // no bus traffic needed
  sys.run_for(milliseconds(100));
  ASSERT_GE(consumed.size(), 9u);
  // Values flow in order without loss (same period, local copy).
  for (std::size_t i = 1; i < consumed.size(); ++i) {
    EXPECT_EQ(consumed[i], consumed[i - 1] + 1);
  }
}

TEST(System, CrossEcuOverCan) {
  Kernel kernel;
  Trace trace;
  std::vector<std::uint64_t> consumed;
  PipelineModel m(&consumed);
  DeploymentPlan plan;
  plan.instances["p"] = {.ecu = "ecuA"};
  plan.instances["k"] = {.ecu = "ecuB"};
  plan.bus = BusKind::kCan;
  System sys(kernel, trace, m.comp, plan);
  EXPECT_EQ(sys.signal_count(), 1u);
  sys.run_for(milliseconds(100));
  ASSERT_GE(consumed.size(), 8u);
  EXPECT_GT(consumed.back(), 5u);
  EXPECT_GT(sys.can_bus()->stats().frames_delivered(), 5u);
}

TEST(System, CrossEcuOverFlexRay) {
  Kernel kernel;
  Trace trace;
  std::vector<std::uint64_t> consumed;
  PipelineModel m(&consumed);
  DeploymentPlan plan;
  plan.instances["p"] = {.ecu = "ecuA"};
  plan.instances["k"] = {.ecu = "ecuB"};
  plan.bus = BusKind::kFlexRay;
  System sys(kernel, trace, m.comp, plan);
  sys.run_for(milliseconds(100));
  ASSERT_GE(consumed.size(), 8u);
  EXPECT_GT(consumed.back(), 5u);
  EXPECT_GT(sys.flexray_bus()->stats().frames_delivered(), 5u);
}

TEST(System, DataReceivedRunnableActivated) {
  Kernel kernel;
  Trace trace;
  Composition comp;
  comp.add_interface(value_interface("IVal"));

  Runnable produce;
  produce.name = "produce";
  produce.trigger = RunnableTrigger::timing(milliseconds(10));
  produce.execution_time = [] { return microseconds(50); };
  produce.accesses.push_back({"out", "val", DataAccessKind::kExplicitWrite});
  produce.behavior = [](RunnableContext& ctx) {
    ctx.write("out", "val", static_cast<std::uint64_t>(ctx.now()));
  };
  comp.add_type(
      {"Producer", {Port{"out", "IVal", PortDirection::kProvided}}, {produce}});

  std::vector<double> latencies_us;
  Runnable on_data;
  on_data.name = "on_data";
  on_data.trigger = RunnableTrigger::data_received("in", "val");
  on_data.execution_time = [] { return microseconds(10); };
  on_data.accesses.push_back({"in", "val", DataAccessKind::kExplicitRead});
  on_data.behavior = [&latencies_us](RunnableContext& ctx) {
    const auto sent = static_cast<Time>(ctx.read("in", "val"));
    latencies_us.push_back(orte::sim::to_us(ctx.now() - sent));
  };
  comp.add_type(
      {"Consumer", {Port{"in", "IVal", PortDirection::kRequired}}, {on_data}});

  comp.add_instance({"p", "Producer"});
  comp.add_instance({"k", "Consumer"});
  comp.add_connector({"p", "out", "k", "in"});

  DeploymentPlan plan;
  plan.instances["p"] = {.ecu = "ecuA"};
  plan.instances["k"] = {.ecu = "ecuB"};
  System sys(kernel, trace, comp, plan);
  sys.run_for(milliseconds(100));
  ASSERT_GE(latencies_us.size(), 9u);
  for (double l : latencies_us) {
    EXPECT_GT(l, 0.0);
    EXPECT_LT(l, 1000.0);  // one CAN frame + event task on an idle system
  }
}

TEST(System, ImplicitReadSeesStableSnapshot) {
  Kernel kernel;
  Trace trace;
  Composition comp;
  comp.add_interface(value_interface("IVal"));

  // Fast producer (2ms) increments; slow consumer (10ms, 5ms wcet) is
  // preempted mid-execution, but implicit read pins the start-of-runnable
  // value.
  Runnable produce;
  produce.name = "produce";
  produce.trigger = RunnableTrigger::timing(milliseconds(2));
  produce.execution_time = [] { return microseconds(100); };
  produce.accesses.push_back({"out", "val", DataAccessKind::kExplicitWrite});
  produce.behavior = [n = std::uint64_t{0}](RunnableContext& ctx) mutable {
    ctx.write("out", "val", ++n);
  };
  comp.add_type(
      {"Producer", {Port{"out", "IVal", PortDirection::kProvided}}, {produce}});

  std::vector<std::pair<std::uint64_t, Time>> reads;  // (value, completion)
  Runnable consume;
  consume.name = "consume";
  consume.trigger = RunnableTrigger::timing(milliseconds(10));
  consume.execution_time = [] { return milliseconds(5); };
  consume.accesses.push_back({"in", "val", DataAccessKind::kImplicitRead});
  consume.behavior = [&reads](RunnableContext& ctx) {
    reads.emplace_back(ctx.read("in", "val"), ctx.now());
  };
  comp.add_type(
      {"Consumer", {Port{"in", "IVal", PortDirection::kRequired}}, {consume}});

  comp.add_instance({"p", "Producer"});
  comp.add_instance({"k", "Consumer"});
  comp.add_connector({"p", "out", "k", "in"});

  DeploymentPlan plan;
  plan.instances["p"] = {.ecu = "ecu0"};
  plan.instances["k"] = {.ecu = "ecu0"};
  System sys(kernel, trace, comp, plan);
  sys.run_for(milliseconds(50));
  ASSERT_GE(reads.size(), 3u);
  // Consumer job k starts at 10k ms; producer has run for instants 0..10k/2.
  // The snapshot taken at start must NOT include producer jobs that ran
  // during the consumer's 5ms execution window.
  for (const auto& [value, completed] : reads) {
    const Time start = completed - milliseconds(5) < 0
                           ? 0
                           : completed - milliseconds(5);
    // Producer value at consumer start: floor(start/2ms) + 1 jobs done,
    // give or take the job exactly at the boundary.
    const std::uint64_t at_start =
        static_cast<std::uint64_t>(start / milliseconds(2)) + 1;
    EXPECT_LE(value, at_start + 1);
  }
}

TEST(System, QueuedElementsDeliverFifoWithoutLoss) {
  Kernel kernel;
  Trace trace;
  std::vector<std::uint64_t> consumed;
  // Producer at 10ms, consumer at 20ms: a last-is-best element would drop
  // every other value; a queued element must deliver all, in order.
  Composition comp;
  comp.add_interface(value_interface("IVal", /*queued=*/true));
  Runnable produce;
  produce.name = "produce";
  produce.trigger = RunnableTrigger::timing(milliseconds(10));
  produce.execution_time = [] { return microseconds(100); };
  produce.accesses.push_back({"out", "val", DataAccessKind::kExplicitWrite});
  produce.behavior = [n = std::uint64_t{0}](RunnableContext& ctx) mutable {
    ctx.write("out", "val", ++n);
  };
  comp.add_type(
      {"Producer", {Port{"out", "IVal", PortDirection::kProvided}}, {produce}});
  Runnable consume;
  consume.name = "consume";
  consume.trigger = RunnableTrigger::timing(milliseconds(20));
  consume.execution_time = [] { return microseconds(100); };
  consume.accesses.push_back({"in", "val", DataAccessKind::kExplicitRead});
  consume.behavior = [&consumed](RunnableContext& ctx) {
    // Drain up to two queued values per activation.
    for (int i = 0; i < 2; ++i) {
      const auto v = ctx.read("in", "val");
      if (v != 0) consumed.push_back(v);
    }
  };
  comp.add_type(
      {"Consumer", {Port{"in", "IVal", PortDirection::kRequired}}, {consume}});
  comp.add_instance({"p", "Producer"});
  comp.add_instance({"k", "Consumer"});
  comp.add_connector({"p", "out", "k", "in"});

  DeploymentPlan plan;
  plan.instances["p"] = {.ecu = "ecu0"};
  plan.instances["k"] = {.ecu = "ecu0"};
  System sys(kernel, trace, comp, plan);
  sys.run_for(milliseconds(200));
  ASSERT_GE(consumed.size(), 10u);
  for (std::size_t i = 1; i < consumed.size(); ++i) {
    EXPECT_EQ(consumed[i], consumed[i - 1] + 1);  // FIFO, lossless
  }
}

namespace {

// Burst producer (5ms, writes exactly values 1..10 then stops) against a
// slow consumer (50ms, one drain per activation): the receiver queue fills
// during the burst, so which values survive depends only on the overflow
// policy, not on steady-state timing.
struct OverflowModel {
  Composition comp;

  OverflowModel(std::vector<std::uint64_t>* sink, std::size_t queue_length,
                QueueOverflow overflow) {
    PortInterface i;
    i.name = "IVal";
    i.kind = PortInterface::Kind::kSenderReceiver;
    DataElement elem{"val", 64, 0, /*queued=*/true};
    elem.queue_length = queue_length;
    elem.overflow = overflow;
    i.elements.push_back(elem);
    comp.add_interface(i);

    Runnable produce;
    produce.name = "produce";
    produce.trigger = RunnableTrigger::timing(milliseconds(5));
    produce.execution_time = [] { return microseconds(100); };
    produce.accesses.push_back({"out", "val", DataAccessKind::kExplicitWrite});
    produce.behavior = [n = std::uint64_t{0}](RunnableContext& ctx) mutable {
      if (n < 10) ctx.write("out", "val", ++n);
    };
    comp.add_type({"Producer",
                   {Port{"out", "IVal", PortDirection::kProvided}}, {produce}});

    Runnable consume;
    consume.name = "consume";
    consume.trigger = RunnableTrigger::timing(milliseconds(50));
    consume.execution_time = [] { return microseconds(100); };
    consume.accesses.push_back({"in", "val", DataAccessKind::kExplicitRead});
    consume.behavior = [sink](RunnableContext& ctx) {
      const auto v = ctx.read("in", "val");
      if (v != 0) sink->push_back(v);
    };
    comp.add_type({"Consumer",
                   {Port{"in", "IVal", PortDirection::kRequired}}, {consume}});

    comp.add_instance({"p", "Producer"});
    comp.add_instance({"k", "Consumer"});
    comp.add_connector({"p", "out", "k", "in"});
  }
};

}  // namespace

TEST(System, QueuedElementRejectPolicyKeepsOldest) {
  Kernel kernel;
  Trace trace;
  std::vector<std::uint64_t> consumed;
  OverflowModel m(&consumed, /*queue_length=*/2, QueueOverflow::kReject);
  DeploymentPlan plan;
  plan.instances["p"] = {.ecu = "ecu0"};
  plan.instances["k"] = {.ecu = "ecu0"};
  System sys(kernel, trace, m.comp, plan);
  sys.run_for(milliseconds(600));
  // The burst (values 1..10 within 45ms) overruns the 2-deep queue while the
  // consumer pops at most once per 50ms. Reject drops the NEWEST writes, so
  // only the earliest values survive; the tail of the burst is lost forever.
  ASSERT_GE(consumed.size(), 2u);
  EXPECT_EQ(consumed[0], 1u);
  for (std::size_t i = 0; i < consumed.size(); ++i) {
    EXPECT_LE(consumed[i], 4u);
    if (i > 0) {
      EXPECT_GT(consumed[i], consumed[i - 1]);
    }
  }
  EXPECT_GE(sys.rte("ecu0").overflows(), 6u);
  EXPECT_GE(trace.count("rte.queue_overflow", "k.in.val"), 6u);
}

TEST(System, QueuedElementDropOldestPolicyKeepsNewest) {
  Kernel kernel;
  Trace trace;
  std::vector<std::uint64_t> consumed;
  OverflowModel m(&consumed, /*queue_length=*/2, QueueOverflow::kDropOldest);
  DeploymentPlan plan;
  plan.instances["p"] = {.ecu = "ecu0"};
  plan.instances["k"] = {.ecu = "ecu0"};
  System sys(kernel, trace, m.comp, plan);
  sys.run_for(milliseconds(600));
  // Drop-oldest displaces the head: after the burst the queue holds the
  // NEWEST values (9, 10), so the consumer ends up at the burst's tail.
  ASSERT_GE(consumed.size(), 2u);
  for (std::size_t i = 1; i < consumed.size(); ++i) {
    EXPECT_GT(consumed[i], consumed[i - 1]);
  }
  EXPECT_EQ(consumed.back(), 10u);
  EXPECT_EQ(consumed[consumed.size() - 2], 9u);
  EXPECT_GE(sys.rte("ecu0").overflows(), 6u);
}

TEST(System, QueuedElementUnboundedOptOutNeverOverflows) {
  Kernel kernel;
  Trace trace;
  std::vector<std::uint64_t> consumed;
  OverflowModel m(&consumed, /*queue_length=*/0, QueueOverflow::kReject);
  DeploymentPlan plan;
  plan.instances["p"] = {.ecu = "ecu0"};
  plan.instances["k"] = {.ecu = "ecu0"};
  System sys(kernel, trace, m.comp, plan);
  sys.run_for(milliseconds(600));
  // queue_length = 0 opts out of the bound: every burst value is retained
  // and eventually drained, in order, with no overflow.
  EXPECT_EQ(sys.rte("ecu0").overflows(), 0u);
  EXPECT_EQ(trace.count("rte.queue_overflow", "k.in.val"), 0u);
  EXPECT_EQ(consumed,
            (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
}

TEST(System, ClientServerCallInlinedAndRouted) {
  Kernel kernel;
  Trace trace;
  Composition comp;
  PortInterface icalc;
  icalc.name = "ICalc";
  icalc.kind = PortInterface::Kind::kClientServer;
  icalc.operations.push_back({"square", milliseconds(2)});
  comp.add_interface(icalc);

  comp.add_type(
      {"Server", {Port{"calc", "ICalc", PortDirection::kProvided}}, {}});
  comp.set_operation_handler("Server", "calc", "square",
                             [](std::uint64_t x) { return x * x; });

  std::vector<std::uint64_t> results;
  Runnable client_run;
  client_run.name = "client_run";
  client_run.trigger = RunnableTrigger::timing(milliseconds(20));
  client_run.execution_time = [] { return milliseconds(1); };
  client_run.server_calls.push_back("calc.square");
  client_run.behavior = [&results](RunnableContext& ctx) {
    results.push_back(ctx.call("calc", "square", 7));
  };
  comp.add_type(
      {"Client", {Port{"calc", "ICalc", PortDirection::kRequired}}, {client_run}});

  comp.add_instance({"srv", "Server"});
  comp.add_instance({"cli", "Client"});
  comp.add_connector({"srv", "calc", "cli", "calc"});

  DeploymentPlan plan;
  plan.instances["srv"] = {.ecu = "ecu0"};
  plan.instances["cli"] = {.ecu = "ecu0"};
  System sys(kernel, trace, comp, plan);
  sys.start();
  kernel.run_until(milliseconds(100));
  ASSERT_GE(results.size(), 4u);
  EXPECT_EQ(results[0], 49u);
  // The 2ms server WCET is inlined: client response = 1 + 2 = 3ms.
  auto* task = sys.task_of("cli", milliseconds(20));
  ASSERT_NE(task, nullptr);
  EXPECT_DOUBLE_EQ(task->response_times().max(), 3.0);
}

TEST(System, CrossEcuClientServerRejected) {
  Kernel kernel;
  Trace trace;
  Composition comp;
  PortInterface icalc;
  icalc.name = "ICalc";
  icalc.kind = PortInterface::Kind::kClientServer;
  icalc.operations.push_back({"op", milliseconds(1)});
  comp.add_interface(icalc);
  comp.add_type(
      {"Server", {Port{"calc", "ICalc", PortDirection::kProvided}}, {}});
  Runnable r;
  r.name = "r";
  r.trigger = RunnableTrigger::timing(milliseconds(10));
  comp.add_type(
      {"Client", {Port{"calc", "ICalc", PortDirection::kRequired}}, {r}});
  comp.add_instance({"srv", "Server"});
  comp.add_instance({"cli", "Client"});
  comp.add_connector({"srv", "calc", "cli", "calc"});
  DeploymentPlan plan;
  plan.instances["srv"] = {.ecu = "ecuA"};
  plan.instances["cli"] = {.ecu = "ecuB"};
  EXPECT_THROW(System(kernel, trace, comp, plan), std::invalid_argument);
}

TEST(System, InitRunnableRunsOnce) {
  Kernel kernel;
  Trace trace;
  Composition comp;
  comp.add_interface(value_interface("IVal"));
  int init_runs = 0;
  Runnable init;
  init.name = "init";
  init.trigger = RunnableTrigger::init();
  init.behavior = [&init_runs](RunnableContext&) { ++init_runs; };
  comp.add_type({"C", {}, {init}});
  comp.add_instance({"c", "C"});
  DeploymentPlan plan;
  plan.instances["c"] = {.ecu = "ecu0"};
  System sys(kernel, trace, comp, plan);
  sys.run_for(milliseconds(50));
  EXPECT_EQ(init_runs, 1);
}

TEST(System, BudgetedInstanceGetsKilled) {
  Kernel kernel;
  Trace trace;
  std::vector<std::uint64_t> consumed;
  PipelineModel m(&consumed);
  DeploymentPlan plan;
  plan.instances["p"] = {.ecu = "ecu0",
                         .budget = microseconds(50),  // produce needs 100us
                         .overrun_action = orte::os::OverrunAction::kKillJob};
  plan.instances["k"] = {.ecu = "ecu0"};
  System sys(kernel, trace, m.comp, plan);
  sys.run_for(milliseconds(100));
  auto* ptask = sys.task_of("p", milliseconds(10));
  ASSERT_NE(ptask, nullptr);
  EXPECT_GT(ptask->jobs_killed(), 5u);
  EXPECT_EQ(ptask->jobs_completed(), 0u);
  EXPECT_TRUE(consumed.empty() ||
              consumed.back() == 0u);  // producer never published
}

TEST(System, UndeployedInstanceRejected) {
  Kernel kernel;
  Trace trace;
  std::vector<std::uint64_t> consumed;
  PipelineModel m(&consumed);
  DeploymentPlan plan;
  plan.instances["p"] = {.ecu = "ecu0"};  // k missing
  EXPECT_THROW(System(kernel, trace, m.comp, plan), std::invalid_argument);
}

TEST(System, ModeDisabledRunnableSkipsExecution) {
  Kernel kernel;
  Trace trace;
  Composition comp;
  comp.add_interface(value_interface("IVal"));
  bool enabled = true;
  int runs = 0;
  Runnable r;
  r.name = "r";
  r.trigger = RunnableTrigger::timing(milliseconds(10));
  r.execution_time = [] { return milliseconds(2); };
  r.enabled_if = [&enabled] { return enabled; };
  r.behavior = [&runs](RunnableContext&) { ++runs; };
  comp.add_type({"C", {}, {r}});
  comp.add_instance({"c", "C"});
  DeploymentPlan plan;
  plan.instances["c"] = {.ecu = "ecu0"};
  System sys(kernel, trace, comp, plan);
  sys.start();
  kernel.run_until(milliseconds(45));  // activations at 0,10,20,30,40
  EXPECT_EQ(runs, 5);
  const double busy_enabled = sys.ecu("ecu0").utilization();
  EXPECT_NEAR(busy_enabled, 2.0 / 10.0, 0.05);
  // Disable: subsequent activations consume no CPU and skip the behavior.
  enabled = false;
  kernel.run_until(milliseconds(95));
  EXPECT_EQ(runs, 5);
  auto* task = sys.task_of("c", milliseconds(10));
  ASSERT_NE(task, nullptr);
  // Disabled jobs complete instantly.
  EXPECT_DOUBLE_EQ(task->response_times().min(), 0.0);
}

TEST(System, SmallSignalsSharePackedPdus) {
  // Four 16-bit elements produced by one ECU at one period must be packed
  // into a single 8-byte frame (the generator calls analysis::pack_signals),
  // yet every receiver still sees its own correct value.
  Kernel kernel;
  Trace trace;
  Composition comp;
  PortInterface iq;
  iq.name = "IQuad";
  for (int i = 0; i < 4; ++i) {
    iq.elements.push_back(DataElement{"e" + std::to_string(i), 16, 0, false});
  }
  comp.add_interface(iq);

  Runnable produce;
  produce.name = "produce";
  produce.trigger = RunnableTrigger::timing(milliseconds(10));
  produce.execution_time = [] { return microseconds(100); };
  for (int i = 0; i < 4; ++i) {
    produce.accesses.push_back(
        {"out", "e" + std::to_string(i), DataAccessKind::kExplicitWrite});
  }
  produce.behavior = [n = std::uint64_t{0}](RunnableContext& ctx) mutable {
    ++n;
    for (int i = 0; i < 4; ++i) {
      ctx.write("out", "e" + std::to_string(i),
                (100 * n + static_cast<std::uint64_t>(i)) & 0xFFFF);
    }
  };
  comp.add_type({"Producer",
                 {Port{"out", "IQuad", PortDirection::kProvided}}, {produce}});

  std::map<std::string, std::uint64_t> last;
  Runnable consume;
  consume.name = "consume";
  consume.trigger = RunnableTrigger::timing(milliseconds(10));
  consume.execution_time = [] { return microseconds(100); };
  for (int i = 0; i < 4; ++i) {
    consume.accesses.push_back(
        {"in", "e" + std::to_string(i), DataAccessKind::kExplicitRead});
  }
  consume.behavior = [&last](RunnableContext& ctx) {
    for (int i = 0; i < 4; ++i) {
      last["e" + std::to_string(i)] = ctx.read("in", "e" + std::to_string(i));
    }
  };
  comp.add_type({"Consumer",
                 {Port{"in", "IQuad", PortDirection::kRequired}}, {consume}});

  comp.add_instance({"p", "Producer"});
  comp.add_instance({"k", "Consumer"});
  comp.add_connector({"p", "out", "k", "in"});

  DeploymentPlan plan;
  plan.instances["p"] = {.ecu = "ecuA"};
  plan.instances["k"] = {.ecu = "ecuB"};
  System sys(kernel, trace, comp, plan);
  EXPECT_EQ(sys.signal_count(), 4u);
  sys.run_for(milliseconds(105));

  // Values decode correctly from the shared payload...
  const std::uint64_t n = (last.at("e0") - 0) / 100;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(last.at("e" + std::to_string(i)),
              100 * n + static_cast<std::uint64_t>(i));
  }
  EXPECT_GE(n, 9u);
  // ...and all four signals landed in one shared frame identifier.
  std::set<std::int64_t> frame_ids;
  for (const auto& rec : trace.records()) {
    if (rec.category == "can.rx") frame_ids.insert(rec.value);
  }
  EXPECT_EQ(frame_ids.size(), 1u);
}

TEST(System, ConfigurationCheckBoundsSimulation) {
  // §2's "prior to implementation system configuration checks": the verdict
  // from System::analyze() must upper-bound what the running system does.
  Kernel kernel;
  Trace trace;
  std::vector<std::uint64_t> consumed;
  PipelineModel m(&consumed);
  DeploymentPlan plan;
  plan.instances["p"] = {.ecu = "ecuA"};
  plan.instances["k"] = {.ecu = "ecuA"};  // same ECU: both tasks periodic
  System sys(kernel, trace, m.comp, plan);
  const auto verdict = sys.analyze();
  EXPECT_TRUE(verdict.schedulable);
  EXPECT_TRUE(verdict.complete);
  sys.run_for(milliseconds(500));
  for (const char* inst : {"p", "k"}) {
    auto* task = sys.task_of(inst, milliseconds(10));
    ASSERT_NE(task, nullptr);
    const auto bound = verdict.task_response.at(task->name());
    EXPECT_LE(task->response_times().max(), orte::sim::to_ms(bound) + 1e-9);
  }
}

TEST(System, ConfigurationCheckFlagsIncompleteness) {
  // A data-received consumer is event-activated: the per-resource check
  // cannot bound it and must say so instead of pretending.
  Kernel kernel;
  Trace trace;
  Composition comp;
  comp.add_interface(value_interface("IVal"));
  Runnable produce;
  produce.name = "produce";
  produce.trigger = RunnableTrigger::timing(milliseconds(10));
  produce.execution_time = [] { return microseconds(100); };
  produce.accesses.push_back({"out", "val", DataAccessKind::kExplicitWrite});
  comp.add_type({"Producer",
                 {Port{"out", "IVal", PortDirection::kProvided}}, {produce}});
  Runnable on_data;
  on_data.name = "on_data";
  on_data.trigger = RunnableTrigger::data_received("in", "val");
  on_data.execution_time = [] { return microseconds(10); };
  on_data.accesses.push_back({"in", "val", DataAccessKind::kExplicitRead});
  comp.add_type({"Consumer",
                 {Port{"in", "IVal", PortDirection::kRequired}}, {on_data}});
  comp.add_instance({"p", "Producer"});
  comp.add_instance({"k", "Consumer"});
  comp.add_connector({"p", "out", "k", "in"});
  DeploymentPlan plan;
  plan.instances["p"] = {.ecu = "ecuA"};
  plan.instances["k"] = {.ecu = "ecuB"};
  System sys(kernel, trace, comp, plan);
  const auto verdict = sys.analyze();
  EXPECT_FALSE(verdict.complete);  // the event task is not covered
  EXPECT_EQ(verdict.pdu_response.size(), 1u);  // the PDU itself is
}

TEST(System, BroadcastFanOutToMultipleEcus) {
  // One provided port wired to receivers on two different ECUs: a single
  // bus frame must feed both (CAN is a broadcast medium; the generator
  // creates one tx PDU and one rx PDU per receiving ECU).
  Kernel kernel;
  Trace trace;
  Composition comp;
  comp.add_interface(value_interface("IVal"));
  Runnable produce;
  produce.name = "produce";
  produce.trigger = RunnableTrigger::timing(milliseconds(10));
  produce.execution_time = [] { return microseconds(100); };
  produce.accesses.push_back({"out", "val", DataAccessKind::kExplicitWrite});
  produce.behavior = [n = std::uint64_t{0}](RunnableContext& ctx) mutable {
    ctx.write("out", "val", ++n);
  };
  comp.add_type({"Producer",
                 {Port{"out", "IVal", PortDirection::kProvided}}, {produce}});

  std::map<std::string, std::uint64_t> last;
  Runnable consume;
  consume.name = "consume";
  consume.trigger = RunnableTrigger::data_received("in", "val");
  consume.execution_time = [] { return microseconds(50); };
  consume.accesses.push_back({"in", "val", DataAccessKind::kExplicitRead});
  consume.behavior = [&last](RunnableContext& ctx) {
    last[ctx.instance()] = ctx.read("in", "val");
  };
  comp.add_type({"Consumer",
                 {Port{"in", "IVal", PortDirection::kRequired}}, {consume}});

  comp.add_instance({"p", "Producer"});
  comp.add_instance({"k1", "Consumer"});
  comp.add_instance({"k2", "Consumer"});
  comp.add_connector({"p", "out", "k1", "in"});
  comp.add_connector({"p", "out", "k2", "in"});

  DeploymentPlan plan;
  plan.instances["p"] = {.ecu = "ecuA"};
  plan.instances["k1"] = {.ecu = "ecuB"};
  plan.instances["k2"] = {.ecu = "ecuC"};
  System sys(kernel, trace, comp, plan);
  sys.run_for(milliseconds(100));
  // Both remote consumers track the producer; one frame per update serves
  // both ECUs (10 updates -> ~10 bus frames, not 20).
  EXPECT_GE(last["k1"], 9u);
  EXPECT_EQ(last["k1"], last["k2"]);
  EXPECT_LE(sys.can_bus()->stats().frames_delivered(), 11u);
}

TEST(System, FullSystemRunsAreDeterministic) {
  // Bit-for-bit reproducibility of a whole generated system: two identical
  // runs produce identical trace event counts and task statistics.
  auto run = [] {
    Kernel kernel;
    Trace trace;
    std::vector<std::uint64_t> consumed;
    PipelineModel m(&consumed);
    DeploymentPlan plan;
    plan.instances["p"] = {.ecu = "ecuA"};
    plan.instances["k"] = {.ecu = "ecuB"};
    plan.bus = BusKind::kFlexRay;
    System sys(kernel, trace, m.comp, plan);
    sys.run_for(milliseconds(500));
    return std::tuple{consumed, trace.records().size(),
                      sys.task_of("k", milliseconds(10))->response_times()
                          .max()};
  };
  EXPECT_EQ(run(), run());
}

TEST(System, TimeTriggeredDeploymentRunsContentionFree) {
  Kernel kernel;
  Trace trace;
  std::vector<std::uint64_t> consumed;
  PipelineModel m(&consumed);
  DeploymentPlan plan;
  plan.instances["p"] = {.ecu = "ecu0"};
  plan.instances["k"] = {.ecu = "ecu0"};
  plan.scheduling = SchedulingPolicy::kTimeTriggered;
  System sys(kernel, trace, m.comp, plan);
  sys.run_for(milliseconds(200));
  // Data still flows...
  ASSERT_GE(consumed.size(), 15u);
  // ...and both table-dispatched tasks run with zero response variation.
  for (const char* inst : {"p", "k"}) {
    auto* task = sys.task_of(inst, milliseconds(10));
    ASSERT_NE(task, nullptr) << inst;
    EXPECT_EQ(task->deadline_misses(), 0u);
    EXPECT_DOUBLE_EQ(task->response_times().min(),
                     task->response_times().max());
  }
}

TEST(System, TimeTriggeredSynthesisFailureRejected) {
  Kernel kernel;
  Trace trace;
  Composition comp;
  // Two 10ms runnables whose declared WCETs (7ms each) cannot be placed
  // non-preemptively.
  for (const char* name : {"A", "B"}) {
    Runnable r;
    r.name = std::string("run_") + name;
    r.trigger = RunnableTrigger::timing(milliseconds(10));
    r.execution_time = [] { return milliseconds(7); };
    r.wcet_bound = milliseconds(7);
    comp.add_type({name, {}, {r}});
    comp.add_instance({std::string("i") + name, name});
  }
  DeploymentPlan plan;
  plan.instances["iA"] = {.ecu = "ecu0"};
  plan.instances["iB"] = {.ecu = "ecu0"};
  plan.scheduling = SchedulingPolicy::kTimeTriggered;
  EXPECT_THROW(System(kernel, trace, comp, plan), std::invalid_argument);
}

TEST(Rte, UndeclaredAccessRejected) {
  Kernel kernel;
  Trace trace;
  Composition comp;
  comp.add_interface(value_interface("IVal"));
  Runnable r;
  r.name = "r";
  r.trigger = RunnableTrigger::timing(milliseconds(10));
  // No declared accesses, but behavior reads anyway.
  r.behavior = [](RunnableContext& ctx) { ctx.read("in", "val"); };
  comp.add_type({"C", {Port{"in", "IVal", PortDirection::kRequired}}, {r}});
  comp.add_instance({"c", "C"});
  DeploymentPlan plan;
  plan.instances["c"] = {.ecu = "ecu0"};
  System sys(kernel, trace, comp, plan);
  EXPECT_THROW(sys.run_for(milliseconds(20)), std::logic_error);
}

}  // namespace
