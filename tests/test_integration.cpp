// Integration tests spanning RTE + OS + buses + BSW + analysis.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/e2e.hpp"
#include "analysis/flexray_analysis.hpp"
#include "analysis/rta.hpp"
#include "analysis/tt_schedule.hpp"
#include "bsw/dem.hpp"
#include "bsw/mode.hpp"
#include "bsw/watchdog.hpp"
#include "noc/noc.hpp"
#include "os/ecu.hpp"
#include "sim/kernel.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "vfb/model.hpp"
#include "vfb/system.hpp"

namespace {

using namespace orte;
using sim::Kernel;
using sim::Time;
using sim::Trace;
using sim::microseconds;
using sim::milliseconds;
using vfb::BusKind;
using vfb::Composition;
using vfb::DataAccessKind;
using vfb::DataElement;
using vfb::DeploymentPlan;
using vfb::Port;
using vfb::PortDirection;
using vfb::PortInterface;
using vfb::Runnable;
using vfb::RunnableContext;
using vfb::RunnableTrigger;
using vfb::System;

/// Sensor -> controller -> actuator pipeline across three ECUs; actuator
/// records the end-to-end latency stamped by the sensor.
struct ControlPath {
  Composition comp;
  sim::Stats e2e_ms;

  ControlPath() {
    PortInterface ival;
    ival.name = "IVal";
    ival.elements.push_back(DataElement{"val", 64, 0, false});
    comp.add_interface(ival);

    Runnable sense;
    sense.name = "sense";
    sense.trigger = RunnableTrigger::timing(milliseconds(10));
    sense.execution_time = [] { return microseconds(200); };
    sense.accesses.push_back({"out", "val", DataAccessKind::kExplicitWrite});
    sense.behavior = [](RunnableContext& ctx) {
      ctx.write("out", "val", static_cast<std::uint64_t>(ctx.now()));
    };
    comp.add_type(
        {"Sensor", {Port{"out", "IVal", PortDirection::kProvided}}, {sense}});

    Runnable control;
    control.name = "control";
    control.trigger = RunnableTrigger::data_received("in", "val");
    control.execution_time = [] { return microseconds(500); };
    control.accesses.push_back({"in", "val", DataAccessKind::kExplicitRead});
    control.accesses.push_back({"out", "val", DataAccessKind::kExplicitWrite});
    control.behavior = [](RunnableContext& ctx) {
      ctx.write("out", "val", ctx.read("in", "val"));  // forward timestamp
    };
    comp.add_type({"Controller",
                   {Port{"in", "IVal", PortDirection::kRequired},
                    Port{"out", "IVal", PortDirection::kProvided}},
                   {control}});

    Runnable actuate;
    actuate.name = "actuate";
    actuate.trigger = RunnableTrigger::data_received("in", "val");
    actuate.execution_time = [] { return microseconds(200); };
    actuate.accesses.push_back({"in", "val", DataAccessKind::kExplicitRead});
    actuate.behavior = [this](RunnableContext& ctx) {
      const auto stamped = static_cast<Time>(ctx.read("in", "val"));
      e2e_ms.add(sim::to_ms(ctx.now() - stamped));
    };
    comp.add_type({"Actuator",
                   {Port{"in", "IVal", PortDirection::kRequired}}, {actuate}});

    comp.add_instance({"sensor", "Sensor"});
    comp.add_instance({"ctrl", "Controller"});
    comp.add_instance({"act", "Actuator"});
    comp.add_connector({"sensor", "out", "ctrl", "in"});
    comp.add_connector({"ctrl", "out", "act", "in"});
  }

  DeploymentPlan plan(BusKind bus) const {
    DeploymentPlan p;
    p.instances["sensor"] = {.ecu = "ecu_sense"};
    p.instances["ctrl"] = {.ecu = "ecu_ctrl"};
    p.instances["act"] = {.ecu = "ecu_act"};
    p.bus = bus;
    return p;
  }
};

TEST(Integration, DistributedControlPathOverCan) {
  Kernel kernel;
  Trace trace;
  ControlPath path;
  System sys(kernel, trace, path.comp, path.plan(BusKind::kCan));
  EXPECT_EQ(sys.signal_count(), 2u);
  sys.run_for(milliseconds(1000));
  ASSERT_GE(path.e2e_ms.count(), 90u);
  // Two 8-byte CAN frames (0.27ms each at 500k) + 0.9ms compute, idle bus:
  // end-to-end stays well under 3ms and is always positive.
  EXPECT_GT(path.e2e_ms.min(), 0.0);
  EXPECT_LT(path.e2e_ms.max(), 3.0);
}

TEST(Integration, CanLatencyWithinAnalyticalBound) {
  Kernel kernel;
  Trace trace;
  ControlPath path;
  System sys(kernel, trace, path.comp, path.plan(BusKind::kCan));
  sys.run_for(milliseconds(1000));
  // Analytical composition: sensor task + frame + controller + frame + act.
  const auto bound = analysis::e2e_latency({
      {.name = "sense", .response = microseconds(200)},
      {.name = "can1", .response = microseconds(276)},
      {.name = "ctrl", .response = microseconds(500)},
      {.name = "can2", .response = microseconds(276)},
      {.name = "act", .response = microseconds(200)},
  });
  EXPECT_LE(path.e2e_ms.max(), sim::to_ms(bound.worst) + 1e-9);
}

TEST(Integration, DistributedControlPathOverFlexRay) {
  Kernel kernel;
  Trace trace;
  ControlPath path;
  auto plan = path.plan(BusKind::kFlexRay);
  System sys(kernel, trace, path.comp, plan);
  sys.run_for(milliseconds(1000));
  ASSERT_GE(path.e2e_ms.count(), 50u);
  // Each hop waits for its static slot: bounded by two cycles + compute.
  const auto cycle = sys.flexray_bus()->cycle_len();
  const double worst_ms =
      sim::to_ms(2 * (cycle + sys.flexray_bus()->static_slot_len())) + 0.9 + 0.1;
  EXPECT_LT(path.e2e_ms.max(), worst_ms);
  EXPECT_GT(path.e2e_ms.min(), 0.0);
}

TEST(Integration, ComTimeoutFeedsDemAndModeManagement) {
  // A COM reception timeout (silent sender) debounces into a DTC and drives
  // the application into a limp-home mode — §2's error-handling use case.
  Kernel kernel;
  Trace trace;
  bsw::Dem dem(kernel, trace);
  dem.add_event({.name = "comm_loss", .debounce_threshold = 1});
  bsw::ModeMachine mode(kernel, trace, "app", "RUN");
  mode.add_mode("LIMP_HOME");
  mode.add_transition("RUN", "LIMP_HOME");
  dem.on_dtc_stored([&](const bsw::Dtc& dtc) {
    if (dtc.event == "comm_loss") mode.request("LIMP_HOME");
  });

  can::CanBus bus(kernel, trace, {});
  auto& rx_ctrl = bus.attach();
  bsw::Com com(kernel, trace);
  com.add_rx_ipdu({.name = "speed_pdu", .frame_id = 0x20, .length_bytes = 8,
                   .rx_timeout = milliseconds(50)},
                  rx_ctrl);
  com.on_rx_timeout([&](const std::string&) {
    dem.report("comm_loss", bsw::EventStatus::kFailed);
  });
  com.start();
  kernel.run_until(milliseconds(200));
  EXPECT_TRUE(dem.is_failed("comm_loss"));
  EXPECT_TRUE(mode.in("LIMP_HOME"));
  ASSERT_TRUE(dem.dtc("comm_loss").has_value());
}

TEST(Integration, BudgetKillTripsAliveSupervision) {
  // A task whose jobs get killed by budget enforcement stops reaching its
  // watchdog checkpoint; alive supervision catches the resulting silence.
  Kernel kernel;
  Trace trace;
  os::Ecu ecu(kernel, trace, "host");
  bsw::WatchdogManager wdg(kernel, trace, milliseconds(50));
  wdg.supervise({.entity = "job_done", .min_indications = 1});
  auto& t = ecu.add_task({.name = "t", .priority = 1,
                          .period = milliseconds(10),
                          .budget = milliseconds(2),
                          .overrun_action = os::OverrunAction::kKillJob});
  t.set_body(milliseconds(5), [&] { wdg.checkpoint("job_done"); });
  ecu.start();
  wdg.start();
  kernel.run_until(milliseconds(200));
  EXPECT_EQ(t.jobs_completed(), 0u);
  EXPECT_GT(wdg.violations(), 0u);
}

TEST(Integration, SynthesizedTableRunsContentionFree) {
  // Synthesize a TT table with the analysis library, install it on an ECU,
  // and verify zero response-time variation (the §1 timing-isolation ideal).
  Kernel kernel;
  Trace trace;
  const auto sched = analysis::synthesize_schedule({
      {.task = "a", .period = milliseconds(5), .wcet = milliseconds(1)},
      {.task = "b", .period = milliseconds(10), .wcet = milliseconds(2)},
      {.task = "c", .period = milliseconds(20), .wcet = milliseconds(3)},
  });
  ASSERT_TRUE(sched.has_value());
  os::Ecu ecu(kernel, trace, "tt");
  ecu.add_task({.name = "a", .priority = 1}).set_body(milliseconds(1));
  ecu.add_task({.name = "b", .priority = 1}).set_body(milliseconds(2));
  ecu.add_task({.name = "c", .priority = 1}).set_body(milliseconds(3));
  ecu.set_schedule_table(sched->entries, sched->cycle);
  ecu.start();
  kernel.run_until(milliseconds(500));
  for (const auto& task : ecu.tasks()) {
    EXPECT_EQ(task->deadline_misses(), 0u);
    // Dispatch at reserved windows: response == wcet, always.
    EXPECT_DOUBLE_EQ(task->response_times().min(),
                     task->response_times().max());
  }
}

TEST(Integration, NocConnectsTwoEcus) {
  // Two IP cores, each an Ecu, exchanging messages through the TDMA NoC —
  // the §4 integrated-architecture execution environment.
  Kernel kernel;
  Trace trace;
  noc::Noc chip(kernel, trace, {.arbitration = noc::Arbitration::kTdma});
  auto& ni0 = chip.attach("core0");
  auto& ni1 = chip.attach("core1");
  os::Ecu core0(kernel, trace, "core0");
  os::Ecu core1(kernel, trace, "core1");

  auto& consumer = core1.add_task({.name = "consumer", .priority = 1});
  sim::Stats latencies;
  ni1.on_receive([&](const noc::NocMessage& m) {
    latencies.add(sim::to_us(m.delivered_at - m.enqueued_at));
    core1.activate(consumer);
  });
  consumer.set_body(microseconds(50));

  auto& producer = core0.add_task({.name = "producer", .priority = 1,
                                   .period = milliseconds(1)});
  producer.set_body(microseconds(100), [&] {
    noc::NocMessage m;
    m.destination = 1;
    m.name = "state";
    m.bytes = 64;
    ni0.send(m);
  });
  core0.start();
  core1.start();
  chip.start();
  kernel.run_until(milliseconds(100));
  EXPECT_GE(consumer.jobs_completed(), 99u);
  // NI-to-NI latency bounded by one NoC period + serialization.
  EXPECT_LE(latencies.max(),
            sim::to_us(chip.period()) + sim::to_us(chip.tx_time(64)));
}

TEST(Integration, RtaBoundHoldsOnSimulatedEcu) {
  // The response-time analysis must upper-bound what the simulated ECU
  // actually does on the same task set.
  Kernel kernel;
  Trace trace;
  os::Ecu ecu(kernel, trace, "e");
  std::vector<analysis::AnalysisTask> model{
      {.name = "t1", .wcet = milliseconds(1), .period = milliseconds(4),
       .priority = 3},
      {.name = "t2", .wcet = milliseconds(2), .period = milliseconds(8),
       .priority = 2},
      {.name = "t3", .wcet = milliseconds(3), .period = milliseconds(16),
       .priority = 1},
  };
  for (const auto& m : model) {
    ecu.add_task({.name = m.name, .priority = m.priority, .period = m.period})
        .set_body(m.wcet);
  }
  ecu.start();
  kernel.run_until(milliseconds(1600));
  const auto result = analysis::analyze(model);
  ASSERT_TRUE(result.schedulable);
  for (const auto& m : model) {
    const double bound_ms = sim::to_ms(result.response.at(m.name));
    EXPECT_LE(ecu.find_task(m.name)->response_times().max(), bound_ms + 1e-9);
    // The synchronous release at t=0 makes the bound tight here.
    EXPECT_DOUBLE_EQ(ecu.find_task(m.name)->response_times().max(), bound_ms);
  }
}

}  // namespace
