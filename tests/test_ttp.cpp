// Unit tests: TTP — TDMA rounds, membership service, bus guardian, fault
// injection (crash / babbling idiot).
#include <gtest/gtest.h>

#include <vector>

#include "sim/kernel.hpp"
#include "sim/trace.hpp"
#include "ttp/ttp_bus.hpp"

namespace {

using namespace orte::ttp;
using orte::net::Frame;
using orte::sim::Kernel;
using orte::sim::Time;
using orte::sim::Trace;
using orte::sim::microseconds;
using orte::sim::milliseconds;

struct Fixture {
  Kernel kernel;
  Trace trace;
};

TtpConfig config(bool guardian) {
  TtpConfig cfg;
  cfg.slot_len = microseconds(100);
  cfg.bus_guardian = guardian;
  return cfg;
}

TEST(Ttp, RoundLengthIsNodesTimesSlot) {
  Fixture f;
  TtpBus bus(f.kernel, f.trace, config(true));
  bus.attach("a");
  bus.attach("b");
  bus.attach("c");
  EXPECT_EQ(bus.round_len(), microseconds(300));
}

TEST(Ttp, DataFrameDeliveredInOwnSlot) {
  Fixture f;
  TtpBus bus(f.kernel, f.trace, config(true));
  auto& a = bus.attach("a");
  auto& b = bus.attach("b");
  std::vector<std::pair<Time, std::string>> rx;
  b.on_receive([&](const Frame& fr) { rx.emplace_back(f.kernel.now(), fr.name); });
  f.kernel.schedule_at(0, [&] {
    Frame fr;
    fr.name = "steer";
    fr.payload = {1, 2, 3};
    a.send(std::move(fr));
  });
  bus.start();
  f.kernel.run_until(microseconds(150));
  ASSERT_GE(rx.size(), 1u);
  EXPECT_EQ(rx[0].second, "steer");
  EXPECT_EQ(rx[0].first, microseconds(100));  // end of a's slot (slot 0)
}

TEST(Ttp, HeartbeatsMaintainMembership) {
  Fixture f;
  TtpBus bus(f.kernel, f.trace, config(true));
  bus.attach("a");
  bus.attach("b");
  bus.start();
  f.kernel.run_until(milliseconds(10));
  EXPECT_EQ(bus.membership(), (std::vector<bool>{true, true}));
  EXPECT_EQ(bus.membership_losses(), 0u);
}

TEST(Ttp, CrashedNodeLeavesMembershipWithinOneRound) {
  Fixture f;
  TtpBus bus(f.kernel, f.trace, config(true));
  auto& a = bus.attach("a");
  bus.attach("b");
  bus.attach("c");
  a.crash_at(microseconds(350));  // middle of round 2
  bus.start();
  f.kernel.run_until(milliseconds(2));
  EXPECT_EQ(bus.membership()[0], false);
  EXPECT_EQ(bus.membership()[1], true);
  EXPECT_EQ(bus.membership()[2], true);
  EXPECT_EQ(bus.membership_losses(), 1u);
  // Loss detected at the end of a's first missed slot: slot starts at 600us.
  bool found = false;
  for (const auto& rec : f.trace.records()) {
    if (rec.category == "ttp.membership_loss" && rec.subject == "a") {
      EXPECT_EQ(rec.when, microseconds(700));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Ttp, BabblerWithGuardianIsContained) {
  Fixture f;
  TtpBus bus(f.kernel, f.trace, config(true));
  bus.attach("a");
  auto& b = bus.attach("b");
  bus.attach("c");
  b.babble(microseconds(0), milliseconds(5));
  bus.start();
  f.kernel.run_until(milliseconds(5));
  // Guardian blocks every out-of-slot attempt; nobody loses membership.
  EXPECT_EQ(bus.collisions(), 0u);
  EXPECT_EQ(bus.membership_losses(), 0u);
  EXPECT_GT(bus.guardian_blocks(), 0u);
  EXPECT_EQ(bus.membership(), (std::vector<bool>{true, true, true}));
}

TEST(Ttp, BabblerWithoutGuardianDestroysCommunication) {
  Fixture f;
  TtpBus bus(f.kernel, f.trace, config(false));
  bus.attach("a");
  auto& b = bus.attach("b");
  bus.attach("c");
  b.babble(microseconds(0), milliseconds(5));
  bus.start();
  f.kernel.run_until(milliseconds(5));
  // Every slot of a and c collides with the babbler.
  EXPECT_GT(bus.collisions(), 0u);
  EXPECT_EQ(bus.membership()[0], false);
  EXPECT_EQ(bus.membership()[2], false);
  // The babbler's own slot stays clean: it keeps its membership.
  EXPECT_EQ(bus.membership()[1], true);
}

TEST(Ttp, ReintegrationAfterBabbleEnds) {
  Fixture f;
  TtpBus bus(f.kernel, f.trace, config(false));
  bus.attach("a");
  auto& b = bus.attach("b");
  b.babble(microseconds(0), microseconds(600));
  bus.start();
  f.kernel.run_until(milliseconds(3));
  // After the babble window, a transmits cleanly again and is readmitted.
  EXPECT_EQ(bus.membership()[0], true);
  EXPECT_GT(f.trace.count("ttp.membership_gain", "a"), 0u);
}

TEST(Ttp, StartWithoutNodesThrows) {
  Fixture f;
  TtpBus bus(f.kernel, f.trace, config(true));
  EXPECT_THROW(bus.start(), std::logic_error);
}

TEST(Ttp, StateMessageOverwriteBeforeSlot) {
  Fixture f;
  TtpBus bus(f.kernel, f.trace, config(true));
  auto& a = bus.attach("a");
  auto& b = bus.attach("b");
  std::vector<std::string> rx;
  b.on_receive([&](const Frame& fr) { rx.push_back(fr.name); });
  f.kernel.schedule_at(0, [&] {
    Frame f1;
    f1.name = "old";
    a.send(std::move(f1));
    Frame f2;
    f2.name = "new";
    a.send(std::move(f2));
  });
  bus.start();
  f.kernel.run_until(microseconds(150));
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0], "new");
}

}  // namespace
