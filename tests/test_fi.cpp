// Fault-injection campaign engine (src/fi): scoring rules, blame
// attribution, the isolation-helper unification, and the brake_by_wire
// campaign's headline properties — thread-count-invariant determinism and
// non-zero detected/contained coverage for all four fault classes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bsw/dem.hpp"
#include "bsw/mode.hpp"
#include "fi/campaign.hpp"
#include "fi/fault.hpp"
#include "fi/injector.hpp"
#include "fi/workloads.hpp"
#include "isolation/fault_injection.hpp"
#include "rv/health.hpp"
#include "rv/registry.hpp"
#include "sim/kernel.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"
#include "validation/detectability.hpp"
#include "vfb/system.hpp"

namespace {

using namespace orte;
using fi::Detection;
using fi::Domain;
using fi::Evidence;
using fi::Fault;
using fi::FaultClass;
using fi::FaultKind;
using fi::Outcome;
using sim::milliseconds;

// --- Fault catalog ------------------------------------------------------------

TEST(FiFault, ClassOfEveryKind) {
  EXPECT_EQ(fi::fault_class(FaultKind::kFrameDrop), FaultClass::kBus);
  EXPECT_EQ(fi::fault_class(FaultKind::kFrameCorrupt), FaultClass::kBus);
  EXPECT_EQ(fi::fault_class(FaultKind::kFrameDelay), FaultClass::kBus);
  EXPECT_EQ(fi::fault_class(FaultKind::kBabblingIdiot), FaultClass::kBus);
  EXPECT_EQ(fi::fault_class(FaultKind::kValueCorrupt), FaultClass::kRteValue);
  EXPECT_EQ(fi::fault_class(FaultKind::kStuckAt), FaultClass::kRteValue);
  EXPECT_EQ(fi::fault_class(FaultKind::kTaskCrash), FaultClass::kTiming);
  EXPECT_EQ(fi::fault_class(FaultKind::kWcetOverrun), FaultClass::kTiming);
  EXPECT_EQ(fi::fault_class(FaultKind::kExecutionJitter),
            FaultClass::kTiming);
  EXPECT_EQ(fi::fault_class(FaultKind::kClockDrift), FaultClass::kClock);
}

TEST(FiFault, LabelNamesKindAndTarget) {
  EXPECT_EQ((Fault{.kind = FaultKind::kWcetOverrun, .target = "pedal"})
                .label(),
            "wcet_overrun:pedal");
  EXPECT_EQ((Fault{.kind = FaultKind::kBabblingIdiot}).label(),
            "babbling_idiot");
}

// --- Blame attribution --------------------------------------------------------

rv::Violation violation_on(std::string subject, std::string kind = "range") {
  rv::Violation v;
  v.subject = std::move(subject);
  v.kind = std::move(kind);
  return v;
}

TEST(FiScoring, BlamedInstanceParsesSubjectShapes) {
  EXPECT_EQ(fi::blamed_instance(violation_on("pedal.out.pos")), "pedal");
  EXPECT_EQ(fi::blamed_instance(violation_on("tk|pedal|5000000")), "pedal");
  EXPECT_EQ(fi::blamed_instance(
                violation_on("pedal.out.pos -> wheel_fl.in.pos", "latency")),
            "pedal");
  EXPECT_EQ(fi::blamed_instance(violation_on("wheel_fl")), "wheel_fl");
}

TEST(FiScoring, DetectorOfMapsEveryMonitorKind) {
  EXPECT_EQ(fi::detector_of("period"), fi::kDetArrival);
  EXPECT_EQ(fi::detector_of("jitter"), fi::kDetArrival);
  EXPECT_EQ(fi::detector_of("deadline"), fi::kDetDeadline);
  EXPECT_EQ(fi::detector_of("response"), fi::kDetDeadline);
  EXPECT_EQ(fi::detector_of("latency"), fi::kDetLatency);
  EXPECT_EQ(fi::detector_of("range"), fi::kDetRange);
  EXPECT_EQ(fi::detector_of("automaton"), fi::kDetAutomaton);
  EXPECT_EQ(fi::detector_of("alive"), fi::kDetAlive);
  EXPECT_EQ(fi::detector_of("???"), 0u);
}

// --- classify(): one firing and one non-firing case per outcome class ---------

Evidence faulty_run(std::vector<Detection> detections) {
  Evidence e;
  e.onset = 100;
  e.detections = std::move(detections);
  return e;
}

TEST(FiScoring, NominalBaselineFiresOnlyWhenSilent) {
  Evidence clean;
  clean.baseline = true;
  EXPECT_EQ(fi::classify(clean, Domain{}), Outcome::kNominal);

  Evidence noisy = clean;
  noisy.detections.push_back({50, "pedal", fi::kDetRange});
  EXPECT_NE(fi::classify(noisy, Domain{}), Outcome::kNominal);
}

TEST(FiScoring, SpuriousOnPreOnsetDetectionOnly) {
  // A pre-onset violation means the detector cried wolf: spurious wins even
  // when a legitimate in-domain detection follows.
  Domain domain{.instances = {"pedal"}};
  EXPECT_EQ(fi::classify(faulty_run({{99, "pedal", fi::kDetRange},
                                     {150, "pedal", fi::kDetRange}}),
                         domain),
            Outcome::kSpurious);
  // A detection exactly AT onset is post-onset — not spurious.
  EXPECT_EQ(fi::classify(faulty_run({{100, "pedal", fi::kDetRange}}), domain),
            Outcome::kContained);
  // And a spurious baseline: any detection at all.
  Evidence baseline;
  baseline.baseline = true;
  baseline.detections.push_back({10, "pedal", fi::kDetRange});
  EXPECT_EQ(fi::classify(baseline, Domain{}), Outcome::kSpurious);
}

TEST(FiScoring, MissedWhenNoMonitorFires) {
  EXPECT_EQ(fi::classify(faulty_run({}), Domain{.everything = true}),
            Outcome::kMissed);
  EXPECT_NE(fi::classify(faulty_run({{200, "pedal", fi::kDetRange}}),
                         Domain{.everything = true}),
            Outcome::kMissed);
}

TEST(FiScoring, ContainedWhenEveryBlameIsInDomain) {
  Domain domain{.instances = {"pedal"}};
  EXPECT_EQ(fi::classify(faulty_run({{150, "pedal", fi::kDetRange},
                                     {160, "pedal", fi::kDetLatency}}),
                         domain),
            Outcome::kContained);
  // One blame outside the domain and containment is gone.
  EXPECT_EQ(fi::classify(faulty_run({{150, "pedal", fi::kDetRange},
                                     {160, "wheel_fl", fi::kDetDeadline}}),
                         domain),
            Outcome::kDetected);
}

TEST(FiScoring, DetectedMeansLeakedOutsideDomain) {
  // A babbling idiot has an empty domain: any blame of a real component is
  // a leak -> detected (not contained).
  Domain babble;
  EXPECT_EQ(fi::classify(faulty_run({{300, "wheel_fl", fi::kDetArrival}}),
                         babble),
            Outcome::kDetected);
  // A bus-wide domain absorbs the same evidence as contained.
  EXPECT_EQ(fi::classify(faulty_run({{300, "wheel_fl", fi::kDetArrival}}),
                         Domain{.everything = true}),
            Outcome::kContained);
}

// --- Unification with the isolation helpers -----------------------------------

// The fi adapter and a hand-wired isolation::overrunning_wcet must produce
// the SAME simulated world: identical violation streams, not just the same
// verdict.
std::vector<std::string> violations_under(bool use_fi_adapter) {
  fi::ModelBundle bundle = fi::workloads::brake_by_wire();
  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  vfb::System sys(kernel, trace, bundle.model, bundle.plan);

  std::vector<std::string> seen;
  sys.monitors()->on_violation([&seen, &kernel](const rv::Violation& v) {
    seen.push_back(std::to_string(kernel.now()) + "|" + v.kind + "|" +
                   v.subject);
  });

  const Fault fault{.kind = FaultKind::kWcetOverrun,
                    .target = "pedal",
                    .from = milliseconds(100),
                    .until = milliseconds(400),
                    .magnitude = 80.0};
  if (use_fi_adapter) {
    fi::install_faults(kernel, sys, {fault}, sim::Rng(1));
  } else {
    sys.task_of("pedal", milliseconds(5))
        ->transform_durations([&kernel](sim::Duration base) {
          return isolation::overrunning_wcet(kernel, base, 80.0,
                                             milliseconds(100),
                                             milliseconds(400))();
        });
  }
  sys.run_for(milliseconds(600));
  return seen;
}

TEST(FiInjector, WcetOverrunMatchesIsolationHelperExactly) {
  const auto via_fi = violations_under(/*use_fi_adapter=*/true);
  const auto via_isolation = violations_under(/*use_fi_adapter=*/false);
  ASSERT_FALSE(via_fi.empty());
  EXPECT_EQ(via_fi, via_isolation);
}

TEST(FiInjector, CrashSwallowsWritesPermanently) {
  fi::ModelBundle bundle = fi::workloads::brake_by_wire();
  sim::Kernel kernel;
  sim::Trace trace;
  vfb::System sys(kernel, trace, bundle.model, bundle.plan);
  fi::install_faults(kernel, sys,
                     {Fault{.kind = FaultKind::kTaskCrash,
                            .target = "pedal",
                            .from = milliseconds(100)}},
                     sim::Rng(1));
  sys.run_for(milliseconds(500));
  // Writes happened before the crash, none after (the fail-silent model of
  // isolation::crashing_wcet: until is ignored, crashes are permanent).
  const auto writes = trace.count("rte.write");
  EXPECT_GT(writes, 0u);
  EXPECT_LE(writes, 100u / 5u + 1u);  // ~20 pre-crash samples at 5 ms
  EXPECT_GT(trace.count("rte.fault_drop"), 0u);
}

// --- Campaign over brake_by_wire ----------------------------------------------

fi::Campaign bbw_campaign(std::size_t threads, std::size_t replicates) {
  fi::CampaignConfig cfg;
  cfg.seed = 42;
  cfg.replicates = replicates;
  cfg.threads = threads;
  fi::Campaign campaign([] { return fi::workloads::brake_by_wire(); }, cfg);
  // The shared grid: one representative per expressible kind; the
  // stochastic ones (probability < 1, jitter) genuinely exercise the
  // per-scenario RNG streams.
  fi::workloads::add_standard_faults(campaign);
  return campaign;
}

TEST(FiCampaign, ExpandsBaselinePlusFaultsTimesReplicates) {
  EXPECT_EQ(bbw_campaign(1, 25).scenario_count(), 1u + 8u * 25u);
}

TEST(FiCampaign, BrakeByWireCoverageMeetsTheFloor) {
  // >= 200 scenarios (acceptance floor): 8 faults x 25 replicates + baseline.
  const fi::Report report = bbw_campaign(1, 25).run();
  ASSERT_EQ(report.scenarios.size(), 201u);

  // The fault-free baseline stays silent and nothing fires pre-onset.
  EXPECT_EQ(report.spurious_baselines, 0u);
  EXPECT_EQ(report.count(Outcome::kSpurious), 0u);

  // Every fault class has non-zero detected AND contained cells.
  for (const char* cls : {"bus", "rte_value", "timing", "clock"}) {
    ASSERT_TRUE(report.matrix.count(cls)) << cls;
    const fi::ClassStats& cs = report.matrix.at(cls);
    EXPECT_GT(cs.detected, 0u) << cls;
    EXPECT_GT(cs.contained, 0u) << cls;
  }

  // Detection floor over the whole campaign. The architectural misses are
  // known and bounded: fail-silent crashes and the TDMA-contained babbler.
  const std::size_t faulty = report.scenarios.size() - report.baselines;
  const std::size_t detected = report.count(Outcome::kContained) +
                               report.count(Outcome::kDetected);
  EXPECT_GE(detected * 100, faulty * 60) << report.render();

  // Detected scenarios progressed through the whole reaction chain.
  EXPECT_GT(report.detection_latency.count(), 0u);
  EXPECT_GT(report.confirmation_latency.count(), 0u);
  EXPECT_GT(report.reaction_latency.count(), 0u);
}

TEST(FiCampaign, ReportIsBitIdenticalAcrossThreadCounts) {
  const fi::Report one = bbw_campaign(1, 25).run();
  const fi::Report four = bbw_campaign(4, 25).run();

  ASSERT_EQ(one.scenarios.size(), four.scenarios.size());
  ASSERT_GE(one.scenarios.size(), 201u);
  for (std::size_t i = 0; i < one.scenarios.size(); ++i) {
    const fi::ScenarioResult& a = one.scenarios[i];
    const fi::ScenarioResult& b = four.scenarios[i];
    EXPECT_EQ(a.outcome, b.outcome) << "scenario " << i;
    EXPECT_EQ(a.detectors, b.detectors) << "scenario " << i;
    EXPECT_EQ(a.first_violation, b.first_violation) << "scenario " << i;
    EXPECT_EQ(a.first_dtc, b.first_dtc) << "scenario " << i;
    EXPECT_EQ(a.first_degrade, b.first_degrade) << "scenario " << i;
    EXPECT_EQ(a.violations, b.violations) << "scenario " << i;
  }
  // The rendered matrix (counts + latency percentiles) is byte-identical.
  EXPECT_EQ(one.render(), four.render());
}

// --- Static detectability vs measured outcomes --------------------------------

TEST(FiCrossCheck, StaticVerdictsPredictCampaignOutcomes) {
  // The acceptance property of the detectability analysis: over the standard
  // grid plus the fail-silent crash, zero disagreements between the static
  // verdict and what the campaign measures. Predicted-undetectable faults
  // must score missed; predicted-detectable ones must be detected; a
  // predicted containment holds for every replicate.
  const fi::ModelBundle bundle = fi::workloads::brake_by_wire();
  std::vector<Fault> faults = fi::workloads::standard_faults();
  faults.push_back(Fault{.kind = FaultKind::kTaskCrash, .target = "pedal"});

  const auto analysis = orte::validation::analyze_detectability(
      bundle.model, bundle.plan, bundle.model.bound_contracts(), faults);
  ASSERT_EQ(analysis.verdicts.size(), faults.size());

  fi::CampaignConfig cfg;
  cfg.seed = 42;
  cfg.replicates = 3;
  cfg.threads = 4;
  fi::Campaign campaign([] { return fi::workloads::brake_by_wire(); }, cfg);
  for (const auto& fault : faults) campaign.add_fault(fault);
  const fi::Report report = campaign.run();

  for (const auto& s : report.scenarios) {
    if (s.baseline) continue;
    const auto& verdict = analysis.verdicts.at((s.index - 1) / cfg.replicates);
    if (!verdict.detectable) {
      EXPECT_EQ(s.outcome, Outcome::kMissed)
          << verdict.label << ": predicted undetectable but a monitor fired\n"
          << report.render();
      continue;
    }
    EXPECT_TRUE(s.outcome == Outcome::kContained ||
                s.outcome == Outcome::kDetected)
        << verdict.label << ": predicted detectable but scored "
        << fi::to_string(s.outcome) << "\n"
        << report.render();
    if (verdict.contained) {
      EXPECT_EQ(s.outcome, Outcome::kContained)
          << verdict.label << ": predicted contained but a blame leaked\n"
          << report.render();
    }
    if (verdict.containment_gap) {
      EXPECT_EQ(s.outcome, Outcome::kDetected)
          << verdict.label << ": predicted a containment gap (V14) but the "
          << "campaign scored it contained\n"
          << report.render();
    }
  }
}

TEST(FiCrossCheck, AliveSupervisionDetectsAndContainsTheCrash) {
  // The V13/V15 fix, measured: with DeploymentPlan::alive_supervision the
  // pedal's fail-silent crash trips the watchdog (detector "alive"), the
  // blame lands on the pedal (contained), and the supervised baseline stays
  // silent — the watchdog adds no spurious expiries.
  fi::CampaignConfig cfg;
  cfg.seed = 42;
  cfg.replicates = 3;
  fi::Campaign campaign([] { return fi::workloads::brake_by_wire(true); },
                        cfg);
  campaign.add_fault(Fault{.kind = FaultKind::kTaskCrash, .target = "pedal"});
  const fi::Report report = campaign.run();

  EXPECT_EQ(report.spurious_baselines, 0u) << report.render();
  EXPECT_EQ(report.count(Outcome::kSpurious), 0u) << report.render();
  for (const auto& s : report.scenarios) {
    if (s.baseline) continue;
    EXPECT_EQ(s.outcome, Outcome::kContained) << report.render();
    EXPECT_TRUE(s.detectors & fi::kDetAlive) << report.render();
  }

  // And the static analysis agrees on the supervised bundle.
  const fi::ModelBundle bundle = fi::workloads::brake_by_wire(true);
  const auto analysis = orte::validation::analyze_detectability(
      bundle.model, bundle.plan, bundle.model.bound_contracts(),
      {Fault{.kind = FaultKind::kTaskCrash, .target = "pedal"}});
  ASSERT_EQ(analysis.verdicts.size(), 1u);
  EXPECT_TRUE(analysis.verdicts.front().detectable);
  EXPECT_TRUE(analysis.verdicts.front().contained);
  ASSERT_FALSE(analysis.verdicts.front().observers.empty());
  EXPECT_EQ(analysis.verdicts.front().observers.front().kind,
            orte::validation::MonitorPlane::Kind::kAlive);
}

}  // namespace
