// Unit tests: NoC — TDMA vs FCFS arbitration, guardian-by-construction
// containment, CAN overlay middleware.
#include <gtest/gtest.h>

#include <vector>

#include "noc/can_overlay.hpp"
#include "noc/noc.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"

namespace {

using namespace orte::noc;
using orte::sim::Kernel;
using orte::sim::Time;
using orte::sim::Trace;
using orte::sim::microseconds;
using orte::sim::milliseconds;

struct Fixture {
  Kernel kernel;
  Trace trace;
};

NocConfig config(Arbitration arb) {
  NocConfig cfg;
  cfg.arbitration = arb;
  cfg.link_bandwidth_bps = 100'000'000;  // 80ns per byte
  cfg.slot_len = microseconds(10);
  return cfg;
}

NocMessage msg(int dst, std::size_t bytes, std::string name = "m") {
  NocMessage m;
  m.destination = dst;
  m.bytes = bytes;
  m.name = std::move(name);
  return m;
}

TEST(Noc, TdmaDeliversWithinOwnSlot) {
  Fixture f;
  Noc noc(f.kernel, f.trace, config(Arbitration::kTdma));
  auto& a = noc.attach("a");
  auto& b = noc.attach("b");
  std::vector<Time> rx;
  b.on_receive([&](const NocMessage&) { rx.push_back(f.kernel.now()); });
  f.kernel.schedule_at(0, [&] { a.send(msg(1, 100)); });
  noc.start();
  f.kernel.run_until(milliseconds(1));
  ASSERT_EQ(rx.size(), 1u);
  // Core 0's t=0 slot drains before the send lands, so the message goes out
  // in core 0's next slot (period 20us); 100 bytes at 100Mbit/s = 8us.
  EXPECT_EQ(rx[0], microseconds(28));
  EXPECT_EQ(b.messages_received(), 1u);
  EXPECT_EQ(a.messages_sent(), 1u);
}

TEST(Noc, TdmaMessageWaitsForOwnersSlot) {
  Fixture f;
  Noc noc(f.kernel, f.trace, config(Arbitration::kTdma));
  auto& a = noc.attach("a");
  auto& b = noc.attach("b");
  std::vector<Time> rx;
  a.on_receive([&](const NocMessage&) { rx.push_back(f.kernel.now()); });
  // b sends at t=1us; b's slot spans [10us, 20us).
  f.kernel.schedule_at(microseconds(1), [&] { b.send(msg(0, 100)); });
  noc.start();
  f.kernel.run_until(milliseconds(1));
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0], microseconds(18));
}

TEST(Noc, TdmaOversizedMessageRejected) {
  Fixture f;
  Noc noc(f.kernel, f.trace, config(Arbitration::kTdma));
  auto& a = noc.attach("a");
  noc.attach("b");
  // Slot capacity: 10us / 80ns = 125 bytes.
  EXPECT_EQ(noc.slot_capacity_bytes(), 125u);
  EXPECT_THROW(a.send(msg(1, 126)), std::invalid_argument);
}

TEST(Noc, TdmaBabblerCannotDelayOthers) {
  Fixture f;
  Noc noc(f.kernel, f.trace, config(Arbitration::kTdma));
  auto& a = noc.attach("a");
  auto& b = noc.attach("b");
  auto& c = noc.attach("c");
  (void)a;
  std::vector<double> latencies;
  c.on_receive([&](const NocMessage& m) {
    if (m.name == "useful") {
      latencies.push_back(orte::sim::to_us(m.delivered_at - m.enqueued_at));
    }
  });
  // Core 0 babbles broadcast floods; core 1 sends a useful message per 100us.
  noc.inject_babble(0, 100, microseconds(5), 0, milliseconds(10));
  f.kernel.schedule_periodic(0, microseconds(100), [&] {
    b.send(msg(2, 100, "useful"));
  });
  noc.start();
  f.kernel.run_until(milliseconds(10));
  ASSERT_GT(latencies.size(), 50u);
  // b's slot comes once per 30us period: worst case wait < period + tx.
  for (double l : latencies) EXPECT_LT(l, 40.0);
}

TEST(Noc, FcfsBabblerStarvesOthers) {
  Fixture f;
  Noc noc(f.kernel, f.trace, config(Arbitration::kFcfs));
  noc.attach("a");
  auto& b = noc.attach("b");
  auto& c = noc.attach("c");
  std::vector<double> latencies;
  c.on_receive([&](const NocMessage& m) {
    if (m.name == "useful") {
      latencies.push_back(orte::sim::to_us(m.delivered_at - m.enqueued_at));
    }
  });
  // Babbler floods a 100Mbit link with 125-byte (10us) messages every 5us:
  // demand is 2x the link capacity, the FIFO backlog grows without bound.
  noc.inject_babble(0, 125, microseconds(5), 0, milliseconds(10));
  f.kernel.schedule_periodic(0, microseconds(100), [&] {
    b.send(msg(2, 100, "useful"));
  });
  noc.start();
  f.kernel.run_until(milliseconds(10));
  ASSERT_GT(latencies.size(), 10u);
  // Later useful messages see ever-growing queueing delay.
  EXPECT_GT(latencies.back(), 100.0);
  EXPECT_GT(latencies.back(), latencies.front() * 5);
}

TEST(Noc, FcfsFifoOrderWithoutContention) {
  Fixture f;
  Noc noc(f.kernel, f.trace, config(Arbitration::kFcfs));
  auto& a = noc.attach("a");
  auto& b = noc.attach("b");
  std::vector<std::string> order;
  b.on_receive([&](const NocMessage& m) { order.push_back(m.name); });
  f.kernel.schedule_at(0, [&] {
    a.send(msg(1, 10, "first"));
    a.send(msg(1, 10, "second"));
  });
  noc.start();
  f.kernel.run_until(milliseconds(1));
  EXPECT_EQ(order, (std::vector<std::string>{"first", "second"}));
}

TEST(Noc, BroadcastReachesAllButSender) {
  Fixture f;
  Noc noc(f.kernel, f.trace, config(Arbitration::kTdma));
  auto& a = noc.attach("a");
  auto& b = noc.attach("b");
  auto& c = noc.attach("c");
  int b_rx = 0, c_rx = 0, a_rx = 0;
  a.on_receive([&](const NocMessage&) { ++a_rx; });
  b.on_receive([&](const NocMessage&) { ++b_rx; });
  c.on_receive([&](const NocMessage&) { ++c_rx; });
  f.kernel.schedule_at(0, [&] { a.send(msg(-1, 10)); });
  noc.start();
  f.kernel.run_until(milliseconds(1));
  EXPECT_EQ(a_rx, 0);
  EXPECT_EQ(b_rx, 1);
  EXPECT_EQ(c_rx, 1);
}

TEST(CanOverlay, LegacyApiDeliversFrames) {
  Fixture f;
  Noc noc(f.kernel, f.trace, config(Arbitration::kTdma));
  auto& a = noc.attach("a");
  auto& b = noc.attach("b");
  CanOverlay ca(a), cb(b);
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> rx;
  cb.on_frame(0x123, [&](const OverlayFrame& fr) {
    rx.emplace_back(fr.id, fr.data);
  });
  f.kernel.schedule_at(0, [&] { ca.send(0x123, {0xDE, 0xAD}); });
  noc.start();
  f.kernel.run_until(milliseconds(1));
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].first, 0x123u);
  EXPECT_EQ(rx[0].second, (std::vector<std::uint8_t>{0xDE, 0xAD}));
  EXPECT_EQ(ca.frames_sent(), 1u);
  EXPECT_EQ(cb.frames_received(), 1u);
}

TEST(CanOverlay, IdPriorityPreservedWithinCore) {
  Fixture f;
  Noc noc(f.kernel, f.trace, config(Arbitration::kTdma));
  auto& a = noc.attach("a");
  auto& b = noc.attach("b");
  CanOverlay ca(a), cb(b);
  std::vector<std::uint32_t> order;
  cb.on_any([&](const OverlayFrame& fr) { order.push_back(fr.id); });
  // Burst in inverted order: the overlay's priority queue restores CAN
  // arbitration order.
  f.kernel.schedule_at(0, [&] {
    ca.send(0x300, {1});
    ca.send(0x100, {2});
    ca.send(0x200, {3});
  });
  noc.start();
  f.kernel.run_until(milliseconds(1));
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0x100, 0x200, 0x300}));
  EXPECT_EQ(cb.order_inversions(), 0u);
}

TEST(CanOverlay, RejectsNonCanParameters) {
  Fixture f;
  Noc noc(f.kernel, f.trace, config(Arbitration::kTdma));
  auto& a = noc.attach("a");
  CanOverlay ca(a);
  EXPECT_THROW(ca.send(0x800, {1}), std::invalid_argument);
  EXPECT_THROW(ca.send(1, std::vector<std::uint8_t>(9, 0)),
               std::invalid_argument);
}

}  // namespace
