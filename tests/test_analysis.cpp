// Unit tests: response-time analysis (tasks, CAN, FlexRay), end-to-end
// composition, sensitivity, TT schedule synthesis.
#include <gtest/gtest.h>

#include "analysis/can_analysis.hpp"
#include "analysis/e2e.hpp"
#include "analysis/flexray_analysis.hpp"
#include "analysis/rta.hpp"
#include "analysis/sensitivity.hpp"
#include "analysis/tt_schedule.hpp"
#include "sim/time.hpp"

namespace {

using namespace orte::analysis;
using orte::sim::microseconds;
using orte::sim::milliseconds;

// --- Task RTA ---------------------------------------------------------------------

std::vector<AnalysisTask> classic_set() {
  return {
      {.name = "t1", .wcet = milliseconds(1), .period = milliseconds(4),
       .priority = 3},
      {.name = "t2", .wcet = milliseconds(2), .period = milliseconds(8),
       .priority = 2},
      {.name = "t3", .wcet = milliseconds(3), .period = milliseconds(16),
       .priority = 1},
  };
}

TEST(Rta, ClassicExampleExact) {
  const auto set = classic_set();
  EXPECT_EQ(response_time(set[0], set), milliseconds(1));
  EXPECT_EQ(response_time(set[1], set), milliseconds(3));
  EXPECT_EQ(response_time(set[2], set), milliseconds(7));
}

TEST(Rta, BlockingAddsDirectly) {
  auto set = classic_set();
  set[0].blocking = microseconds(500);
  EXPECT_EQ(response_time(set[0], set), microseconds(1500));
}

TEST(Rta, JitterOfHigherPriorityIncreasesInterference) {
  auto set = classic_set();
  set[0].jitter = milliseconds(3);
  // t2: w = 2 + ceil((w+3)/4)*1 -> w=2: ceil(5/4)=2 -> w=4; ceil(7/4)=2 -> 4.
  EXPECT_EQ(response_time(set[1], set), milliseconds(4));
}

TEST(Rta, UnschedulableReturnsNullopt) {
  std::vector<AnalysisTask> set{
      {.name = "hp", .wcet = milliseconds(6), .period = milliseconds(10),
       .priority = 2},
      {.name = "lp", .wcet = milliseconds(6), .period = milliseconds(10),
       .priority = 1},
  };
  EXPECT_EQ(response_time(set[1], set), std::nullopt);
  const auto r = analyze(set);
  EXPECT_FALSE(r.schedulable);
  EXPECT_NEAR(r.utilization, 1.2, 1e-9);
}

TEST(Rta, AnalyzeReportsAllResponses) {
  const auto r = analyze(classic_set());
  EXPECT_TRUE(r.schedulable);
  EXPECT_EQ(r.response.at("t3"), milliseconds(7));
  EXPECT_NEAR(r.utilization, 0.25 + 0.25 + 0.1875, 1e-9);
}

TEST(Rta, DeadlineMonotonicAssignment) {
  std::vector<AnalysisTask> set{
      {.name = "slow", .wcet = 1, .period = milliseconds(100)},
      {.name = "fast", .wcet = 1, .period = milliseconds(5)},
      {.name = "mid", .wcet = 1, .period = milliseconds(50),
       .deadline = milliseconds(10)},
  };
  assign_deadline_monotonic(set);
  // Priority order: fast (D=5) > mid (D=10) > slow (D=100).
  EXPECT_GT(set[1].priority, set[2].priority);
  EXPECT_GT(set[2].priority, set[0].priority);
}

// --- CAN analysis --------------------------------------------------------------------

TEST(CanAnalysis, SingleMessageIsFrameTimePlusBlocking) {
  std::vector<CanMessage> msgs{
      {.name = "m", .id = 1, .bytes = 8, .period = milliseconds(10)}};
  // No lower priority -> no blocking; no higher priority -> C only.
  EXPECT_EQ(can_response_time(msgs[0], msgs, 500'000), microseconds(270));
}

TEST(CanAnalysis, BlockingFromLowerPriority) {
  std::vector<CanMessage> msgs{
      {.name = "hi", .id = 1, .bytes = 1, .period = milliseconds(10)},
      {.name = "lo", .id = 9, .bytes = 8, .period = milliseconds(10)},
  };
  // hi: B = 270us (8-byte lo frame), C = (55+10)*2us = 130us.
  EXPECT_EQ(can_response_time(msgs[0], msgs, 500'000), microseconds(400));
}

TEST(CanAnalysis, InterferenceFromHigherPriority) {
  std::vector<CanMessage> msgs{
      {.name = "hi", .id = 1, .bytes = 8, .period = milliseconds(1)},
      {.name = "lo", .id = 9, .bytes = 8, .period = milliseconds(10)},
  };
  // lo: w = 270 (one hi frame) -> w+tau crosses nothing new -> R = 540us.
  EXPECT_EQ(can_response_time(msgs[1], msgs, 500'000), microseconds(540));
}

TEST(CanAnalysis, OverloadedBusUnschedulable) {
  std::vector<CanMessage> msgs;
  for (int i = 0; i < 10; ++i) {
    msgs.push_back({.name = "m" + std::to_string(i),
                    .id = static_cast<std::uint32_t>(i), .bytes = 8,
                    .period = milliseconds(2)});
  }
  // 10 * 270us per 2ms = 135% utilization.
  const auto r = analyze_can(msgs, 500'000);
  EXPECT_FALSE(r.schedulable);
  EXPECT_GT(r.utilization, 1.0);
}

TEST(CanAnalysis, ResponseMonotoneInPriority) {
  std::vector<CanMessage> msgs;
  for (int i = 0; i < 8; ++i) {
    msgs.push_back({.name = "m" + std::to_string(i),
                    .id = static_cast<std::uint32_t>(i), .bytes = 4,
                    .period = milliseconds(10)});
  }
  const auto r = analyze_can(msgs, 500'000);
  ASSERT_TRUE(r.schedulable);
  for (int i = 1; i < 8; ++i) {
    EXPECT_GE(r.response.at("m" + std::to_string(i)),
              r.response.at("m" + std::to_string(i - 1)));
  }
}

// --- FlexRay analysis -----------------------------------------------------------------

TEST(FlexRayAnalysis, StaticBoundsMatchStructure) {
  orte::flexray::FlexRayConfig cfg;
  cfg.static_slots = 4;
  cfg.static_payload_bytes = 8;
  cfg.minislots = 20;
  cfg.minislot_len = microseconds(2);
  cfg.network_idle = microseconds(10);
  const auto lat = flexray_static_latency(cfg, 1);
  EXPECT_EQ(lat.best, flexray_slot_length(cfg));
  EXPECT_EQ(lat.worst, flexray_cycle_length(cfg) + flexray_slot_length(cfg));
  EXPECT_EQ(lat.write_to_delivery_jitter, flexray_cycle_length(cfg));
}

TEST(FlexRayAnalysis, DynamicFitsFirstCycle) {
  EXPECT_EQ(flexray_dynamic_cycles(20, 10, 5), 1);
  EXPECT_EQ(flexray_dynamic_cycles(20, 0, 20), 1);
}

TEST(FlexRayAnalysis, DynamicUnboundedWhenSaturated) {
  EXPECT_EQ(flexray_dynamic_cycles(20, 20, 1), std::nullopt);
  EXPECT_EQ(flexray_dynamic_cycles(20, 0, 21), std::nullopt);
}

TEST(FlexRayAnalysis, DynamicBacklogTakesExtraCycles) {
  const auto cycles = flexray_dynamic_cycles(20, 15, 10);
  ASSERT_TRUE(cycles.has_value());
  EXPECT_GT(*cycles, 1);
}

// --- End-to-end composition --------------------------------------------------------------

TEST(E2e, DirectChainSumsResponses) {
  const auto r = e2e_latency({
      {.name = "sense", .response = milliseconds(2)},
      {.name = "bus", .response = microseconds(500)},
      {.name = "act", .response = milliseconds(1)},
  });
  EXPECT_EQ(r.worst, milliseconds(3) + microseconds(500));
}

TEST(E2e, SampledStageAddsPeriod) {
  const auto r = e2e_latency({
      {.name = "sense", .response = milliseconds(2)},
      {.name = "ctrl", .response = milliseconds(1),
       .period = milliseconds(10), .sampled = true},
  });
  EXPECT_EQ(r.worst, milliseconds(13));
  EXPECT_EQ(r.jitter, r.worst);  // best case is 0 in this model
}

// --- Sensitivity ------------------------------------------------------------------------

TEST(Sensitivity, ScalingLimitBracketsSchedulability) {
  const auto set = classic_set();  // U ~ 0.6875
  const double limit = wcet_scaling_limit(set);
  EXPECT_GT(limit, 1.0);
  EXPECT_LT(limit, 2.0);
  // Verify the bracket by probing.
  auto probe = set;
  for (auto& t : probe) {
    t.wcet = static_cast<orte::sim::Duration>(
        static_cast<double>(t.wcet) * (limit * 0.99));
  }
  EXPECT_TRUE(analyze(probe).schedulable);
}

TEST(Sensitivity, UnschedulableSetHasZeroLimit) {
  std::vector<AnalysisTask> set{
      {.name = "a", .wcet = milliseconds(11), .period = milliseconds(10),
       .priority = 1}};
  EXPECT_DOUBLE_EQ(wcet_scaling_limit(set), 0.0);
}

TEST(Sensitivity, SlackPositiveForSchedulable) {
  const auto slack = task_slack(classic_set());
  EXPECT_EQ(slack.at("t1"), milliseconds(3));
  EXPECT_EQ(slack.at("t3"), milliseconds(9));
}

// --- TT schedule synthesis -----------------------------------------------------------------

TEST(TtSchedule, HyperperiodIsLcm) {
  EXPECT_EQ(hyperperiod({{.task = "a", .period = milliseconds(4)},
                         {.task = "b", .period = milliseconds(6)}}),
            milliseconds(12));
}

TEST(TtSchedule, HarmonicSetSynthesizes) {
  const auto sched = synthesize_schedule({
      {.task = "a", .period = milliseconds(5), .wcet = milliseconds(1)},
      {.task = "b", .period = milliseconds(10), .wcet = milliseconds(2)},
      {.task = "c", .period = milliseconds(20), .wcet = milliseconds(4)},
  });
  ASSERT_TRUE(sched.has_value());
  EXPECT_EQ(sched->cycle, milliseconds(20));
  // Jobs: 4 of a, 2 of b, 1 of c = 7 entries.
  EXPECT_EQ(sched->entries.size(), 7u);
  // No two reserved windows overlap.
  for (std::size_t i = 1; i < sched->windows.size(); ++i) {
    EXPECT_LE(sched->windows[i - 1].second, sched->windows[i].first);
  }
}

TEST(TtSchedule, EveryJobMeetsItsDeadline) {
  const auto sched = synthesize_schedule({
      {.task = "a", .period = milliseconds(4), .wcet = milliseconds(2)},
      {.task = "b", .period = milliseconds(8), .wcet = milliseconds(3)},
  });
  ASSERT_TRUE(sched.has_value());
  // Utilization 0.5 + 0.375: feasible non-preemptively since within each 4ms
  // frame there is room; verify windows stay within release/deadline.
  for (const auto& [start, end] : sched->windows) {
    EXPECT_LE(end - start, milliseconds(3));
  }
}

TEST(TtSchedule, InfeasibleReturnsNullopt) {
  EXPECT_EQ(synthesize_schedule({
                {.task = "a", .period = milliseconds(4),
                 .wcet = milliseconds(3)},
                {.task = "b", .period = milliseconds(4),
                 .wcet = milliseconds(3)},
            }),
            std::nullopt);
}

TEST(TtSchedule, ZeroPeriodThrows) {
  EXPECT_THROW(hyperperiod({{.task = "a", .period = 0}}),
               std::invalid_argument);
}

}  // namespace
