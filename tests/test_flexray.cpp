// Unit tests: FlexRay — cycle structure, static TDMA slots, dynamic
// mini-slotting, state-message semantics.
#include <gtest/gtest.h>

#include <vector>

#include "flexray/flexray_bus.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"

namespace {

using namespace orte::flexray;
using orte::net::Frame;
using orte::sim::Kernel;
using orte::sim::Time;
using orte::sim::Trace;
using orte::sim::microseconds;
using orte::sim::milliseconds;

Frame make_frame(std::uint32_t id, std::size_t bytes, Time enq = 0) {
  Frame f;
  f.id = id;
  f.name = "f" + std::to_string(id);
  f.payload.assign(bytes, 0x5A);
  f.enqueued_at = enq;
  return f;
}

FlexRayConfig small_config() {
  FlexRayConfig cfg;
  cfg.static_slots = 4;
  cfg.static_payload_bytes = 8;
  cfg.minislots = 20;
  cfg.minislot_len = microseconds(2);
  cfg.network_idle = microseconds(10);
  return cfg;
}

struct Fixture {
  Kernel kernel;
  Trace trace;
};

TEST(FlexRay, CycleLengthMatchesConfig) {
  const auto cfg = small_config();
  // Slot: (8 overhead + 8 payload) * 8 bits * 0.1us + 1us guard = 13.8us.
  EXPECT_EQ(FlexRayBus::slot_length(cfg), 12'800 + 1'000);
  EXPECT_EQ(FlexRayBus::cycle_length(cfg),
            4 * 13'800 + 20 * 2'000 + 10'000);
}

TEST(FlexRay, StaticFrameDeliveredAtSlotEnd) {
  Fixture f;
  FlexRayBus bus(f.kernel, f.trace, small_config());
  auto& tx = bus.attach();
  auto& rx = bus.attach();
  bus.assign_static_slot(2, tx);
  std::vector<Time> deliveries;
  rx.on_receive([&](const Frame&) { deliveries.push_back(f.kernel.now()); });
  f.kernel.schedule_at(0, [&] { tx.send(make_frame(2, 8, 0)); });
  bus.start();
  f.kernel.run_until(milliseconds(1));
  ASSERT_EQ(deliveries.size(), 1u);
  // Slot 2 ends at 2 * slot_len into the cycle.
  EXPECT_EQ(deliveries[0], 2 * bus.static_slot_len());
}

TEST(FlexRay, StateMessageSemanticsOverwrite) {
  Fixture f;
  FlexRayBus bus(f.kernel, f.trace, small_config());
  auto& tx = bus.attach();
  auto& rx = bus.attach();
  bus.assign_static_slot(1, tx);
  std::vector<std::uint8_t> last;
  rx.on_receive([&](const Frame& fr) { last = fr.payload; });
  f.kernel.schedule_at(0, [&] {
    auto f1 = make_frame(1, 8);
    f1.payload.assign(8, 0x01);
    tx.send(std::move(f1));
    auto f2 = make_frame(1, 8);
    f2.payload.assign(8, 0x02);
    tx.send(std::move(f2));  // overwrites before the slot: only 0x02 flies
  });
  bus.start();
  f.kernel.run_until(milliseconds(1));
  ASSERT_EQ(last.size(), 8u);
  EXPECT_EQ(last[0], 0x02);
  EXPECT_EQ(bus.stats().frames_delivered(), 1u);
}

TEST(FlexRay, MissedSlotWaitsOneCycle) {
  Fixture f;
  FlexRayBus bus(f.kernel, f.trace, small_config());
  auto& tx = bus.attach();
  auto& rx = bus.attach();
  bus.assign_static_slot(1, tx);
  std::vector<Time> deliveries;
  rx.on_receive([&](const Frame&) { deliveries.push_back(f.kernel.now()); });
  bus.start();
  // Write just after slot 1 started: transmitted in the *next* cycle.
  f.kernel.schedule_at(microseconds(1), [&] { tx.send(make_frame(1, 8)); });
  f.kernel.run_until(milliseconds(1));
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0], bus.cycle_len() + bus.static_slot_len());
}

TEST(FlexRay, SlotOwnershipEnforced) {
  Fixture f;
  FlexRayBus bus(f.kernel, f.trace, small_config());
  auto& a = bus.attach();
  auto& b = bus.attach();
  bus.assign_static_slot(1, a);
  EXPECT_THROW(bus.assign_static_slot(1, b), std::invalid_argument);
  EXPECT_THROW(bus.assign_static_slot(9, a), std::invalid_argument);
  EXPECT_THROW(b.send(make_frame(1, 8)), std::logic_error);
}

TEST(FlexRay, DynamicSegmentPriorityOrder) {
  Fixture f;
  FlexRayBus bus(f.kernel, f.trace, small_config());
  auto& tx = bus.attach();
  auto& rx = bus.attach();
  std::vector<std::uint32_t> order;
  rx.on_receive([&](const Frame& fr) { order.push_back(fr.id); });
  // Dynamic frame ids are > static_slots (4).
  f.kernel.schedule_at(0, [&] {
    tx.send(make_frame(9, 4));
    tx.send(make_frame(5, 4));
    tx.send(make_frame(7, 4));
  });
  bus.start();
  f.kernel.run_until(milliseconds(1));
  EXPECT_EQ(order, (std::vector<std::uint32_t>{5, 7, 9}));
}

TEST(FlexRay, DynamicFrameTooBigForRemainingMinislotsDefers) {
  Fixture f;
  auto cfg = small_config();
  cfg.minislots = 10;  // 20us dynamic segment
  FlexRayBus bus(f.kernel, f.trace, cfg);
  auto& tx = bus.attach();
  auto& rx = bus.attach();
  std::vector<std::pair<Time, std::uint32_t>> rx_log;
  rx.on_receive([&](const Frame& fr) {
    rx_log.emplace_back(f.kernel.now(), fr.id);
  });
  f.kernel.schedule_at(0, [&] {
    // (8+8)*8 bits at 10Mbit = 12.8us -> 7 minislots each; two frames do not
    // both fit into 10 minislots.
    tx.send(make_frame(5, 8));
    tx.send(make_frame(6, 8));
  });
  bus.start();
  f.kernel.run_until(milliseconds(2));
  ASSERT_EQ(rx_log.size(), 2u);
  EXPECT_EQ(rx_log[0].second, 5u);
  EXPECT_EQ(rx_log[1].second, 6u);
  // Second frame went out one cycle later.
  EXPECT_GT(rx_log[1].first - rx_log[0].first,
            bus.cycle_len() - microseconds(20));
  EXPECT_EQ(bus.dynamic_deferrals(), 1u);
}

TEST(FlexRay, CyclesCountAndRepeat) {
  Fixture f;
  FlexRayBus bus(f.kernel, f.trace, small_config());
  auto& tx = bus.attach();
  auto& rx = bus.attach();
  bus.assign_static_slot(1, tx);
  int rx_count = 0;
  rx.on_receive([&](const Frame&) { ++rx_count; });
  // Writer publishes fresh state every cycle.
  f.kernel.schedule_periodic(0, bus.cycle_len(),
                             [&] { tx.send(make_frame(1, 8)); });
  bus.start();
  f.kernel.run_until(10 * bus.cycle_len());
  EXPECT_GE(bus.cycles(), 10u);
  // A write at cycle k (after slot 1 already ran) is delivered in cycle k+1;
  // the write at cycle 9 delivers past the horizon.
  EXPECT_EQ(rx_count, 9);
}

TEST(FlexRay, ZeroFrameIdRejected) {
  Fixture f;
  FlexRayBus bus(f.kernel, f.trace, small_config());
  auto& tx = bus.attach();
  EXPECT_THROW(tx.send(make_frame(0, 4)), std::invalid_argument);
}

TEST(FlexRay, OversizedStaticPayloadRejected) {
  Fixture f;
  FlexRayBus bus(f.kernel, f.trace, small_config());
  auto& tx = bus.attach();
  bus.assign_static_slot(1, tx);
  EXPECT_THROW(tx.send(make_frame(1, 16)), std::invalid_argument);
}

}  // namespace
