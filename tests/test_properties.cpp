// Property-based / parameterized suites (gtest TEST_P):
//  * analysis soundness: simulated worst response <= analysed bound, for
//    random task sets and CAN message sets across utilization bands,
//  * medium exclusivity: TDMA protocols never overlap transmissions, with
//    and without injected faults (guardian on),
//  * timing isolation: victims never miss under budget enforcement for any
//    overrun factor,
//  * contract algebra: dominance is reflexive and transitive; compatibility
//    is monotone under guarantee tightening,
//  * COM packing round-trips over randomized non-overlapping layouts,
//  * TT synthesis correctness: tables simulate without misses.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "analysis/can_analysis.hpp"
#include "analysis/flexray_analysis.hpp"
#include "analysis/holistic.hpp"
#include "analysis/rta.hpp"
#include "analysis/tt_schedule.hpp"
#include "bsw/com.hpp"
#include "bsw/e2e_protection.hpp"
#include "can/can_bus.hpp"
#include "contracts/contract.hpp"
#include "flexray/flexray_bus.hpp"
#include "noc/noc.hpp"
#include "os/ecu.hpp"
#include "sim/kernel.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"
#include "ttp/ttp_bus.hpp"
#include "validation/validator.hpp"
#include "vfb/model.hpp"
#include "vfb/system.hpp"

namespace {

using namespace orte;
using sim::Kernel;
using sim::Rng;
using sim::Trace;
using sim::microseconds;
using sim::milliseconds;

// --- RTA soundness ------------------------------------------------------------

struct RtaCase {
  double utilization;
  std::uint64_t seed;
};

class RtaSoundness : public ::testing::TestWithParam<RtaCase> {};

TEST_P(RtaSoundness, SimulatedResponseNeverExceedsBound) {
  const auto [target_u, seed] = GetParam();
  Rng rng(seed);
  const std::size_t n = 3 + rng.index(5);  // 3..7 tasks
  const std::vector<sim::Duration> period_choices{
      milliseconds(1), milliseconds(2), milliseconds(4),  milliseconds(5),
      milliseconds(8), milliseconds(10), milliseconds(20)};
  const auto shares = rng.uunifast(n, target_u);

  std::vector<analysis::AnalysisTask> model;
  for (std::size_t i = 0; i < n; ++i) {
    analysis::AnalysisTask t;
    t.name = "t" + std::to_string(i);
    t.period = period_choices[rng.index(period_choices.size())];
    t.wcet = std::max<sim::Duration>(
        microseconds(1),
        static_cast<sim::Duration>(static_cast<double>(t.period) * shares[i]));
    model.push_back(t);
  }
  analysis::assign_deadline_monotonic(model);

  Kernel kernel;
  Trace trace;
  trace.enable_retention(false);
  os::Ecu ecu(kernel, trace, "e");
  for (const auto& m : model) {
    ecu.add_task({.name = m.name, .priority = m.priority, .period = m.period})
        .set_body(m.wcet);
  }
  ecu.start();
  kernel.run_until(milliseconds(400));  // >= 2 hyperperiods (lcm <= 40ms)

  const auto result = analysis::analyze(model);
  for (const auto& m : model) {
    const auto* task = ecu.find_task(m.name);
    ASSERT_NE(task, nullptr);
    auto it = result.response.find(m.name);
    if (it == result.response.end()) continue;  // analysis: unschedulable
    EXPECT_LE(task->response_times().max(), sim::to_ms(it->second) + 1e-9)
        << m.name << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    UtilizationBands, RtaSoundness,
    ::testing::Values(RtaCase{0.3, 1}, RtaCase{0.3, 2}, RtaCase{0.3, 3},
                      RtaCase{0.5, 4}, RtaCase{0.5, 5}, RtaCase{0.5, 6},
                      RtaCase{0.7, 7}, RtaCase{0.7, 8}, RtaCase{0.7, 9},
                      RtaCase{0.85, 10}, RtaCase{0.85, 11}, RtaCase{0.85, 12},
                      RtaCase{0.95, 13}, RtaCase{0.95, 14}, RtaCase{0.95, 15}));

// --- CAN analysis soundness ------------------------------------------------------

class CanSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CanSoundness, SimulatedQueueToDeliveryWithinBound) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  constexpr std::int64_t kBitrate = 500'000;
  const std::size_t n = 4 + rng.index(6);  // 4..9 messages
  std::vector<analysis::CanMessage> model;
  for (std::size_t i = 0; i < n; ++i) {
    analysis::CanMessage m;
    m.name = "m" + std::to_string(i);
    m.id = static_cast<std::uint32_t>(0x100 + i);
    m.bytes = 1 + rng.index(8);
    m.period = milliseconds(5 * (1 + static_cast<std::int64_t>(rng.index(4))));
    model.push_back(m);
  }
  const auto result = analysis::analyze_can(model, kBitrate);

  Kernel kernel;
  Trace trace;
  trace.enable_retention(false);
  can::CanBus bus(kernel, trace, {.bitrate_bps = kBitrate});
  auto& sender = bus.attach();
  auto& listener = bus.attach();
  std::map<std::uint32_t, sim::Duration> observed;  // worst queue->delivery
  listener.on_receive([&](const net::Frame& f) {
    auto& worst = observed[f.id];
    worst = std::max(worst, kernel.now() - f.enqueued_at);
  });
  for (const auto& m : model) {
    kernel.schedule_periodic(0, m.period, [&sender, &kernel, m] {
      net::Frame f;
      f.id = m.id;
      f.name = m.name;
      f.payload.assign(m.bytes, 0x55);
      f.enqueued_at = kernel.now();
      sender.send(f);
    });
  }
  kernel.run_until(milliseconds(500));
  // Per-message observed worst response must be dominated by its analytic
  // bound (the analysis is exact under synchronous release, so the bound is
  // also tight at t=0 for the lowest-priority message).
  for (const auto& m : model) {
    auto bound = result.response.find(m.name);
    if (bound == result.response.end()) continue;  // deemed unschedulable
    ASSERT_TRUE(observed.count(m.id)) << m.name << " seed=" << seed;
    EXPECT_LE(observed[m.id], bound->second) << m.name << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanSoundness,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- TDMA exclusivity -------------------------------------------------------------

class TtpExclusivity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TtpExclusivity, GuardianKeepsSlotsExclusiveUnderRandomFaults) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  Kernel kernel;
  Trace trace;
  ttp::TtpBus bus(kernel, trace, {.slot_len = microseconds(100),
                                  .bus_guardian = true});
  const std::size_t n = 4 + rng.index(5);
  std::vector<ttp::TtpNode*> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(&bus.attach("n" + std::to_string(i)));
  }
  // Random babble windows on up to two random nodes.
  for (int b = 0; b < 2; ++b) {
    auto* node = nodes[rng.index(n)];
    const auto from = milliseconds(rng.uniform(0, 40));
    node->babble(from, from + milliseconds(rng.uniform(1, 20)));
  }
  bus.start();
  kernel.run_until(milliseconds(100));
  // Exclusivity: with guardians, no collisions ever happen and membership is
  // fully intact.
  EXPECT_EQ(bus.collisions(), 0u) << "seed=" << seed;
  EXPECT_EQ(bus.membership_losses(), 0u);
  for (bool member : bus.membership()) EXPECT_TRUE(member);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TtpExclusivity,
                         ::testing::Range<std::uint64_t>(1, 11));

// --- Timing isolation sweep ---------------------------------------------------------

class IsolationSweep : public ::testing::TestWithParam<double> {};

TEST_P(IsolationSweep, VictimNeverMissesUnderEnforcement) {
  const double factor = GetParam();
  Kernel kernel;
  Trace trace;
  trace.enable_retention(false);
  os::Ecu ecu(kernel, trace, "host");
  auto& aggressor = ecu.add_task(
      {.name = "aggressor", .priority = 2, .period = milliseconds(10),
       .budget = milliseconds(2),
       .overrun_action = os::OverrunAction::kKillJob});
  aggressor.set_body([factor] {
    return static_cast<sim::Duration>(milliseconds(2) * factor);
  });
  auto& victim = ecu.add_task({.name = "victim", .priority = 1,
                               .period = milliseconds(10),
                               .relative_deadline = milliseconds(10)});
  victim.set_body(milliseconds(4));
  ecu.start();
  kernel.run_until(milliseconds(1000));
  EXPECT_EQ(victim.deadline_misses(), 0u) << "factor=" << factor;
  EXPECT_EQ(victim.jobs_completed(), 100u);
}

INSTANTIATE_TEST_SUITE_P(OverrunFactors, IsolationSweep,
                         ::testing::Values(1.0, 1.5, 2.0, 3.0, 5.0, 8.0,
                                           16.0));

// --- Contract algebra ------------------------------------------------------------------

contracts::Contract random_contract(Rng& rng, const std::string& name) {
  contracts::Contract c;
  c.name = name;
  const auto random_flow = [&rng](const std::string& flow) {
    contracts::FlowSpec f;
    f.flow = flow;
    const std::int64_t lo = rng.uniform(-100, 0);
    f.range = {lo, lo + rng.uniform(1, 200)};
    f.timing.period = milliseconds(rng.uniform(1, 50));
    f.timing.latency = milliseconds(rng.uniform(1, 50));
    return f;
  };
  c.assumptions.push_back(random_flow("in"));
  c.guarantees.push_back(random_flow("out"));
  return c;
}

class ContractAlgebra : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ContractAlgebra, DominanceReflexive) {
  Rng rng(GetParam());
  const auto c = random_contract(rng, "c");
  EXPECT_TRUE(contracts::dominates(c, c));
}

TEST_P(ContractAlgebra, DominanceTransitiveOnRefinementChain) {
  Rng rng(GetParam());
  auto a = random_contract(rng, "a");
  // b refines a: widen the accepted input range, tighten the output latency.
  auto b = a;
  b.assumptions[0].range.lo -= rng.uniform(0, 50);
  b.assumptions[0].range.hi += rng.uniform(0, 50);
  b.guarantees[0].timing.latency =
      std::max<sim::Duration>(1, b.guarantees[0].timing.latency / 2);
  auto c = b;
  c.assumptions[0].timing.latency += milliseconds(rng.uniform(0, 20));
  c.guarantees[0].range.hi =
      std::max(c.guarantees[0].range.lo, c.guarantees[0].range.hi - 1);
  ASSERT_TRUE(contracts::dominates(b, a));
  ASSERT_TRUE(contracts::dominates(c, b));
  EXPECT_TRUE(contracts::dominates(c, a));  // transitivity
}

TEST_P(ContractAlgebra, SatisfactionMonotoneUnderTightening) {
  Rng rng(GetParam());
  const auto c = random_contract(rng, "c");
  const auto& g = c.guarantees[0];
  contracts::FlowSpec a = g;  // assumption exactly the guarantee: satisfied
  ASSERT_TRUE(contracts::satisfies(g, a).ok);
  // Tightening the guarantee can never break satisfaction.
  auto tighter = g;
  tighter.range.lo += 1;
  if (tighter.range.lo > tighter.range.hi) tighter.range.lo = tighter.range.hi;
  tighter.timing.latency = std::max<sim::Duration>(1, g.timing.latency - 1);
  EXPECT_TRUE(contracts::satisfies(tighter, a).ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContractAlgebra,
                         ::testing::Range<std::uint64_t>(1, 21));

// --- COM packing round-trips -------------------------------------------------------------

class ComPackingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ComPackingProperty, RandomLayoutRoundTrips) {
  Rng rng(GetParam());
  std::vector<std::uint8_t> payload(8, 0);
  // Carve the 64 bits into consecutive random-width signals.
  struct Sig {
    std::size_t offset, length;
    std::uint64_t value;
  };
  std::vector<Sig> sigs;
  std::size_t cursor = 0;
  while (cursor < 64) {
    const std::size_t len =
        std::min<std::size_t>(64 - cursor, 1 + rng.index(16));
    const std::uint64_t value =
        len == 64 ? rng.next_u64() : rng.next_u64() & ((1ULL << len) - 1);
    sigs.push_back({cursor, len, value});
    cursor += len;
  }
  for (const auto& s : sigs) {
    bsw::pack_signal(payload, s.offset, s.length, s.value);
  }
  for (const auto& s : sigs) {
    EXPECT_EQ(bsw::unpack_signal(payload, s.offset, s.length), s.value)
        << "offset=" << s.offset << " len=" << s.length;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComPackingProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

// --- TT synthesis correctness ---------------------------------------------------------------

class TtSynthesisProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TtSynthesisProperty, SynthesizedTableSimulatesWithoutMisses) {
  Rng rng(GetParam());
  // Harmonic periods keep the hyperperiod small and feasibility likely.
  const std::vector<sim::Duration> periods{milliseconds(5), milliseconds(10),
                                           milliseconds(20)};
  std::vector<analysis::TtJobSpec> specs;
  const std::size_t n = 2 + rng.index(4);
  for (std::size_t i = 0; i < n; ++i) {
    analysis::TtJobSpec s;
    s.task = "t" + std::to_string(i);
    s.period = periods[rng.index(periods.size())];
    s.wcet = microseconds(200 * (1 + static_cast<std::int64_t>(rng.index(5))));
    specs.push_back(s);
  }
  const auto sched = analysis::synthesize_schedule(specs);
  if (!sched.has_value()) GTEST_SKIP() << "random set infeasible";
  // Windows must be disjoint and within [release, deadline].
  for (std::size_t i = 1; i < sched->windows.size(); ++i) {
    EXPECT_LE(sched->windows[i - 1].second, sched->windows[i].first);
  }
  Kernel kernel;
  Trace trace;
  trace.enable_retention(false);
  os::Ecu ecu(kernel, trace, "tt");
  for (const auto& s : specs) {
    ecu.add_task({.name = s.task, .priority = 1}).set_body(s.wcet);
  }
  ecu.set_schedule_table(sched->entries, sched->cycle);
  ecu.start();
  kernel.run_until(10 * sched->cycle);
  for (const auto& task : ecu.tasks()) {
    EXPECT_EQ(task->deadline_misses(), 0u);
    EXPECT_DOUBLE_EQ(task->response_times().min(),
                     task->response_times().max());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TtSynthesisProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

// --- FlexRay static latency bound ---------------------------------------------

class FlexRayBoundProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlexRayBoundProperty, ObservedLatencyWithinAnalyticBounds) {
  Rng rng(GetParam());
  Kernel kernel;
  Trace trace;
  trace.enable_retention(false);
  flexray::FlexRayConfig cfg;
  cfg.static_slots = 2 + rng.index(14);
  cfg.static_payload_bytes = 8 + 8 * rng.index(4);
  cfg.minislots = 10 + rng.index(40);
  cfg.minislot_len = sim::microseconds(1 + static_cast<std::int64_t>(
                                               rng.index(4)));
  cfg.network_idle = sim::microseconds(10 + static_cast<std::int64_t>(
                                                rng.index(90)));
  flexray::FlexRayBus bus(kernel, trace, cfg);
  auto& tx = bus.attach();
  auto& rx = bus.attach();
  const auto slot =
      static_cast<std::uint32_t>(1 + rng.index(cfg.static_slots));
  bus.assign_static_slot(slot, tx);
  const auto bound = analysis::flexray_static_latency(cfg, slot);
  sim::Duration worst = 0;
  rx.on_receive([&](const net::Frame& f) {
    worst = std::max(worst, kernel.now() - f.enqueued_at);
  });
  // Writes at random instants.
  for (int i = 0; i < 200; ++i) {
    kernel.schedule_at(rng.uniform(0, sim::to_us(bus.cycle_len()) * 1000 * 50),
                       [&tx, &kernel, slot] {
                         net::Frame f;
                         f.id = slot;
                         f.payload.assign(4, 0x7E);
                         f.enqueued_at = kernel.now();
                         tx.send(std::move(f));
                       });
  }
  bus.start();
  kernel.run_until(60 * bus.cycle_len());
  EXPECT_LE(worst, bound.worst) << "seed=" << GetParam();
  EXPECT_GT(worst, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlexRayBoundProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- NoC TDMA latency bound ------------------------------------------------------

class NocBoundProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NocBoundProperty, TdmaLatencyBoundedByPeriodPlusTx) {
  Rng rng(GetParam());
  Kernel kernel;
  Trace trace;
  trace.enable_retention(false);
  noc::NocConfig cfg;
  cfg.arbitration = noc::Arbitration::kTdma;
  cfg.slot_len = sim::microseconds(5 + static_cast<std::int64_t>(
                                           rng.index(20)));
  noc::Noc chip(kernel, trace, cfg);
  const std::size_t cores = 2 + rng.index(7);
  std::vector<noc::NetworkInterface*> nis;
  for (std::size_t i = 0; i < cores; ++i) {
    nis.push_back(&chip.attach("c" + std::to_string(i)));
  }
  // Every core sends at most one message per TDMA rotation (admission the
  // schedule was dimensioned for), at a random phase.
  const std::size_t max_bytes = std::min<std::size_t>(
      chip.slot_capacity_bytes(), 256);
  for (std::size_t c = 0; c < cores; ++c) {
    const int src = static_cast<int>(c);
    int dst = static_cast<int>(rng.index(cores));
    if (dst == src) dst = (dst + 1) % static_cast<int>(cores);
    const std::size_t bytes = 1 + rng.index(max_bytes);
    const sim::Duration period =
        chip.period() + rng.uniform(0, chip.period());
    const sim::Time phase = rng.uniform(0, period);
    kernel.schedule_periodic(
        phase, period, [ni = nis[c], dst, bytes] {
          noc::NocMessage m;
          m.destination = dst;
          m.name = "m";
          m.bytes = bytes;
          ni->send(m);
        });
  }
  chip.start();
  kernel.run_until(sim::milliseconds(20));
  // With less than one arrival per rotation, a message waits at most one
  // rotation for its slot plus at most one queued predecessor: 2 periods +
  // serialization bounds every delivery.
  const double bound_us =
      2 * sim::to_us(chip.period()) + sim::to_us(chip.tx_time(max_bytes));
  for (const auto& ni : chip.interfaces()) {
    if (ni->rx_latency().empty()) continue;
    EXPECT_LE(ni->rx_latency().max(), bound_us)
        << ni->name() << " seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NocBoundProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

// --- E2E protection under random channel faults ------------------------------------

class E2eChannelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(E2eChannelProperty, DetectsEveryCorruptionNeverFlagsCleanData) {
  Rng rng(GetParam());
  bsw::E2eProtector tx({.data_id = 0x77});
  bsw::E2eChecker rx({.data_id = 0x77, .max_delta = 3});
  int corrupted_delivered = 0;
  int clean_rejected_for_crc = 0;
  std::uint64_t value = 0;
  int in_flight_losses = 0;
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> payload(4);
    ++value;
    for (int b = 0; b < 4; ++b) {
      payload[static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(value >> (8 * b));
    }
    auto frame = tx.protect(payload);
    // Channel: 10% loss, 10% bit corruption, else clean.
    const double dice = rng.next_double();
    if (dice < 0.1) {
      ++in_flight_losses;
      continue;  // lost
    }
    const bool corrupt = dice < 0.2;
    if (corrupt) {
      // Flip a protected bit: CRC byte or payload (byte 0's high nibble is
      // padding outside the counter and deliberately unprotected).
      frame[1 + rng.index(frame.size() - 1)] ^=
          static_cast<std::uint8_t>(1u << rng.index(8));
    }
    const auto r = rx.check(frame);
    if (corrupt && (r.status == bsw::E2eStatus::kOk ||
                    r.status == bsw::E2eStatus::kOkSomeLost)) {
      // A flipped bit that still passes CRC8+counter is a real (rare)
      // residual error; with CRC8 over 6 bytes it must not happen for
      // single-bit flips.
      ++corrupted_delivered;
    }
    if (!corrupt && r.status == bsw::E2eStatus::kWrongCrc) {
      ++clean_rejected_for_crc;
    }
  }
  EXPECT_EQ(corrupted_delivered, 0) << "seed=" << GetParam();
  EXPECT_EQ(clean_rejected_for_crc, 0) << "seed=" << GetParam();
  EXPECT_GT(rx.ok_count(), 300u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, E2eChannelProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

// --- Holistic analysis vs executable distributed system ------------------------

class HolisticSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HolisticSoundness, ChainBoundsDominateSimulatedLatencies) {
  Rng rng(GetParam());
  constexpr std::int64_t kBitrate = 500'000;
  // Random distributed system: n chains, each = sender task on ECU A ->
  // CAN frame -> receiver task on ECU B.
  const std::size_t n = 2 + rng.index(4);
  const std::vector<sim::Duration> periods{milliseconds(5), milliseconds(10),
                                           milliseconds(20), milliseconds(40)};
  struct Chain {
    sim::Duration period, send_wcet, recv_wcet;
    std::uint32_t id;
  };
  std::vector<Chain> chains;
  analysis::HolisticModel model;
  for (std::size_t i = 0; i < n; ++i) {
    Chain ch;
    ch.period = periods[rng.index(periods.size())];
    ch.send_wcet = microseconds(100 * (1 + static_cast<std::int64_t>(
                                               rng.index(10))));
    ch.recv_wcet = microseconds(100 * (1 + static_cast<std::int64_t>(
                                               rng.index(10))));
    ch.id = static_cast<std::uint32_t>(0x100 + i);
    chains.push_back(ch);
    model.add_task({.name = "s" + std::to_string(i), .ecu = "A",
                    .wcet = ch.send_wcet, .period = ch.period,
                    .priority = static_cast<int>(100 - i)});
    model.add_task({.name = "r" + std::to_string(i), .ecu = "B",
                    .wcet = ch.recv_wcet,
                    .priority = static_cast<int>(100 - i)});
    model.add_message({.name = "m" + std::to_string(i), .id = ch.id,
                       .bytes = 8, .from_task = "s" + std::to_string(i),
                       .to_task = "r" + std::to_string(i)});
  }
  const auto result = model.analyze(kBitrate);
  if (!result.schedulable) GTEST_SKIP() << "random set unschedulable";

  // Executable equivalent on the raw OS + CAN substrates.
  Kernel kernel;
  Trace trace;
  trace.enable_retention(false);
  os::Ecu ecu_a(kernel, trace, "A");
  os::Ecu ecu_b(kernel, trace, "B");
  can::CanBus bus(kernel, trace, {.bitrate_bps = kBitrate});
  auto& ctrl_a = bus.attach();
  auto& ctrl_b = bus.attach();

  std::vector<double> observed_worst_ms(n, 0.0);
  std::vector<os::Task*> receivers(n);
  std::vector<sim::Time> chain_start(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    auto& recv = ecu_b.add_task(
        {.name = "r" + std::to_string(i),
         .priority = static_cast<int>(100 - i),
         .max_pending_activations = 4});
    recv.set_body(chains[i].recv_wcet);
    receivers[i] = &recv;
    recv.on_complete([&, i](sim::Time, sim::Time done) {
      observed_worst_ms[i] = std::max(
          observed_worst_ms[i], sim::to_ms(done - chain_start[i]));
    });
    auto& send = ecu_a.add_task({.name = "s" + std::to_string(i),
                                 .priority = static_cast<int>(100 - i),
                                 .period = chains[i].period});
    send.set_body(chains[i].send_wcet, [&, i] {
      net::Frame fr;
      fr.id = chains[i].id;
      fr.name = "m" + std::to_string(i);
      fr.payload.assign(8, 0x11);
      fr.enqueued_at = kernel.now();
      ctrl_a.send(std::move(fr));
    });
    // Track the chain head's activation instant for end-to-end measurement.
    ecu_a.find_task("s" + std::to_string(i));
  }
  // Record head activations via the trace (activation -> chain start).
  trace.enable_retention(false);
  std::vector<std::deque<sim::Time>> pending_starts(n);
  for (std::size_t i = 0; i < n; ++i) {
    ecu_a.find_task("s" + std::to_string(i))
        ->on_complete([&, i](sim::Time activated, sim::Time) {
          pending_starts[i].push_back(activated);
        });
  }
  ctrl_b.on_receive([&](const net::Frame& fr) {
    const std::size_t i = fr.id - 0x100;
    if (!pending_starts[i].empty()) {
      chain_start[i] = pending_starts[i].front();
      pending_starts[i].pop_front();
    }
    ecu_b.activate(*receivers[i]);
  });

  ecu_a.start();
  ecu_b.start();
  kernel.run_until(milliseconds(400));

  for (std::size_t i = 0; i < n; ++i) {
    const auto bound = result.chain_latency.at("s" + std::to_string(i));
    EXPECT_LE(observed_worst_ms[i], sim::to_ms(bound) + 1e-9)
        << "chain " << i << " seed=" << GetParam();
    EXPECT_GT(observed_worst_ms[i], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HolisticSoundness,
                         ::testing::Range<std::uint64_t>(1, 16));

// --- Validator completeness vs the system generator ----------------------------
//
// Property: a model+plan the static validator passes (no error-severity
// diagnostics) NEVER throws from System construction or a short run — the
// validator is a complete front-line for the generator. Conversely, a model
// the validator rejects must be rejected by strict-mode construction too.

struct RandomVfbModel {
  vfb::Composition comp;
  vfb::DeploymentPlan plan;
};

RandomVfbModel random_vfb_model(sim::Rng& rng) {
  using namespace orte::vfb;
  RandomVfbModel m;
  const std::vector<sim::Duration> periods{milliseconds(1), milliseconds(2),
                                           milliseconds(5), milliseconds(10),
                                           milliseconds(20)};
  const std::vector<std::size_t> widths{8, 16, 32, 64};
  const std::size_t pipelines = 1 + rng.index(3);
  for (std::size_t i = 0; i < pipelines; ++i) {
    const std::string suffix = std::to_string(i);
    PortInterface iface;
    iface.name = "I" + suffix;
    iface.kind = PortInterface::Kind::kSenderReceiver;
    DataElement elem;
    elem.name = "val";
    elem.bit_length = widths[rng.index(widths.size())];
    elem.queued = rng.index(3) == 0;
    elem.queue_length = 2 + rng.index(6);
    elem.overflow = rng.index(2) == 0 ? QueueOverflow::kReject
                                      : QueueOverflow::kDropOldest;
    iface.elements.push_back(elem);
    m.comp.add_interface(iface);

    Runnable produce;
    produce.name = "produce";
    produce.trigger = RunnableTrigger::timing(periods[rng.index(periods.size())]);
    produce.accesses.push_back(
        {"out", "val",
         rng.index(2) == 0 ? DataAccessKind::kImplicitWrite
                           : DataAccessKind::kExplicitWrite});
    m.comp.add_type({"P" + suffix,
                     {Port{"out", iface.name, PortDirection::kProvided}},
                     {produce}});

    Runnable consume;
    consume.name = "consume";
    if (rng.index(3) == 0) {
      consume.trigger = RunnableTrigger::data_received("in", "val");
    } else {
      consume.trigger =
          RunnableTrigger::timing(periods[rng.index(periods.size())]);
    }
    consume.accesses.push_back(
        {"in", "val",
         rng.index(2) == 0 ? DataAccessKind::kImplicitRead
                           : DataAccessKind::kExplicitRead});
    m.comp.add_type({"C" + suffix,
                     {Port{"in", iface.name, PortDirection::kRequired}},
                     {consume}});

    m.comp.add_instance({"p" + suffix, "P" + suffix});
    m.comp.add_instance({"k" + suffix, "C" + suffix});
    m.comp.add_connector({"p" + suffix, "out", "k" + suffix, "in"});
    m.plan.instances["p" + suffix] = {.ecu = rng.index(2) == 0 ? "E0" : "E1"};
    m.plan.instances["k" + suffix] = {.ecu = rng.index(2) == 0 ? "E0" : "E1"};
  }
  return m;
}

class ValidatorCompleteness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ValidatorCompleteness, CleanVerdictImpliesThrowFreeGeneration) {
  Rng rng(GetParam());
  auto m = random_vfb_model(rng);
  const auto report = validation::validate(m.comp, m.plan);
  ASSERT_FALSE(report.has_errors()) << report.render();
  Kernel kernel;
  Trace trace;
  trace.enable_retention(false);
  EXPECT_NO_THROW({
    vfb::System sys(kernel, trace, m.comp, m.plan);
    sys.run_for(milliseconds(50));
  }) << "seed=" << GetParam();
}

TEST_P(ValidatorCompleteness, RejectedModelIsRejectedByStrictConstruction) {
  Rng rng(GetParam());
  auto m = random_vfb_model(rng);
  // Inject one random defect the validator must catch.
  switch (rng.index(4)) {
    case 0:  // undeployed instance
      m.plan.instances.erase(m.plan.instances.begin());
      break;
    case 1:  // dangling connector endpoint
      m.comp.add_connector({"p0", "out", "ghost", "in"});
      break;
    case 2:  // reversed connector
      m.comp.add_connector({"k0", "in", "p0", "out"});
      break;
    default:  // instance of an unknown type
      m.comp.add_instance({"zombie", "NoSuchType"});
      break;
  }
  const auto report = validation::validate(m.comp, m.plan);
  EXPECT_TRUE(report.has_errors()) << "seed=" << GetParam();
  Kernel kernel;
  Trace trace;
  trace.enable_retention(false);
  EXPECT_THROW(vfb::System(kernel, trace, m.comp, m.plan),
               std::invalid_argument)
      << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidatorCompleteness,
                         ::testing::Range<std::uint64_t>(1, 21));

// --- V9 static/dynamic cross-check fuzz ----------------------------------------
//
// Property: for every random multi-ECU chain model the generator accepts,
// the holistic V9 bound stamped into each rv::LatencyMonitor dominates the
// latency that monitor actually observes over a long run — the static
// analysis is sound w.r.t. the executable system it was derived from.

class ChainBoundFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChainBoundFuzz, StaticChainBoundDominatesObservedLatency) {
  using namespace orte::vfb;
  Rng rng(GetParam());
  Composition comp;
  DeploymentPlan plan;
  if (rng.index(3) == 0) plan.bus = BusKind::kFlexRay;
  const std::vector<sim::Duration> periods{milliseconds(5), milliseconds(10),
                                           milliseconds(20)};
  const std::size_t pipelines = 1 + rng.index(3);
  for (std::size_t i = 0; i < pipelines; ++i) {
    const std::string s = std::to_string(i);
    PortInterface iface;
    iface.name = "I" + s;
    iface.kind = PortInterface::Kind::kSenderReceiver;
    iface.elements.push_back(DataElement{"val", 32, 0, false});
    comp.add_interface(iface);

    Runnable produce;
    produce.name = "produce";
    produce.trigger =
        RunnableTrigger::timing(periods[rng.index(periods.size())]);
    produce.wcet_bound = microseconds(
        50 + 100 * static_cast<std::int64_t>(rng.index(5)));
    produce.accesses.push_back(
        {"out", "val", DataAccessKind::kImplicitWrite});
    produce.behavior = [](RunnableContext& ctx) {
      ctx.write("out", "val", 42);
    };
    comp.add_type({"P" + s,
                   {Port{"out", iface.name, PortDirection::kProvided}},
                   {produce}});

    // Mix of event-triggered consumers (watched 1:1 activation chains) and
    // periodic readers (pure interference on the receiving ECU).
    Runnable consume;
    consume.name = "consume";
    const bool event_sink = rng.index(3) != 0;
    if (event_sink) {
      consume.trigger = RunnableTrigger::data_received("in", "val");
    } else {
      consume.trigger =
          RunnableTrigger::timing(periods[rng.index(periods.size())]);
    }
    consume.wcet_bound = microseconds(
        50 + 100 * static_cast<std::int64_t>(rng.index(5)));
    consume.accesses.push_back(
        {"in", "val", DataAccessKind::kImplicitRead});
    comp.add_type({"C" + s,
                   {Port{"in", iface.name, PortDirection::kRequired}},
                   {consume}});

    comp.add_instance({"p" + s, "P" + s});
    comp.add_instance({"k" + s, "C" + s});
    comp.add_connector({"p" + s, "out", "k" + s, "in"});
    plan.instances["p" + s] = {.ecu = rng.index(2) == 0 ? "E0" : "E1"};
    plan.instances["k" + s] = {.ecu = rng.index(2) == 0 ? "E0" : "E1"};

    // A generous latency obligation on every event sink: far above any
    // schedulable bound, so V9 reports info (never an error that would
    // abort generation) and the monitor gets its static_bound stamped.
    if (event_sink) {
      contracts::Contract c{.name = "CChain" + s};
      c.assumptions.push_back(
          contracts::FlowSpec{.flow = "in.val",
                              .timing = {.latency = sim::seconds(5)}});
      comp.bind_contract("k" + s, c);
    }
  }

  const auto report = validation::validate(comp, plan);
  ASSERT_FALSE(report.has_errors()) << report.render();

  Kernel kernel;
  Trace trace;
  trace.enable_retention(false);
  vfb::System sys(kernel, trace, comp, plan);
  const auto analysis = sys.analyze();
  sys.start();
  sys.run_for(milliseconds(400));

  std::size_t checked = 0;
  for (const rv::LatencyMonitor* lm : sys.monitors()->latency_monitors()) {
    if (lm->spec().static_bound <= 0) continue;  // chain not statically bounded
    ASSERT_GT(lm->samples(), 0u)
        << lm->spec().contract << " seed=" << GetParam();
    EXPECT_LE(lm->worst(), lm->spec().static_bound)
        << lm->spec().contract << " seed=" << GetParam();
    ++checked;
  }
  // Every computable event-sink chain bound must have reached its monitor.
  std::size_t computable = 0;
  for (const auto& cb : analysis.chain_bounds) {
    if (cb.computable && !cb.sink_task.empty()) ++computable;
  }
  EXPECT_EQ(checked, computable) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainBoundFuzz,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
