// Runtime-verification layer: online monitors, health report, DEM/mode
// escalation, trace exporters, and the vfb::System auto-population pass.
#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bsw/dem.hpp"
#include "bsw/mode.hpp"
#include "contracts/contract.hpp"
#include "contracts/timed_automaton.hpp"
#include "rv/health.hpp"
#include "rv/monitors.hpp"
#include "rv/registry.hpp"
#include "rv/trace_export.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"
#include "vfb/model.hpp"
#include "vfb/rte.hpp"
#include "vfb/system.hpp"

namespace {

using namespace orte;

// --- Monitor units (records fed straight through a Trace) --------------------

TEST(ArrivalMonitor, LateUpdateViolatesPeriod) {
  sim::Trace trace;
  rv::MonitorRegistry reg(trace);
  reg.add_arrival({.contract = "C_Pedal",
                   .subject = "pedal.pedal.stamp",
                   .period = sim::milliseconds(5)});
  trace.emit(0, "rte.write", "pedal.pedal.stamp");
  trace.emit(sim::milliseconds(5), "rte.write", "pedal.pedal.stamp");
  trace.emit(sim::milliseconds(12), "rte.write", "pedal.pedal.stamp");
  // Other subjects in the same category are ignored.
  trace.emit(sim::milliseconds(13), "rte.write", "other.port.elem");

  ASSERT_EQ(reg.health().total(), 1u);
  const rv::Violation& v = reg.health().violations().front();
  EXPECT_EQ(v.contract, "C_Pedal");
  EXPECT_EQ(v.kind, "period");
  EXPECT_EQ(v.observed, sim::milliseconds(7));
  EXPECT_EQ(v.bound, sim::milliseconds(5));
  EXPECT_EQ(v.when, sim::milliseconds(12));
}

TEST(ArrivalMonitor, JitterBoundCatchesEarlyAndLate) {
  sim::Trace trace;
  rv::MonitorRegistry reg(trace);
  reg.add_arrival({.contract = "C",
                   .subject = "s",
                   .period = sim::milliseconds(5),
                   .jitter = sim::milliseconds(1)});
  trace.emit(0, "rte.write", "s");
  trace.emit(sim::milliseconds(5), "rte.write", "s");   // nominal
  trace.emit(sim::milliseconds(8), "rte.write", "s");   // 3 ms: 2 ms deviation
  trace.emit(sim::milliseconds(11), "rte.write", "s");  // 3 ms: 2 ms deviation
  trace.emit(sim::milliseconds(13), "rte.write", "s");  // 2 ms: 3 ms deviation
  ASSERT_EQ(reg.health().total(), 3u);
  EXPECT_EQ(reg.health().count_kind("jitter"), 3u);
  EXPECT_EQ(reg.health().violations()[0].observed, sim::milliseconds(2));
  EXPECT_EQ(reg.health().violations()[0].bound, sim::milliseconds(1));
  // Consecutive violations grow the streak (confidence counter).
  EXPECT_EQ(reg.health().violations()[2].streak, 3u);
}

TEST(ArrivalMonitor, FasterThanPromisedRefinesWithoutJitterBound) {
  sim::Trace trace;
  rv::MonitorRegistry reg(trace);
  reg.add_arrival({.contract = "C",
                   .subject = "s",
                   .period = sim::milliseconds(5)});
  trace.emit(0, "rte.write", "s");
  trace.emit(sim::milliseconds(2), "rte.write", "s");  // faster is fine
  trace.emit(sim::milliseconds(4), "rte.write", "s");
  EXPECT_TRUE(reg.health().healthy());
}

TEST(DeadlineMonitor, MissRecordsRaiseAndCompletionResetsStreak) {
  sim::Trace trace;
  rv::MonitorRegistry reg(trace);
  reg.add_deadline({.contract = "C_Brake",
                    .task = "tk|brake|5000000",
                    .deadline = sim::milliseconds(5)});
  trace.emit(sim::milliseconds(5), "task.deadline_miss", "tk|brake|5000000");
  trace.emit(sim::milliseconds(10), "task.deadline_miss", "tk|brake|5000000");
  ASSERT_EQ(reg.health().total(), 2u);
  EXPECT_EQ(reg.health().violations()[1].streak, 2u);
  EXPECT_EQ(reg.health().violations()[1].kind, "deadline");
  EXPECT_EQ(reg.health().violations()[1].bound, sim::milliseconds(5));
  // In-bound completion resets the streak.
  trace.emit(sim::milliseconds(14), "task.complete", "tk|brake|5000000",
             sim::milliseconds(4));
  trace.emit(sim::milliseconds(20), "task.deadline_miss", "tk|brake|5000000");
  EXPECT_EQ(reg.health().violations()[2].streak, 1u);
}

TEST(DeadlineMonitor, ResponseBoundTighterThanDeadline) {
  sim::Trace trace;
  rv::MonitorRegistry reg(trace);
  reg.add_deadline({.contract = "C",
                    .task = "t",
                    .deadline = sim::milliseconds(10),
                    .response_bound = sim::milliseconds(2)});
  trace.emit(sim::milliseconds(5), "task.complete", "t", sim::milliseconds(1));
  trace.emit(sim::milliseconds(15), "task.complete", "t", sim::milliseconds(3));
  ASSERT_EQ(reg.health().total(), 1u);
  EXPECT_EQ(reg.health().violations()[0].kind, "response");
  EXPECT_EQ(reg.health().violations()[0].observed, sim::milliseconds(3));
  EXPECT_EQ(reg.health().violations()[0].bound, sim::milliseconds(2));
}

TEST(LatencyMonitor, ChainLatencyOverBoundRaises) {
  sim::Trace trace;
  rv::MonitorRegistry reg(trace);
  auto& m = reg.add_latency({.contract = "C_E2E",
                             .source_subject = "pedal.pedal.stamp",
                             .sink_subject = "brake",
                             .sink_detail = "control",
                             .bound = sim::milliseconds(1)});
  trace.emit(0, "rte.write", "pedal.pedal.stamp");
  trace.emit(sim::microseconds(500), "rte.runnable", "brake", 0, "control");
  trace.emit(sim::milliseconds(5), "rte.write", "pedal.pedal.stamp");
  // A different runnable of the sink instance does not consume the cause.
  trace.emit(sim::milliseconds(6), "rte.runnable", "brake", 0, "housekeeping");
  trace.emit(sim::milliseconds(7), "rte.runnable", "brake", 0, "control");
  ASSERT_EQ(reg.health().total(), 1u);
  EXPECT_EQ(reg.health().violations()[0].kind, "latency");
  EXPECT_EQ(reg.health().violations()[0].observed, sim::milliseconds(2));
  EXPECT_EQ(reg.health().violations()[0].subject,
            "pedal.pedal.stamp -> brake");
  EXPECT_EQ(m.samples(), 2u);
  EXPECT_EQ(m.worst(), sim::milliseconds(2));
}

TEST(LatencyMonitor, StarvedSinkDropsOldestAndReports) {
  sim::Trace trace;
  rv::MonitorRegistry reg(trace);
  reg.add_latency({.contract = "C",
                   .source_subject = "src",
                   .sink_subject = "snk",
                   .bound = sim::milliseconds(1),
                   .max_in_flight = 2});
  trace.emit(0, "rte.write", "src");
  trace.emit(sim::milliseconds(1), "rte.write", "src");
  trace.emit(sim::milliseconds(2), "rte.write", "src");  // window full
  ASSERT_EQ(reg.health().total(), 1u);
  EXPECT_EQ(reg.health().violations()[0].detail,
            "sink starved: dropped unmatched cause");
  EXPECT_EQ(reg.health().violations()[0].observed, sim::milliseconds(2));
}

TEST(AutomatonMonitor, LateResponseViolatesAndSelfHeals) {
  // req -> rsp within 5 time units (tick = 1 ms).
  contracts::TimedAutomaton ta;
  const int idle = ta.add_location("idle");
  const int wait = ta.add_location("wait");
  const int c = ta.add_clock("c");
  ta.add_edge(idle, wait, "req", {}, {c});
  ta.add_edge(wait, idle, "rsp",
              {{c, contracts::TimedAutomaton::Constraint::Op::kLe, 5}});

  sim::Trace trace;
  rv::MonitorRegistry reg(trace);
  rv::AutomatonSpec spec;
  spec.contract = "C_ReqRsp";
  spec.automaton = ta;
  spec.labels = {{"rte.write", "a.req.v", "req"}, {"rte.write", "b.rsp.v", "rsp"}};
  spec.tick = sim::milliseconds(1);
  auto& m = reg.add_automaton(std::move(spec));

  trace.emit(0, "rte.write", "a.req.v");
  trace.emit(sim::milliseconds(3), "rte.write", "b.rsp.v");  // in time
  EXPECT_TRUE(reg.health().healthy());
  trace.emit(sim::milliseconds(10), "rte.write", "a.req.v");
  trace.emit(sim::milliseconds(20), "rte.write", "b.rsp.v");  // 10 > 5: stuck
  ASSERT_EQ(reg.health().total(), 1u);
  EXPECT_EQ(reg.health().violations()[0].kind, "automaton");
  EXPECT_NE(reg.health().violations()[0].detail.find("stuck in location"),
            std::string::npos);
  // Self-heal: the observer resumed from the initial location.
  EXPECT_EQ(m.location(), idle);
  trace.emit(sim::milliseconds(21), "rte.write", "a.req.v");
  trace.emit(sim::milliseconds(23), "rte.write", "b.rsp.v");
  EXPECT_EQ(reg.health().total(), 1u);  // clean again
  EXPECT_EQ(m.events(), 6u);
}

// --- HealthReport -------------------------------------------------------------

TEST(HealthReport, QueriesAndRender) {
  rv::HealthReport hr;
  hr.record({.contract = "A", .subject = "s1", .kind = "period"});
  hr.record({.contract = "A", .subject = "s2", .kind = "latency"});
  hr.record({.contract = "B", .subject = "s3", .kind = "period"});
  EXPECT_EQ(hr.total(), 3u);
  EXPECT_FALSE(hr.healthy());
  EXPECT_EQ(hr.count_kind("period"), 2u);
  EXPECT_EQ(hr.count_contract("A"), 2u);
  EXPECT_EQ(hr.for_contract("B").size(), 1u);
  const std::string text = hr.render();
  EXPECT_NE(text.find("A"), std::string::npos);
  EXPECT_NE(text.find("period"), std::string::npos);
  hr.clear();
  EXPECT_TRUE(hr.healthy());
  EXPECT_EQ(hr.count_kind("period"), 0u);
}

TEST(HealthReport, RetentionCapEvictsLogButKeepsCountersExact) {
  rv::HealthReport hr;
  hr.set_retention(3);
  for (int i = 0; i < 10; ++i) {
    hr.record({.contract = i % 2 == 0 ? "A" : "B",
               .subject = "s",
               .kind = "period",
               .when = i});
  }
  // The log is bounded to the 3 newest records...
  ASSERT_EQ(hr.violations().size(), 3u);
  EXPECT_EQ(hr.violations().front().when, 7);
  EXPECT_EQ(hr.violations().back().when, 9);
  // ...while every counter stays exact across the eviction.
  EXPECT_EQ(hr.total(), 10u);
  EXPECT_EQ(hr.count_kind("period"), 10u);
  EXPECT_EQ(hr.count_contract("A"), 5u);
  EXPECT_EQ(hr.count_contract("B"), 5u);
  ASSERT_NE(hr.stats("A"), nullptr);
  EXPECT_EQ(hr.stats("A")->violating, 5u);
  EXPECT_NE(hr.render().find("showing last 3"), std::string::npos);
  // Tightening the cap evicts immediately; 0 lifts the bound.
  hr.set_retention(1);
  EXPECT_EQ(hr.violations().size(), 1u);
  hr.set_retention(0);
  hr.record({.contract = "A", .subject = "s", .kind = "period"});
  EXPECT_EQ(hr.violations().size(), 2u);
  EXPECT_EQ(hr.total(), 11u);
}

TEST(HealthReport, ViolationBudgetFollowsConfidence) {
  rv::HealthReport hr;
  // 1 violation against 1000 judged observations of a 99.9 %-confidence
  // spec: tolerated = ⌊0.001 * 1000⌋ = 1 (the epsilon must absorb the
  // binary representation of 0.999), so the contract is exactly on budget.
  hr.record({.contract = "C", .subject = "s", .kind = "period",
             .confidence = 0.999});
  hr.note_observations("C", 1000, 0.999);
  const rv::HealthReport::ContractStats* stats = hr.stats("C");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->tolerated(), 1u);
  EXPECT_EQ(stats->window_violating(), 1u);
  EXPECT_FALSE(stats->over_budget());
  // A second violation exceeds the budget.
  hr.record({.contract = "C", .subject = "s", .kind = "period",
             .confidence = 0.999});
  EXPECT_TRUE(hr.stats("C")->over_budget());
  // Closing the window resets the verdict: only new observations count.
  hr.close_window("C");
  EXPECT_EQ(hr.stats("C")->window_violating(), 0u);
  EXPECT_EQ(hr.stats("C")->window_observations(), 0u);
  EXPECT_FALSE(hr.stats("C")->over_budget());
  // Confidence 1.0 tolerates nothing.
  hr.note_observations("D", 1000000, 1.0);
  hr.record({.contract = "D", .subject = "s", .kind = "period"});
  EXPECT_EQ(hr.stats("D")->tolerated(), 0u);
  EXPECT_TRUE(hr.stats("D")->over_budget());
}

// --- Registry escalation ------------------------------------------------------

TEST(MonitorRegistry, ViolationsMatureDtcInDem) {
  sim::Kernel kernel;
  sim::Trace trace;
  bsw::Dem dem(kernel, trace);
  rv::MonitorRegistry reg(trace);
  reg.add_arrival({.contract = "C_Pedal",
                   .subject = "s",
                   .period = sim::milliseconds(5)});
  reg.report_to(dem, /*debounce_threshold=*/2);

  trace.emit(0, "rte.write", "s");
  trace.emit(sim::milliseconds(8), "rte.write", "s");  // 1st violation
  EXPECT_FALSE(dem.dtc("rv.C_Pedal").has_value());     // still debouncing
  trace.emit(sim::milliseconds(16), "rte.write", "s");  // 2nd: latches
  ASSERT_TRUE(dem.dtc("rv.C_Pedal").has_value());
  EXPECT_EQ(dem.dtc("rv.C_Pedal")->code, rv::contract_dtc_code("C_Pedal"));
  EXPECT_TRUE(dem.is_failed("rv.C_Pedal"));
}

TEST(MonitorRegistry, EscalatesToDegradedModeAndQuarantines) {
  sim::Kernel kernel;
  sim::Trace trace;
  bsw::ModeMachine modes(kernel, trace, "vehicle", "RUN");
  modes.add_mode("DEGRADED");
  modes.add_transition("RUN", "DEGRADED");

  rv::MonitorRegistry reg(trace);
  reg.add_arrival({.contract = "C",
                   .subject = "pedal.pedal.stamp",
                   .period = sim::milliseconds(5)});
  std::vector<std::string> quarantined;
  reg.quarantine_with([&](const std::string& instance, const rv::Violation&) {
    quarantined.push_back(instance);
  });
  reg.escalate_to(modes, "DEGRADED", /*threshold=*/2);

  trace.emit(0, "rte.write", "pedal.pedal.stamp");
  trace.emit(sim::milliseconds(8), "rte.write", "pedal.pedal.stamp");
  EXPECT_FALSE(reg.escalated());
  EXPECT_TRUE(modes.in("RUN"));
  trace.emit(sim::milliseconds(16), "rte.write", "pedal.pedal.stamp");
  EXPECT_TRUE(reg.escalated());
  EXPECT_TRUE(modes.in("DEGRADED"));
  // The hook receives the first path segment of the violating subject.
  ASSERT_EQ(quarantined.size(), 1u);
  EXPECT_EQ(quarantined[0], "pedal");
  // reset() re-arms escalation but ModeMachine state is the integrator's.
  reg.reset();
  EXPECT_FALSE(reg.escalated());
  EXPECT_TRUE(reg.health().healthy());
}

TEST(MonitorRegistry, QuarantineHookAloneStaysInert) {
  sim::Trace trace;
  rv::MonitorRegistry reg(trace);
  reg.add_arrival({.contract = "C", .subject = "s",
                   .period = sim::milliseconds(5)});
  bool fired = false;
  reg.quarantine_with(
      [&](const std::string&, const rv::Violation&) { fired = true; });
  trace.emit(0, "rte.write", "s");
  trace.emit(sim::milliseconds(9), "rte.write", "s");
  EXPECT_EQ(reg.health().total(), 1u);
  EXPECT_FALSE(fired);  // no escalate_to: sanctions need explicit opt-in
  EXPECT_FALSE(reg.escalated());
}

TEST(MonitorRegistry, RoutesOnlyWatchedCategories) {
  sim::Trace trace;
  rv::MonitorRegistry reg(trace);
  reg.add_arrival({.contract = "C", .subject = "s",
                   .period = sim::milliseconds(5)});
  trace.emit(0, "rte.write", "s");
  trace.emit(1, "task.start", "t");
  trace.emit(2, "can.tx", "frame");
  EXPECT_EQ(reg.records_routed(), 1u);
  EXPECT_EQ(reg.monitor_count(), 1u);
}

// --- Violation budgets --------------------------------------------------------

TEST(MonitorRegistry, BudgetToleratesOneInTenThousandAtHighConfidence) {
  // The acceptance scenario: a 99.9 %-confidence contract that misses its
  // period once in 10 000 observations stays healthy — no DTC matures and
  // no escalation fires, because 1 violating observation is far inside the
  // tolerated = ⌊0.001 * 10000⌋ = 10 budget.
  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  bsw::Dem dem(kernel, trace);
  bsw::ModeMachine modes(kernel, trace, "vehicle", "RUN");
  modes.add_mode("DEGRADED");
  modes.add_transition("RUN", "DEGRADED");
  rv::MonitorRegistry reg(trace);
  reg.add_arrival({.contract = "C",
                   .subject = "s",
                   .period = sim::milliseconds(5),
                   .confidence = 0.999});
  reg.report_to(dem, /*debounce_threshold=*/1);
  reg.escalate_to(modes, "DEGRADED", /*threshold=*/1);

  // 10 001 writes -> 10 000 judged intervals; one (after write 6000) is
  // 10 ms instead of 5 ms.
  for (int i = 0; i <= 10000; ++i) {
    const sim::Duration shift = i > 6000 ? sim::milliseconds(5) : 0;
    trace.emit(sim::milliseconds(5) * i + shift, "rte.write", "s");
  }
  reg.flush();

  EXPECT_EQ(reg.health().total(), 1u);  // recorded for diagnosis...
  EXPECT_FALSE(dem.dtc("rv.C").has_value());  // ...but no DTC,
  EXPECT_FALSE(reg.escalated());              // no escalation,
  EXPECT_TRUE(modes.in("RUN"));               // no mode change.
  const rv::HealthReport::ContractStats* stats = reg.health().stats("C");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->observations, 10000u);
}

TEST(MonitorRegistry, SameTraceAtFullConfidenceEscalates) {
  // The counterpart: the identical trace under confidence = 1.0 tolerates
  // nothing — the single late interval matures a DTC and degrades the mode.
  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  bsw::Dem dem(kernel, trace);
  bsw::ModeMachine modes(kernel, trace, "vehicle", "RUN");
  modes.add_mode("DEGRADED");
  modes.add_transition("RUN", "DEGRADED");
  rv::MonitorRegistry reg(trace);
  reg.add_arrival({.contract = "C",
                   .subject = "s",
                   .period = sim::milliseconds(5),
                   .confidence = 1.0});
  reg.report_to(dem, /*debounce_threshold=*/1);
  reg.escalate_to(modes, "DEGRADED", /*threshold=*/1);

  for (int i = 0; i <= 10000; ++i) {
    const sim::Duration shift = i > 6000 ? sim::milliseconds(5) : 0;
    trace.emit(sim::milliseconds(5) * i + shift, "rte.write", "s");
  }

  EXPECT_EQ(reg.health().total(), 1u);
  EXPECT_TRUE(dem.dtc("rv.C").has_value());
  EXPECT_TRUE(reg.escalated());
  EXPECT_TRUE(modes.in("DEGRADED"));
}

TEST(MonitorRegistry, ExactBudgetBoundaryStaysHealthy) {
  // violations == tolerated is still within budget; only the strictly
  // greater case escalates. Confidence 0.5 over 4 judged intervals
  // tolerates ⌊0.5 * 4⌋ = 2.
  sim::Kernel kernel;
  sim::Trace trace;
  bsw::ModeMachine modes(kernel, trace, "vehicle", "RUN");
  modes.add_mode("DEGRADED");
  modes.add_transition("RUN", "DEGRADED");
  rv::MonitorRegistry reg(trace);
  reg.add_arrival({.contract = "C",
                   .subject = "s",
                   .period = sim::milliseconds(5),
                   .confidence = 0.5});
  reg.escalate_to(modes, "DEGRADED", /*threshold=*/1);

  for (const int ms : {0, 5, 13, 18, 26}) {  // intervals 5, 8, 5, 8
    trace.emit(sim::milliseconds(ms), "rte.write", "s");
  }
  EXPECT_EQ(reg.health().total(), 2u);
  EXPECT_EQ(reg.health().stats("C")->tolerated(), 2u);
  EXPECT_FALSE(reg.escalated());  // 2 violating == 2 tolerated: on budget

  trace.emit(sim::milliseconds(34), "rte.write", "s");  // 3rd late interval
  EXPECT_TRUE(reg.escalated());  // 3 > ⌊0.5 * 5⌋ = 2: over budget
  EXPECT_TRUE(modes.in("DEGRADED"));
}

TEST(MonitorRegistry, EscalationThresholdZeroCoercesToOne) {
  sim::Kernel kernel;
  sim::Trace trace;
  bsw::ModeMachine modes(kernel, trace, "vehicle", "RUN");
  modes.add_mode("DEGRADED");
  modes.add_transition("RUN", "DEGRADED");
  rv::MonitorRegistry reg(trace);
  reg.add_arrival({.contract = "C", .subject = "s",
                   .period = sim::milliseconds(5)});
  reg.escalate_to(modes, "DEGRADED", /*threshold=*/0);
  trace.emit(0, "rte.write", "s");
  EXPECT_FALSE(reg.escalated());
  trace.emit(sim::milliseconds(9), "rte.write", "s");
  EXPECT_TRUE(reg.escalated());  // 0 behaves as 1, not "never"
}

TEST(MonitorRegistry, WarmupDefersJudgementUntilEnoughObservations) {
  sim::Kernel kernel;
  sim::Trace trace;
  bsw::Dem dem(kernel, trace);
  bsw::ModeMachine modes(kernel, trace, "vehicle", "RUN");
  modes.add_mode("DEGRADED");
  modes.add_transition("RUN", "DEGRADED");
  rv::MonitorRegistry reg(trace);
  reg.add_arrival({.contract = "C", .subject = "s",
                   .period = sim::milliseconds(5)});
  reg.report_to(dem, /*debounce_threshold=*/1);
  reg.escalate_to(modes, "DEGRADED", /*threshold=*/1);
  reg.set_warmup(10);

  // 3 violating intervals — over budget on paper, but the window holds
  // fewer than 10 observations, so no verdict is passed yet.
  trace.emit(0, "rte.write", "s");
  for (int i = 1; i <= 3; ++i) {
    trace.emit(sim::milliseconds(8) * i, "rte.write", "s");
  }
  EXPECT_EQ(reg.health().total(), 3u);
  EXPECT_FALSE(dem.dtc("rv.C").has_value());
  EXPECT_FALSE(reg.escalated());

  // 7 conforming intervals complete the warm-up; the next flush judges the
  // window (3 violating in 10 > 0 tolerated) and escalates.
  for (int i = 1; i <= 7; ++i) {
    trace.emit(sim::milliseconds(24) + sim::milliseconds(5) * i, "rte.write",
               "s");
  }
  reg.flush();
  EXPECT_TRUE(dem.dtc("rv.C").has_value());
  EXPECT_TRUE(reg.escalated());
  EXPECT_TRUE(modes.in("DEGRADED"));
}

// --- Closed-loop recovery -----------------------------------------------------

TEST(ArrivalMonitor, QuarantineDropsStayUnderObservation) {
  // A quarantined component's suppressed writes surface as
  // "rte.quarantine_drop" with the same subject; the arrival monitor keeps
  // judging them so healing can be certified while the sanction holds.
  sim::Trace trace;
  rv::MonitorRegistry reg(trace);
  auto& m = reg.add_arrival({.contract = "C",
                             .subject = "s",
                             .period = sim::milliseconds(5)});
  trace.emit(0, "rte.write", "s");
  trace.emit(sim::milliseconds(5), "rte.write", "s");
  // Quarantine starts: drops continue the interval chain seamlessly.
  trace.emit(sim::milliseconds(13), "rte.quarantine_drop", "s");  // 8 ms: late
  trace.emit(sim::milliseconds(18), "rte.quarantine_drop", "s");  // 5 ms: ok
  EXPECT_EQ(m.arrivals(), 4u);
  EXPECT_EQ(reg.health().total(), 1u);
  EXPECT_EQ(reg.health().violations()[0].when, sim::milliseconds(13));

  // Opting out restores the old single-category behavior.
  rv::MonitorRegistry blind(trace);
  auto& b = blind.add_arrival({.contract = "C",
                               .subject = "s2",
                               .period = sim::milliseconds(5),
                               .observe_quarantined = false});
  trace.emit(0, "rte.write", "s2");
  trace.emit(sim::milliseconds(13), "rte.quarantine_drop", "s2");
  EXPECT_EQ(b.arrivals(), 1u);
  EXPECT_TRUE(blind.health().healthy());
}

TEST(MonitorRegistry, AgedOutDtcReleasesQuarantineAndRecoversMode) {
  // The full §2 loop at registry granularity: violate -> DTC + DEGRADED +
  // quarantine -> conforming windows heal the event -> aging erases the
  // DTC -> release hook fires, monitors resync, mode returns, escalation
  // re-arms — and a fresh fault degrades again, with no manual release().
  sim::Kernel kernel;
  sim::Trace trace;
  bsw::Dem dem(kernel, trace);
  bsw::ModeMachine modes(kernel, trace, "vehicle", "RUN");
  modes.add_mode("DEGRADED");
  modes.add_transition("RUN", "DEGRADED");
  modes.add_transition("DEGRADED", "RUN");
  rv::MonitorRegistry reg(trace);
  auto& monitor = reg.add_arrival({.contract = "C",
                                   .subject = "pedal.pedal.stamp",
                                   .period = sim::milliseconds(5)});
  reg.report_to(dem, /*debounce_threshold=*/2, /*aging_cycles=*/2);
  reg.escalate_to(modes, "DEGRADED", /*threshold=*/2);
  std::vector<std::string> quarantined;
  std::vector<std::string> released;
  reg.quarantine_with([&](const std::string& instance, const rv::Violation&) {
    quarantined.push_back(instance);
  });
  reg.release_with(
      [&](const std::string& instance) { released.push_back(instance); });

  // Fault: two late intervals latch the DTC (debounce 2) and escalate
  // (threshold 2).
  trace.emit(0, "rte.write", "pedal.pedal.stamp");
  trace.emit(sim::milliseconds(8), "rte.write", "pedal.pedal.stamp");
  trace.emit(sim::milliseconds(16), "rte.write", "pedal.pedal.stamp");
  ASSERT_TRUE(dem.dtc("rv.C").has_value());
  ASSERT_TRUE(reg.escalated());
  EXPECT_TRUE(modes.in("DEGRADED"));
  ASSERT_EQ(quarantined, (std::vector<std::string>{"pedal"}));

  // Heartbeats over conforming traffic: the first flush still sees the
  // dirty window (failed), the next two report passed and heal the event,
  // then two fault-free operation cycles age the DTC out.
  sim::Time t = sim::milliseconds(16);
  for (int beat = 0; beat < 6 && reg.escalated(); ++beat) {
    for (int i = 0; i < 4; ++i) {
      t += sim::milliseconds(5);
      trace.emit(t, "rte.quarantine_drop", "pedal.pedal.stamp");
    }
    reg.flush();
    dem.operation_cycle_end();
  }
  EXPECT_FALSE(dem.dtc("rv.C").has_value());  // aged out
  ASSERT_EQ(released, (std::vector<std::string>{"pedal"}));
  EXPECT_FALSE(reg.escalated());  // re-armed
  EXPECT_TRUE(modes.in("RUN"));   // back to the pre-escalation mode
  EXPECT_EQ(reg.recoveries(), 1u);

  // Resync: the 5 s gap to the next write is not judged as an interval.
  const std::size_t before = reg.health().total();
  trace.emit(sim::seconds(5), "rte.write", "pedal.pedal.stamp");
  EXPECT_EQ(reg.health().total(), before);
  (void)monitor;

  // Re-injected fault: the re-armed loop degrades again.
  trace.emit(sim::seconds(5) + sim::milliseconds(8), "rte.write",
             "pedal.pedal.stamp");
  trace.emit(sim::seconds(5) + sim::milliseconds(16), "rte.write",
             "pedal.pedal.stamp");
  EXPECT_TRUE(reg.escalated());
  EXPECT_TRUE(modes.in("DEGRADED"));
  ASSERT_EQ(quarantined, (std::vector<std::string>{"pedal", "pedal"}));
  EXPECT_TRUE(dem.dtc("rv.C").has_value());
}

TEST(MonitorRegistry, ExplicitRecoveryModeWins) {
  sim::Kernel kernel;
  sim::Trace trace;
  bsw::Dem dem(kernel, trace);
  bsw::ModeMachine modes(kernel, trace, "vehicle", "RUN");
  modes.add_mode("DEGRADED");
  modes.add_mode("LIMP_HOME");
  modes.add_transition("RUN", "DEGRADED");
  modes.add_transition("DEGRADED", "LIMP_HOME");
  rv::MonitorRegistry reg(trace);
  reg.add_arrival({.contract = "C", .subject = "s",
                   .period = sim::milliseconds(5)});
  reg.report_to(dem, /*debounce_threshold=*/1, /*aging_cycles=*/1);
  reg.escalate_to(modes, "DEGRADED", /*threshold=*/1);
  reg.recover_to("LIMP_HOME");

  trace.emit(0, "rte.write", "s");
  trace.emit(sim::milliseconds(9), "rte.write", "s");
  ASSERT_TRUE(modes.in("DEGRADED"));
  // Heal and age out over conforming windows.
  sim::Time t = sim::milliseconds(9);
  for (int beat = 0; beat < 4 && reg.escalated(); ++beat) {
    for (int i = 0; i < 3; ++i) {
      t += sim::milliseconds(5);
      trace.emit(t, "rte.write", "s");
    }
    reg.flush();
    dem.operation_cycle_end();
  }
  EXPECT_FALSE(reg.escalated());
  EXPECT_TRUE(modes.in("LIMP_HOME"));  // declared target, not the snapshot
}

// --- Dispatch index ((category_id, subject_id) routing) ----------------------

/// Records every observe() call so tests can assert exactly which records
/// the dispatch index delivered, and with which interned IDs.
class ProbeMonitor final : public rv::Monitor {
 public:
  explicit ProbeMonitor(std::vector<Subscription> subs)
      : rv::Monitor("C_Probe"), subs_(std::move(subs)) {}
  [[nodiscard]] std::vector<Subscription> subscriptions() const override {
    return subs_;
  }
  void prepare(sim::Trace& trace) override { trace_ = &trace; }
  void observe(const sim::TraceEvent& rec) override {
    seen.push_back(std::string(trace_->category_name(rec.category_id)) + "/" +
                   std::string(trace_->subject_name(rec.subject_id)));
    ids_consistent = ids_consistent && rec.category_id != sim::kNoTraceId &&
                     rec.subject_id != sim::kNoTraceId;
  }

  std::vector<std::string> seen;
  bool ids_consistent = true;

 private:
  const sim::Trace* trace_ = nullptr;
  std::vector<Subscription> subs_;
};

TEST(MonitorRegistry, SubjectIndexedDispatchHitsOnlyOwnSubject) {
  sim::Trace trace;
  rv::MonitorRegistry reg(trace);
  auto a = std::make_unique<ProbeMonitor>(
      std::vector<rv::Monitor::Subscription>{{"rte.write", "a"}});
  auto b = std::make_unique<ProbeMonitor>(
      std::vector<rv::Monitor::Subscription>{{"rte.write", "b"}});
  ProbeMonitor* pa = a.get();
  ProbeMonitor* pb = b.get();
  reg.add(std::move(a));
  reg.add(std::move(b));

  trace.emit(0, "rte.write", "a");
  trace.emit(1, "rte.write", "b");
  trace.emit(2, "rte.write", "unwatched");
  trace.emit(3, "rte.write", "a");

  EXPECT_EQ(pa->seen, (std::vector<std::string>{"rte.write/a", "rte.write/a"}));
  EXPECT_EQ(pb->seen, (std::vector<std::string>{"rte.write/b"}));
  EXPECT_TRUE(pa->ids_consistent);
  // Routed keeps pre-interning category semantics (any record of a watched
  // category); delivered counts only records that reached a monitor.
  EXPECT_EQ(reg.records_routed(), 4u);
  EXPECT_EQ(reg.records_delivered(), 3u);
}

TEST(MonitorRegistry, WildcardSubscriptionSeesEverySubject) {
  sim::Trace trace;
  rv::MonitorRegistry reg(trace);
  auto wild = std::make_unique<ProbeMonitor>(
      std::vector<rv::Monitor::Subscription>{{"task.start", ""}});
  ProbeMonitor* pw = wild.get();
  reg.add(std::move(wild));

  // Subjects never seen before attach() still reach the wildcard bucket.
  trace.emit(0, "task.start", "t1");
  trace.emit(1, "task.start", "t2");
  trace.emit(2, "task.complete", "t1");  // other category: not routed
  EXPECT_EQ(pw->seen,
            (std::vector<std::string>{"task.start/t1", "task.start/t2"}));
  EXPECT_EQ(reg.records_routed(), 2u);
  EXPECT_EQ(reg.records_delivered(), 2u);
}

TEST(MonitorRegistry, WildcardPlusSubjectSubscriberDeliversOnce) {
  sim::Trace trace;
  rv::MonitorRegistry reg(trace);
  auto probe = std::make_unique<ProbeMonitor>(
      std::vector<rv::Monitor::Subscription>{{"rte.write", "s"},
                                             {"rte.write", ""}});
  ProbeMonitor* p = probe.get();
  reg.add(std::move(probe));

  trace.emit(0, "rte.write", "s");
  ASSERT_EQ(p->seen.size(), 1u);  // wildcard subsumes the subject entry
  trace.emit(1, "rte.write", "other");
  EXPECT_EQ(p->seen.size(), 2u);
}

TEST(MonitorRegistry, RoutedAgreesWithTraceCategoryCount) {
  // Regression: records_routed() must equal the trace's own count of the
  // watched category — the exact pre-interning contract.
  sim::Trace trace;
  rv::MonitorRegistry reg(trace);
  reg.add(std::make_unique<ProbeMonitor>(
      std::vector<rv::Monitor::Subscription>{{"rte.write", "x"}}));
  for (int i = 0; i < 7; ++i) {
    trace.emit(i, "rte.write", i % 2 == 0 ? "x" : "y");
    trace.emit(i, "task.start", "t");
  }
  EXPECT_EQ(reg.records_routed(), trace.count("rte.write"));
  EXPECT_EQ(reg.records_routed(), 7u);
  EXPECT_EQ(reg.records_delivered(), 4u);
}

TEST(ContractDtcCode, StableAndDistinct) {
  const auto a = rv::contract_dtc_code("C_Pedal");
  EXPECT_EQ(a, rv::contract_dtc_code("C_Pedal"));
  EXPECT_LE(a, 0xFFFFFFu);
  EXPECT_NE(a, rv::contract_dtc_code("C_Brake"));
}

// --- vfb::System auto-population ---------------------------------------------

namespace bbw {

/// Brake-by-wire-like single-ECU model: pedal sensor (timing runnable) ->
/// brake controller (data-received). `sensor_period` is the *implemented*
/// sampling period; the bound contract always promises 5 ms. A non-null
/// `sample_behavior` replaces the sensor runnable's default body (used to
/// inject runtime faults the static validator cannot see).
vfb::Composition make_model(
    sim::Duration sensor_period,
    std::function<void(vfb::RunnableContext&)> sample_behavior = nullptr) {
  vfb::Composition model;

  vfb::PortInterface ipedal;
  ipedal.name = "IPedal";
  ipedal.elements.push_back(vfb::DataElement{"stamp", 64, 0, false});
  model.add_interface(ipedal);

  vfb::Runnable sample;
  sample.name = "sample";
  sample.trigger = vfb::RunnableTrigger::timing(sensor_period);
  sample.execution_time = [] { return sim::microseconds(100); };
  sample.accesses.push_back(
      {"pedal", "stamp", vfb::DataAccessKind::kExplicitWrite});
  sample.behavior = sample_behavior != nullptr
                        ? std::move(sample_behavior)
                        : [](vfb::RunnableContext& ctx) {
                            ctx.write("pedal", "stamp",
                                      static_cast<std::uint64_t>(ctx.now()));
                          };
  model.add_type({"PedalSensor",
                  {vfb::Port{"pedal", "IPedal", vfb::PortDirection::kProvided}},
                  {sample}});

  vfb::Runnable control;
  control.name = "control";
  control.trigger = vfb::RunnableTrigger::data_received("pedal", "stamp");
  control.execution_time = [] { return sim::microseconds(300); };
  control.accesses.push_back(
      {"pedal", "stamp", vfb::DataAccessKind::kExplicitRead});
  control.behavior = [](vfb::RunnableContext& ctx) {
    (void)ctx.read("pedal", "stamp");
  };
  model.add_type(
      {"BrakeController",
       {vfb::Port{"pedal", "IPedal", vfb::PortDirection::kRequired}},
       {control}});

  model.add_instance({"pedal", "PedalSensor"});
  model.add_instance({"brake", "BrakeController"});
  model.add_connector({"pedal", "pedal", "brake", "pedal"});

  // The rich-component contract: pedal promises a fresh sample every 5 ms at
  // most 2 ms old; brake assumes its input is at most 2 ms old. The pair
  // passes the static V7 compatibility check (guarantee implies assumption) —
  // only the *implementation* may drift from the promise, which is exactly
  // what the online monitors catch.
  contracts::Contract pedal_contract;
  pedal_contract.name = "C_Pedal";
  pedal_contract.guarantees.push_back(
      {.flow = "pedal.stamp",
       .timing = {.period = sim::milliseconds(5),
                  .latency = sim::milliseconds(2)}});
  model.bind_contract("pedal", pedal_contract);

  contracts::Contract brake_contract;
  brake_contract.name = "C_Brake";
  brake_contract.assumptions.push_back(
      {.flow = "pedal.stamp", .timing = {.latency = sim::milliseconds(2)}});
  model.bind_contract("brake", brake_contract);

  return model;
}

vfb::DeploymentPlan make_plan() {
  vfb::DeploymentPlan plan;
  plan.instances["pedal"] = {.ecu = "ecu"};
  plan.instances["brake"] = {.ecu = "ecu"};
  return plan;
}

/// Like make_model(5 ms), but the sensor runnable skips every other write
/// while *fault is set — the implemented rate halves to one update per
/// 10 ms, violating the 5 ms guarantee, and returns to nominal the moment
/// the flag clears. Drives the closed-loop recovery scenarios.
vfb::Composition make_faultable_model(std::shared_ptr<bool> fault) {
  return make_model(
      sim::milliseconds(5),
      [fault, n = std::make_shared<int>(0)](vfb::RunnableContext& ctx) {
        if (*fault && (++*n % 2 == 0)) return;
        ctx.write("pedal", "stamp", static_cast<std::uint64_t>(ctx.now()));
      });
}

}  // namespace bbw

TEST(SystemRv, CleanRunProducesZeroViolations) {
  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  const vfb::Composition model = bbw::make_model(sim::milliseconds(5));
  vfb::System sys(kernel, trace, model, bbw::make_plan());

  ASSERT_NE(sys.monitors(), nullptr);
  // 2 deadline (pedal periodic task + brake event task), 1 arrival from
  // C_Pedal's guarantee, 1 latency from C_Brake's assumption.
  EXPECT_EQ(sys.monitors()->monitor_count(), 4u);
  sys.run_for(sim::seconds(1));
  EXPECT_TRUE(sys.monitors()->health().healthy());
  EXPECT_GT(sys.monitors()->records_routed(), 0u);
}

TEST(SystemRv, LateSensorMaturesDtcSwitchesModeAndQuarantines) {
  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  // Implemented period 7 ms vs contracted 5 ms: statically invisible (the
  // validator compares contracts to contracts), caught online.
  const vfb::Composition model = bbw::make_model(sim::milliseconds(7));
  vfb::System sys(kernel, trace, model, bbw::make_plan());

  bsw::Dem dem(kernel, trace);
  bsw::ModeMachine modes(kernel, trace, "vehicle", "RUN");
  modes.add_mode("DEGRADED");
  modes.add_transition("RUN", "DEGRADED");
  sys.monitors()->report_to(dem, /*debounce_threshold=*/3);
  sys.monitors()->escalate_to(modes, "DEGRADED", /*threshold=*/3);

  sys.run_for(sim::seconds(1));

  // The violation names the contract and the broken bound.
  ASSERT_FALSE(sys.monitors()->health().healthy());
  const rv::Violation& v = sys.monitors()->health().violations().front();
  EXPECT_EQ(v.contract, "C_Pedal");
  EXPECT_EQ(v.kind, "period");
  EXPECT_EQ(v.bound, sim::milliseconds(5));
  EXPECT_EQ(v.observed, sim::milliseconds(7));
  EXPECT_EQ(v.subject, "pedal.pedal.stamp");

  // DEM matured a DTC for the contract.
  ASSERT_TRUE(dem.dtc("rv.C_Pedal").has_value());
  EXPECT_EQ(dem.dtc("rv.C_Pedal")->code, rv::contract_dtc_code("C_Pedal"));

  // Escalation: degraded mode + the offending SWC silenced at its RTE.
  EXPECT_TRUE(modes.in("DEGRADED"));
  EXPECT_TRUE(sys.rte("ecu").is_quarantined("pedal"));
  EXPECT_GT(sys.rte("ecu").quarantined_drops(), 0u);
  EXPECT_GT(trace.count("rte.quarantine_drop", "pedal.pedal.stamp"), 0u);
}

TEST(SystemRv, PlanFlagDisablesTheLayer) {
  sim::Kernel kernel;
  sim::Trace trace;
  const vfb::Composition model = bbw::make_model(sim::milliseconds(5));
  vfb::DeploymentPlan plan = bbw::make_plan();
  plan.runtime_verification = false;
  vfb::System sys(kernel, trace, model, plan);
  EXPECT_EQ(sys.monitors(), nullptr);
}

TEST(SystemRv, ClosedLoopRecoveryEndToEnd) {
  // The full §2 error-handling loop on a generated system, with nothing but
  // periodic heartbeats (flush + operation cycle) from the integrator:
  // injected late-pedal fault -> rate budget exceeded -> DTC matures ->
  // DEGRADED + quarantine -> fault removed -> conforming windows heal the
  // event -> DTC ages out -> quarantine released + mode back to RUN ->
  // re-injected fault degrades again. No manual release() anywhere.
  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  auto fault = std::make_shared<bool>(false);
  const vfb::Composition model = bbw::make_faultable_model(fault);
  vfb::DeploymentPlan plan = bbw::make_plan();
  plan.recovery_mode = "RUN";
  vfb::System sys(kernel, trace, model, plan);

  bsw::Dem dem(kernel, trace);
  bsw::ModeMachine modes(kernel, trace, "vehicle", "RUN");
  modes.add_mode("DEGRADED");
  modes.add_transition("RUN", "DEGRADED");
  modes.add_transition("DEGRADED", "RUN");
  sys.monitors()->report_to(dem, /*debounce_threshold=*/3,
                            /*aging_cycles=*/3);
  sys.monitors()->escalate_to(modes, "DEGRADED", /*threshold=*/3);

  const auto heartbeat = [&] {
    sys.run_for(sim::milliseconds(100));
    sys.monitors()->flush();
    dem.operation_cycle_end();
  };

  // Phase 1: nominal operation.
  for (int i = 0; i < 5; ++i) heartbeat();
  EXPECT_TRUE(sys.monitors()->health().healthy());
  EXPECT_TRUE(modes.in("RUN"));

  // Phase 2: fault injected — the sensor halves its update rate.
  *fault = true;
  for (int i = 0; i < 3; ++i) heartbeat();
  EXPECT_TRUE(sys.monitors()->escalated());
  EXPECT_TRUE(modes.in("DEGRADED"));
  EXPECT_TRUE(sys.rte("ecu").is_quarantined("pedal"));
  ASSERT_TRUE(dem.dtc("rv.C_Pedal").has_value());

  // Phase 3: fault removed — the quarantined sensor's suppressed writes
  // prove conformance, the DTC heals and ages out, and the registry
  // releases the quarantine and recovers the mode on its own.
  *fault = false;
  for (int i = 0; i < 12 && sys.monitors()->escalated(); ++i) heartbeat();
  EXPECT_FALSE(sys.monitors()->escalated());
  EXPECT_FALSE(sys.rte("ecu").is_quarantined("pedal"));
  EXPECT_TRUE(modes.in("RUN"));
  EXPECT_FALSE(dem.dtc("rv.C_Pedal").has_value());
  EXPECT_EQ(sys.monitors()->recoveries(), 1u);

  // Phase 4: a re-injected fault degrades again — the loop re-armed.
  *fault = true;
  for (int i = 0; i < 3; ++i) heartbeat();
  EXPECT_TRUE(sys.monitors()->escalated());
  EXPECT_TRUE(modes.in("DEGRADED"));
  EXPECT_TRUE(sys.rte("ecu").is_quarantined("pedal"));

  // ...and heals again once it clears.
  *fault = false;
  for (int i = 0; i < 12 && sys.monitors()->escalated(); ++i) heartbeat();
  EXPECT_EQ(sys.monitors()->recoveries(), 2u);
  EXPECT_TRUE(modes.in("RUN"));
}

// --- Rte quarantine -----------------------------------------------------------

TEST(RteQuarantine, ReleaseRestoresDelivery) {
  sim::Kernel kernel;
  sim::Trace trace;
  const vfb::Composition model = bbw::make_model(sim::milliseconds(5));
  vfb::System sys(kernel, trace, model, bbw::make_plan());
  sys.run_for(sim::milliseconds(20));
  const auto writes_before = trace.count("rte.write", "pedal.pedal.stamp");
  EXPECT_GT(writes_before, 0u);

  sys.quarantine("pedal");
  sys.run_for(sim::milliseconds(20));
  EXPECT_EQ(trace.count("rte.write", "pedal.pedal.stamp"), writes_before);
  EXPECT_GT(sys.rte("ecu").quarantined_drops(), 0u);

  sys.rte("ecu").release("pedal");
  EXPECT_FALSE(sys.rte("ecu").is_quarantined("pedal"));
  sys.run_for(sim::milliseconds(20));
  EXPECT_GT(trace.count("rte.write", "pedal.pedal.stamp"), writes_before);
}

// --- Trace exporters ----------------------------------------------------------

/// Minimal JSON parser (objects, arrays, strings with escapes, numbers,
/// true/false/null) used to schema-check the Chrome trace export.
class MiniJson {
 public:
  explicit MiniJson(const std::string& text) : s_(text) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(TraceExport, ChromeTraceIsValidJsonWithExpectedEvents) {
  sim::Kernel kernel;
  sim::Trace trace;
  const vfb::Composition model = bbw::make_model(sim::milliseconds(5));
  vfb::System sys(kernel, trace, model, bbw::make_plan());
  sys.run_for(sim::milliseconds(50));

  const std::string json = rv::to_chrome_trace(trace.records());
  EXPECT_TRUE(MiniJson(json).parse()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Task completions become complete events with a duration.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  // Everything else becomes instants; subjects get thread_name metadata.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("pedal.pedal.stamp"), std::string::npos);
}

TEST(TraceExport, ChromeTraceEscapesDetails) {
  std::vector<sim::TraceRecord> records;
  records.push_back({5, "cat", "sub\"ject", 1, "line\nbreak\t\"quoted\""});
  const std::string json = rv::to_chrome_trace(records);
  EXPECT_TRUE(MiniJson(json).parse()) << json;
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

TEST(TraceExport, CsvHistogramsAggregatePerSubject) {
  std::vector<sim::TraceRecord> records;
  records.push_back({0, "task.complete", "t1", 10, ""});
  records.push_back({1, "task.complete", "t1", 30, ""});
  records.push_back({2, "task.complete", "t1", 20, ""});
  records.push_back({3, "rte.write", "k", 5, ""});
  const std::string csv = rv::to_csv_histograms(records);
  EXPECT_NE(csv.find("category,subject,count,min,mean,max,p50,p99"),
            std::string::npos);
  EXPECT_NE(csv.find("task.complete,t1,3,10,20,30,20,30"), std::string::npos);
  EXPECT_NE(csv.find("rte.write,k,1,5,5,5,5,5"), std::string::npos);
}

}  // namespace
