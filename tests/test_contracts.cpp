// Unit tests: rich-component contracts — satisfaction, dominance, network
// compatibility, vertical assumptions, timed-automata contracts.
#include <gtest/gtest.h>

#include "contracts/contract.hpp"
#include "contracts/network.hpp"
#include "contracts/timed_automaton.hpp"
#include "sim/time.hpp"

namespace {

using namespace orte::contracts;
using orte::sim::microseconds;
using orte::sim::milliseconds;

FlowSpec flow(std::string name, Interval range, TimingSpec timing = {},
              double confidence = 1.0) {
  FlowSpec f;
  f.flow = std::move(name);
  f.range = range;
  f.timing = timing;
  f.confidence = confidence;
  return f;
}

// --- satisfies() ----------------------------------------------------------------

TEST(Satisfies, RangeContainment) {
  const auto g = flow("x", {0, 100});
  EXPECT_TRUE(satisfies(g, flow("x", {0, 100})).ok);
  EXPECT_TRUE(satisfies(g, flow("x", {-10, 200})).ok);
  EXPECT_FALSE(satisfies(g, flow("x", {0, 50})).ok);
  EXPECT_FALSE(satisfies(g, flow("x", {10, 200})).ok);
}

TEST(Satisfies, TimingBoundsMustBeMetOrTighter) {
  const TimingSpec offered{milliseconds(10), microseconds(100),
                           milliseconds(5)};
  const auto g = flow("x", {0, 1}, offered);
  EXPECT_TRUE(satisfies(g, flow("x", {0, 1},
                                {milliseconds(10), microseconds(100),
                                 milliseconds(5)}))
                  .ok);
  EXPECT_TRUE(satisfies(g, flow("x", {0, 1},
                                {milliseconds(20), microseconds(500),
                                 milliseconds(9)}))
                  .ok);
  // Faster period demanded than offered:
  EXPECT_FALSE(
      satisfies(g, flow("x", {0, 1}, {milliseconds(5), 0, 0})).ok);
  // Tighter jitter demanded:
  EXPECT_FALSE(
      satisfies(g, flow("x", {0, 1}, {0, microseconds(50), 0})).ok);
  // Tighter latency demanded:
  EXPECT_FALSE(
      satisfies(g, flow("x", {0, 1}, {0, 0, milliseconds(1)})).ok);
}

TEST(Satisfies, UnspecifiedOfferCannotDischargeDemand) {
  const auto g = flow("x", {0, 1});  // no timing guarantees at all
  EXPECT_TRUE(satisfies(g, flow("x", {0, 1})).ok);  // nothing demanded
  EXPECT_FALSE(
      satisfies(g, flow("x", {0, 1}, {milliseconds(10), 0, 0})).ok);
}

TEST(Satisfies, ConfidencePropagatesAsMinimum) {
  const auto g = flow("x", {0, 1}, {}, 0.9);
  const auto a = flow("x", {0, 1}, {}, 0.7);
  EXPECT_DOUBLE_EQ(satisfies(g, a).confidence, 0.7);
}

// --- dominance -------------------------------------------------------------------

Contract controller_contract() {
  Contract c;
  c.name = "controller";
  c.assumptions.push_back(
      flow("speed", {0, 300}, {milliseconds(10), 0, milliseconds(20)}));
  c.guarantees.push_back(
      flow("torque", {0, 100}, {milliseconds(10), 0, milliseconds(5)}));
  return c;
}

TEST(Dominance, Reflexive) {
  const auto c = controller_contract();
  EXPECT_TRUE(dominates(c, c));
}

TEST(Dominance, StrongerGuaranteeDominates) {
  const auto base = controller_contract();
  auto better = base;
  better.guarantees[0].timing.latency = milliseconds(2);  // tighter
  better.guarantees[0].range = {0, 80};                   // narrower output
  EXPECT_TRUE(dominates(better, base));
  EXPECT_FALSE(dominates(base, better));
}

TEST(Dominance, WeakerAssumptionDominates) {
  const auto base = controller_contract();
  auto better = base;
  better.assumptions[0].range = {-100, 400};             // accepts more
  better.assumptions[0].timing.latency = milliseconds(50);  // tolerates older
  EXPECT_TRUE(dominates(better, base));
  EXPECT_FALSE(dominates(base, better));
}

TEST(Dominance, StrongerAssumptionDoesNotDominate) {
  const auto base = controller_contract();
  auto worse = base;
  worse.assumptions[0].range = {0, 100};  // demands narrower input
  EXPECT_FALSE(dominates(worse, base));
}

TEST(Dominance, MissingGuaranteeDoesNotDominate) {
  const auto base = controller_contract();
  Contract empty;
  empty.name = "empty";
  // empty guarantees nothing -> cannot refine base;
  // base assumes something empty does not -> cannot refine empty either.
  EXPECT_FALSE(dominates(empty, base));
  EXPECT_FALSE(dominates(base, empty));
}

TEST(Dominance, Transitive) {
  const auto a = controller_contract();
  auto b = a;
  b.guarantees[0].timing.latency = milliseconds(4);
  auto c = b;
  c.guarantees[0].timing.latency = milliseconds(3);
  EXPECT_TRUE(dominates(b, a));
  EXPECT_TRUE(dominates(c, b));
  EXPECT_TRUE(dominates(c, a));
}

// --- ContractNetwork ---------------------------------------------------------------

ContractNetwork sensor_controller_actuator() {
  ContractNetwork net;
  Contract sensor;
  sensor.name = "sensor";
  sensor.guarantees.push_back(
      flow("speed", {0, 250}, {milliseconds(10), microseconds(500),
                               milliseconds(2)}));
  sensor.vertical = {.cpu_utilization = 0.1, .memory_bytes = 4096,
                     .confidence = 0.95};
  net.add_component(sensor);

  Contract ctrl;
  ctrl.name = "controller";
  ctrl.assumptions.push_back(
      flow("speed", {0, 300}, {milliseconds(10), milliseconds(1),
                               milliseconds(20)}));
  ctrl.guarantees.push_back(
      flow("torque", {0, 100}, {milliseconds(10), 0, milliseconds(5)}));
  ctrl.vertical = {.cpu_utilization = 0.4, .memory_bytes = 65536,
                   .confidence = 0.8};
  net.add_component(ctrl);

  Contract act;
  act.name = "actuator";
  act.assumptions.push_back(
      flow("torque", {0, 150}, {milliseconds(10), 0, milliseconds(8)}));
  act.vertical = {.cpu_utilization = 0.2, .memory_bytes = 8192,
                  .confidence = 0.9};
  net.add_component(act);

  net.connect("sensor", "speed", "controller", "speed");
  net.connect("controller", "torque", "actuator", "torque");
  return net;
}

TEST(Network, CompatibleSystemPasses) {
  const auto net = sensor_controller_actuator();
  const auto r = net.check_compatibility();
  EXPECT_TRUE(r.ok) << (r.violations.empty() ? "" : r.violations[0]);
  EXPECT_DOUBLE_EQ(r.confidence, 1.0);  // flow confidences default to 1
}

TEST(Network, IncompatibleRangeDetected) {
  auto net = sensor_controller_actuator();
  Contract bad;
  bad.name = "bad_sensor";
  bad.guarantees.push_back(flow("speed", {0, 500}));  // exceeds assumption
  net.add_component(bad);
  net.connect("bad_sensor", "speed", "controller", "speed");
  const auto r = net.check_compatibility();
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.violations.empty());
}

TEST(Network, EndToEndLatencyComposition) {
  const auto net = sensor_controller_actuator();
  const auto lat = net.end_to_end_latency({"sensor", "controller", "actuator"});
  // sensor->controller latency 2ms + controller->actuator latency 5ms.
  EXPECT_EQ(lat, milliseconds(7));
}

TEST(Network, LatencyUnboundedWhenUnspecified) {
  ContractNetwork net;
  Contract a;
  a.name = "a";
  a.guarantees.push_back(flow("x", {0, 1}));  // no latency bound
  net.add_component(a);
  Contract b;
  b.name = "b";
  b.assumptions.push_back(flow("x", {0, 1}));
  net.add_component(b);
  net.connect("a", "x", "b", "x");
  EXPECT_EQ(net.end_to_end_latency({"a", "b"}), -1);
}

TEST(Network, VerticalCheckPassesWithinCapacity) {
  const auto net = sensor_controller_actuator();
  const auto r = net.check_vertical(
      {{"sensor", "ecu0"}, {"controller", "ecu0"}, {"actuator", "ecu1"}},
      {{.name = "ecu0", .cpu = 0.8}, {.name = "ecu1", .cpu = 0.5}});
  EXPECT_TRUE(r.ok) << (r.violations.empty() ? "" : r.violations[0]);
  // Aggregated confidence = min over vertical assumptions.
  EXPECT_DOUBLE_EQ(r.confidence, 0.8);
}

TEST(Network, VerticalOverloadDetected) {
  const auto net = sensor_controller_actuator();
  const auto r = net.check_vertical(
      {{"sensor", "ecu0"}, {"controller", "ecu0"}, {"actuator", "ecu0"}},
      {{.name = "ecu0", .cpu = 0.5}});  // 0.7 demanded
  EXPECT_FALSE(r.ok);
}

TEST(Network, UnmappedComponentDetected) {
  const auto net = sensor_controller_actuator();
  const auto r = net.check_vertical({{"sensor", "ecu0"}},
                                    {{.name = "ecu0", .cpu = 1.0}});
  EXPECT_FALSE(r.ok);
  EXPECT_GE(r.violations.size(), 2u);  // controller and actuator unmapped
}

TEST(Network, ComposeDerivesSystemContract) {
  const auto net = sensor_controller_actuator();
  const auto sys = net.compose("brake_system");
  // External inputs: none (sensor has no assumptions) — controller's and
  // actuator's inputs are fed internally.
  EXPECT_TRUE(sys.assumptions.empty());
  // External outputs: none of the guarantees survive unconsumed except...
  // sensor.speed and controller.torque are consumed internally, so the
  // composite exposes no outputs here; vertical sums everything.
  EXPECT_TRUE(sys.guarantees.empty());
  EXPECT_NEAR(sys.vertical.cpu_utilization, 0.7, 1e-9);
  EXPECT_EQ(sys.vertical.memory_bytes, 4096u + 65536u + 8192u);
  EXPECT_DOUBLE_EQ(sys.vertical.confidence, 0.8);
}

TEST(Network, ComposeExposesOpenFlowsWithChainLatency) {
  ContractNetwork net;
  Contract a;
  a.name = "a";
  a.assumptions.push_back(flow("cmd", {0, 10}));
  a.guarantees.push_back(flow("mid", {0, 10}, {0, 0, milliseconds(2)}));
  net.add_component(a);
  Contract b;
  b.name = "b";
  b.assumptions.push_back(flow("mid", {0, 100}));
  b.guarantees.push_back(flow("out", {0, 1}, {0, 0, milliseconds(3)}));
  net.add_component(b);
  net.connect("a", "mid", "b", "mid");
  const auto sys = net.compose("pipeline");
  // Open input: a.cmd; open output: b.out with composed latency 2+3 ms.
  ASSERT_EQ(sys.assumptions.size(), 1u);
  EXPECT_EQ(sys.assumptions[0].flow, "a.cmd");
  ASSERT_EQ(sys.guarantees.size(), 1u);
  EXPECT_EQ(sys.guarantees[0].flow, "b.out");
  EXPECT_EQ(sys.guarantees[0].timing.latency, milliseconds(5));
}

TEST(Network, ComposedContractUsableAsComponent) {
  // Compositionality: the composite contract plugs into a larger network.
  ContractNetwork inner;
  Contract a;
  a.name = "a";
  a.guarantees.push_back(flow("out", {0, 50}, {0, 0, milliseconds(1)}));
  inner.add_component(a);
  auto composite = inner.compose("subsystem");

  ContractNetwork outer;
  outer.add_component(composite);
  Contract sink;
  sink.name = "sink";
  sink.assumptions.push_back(
      flow("in", {0, 100}, {0, 0, milliseconds(5)}));
  outer.add_component(sink);
  outer.connect("subsystem", "a.out", "sink", "in");
  EXPECT_TRUE(outer.check_compatibility().ok);
}

TEST(Network, DuplicateComponentRejected) {
  ContractNetwork net;
  net.add_component(controller_contract());
  EXPECT_THROW(net.add_component(controller_contract()),
               std::invalid_argument);
}

// --- Timed automata ------------------------------------------------------------------

TEST(TimedAutomaton, DeadlineObserverAcceptsTimelyWord) {
  // Observer: request -> (response within 5) else error.
  TimedAutomaton ta;
  const int idle = ta.add_location("idle");
  const int pending = ta.add_location("pending");
  const int err = ta.add_location("err", /*error=*/true);
  const int c = ta.add_clock("c");
  using C = TimedAutomaton::Constraint;
  ta.add_edge(idle, pending, "request", {}, {c});
  ta.add_edge(pending, idle, "response",
              {{c, C::Op::kLe, 5}});
  ta.add_edge(pending, err, "response", {{c, C::Op::kGt, 5}});
  const auto ok = ta.run({{0, "request"}, {3, "response"},
                          {10, "request"}, {5, "response"}});
  EXPECT_TRUE(ok.accepted);
  const auto bad = ta.run({{0, "request"}, {6, "response"}});
  EXPECT_FALSE(bad.accepted);
  EXPECT_EQ(bad.failed_at, 1u);
}

TEST(TimedAutomaton, UnmatchedEventRejects) {
  TimedAutomaton ta;
  const int a = ta.add_location("a");
  const int b = ta.add_location("b");
  ta.add_edge(a, b, "go");
  const auto r = ta.run({{0, "go"}, {0, "go"}});  // no edge from b
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.failed_at, 1u);
}

TEST(TimedAutomaton, ReachabilityRespectsGuards) {
  // err only reachable after waiting > 3 time units.
  TimedAutomaton ta;
  const int start = ta.add_location("start");
  const int err = ta.add_location("err", true);
  const int c = ta.add_clock("c");
  using C = TimedAutomaton::Constraint;
  ta.add_edge(start, err, "fault", {{c, C::Op::kGt, 3}});
  EXPECT_TRUE(ta.reachable(err));
  EXPECT_TRUE(ta.error_reachable());
}

TEST(TimedAutomaton, UnreachableWhenGuardContradicts) {
  TimedAutomaton ta;
  const int start = ta.add_location("start");
  const int mid = ta.add_location("mid");
  const int err = ta.add_location("err", true);
  const int c = ta.add_clock("c");
  using C = TimedAutomaton::Constraint;
  // mid only entered with c <= 2 and c reset; err needs c > 5 but every path
  // into err demands c <= 3 first — the c<=3 edge out of mid dominates.
  ta.add_edge(start, mid, "a", {{c, C::Op::kLe, 2}}, {c});
  ta.add_edge(mid, err, "b",
              {{c, C::Op::kGt, 5}, {c, C::Op::kLe, 3}});  // contradiction
  EXPECT_FALSE(ta.reachable(err));
  EXPECT_FALSE(ta.error_reachable());
}

TEST(TimedAutomaton, LocationLookup) {
  TimedAutomaton ta;
  ta.add_location("first");
  ta.add_location("second");
  EXPECT_EQ(ta.location_id("second"), 1);
  EXPECT_EQ(ta.location_name(0), "first");
  EXPECT_THROW((void)ta.location_id("nope"), std::invalid_argument);
  EXPECT_EQ(ta.locations(), 2u);
}

}  // namespace
