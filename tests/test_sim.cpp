// Unit tests: discrete-event kernel, RNG, statistics, trace.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace {

using namespace orte::sim;

TEST(Kernel, RunsEventsInTimeOrder) {
  Kernel k;
  std::vector<int> order;
  k.schedule_at(300, [&] { order.push_back(3); });
  k.schedule_at(100, [&] { order.push_back(1); });
  k.schedule_at(200, [&] { order.push_back(2); });
  k.run_until(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(k.now(), 1000);
}

TEST(Kernel, SameInstantOrderedByPriorityThenSequence) {
  Kernel k;
  std::vector<int> order;
  k.schedule_at(100, [&] { order.push_back(2); }, EventOrder::kSoftware);
  k.schedule_at(100, [&] { order.push_back(1); }, EventOrder::kHardware);
  k.schedule_at(100, [&] { order.push_back(3); }, EventOrder::kSoftware);
  k.run_until(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Kernel, SchedulingInThePastThrows) {
  Kernel k;
  k.schedule_at(100, [] {});
  k.run_until(500);
  EXPECT_THROW(k.schedule_at(100, [] {}), std::invalid_argument);
}

TEST(Kernel, CancelPreventsExecution) {
  Kernel k;
  int fired = 0;
  auto h = k.schedule_at(100, [&] { ++fired; });
  k.cancel(h);
  k.run_until(1000);
  EXPECT_EQ(fired, 0);
}

TEST(Kernel, PeriodicFiresRepeatedlyAndCancels) {
  Kernel k;
  int fired = 0;
  auto h = k.schedule_periodic(100, 100, [&] { ++fired; });
  k.run_until(550);
  EXPECT_EQ(fired, 5);  // 100..500
  k.cancel(h);
  k.run_until(2000);
  EXPECT_EQ(fired, 5);
}

TEST(Kernel, PeriodicSelfCancelFromPayload) {
  Kernel k;
  int fired = 0;
  EventHandle h = k.schedule_periodic(10, 10, [&] {
    if (++fired == 3) k.cancel(h);
  });
  k.run_until(1000);
  EXPECT_EQ(fired, 3);
}

TEST(Kernel, CancelDuringSameInstantPreventsLaterEvent) {
  Kernel k;
  int fired = 0;
  // Both events share t=100; the hardware-order event cancels the
  // software-order one before it is popped within the same instant.
  EventHandle victim =
      k.schedule_at(100, [&] { ++fired; }, EventOrder::kSoftware);
  k.schedule_at(100, [&] { k.cancel(victim); }, EventOrder::kHardware);
  k.run_until(1000);
  EXPECT_EQ(fired, 0);
}

TEST(Kernel, ReScheduleAfterCancel) {
  Kernel k;
  int first = 0, second = 0;
  auto h = k.schedule_periodic(100, 100, [&] { ++first; });
  k.cancel(h);
  auto h2 = k.schedule_periodic(100, 100, [&] { ++second; });
  k.run_until(550);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 5);
  k.cancel(h2);
  k.run_until(1000);
  EXPECT_EQ(second, 5);
}

TEST(Kernel, CancelIsIdempotentAndIgnoresInvalidHandles) {
  Kernel k;
  int fired = 0;
  auto h = k.schedule_at(100, [&] { ++fired; });
  k.cancel(h);
  k.cancel(h);               // double cancel: no effect, no double count
  k.cancel(EventHandle{});   // invalid handle: no-op
  k.run_until(1000);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(k.counters().cancelled, 1u);
}

TEST(Kernel, CancelChurnStaysLinearAndBounded) {
  // Guards the O(1) cancellation fix: the old implementation kept every
  // cancelled id forever and scanned the list on every pop (O(n^2) run time,
  // unbounded memory). Counters must show every dead event purged.
  Kernel k;
  constexpr int kEvents = 100'000;
  std::uint64_t fired = 0;
  for (int i = 0; i < kEvents; ++i) {
    auto h = k.schedule_at(i + 1, [&] { ++fired; });
    if (i % 2 == 0) k.cancel(h);
  }
  const KernelCounters mid = k.counters();
  EXPECT_EQ(mid.queue_depth, static_cast<std::uint64_t>(kEvents));
  k.run_until(kEvents + 1);
  EXPECT_EQ(fired, static_cast<std::uint64_t>(kEvents / 2));
  EXPECT_EQ(k.events_executed(), fired);
  const KernelCounters after = k.counters();
  EXPECT_EQ(after.pushed, static_cast<std::uint64_t>(kEvents));
  EXPECT_EQ(after.popped, after.pushed);  // every event left the queue
  EXPECT_EQ(after.skipped_dead, static_cast<std::uint64_t>(kEvents / 2));
  EXPECT_EQ(after.cancelled, after.skipped_dead);
  EXPECT_EQ(after.queue_depth, 0u);  // nothing retained after the run
  EXPECT_EQ(after.peak_queue_depth, static_cast<std::uint64_t>(kEvents));
}

TEST(Kernel, PeriodicCancelMidSeriesPurgesPendingOccurrence) {
  Kernel k;
  int fired = 0;
  auto h = k.schedule_periodic(100, 100, [&] { ++fired; });
  k.run_until(250);  // two occurrences fired; the third is pending
  EXPECT_EQ(fired, 2);
  k.cancel(h);
  k.run_until(2000);
  EXPECT_EQ(fired, 2);
  // The dead occurrence was popped and purged, not retained.
  EXPECT_EQ(k.counters().skipped_dead, 1u);
  EXPECT_EQ(k.counters().queue_depth, 0u);
}

TEST(Kernel, TraceCountersEmitsEveryCounter) {
  Kernel k;
  Trace trace;
  k.schedule_at(100, [] {});
  k.run_until(1000);
  k.trace_counters(trace, "k0");
  EXPECT_EQ(trace.count("kernel.pushed", "k0"), 1u);
  EXPECT_EQ(trace.count("kernel.executed", "k0"), 1u);
  EXPECT_EQ(trace.count("kernel.peak_queue_depth", "k0"), 1u);
}

TEST(Kernel, EventsScheduledDuringEventRun) {
  Kernel k;
  int fired = 0;
  k.schedule_at(100, [&] {
    k.schedule_in(50, [&] { ++fired; });
  });
  k.run_until(1000);
  EXPECT_EQ(fired, 1);
}

TEST(Kernel, StopHaltsTheLoop) {
  Kernel k;
  int fired = 0;
  k.schedule_at(100, [&] {
    ++fired;
    k.stop();
  });
  k.schedule_at(200, [&] { ++fired; });
  k.run_until(1000);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(k.now(), 100);
}

TEST(Kernel, HorizonStopsBeforeLaterEvents) {
  Kernel k;
  int fired = 0;
  k.schedule_at(100, [&] { ++fired; });
  k.schedule_at(900, [&] { ++fired; });
  k.run_until(500);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(k.now(), 500);
  k.run_until(1000);
  EXPECT_EQ(fired, 2);
}

TEST(Kernel, DeterministicAcrossRuns) {
  auto run = [] {
    Kernel k;
    Rng rng(42);
    std::vector<Time> fire_times;
    for (int i = 0; i < 100; ++i) {
      k.schedule_at(rng.uniform(0, 10000),
                    [&, i] { fire_times.push_back(k.now()); });
    }
    k.run_until(20000);
    return fire_times;
  };
  EXPECT_EQ(run(), run());
}

TEST(Time, ConversionHelpers) {
  EXPECT_EQ(microseconds(1), 1000);
  EXPECT_EQ(milliseconds(1), 1'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_ms(milliseconds(5)), 5.0);
  EXPECT_DOUBLE_EQ(to_us(microseconds(7)), 7.0);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ForkIsPureAndOrderIndependent) {
  // fork() must be a pure function of (parent state, stream id): it neither
  // advances the parent nor depends on earlier forks.
  Rng a(7), b(7);
  Rng a1 = a.fork(1);
  (void)a.fork(99);          // an interleaved fork must not matter
  Rng a1_again = a.fork(1);  // nor must forking twice
  Rng b1 = b.fork(1);
  for (int i = 0; i < 100; ++i) {
    const auto expected = b1.next_u64();
    EXPECT_EQ(a1.next_u64(), expected);
    EXPECT_EQ(a1_again.next_u64(), expected);
  }
  // ... and the parent stream is untouched by all of the forking above.
  Rng untouched(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), untouched.next_u64());
}

TEST(Rng, ForkStreamsAreDecorrelated) {
  Rng parent(7);
  Rng s0 = parent.fork(0), s1 = parent.fork(1);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (s0.next_u64() == s1.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkDependsOnParentState) {
  Rng a(7), b(8);
  Rng fa = a.fork(4), fb = b.fork(4);
  EXPECT_NE(fa.next_u64(), fb.next_u64());
  // Advancing the parent changes what subsequent forks derive.
  Rng c(7);
  (void)c.next_u64();
  Rng fc = c.fork(4);
  Rng fa2 = Rng(7).fork(4);
  EXPECT_NE(fc.next_u64(), fa2.next_u64());
}

TEST(Rng, UUniFastSumsToTarget) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto u = rng.uunifast(8, 0.7);
    ASSERT_EQ(u.size(), 8u);
    double sum = 0;
    for (double x : u) {
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 0.7, 1e-9);
  }
}

TEST(Stats, BasicMoments) {
  Stats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.spread(), 3.0);
  EXPECT_NEAR(s.stddev(), 1.118, 1e-3);
}

TEST(Stats, Percentiles) {
  Stats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(Stats, PercentileOutsideRangeThrows) {
  Stats s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_THROW((void)s.percentile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)s.percentile(100.1), std::invalid_argument);
  EXPECT_THROW((void)s.percentile(101), std::invalid_argument);
  // The boundaries themselves stay valid.
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 2.0);
}

TEST(Stats, EmptyThrows) {
  Stats s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW((void)s.mean(), std::logic_error);
  EXPECT_THROW((void)s.percentile(50), std::logic_error);
}

TEST(Trace, RetainsAndCounts) {
  Trace t;
  t.emit(10, "cat.a", "x");
  t.emit(20, "cat.a", "y");
  t.emit(30, "cat.b", "x", 7, "detail");
  EXPECT_EQ(t.count("cat.a"), 2u);
  EXPECT_EQ(t.count("cat.b"), 1u);
  EXPECT_EQ(t.count("cat.a", "x"), 1u);
  EXPECT_EQ(t.records().back().value, 7);
  EXPECT_EQ(t.records().back().detail, "detail");
}

TEST(Trace, ListenersSeeEveryEmit) {
  Trace t;
  int seen = 0;
  t.subscribe([&](const TraceRecord& r) {
    if (r.category == "hit") ++seen;
  });
  t.emit(1, "hit", "a");
  t.emit(2, "miss", "b");
  t.emit(3, "hit", "c");
  EXPECT_EQ(seen, 2);
}

TEST(Trace, RetentionCanBeDisabled) {
  Trace t;
  t.enable_retention(false);
  t.emit(1, "x", "y");
  EXPECT_TRUE(t.records().empty());
}

TEST(Trace, CountsWorkWithRetentionDisabled) {
  Trace t;
  t.enable_retention(false);
  t.emit(1, "cat", "a");
  t.emit(2, "cat", "a");
  t.emit(3, "cat", "b");
  EXPECT_TRUE(t.records().empty());
  EXPECT_EQ(t.count("cat"), 3u);
  EXPECT_EQ(t.count("cat", "a"), 2u);
  EXPECT_EQ(t.count("cat", "b"), 1u);
}

TEST(Trace, ListenersRunInSubscriptionOrder) {
  Trace t;
  std::vector<int> order;
  t.subscribe([&](const TraceRecord&) { order.push_back(1); });
  t.subscribe([&](const TraceRecord&) { order.push_back(2); });
  t.subscribe([&](const TraceRecord&) { order.push_back(3); });
  t.emit(1, "cat", "s");
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Trace, RetentionToggleMidRunKeepsCounting) {
  Trace t;
  t.emit(1, "cat", "s");
  t.enable_retention(false);
  t.emit(2, "cat", "s");
  t.emit(3, "cat", "s");
  t.enable_retention(true);
  t.emit(4, "cat", "s");
  // Records cover only the retained windows; counts cover everything.
  EXPECT_EQ(t.records().size(), 2u);
  EXPECT_EQ(t.records().front().when, 1);
  EXPECT_EQ(t.records().back().when, 4);
  EXPECT_EQ(t.count("cat", "s"), 4u);
}

TEST(Trace, UnobservedEmitsStillCount) {
  // No listeners, retention off: emit() takes the fast path that skips
  // building the record, but the count indexes must still advance.
  Trace t;
  t.enable_retention(false);
  for (int i = 0; i < 100; ++i) t.emit(i, "fast", "path");
  EXPECT_EQ(t.count("fast"), 100u);
  EXPECT_EQ(t.count("fast", "path"), 100u);
  EXPECT_TRUE(t.records().empty());
}

TEST(Trace, SubjectCountsEnumeratesOneCategory) {
  Trace t;
  t.emit(1, "cat.a", "y");
  t.emit(2, "cat.a", "x");
  t.emit(3, "cat.a", "y");
  t.emit(4, "cat.b", "z");
  const auto counts = t.subject_counts("cat.a");
  ASSERT_EQ(counts.size(), 2u);  // cat.b's subject excluded
  EXPECT_EQ(counts[0].first, "x");
  EXPECT_EQ(counts[0].second, 1u);
  EXPECT_EQ(counts[1].first, "y");
  EXPECT_EQ(counts[1].second, 2u);
  EXPECT_TRUE(t.subject_counts("cat.none").empty());
}

TEST(Trace, CountsSurviveMove) {
  Trace t;
  t.emit(1, "cat", "s");
  t.emit(2, "cat", "s");
  Trace moved = std::move(t);
  EXPECT_EQ(moved.count("cat"), 2u);
  EXPECT_EQ(moved.count("cat", "s"), 2u);
  EXPECT_EQ(moved.records().size(), 2u);
  moved.emit(3, "cat", "s");
  EXPECT_EQ(moved.count("cat"), 3u);
}

TEST(Trace, ClearResetsRecordsAndCounts) {
  Trace t;
  t.emit(1, "cat", "s");
  t.clear();
  EXPECT_TRUE(t.records().empty());
  EXPECT_EQ(t.count("cat"), 0u);
  EXPECT_EQ(t.count("cat", "s"), 0u);
  EXPECT_TRUE(t.subject_counts("cat").empty());
  t.emit(2, "cat", "s");
  EXPECT_EQ(t.count("cat"), 1u);
}

// --- Interning ----------------------------------------------------------------

TEST(Trace, RecordsCarryInternedIds) {
  Trace t;
  t.emit(1, "cat.a", "x");
  t.emit(2, "cat.b", "y");
  ASSERT_EQ(t.records().size(), 2u);
  const TraceRecord& a = t.records()[0];
  const TraceRecord& b = t.records()[1];
  EXPECT_EQ(a.category_id, t.category_id("cat.a"));
  EXPECT_EQ(a.subject_id, t.subject_id("x"));
  EXPECT_EQ(b.category_id, t.category_id("cat.b"));
  EXPECT_EQ(b.subject_id, t.subject_id("y"));
  EXPECT_NE(a.category_id, b.category_id);
  EXPECT_NE(a.subject_id, b.subject_id);
  // Reverse lookup round-trips.
  EXPECT_EQ(t.category_name(a.category_id), "cat.a");
  EXPECT_EQ(t.subject_name(b.subject_id), "y");
  // ID-keyed counting agrees with string-keyed counting.
  EXPECT_EQ(t.count(a.category_id), 1u);
  EXPECT_EQ(t.count(a.category_id, a.subject_id), 1u);
}

TEST(Trace, UnseenNamesHaveNoId) {
  Trace t;
  t.emit(1, "cat", "s");
  EXPECT_EQ(t.category_id("other"), kNoTraceId);
  EXPECT_EQ(t.subject_id("other"), kNoTraceId);
  EXPECT_EQ(t.count(kNoTraceId), 0u);
  EXPECT_EQ(t.count(kNoTraceId, kNoTraceId), 0u);
  EXPECT_TRUE(t.category_name(kNoTraceId).empty());
}

TEST(Trace, PreInterningAssignsTheSameIdEmitWillUse) {
  Trace t;
  const TraceId cat = t.intern_category("rte.write");
  const TraceId subj = t.intern_subject("pedal.out.v");
  t.emit(5, "rte.write", "pedal.out.v");
  ASSERT_EQ(t.records().size(), 1u);
  EXPECT_EQ(t.records()[0].category_id, cat);
  EXPECT_EQ(t.records()[0].subject_id, subj);
  EXPECT_EQ(t.count(cat, subj), 1u);
}

TEST(Trace, InterningStableAcrossClear) {
  Trace t;
  t.emit(1, "cat.a", "x");
  const TraceId cat = t.category_id("cat.a");
  const TraceId subj = t.subject_id("x");
  t.clear();
  // Counts reset; IDs survive, and re-emitting reuses them.
  EXPECT_EQ(t.category_id("cat.a"), cat);
  EXPECT_EQ(t.subject_id("x"), subj);
  EXPECT_EQ(t.count(cat, subj), 0u);
  t.emit(2, "cat.a", "x");
  EXPECT_EQ(t.records()[0].category_id, cat);
  EXPECT_EQ(t.records()[0].subject_id, subj);
  EXPECT_EQ(t.count(cat, subj), 1u);
}

TEST(Trace, SubjectCountsByIdMatchesStringIndex) {
  Trace t;
  t.emit(1, "cat", "b");
  t.emit(2, "cat", "a");
  t.emit(3, "cat", "b");
  const auto by_id = t.subject_counts_by_id(t.category_id("cat"));
  ASSERT_EQ(by_id.size(), 2u);
  std::size_t total = 0;
  for (const auto& [subject_id, count] : by_id) {
    EXPECT_EQ(count, t.count("cat", t.subject_name(subject_id)));
    total += count;
  }
  EXPECT_EQ(total, 3u);
  EXPECT_TRUE(t.subject_counts_by_id(kNoTraceId).empty());
}

// Guard against silent index drift: the ID-indexed counts must match a
// string-keyed recount of the retained records whenever retention covers
// the whole window.
TEST(Trace, CountsMatchRecordsWhileRetentionIsComplete) {
  Trace t;
  t.emit(1, "cat.a", "x");
  t.emit(2, "cat.a", "y");
  t.emit(3, "cat.b", "x", 7, "detail");
  EXPECT_TRUE(t.records_complete());
  EXPECT_TRUE(t.counts_match_records());
  // An unretained emit legitimately decouples counts from records.
  t.enable_retention(false);
  t.emit(4, "cat.a", "x");
  EXPECT_FALSE(t.records_complete());
  // clear() restores the invariant.
  t.enable_retention(true);
  t.clear();
  EXPECT_TRUE(t.records_complete());
  t.emit(5, "cat.a", "x");
  EXPECT_TRUE(t.counts_match_records());
}

// --- Golden event order across storage layers --------------------------------

// A deterministic pseudo-random mix of one-shots, periodics, same-instant
// ties across every order class, chained scheduling, and cancels (up-front,
// in-flight, self-, cross-, stale-). The FNV-1a hash below was produced by
// the flat binary-heap kernel that predates the slot pool and timer wheel;
// the current kernel must reproduce the exact firing sequence, bit for bit.
// If an intentional ordering change ever lands, regenerate the constant with
// the PREVIOUS kernel and document the break.
std::uint64_t golden_workload_hash(std::size_t* fired_count) {
  Kernel k;
  Rng rng(0xC0FFEE);
  std::vector<std::pair<Time, int>> fired;
  std::vector<EventHandle> handles;
  const EventOrder orders[5] = {EventOrder::kHardware, EventOrder::kKernel,
                                EventOrder::kDefault, EventOrder::kSoftware,
                                EventOrder::kObserver};
  for (int i = 0; i < 400; ++i) {
    const Time when = rng.uniform(0, 200000);
    const EventOrder ord = orders[rng.uniform(0, 4)];
    const int tag = i;
    handles.push_back(k.schedule_at(
        when,
        [&k, &fired, &handles, tag] {
          fired.emplace_back(k.now(), tag);
          if (tag % 7 == 0) {
            k.schedule_in(tag % 3 == 0 ? 0 : 37, [&k, &fired, tag] {
              fired.emplace_back(k.now(), 1000 + tag);
            });
          }
          if (tag % 11 == 0) {
            k.cancel(handles[static_cast<std::size_t>(tag * 13) %
                             handles.size()]);
          }
        },
        ord));
  }
  std::vector<int> pfires(40, 0);
  std::vector<EventHandle> ph(40);
  for (int p = 0; p < 40; ++p) {
    const Time first = rng.uniform(0, 3000);
    const Duration period = rng.uniform(1, 997);
    const EventOrder ord = orders[rng.uniform(0, 4)];
    ph[p] = k.schedule_periodic(
        first, period,
        [&k, &fired, &pfires, &ph, p] {
          fired.emplace_back(k.now(), 2000 + p);
          if (++pfires[p] == 5 + p % 17) k.cancel(ph[p]);
          if (p == 13 && pfires[p] == 3) k.cancel(ph[27]);
        },
        ord);
  }
  for (std::size_t i = 0; i < handles.size(); i += 3) k.cancel(handles[i]);
  k.run_until(250000);
  for (auto& h : handles) k.cancel(h);  // all stale by now: must be no-ops
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const auto& [t, tag] : fired) {
    mix(static_cast<std::uint64_t>(t));
    mix(static_cast<std::uint64_t>(tag));
  }
  mix(fired.size());
  mix(k.counters().executed);
  mix(k.counters().cancelled);
  if (fired_count != nullptr) *fired_count = fired.size();
  return h;
}

TEST(Kernel, GoldenEventOrderMatchesFlatHeapKernel) {
  std::size_t fired = 0;
  EXPECT_EQ(golden_workload_hash(&fired), 0x56c289cc20f4bc5dull);
  EXPECT_EQ(fired, 770u);
}

// --- EventHandle generation safety -------------------------------------------

TEST(Kernel, CancelAfterFireIsANoOp) {
  Kernel k;
  int fired = 0;
  auto h = k.schedule_at(100, [&] { ++fired; });
  k.run_until(200);
  EXPECT_EQ(fired, 1);
  k.cancel(h);  // handle went stale the moment the event fired
  k.cancel(h);
  EXPECT_EQ(k.counters().cancelled, 0u);
}

TEST(Kernel, DoubleCancelCountsOnce) {
  Kernel k;
  auto h = k.schedule_at(100, [] {});
  k.cancel(h);
  k.cancel(h);
  EXPECT_EQ(k.counters().cancelled, 1u);
  k.run_until(200);
  EXPECT_EQ(k.counters().executed, 0u);
}

TEST(Kernel, StaleHandleCannotCancelRecycledSlot) {
  Kernel k;
  int first = 0;
  int second = 0;
  auto h1 = k.schedule_at(100, [&] { ++first; });
  k.cancel(h1);  // frees the slot ...
  k.schedule_at(150, [&] { ++second; });  // ... which this event recycles
  k.cancel(h1);  // stale generation: must not touch the new occupant
  k.run_until(1000);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
  EXPECT_EQ(k.counters().cancelled, 1u);
}

// --- Past-time scheduling policy ---------------------------------------------

// Time travel is a programming error: every schedule flavor refuses it with
// std::invalid_argument — no clamping, identical in every build type.
// Scheduling exactly AT now() is allowed and fires in (order, seq) position
// within the current instant.
TEST(Kernel, PastTimePolicyThrowsForEveryScheduleFlavor) {
  Kernel k;
  k.schedule_at(100, [] {});
  k.run_until(500);
  EXPECT_THROW(k.schedule_at(499, [] {}), std::invalid_argument);
  EXPECT_THROW(k.schedule_in(-1, [] {}), std::invalid_argument);
  EXPECT_THROW(k.schedule_periodic(499, 10, [] {}), std::invalid_argument);
  EXPECT_THROW(k.schedule_periodic(500, 0, [] {}), std::invalid_argument);
  int fired = 0;
  k.schedule_at(500, [&] { ++fired; });  // "now" is fine
  k.run_until(501);
  EXPECT_EQ(fired, 1);
}

// --- Timer wheel and pool counters -------------------------------------------

TEST(Kernel, WheelParksFarEventsAndFlushesInOrder) {
  Kernel k;
  std::vector<int> order;
  const Time bucket = Time{1} << 16;  // wheel bucket width in ns
  // Same bucket as now: straight to the heap.
  k.schedule_at(10, [&] { order.push_back(1); });
  // A few buckets out: parks in the wheel.
  k.schedule_at(3 * bucket, [&] { order.push_back(2); });
  // Beyond the wheel horizon: overflows to the heap.
  k.schedule_at(400 * bucket, [&] { order.push_back(3); });
  EXPECT_EQ(k.counters().wheel_scheduled, 1u);
  EXPECT_EQ(k.counters().queue_depth, 3u);  // heap and wheel combined
  k.run_until(400 * bucket + 1);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(k.counters().wheel_flushed, 1u);
  EXPECT_EQ(k.counters().queue_depth, 0u);
}

TEST(Kernel, PoolSlotsAreRecycledNotGrown) {
  Kernel k;
  std::vector<EventHandle> hs;
  hs.reserve(64);
  for (int i = 0; i < 64; ++i) hs.push_back(k.schedule_at(i + 1, [] {}));
  EXPECT_EQ(k.counters().pool_slots, 64u);
  for (auto& h : hs) k.cancel(h);
  // A fresh batch must reuse the freed slots, not extend the pool.
  for (int i = 0; i < 64; ++i) k.schedule_at(i + 100, [] {});
  EXPECT_EQ(k.counters().pool_slots, 64u);
  k.run_until(1000);
  EXPECT_EQ(k.counters().executed, 64u);
}

// --- Trace ID-only listener fast path ----------------------------------------

TEST(Trace, IdListenersRunBeforeStringListeners) {
  Trace t;
  std::vector<std::string> seq;
  t.subscribe([&](const TraceRecord&) { seq.push_back("string"); });
  t.subscribe_ids([&](const TraceEvent&) { seq.push_back("id"); });
  t.emit(1, "cat", "s");
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_EQ(seq[0], "id");  // regardless of subscription order
  EXPECT_EQ(seq[1], "string");
}

TEST(Trace, IdListenersGetInternedIdsValueAndDetail) {
  Trace t;
  const TraceId cat = t.intern_category("cat");
  const TraceId subj = t.intern_subject("s");
  TraceEvent seen{};
  std::string detail;
  t.subscribe_ids([&](const TraceEvent& e) {
    seen = e;
    detail = std::string(e.detail);
  });
  t.emit(7, "cat", "s", 42, "d");
  EXPECT_EQ(seen.when, 7);
  EXPECT_EQ(seen.category_id, cat);
  EXPECT_EQ(seen.subject_id, subj);
  EXPECT_EQ(seen.value, 42);
  EXPECT_EQ(detail, "d");
}

TEST(Trace, IdListenersWorkWithoutRetentionOrStringListeners) {
  // The rv configuration: retention off, no TraceRecord listeners — emits
  // must reach ID listeners without materializing any std::string.
  Trace t;
  t.enable_retention(false);
  std::size_t n = 0;
  t.subscribe_ids([&](const TraceEvent&) { ++n; });
  for (int i = 0; i < 5; ++i) t.emit(i, "cat", "s");
  EXPECT_EQ(n, 5u);
  EXPECT_TRUE(t.records().empty());
  EXPECT_EQ(t.count("cat"), 5u);
}

// Regression for the bucketed per-category subject index: it must agree with
// a full scan of the retained records (the implementation it replaced).
TEST(Trace, SubjectCountsMatchFullRecordScan) {
  Trace t;
  const char* cats[] = {"cat.a", "cat.b", "cat.c"};
  const char* subs[] = {"u", "v", "w", "x"};
  for (int i = 0; i < 200; ++i) {
    t.emit(i, cats[(i * 7) % 3], subs[(i * 13) % 4]);
  }
  for (const char* cat : cats) {
    std::map<std::string, std::size_t> scan;
    for (const auto& r : t.records()) {
      if (t.category_name(r.category_id) == cat) {
        ++scan[std::string(t.subject_name(r.subject_id))];
      }
    }
    const auto fast = t.subject_counts(cat);
    ASSERT_EQ(fast.size(), scan.size());
    for (const auto& [subject, count] : fast) {
      EXPECT_EQ(count, scan[subject]) << cat << "/" << subject;
    }
  }
  EXPECT_TRUE(t.counts_match_records());
}

}  // namespace
