// Unit tests: discrete-event kernel, RNG, statistics, trace.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace {

using namespace orte::sim;

TEST(Kernel, RunsEventsInTimeOrder) {
  Kernel k;
  std::vector<int> order;
  k.schedule_at(300, [&] { order.push_back(3); });
  k.schedule_at(100, [&] { order.push_back(1); });
  k.schedule_at(200, [&] { order.push_back(2); });
  k.run_until(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(k.now(), 1000);
}

TEST(Kernel, SameInstantOrderedByPriorityThenSequence) {
  Kernel k;
  std::vector<int> order;
  k.schedule_at(100, [&] { order.push_back(2); }, EventOrder::kSoftware);
  k.schedule_at(100, [&] { order.push_back(1); }, EventOrder::kHardware);
  k.schedule_at(100, [&] { order.push_back(3); }, EventOrder::kSoftware);
  k.run_until(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Kernel, SchedulingInThePastThrows) {
  Kernel k;
  k.schedule_at(100, [] {});
  k.run_until(500);
  EXPECT_THROW(k.schedule_at(100, [] {}), std::invalid_argument);
}

TEST(Kernel, CancelPreventsExecution) {
  Kernel k;
  int fired = 0;
  auto h = k.schedule_at(100, [&] { ++fired; });
  k.cancel(h);
  k.run_until(1000);
  EXPECT_EQ(fired, 0);
}

TEST(Kernel, PeriodicFiresRepeatedlyAndCancels) {
  Kernel k;
  int fired = 0;
  auto h = k.schedule_periodic(100, 100, [&] { ++fired; });
  k.run_until(550);
  EXPECT_EQ(fired, 5);  // 100..500
  k.cancel(h);
  k.run_until(2000);
  EXPECT_EQ(fired, 5);
}

TEST(Kernel, PeriodicSelfCancelFromPayload) {
  Kernel k;
  int fired = 0;
  EventHandle h = k.schedule_periodic(10, 10, [&] {
    if (++fired == 3) k.cancel(h);
  });
  k.run_until(1000);
  EXPECT_EQ(fired, 3);
}

TEST(Kernel, CancelDuringSameInstantPreventsLaterEvent) {
  Kernel k;
  int fired = 0;
  // Both events share t=100; the hardware-order event cancels the
  // software-order one before it is popped within the same instant.
  EventHandle victim =
      k.schedule_at(100, [&] { ++fired; }, EventOrder::kSoftware);
  k.schedule_at(100, [&] { k.cancel(victim); }, EventOrder::kHardware);
  k.run_until(1000);
  EXPECT_EQ(fired, 0);
}

TEST(Kernel, ReScheduleAfterCancel) {
  Kernel k;
  int first = 0, second = 0;
  auto h = k.schedule_periodic(100, 100, [&] { ++first; });
  k.cancel(h);
  auto h2 = k.schedule_periodic(100, 100, [&] { ++second; });
  k.run_until(550);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 5);
  k.cancel(h2);
  k.run_until(1000);
  EXPECT_EQ(second, 5);
}

TEST(Kernel, CancelIsIdempotentAndIgnoresInvalidHandles) {
  Kernel k;
  int fired = 0;
  auto h = k.schedule_at(100, [&] { ++fired; });
  k.cancel(h);
  k.cancel(h);               // double cancel: no effect, no double count
  k.cancel(EventHandle{});   // invalid handle: no-op
  k.run_until(1000);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(k.counters().cancelled, 1u);
}

TEST(Kernel, CancelChurnStaysLinearAndBounded) {
  // Guards the O(1) cancellation fix: the old implementation kept every
  // cancelled id forever and scanned the list on every pop (O(n^2) run time,
  // unbounded memory). Counters must show every dead event purged.
  Kernel k;
  constexpr int kEvents = 100'000;
  std::uint64_t fired = 0;
  for (int i = 0; i < kEvents; ++i) {
    auto h = k.schedule_at(i + 1, [&] { ++fired; });
    if (i % 2 == 0) k.cancel(h);
  }
  const KernelCounters mid = k.counters();
  EXPECT_EQ(mid.queue_depth, static_cast<std::uint64_t>(kEvents));
  k.run_until(kEvents + 1);
  EXPECT_EQ(fired, static_cast<std::uint64_t>(kEvents / 2));
  EXPECT_EQ(k.events_executed(), fired);
  const KernelCounters after = k.counters();
  EXPECT_EQ(after.pushed, static_cast<std::uint64_t>(kEvents));
  EXPECT_EQ(after.popped, after.pushed);  // every event left the queue
  EXPECT_EQ(after.skipped_dead, static_cast<std::uint64_t>(kEvents / 2));
  EXPECT_EQ(after.cancelled, after.skipped_dead);
  EXPECT_EQ(after.queue_depth, 0u);  // nothing retained after the run
  EXPECT_EQ(after.peak_queue_depth, static_cast<std::uint64_t>(kEvents));
}

TEST(Kernel, PeriodicCancelMidSeriesPurgesPendingOccurrence) {
  Kernel k;
  int fired = 0;
  auto h = k.schedule_periodic(100, 100, [&] { ++fired; });
  k.run_until(250);  // two occurrences fired; the third is pending
  EXPECT_EQ(fired, 2);
  k.cancel(h);
  k.run_until(2000);
  EXPECT_EQ(fired, 2);
  // The dead occurrence was popped and purged, not retained.
  EXPECT_EQ(k.counters().skipped_dead, 1u);
  EXPECT_EQ(k.counters().queue_depth, 0u);
}

TEST(Kernel, TraceCountersEmitsEveryCounter) {
  Kernel k;
  Trace trace;
  k.schedule_at(100, [] {});
  k.run_until(1000);
  k.trace_counters(trace, "k0");
  EXPECT_EQ(trace.count("kernel.pushed", "k0"), 1u);
  EXPECT_EQ(trace.count("kernel.executed", "k0"), 1u);
  EXPECT_EQ(trace.count("kernel.peak_queue_depth", "k0"), 1u);
}

TEST(Kernel, EventsScheduledDuringEventRun) {
  Kernel k;
  int fired = 0;
  k.schedule_at(100, [&] {
    k.schedule_in(50, [&] { ++fired; });
  });
  k.run_until(1000);
  EXPECT_EQ(fired, 1);
}

TEST(Kernel, StopHaltsTheLoop) {
  Kernel k;
  int fired = 0;
  k.schedule_at(100, [&] {
    ++fired;
    k.stop();
  });
  k.schedule_at(200, [&] { ++fired; });
  k.run_until(1000);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(k.now(), 100);
}

TEST(Kernel, HorizonStopsBeforeLaterEvents) {
  Kernel k;
  int fired = 0;
  k.schedule_at(100, [&] { ++fired; });
  k.schedule_at(900, [&] { ++fired; });
  k.run_until(500);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(k.now(), 500);
  k.run_until(1000);
  EXPECT_EQ(fired, 2);
}

TEST(Kernel, DeterministicAcrossRuns) {
  auto run = [] {
    Kernel k;
    Rng rng(42);
    std::vector<Time> fire_times;
    for (int i = 0; i < 100; ++i) {
      k.schedule_at(rng.uniform(0, 10000),
                    [&, i] { fire_times.push_back(k.now()); });
    }
    k.run_until(20000);
    return fire_times;
  };
  EXPECT_EQ(run(), run());
}

TEST(Time, ConversionHelpers) {
  EXPECT_EQ(microseconds(1), 1000);
  EXPECT_EQ(milliseconds(1), 1'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_ms(milliseconds(5)), 5.0);
  EXPECT_DOUBLE_EQ(to_us(microseconds(7)), 7.0);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ForkIsPureAndOrderIndependent) {
  // fork() must be a pure function of (parent state, stream id): it neither
  // advances the parent nor depends on earlier forks.
  Rng a(7), b(7);
  Rng a1 = a.fork(1);
  (void)a.fork(99);          // an interleaved fork must not matter
  Rng a1_again = a.fork(1);  // nor must forking twice
  Rng b1 = b.fork(1);
  for (int i = 0; i < 100; ++i) {
    const auto expected = b1.next_u64();
    EXPECT_EQ(a1.next_u64(), expected);
    EXPECT_EQ(a1_again.next_u64(), expected);
  }
  // ... and the parent stream is untouched by all of the forking above.
  Rng untouched(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), untouched.next_u64());
}

TEST(Rng, ForkStreamsAreDecorrelated) {
  Rng parent(7);
  Rng s0 = parent.fork(0), s1 = parent.fork(1);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (s0.next_u64() == s1.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkDependsOnParentState) {
  Rng a(7), b(8);
  Rng fa = a.fork(4), fb = b.fork(4);
  EXPECT_NE(fa.next_u64(), fb.next_u64());
  // Advancing the parent changes what subsequent forks derive.
  Rng c(7);
  (void)c.next_u64();
  Rng fc = c.fork(4);
  Rng fa2 = Rng(7).fork(4);
  EXPECT_NE(fc.next_u64(), fa2.next_u64());
}

TEST(Rng, UUniFastSumsToTarget) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto u = rng.uunifast(8, 0.7);
    ASSERT_EQ(u.size(), 8u);
    double sum = 0;
    for (double x : u) {
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 0.7, 1e-9);
  }
}

TEST(Stats, BasicMoments) {
  Stats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.spread(), 3.0);
  EXPECT_NEAR(s.stddev(), 1.118, 1e-3);
}

TEST(Stats, Percentiles) {
  Stats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(Stats, PercentileOutsideRangeThrows) {
  Stats s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_THROW((void)s.percentile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)s.percentile(100.1), std::invalid_argument);
  EXPECT_THROW((void)s.percentile(101), std::invalid_argument);
  // The boundaries themselves stay valid.
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 2.0);
}

TEST(Stats, EmptyThrows) {
  Stats s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW((void)s.mean(), std::logic_error);
  EXPECT_THROW((void)s.percentile(50), std::logic_error);
}

TEST(Trace, RetainsAndCounts) {
  Trace t;
  t.emit(10, "cat.a", "x");
  t.emit(20, "cat.a", "y");
  t.emit(30, "cat.b", "x", 7, "detail");
  EXPECT_EQ(t.count("cat.a"), 2u);
  EXPECT_EQ(t.count("cat.b"), 1u);
  EXPECT_EQ(t.count("cat.a", "x"), 1u);
  EXPECT_EQ(t.records().back().value, 7);
  EXPECT_EQ(t.records().back().detail, "detail");
}

TEST(Trace, ListenersSeeEveryEmit) {
  Trace t;
  int seen = 0;
  t.subscribe([&](const TraceRecord& r) {
    if (r.category == "hit") ++seen;
  });
  t.emit(1, "hit", "a");
  t.emit(2, "miss", "b");
  t.emit(3, "hit", "c");
  EXPECT_EQ(seen, 2);
}

TEST(Trace, RetentionCanBeDisabled) {
  Trace t;
  t.enable_retention(false);
  t.emit(1, "x", "y");
  EXPECT_TRUE(t.records().empty());
}

TEST(Trace, CountsWorkWithRetentionDisabled) {
  Trace t;
  t.enable_retention(false);
  t.emit(1, "cat", "a");
  t.emit(2, "cat", "a");
  t.emit(3, "cat", "b");
  EXPECT_TRUE(t.records().empty());
  EXPECT_EQ(t.count("cat"), 3u);
  EXPECT_EQ(t.count("cat", "a"), 2u);
  EXPECT_EQ(t.count("cat", "b"), 1u);
}

TEST(Trace, ListenersRunInSubscriptionOrder) {
  Trace t;
  std::vector<int> order;
  t.subscribe([&](const TraceRecord&) { order.push_back(1); });
  t.subscribe([&](const TraceRecord&) { order.push_back(2); });
  t.subscribe([&](const TraceRecord&) { order.push_back(3); });
  t.emit(1, "cat", "s");
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Trace, RetentionToggleMidRunKeepsCounting) {
  Trace t;
  t.emit(1, "cat", "s");
  t.enable_retention(false);
  t.emit(2, "cat", "s");
  t.emit(3, "cat", "s");
  t.enable_retention(true);
  t.emit(4, "cat", "s");
  // Records cover only the retained windows; counts cover everything.
  EXPECT_EQ(t.records().size(), 2u);
  EXPECT_EQ(t.records().front().when, 1);
  EXPECT_EQ(t.records().back().when, 4);
  EXPECT_EQ(t.count("cat", "s"), 4u);
}

TEST(Trace, UnobservedEmitsStillCount) {
  // No listeners, retention off: emit() takes the fast path that skips
  // building the record, but the count indexes must still advance.
  Trace t;
  t.enable_retention(false);
  for (int i = 0; i < 100; ++i) t.emit(i, "fast", "path");
  EXPECT_EQ(t.count("fast"), 100u);
  EXPECT_EQ(t.count("fast", "path"), 100u);
  EXPECT_TRUE(t.records().empty());
}

TEST(Trace, SubjectCountsEnumeratesOneCategory) {
  Trace t;
  t.emit(1, "cat.a", "y");
  t.emit(2, "cat.a", "x");
  t.emit(3, "cat.a", "y");
  t.emit(4, "cat.b", "z");
  const auto counts = t.subject_counts("cat.a");
  ASSERT_EQ(counts.size(), 2u);  // cat.b's subject excluded
  EXPECT_EQ(counts[0].first, "x");
  EXPECT_EQ(counts[0].second, 1u);
  EXPECT_EQ(counts[1].first, "y");
  EXPECT_EQ(counts[1].second, 2u);
  EXPECT_TRUE(t.subject_counts("cat.none").empty());
}

TEST(Trace, CountsSurviveMove) {
  Trace t;
  t.emit(1, "cat", "s");
  t.emit(2, "cat", "s");
  Trace moved = std::move(t);
  EXPECT_EQ(moved.count("cat"), 2u);
  EXPECT_EQ(moved.count("cat", "s"), 2u);
  EXPECT_EQ(moved.records().size(), 2u);
  moved.emit(3, "cat", "s");
  EXPECT_EQ(moved.count("cat"), 3u);
}

TEST(Trace, ClearResetsRecordsAndCounts) {
  Trace t;
  t.emit(1, "cat", "s");
  t.clear();
  EXPECT_TRUE(t.records().empty());
  EXPECT_EQ(t.count("cat"), 0u);
  EXPECT_EQ(t.count("cat", "s"), 0u);
  EXPECT_TRUE(t.subject_counts("cat").empty());
  t.emit(2, "cat", "s");
  EXPECT_EQ(t.count("cat"), 1u);
}

// --- Interning ----------------------------------------------------------------

TEST(Trace, RecordsCarryInternedIds) {
  Trace t;
  t.emit(1, "cat.a", "x");
  t.emit(2, "cat.b", "y");
  ASSERT_EQ(t.records().size(), 2u);
  const TraceRecord& a = t.records()[0];
  const TraceRecord& b = t.records()[1];
  EXPECT_EQ(a.category_id, t.category_id("cat.a"));
  EXPECT_EQ(a.subject_id, t.subject_id("x"));
  EXPECT_EQ(b.category_id, t.category_id("cat.b"));
  EXPECT_EQ(b.subject_id, t.subject_id("y"));
  EXPECT_NE(a.category_id, b.category_id);
  EXPECT_NE(a.subject_id, b.subject_id);
  // Reverse lookup round-trips.
  EXPECT_EQ(t.category_name(a.category_id), "cat.a");
  EXPECT_EQ(t.subject_name(b.subject_id), "y");
  // ID-keyed counting agrees with string-keyed counting.
  EXPECT_EQ(t.count(a.category_id), 1u);
  EXPECT_EQ(t.count(a.category_id, a.subject_id), 1u);
}

TEST(Trace, UnseenNamesHaveNoId) {
  Trace t;
  t.emit(1, "cat", "s");
  EXPECT_EQ(t.category_id("other"), kNoTraceId);
  EXPECT_EQ(t.subject_id("other"), kNoTraceId);
  EXPECT_EQ(t.count(kNoTraceId), 0u);
  EXPECT_EQ(t.count(kNoTraceId, kNoTraceId), 0u);
  EXPECT_TRUE(t.category_name(kNoTraceId).empty());
}

TEST(Trace, PreInterningAssignsTheSameIdEmitWillUse) {
  Trace t;
  const TraceId cat = t.intern_category("rte.write");
  const TraceId subj = t.intern_subject("pedal.out.v");
  t.emit(5, "rte.write", "pedal.out.v");
  ASSERT_EQ(t.records().size(), 1u);
  EXPECT_EQ(t.records()[0].category_id, cat);
  EXPECT_EQ(t.records()[0].subject_id, subj);
  EXPECT_EQ(t.count(cat, subj), 1u);
}

TEST(Trace, InterningStableAcrossClear) {
  Trace t;
  t.emit(1, "cat.a", "x");
  const TraceId cat = t.category_id("cat.a");
  const TraceId subj = t.subject_id("x");
  t.clear();
  // Counts reset; IDs survive, and re-emitting reuses them.
  EXPECT_EQ(t.category_id("cat.a"), cat);
  EXPECT_EQ(t.subject_id("x"), subj);
  EXPECT_EQ(t.count(cat, subj), 0u);
  t.emit(2, "cat.a", "x");
  EXPECT_EQ(t.records()[0].category_id, cat);
  EXPECT_EQ(t.records()[0].subject_id, subj);
  EXPECT_EQ(t.count(cat, subj), 1u);
}

TEST(Trace, SubjectCountsByIdMatchesStringIndex) {
  Trace t;
  t.emit(1, "cat", "b");
  t.emit(2, "cat", "a");
  t.emit(3, "cat", "b");
  const auto by_id = t.subject_counts_by_id(t.category_id("cat"));
  ASSERT_EQ(by_id.size(), 2u);
  std::size_t total = 0;
  for (const auto& [subject_id, count] : by_id) {
    EXPECT_EQ(count, t.count("cat", t.subject_name(subject_id)));
    total += count;
  }
  EXPECT_EQ(total, 3u);
  EXPECT_TRUE(t.subject_counts_by_id(kNoTraceId).empty());
}

// Guard against silent index drift: the ID-indexed counts must match a
// string-keyed recount of the retained records whenever retention covers
// the whole window.
TEST(Trace, CountsMatchRecordsWhileRetentionIsComplete) {
  Trace t;
  t.emit(1, "cat.a", "x");
  t.emit(2, "cat.a", "y");
  t.emit(3, "cat.b", "x", 7, "detail");
  EXPECT_TRUE(t.records_complete());
  EXPECT_TRUE(t.counts_match_records());
  // An unretained emit legitimately decouples counts from records.
  t.enable_retention(false);
  t.emit(4, "cat.a", "x");
  EXPECT_FALSE(t.records_complete());
  // clear() restores the invariant.
  t.enable_retention(true);
  t.clear();
  EXPECT_TRUE(t.records_complete());
  t.emit(5, "cat.a", "x");
  EXPECT_TRUE(t.counts_match_records());
}

}  // namespace
