// Unit tests: basic software — COM packing/transmission, mode management,
// DEM, NvM, watchdog alive supervision.
#include <gtest/gtest.h>

#include "bsw/com.hpp"
#include "bsw/dem.hpp"
#include "bsw/mode.hpp"
#include "bsw/nvm.hpp"
#include "bsw/watchdog.hpp"
#include "can/can_bus.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"

namespace {

using namespace orte::bsw;
using orte::sim::Kernel;
using orte::sim::Trace;
using orte::sim::microseconds;
using orte::sim::milliseconds;

struct Fixture {
  Kernel kernel;
  Trace trace;
};

// --- Signal packing ----------------------------------------------------------

TEST(ComPacking, RoundTripAlignedAndUnaligned) {
  std::vector<std::uint8_t> payload(8, 0);
  pack_signal(payload, 0, 8, 0xAB);
  pack_signal(payload, 8, 16, 0x1234);
  pack_signal(payload, 27, 5, 0x15);
  pack_signal(payload, 40, 24, 0xABCDEF);
  EXPECT_EQ(unpack_signal(payload, 0, 8), 0xABu);
  EXPECT_EQ(unpack_signal(payload, 8, 16), 0x1234u);
  EXPECT_EQ(unpack_signal(payload, 27, 5), 0x15u);
  EXPECT_EQ(unpack_signal(payload, 40, 24), 0xABCDEFu);
}

TEST(ComPacking, OverwriteClearsOldBits) {
  std::vector<std::uint8_t> payload(2, 0);
  pack_signal(payload, 3, 6, 0x3F);
  pack_signal(payload, 3, 6, 0x00);
  EXPECT_EQ(unpack_signal(payload, 3, 6), 0u);
  EXPECT_EQ(payload[0], 0u);
  EXPECT_EQ(payload[1], 0u);
}

TEST(ComPacking, SixtyFourBitSignal) {
  std::vector<std::uint8_t> payload(8, 0);
  const std::uint64_t v = 0xDEADBEEFCAFEBABEULL;
  pack_signal(payload, 0, 64, v);
  EXPECT_EQ(unpack_signal(payload, 0, 64), v);
}

TEST(ComPacking, OutOfRangeThrows) {
  std::vector<std::uint8_t> payload(2, 0);
  EXPECT_THROW(pack_signal(payload, 12, 8, 1), std::invalid_argument);
  EXPECT_THROW(pack_signal(payload, 0, 0, 1), std::invalid_argument);
  EXPECT_THROW(unpack_signal(payload, 0, 65), std::invalid_argument);
}

// --- COM over CAN ------------------------------------------------------------

struct ComFixture : Fixture {
  orte::can::CanBus bus{kernel, trace, {}};
  orte::can::CanController& tx_ctrl{bus.attach()};
  orte::can::CanController& rx_ctrl{bus.attach()};
  Com tx{kernel, trace};
  Com rx{kernel, trace};
};

TEST(Com, DirectTransmissionOnTriggeredSignal) {
  ComFixture f;
  f.tx.add_tx_ipdu({.name = "pdu", .frame_id = 0x10, .length_bytes = 8,
                    .mode = TxMode::kDirect},
                   f.tx_ctrl);
  f.tx.add_signal({.name = "speed", .ipdu = "pdu", .bit_offset = 0,
                   .bit_length = 16, .triggered = true});
  f.rx.add_rx_ipdu({.name = "pdu", .frame_id = 0x10, .length_bytes = 8},
                   f.rx_ctrl);
  f.rx.add_signal({.name = "speed", .ipdu = "pdu", .bit_offset = 0,
                   .bit_length = 16});
  std::vector<std::uint64_t> seen;
  f.rx.on_signal("speed", [&](std::uint64_t v) { seen.push_back(v); });
  f.tx.start();
  f.rx.start();
  f.kernel.schedule_at(microseconds(10), [&] { f.tx.send_signal("speed", 88); });
  f.kernel.run_until(milliseconds(5));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 88u);
  EXPECT_EQ(f.rx.read_signal("speed"), std::uint64_t{88});
  EXPECT_TRUE(f.rx.signal_age("speed").has_value());
}

TEST(Com, PeriodicTransmissionWithoutWrites) {
  ComFixture f;
  f.tx.add_tx_ipdu({.name = "pdu", .frame_id = 0x11, .length_bytes = 4,
                    .mode = TxMode::kPeriodic, .period = milliseconds(10)},
                   f.tx_ctrl);
  f.rx.add_rx_ipdu({.name = "pdu", .frame_id = 0x11, .length_bytes = 4},
                   f.rx_ctrl);
  f.tx.start();
  f.rx.start();
  f.kernel.run_until(milliseconds(95));
  EXPECT_EQ(f.tx.pdus_sent(), 10u);  // t = 0, 10, ..., 90
  EXPECT_EQ(f.rx.pdus_received(), 10u);
}

TEST(Com, NonTriggeredSignalWaitsForPeriodic) {
  ComFixture f;
  f.tx.add_tx_ipdu({.name = "pdu", .frame_id = 0x12, .length_bytes = 4,
                    .mode = TxMode::kPeriodic, .period = milliseconds(10),
                    .offset = milliseconds(5)},
                   f.tx_ctrl);
  f.tx.add_signal({.name = "s", .ipdu = "pdu", .bit_offset = 0,
                   .bit_length = 8, .triggered = false});
  f.rx.add_rx_ipdu({.name = "pdu", .frame_id = 0x12, .length_bytes = 4},
                   f.rx_ctrl);
  f.rx.add_signal(
      {.name = "s", .ipdu = "pdu", .bit_offset = 0, .bit_length = 8});
  f.tx.start();
  f.rx.start();
  f.kernel.schedule_at(microseconds(100), [&] { f.tx.send_signal("s", 7); });
  f.kernel.run_until(milliseconds(4));
  EXPECT_EQ(f.rx.read_signal("s"), std::nullopt);  // not yet transmitted
  f.kernel.run_until(milliseconds(6));
  EXPECT_EQ(f.rx.read_signal("s"), std::uint64_t{7});
}

TEST(Com, RxTimeoutFiresWithoutTraffic) {
  ComFixture f;
  f.rx.add_rx_ipdu({.name = "pdu", .frame_id = 0x13, .length_bytes = 4,
                    .rx_timeout = milliseconds(20)},
                   f.rx_ctrl);
  std::vector<std::string> timeouts;
  f.rx.on_rx_timeout([&](const std::string& name) { timeouts.push_back(name); });
  f.rx.start();
  f.kernel.run_until(milliseconds(50));
  ASSERT_EQ(timeouts.size(), 1u);
  EXPECT_EQ(timeouts[0], "pdu");
  EXPECT_EQ(f.rx.rx_timeouts(), 1u);
}

TEST(Com, RxTimeoutClearedByReception) {
  ComFixture f;
  f.tx.add_tx_ipdu({.name = "pdu", .frame_id = 0x14, .length_bytes = 4,
                    .mode = TxMode::kPeriodic, .period = milliseconds(10)},
                   f.tx_ctrl);
  f.rx.add_rx_ipdu({.name = "pdu", .frame_id = 0x14, .length_bytes = 4,
                    .rx_timeout = milliseconds(20)},
                   f.rx_ctrl);
  f.tx.start();
  f.rx.start();
  f.kernel.run_until(milliseconds(100));
  EXPECT_EQ(f.rx.rx_timeouts(), 0u);
}

TEST(Com, MixedModeSendsBothPeriodicAndTriggered) {
  ComFixture f;
  f.tx.add_tx_ipdu({.name = "pdu", .frame_id = 0x15, .length_bytes = 4,
                    .mode = TxMode::kMixed, .period = milliseconds(20)},
                   f.tx_ctrl);
  f.tx.add_signal({.name = "s", .ipdu = "pdu", .bit_offset = 0,
                   .bit_length = 8, .triggered = true});
  f.rx.add_rx_ipdu({.name = "pdu", .frame_id = 0x15, .length_bytes = 4},
                   f.rx_ctrl);
  f.tx.start();
  f.rx.start();
  // Periodic carries the value anyway; a triggered write adds an immediate
  // extra transmission.
  f.kernel.schedule_at(milliseconds(5), [&] { f.tx.send_signal("s", 1); });
  f.kernel.run_until(milliseconds(50));
  // Periodic at 0, 20, 40 (3) + direct at 5 (1) = 4.
  EXPECT_EQ(f.tx.pdus_sent(), 4u);
  EXPECT_EQ(f.rx.pdus_received(), 4u);
}

TEST(Com, ConfigErrorsThrow) {
  ComFixture f;
  EXPECT_THROW(
      f.tx.add_tx_ipdu({.name = "p", .mode = TxMode::kPeriodic, .period = 0},
                       f.tx_ctrl),
      std::invalid_argument);
  EXPECT_THROW(f.tx.add_signal({.name = "s", .ipdu = "nope"}),
               std::invalid_argument);
  EXPECT_THROW(f.tx.send_signal("ghost", 1), std::invalid_argument);
}

// --- Mode management ----------------------------------------------------------

TEST(ModeMachine, DeclaredTransitionsOnly) {
  Fixture f;
  ModeMachine m(f.kernel, f.trace, "EcuMode", "STARTUP");
  m.add_mode("RUN");
  m.add_mode("LIMP_HOME");
  m.add_transition("STARTUP", "RUN");
  m.add_transition("RUN", "LIMP_HOME");
  EXPECT_TRUE(m.in("STARTUP"));
  EXPECT_FALSE(m.request("LIMP_HOME"));  // not declared from STARTUP
  EXPECT_TRUE(m.in("STARTUP"));
  EXPECT_TRUE(m.request("RUN"));
  EXPECT_TRUE(m.request("LIMP_HOME"));
  EXPECT_EQ(m.transitions(), 2u);
  EXPECT_EQ(m.rejected(), 1u);
}

TEST(ModeMachine, ListenersNotified) {
  Fixture f;
  ModeMachine m(f.kernel, f.trace, "M", "A");
  m.add_mode("B");
  m.add_transition("A", "B");
  std::string got;
  m.on_transition([&](const std::string& from, const std::string& to) {
    got = from + ">" + to;
  });
  m.request("B");
  EXPECT_EQ(got, "A>B");
}

TEST(ModeMachine, SelfRequestIsNoop) {
  Fixture f;
  ModeMachine m(f.kernel, f.trace, "M", "A");
  EXPECT_TRUE(m.request("A"));
  EXPECT_EQ(m.transitions(), 0u);
}

TEST(ModeMachine, SelfRequestFiresNoCallbacks) {
  // Re-requesting the current mode is an accepted no-op: listeners must not
  // see a phantom A->A transition (a callback-wired shutdown/startup action
  // would otherwise run twice).
  Fixture f;
  ModeMachine m(f.kernel, f.trace, "M", "A");
  m.add_mode("B");
  m.add_transition("A", "B");
  m.add_transition("B", "B");  // even a declared self-loop stays silent
  int notified = 0;
  m.on_transition(
      [&](const std::string&, const std::string&) { ++notified; });
  EXPECT_TRUE(m.request("A"));
  EXPECT_EQ(notified, 0);
  EXPECT_TRUE(m.request("B"));
  EXPECT_EQ(notified, 1);
  EXPECT_TRUE(m.request("B"));  // self-request in the new mode: still silent
  EXPECT_EQ(notified, 1);
  EXPECT_EQ(m.transitions(), 1u);
}

TEST(ModeMachine, UndeclaredModeInTransitionThrows) {
  Fixture f;
  ModeMachine m(f.kernel, f.trace, "M", "A");
  EXPECT_THROW(m.add_transition("A", "GHOST"), std::invalid_argument);
}

// --- DEM ------------------------------------------------------------------------

TEST(Dem, DebounceBeforeLatch) {
  Fixture f;
  Dem dem(f.kernel, f.trace);
  dem.add_event({.name = "sensor_open", .debounce_threshold = 3});
  dem.report("sensor_open", EventStatus::kFailed);
  dem.report("sensor_open", EventStatus::kFailed);
  EXPECT_FALSE(dem.is_failed("sensor_open"));
  dem.report("sensor_open", EventStatus::kFailed);
  EXPECT_TRUE(dem.is_failed("sensor_open"));
  ASSERT_TRUE(dem.dtc("sensor_open").has_value());
  EXPECT_EQ(dem.dtc("sensor_open")->occurrence_count, 1u);
}

TEST(Dem, PassedReportsHeal) {
  Fixture f;
  Dem dem(f.kernel, f.trace);
  dem.add_event({.name = "e", .debounce_threshold = 2});
  dem.report("e", EventStatus::kFailed);
  dem.report("e", EventStatus::kFailed);
  EXPECT_TRUE(dem.is_failed("e"));
  dem.report("e", EventStatus::kPassed);
  dem.report("e", EventStatus::kPassed);
  EXPECT_FALSE(dem.is_failed("e"));
  // Healed but the DTC is still stored (unconfirmed).
  ASSERT_TRUE(dem.dtc("e").has_value());
  EXPECT_FALSE(dem.dtc("e")->confirmed);
}

TEST(Dem, AgingClearsHealedDtc) {
  Fixture f;
  Dem dem(f.kernel, f.trace);
  dem.add_event({.name = "e", .debounce_threshold = 1, .aging_cycles = 2});
  dem.report("e", EventStatus::kFailed);
  dem.report("e", EventStatus::kPassed);
  dem.operation_cycle_end();
  EXPECT_TRUE(dem.dtc("e").has_value());
  dem.operation_cycle_end();
  EXPECT_FALSE(dem.dtc("e").has_value());
}

TEST(Dem, ReoccurrenceIncrementsCount) {
  Fixture f;
  Dem dem(f.kernel, f.trace);
  dem.add_event({.name = "e", .debounce_threshold = 1});
  dem.report("e", EventStatus::kFailed);
  dem.report("e", EventStatus::kPassed);
  dem.report("e", EventStatus::kFailed);
  EXPECT_EQ(dem.dtc("e")->occurrence_count, 2u);
}

TEST(Dem, ConfirmedDtcKeepsFreshnessMoving) {
  // Regression: while an event stayed failed, further failed reports used
  // to leave last_occurrence frozen at the latch time — a tester reading
  // the DTC could not tell an old latched fault from one still firing.
  Fixture f;
  Dem dem(f.kernel, f.trace);
  dem.add_event({.name = "e", .debounce_threshold = 1});
  dem.report("e", EventStatus::kFailed);
  ASSERT_TRUE(dem.dtc("e").has_value());
  EXPECT_EQ(dem.dtc("e")->last_occurrence, 0);

  f.kernel.run_until(milliseconds(10));
  dem.report("e", EventStatus::kFailed);
  EXPECT_EQ(dem.dtc("e")->last_occurrence, milliseconds(10));
  // Freshness only — the occurrence count still counts latches, and the
  // first-occurrence timestamp is immutable.
  EXPECT_EQ(dem.dtc("e")->occurrence_count, 1u);
  EXPECT_EQ(dem.dtc("e")->first_occurrence, 0);
}

TEST(Dem, AgedOutCallbackDeliversFinalDtcState) {
  Fixture f;
  Dem dem(f.kernel, f.trace);
  dem.add_event({.name = "e", .debounce_threshold = 1, .aging_cycles = 2});
  std::vector<Dtc> aged;
  dem.on_aged_out([&](const Dtc& dtc) { aged.push_back(dtc); });
  dem.report("e", EventStatus::kFailed);
  dem.report("e", EventStatus::kPassed);
  dem.operation_cycle_end();
  EXPECT_TRUE(aged.empty());  // one fault-free cycle of two
  dem.operation_cycle_end();
  ASSERT_EQ(aged.size(), 1u);
  EXPECT_EQ(aged[0].event, "e");
  EXPECT_EQ(aged[0].aged, 2u);
  EXPECT_FALSE(aged[0].confirmed);
  EXPECT_FALSE(dem.dtc("e").has_value());  // erased before the callback ran
}

TEST(Dem, CallbackOnStore) {
  Fixture f;
  Dem dem(f.kernel, f.trace);
  dem.add_event({.name = "e", .debounce_threshold = 1});
  int stored = 0;
  dem.on_dtc_stored([&](const Dtc&) { ++stored; });
  dem.report("e", EventStatus::kFailed);
  EXPECT_EQ(stored, 1);
}

// --- NvM -------------------------------------------------------------------------

TEST(Nvm, WriteReadRoundTrip) {
  Fixture f;
  NvM nvm(f.trace);
  nvm.add_block({.name = "cal", .length = 4});
  nvm.write("cal", {1, 2, 3, 4});
  EXPECT_EQ(nvm.read("cal"), (std::vector<std::uint8_t>{1, 2, 3, 4}));
}

TEST(Nvm, CorruptionDetectedOnSingleCopy) {
  Fixture f;
  NvM nvm(f.trace);
  nvm.add_block({.name = "cal", .length = 4});
  nvm.write("cal", {1, 2, 3, 4});
  nvm.corrupt("cal", 2);
  EXPECT_EQ(nvm.read("cal"), std::nullopt);
  EXPECT_EQ(nvm.fatal_failures(), 1u);
}

TEST(Nvm, RedundantCopyRecovers) {
  Fixture f;
  NvM nvm(f.trace);
  nvm.add_block({.name = "cal", .length = 4, .redundant = true});
  nvm.write("cal", {9, 8, 7, 6});
  nvm.corrupt("cal", 1, 0);
  EXPECT_EQ(nvm.read("cal"), (std::vector<std::uint8_t>{9, 8, 7, 6}));
  EXPECT_EQ(nvm.recoveries(), 1u);
  // The repaired copy is valid again.
  EXPECT_EQ(nvm.read("cal"), (std::vector<std::uint8_t>{9, 8, 7, 6}));
  EXPECT_EQ(nvm.recoveries(), 1u);
}

TEST(Nvm, BothCopiesCorruptIsFatal) {
  Fixture f;
  NvM nvm(f.trace);
  nvm.add_block({.name = "cal", .length = 4, .redundant = true});
  nvm.write("cal", {1, 1, 1, 1});
  nvm.corrupt("cal", 0, 0);
  nvm.corrupt("cal", 0, 1);
  std::string failed;
  bool was_fatal = false;
  nvm.on_failure([&](const std::string& b, bool fatal) {
    failed = b;
    was_fatal = fatal;
  });
  EXPECT_EQ(nvm.read("cal"), std::nullopt);
  EXPECT_EQ(failed, "cal");
  EXPECT_TRUE(was_fatal);
}

TEST(Nvm, UnwrittenBlockReadsAsFatal) {
  Fixture f;
  NvM nvm(f.trace);
  nvm.add_block({.name = "cal", .length = 4});
  EXPECT_EQ(nvm.read("cal"), std::nullopt);
}

TEST(Nvm, Crc16KnownVector) {
  // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
  std::vector<std::uint8_t> data{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16(data), 0x29B1);
}

TEST(Nvm, SizeMismatchThrows) {
  Fixture f;
  NvM nvm(f.trace);
  nvm.add_block({.name = "cal", .length = 4});
  EXPECT_THROW(nvm.write("cal", {1, 2}), std::invalid_argument);
  EXPECT_THROW(nvm.corrupt("cal", 9), std::invalid_argument);
}

// --- Watchdog ----------------------------------------------------------------------

TEST(Watchdog, HealthyEntityPasses) {
  Fixture f;
  WatchdogManager wdg(f.kernel, f.trace, milliseconds(10));
  wdg.supervise({.entity = "ctrl", .min_indications = 1});
  f.kernel.schedule_periodic(0, milliseconds(5), [&] { wdg.checkpoint("ctrl"); });
  wdg.start();
  f.kernel.run_until(milliseconds(100));
  EXPECT_EQ(wdg.violations(), 0u);
  EXPECT_FALSE(wdg.is_expired("ctrl"));
}

TEST(Watchdog, SilentEntityTrips) {
  Fixture f;
  WatchdogManager wdg(f.kernel, f.trace, milliseconds(10));
  wdg.supervise({.entity = "ctrl", .min_indications = 1});
  std::string tripped;
  wdg.on_violation([&](const std::string& e, std::uint32_t) { tripped = e; });
  wdg.start();
  f.kernel.run_until(milliseconds(25));
  EXPECT_EQ(wdg.violations(), 1u);
  EXPECT_EQ(tripped, "ctrl");
  EXPECT_TRUE(wdg.is_expired("ctrl"));
}

TEST(Watchdog, ToleranceDelaysTrip) {
  Fixture f;
  WatchdogManager wdg(f.kernel, f.trace, milliseconds(10));
  wdg.supervise({.entity = "ctrl", .min_indications = 1,
                 .failed_cycles_tolerance = 2});
  wdg.start();
  f.kernel.run_until(milliseconds(25));
  EXPECT_EQ(wdg.violations(), 0u);  // 2 failed cycles tolerated
  f.kernel.run_until(milliseconds(35));
  EXPECT_EQ(wdg.violations(), 1u);  // third failed cycle trips
}

TEST(Watchdog, TooManyIndicationsAlsoFail) {
  Fixture f;
  WatchdogManager wdg(f.kernel, f.trace, milliseconds(10));
  wdg.supervise({.entity = "ctrl", .min_indications = 1,
                 .max_indications = 3});
  f.kernel.schedule_periodic(0, milliseconds(1), [&] { wdg.checkpoint("ctrl"); });
  wdg.start();
  f.kernel.run_until(milliseconds(25));
  EXPECT_GE(wdg.violations(), 1u);  // ~10 indications per cycle > max 3
}

TEST(Watchdog, UnknownEntityCheckpointThrows) {
  Fixture f;
  WatchdogManager wdg(f.kernel, f.trace, milliseconds(10));
  EXPECT_THROW(wdg.checkpoint("ghost"), std::invalid_argument);
}

}  // namespace
