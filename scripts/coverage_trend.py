#!/usr/bin/env python3
"""Cross-PR trend check for the E9b fault-injection detection rate.

Compares the current BENCH_e9_fi_coverage.json summary against the most
recent artifact of the same name uploaded by a successful CI run on the
default branch, and fails (exit 1) when the detection rate regresses below
the previous run's floor minus a small tolerance. The absolute floor in
bench_e9 itself (60 %) still applies; this check additionally pins the
*achieved* rate so a silently lost monitor plane cannot hide above the
static floor.

Designed to degrade gracefully: when no token, no API access, or no prior
artifact is available (first run, forked PR), the check is skipped with a
notice rather than failing the pipeline. Stdlib only (urllib), no pip.

Usage:
    coverage_trend.py CURRENT_JSON [--repo owner/name] [--branch main]
                      [--artifact BENCH_e9_fi_coverage] [--tolerance 2.0]

Environment:
    GITHUB_TOKEN       token for the GitHub API (actions: read).
    GITHUB_REPOSITORY  default for --repo (set by GitHub Actions).
"""

import argparse
import io
import json
import os
import sys
import urllib.error
import urllib.request
import zipfile

API = "https://api.github.com"


def skip(reason):
    print(f"coverage-trend: SKIP ({reason})")
    sys.exit(0)


def api_get(url, token):
    req = urllib.request.Request(url)
    req.add_header("Accept", "application/vnd.github+json")
    req.add_header("Authorization", f"Bearer {token}")
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.read()


def detected_pct(report):
    """summary.detected_pct from a bench_util JsonReport document
    ({"bench": ..., "rows": [{"table": "summary", ...}, ...]})."""
    for row in report.get("rows", []):
        if row.get("table") == "summary" and "detected_pct" in row:
            return float(row["detected_pct"])
    raise KeyError("summary.detected_pct missing")


def previous_report(repo, branch, artifact_name, token):
    """The artifact JSON from the newest successful run on `branch`."""
    runs = json.loads(
        api_get(
            f"{API}/repos/{repo}/actions/runs"
            f"?branch={branch}&status=success&per_page=20",
            token,
        )
    )
    for run in runs.get("workflow_runs", []):
        arts = json.loads(
            api_get(run["artifacts_url"] + "?per_page=50", token)
        )
        for art in arts.get("artifacts", []):
            if art["name"] != artifact_name or art.get("expired"):
                continue
            blob = api_get(art["archive_download_url"], token)
            with zipfile.ZipFile(io.BytesIO(blob)) as zf:
                for member in zf.namelist():
                    if member.endswith(".json"):
                        return json.loads(zf.read(member)), run["html_url"]
    return None, None


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current", help="path to the freshly produced JSON")
    ap.add_argument("--repo", default=os.environ.get("GITHUB_REPOSITORY"))
    ap.add_argument("--branch", default="main")
    ap.add_argument("--artifact", default="BENCH_e9_fi_coverage")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="allowed drop in detected_pct vs the previous run "
        "(absorbs per-seed noise in the stochastic faults)",
    )
    args = ap.parse_args()

    with open(args.current, encoding="utf-8") as f:
        current = detected_pct(json.load(f))

    token = os.environ.get("GITHUB_TOKEN")
    if not token:
        skip("no GITHUB_TOKEN")
    if not args.repo:
        skip("no repository name")

    try:
        prev_report, run_url = previous_report(
            args.repo, args.branch, args.artifact, token
        )
    except (urllib.error.URLError, OSError, ValueError, KeyError) as e:
        skip(f"API unavailable: {e}")
    if prev_report is None:
        skip(f"no previous '{args.artifact}' artifact on {args.branch}")

    try:
        previous = detected_pct(prev_report)
    except (KeyError, ValueError) as e:
        skip(f"previous artifact unreadable: {e}")

    floor = previous - args.tolerance
    verdict = "PASS" if current >= floor else "FAIL"
    print(
        f"coverage-trend: current={current:.1f}% previous={previous:.1f}% "
        f"(from {run_url}) floor={floor:.1f}% -> {verdict}"
    )
    sys.exit(0 if current >= floor else 1)


if __name__ == "__main__":
    main()
