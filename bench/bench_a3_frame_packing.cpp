// Ablation A3 — signal-to-frame packing (the communication-matrix half of
// §2's "defining and utilizing the relevant functional and system data for
// the configuration process").
//
// Sweep: n signals (8-16 bit, automotive period grid), packed naively (one
// frame per signal) vs with the period-grouped first-fit-decreasing packer.
// Reported: frame count, CAN bus utilization at 500 kbit/s, and the largest
// signal set each strategy can carry before the bus saturates.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/frame_packing.hpp"
#include "bench_util.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

using namespace orte;
using sim::milliseconds;

namespace {

std::vector<analysis::PackSignal> make_signals(std::size_t n,
                                               std::uint64_t seed) {
  sim::Rng rng(seed);
  const std::vector<sim::Duration> periods{
      milliseconds(10), milliseconds(20), milliseconds(50),
      milliseconds(100)};
  std::vector<analysis::PackSignal> sigs;
  for (std::size_t i = 0; i < n; ++i) {
    sigs.push_back({"s" + std::to_string(i),
                    static_cast<std::size_t>(8 * (1 + rng.index(2))),
                    periods[rng.index(periods.size())]});
  }
  return sigs;
}

}  // namespace

int main() {
  constexpr std::int64_t kBitrate = 500'000;
  bench::print_title(
      "A3: frame packing — naive (1 signal/frame) vs period-grouped FFD");
  bench::print_row({"signals", "naive frames", "naive util %", "packed frames",
                    "packed util %"});
  bench::print_rule(5);
  bench::JsonReport report("a3_frame_packing");
  for (std::size_t n : {20u, 50u, 100u, 200u, 400u}) {
    const auto sigs = make_signals(n, 11);
    const auto naive = analysis::pack_naive(sigs, kBitrate);
    const auto packed = analysis::pack_signals(sigs, 64, kBitrate);
    bench::print_row({std::to_string(n), std::to_string(naive.frames.size()),
                      bench::fmt(100 * naive.can_utilization, 1),
                      std::to_string(packed.frames.size()),
                      bench::fmt(100 * packed.can_utilization, 1)});
    report.row("a3_packing")
        .num_u("signals", n)
        .num_u("naive_frames", naive.frames.size())
        .num("naive_util_pct", 100 * naive.can_utilization)
        .num_u("packed_frames", packed.frames.size())
        .num("packed_util_pct", 100 * packed.can_utilization);
  }
  std::puts(
      "\nAblation verdict: packing cuts frame count ~4x and bus utilization\n"
      "~3x (each frame amortizes the 47+stuff-bit overhead over up to 64\n"
      "payload bits), which directly extends how many signals one CAN\n"
      "segment carries before saturating — the configuration-process lever\n"
      "the AUTOSAR system template exists to optimize.");
  return 0;
}
