// Experiment E9b — Fault-injection coverage of the rv/DEM/degradation
// pipeline (§4 error containment, measured).
//
// The standard brake_by_wire fault grid (src/fi/workloads) is expanded into
// a few hundred scenarios and scored: per fault class, how many scenarios
// were detected, contained to the fault's domain, missed, or spurious, and
// which detector layer saw them first. The run doubles as the CI smoke
// campaign: the process exits non-zero when the floor is violated (any
// spurious outcome, or detected+contained below kDetectedFloorPct), so a
// regression in any monitor plane fails the pipeline rather than shifting a
// number in a table nobody reads.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "fi/campaign.hpp"
#include "fi/workloads.hpp"

using namespace orte;

namespace {

// Floor enforced on exit: zero spurious outcomes and at least this share of
// faulty scenarios detected (contained or leaked). The architectural misses
// (fail-silent crashes, the TDMA-contained babbler) cap the achievable rate
// near 75 % on this grid; 60 % leaves headroom without tolerating the loss
// of a whole monitor plane.
constexpr std::size_t kDetectedFloorPct = 60;

}  // namespace

int main() {
  fi::CampaignConfig cfg;
  cfg.seed = 42;
  cfg.replicates = 50;  // 8 faults x 50 + baseline = 401 scenarios
  cfg.threads = std::clamp<std::size_t>(
      std::thread::hardware_concurrency(), 1, 8);

  fi::Campaign campaign([] { return fi::workloads::brake_by_wire(); }, cfg);
  fi::workloads::add_standard_faults(campaign);

  bench::print_title("E9b: fault-injection coverage (brake_by_wire, " +
                     std::to_string(campaign.scenario_count()) +
                     " scenarios, " + std::to_string(cfg.threads) +
                     " threads)");
  bench::WallClock clock;
  const fi::Report report = campaign.run();
  const double elapsed = clock.elapsed_ms();

  std::printf("%s", report.render().c_str());
  std::printf("wall clock: %.0f ms (%.2f ms/scenario)\n\n", elapsed,
              elapsed / static_cast<double>(report.scenarios.size()));

  bench::JsonReport json("e9_fi_coverage");
  for (const auto& [cls, cs] : report.matrix) {
    auto& row = json.row("coverage")
                    .str("class", cls)
                    .num_u("total", cs.total)
                    .num_u("detected", cs.detected)
                    .num_u("contained", cs.contained)
                    .num_u("leaked", cs.leaked)
                    .num_u("missed", cs.missed)
                    .num_u("spurious", cs.spurious);
    for (unsigned bit = 0; bit < fi::kDetectorCount; ++bit) {
      row.num_u(fi::detector_name(1u << bit), cs.by_detector[bit]);
    }
  }
  const std::size_t faulty = report.scenarios.size() - report.baselines;
  const std::size_t detected = report.count(fi::Outcome::kContained) +
                               report.count(fi::Outcome::kDetected);
  const std::size_t spurious = report.count(fi::Outcome::kSpurious) +
                               report.spurious_baselines;
  const double detected_pct =
      100.0 * static_cast<double>(detected) / static_cast<double>(faulty);
  json.row("summary")
      .num_u("scenarios", report.scenarios.size())
      .num_u("baselines", report.baselines)
      .num_u("spurious", spurious)
      .num_u("detected_or_contained", detected)
      .num("detected_pct", detected_pct)
      .num("wall_ms", elapsed);
  const auto latency_row = [&json](const char* stage, const sim::Stats& s) {
    auto& row = json.row("latency").str("stage", stage).num_u("samples",
                                                              s.count());
    if (s.count() > 0) {
      row.num("p50_us", s.percentile(50) / 1e3)
          .num("p90_us", s.percentile(90) / 1e3)
          .num("p99_us", s.percentile(99) / 1e3);
    }
  };
  latency_row("onset_to_violation", report.detection_latency);
  latency_row("onset_to_dtc", report.confirmation_latency);
  latency_row("onset_to_degraded", report.reaction_latency);

  const bool pass = spurious == 0 &&
                    detected * 100 >= faulty * kDetectedFloorPct;
  std::printf("floor: spurious == 0 && detected_pct >= %zu  ->  "
              "spurious=%zu detected_pct=%.1f  %s\n",
              kDetectedFloorPct, spurious, detected_pct,
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
