// Experiment E4 / Table 4 — Error containment under babbling-idiot faults
// (§4 composability requirements 3 and 4).
//
// Claim: an unprotected shared medium lets one faulty node destroy the
// communication of all others; a bus guardian (TTP) or TDMA injection
// control (NoC) contains the fault at its source.
//
// Workloads:
//  (a) 8-node TTP cluster, node 3 babbles for 2 s out of a 10 s run;
//      guardian on vs off. Metrics: collisions, membership losses, healthy
//      nodes' frames delivered.
//  (b) 8-core NoC, core 3 floods broadcasts; TDMA vs FCFS arbitration.
//      Metrics: victim message worst latency, victim throughput.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "noc/noc.hpp"
#include "sim/kernel.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "ttp/ttp_bus.hpp"

using namespace orte;
using sim::microseconds;
using sim::milliseconds;

namespace {

struct TtpRow {
  std::uint64_t collisions = 0;
  std::uint64_t membership_losses = 0;
  std::uint64_t healthy_rx = 0;
};

TtpRow run_ttp(bool guardian) {
  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  ttp::TtpBus bus(kernel, trace,
                  {.slot_len = microseconds(100), .bus_guardian = guardian});
  std::vector<ttp::TtpNode*> nodes;
  for (int i = 0; i < 8; ++i) {
    nodes.push_back(&bus.attach("n" + std::to_string(i)));
  }
  // Every node publishes application state each round.
  std::uint64_t healthy_rx = 0;
  nodes[0]->on_receive([&](const net::Frame& f) {
    if (f.source != 3) ++healthy_rx;  // deliveries from healthy nodes
  });
  for (int i = 1; i < 8; ++i) {
    ttp::TtpNode* n = nodes[static_cast<std::size_t>(i)];
    kernel.schedule_periodic(0, bus.round_len(), [n] {
      net::Frame f;
      f.name = n->name() + ".state";
      f.payload.assign(4, 0xAA);
      n->send(std::move(f));
    });
  }
  nodes[3]->babble(sim::seconds(4), sim::seconds(6));
  bus.start();
  kernel.run_until(sim::seconds(10));
  return {bus.collisions(), bus.membership_losses(), healthy_rx};
}

struct NocRow {
  double victim_worst_us = 0;
  std::uint64_t victim_rx = 0;
};

NocRow run_noc(noc::Arbitration arb) {
  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  noc::Noc chip(kernel, trace,
                {.arbitration = arb, .link_bandwidth_bps = 100'000'000,
                 .slot_len = microseconds(10)});
  std::vector<noc::NetworkInterface*> nis;
  for (int i = 0; i < 8; ++i) {
    nis.push_back(&chip.attach("core" + std::to_string(i)));
  }
  sim::Stats victim_latency;
  nis[1]->on_receive([&](const noc::NocMessage& m) {
    if (m.name == "victim") {
      victim_latency.add(sim::to_us(m.delivered_at - m.enqueued_at));
    }
  });
  // Core 0 sends useful traffic to core 1 every 500 us.
  kernel.schedule_periodic(0, microseconds(500), [&] {
    noc::NocMessage m;
    m.destination = 1;
    m.name = "victim";
    m.bytes = 64;
    nis[0]->send(m);
  });
  // Core 3 babbles: 100-byte broadcasts every 4 us (2x link rate) for 2 s.
  chip.inject_babble(3, 100, microseconds(4), sim::seconds(4),
                     sim::seconds(6));
  chip.start();
  kernel.run_until(sim::seconds(10));
  return {victim_latency.empty() ? 0.0 : victim_latency.max(),
          static_cast<std::uint64_t>(victim_latency.count())};
}

}  // namespace

int main() {
  bench::JsonReport report("e4_containment");
  bench::print_title("E4a / Table 4a: TTP cluster, node 3 babbles 4s-6s");
  bench::print_row({"guardian", "collisions", "membership loss",
                    "healthy frames rx"});
  bench::print_rule(4);
  for (bool guardian : {false, true}) {
    const auto r = run_ttp(guardian);
    bench::print_row({guardian ? "on" : "off", bench::fmt_u(r.collisions),
                      bench::fmt_u(r.membership_losses),
                      bench::fmt_u(r.healthy_rx)});
    report.row("e4a_ttp_babbling")
        .str("guardian", guardian ? "on" : "off")
        .num_u("collisions", r.collisions)
        .num_u("membership_losses", r.membership_losses)
        .num_u("healthy_rx", r.healthy_rx);
  }

  bench::print_title("E4b / Table 4b: 8-core NoC, core 3 floods 4s-6s");
  bench::print_row({"arbitration", "victim worst us", "victim delivered",
                    "expected"});
  bench::print_rule(4);
  for (auto arb : {noc::Arbitration::kFcfs, noc::Arbitration::kTdma}) {
    const auto r = run_noc(arb);
    bench::print_row(
        {arb == noc::Arbitration::kTdma ? "TDMA (guarded)" : "FCFS (shared)",
         bench::fmt(r.victim_worst_us, 2), bench::fmt_u(r.victim_rx),
         arb == noc::Arbitration::kTdma ? "~slot period" : "unbounded"});
    report.row("e4b_noc_flood")
        .str("arbitration",
             arb == noc::Arbitration::kTdma ? "tdma" : "fcfs")
        .num("victim_worst_us", r.victim_worst_us)
        .num_u("victim_rx", r.victim_rx);
  }
  std::puts(
      "\nExpected shape (paper S4 req. 3-4): guardian off => collisions wipe\n"
      "out healthy nodes' slots and membership; guardian on => zero\n"
      "collisions, zero membership loss, full delivery. FCFS NoC => victim\n"
      "latency explodes during the flood; TDMA NoC => latency bounded by the\n"
      "slot period, unchanged by the flood.");
  return 0;
}
