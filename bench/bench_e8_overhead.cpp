// Experiment E8 / Table 8 — Efficiency vs reliability (§1).
//
// Claim: "a scheduling policy that could prevent timing variability ...
// (timing isolation or resource reservation policies) ... will carry
// overhead, albeit potentially not prohibitive". This bench quantifies that
// overhead as lost admission capacity.
//
// Method: per utilization band, 200 random task sets (UUniFast, automotive
// period grid). Admission tests:
//   * FP        — plain preemptive fixed-priority RTA (no protection),
//   * FP+budget — same, with per-job budget enforcement overhead added to every
//                 WCET (timer arm + expiry handling, 2 x 20 us per job),
//   * TT table  — non-preemptive schedule-table synthesis with the same
//                 dispatch overhead (the §1 "careful planning" alternative).
// Also reported: the mean CPU inflation the enforcement overhead causes.
//
// Part 2 measures the *runtime-verification* overhead: the same generated
// system simulated with the rv monitor layer off vs on. Monitors are trace
// listeners, so they cost zero simulated time by construction — the table
// shows the host-side wall-clock price of live contract checking.
//
// CLI: --rv-only skips the admission table (part 1); --pipelines N runs
// E8b at a single pipeline count (CI uses "--rv-only --pipelines 64" to
// track the 256-monitor dispatch point per PR via BENCH_e8_overhead.json).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/rta.hpp"
#include "analysis/tt_schedule.hpp"
#include "bench_util.hpp"
#include "contracts/contract.hpp"
#include "sim/kernel.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"
#include "vfb/model.hpp"
#include "vfb/rte.hpp"
#include "vfb/system.hpp"

using namespace orte;
using sim::milliseconds;
using sim::microseconds;

namespace {

constexpr sim::Duration kEnforcementOverhead = 2 * microseconds(20);

struct BandRow {
  double fp_admit = 0;
  double budget_admit = 0;
  double tt_admit = 0;
  double mean_inflation = 0;  // percentage points of utilization
};

BandRow run_band(double u, int sets, std::uint64_t seed0) {
  BandRow row;
  int fp = 0, budget = 0, tt = 0;
  double inflation_sum = 0;
  const std::vector<sim::Duration> periods{
      milliseconds(5), milliseconds(10), milliseconds(20), milliseconds(40),
      milliseconds(50), milliseconds(100)};
  for (int s = 0; s < sets; ++s) {
    sim::Rng rng(seed0 + static_cast<std::uint64_t>(s));
    const std::size_t n = 4 + rng.index(8);
    const auto shares = rng.uunifast(n, u);
    std::vector<analysis::AnalysisTask> model;
    for (std::size_t i = 0; i < n; ++i) {
      analysis::AnalysisTask t;
      t.name = "t" + std::to_string(i);
      t.period = periods[rng.index(periods.size())];
      t.wcet = std::max<sim::Duration>(
          microseconds(10), static_cast<sim::Duration>(
                                static_cast<double>(t.period) * shares[i]));
      model.push_back(t);
    }
    analysis::assign_deadline_monotonic(model);
    if (analysis::analyze(model).schedulable) ++fp;

    auto inflated = model;
    double inflation = 0;
    for (auto& t : inflated) {
      t.wcet += kEnforcementOverhead;
      inflation += static_cast<double>(kEnforcementOverhead) /
                   static_cast<double>(t.period);
    }
    inflation_sum += 100.0 * inflation;
    if (analysis::analyze(inflated).schedulable) ++budget;

    std::vector<analysis::TtJobSpec> specs;
    for (const auto& t : inflated) {
      specs.push_back({.task = t.name, .period = t.period, .wcet = t.wcet});
    }
    if (analysis::synthesize_schedule(specs).has_value()) ++tt;
  }
  row.fp_admit = 100.0 * fp / sets;
  row.budget_admit = 100.0 * budget / sets;
  row.tt_admit = 100.0 * tt / sets;
  row.mean_inflation = inflation_sum / sets;
  return row;
}

// --- Part 2: runtime-verification monitor overhead ---------------------------

/// Pipelines are sharded across ECUs at kPipelinesPerEcu per node (sensor i
/// and filter i stay co-located so every connector routes locally). 64
/// pipelines put 128 tasks on an ECU — under the model validator's V5
/// per-ECU task ceiling — at U ~ 0.26 with 2 us runnables, so the clean
/// pipeline stays schedulable at every scale and the deadline monitors see
/// zero real misses. All ECUs feed ONE shared trace and one MonitorRegistry:
/// the dispatch path still sees the full record rate.
constexpr int kPipelinesPerEcu = 64;

/// Sensor->controller pipelines: `sensors` periodic producers (1 ms period,
/// contracted) each feeding one data-received consumer.
vfb::Composition make_pipeline(int sensors) {
  vfb::Composition model;
  vfb::PortInterface ival;
  ival.name = "IVal";
  ival.elements.push_back(vfb::DataElement{"v", 32, 0, false});
  model.add_interface(ival);

  const sim::Duration exec = microseconds(2);

  vfb::Runnable produce;
  produce.name = "produce";
  produce.trigger = vfb::RunnableTrigger::timing(sim::milliseconds(1));
  produce.execution_time = [exec] { return exec; };
  produce.accesses.push_back({"out", "v", vfb::DataAccessKind::kExplicitWrite});
  produce.behavior = [](vfb::RunnableContext& ctx) { ctx.write("out", "v", 1); };
  model.add_type({"Sensor",
                  {vfb::Port{"out", "IVal", vfb::PortDirection::kProvided}},
                  {produce}});

  vfb::Runnable consume;
  consume.name = "consume";
  consume.trigger = vfb::RunnableTrigger::data_received("in", "v");
  consume.execution_time = [exec] { return exec; };
  consume.accesses.push_back({"in", "v", vfb::DataAccessKind::kExplicitRead});
  consume.behavior = [](vfb::RunnableContext& ctx) { (void)ctx.read("in", "v"); };
  model.add_type({"Filter",
                  {vfb::Port{"in", "IVal", vfb::PortDirection::kRequired}},
                  {consume}});

  for (int i = 0; i < sensors; ++i) {
    const std::string s = "sensor" + std::to_string(i);
    const std::string f = "filter" + std::to_string(i);
    model.add_instance({s, "Sensor"});
    model.add_instance({f, "Filter"});
    model.add_connector({s, "out", f, "in"});
    contracts::Contract c;
    c.name = "C_" + s;
    c.guarantees.push_back(
        {.flow = "out.v", .timing = {.period = sim::milliseconds(1),
                                     .jitter = sim::milliseconds(1),
                                     .latency = sim::milliseconds(5)}});
    model.bind_contract(s, c);
    contracts::Contract cf;
    cf.name = "C_" + f;
    cf.assumptions.push_back(
        {.flow = "in.v", .timing = {.latency = sim::milliseconds(5)}});
    model.bind_contract(f, cf);
  }
  return model;
}

struct RvRun {
  double wall_ms = 0;
  std::size_t monitors = 0;
  std::uint64_t routed = 0;
  std::size_t violations = 0;
};

RvRun run_monitored(int sensors, bool rv_on, sim::Duration horizon) {
  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  const vfb::Composition model = make_pipeline(sensors);
  vfb::DeploymentPlan plan;
  for (int i = 0; i < sensors; ++i) {
    const std::string ecu = "ecu" + std::to_string(i / kPipelinesPerEcu);
    plan.instances["sensor" + std::to_string(i)] = {.ecu = ecu};
    plan.instances["filter" + std::to_string(i)] = {.ecu = ecu};
  }
  plan.runtime_verification = rv_on;
  vfb::System sys(kernel, trace, model, plan);
  const bench::WallClock clock;
  sys.run_for(horizon);
  RvRun out;
  out.wall_ms = clock.elapsed_ms();
  if (sys.monitors() != nullptr) {
    out.monitors = sys.monitors()->monitor_count();
    out.routed = sys.monitors()->records_routed();
    out.violations = sys.monitors()->health().total();
  }
  return out;
}

void run_rv_overhead(bench::JsonReport& report,
                     const std::vector<int>& pipeline_counts) {
  bench::print_title(
      "E8b: runtime-verification overhead (10 simulated s, 1 kHz pipelines)");
  bench::print_row({"pipelines", "monitors", "rv off ms", "rv on ms",
                    "overhead %", "ns/record"});
  bench::print_rule(6);
  const auto horizon = sim::seconds(10);
  for (int sensors : pipeline_counts) {
    // Warm-up + best-of-3 to tame allocator/cache noise.
    double off = 1e300, on = 1e300;
    RvRun last;
    for (int rep = 0; rep < 3; ++rep) {
      off = std::min(off, run_monitored(sensors, false, horizon).wall_ms);
      last = run_monitored(sensors, true, horizon);
      on = std::min(on, last.wall_ms);
    }
    const double overhead = off > 0 ? 100.0 * (on - off) / off : 0.0;
    const double per_record =
        last.routed > 0 ? 1e6 * (on - off) / static_cast<double>(last.routed)
                        : 0.0;
    bench::print_row({std::to_string(sensors), std::to_string(last.monitors),
                      bench::fmt(off, 1), bench::fmt(on, 1),
                      bench::fmt(overhead, 1), bench::fmt(per_record, 0)});
    if (last.violations != 0) {
      std::printf("  (unexpected: %zu violations in clean pipeline)\n",
                  last.violations);
    }
    report.row("e8b_rv_overhead")
        .num_u("pipelines", static_cast<std::uint64_t>(sensors))
        .num_u("monitors", last.monitors)
        .num("rv_off_ms", off)
        .num("rv_on_ms", on)
        .num("overhead_pct", overhead)
        .num("ns_per_record", per_record)
        .num_u("records_routed", last.routed)
        .num_u("violations", last.violations);
  }
  std::puts(
      "\nMonitors run in trace-listener context: simulated time and event\n"
      "order are bit-identical with rv on or off; the overhead above is\n"
      "host-side wall clock only. Dispatch is one hash lookup on interned\n"
      "(category, subject) IDs, so ns/record stays roughly flat as monitor\n"
      "count grows (pipelines shard across ECUs at 64 per node; all nodes\n"
      "feed one trace, so the registry sees the full record rate).");
}

void run_admission(bench::JsonReport& report) {
  bench::print_title(
      "E8 / Table 8: admission rate per policy (200 random sets per band)");
  bench::print_row({"utilization band", "FP admit %", "FP+budget %",
                    "TT table %", "inflation pp"});
  bench::print_rule(5);
  std::uint64_t seed = 9000;
  for (double u : {0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    const auto r = run_band(u, 200, seed);
    seed += 1000;
    bench::print_row({"U = " + bench::fmt(u, 2), bench::fmt(r.fp_admit, 1),
                      bench::fmt(r.budget_admit, 1), bench::fmt(r.tt_admit, 1),
                      bench::fmt(r.mean_inflation, 2)});
    report.row("e8_admission")
        .num("utilization", u)
        .num("fp_admit_pct", r.fp_admit)
        .num("fp_budget_admit_pct", r.budget_admit)
        .num("tt_admit_pct", r.tt_admit)
        .num("mean_inflation_pp", r.mean_inflation);
  }
  std::puts(
      "\nExpected shape (paper S1): budget enforcement costs a few\n"
      "utilization percentage points — visible as an admission gap that\n"
      "opens only near saturation (U >= 0.8), i.e. 'overhead, albeit not\n"
      "prohibitive'. The non-preemptive TT table pays more (blocking), the\n"
      "price of its perfect timing isolation; at moderate loads all three\n"
      "admit everything.");
}

}  // namespace

int main(int argc, char** argv) {
  bool rv_only = false;
  std::vector<int> pipeline_counts{1, 4, 16, 64, 128, 256};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rv-only") == 0) {
      rv_only = true;
    } else if (std::strcmp(argv[i], "--pipelines") == 0 && i + 1 < argc) {
      pipeline_counts = {std::atoi(argv[++i])};
    } else {
      std::fprintf(stderr,
                   "usage: %s [--rv-only] [--pipelines N]\n", argv[0]);
      return 2;
    }
  }
  bench::JsonReport report("e8_overhead");
  if (!rv_only) run_admission(report);
  run_rv_overhead(report, pipeline_counts);
  return 0;
}
