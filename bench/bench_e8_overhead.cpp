// Experiment E8 / Table 8 — Efficiency vs reliability (§1).
//
// Claim: "a scheduling policy that could prevent timing variability ...
// (timing isolation or resource reservation policies) ... will carry
// overhead, albeit potentially not prohibitive". This bench quantifies that
// overhead as lost admission capacity.
//
// Method: per utilization band, 200 random task sets (UUniFast, automotive
// period grid). Admission tests:
//   * FP        — plain preemptive fixed-priority RTA (no protection),
//   * FP+budget — same, with per-job budget enforcement overhead added to every
//                 WCET (timer arm + expiry handling, 2 x 20 us per job),
//   * TT table  — non-preemptive schedule-table synthesis with the same
//                 dispatch overhead (the §1 "careful planning" alternative).
// Also reported: the mean CPU inflation the enforcement overhead causes.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/rta.hpp"
#include "analysis/tt_schedule.hpp"
#include "bench_util.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

using namespace orte;
using sim::milliseconds;
using sim::microseconds;

namespace {

constexpr sim::Duration kEnforcementOverhead = 2 * microseconds(20);

struct BandRow {
  double fp_admit = 0;
  double budget_admit = 0;
  double tt_admit = 0;
  double mean_inflation = 0;  // percentage points of utilization
};

BandRow run_band(double u, int sets, std::uint64_t seed0) {
  BandRow row;
  int fp = 0, budget = 0, tt = 0;
  double inflation_sum = 0;
  const std::vector<sim::Duration> periods{
      milliseconds(5), milliseconds(10), milliseconds(20), milliseconds(40),
      milliseconds(50), milliseconds(100)};
  for (int s = 0; s < sets; ++s) {
    sim::Rng rng(seed0 + static_cast<std::uint64_t>(s));
    const std::size_t n = 4 + rng.index(8);
    const auto shares = rng.uunifast(n, u);
    std::vector<analysis::AnalysisTask> model;
    for (std::size_t i = 0; i < n; ++i) {
      analysis::AnalysisTask t;
      t.name = "t" + std::to_string(i);
      t.period = periods[rng.index(periods.size())];
      t.wcet = std::max<sim::Duration>(
          microseconds(10), static_cast<sim::Duration>(
                                static_cast<double>(t.period) * shares[i]));
      model.push_back(t);
    }
    analysis::assign_deadline_monotonic(model);
    if (analysis::analyze(model).schedulable) ++fp;

    auto inflated = model;
    double inflation = 0;
    for (auto& t : inflated) {
      t.wcet += kEnforcementOverhead;
      inflation += static_cast<double>(kEnforcementOverhead) /
                   static_cast<double>(t.period);
    }
    inflation_sum += 100.0 * inflation;
    if (analysis::analyze(inflated).schedulable) ++budget;

    std::vector<analysis::TtJobSpec> specs;
    for (const auto& t : inflated) {
      specs.push_back({.task = t.name, .period = t.period, .wcet = t.wcet});
    }
    if (analysis::synthesize_schedule(specs).has_value()) ++tt;
  }
  row.fp_admit = 100.0 * fp / sets;
  row.budget_admit = 100.0 * budget / sets;
  row.tt_admit = 100.0 * tt / sets;
  row.mean_inflation = inflation_sum / sets;
  return row;
}

}  // namespace

int main() {
  bench::print_title(
      "E8 / Table 8: admission rate per policy (200 random sets per band)");
  bench::print_row({"utilization band", "FP admit %", "FP+budget %",
                    "TT table %", "inflation pp"});
  bench::print_rule(5);
  std::uint64_t seed = 9000;
  for (double u : {0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    const auto r = run_band(u, 200, seed);
    seed += 1000;
    bench::print_row({"U = " + bench::fmt(u, 2), bench::fmt(r.fp_admit, 1),
                      bench::fmt(r.budget_admit, 1), bench::fmt(r.tt_admit, 1),
                      bench::fmt(r.mean_inflation, 2)});
  }
  std::puts(
      "\nExpected shape (paper S1): budget enforcement costs a few\n"
      "utilization percentage points — visible as an admission gap that\n"
      "opens only near saturation (U >= 0.8), i.e. 'overhead, albeit not\n"
      "prohibitive'. The non-preemptive TT table pays more (blocking), the\n"
      "price of its perfect timing isolation; at moderate loads all three\n"
      "admit everything.");
  return 0;
}
