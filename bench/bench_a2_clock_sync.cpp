// Ablation A2 — the global time base under the TT architecture (§4).
//
// Every time-triggered mechanism in this repository (FlexRay static segment,
// TTP TDMA, NoC slots, schedule tables) presumes clocks of bounded
// precision. This ablation quantifies that prerequisite: achieved cluster
// precision vs resynchronization interval and crystal quality, the
// free-running baseline, and FTA's tolerance of a byzantine clock.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"
#include "ttp/clock_sync.hpp"

using namespace orte;
using sim::microseconds;
using sim::milliseconds;

namespace {

double run_case(bool sync, double drift_ppm, sim::Duration resync,
                bool byzantine) {
  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  ttp::ClockSyncCluster cluster(kernel, trace,
                                {.nodes = 5,
                                 .max_drift_ppm = drift_ppm,
                                 .resync_interval = resync,
                                 .fault_tolerance = 1,
                                 .enable_sync = sync,
                                 .seed = 17});
  if (byzantine) {
    cluster.inject_byzantine(2, milliseconds(5), sim::seconds(1));
  }
  cluster.start();
  kernel.run_until(sim::seconds(10));
  if (!byzantine) return sim::to_us(cluster.worst_precision());
  // Byzantine case: report the healthy nodes' mutual precision.
  sim::Time lo = INT64_MAX, hi = INT64_MIN;
  for (std::size_t i = 0; i < 5; ++i) {
    if (i == 2) continue;
    lo = std::min(lo, cluster.local_time(i));
    hi = std::max(hi, cluster.local_time(i));
  }
  return sim::to_us(hi - lo);
}

}  // namespace

int main() {
  bench::print_title(
      "A2: achieved clock precision (us) — 5 nodes, 10 s, FTA k=1");
  bench::print_row({"configuration", "precision us", "theory 2*rho*R+eps"});
  bench::print_rule(3);
  struct Case {
    const char* label;
    bool sync;
    double ppm;
    sim::Duration resync;
  };
  const Case cases[] = {
      {"free-running, 100 ppm", false, 100, milliseconds(10)},
      {"sync @ 100 ms, 100 ppm", true, 100, milliseconds(100)},
      {"sync @ 10 ms, 100 ppm", true, 100, milliseconds(10)},
      {"sync @ 1 ms, 100 ppm", true, 100, milliseconds(1)},
      {"sync @ 10 ms, 20 ppm", true, 20, milliseconds(10)},
  };
  bench::JsonReport report("a2_clock_sync");
  for (const auto& c : cases) {
    const double theory =
        c.sync ? 2.0 * c.ppm * 1e-6 * sim::to_us(c.resync) + 1.0 : -1.0;
    const double precision = run_case(c.sync, c.ppm, c.resync, false);
    bench::print_row({c.label, bench::fmt(precision, 2),
                      theory < 0 ? "unbounded" : bench::fmt(theory, 2)});
    report.row("a2_precision")
        .str("configuration", c.label)
        .num("precision_us", precision)
        .num("theory_us", theory);
  }
  bench::print_rule(3);
  const double byz = run_case(true, 100, milliseconds(10), true);
  bench::print_row({"sync @ 10 ms + byzantine node", bench::fmt(byz, 2),
                    "healthy subset"});
  report.row("a2_precision")
      .str("configuration", "sync @ 10 ms + byzantine node")
      .num("precision_us", byz)
      .num("theory_us", -1.0);
  std::puts(
      "\nAblation verdict: synchronized precision tracks the 2*rho*R + eps\n"
      "envelope (tighter resync or better crystals buy proportionally finer\n"
      "precision), free-running clocks drift out of any slot guard within\n"
      "seconds, and the fault-tolerant average keeps the healthy majority\n"
      "synchronized even against a 5 ms byzantine clock — the foundation the\n"
      "paper's time-triggered isolation arguments stand on.");
  return 0;
}
