// Experiment E3 / Table 3 — Composability & extensibility (§1, §4 req. 2:
// "the integration of an IP-core must not invalidate the established
// correctness of the prior services").
//
// Claim: adding new software components to a deployed system perturbs the
// latencies of the existing application under event-triggered integration
// (shared CAN), but not under time-triggered integration (FlexRay static
// slots).
//
// Workload: base control path (sensor -> controller on two ECUs). Then k =
// 0..6 additional SWC pairs are integrated on two *other* ECUs, each
// exchanging a 3 ms periodic signal over the same backbone. We report the
// base path's worst-case latency as a function of k.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "sim/kernel.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "vfb/model.hpp"
#include "vfb/rte.hpp"
#include "vfb/system.hpp"

using namespace orte;
using sim::microseconds;
using sim::milliseconds;

namespace {

struct Scenario {
  vfb::Composition comp;
  sim::Stats base_e2e_ms;

  explicit Scenario(int extra_pairs) {
    vfb::PortInterface ival;
    ival.name = "IVal";
    ival.elements.push_back(vfb::DataElement{"val", 64, 0, false});
    comp.add_interface(ival);

    // Base application: 10 ms sensor on ecu_a -> sink on ecu_b.
    vfb::Runnable sense;
    sense.name = "sense";
    sense.trigger = vfb::RunnableTrigger::timing(milliseconds(10));
    sense.execution_time = [] { return microseconds(200); };
    sense.accesses.push_back({"out", "val", vfb::DataAccessKind::kExplicitWrite});
    sense.behavior = [](vfb::RunnableContext& ctx) {
      ctx.write("out", "val", static_cast<std::uint64_t>(ctx.now()));
    };
    comp.add_type({"BaseProducer",
                   {vfb::Port{"out", "IVal", vfb::PortDirection::kProvided}},
                   {sense}});

    vfb::Runnable sink;
    sink.name = "sink";
    sink.trigger = vfb::RunnableTrigger::data_received("in", "val");
    sink.execution_time = [] { return microseconds(100); };
    sink.accesses.push_back({"in", "val", vfb::DataAccessKind::kExplicitRead});
    sink.behavior = [this](vfb::RunnableContext& ctx) {
      const auto stamped = static_cast<sim::Time>(ctx.read("in", "val"));
      base_e2e_ms.add(sim::to_ms(ctx.now() - stamped));
    };
    comp.add_type({"BaseConsumer",
                   {vfb::Port{"in", "IVal", vfb::PortDirection::kRequired}},
                   {sink}});

    comp.add_instance({"base_p", "BaseProducer"});
    comp.add_instance({"base_c", "BaseConsumer"});
    comp.add_connector({"base_p", "out", "base_c", "in"});

    // Added components: faster (3 ms) senders — on CAN their frames win
    // arbitration over the base signal (rate-monotonic id assignment).
    vfb::Runnable fast;
    fast.name = "fast";
    fast.trigger = vfb::RunnableTrigger::timing(milliseconds(3));
    fast.execution_time = [] { return microseconds(150); };
    fast.accesses.push_back({"out", "val", vfb::DataAccessKind::kExplicitWrite});
    fast.behavior = [](vfb::RunnableContext& ctx) {
      ctx.write("out", "val", 1);
    };
    comp.add_type({"AddedProducer",
                   {vfb::Port{"out", "IVal", vfb::PortDirection::kProvided}},
                   {fast}});
    vfb::Runnable drain;
    drain.name = "drain";
    drain.trigger = vfb::RunnableTrigger::data_received("in", "val");
    drain.execution_time = [] { return microseconds(50); };
    drain.accesses.push_back({"in", "val", vfb::DataAccessKind::kExplicitRead});
    drain.behavior = [](vfb::RunnableContext& ctx) { ctx.read("in", "val"); };
    comp.add_type({"AddedConsumer",
                   {vfb::Port{"in", "IVal", vfb::PortDirection::kRequired}},
                   {drain}});
    for (int i = 0; i < extra_pairs; ++i) {
      const std::string p = "add_p" + std::to_string(i);
      const std::string c = "add_c" + std::to_string(i);
      comp.add_instance({p, "AddedProducer"});
      comp.add_instance({c, "AddedConsumer"});
      comp.add_connector({p, "out", c, "in"});
    }
  }

  vfb::DeploymentPlan plan(vfb::BusKind bus, int extra_pairs) const {
    vfb::DeploymentPlan p;
    p.bus = bus;
    p.instances["base_p"] = {.ecu = "ecu_a"};
    p.instances["base_c"] = {.ecu = "ecu_b"};
    for (int i = 0; i < extra_pairs; ++i) {
      p.instances["add_p" + std::to_string(i)] = {.ecu = "ecu_x"};
      p.instances["add_c" + std::to_string(i)] = {.ecu = "ecu_y"};
    }
    return p;
  }
};

double worst_latency(vfb::BusKind bus, int extra_pairs) {
  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  Scenario scenario(extra_pairs);
  vfb::System sys(kernel, trace, scenario.comp,
                  scenario.plan(bus, extra_pairs));
  sys.run_for(sim::seconds(20));
  return scenario.base_e2e_ms.max();
}

}  // namespace

int main() {
  bench::JsonReport report("e3_extensibility");
  bench::print_title(
      "E3 / Table 3: base-app worst latency when k SWC pairs are added");
  bench::print_row({"added SWC pairs k", "CAN worst ms", "CAN drift %",
                    "FlexRay worst ms", "FR drift %"});
  bench::print_rule(5);
  const double can0 = worst_latency(vfb::BusKind::kCan, 0);
  const double fr0 = worst_latency(vfb::BusKind::kFlexRay, 0);
  for (int k : {0, 1, 2, 4, 6}) {
    const double can = worst_latency(vfb::BusKind::kCan, k);
    const double fr = worst_latency(vfb::BusKind::kFlexRay, k);
    bench::print_row({std::to_string(k), bench::fmt(can, 3),
                      bench::fmt(100 * (can - can0) / can0, 1),
                      bench::fmt(fr, 3),
                      bench::fmt(100 * (fr - fr0) / fr0, 1)});
    report.row("e3_base_latency_drift")
        .num_u("added_pairs", static_cast<std::uint64_t>(k))
        .num("can_worst_ms", can)
        .num("can_drift_pct", 100 * (can - can0) / can0)
        .num("flexray_worst_ms", fr)
        .num("flexray_drift_pct", 100 * (fr - fr0) / fr0);
  }
  std::puts(
      "\nExpected shape (paper S1, S4 composability req. 2): the base\n"
      "application's worst-case latency drifts upward with every added\n"
      "component on CAN (their higher-rate frames win arbitration), while on\n"
      "FlexRay the base static slot is untouchable — drift stays ~0% (slot\n"
      "position may shift once at reconfiguration, then stays constant).");
  return 0;
}
