// Experiment E13 — Static fault-detectability vs measured campaign outcomes
// (rules V13-V15, cross-checked against E9b).
//
// Phase 1 runs the static detectability analysis over the brake_by_wire
// workload for the standard fault grid plus the fail-silent pedal crash and
// prints the per-fault verdict (perturbs / detectable / contained /
// containment gap, plus the observing monitor planes).
//
// Phase 2 runs the SAME fault list through the fi campaign and asserts the
// static verdicts predict every measured outcome: predicted-undetectable
// faults score missed in every replicate, predicted-detectable ones are
// detected, a predicted containment holds, a predicted gap leaks.
//
// Phase 3 flips DeploymentPlan::alive_supervision — the V13/V15 fix — and
// asserts the crash is now detected by the watchdog (detector "alive"),
// contained to the pedal, with zero spurious expiries.
//
// The process exits non-zero on any static/dynamic disagreement, a missed
// supervised crash, or any spurious outcome, so the analysis can never
// silently drift away from what the campaign measures.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "fi/campaign.hpp"
#include "fi/fault.hpp"
#include "fi/workloads.hpp"
#include "validation/detectability.hpp"

using namespace orte;

namespace {

/// Measured outcome counts of one fault plane, aggregated over replicates.
struct Measured {
  std::size_t detected = 0;  ///< kDetected (leaked) outcomes.
  std::size_t contained = 0;
  std::size_t missed = 0;
  std::size_t spurious = 0;
  unsigned detectors = 0;
};

std::vector<Measured> aggregate(const fi::Report& report,
                                std::size_t faults, std::size_t replicates) {
  std::vector<Measured> out(faults);
  for (const auto& s : report.scenarios) {
    if (s.baseline) continue;
    Measured& m = out.at((s.index - 1) / replicates);
    m.detectors |= s.detectors;
    switch (s.outcome) {
      case fi::Outcome::kDetected:
        ++m.detected;
        break;
      case fi::Outcome::kContained:
        ++m.contained;
        break;
      case fi::Outcome::kMissed:
        ++m.missed;
        break;
      case fi::Outcome::kSpurious:
        ++m.spurious;
        break;
      case fi::Outcome::kNominal:
        break;
    }
  }
  return out;
}

/// Zero disagreements is the acceptance bar: every replicate's outcome must
/// land where the static verdict says it can.
bool agrees(const validation::FaultVerdict& v, const Measured& m,
            std::size_t replicates) {
  if (m.spurious > 0) return false;
  if (!v.detectable) return m.missed == replicates;
  if (m.missed > 0) return false;
  if (v.contained) return m.contained == replicates;
  if (v.containment_gap) return m.detected == replicates;
  return true;  // Detectable with mixed containment: either outcome is fine.
}

}  // namespace

int main() {
  const std::size_t threads =
      std::clamp<std::size_t>(std::thread::hardware_concurrency(), 1, 8);

  // --- Phase 1: static verdicts over the grid + the fail-silent crash --------
  const fi::ModelBundle bundle = fi::workloads::brake_by_wire();
  std::vector<fi::Fault> faults = fi::workloads::standard_faults();
  faults.push_back(
      fi::Fault{.kind = fi::FaultKind::kTaskCrash, .target = "pedal"});

  const validation::DetectabilityAnalysis analysis =
      validation::analyze_detectability(bundle.model, bundle.plan,
                                        bundle.model.bound_contracts(),
                                        faults);

  bench::print_title("E13: static fault detectability (brake_by_wire, " +
                     std::to_string(analysis.monitors.size()) +
                     " monitor planes, " + std::to_string(faults.size()) +
                     " fault planes)");
  for (const auto& v : analysis.verdicts) {
    std::string planes;
    for (const auto& o : v.observers) {
      if (!planes.empty()) planes += ", ";
      planes += to_string(o.kind);
      planes += "->";
      planes += o.blame;
    }
    std::printf("  %-22s %s%s\n", v.label.c_str(),
                !v.perturbs      ? "inert (structurally contained)"
                : !v.detectable  ? "UNDETECTABLE (V13)"
                : v.containment_gap
                    ? "detectable, containment gap (V14)"
                : v.contained ? "detectable & contained"
                              : "detectable",
                planes.empty() ? "" : ("  [" + planes + "]").c_str());
  }

  // --- Phase 2: the campaign measures the same fault list --------------------
  fi::CampaignConfig cfg;
  cfg.seed = 42;
  cfg.replicates = 10;
  cfg.threads = threads;
  fi::Campaign campaign([] { return fi::workloads::brake_by_wire(); }, cfg);
  for (const auto& fault : faults) campaign.add_fault(fault);

  bench::WallClock clock;
  const fi::Report report = campaign.run();
  const std::vector<Measured> measured =
      aggregate(report, faults.size(), cfg.replicates);

  bench::JsonReport json("e13_detectability");
  std::size_t disagreements = 0;
  std::size_t spurious = report.spurious_baselines;
  std::printf("\ncross-check vs campaign (%zu scenarios):\n",
              report.scenarios.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const auto& v = analysis.verdicts[i];
    const Measured& m = measured[i];
    const bool ok = agrees(v, m, cfg.replicates);
    disagreements += ok ? 0 : 1;
    spurious += m.spurious;
    std::printf("  %-22s predicted=%-12s measured: contained=%zu "
                "detected=%zu missed=%zu spurious=%zu  %s\n",
                v.label.c_str(),
                !v.detectable       ? "missed"
                : v.contained       ? "contained"
                : v.containment_gap ? "leaked"
                                    : "detected",
                m.contained, m.detected, m.missed, m.spurious,
                ok ? "AGREE" : "DISAGREE");
    json.row("faults")
        .str("label", v.label)
        .num_u("predicted_perturbs", v.perturbs ? 1 : 0)
        .num_u("predicted_detectable", v.detectable ? 1 : 0)
        .num_u("predicted_contained", v.contained ? 1 : 0)
        .num_u("predicted_gap", v.containment_gap ? 1 : 0)
        .num_u("observers", v.observers.size())
        .num_u("campaign_contained", m.contained)
        .num_u("campaign_detected", m.detected)
        .num_u("campaign_missed", m.missed)
        .num_u("campaign_spurious", m.spurious)
        .num_u("agree", ok ? 1 : 0);
  }

  // --- Phase 3: alive supervision closes the fail-silence gap ----------------
  fi::Campaign fixed([] { return fi::workloads::brake_by_wire(true); }, cfg);
  fixed.add_fault(
      fi::Fault{.kind = fi::FaultKind::kTaskCrash, .target = "pedal"});
  const fi::Report fixed_report = fixed.run();
  const std::vector<Measured> fixed_measured =
      aggregate(fixed_report, 1, cfg.replicates);
  const Measured& crash = fixed_measured.front();
  const bool crash_detected =
      crash.contained == cfg.replicates && (crash.detectors & fi::kDetAlive);
  spurious += fixed_report.spurious_baselines + crash.spurious;
  const double elapsed = clock.elapsed_ms();
  std::printf("\nwith alive supervision: crash contained=%zu/%zu "
              "alive-detector=%s spurious=%zu\n",
              crash.contained, cfg.replicates,
              (crash.detectors & fi::kDetAlive) ? "yes" : "no",
              fixed_report.spurious_baselines + crash.spurious);

  json.row("summary")
      .num_u("monitor_planes", analysis.monitors.size())
      .num_u("fault_planes", faults.size())
      .num_u("disagreements", disagreements)
      .num_u("spurious", spurious)
      .num_u("crash_detected_supervised", crash_detected ? 1 : 0)
      .num("wall_ms", elapsed);

  const bool pass = disagreements == 0 && spurious == 0 && crash_detected;
  std::printf("gate: disagreements == 0 && spurious == 0 && "
              "supervised crash detected  ->  %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
