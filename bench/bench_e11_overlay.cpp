// Experiment E11 / Table 10 — Legacy CAN software on the integrated
// platform (§4: "the APIs visible to the application software conform with
// the requirements of existing legacy applications (e.g., a CAN overlay
// network) and support the seamless integration of this existing legacy
// software").
//
// Workload: a legacy body-domain CAN workload (10 periodic frames, ids
// 0x100..0x109, 10..100 ms periods, 2-8 bytes) replayed identically on
//  (a) a real CAN 500k bus (the legacy reference),
//  (b) the CAN overlay over the TDMA NoC (the integrated platform).
// Metrics: delivery ratio, priority-order inversions, latency distribution.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "can/can_bus.hpp"
#include "noc/can_overlay.hpp"
#include "noc/noc.hpp"
#include "sim/kernel.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

using namespace orte;
using sim::microseconds;
using sim::milliseconds;

namespace {

struct LegacyFrame {
  std::uint32_t id;
  std::size_t bytes;
  sim::Duration period;
};

std::vector<LegacyFrame> workload() {
  std::vector<LegacyFrame> w;
  for (int i = 0; i < 10; ++i) {
    w.push_back({static_cast<std::uint32_t>(0x100 + i),
                 static_cast<std::size_t>(2 + (i * 3) % 7),
                 milliseconds(10 * (1 + i))});
  }
  return w;
}

struct Row {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t inversions = 0;
  double mean_us = 0, worst_us = 0;
};

Row run_reference() {
  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  can::CanBus bus(kernel, trace, {.bitrate_bps = 500'000});
  auto& tx = bus.attach();
  auto& rx = bus.attach();
  Row row;
  sim::Stats lat;
  // Inversion metric mirrors CanOverlay's adjacent-pair check.
  bool have_last = false;
  std::uint32_t last_id = 0;
  sim::Time last_sent = 0;
  rx.on_receive([&](const net::Frame& f) {
    ++row.received;
    lat.add(sim::to_us(kernel.now() - f.enqueued_at));
    if (have_last && f.id < last_id && f.enqueued_at <= last_sent) {
      ++row.inversions;
    }
    have_last = true;
    last_id = f.id;
    last_sent = f.enqueued_at;
  });
  for (const auto& lf : workload()) {
    kernel.schedule_periodic(0, lf.period, [&kernel, &tx, &row, lf] {
      net::Frame f;
      f.id = lf.id;
      f.name = "legacy";
      f.payload.assign(lf.bytes, 0x42);
      f.enqueued_at = kernel.now();
      ++row.sent;
      tx.send(std::move(f));
    });
  }
  kernel.run_until(sim::seconds(20));
  row.mean_us = lat.mean();
  row.worst_us = lat.max();
  return row;
}

Row run_overlay() {
  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  noc::Noc chip(kernel, trace,
                {.arbitration = noc::Arbitration::kTdma,
                 .link_bandwidth_bps = 100'000'000,
                 .slot_len = microseconds(10)});
  auto& body = chip.attach("body");
  auto& gateway = chip.attach("gateway");
  noc::CanOverlay tx(body);
  noc::CanOverlay rx(gateway);
  Row row;
  sim::Stats lat;
  rx.on_any([&](const noc::OverlayFrame& f) {
    ++row.received;
    lat.add(sim::to_us(f.received_at - f.sent_at));
  });
  for (const auto& lf : workload()) {
    kernel.schedule_periodic(0, lf.period, [&kernel, &tx, &row, lf] {
      (void)kernel;
      std::vector<std::uint8_t> data(lf.bytes, 0x42);
      ++row.sent;
      tx.send(lf.id, std::move(data));
    });
  }
  chip.start();
  kernel.run_until(sim::seconds(20));
  row.inversions = rx.order_inversions();
  row.mean_us = lat.mean();
  row.worst_us = lat.max();
  return row;
}

}  // namespace

int main() {
  bench::print_title(
      "E11 / Table 10: legacy CAN workload — native bus vs overlay on NoC");
  bench::print_row({"platform", "sent", "received", "inversions", "mean us",
                    "worst us"});
  bench::print_rule(6);
  bench::JsonReport report("e11_overlay");
  const auto record = [&report](const char* platform, const auto& r) {
    report.row("e11_legacy_workload")
        .str("platform", platform)
        .num_u("sent", r.sent)
        .num_u("received", r.received)
        .num_u("inversions", r.inversions)
        .num("mean_us", r.mean_us)
        .num("worst_us", r.worst_us);
  };
  const auto ref = run_reference();
  bench::print_row({"native CAN 500k", bench::fmt_u(ref.sent),
                    bench::fmt_u(ref.received), bench::fmt_u(ref.inversions),
                    bench::fmt(ref.mean_us, 1), bench::fmt(ref.worst_us, 1)});
  record("native_can", ref);
  const auto ovl = run_overlay();
  bench::print_row({"CAN overlay / TDMA NoC", bench::fmt_u(ovl.sent),
                    bench::fmt_u(ovl.received), bench::fmt_u(ovl.inversions),
                    bench::fmt(ovl.mean_us, 1), bench::fmt(ovl.worst_us, 1)});
  record("can_overlay_tdma_noc", ovl);
  std::puts(
      "\nExpected shape (paper S4): the overlay preserves the legacy API and\n"
      "semantics — full delivery, zero priority inversions within the\n"
      "sending core — while the NoC's bandwidth turns milliseconds of CAN\n"
      "arbitration latency into tens of microseconds. (The small residual\n"
      "difference is the TDMA slot wait replacing CAN arbitration.)");
  return 0;
}
