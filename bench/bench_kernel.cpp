// Kernel micro-benchmarks — the simulation hot path.
//
// Two groups:
//  * legacy scaling cases (below) that exercised the former O(n^2)
//    cancellation path and pin linear complexity, and
//  * 4096-task cases (TaskChurn / SteadyState / CancelHeavy) measuring
//    cache residency of the slot-pool + timer-wheel storage layer under
//    ECU-shaped load.
//
// Legacy cases:
//   * Churn: schedule N one-shot events, cancel half; the old kernel kept
//     every cancelled id in a vector and linearly scanned it on each pop.
//   * Periodic storm: P periodics re-arming for T ticks; the old kernel
//     additionally scanned a periodic vector on every re-push.
//   * Fan-out: one CAN frame broadcast to R receivers; with zero-copy
//     payloads the per-receiver cost is a shared_ptr copy, not a payload
//     allocation.
// All three must scale linearly in the obvious size parameter; run with
//   ./bench_kernel --benchmark_filter=Churn --benchmark_time_unit=ms
// and check benchmark's own complexity estimate (BigO column).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "bench_gbench_json.hpp"
#include "can/can_bus.hpp"
#include "net/frame.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"

using namespace orte;

namespace {

// Schedule n one-shot events, cancel every other one up front, then drain.
void BM_CancelChurn(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  std::uint64_t fired = 0;
  for (auto _ : state) {
    sim::Kernel k;
    for (int i = 0; i < n; ++i) {
      auto h = k.schedule_at(i + 1, [&] { ++fired; });
      if (i % 2 == 0) k.cancel(h);
    }
    k.run_until(n + 1);
    benchmark::DoNotOptimize(fired);
  }
  state.SetComplexityN(n);
  state.SetItemsProcessed(state.iterations() * n);
}

// Interleaved schedule/cancel while the queue drains: every pop must decide
// dead-or-alive; the cancelled-id structure is hit constantly.
void BM_CancelInterleaved(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Kernel k;
    std::uint64_t fired = 0;
    for (int i = 0; i < n; ++i) {
      // Each event schedules a successor and cancels it half the time:
      // cancellations keep arriving while the queue is hot.
      k.schedule_at(i + 1, [&, i] {
        ++fired;
        auto h = k.schedule_at(k.now() + n, [&] { ++fired; });
        if (i % 2 == 0) k.cancel(h);
      });
    }
    k.run_until(2 * n + 2);
    benchmark::DoNotOptimize(fired);
  }
  state.SetComplexityN(n);
  state.SetItemsProcessed(state.iterations() * n);
}

// P periodics, each firing T times; the re-arm path (push_periodic_occurrence)
// is exercised P*T times.
void BM_PeriodicStorm(benchmark::State& state) {
  const auto periodics = static_cast<int>(state.range(0));
  const auto ticks = static_cast<int>(state.range(1));
  for (auto _ : state) {
    sim::Kernel k;
    std::uint64_t fired = 0;
    std::vector<sim::EventHandle> handles;
    handles.reserve(static_cast<std::size_t>(periodics));
    for (int p = 0; p < periodics; ++p) {
      handles.push_back(k.schedule_periodic(p + 1, periodics, [&] { ++fired; }));
    }
    k.run_until(static_cast<sim::Time>(periodics) * ticks + 1);
    for (auto& h : handles) k.cancel(h);
    benchmark::DoNotOptimize(fired);
  }
  state.SetComplexityN(periodics * ticks);
  state.SetItemsProcessed(state.iterations() * periodics * ticks);
}

// One sender, R receivers, F frames: zero-copy fan-out means the payload is
// allocated once per frame, never per receiver.
void BM_CanFanOut(benchmark::State& state) {
  const auto receivers = static_cast<int>(state.range(0));
  const auto frames = static_cast<int>(state.range(1));
  for (auto _ : state) {
    sim::Kernel k;
    sim::Trace trace;
    trace.enable_retention(false);
    can::CanBus bus(k, trace, {.bitrate_bps = 1'000'000});
    auto& tx = bus.attach();
    std::uint64_t delivered = 0;
    for (int r = 0; r < receivers; ++r) {
      bus.attach().on_receive([&](const net::Frame&) { ++delivered; });
    }
    const sim::Duration gap = sim::microseconds(200);  // > 8-byte frame time
    for (int i = 0; i < frames; ++i) {
      k.schedule_at(static_cast<sim::Time>(i) * gap, [&tx, i] {
        net::Frame f;
        f.id = 0x100 + static_cast<std::uint32_t>(i % 16);
        f.payload = std::vector<std::uint8_t>(8, static_cast<std::uint8_t>(i));
        tx.send(std::move(f));
      });
    }
    k.run_until(static_cast<sim::Time>(frames + 2) * gap);
    benchmark::DoNotOptimize(delivered);
  }
  state.SetComplexityN(receivers);
  state.SetItemsProcessed(state.iterations() * receivers * frames);
}

// --- 4096-task cases ---------------------------------------------------------
// The three shapes an ECU-sized system generates at scale. All three use only
// the public Kernel API, so the same source measures any kernel revision.

// Churn: T concurrent activities; each firing schedules its own successor a
// staggered short hop ahead and re-arms a deadline observer while cancelling
// the previous one — the schedule/cancel/fire pattern one Ecu job produces.
void BM_TaskChurn(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  const auto rounds = static_cast<std::int64_t>(state.range(1));
  std::uint64_t total_fired = 0;
  for (auto _ : state) {
    sim::Kernel k;
    std::uint64_t fired = 0;
    std::vector<sim::EventHandle> observers(tasks);
    std::function<void(std::size_t)> job = [&](std::size_t t) {
      ++fired;
      k.cancel(observers[t]);  // "job" finished before its deadline
      const auto period =
          static_cast<sim::Duration>(1'000 + (t % 97) * 13);
      k.schedule_at(k.now() + period, [&job, t] { job(t); });
      observers[t] = k.schedule_at(k.now() + 2 * period, [] {},
                                   sim::EventOrder::kObserver);
    };
    for (std::size_t t = 0; t < tasks; ++t) {
      k.schedule_at(static_cast<sim::Time>(t % 257) + 1, [&job, t] { job(t); });
    }
    k.run_until(rounds * 1'700);  // ~rounds firings per task
    total_fired += fired;
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_fired));
}

// Steady state: T periodic series with staggered phases re-arming forever.
// Periods span a few wheel buckets, so re-arms park in the wheel and only
// front buckets ever touch the heap.
void BM_SteadyState(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  const auto horizon_us = static_cast<std::int64_t>(state.range(1));
  std::uint64_t total_fired = 0;
  for (auto _ : state) {
    sim::Kernel k;
    std::uint64_t fired = 0;
    for (std::size_t t = 0; t < tasks; ++t) {
      const auto period =
          static_cast<sim::Duration>(100'000 + (t % 193) * 971);
      k.schedule_periodic(static_cast<sim::Time>(1 + (t % 1009)), period,
                          [&fired] { ++fired; });
    }
    k.run_until(horizon_us * 1'000);
    total_fired += fired;
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_fired));
}

// Cancel-heavy: every firing schedules a burst of speculative futures and
// immediately retires most of them — cancels against events that never reach
// the front of the queue alive.
void BM_CancelHeavy(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  const auto rounds = static_cast<std::int64_t>(state.range(1));
  std::uint64_t total_fired = 0;
  for (auto _ : state) {
    sim::Kernel k;
    std::uint64_t fired = 0;
    std::function<void(std::size_t)> job = [&](std::size_t t) {
      ++fired;
      sim::EventHandle spec[4];
      for (int i = 0; i < 4; ++i) {
        spec[i] = k.schedule_at(
            k.now() + 2'000 + static_cast<sim::Duration>(531 * i), [] {});
      }
      for (int i = 0; i < 3; ++i) k.cancel(spec[i]);  // keep only the last
      const auto period = static_cast<sim::Duration>(1'000 + (t % 61) * 7);
      k.schedule_at(k.now() + period, [&job, t] { job(t); });
    };
    for (std::size_t t = 0; t < tasks; ++t) {
      k.schedule_at(static_cast<sim::Time>(t % 127) + 1, [&job, t] { job(t); });
    }
    k.run_until(rounds * 1'200);
    total_fired += fired;
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_fired));
}

BENCHMARK(BM_CancelChurn)
    ->Arg(10'000)
    ->Arg(30'000)
    ->Arg(100'000)
    ->Arg(300'000)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CancelInterleaved)
    ->Arg(10'000)
    ->Arg(30'000)
    ->Arg(100'000)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PeriodicStorm)
    ->Args({100, 1000})
    ->Args({1000, 1000})
    ->Args({3000, 1000})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CanFanOut)
    ->Args({4, 20'000})
    ->Args({16, 20'000})
    ->Args({64, 20'000})
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TaskChurn)
    ->Args({1024, 50})
    ->Args({4096, 50})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SteadyState)
    ->Args({1024, 5'000})
    ->Args({4096, 5'000})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CancelHeavy)
    ->Args({1024, 40})
    ->Args({4096, 40})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return bench::run_google_benchmarks_with_json(argc, argv, "kernel");
}
