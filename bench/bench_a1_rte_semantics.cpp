// Ablation A1 — RTE communication semantics (DESIGN.md "RTE generation"
// design choice).
//
// Why does the RTE offer implicit access and queued elements at all? This
// ablation quantifies what each semantic buys:
//
//  (a) consistency: a producer atomically writes a pair (x, x*x) every 2 ms;
//      a slow 10 ms consumer task runs two runnables — the first samples x,
//      the second (after 5 ms of preemptible execution) samples x*x and
//      checks the pair. With explicit access the two samples straddle
//      producer updates and observe torn pairs; with implicit access the
//      task-start snapshot makes torn pairs impossible.
//  (b) losslessness: a 5 ms producer feeds a 20 ms consumer. A last-is-best
//      element drops 3 of 4 updates by design; a queued element delivers
//      every one.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"
#include "vfb/model.hpp"
#include "vfb/rte.hpp"
#include "vfb/system.hpp"

using namespace orte;
using sim::microseconds;
using sim::milliseconds;

namespace {

struct ConsistencyResult {
  std::uint64_t reads = 0;
  std::uint64_t torn = 0;
};

ConsistencyResult run_consistency(vfb::DataAccessKind read_kind) {
  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  vfb::Composition comp;
  vfb::PortInterface ipair;
  ipair.name = "IPair";
  ipair.elements.push_back(vfb::DataElement{"x", 32, 0, false});
  ipair.elements.push_back(vfb::DataElement{"xx", 64, 0, false});
  comp.add_interface(ipair);

  vfb::Runnable produce;
  produce.name = "produce";
  produce.trigger = vfb::RunnableTrigger::timing(milliseconds(2));
  produce.execution_time = [] { return microseconds(100); };
  produce.accesses.push_back({"out", "x", vfb::DataAccessKind::kExplicitWrite});
  produce.accesses.push_back({"out", "xx", vfb::DataAccessKind::kExplicitWrite});
  produce.behavior = [n = std::uint64_t{0}](vfb::RunnableContext& ctx) mutable {
    ++n;
    ctx.write("out", "x", n);
    ctx.write("out", "xx", n * n);
  };
  comp.add_type({"Producer",
                 {vfb::Port{"out", "IPair", vfb::PortDirection::kProvided}},
                 {produce}});

  ConsistencyResult result;
  auto stash = std::make_shared<std::uint64_t>(0);
  vfb::Runnable grab;
  grab.name = "grab";
  grab.trigger = vfb::RunnableTrigger::timing(milliseconds(10));
  grab.execution_time = [] { return microseconds(100); };
  grab.accesses.push_back({"in", "x", read_kind});
  grab.behavior = [stash](vfb::RunnableContext& ctx) {
    *stash = ctx.read("in", "x");
  };
  vfb::Runnable use;
  use.name = "use";
  use.trigger = vfb::RunnableTrigger::timing(milliseconds(10));
  use.execution_time = [] { return milliseconds(5); };
  use.accesses.push_back({"in", "xx", read_kind});
  use.behavior = [stash, &result](vfb::RunnableContext& ctx) {
    const std::uint64_t xx = ctx.read("in", "xx");
    ++result.reads;
    if (*stash * *stash != xx) ++result.torn;
  };
  comp.add_type({"Consumer",
                 {vfb::Port{"in", "IPair", vfb::PortDirection::kRequired}},
                 {grab, use}});

  comp.add_instance({"p", "Producer"});
  comp.add_instance({"k", "Consumer"});
  comp.add_connector({"p", "out", "k", "in"});
  vfb::DeploymentPlan plan;
  plan.instances["p"] = {.ecu = "e"};
  plan.instances["k"] = {.ecu = "e"};
  vfb::System sys(kernel, trace, comp, plan);
  sys.run_for(sim::seconds(20));
  return result;
}

struct LossResult {
  std::uint64_t produced = 0;
  std::uint64_t consumed = 0;
};

LossResult run_loss(bool queued) {
  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  vfb::Composition comp;
  vfb::PortInterface ival;
  ival.name = "IVal";
  ival.elements.push_back(vfb::DataElement{"v", 64, 0, queued});
  comp.add_interface(ival);

  LossResult result;
  vfb::Runnable produce;
  produce.name = "produce";
  produce.trigger = vfb::RunnableTrigger::timing(milliseconds(5));
  produce.execution_time = [] { return microseconds(50); };
  produce.accesses.push_back({"out", "v", vfb::DataAccessKind::kExplicitWrite});
  produce.behavior = [&result, n = std::uint64_t{0}](
                         vfb::RunnableContext& ctx) mutable {
    ++result.produced;
    ctx.write("out", "v", ++n);
  };
  comp.add_type({"Producer",
                 {vfb::Port{"out", "IVal", vfb::PortDirection::kProvided}},
                 {produce}});

  vfb::Runnable consume;
  consume.name = "consume";
  consume.trigger = vfb::RunnableTrigger::timing(milliseconds(20));
  consume.execution_time = [] { return microseconds(50); };
  consume.accesses.push_back({"in", "v", vfb::DataAccessKind::kExplicitRead});
  consume.behavior = [&result, last = std::uint64_t{0}](
                         vfb::RunnableContext& ctx) mutable {
    // Drain everything available this activation (bounded loop).
    for (int i = 0; i < 8; ++i) {
      const std::uint64_t v = ctx.read("in", "v");
      if (v == 0 || v == last) break;  // empty queue / unchanged value
      last = v;
      ++result.consumed;
    }
  };
  comp.add_type({"Consumer",
                 {vfb::Port{"in", "IVal", vfb::PortDirection::kRequired}},
                 {consume}});

  comp.add_instance({"p", "Producer"});
  comp.add_instance({"k", "Consumer"});
  comp.add_connector({"p", "out", "k", "in"});
  vfb::DeploymentPlan plan;
  plan.instances["p"] = {.ecu = "e"};
  plan.instances["k"] = {.ecu = "e"};
  vfb::System sys(kernel, trace, comp, plan);
  sys.run_for(sim::seconds(20));
  return result;
}

}  // namespace

int main() {
  bench::JsonReport report("a1_rte_semantics");
  bench::print_title("A1a: data consistency — explicit vs implicit access");
  bench::print_row({"read semantics", "pair reads", "torn pairs", "torn %"});
  bench::print_rule(4);
  {
    const auto ex = run_consistency(vfb::DataAccessKind::kExplicitRead);
    bench::print_row({"explicit (live values)", bench::fmt_u(ex.reads),
                      bench::fmt_u(ex.torn),
                      bench::fmt(100.0 * ex.torn / ex.reads, 1)});
    const auto im = run_consistency(vfb::DataAccessKind::kImplicitRead);
    bench::print_row({"implicit (snapshot)", bench::fmt_u(im.reads),
                      bench::fmt_u(im.torn),
                      bench::fmt(100.0 * im.torn / im.reads, 1)});
    report.row("a1a_consistency")
        .str("semantics", "explicit")
        .num_u("reads", ex.reads)
        .num_u("torn", ex.torn);
    report.row("a1a_consistency")
        .str("semantics", "implicit")
        .num_u("reads", im.reads)
        .num_u("torn", im.torn);
  }

  bench::print_title("A1b: update loss — last-is-best vs queued elements");
  bench::print_row({"element semantics", "produced", "consumed", "loss %"});
  bench::print_rule(4);
  {
    const auto lb = run_loss(false);
    bench::print_row(
        {"last-is-best", bench::fmt_u(lb.produced), bench::fmt_u(lb.consumed),
         bench::fmt(100.0 * (lb.produced - lb.consumed) / lb.produced, 1)});
    const auto q = run_loss(true);
    bench::print_row(
        {"queued (FIFO)", bench::fmt_u(q.produced), bench::fmt_u(q.consumed),
         bench::fmt(100.0 * (q.produced - q.consumed) / q.produced, 1)});
    report.row("a1b_update_loss")
        .str("semantics", "last_is_best")
        .num_u("produced", lb.produced)
        .num_u("consumed", lb.consumed);
    report.row("a1b_update_loss")
        .str("semantics", "queued")
        .num_u("produced", q.produced)
        .num_u("consumed", q.consumed);
  }
  std::puts(
      "\nAblation verdict: implicit access eliminates torn multi-element\n"
      "reads entirely (the cost is one buffered copy per runnable); queued\n"
      "elements eliminate update loss when producer and consumer rates\n"
      "differ (the cost is queue memory and drain logic). These are the two\n"
      "RTE semantics AUTOSAR mandates and DESIGN.md adopts.");
  return 0;
}
