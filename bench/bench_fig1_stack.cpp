// Experiment E9 / Figure 1 — the AUTOSAR concept stack, realized.
//
// Figure 1 of the paper is qualitative (the layered architecture + new
// concepts). This bench (a) prints the inventory of the layers this
// repository implements against the figure, and (b) uses google-benchmark to
// measure the per-call cost of the realized services, demonstrating the
// stack is lightweight enough for per-runnable use.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_gbench_json.hpp"
#include "bsw/com.hpp"
#include "bsw/nvm.hpp"
#include "contracts/contract.hpp"
#include "contracts/network.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"
#include "vfb/model.hpp"
#include "vfb/rte.hpp"
#include "vfb/system.hpp"

using namespace orte;

namespace {

void print_inventory() {
  std::puts("=== Fig. 1: AUTOSAR concepts -> OpenRTE modules ===");
  std::puts("  paper concept              module              realized as");
  std::puts("  -------------------------  ------------------  ----------------------------");
  std::puts("  VFB / RTE                  src/vfb             Composition, Rte, System");
  std::puts("  OS kernel                  src/os              Ecu, fixed-priority + TT + budgets");
  std::puts("  COM services               src/bsw/com         signals, I-PDUs, tx modes, timeouts");
  std::puts("  Mode management            src/bsw/mode        ModeMachine");
  std::puts("  Diagnostics                src/bsw/dem         Dem, DTC storage, aging");
  std::puts("  Memory services            src/bsw/nvm         NvM, CRC16, redundant blocks");
  std::puts("  Error handling             src/bsw + trace     DEM events, com timeouts, wdg");
  std::puts("  Bus systems                src/can,flexray,ttp CAN 2.0A, FlexRay 2.1, TTP");
  std::puts("  NoC / MPSoC (sec. 4)       src/noc             TDMA NoC, CAN overlay");
  std::puts("  Rich components (sec. 3)   src/contracts       A/G contracts, dominance, TA");
  std::puts("  Runtime verification       src/rv              online monitors, health, exporters");
  std::puts("  Timing analysis (sec. 3)   src/analysis        RTA, CAN/FlexRay, e2e, TT synth");
  std::puts("  Config classes             typed C++ config    pre-build (ctor) / post-build (plan)");
  std::puts("");
}

struct RteFixture {
  sim::Kernel kernel;
  sim::Trace trace;
  vfb::Composition comp;
  std::unique_ptr<vfb::System> sys;
  bsw::Com* com = nullptr;

  RteFixture() {
    trace.enable_retention(false);
    vfb::PortInterface ival;
    ival.name = "IVal";
    ival.elements.push_back(vfb::DataElement{"val", 32, 0, false});
    comp.add_interface(ival);
    vfb::Runnable produce;
    produce.name = "produce";
    produce.trigger = vfb::RunnableTrigger::timing(sim::milliseconds(10));
    produce.accesses.push_back(
        {"out", "val", vfb::DataAccessKind::kExplicitWrite});
    comp.add_type({"P",
                   {vfb::Port{"out", "IVal", vfb::PortDirection::kProvided}},
                   {produce}});
    vfb::Runnable consume;
    consume.name = "consume";
    consume.trigger = vfb::RunnableTrigger::timing(sim::milliseconds(10));
    consume.accesses.push_back(
        {"in", "val", vfb::DataAccessKind::kExplicitRead});
    comp.add_type({"C",
                   {vfb::Port{"in", "IVal", vfb::PortDirection::kRequired}},
                   {consume}});
    comp.add_instance({"p", "P"});
    comp.add_instance({"c", "C"});
    comp.add_connector({"p", "out", "c", "in"});
    vfb::DeploymentPlan plan;
    plan.instances["p"] = {.ecu = "e"};
    plan.instances["c"] = {.ecu = "e"};
    sys = std::make_unique<vfb::System>(kernel, trace, comp, plan);
  }
};

void BM_RteLocalWriteRead(benchmark::State& state) {
  RteFixture fx;
  auto& rte = fx.sys->rte("e");
  const std::string sender = vfb::Rte::key("p", "out", "val");
  const std::string receiver = vfb::Rte::key("c", "in", "val");
  std::uint64_t v = 0;
  for (auto _ : state) {
    rte.deliver(receiver, ++v);
    benchmark::DoNotOptimize(rte.peek(receiver));
  }
  (void)sender;
}
BENCHMARK(BM_RteLocalWriteRead);

void BM_ComPackUnpack(benchmark::State& state) {
  std::vector<std::uint8_t> payload(8, 0);
  std::uint64_t v = 0;
  for (auto _ : state) {
    bsw::pack_signal(payload, 5, 17, ++v & 0x1FFFF);
    benchmark::DoNotOptimize(bsw::unpack_signal(payload, 5, 17));
  }
}
BENCHMARK(BM_ComPackUnpack);

void BM_Crc16Block(benchmark::State& state) {
  std::vector<std::uint8_t> block(static_cast<std::size_t>(state.range(0)),
                                  0xA5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bsw::crc16(block));
  }
}
BENCHMARK(BM_Crc16Block)->Arg(16)->Arg(256)->Arg(4096);

void BM_ContractSatisfies(benchmark::State& state) {
  contracts::FlowSpec g{.flow = "x",
                        .range = {0, 900},
                        .timing = {sim::milliseconds(10), sim::milliseconds(1),
                                   sim::milliseconds(4)}};
  contracts::FlowSpec a{.flow = "x",
                        .range = {0, 1000},
                        .timing = {sim::milliseconds(10), sim::milliseconds(1),
                                   sim::milliseconds(5)}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(contracts::satisfies(g, a).ok);
  }
}
BENCHMARK(BM_ContractSatisfies);

void BM_KernelEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Kernel kernel;
    int count = 0;
    for (int i = 0; i < 1000; ++i) {
      kernel.schedule_at(i, [&count] { ++count; });
    }
    kernel.run_until(2000);
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_KernelEventThroughput);

void BM_SimulatedEcuMillisecond(benchmark::State& state) {
  // Cost of simulating 1 ms of a 3-task ECU (events + dispatching).
  for (auto _ : state) {
    sim::Kernel kernel;
    sim::Trace trace;
    trace.enable_retention(false);
    os::Ecu ecu(kernel, trace, "e");
    ecu.add_task({.name = "a", .priority = 3, .period = sim::microseconds(100)})
        .set_body(sim::microseconds(20));
    ecu.add_task({.name = "b", .priority = 2, .period = sim::microseconds(200)})
        .set_body(sim::microseconds(50));
    ecu.add_task({.name = "c", .priority = 1, .period = sim::microseconds(500)})
        .set_body(sim::microseconds(100));
    ecu.start();
    kernel.run_until(sim::milliseconds(1));
    benchmark::DoNotOptimize(ecu.utilization());
  }
}
BENCHMARK(BM_SimulatedEcuMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_inventory();
  return bench::run_google_benchmarks_with_json(argc, argv, "fig1_stack");
}
