// Experiment E7 / Table 7 — Federated vs integrated architecture (§4).
//
// Claim: consolidating the distributed application subsystems (DAS) onto an
// MPSoC with a TDMA NoC cuts ECUs, network segments and contact points,
// shortens inter-DAS paths (no store-and-forward gateways), and — with the
// NoC's injection control — *improves* dependability against babbling nodes
// rather than trading it away.
//
// Federated reference: 4 DASes, each with its own CAN segment and gateway
// ECU; gateways bridge onto a backbone CAN. The powertrain->chassis signal
// crosses 3 buses and 2 gateways. Integrated: 4 IP cores on one TDMA NoC.
// A babbling multimedia node floods the backbone / NoC during [4s, 6s).
#include <cstdio>
#include <map>
#include <string>

#include "bench_util.hpp"
#include "bsw/pdu_router.hpp"
#include "can/can_bus.hpp"
#include "noc/noc.hpp"
#include "sim/kernel.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

using namespace orte;
using sim::microseconds;
using sim::milliseconds;

namespace {

constexpr sim::Duration kGatewayProcessing = microseconds(200);

struct LatencyResult {
  double nominal_worst_ms = 0;  // outside the babble window
  double babble_worst_ms = 0;   // inside [4s, 6s)
  std::uint64_t delivered = 0;
};

LatencyResult run_federated() {
  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  can::CanBus can_power(kernel, trace, {.name = "can_power"});
  can::CanBus backbone(kernel, trace, {.name = "backbone"});
  can::CanBus can_chassis(kernel, trace, {.name = "can_chassis"});

  auto& src = can_power.attach();          // powertrain function ECU
  auto& gw_p_local = can_power.attach();   // gateway, powertrain side
  auto& gw_p_bb = backbone.attach();       // gateway, backbone side
  auto& gw_c_bb = backbone.attach();       // gateway, chassis side
  auto& gw_c_local = can_chassis.attach();
  auto& sink = can_chassis.attach();       // chassis function ECU
  auto& mm_bb = backbone.attach();         // multimedia gateway (babbler)

  // Source: engine state every 10 ms; the payload carries a sequence number
  // so the sink can recover the frame's birth time across gateway hops.
  sim::Stats nominal_ms, babble_ms;
  std::map<std::uint64_t, sim::Time> born_at;  // sequence -> timestamp
  std::uint64_t seq = 0, delivered = 0;

  kernel.schedule_periodic(0, milliseconds(10), [&] {
    net::Frame f;
    f.id = 0x100;
    f.name = "engine";
    std::vector<std::uint8_t> bytes(8, 0);
    for (int i = 0; i < 8; ++i) {
      bytes[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>((seq >> (8 * i)) & 0xFF);
    }
    f.payload = std::move(bytes);
    born_at[seq] = kernel.now();
    ++seq;
    f.enqueued_at = kernel.now();
    src.send(std::move(f));
  });

  bsw::PduRouter gw_p(kernel, trace, "gw_power");
  gw_p.add_route(gw_p_local, gw_p_bb,
                 {.match_id = 0x100, .processing = kGatewayProcessing});
  bsw::PduRouter gw_c(kernel, trace, "gw_chassis");
  gw_c.add_route(gw_c_bb, gw_c_local,
                 {.match_id = 0x100, .processing = kGatewayProcessing});
  sink.on_receive([&](const net::Frame& f) {
    if (f.id != 0x100) return;
    std::uint64_t s = 0;
    for (int i = 0; i < 8; ++i) {
      s |= static_cast<std::uint64_t>(f.payload[static_cast<std::size_t>(i)])
           << (8 * i);
    }
    const sim::Time born = born_at[s];
    const double ms = sim::to_ms(kernel.now() - born);
    ++delivered;
    if (born >= sim::seconds(4) && born < sim::seconds(6)) {
      babble_ms.add(ms);
    } else if (kernel.now() < sim::seconds(4) || born >= sim::seconds(8)) {
      // Clean nominal window: fully delivered before the flood starts, or
      // born well after the post-flood backlog has drained.
      nominal_ms.add(ms);
    }
  });

  // Multimedia gateway floods the backbone with top-priority frames at ~2x
  // bus capacity during [4s, 6s).
  const auto flood = kernel.schedule_periodic(
      sim::seconds(4), microseconds(135), [&] {
        net::Frame f;
        f.id = 0x001;
        f.name = "mm_flood";
        f.payload.assign(8, 0xFF);
        f.enqueued_at = kernel.now();
        mm_bb.send(std::move(f));
      });
  kernel.schedule_at(sim::seconds(6), [&kernel, flood] { kernel.cancel(flood); });

  kernel.run_until(sim::seconds(10));
  return {nominal_ms.max(),
          babble_ms.empty() ? -1.0 : babble_ms.max(), delivered};
}

LatencyResult run_integrated() {
  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  noc::Noc chip(kernel, trace,
                {.arbitration = noc::Arbitration::kTdma,
                 .link_bandwidth_bps = 100'000'000,
                 .slot_len = microseconds(10)});
  auto& power = chip.attach("powertrain");
  auto& chassis = chip.attach("chassis");
  chip.attach("body");
  chip.attach("multimedia");

  sim::Stats nominal_ms, babble_ms;
  std::uint64_t delivered = 0;
  chassis.on_receive([&](const noc::NocMessage& m) {
    if (m.name != "engine") return;
    ++delivered;
    const double ms = sim::to_ms(m.delivered_at - m.enqueued_at);
    if (m.enqueued_at >= sim::seconds(4) && m.enqueued_at < sim::seconds(6)) {
      babble_ms.add(ms);
    } else if (m.delivered_at < sim::seconds(4) ||
               m.enqueued_at >= sim::seconds(8)) {
      nominal_ms.add(ms);
    }
  });
  kernel.schedule_periodic(0, milliseconds(10), [&] {
    noc::NocMessage m;
    m.destination = 1;
    m.name = "engine";
    m.bytes = 8;
    power.send(m);
  });
  chip.inject_babble(3, 100, microseconds(4), sim::seconds(4),
                     sim::seconds(6));
  chip.start();
  kernel.run_until(sim::seconds(10));
  return {nominal_ms.max(),
          babble_ms.empty() ? -1.0 : babble_ms.max(), delivered};
}

}  // namespace

int main() {
  bench::JsonReport report("e7_integration");
  bench::print_title("E7 / Table 7a: physical-architecture inventory");
  bench::print_row({"metric", "federated", "integrated"});
  bench::print_rule(3);
  // Four DASes of three functions each; federated needs a gateway per DAS
  // plus a backbone, integrated hosts each DAS on one IP core.
  bench::print_row({"ECUs / IP cores", "16", "4"});
  bench::print_row({"network segments", "5", "1"});
  bench::print_row({"controller attachments", "20", "4"});
  bench::print_row({"wiring contact points", "40", "8"});
  bench::print_row({"gateway hops (power->chassis)", "2", "0"});

  bench::print_title(
      "E7 / Table 7b: powertrain->chassis latency, multimedia floods 4s-6s");
  bench::print_row({"architecture", "nominal worst ms", "flood worst ms",
                    "delivered"});
  bench::print_rule(4);
  const auto fed = run_federated();
  bench::print_row({"federated (CAN+gateways)",
                    bench::fmt(fed.nominal_worst_ms, 3),
                    fed.babble_worst_ms < 0 ? "starved"
                                            : bench::fmt(fed.babble_worst_ms, 3),
                    bench::fmt_u(fed.delivered)});
  const auto integ = run_integrated();
  bench::print_row({"integrated (TDMA NoC)",
                    bench::fmt(integ.nominal_worst_ms, 3),
                    integ.babble_worst_ms < 0
                        ? "starved"
                        : bench::fmt(integ.babble_worst_ms, 3),
                    bench::fmt_u(integ.delivered)});
  report.row("e7_cross_das_latency")
      .str("architecture", "federated")
      .num("nominal_worst_ms", fed.nominal_worst_ms)
      .num("flood_worst_ms", fed.babble_worst_ms)
      .num_u("delivered", fed.delivered);
  report.row("e7_cross_das_latency")
      .str("architecture", "integrated")
      .num("nominal_worst_ms", integ.nominal_worst_ms)
      .num("flood_worst_ms", integ.babble_worst_ms)
      .num_u("delivered", integ.delivered);
  std::puts(
      "\nExpected shape (paper S4): the integrated architecture cuts the\n"
      "hardware inventory by ~4x, removes both store-and-forward gateway\n"
      "hops from the inter-DAS path (lower nominal latency), and keeps the\n"
      "flood-window latency identical to nominal (injection control), while\n"
      "the federated backbone is starved/degraded by the babbling gateway.");
  return 0;
}
