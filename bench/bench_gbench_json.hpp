// Glue for the google-benchmark based benches: run with the normal console
// reporter AND write google-benchmark's JSON to BENCH_<name>.json (into
// $ORTE_BENCH_JSON_DIR when set, else the working directory), mirroring the
// bench_util.hpp JsonReport convention so every bench leaves a
// machine-readable result file. A user-supplied --benchmark_out wins.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace orte::bench {

inline int run_google_benchmarks_with_json(int argc, char** argv,
                                           const std::string& name) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag;
  std::string format_flag;
  std::vector<char*> args(argv, argv + argc);
  if (!has_out) {
    std::string path;
    if (const char* dir = std::getenv("ORTE_BENCH_JSON_DIR")) {
      path = std::string(dir) + "/";
    }
    path += "BENCH_" + name + ".json";
    out_flag = "--benchmark_out=" + path;
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  args.push_back(nullptr);

  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace orte::bench
