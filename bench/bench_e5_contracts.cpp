// Experiment E5 / Table 5 — Contract analysis scalability & detection (§3).
//
// Claim: rich-component compatibility checking is cheap enough to run at
// every design iteration, and vertical assumptions catch resource overloads
// before any code exists.
//
// Workload: synthetic pipelines of n components with consistent contracts;
// a mutation pass weakens m random guarantees (range widened / latency bound
// dropped) and the checker must flag exactly the mutated connections.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "contracts/contract.hpp"
#include "contracts/network.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

using namespace orte;
using namespace orte::contracts;
using sim::milliseconds;

namespace {

ContractNetwork make_pipeline(std::size_t n) {
  ContractNetwork net;
  for (std::size_t i = 0; i < n; ++i) {
    Contract c;
    c.name = "comp" + std::to_string(i);
    if (i > 0) {
      c.assumptions.push_back(
          {.flow = "in",
           .range = {0, 1000},
           .timing = {milliseconds(10), milliseconds(1), milliseconds(5)}});
    }
    c.guarantees.push_back(
        {.flow = "out",
         .range = {0, 900},
         .timing = {milliseconds(10), milliseconds(1), milliseconds(4)}});
    c.vertical = {.cpu_utilization = 0.02, .memory_bytes = 4096,
                  .confidence = 0.9};
    net.add_component(c);
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    net.connect("comp" + std::to_string(i), "out",
                "comp" + std::to_string(i + 1), "in");
  }
  return net;
}

struct Mutated {
  ContractNetwork net;
  std::size_t mutations = 0;
};

Mutated make_mutated(std::size_t n, std::size_t mutations, sim::Rng& rng) {
  Mutated m;
  m.net = ContractNetwork();
  std::vector<bool> mutate(n, false);
  std::size_t placed = 0;
  while (placed < mutations) {
    const std::size_t i = rng.index(n - 1);  // only components with a sink
    if (!mutate[i]) {
      mutate[i] = true;
      ++placed;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    Contract c;
    c.name = "comp" + std::to_string(i);
    if (i > 0) {
      c.assumptions.push_back(
          {.flow = "in",
           .range = {0, 1000},
           .timing = {milliseconds(10), milliseconds(1), milliseconds(5)}});
    }
    FlowSpec g{.flow = "out",
               .range = {0, 900},
               .timing = {milliseconds(10), milliseconds(1), milliseconds(4)}};
    if (mutate[i]) g.range.hi = 5000;  // breaks the downstream assumption
    c.guarantees.push_back(g);
    m.net.add_component(c);
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    m.net.connect("comp" + std::to_string(i), "out",
                  "comp" + std::to_string(i + 1), "in");
  }
  m.mutations = mutations;
  return m;
}

}  // namespace

int main() {
  bench::JsonReport report("e5_contracts");
  bench::print_title(
      "E5 / Table 5: compatibility checking scale & mutation detection");
  bench::print_row({"components", "connections", "check ms", "violations",
                    "injected"});
  bench::print_rule(5);
  sim::Rng rng(7);
  // 5000/20000 push 10x past the original 2000-component ceiling — a full
  // vehicle (~1-2 k SWCs) with an order of magnitude of headroom.
  for (std::size_t n : {10u, 50u, 200u, 500u, 1000u, 2000u, 5000u, 20000u}) {
    const std::size_t inject = n / 10;
    const auto mutated = make_mutated(n, inject, rng);
    bench::WallClock clock;
    const auto result = mutated.net.check_compatibility();
    const double ms = clock.elapsed_ms();
    bench::print_row({std::to_string(n), std::to_string(n - 1),
                      bench::fmt(ms, 2),
                      std::to_string(result.violations.size()),
                      std::to_string(inject)});
    if (result.violations.size() != inject) {
      std::printf("  !! detection mismatch at n=%zu\n", n);
    }
    report.row("e5_compatibility")
        .num_u("components", n)
        .num("check_ms", ms)
        .num_u("violations", result.violations.size())
        .num_u("injected", inject);
  }

  bench::print_title("E5b: vertical assumption checking (mapping validation)");
  bench::print_row({"components", "nodes", "check ms", "verdict"});
  bench::print_rule(4);
  for (std::size_t n : {50u, 500u, 2000u, 5000u, 20000u}) {
    const auto net = make_pipeline(n);
    std::map<std::string, std::string> mapping;
    std::vector<NodeCapacity> nodes;
    const std::size_t n_nodes = n / 25 + 1;
    for (std::size_t i = 0; i < n_nodes; ++i) {
      nodes.push_back({.name = "ecu" + std::to_string(i), .cpu = 0.6,
                       .memory_bytes = 1 << 20});
    }
    for (std::size_t i = 0; i < n; ++i) {
      mapping["comp" + std::to_string(i)] = "ecu" + std::to_string(i % n_nodes);
    }
    bench::WallClock clock;
    const auto result = net.check_vertical(mapping, nodes);
    const double ms = clock.elapsed_ms();
    bench::print_row({std::to_string(n), std::to_string(n_nodes),
                      bench::fmt(ms, 2), result.ok ? "fits" : "overload"});
    report.row("e5b_vertical")
        .num_u("components", n)
        .num_u("nodes", n_nodes)
        .num("check_ms", ms)
        .str("verdict", result.ok ? "fits" : "overload");
  }
  std::puts(
      "\nExpected shape (paper S3): checking time grows ~linearly in network\n"
      "size and stays interactive (ms range) even at 20000 components; every\n"
      "injected incompatibility is detected, with zero false positives.");
  return 0;
}
