// Experiment E2 / Table 2 — Timing isolation under supplier faults (§1, §2).
//
// Claim: without isolation, a WCET-overrunning supplier task breaks the
// deadlines of other suppliers' tasks; with resource reservation (per-job
// budgets or CPU partitions) the fault is confined to the faulty supplier,
// at a bounded overhead.
//
// Workload: one ECU, three suppliers (A: 5ms/0.8ms, B: 10ms/2ms, C:
// 10ms/3ms). B overruns its contract by a swept factor during the whole
// run. Policies: none (baseline), per-job budget (kill), partition
// (throttle).
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "isolation/monitor.hpp"
#include "os/ecu.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"

using namespace orte;
using sim::milliseconds;
using sim::microseconds;

namespace {

enum class Policy { kNone, kBudgetKill, kPartition };

const char* name_of(Policy p) {
  switch (p) {
    case Policy::kNone: return "none";
    case Policy::kBudgetKill: return "budget-kill";
    case Policy::kPartition: return "partition";
  }
  return "?";
}

struct Row {
  std::uint64_t victim_misses = 0;
  std::uint64_t aggressor_sanctions = 0;  // kills or throttles
  double victim_worst_ms = 0;
  double cpu_util = 0;
};

Row run_case(Policy policy, double factor) {
  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  os::Ecu ecu(kernel, trace, "host");

  int partition = -1;
  if (policy == Policy::kPartition) {
    partition = ecu.add_partition({.name = "supplierB",
                                   .budget = milliseconds(2),
                                   .period = milliseconds(10)});
  }

  auto& a = ecu.add_task({.name = "A", .priority = 3,
                          .period = milliseconds(5),
                          .relative_deadline = milliseconds(5)});
  a.set_body(microseconds(800));

  os::TaskConfig bcfg{.name = "B", .priority = 2, .period = milliseconds(10),
                      .relative_deadline = milliseconds(10)};
  if (policy == Policy::kBudgetKill) {
    bcfg.budget = milliseconds(2);
    bcfg.overrun_action = os::OverrunAction::kKillJob;
  }
  if (policy == Policy::kPartition) bcfg.partition = partition;
  auto& b = ecu.add_task(bcfg);
  b.set_body([factor] {
    return static_cast<sim::Duration>(milliseconds(2) * factor);
  });

  auto& c = ecu.add_task({.name = "C", .priority = 1,
                          .period = milliseconds(10),
                          .relative_deadline = milliseconds(10)});
  c.set_body(milliseconds(3));

  ecu.start();
  kernel.run_until(sim::seconds(10));

  Row row;
  // Victim damage: missed deadlines (detected at the deadline, so starved
  // jobs count) plus activations dropped because the previous job lingered.
  const auto damage = [](const os::Task& t) {
    return t.deadline_misses() + t.activations_lost();
  };
  row.victim_misses = damage(a) + damage(c);
  row.aggressor_sanctions =
      b.jobs_killed() +
      (policy == Policy::kPartition ? ecu.partition_throttles(partition) : 0);
  // A fully starved victim never completes: report -1 ("never finishes").
  row.victim_worst_ms =
      c.response_times().empty() ? -1.0 : c.response_times().max();
  row.cpu_util = ecu.utilization();
  return row;
}

}  // namespace

int main() {
  bench::JsonReport report("e2_isolation");
  bench::print_title(
      "E2 / Table 2: victim damage vs overrun factor, per isolation policy");
  bench::print_row({"policy / overrun x", "victim misses", "sanctions",
                    "victim worst ms", "cpu util %"});
  bench::print_rule(5);
  for (Policy p : {Policy::kNone, Policy::kBudgetKill, Policy::kPartition}) {
    for (double factor : {1.0, 1.5, 2.0, 4.0, 8.0}) {
      const auto r = run_case(p, factor);
      bench::print_row({std::string(name_of(p)) + " / x" +
                            bench::fmt(factor, 1),
                        bench::fmt_u(r.victim_misses),
                        bench::fmt_u(r.aggressor_sanctions),
                        bench::fmt(r.victim_worst_ms, 3),
                        bench::fmt(100 * r.cpu_util, 1)});
      report.row("e2_victim_damage")
          .str("policy", name_of(p))
          .num("overrun_factor", factor)
          .num_u("victim_misses", r.victim_misses)
          .num_u("sanctions", r.aggressor_sanctions)
          .num("victim_worst_ms", r.victim_worst_ms)
          .num("cpu_util_pct", 100 * r.cpu_util);
    }
    bench::print_rule(5);
  }
  std::puts(
      "Expected shape (paper S1/S2): policy 'none' accumulates victim deadline\n"
      "misses once the overrun saturates the CPU; both reservation policies\n"
      "keep victim misses at exactly 0 for every factor, sanctioning only the\n"
      "faulty supplier. The overhead of reservation is visible as the CPU\n"
      "utilization difference at factor 1.0 (none).");
  return 0;
}
