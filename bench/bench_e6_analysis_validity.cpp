// Experiment E6 / Table 6 — Validity of the schedulability analyses (§3).
//
// Claim: the response-time analyses used for design-time verification are
// safe (no simulated response ever exceeds its bound) and usefully tight.
//
// Workload: per utilization band, 100 random task sets (UUniFast, periods
// from an automotive grid) simulated for 2+ hyperperiods against the task
// RTA; and 100 random CAN message sets against the Davis CAN analysis.
// Reported: schedulability rate, bound violations (must be 0), and mean
// tightness = observed worst / analytic bound.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/can_analysis.hpp"
#include "analysis/rta.hpp"
#include "bench_util.hpp"
#include "can/can_bus.hpp"
#include "os/ecu.hpp"
#include "sim/kernel.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

using namespace orte;
using sim::milliseconds;
using sim::microseconds;

namespace {

struct BandResult {
  int sets = 0;
  int schedulable = 0;
  int violations = 0;
  double tightness_sum = 0;
  int tightness_n = 0;
};

BandResult run_task_band(double u, int sets, std::uint64_t seed0) {
  BandResult out;
  for (int s = 0; s < sets; ++s) {
    sim::Rng rng(seed0 + static_cast<std::uint64_t>(s));
    const std::size_t n = 3 + rng.index(6);
    const std::vector<sim::Duration> periods{
        milliseconds(1), milliseconds(2), milliseconds(4), milliseconds(5),
        milliseconds(8), milliseconds(10), milliseconds(20)};
    const auto shares = rng.uunifast(n, u);
    std::vector<analysis::AnalysisTask> model;
    for (std::size_t i = 0; i < n; ++i) {
      analysis::AnalysisTask t;
      t.name = "t" + std::to_string(i);
      t.period = periods[rng.index(periods.size())];
      t.wcet = std::max<sim::Duration>(
          microseconds(1), static_cast<sim::Duration>(
                               static_cast<double>(t.period) * shares[i]));
      model.push_back(t);
    }
    analysis::assign_deadline_monotonic(model);
    const auto result = analysis::analyze(model);
    ++out.sets;
    if (!result.schedulable) continue;
    ++out.schedulable;

    sim::Kernel kernel;
    sim::Trace trace;
    trace.enable_retention(false);
    os::Ecu ecu(kernel, trace, "e");
    for (const auto& m : model) {
      ecu.add_task({.name = m.name, .priority = m.priority, .period = m.period})
          .set_body(m.wcet);
    }
    ecu.start();
    kernel.run_until(milliseconds(200));
    for (const auto& m : model) {
      const double bound = sim::to_ms(result.response.at(m.name));
      const double observed = ecu.find_task(m.name)->response_times().max();
      if (observed > bound + 1e-9) ++out.violations;
      out.tightness_sum += observed / bound;
      ++out.tightness_n;
    }
  }
  return out;
}

BandResult run_can_band(double u, int sets, std::uint64_t seed0) {
  BandResult out;
  constexpr std::int64_t kBitrate = 500'000;
  for (int s = 0; s < sets; ++s) {
    sim::Rng rng(seed0 + static_cast<std::uint64_t>(s));
    const std::size_t n = 4 + rng.index(8);
    const auto shares = rng.uunifast(n, u);
    std::vector<analysis::CanMessage> model;
    for (std::size_t i = 0; i < n; ++i) {
      analysis::CanMessage m;
      m.name = "m" + std::to_string(i);
      m.id = static_cast<std::uint32_t>(0x100 + i);
      m.bytes = 1 + rng.index(8);
      const auto c = can::frame_transmission_time(m.bytes, kBitrate);
      m.period = std::max<sim::Duration>(
          milliseconds(1),
          static_cast<sim::Duration>(static_cast<double>(c) / shares[i]));
      model.push_back(m);
    }
    const auto result = analysis::analyze_can(model, kBitrate);
    ++out.sets;
    if (!result.schedulable) continue;
    ++out.schedulable;

    sim::Kernel kernel;
    sim::Trace trace;
    trace.enable_retention(false);
    can::CanBus bus(kernel, trace, {.bitrate_bps = kBitrate});
    auto& sender = bus.attach();
    auto& listener = bus.attach();
    std::map<std::uint32_t, sim::Duration> observed;
    listener.on_receive([&](const net::Frame& f) {
      observed[f.id] =
          std::max(observed[f.id], kernel.now() - f.enqueued_at);
    });
    for (const auto& m : model) {
      kernel.schedule_periodic(0, m.period, [&sender, &kernel, m] {
        net::Frame f;
        f.id = m.id;
        f.name = m.name;
        f.payload.assign(m.bytes, 0x55);
        f.enqueued_at = kernel.now();
        sender.send(f);
      });
    }
    kernel.run_until(milliseconds(400));
    for (const auto& m : model) {
      auto bit = result.response.find(m.name);
      if (bit == result.response.end()) continue;
      const double bound = sim::to_us(bit->second);
      const double obs = sim::to_us(observed[m.id]);
      if (obs > bound + 1e-6) ++out.violations;
      out.tightness_sum += obs / bound;
      ++out.tightness_n;
    }
  }
  return out;
}

void print_band(const std::string& label, const BandResult& r) {
  bench::print_row(
      {label, std::to_string(r.sets),
       bench::fmt(100.0 * r.schedulable / r.sets, 1),
       std::to_string(r.violations),
       r.tightness_n > 0 ? bench::fmt(r.tightness_sum / r.tightness_n, 3)
                         : "-"});
}

void record_band(bench::JsonReport& report, const char* workload, double u,
                 const BandResult& r) {
  report.row("e6_bound_validity")
      .str("workload", workload)
      .num("utilization", u)
      .num_u("sets", static_cast<std::uint64_t>(r.sets))
      .num("schedulable_pct", 100.0 * r.schedulable / r.sets)
      .num_u("violations", static_cast<std::uint64_t>(r.violations))
      .num("tightness",
           r.tightness_n > 0 ? r.tightness_sum / r.tightness_n : 0.0);
}

}  // namespace

int main() {
  bench::JsonReport report("e6_analysis_validity");
  bench::print_title(
      "E6 / Table 6: analysis bounds vs simulation (100 random sets per band)");
  bench::print_row({"workload / utilization", "sets", "sched %", "violations",
                    "tightness"});
  bench::print_rule(5);
  int band_index = 0;
  for (double u : {0.3, 0.5, 0.7, 0.9}) {
    const auto r = run_task_band(u, 100, 1000 + 100 * band_index);
    print_band("task RTA / U=" + bench::fmt(u, 1), r);
    record_band(report, "task_rta", u, r);
    ++band_index;
  }
  bench::print_rule(5);
  for (double u : {0.3, 0.5, 0.7, 0.9}) {
    const auto r = run_can_band(u, 100, 5000 + 100 * band_index);
    print_band("CAN RTA / U=" + bench::fmt(u, 1), r);
    record_band(report, "can_rta", u, r);
    ++band_index;
  }
  std::puts(
      "\nExpected shape (paper S3): zero bound violations in every band\n"
      "(the analyses are safe); tightness approaches 1.0 as utilization\n"
      "grows (the synchronous critical instant is actually hit).");
  return 0;
}
