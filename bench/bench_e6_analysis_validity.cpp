// Experiment E6 / Table 6 — Validity of the schedulability analyses (§3).
//
// Claim: the response-time analyses used for design-time verification are
// safe (no simulated response ever exceeds its bound) and usefully tight.
//
// Workload: per utilization band, 100 random task sets (UUniFast, periods
// from an automotive grid) simulated for 2+ hyperperiods against the task
// RTA; and 100 random CAN message sets against the Davis CAN analysis.
// Reported: schedulability rate, bound violations (must be 0), and mean
// tightness = observed worst / analytic bound.
//
// Since the V9 whole-program pass, a third workload exercises the holistic
// end-to-end path: a multi-ECU FlexRay pipeline set with data-received event
// sinks is bounded by validation::analyze_chains and then simulated with the
// generated LatencyMonitors, asserting bound >= observed per chain. Fixpoint
// iteration count and analysis wall time go to BENCH_e6_analysis.json so the
// holistic coverage is tracked per PR.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/can_analysis.hpp"
#include "analysis/rta.hpp"
#include "bench_util.hpp"
#include "can/can_bus.hpp"
#include "contracts/contract.hpp"
#include "os/ecu.hpp"
#include "rv/monitors.hpp"
#include "rv/registry.hpp"
#include "sim/kernel.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"
#include "validation/flow_analysis.hpp"
#include "validation/validator.hpp"
#include "vfb/model.hpp"
#include "vfb/system.hpp"

using namespace orte;
using sim::milliseconds;
using sim::microseconds;

namespace {

struct BandResult {
  int sets = 0;
  int schedulable = 0;
  int violations = 0;
  double tightness_sum = 0;
  int tightness_n = 0;
};

BandResult run_task_band(double u, int sets, std::uint64_t seed0) {
  BandResult out;
  for (int s = 0; s < sets; ++s) {
    sim::Rng rng(seed0 + static_cast<std::uint64_t>(s));
    const std::size_t n = 3 + rng.index(6);
    const std::vector<sim::Duration> periods{
        milliseconds(1), milliseconds(2), milliseconds(4), milliseconds(5),
        milliseconds(8), milliseconds(10), milliseconds(20)};
    const auto shares = rng.uunifast(n, u);
    std::vector<analysis::AnalysisTask> model;
    for (std::size_t i = 0; i < n; ++i) {
      analysis::AnalysisTask t;
      t.name = "t" + std::to_string(i);
      t.period = periods[rng.index(periods.size())];
      t.wcet = std::max<sim::Duration>(
          microseconds(1), static_cast<sim::Duration>(
                               static_cast<double>(t.period) * shares[i]));
      model.push_back(t);
    }
    analysis::assign_deadline_monotonic(model);
    const auto result = analysis::analyze(model);
    ++out.sets;
    if (!result.schedulable) continue;
    ++out.schedulable;

    sim::Kernel kernel;
    sim::Trace trace;
    trace.enable_retention(false);
    os::Ecu ecu(kernel, trace, "e");
    for (const auto& m : model) {
      ecu.add_task({.name = m.name, .priority = m.priority, .period = m.period})
          .set_body(m.wcet);
    }
    ecu.start();
    kernel.run_until(milliseconds(200));
    for (const auto& m : model) {
      const double bound = sim::to_ms(result.response.at(m.name));
      const double observed = ecu.find_task(m.name)->response_times().max();
      if (observed > bound + 1e-9) ++out.violations;
      out.tightness_sum += observed / bound;
      ++out.tightness_n;
    }
  }
  return out;
}

BandResult run_can_band(double u, int sets, std::uint64_t seed0) {
  BandResult out;
  constexpr std::int64_t kBitrate = 500'000;
  for (int s = 0; s < sets; ++s) {
    sim::Rng rng(seed0 + static_cast<std::uint64_t>(s));
    const std::size_t n = 4 + rng.index(8);
    const auto shares = rng.uunifast(n, u);
    std::vector<analysis::CanMessage> model;
    for (std::size_t i = 0; i < n; ++i) {
      analysis::CanMessage m;
      m.name = "m" + std::to_string(i);
      m.id = static_cast<std::uint32_t>(0x100 + i);
      m.bytes = 1 + rng.index(8);
      const auto c = can::frame_transmission_time(m.bytes, kBitrate);
      m.period = std::max<sim::Duration>(
          milliseconds(1),
          static_cast<sim::Duration>(static_cast<double>(c) / shares[i]));
      model.push_back(m);
    }
    const auto result = analysis::analyze_can(model, kBitrate);
    ++out.sets;
    if (!result.schedulable) continue;
    ++out.schedulable;

    sim::Kernel kernel;
    sim::Trace trace;
    trace.enable_retention(false);
    can::CanBus bus(kernel, trace, {.bitrate_bps = kBitrate});
    auto& sender = bus.attach();
    auto& listener = bus.attach();
    std::map<std::uint32_t, sim::Duration> observed;
    listener.on_receive([&](const net::Frame& f) {
      observed[f.id] =
          std::max(observed[f.id], kernel.now() - f.enqueued_at);
    });
    for (const auto& m : model) {
      kernel.schedule_periodic(0, m.period, [&sender, &kernel, m] {
        net::Frame f;
        f.id = m.id;
        f.name = m.name;
        f.payload.assign(m.bytes, 0x55);
        f.enqueued_at = kernel.now();
        sender.send(f);
      });
    }
    kernel.run_until(milliseconds(400));
    for (const auto& m : model) {
      auto bit = result.response.find(m.name);
      if (bit == result.response.end()) continue;
      const double bound = sim::to_us(bit->second);
      const double obs = sim::to_us(observed[m.id]);
      if (obs > bound + 1e-6) ++out.violations;
      out.tightness_sum += obs / bound;
      ++out.tightness_n;
    }
  }
  return out;
}

// --- Event-task / FlexRay chain case (holistic fixpoint, rules V9) ----------

struct ChainCaseResult {
  std::size_t pipelines = 0;
  int fixpoint_iterations = 0;
  double analysis_wall_ms = 0;
  int chains_bounded = 0;
  int monitors_checked = 0;
  int violations = 0;
  double tightness_sum = 0;
};

/// Deterministic cross-ECU pipeline set: every pipeline is a timing-
/// triggered producer on one ECU feeding a data-received sink on the other
/// over the FlexRay static segment — exactly the shape the generated
/// LatencyMonitors watch and analyze_chains bounds.
ChainCaseResult run_chain_case() {
  using namespace vfb;
  ChainCaseResult out;
  Composition comp;
  DeploymentPlan plan;
  plan.bus = BusKind::kFlexRay;
  const std::vector<sim::Duration> periods{milliseconds(5), milliseconds(10),
                                           milliseconds(20), milliseconds(10)};
  out.pipelines = periods.size();
  for (std::size_t i = 0; i < out.pipelines; ++i) {
    const std::string s = std::to_string(i);
    PortInterface iface;
    iface.name = "I" + s;
    iface.kind = PortInterface::Kind::kSenderReceiver;
    iface.elements.push_back(DataElement{"val", 32, 0, false});
    comp.add_interface(iface);

    Runnable produce;
    produce.name = "produce";
    produce.trigger = RunnableTrigger::timing(periods[i]);
    produce.wcet_bound = microseconds(150);
    produce.accesses.push_back({"out", "val", DataAccessKind::kImplicitWrite});
    produce.behavior = [](RunnableContext& ctx) { ctx.write("out", "val", 42); };
    comp.add_type({"P" + s,
                   {Port{"out", iface.name, PortDirection::kProvided}},
                   {produce}});

    Runnable consume;
    consume.name = "consume";
    consume.trigger = RunnableTrigger::data_received("in", "val");
    consume.wcet_bound = microseconds(100);
    consume.accesses.push_back({"in", "val", DataAccessKind::kImplicitRead});
    comp.add_type({"C" + s,
                   {Port{"in", iface.name, PortDirection::kRequired}},
                   {consume}});

    comp.add_instance({"p" + s, "P" + s});
    comp.add_instance({"k" + s, "C" + s});
    comp.add_connector({"p" + s, "out", "k" + s, "in"});
    plan.instances["p" + s] = {.ecu = i % 2 == 0 ? "E0" : "E1"};
    plan.instances["k" + s] = {.ecu = i % 2 == 0 ? "E1" : "E0"};

    // Generous obligation: V9 reports info (slack), never an error, and the
    // generated monitor gets the static bound stamped for the cross-check.
    contracts::Contract c{.name = "CChain" + s};
    c.assumptions.push_back(contracts::FlowSpec{
        .flow = "in.val", .timing = {.latency = sim::seconds(1)}});
    comp.bind_contract("k" + s, c);
  }

  bench::WallClock clock;
  const auto analysis =
      validation::analyze_chains(comp, plan, comp.bound_contracts());
  out.analysis_wall_ms = clock.elapsed_ms();
  out.fixpoint_iterations = analysis.iterations;
  for (const auto& cb : analysis.bounds) {
    if (cb.computable && !cb.sink_task.empty()) ++out.chains_bounded;
  }

  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  vfb::System sys(kernel, trace, comp, plan);
  sys.start();
  sys.run_for(milliseconds(400));
  for (const rv::LatencyMonitor* lm : sys.monitors()->latency_monitors()) {
    if (lm->spec().static_bound <= 0 || lm->samples() == 0) continue;
    ++out.monitors_checked;
    if (lm->worst() > lm->spec().static_bound) ++out.violations;
    out.tightness_sum += static_cast<double>(lm->worst()) /
                         static_cast<double>(lm->spec().static_bound);
  }
  return out;
}

void print_band(const std::string& label, const BandResult& r) {
  bench::print_row(
      {label, std::to_string(r.sets),
       bench::fmt(100.0 * r.schedulable / r.sets, 1),
       std::to_string(r.violations),
       r.tightness_n > 0 ? bench::fmt(r.tightness_sum / r.tightness_n, 3)
                         : "-"});
}

void record_band(bench::JsonReport& report, const char* workload, double u,
                 const BandResult& r) {
  report.row("e6_bound_validity")
      .str("workload", workload)
      .num("utilization", u)
      .num_u("sets", static_cast<std::uint64_t>(r.sets))
      .num("schedulable_pct", 100.0 * r.schedulable / r.sets)
      .num_u("violations", static_cast<std::uint64_t>(r.violations))
      .num("tightness",
           r.tightness_n > 0 ? r.tightness_sum / r.tightness_n : 0.0);
}

}  // namespace

int main() {
  bench::JsonReport report("e6_analysis_validity");
  bench::print_title(
      "E6 / Table 6: analysis bounds vs simulation (100 random sets per band)");
  bench::print_row({"workload / utilization", "sets", "sched %", "violations",
                    "tightness"});
  bench::print_rule(5);
  int band_index = 0;
  for (double u : {0.3, 0.5, 0.7, 0.9}) {
    const auto r = run_task_band(u, 100, 1000 + 100 * band_index);
    print_band("task RTA / U=" + bench::fmt(u, 1), r);
    record_band(report, "task_rta", u, r);
    ++band_index;
  }
  bench::print_rule(5);
  for (double u : {0.3, 0.5, 0.7, 0.9}) {
    const auto r = run_can_band(u, 100, 5000 + 100 * band_index);
    print_band("CAN RTA / U=" + bench::fmt(u, 1), r);
    record_band(report, "can_rta", u, r);
    ++band_index;
  }
  bench::print_rule(5);
  const auto chain = run_chain_case();
  bench::print_row(
      {"holistic chain / FlexRay", std::to_string(chain.pipelines),
       chain.monitors_checked > 0 ? "100.0" : "0.0",
       std::to_string(chain.violations),
       chain.monitors_checked > 0
           ? bench::fmt(chain.tightness_sum / chain.monitors_checked, 3)
           : "-"});
  std::printf(
      "holistic fixpoint: %d iterations, %.3f ms analysis wall time, "
      "%d/%d chains bounded\n",
      chain.fixpoint_iterations, chain.analysis_wall_ms, chain.chains_bounded,
      static_cast<int>(chain.pipelines));
  {
    // Separate file (BENCH_e6_analysis.json) so per-PR tooling tracks the
    // holistic pass itself — iteration count and wall time — independently
    // of the band tables above.
    bench::JsonReport chain_report("e6_analysis");
    chain_report.row("e6_chain_fixpoint")
        .str("workload", "event_flexray_chain")
        .num_u("pipelines", static_cast<std::uint64_t>(chain.pipelines))
        .num_u("fixpoint_iterations",
               static_cast<std::uint64_t>(chain.fixpoint_iterations))
        .num("analysis_wall_ms", chain.analysis_wall_ms)
        .num_u("chains_bounded",
               static_cast<std::uint64_t>(chain.chains_bounded))
        .num_u("monitors_checked",
               static_cast<std::uint64_t>(chain.monitors_checked))
        .num_u("violations", static_cast<std::uint64_t>(chain.violations))
        .num("tightness", chain.monitors_checked > 0
                              ? chain.tightness_sum / chain.monitors_checked
                              : 0.0);
  }
  std::puts(
      "\nExpected shape (paper S3): zero bound violations in every band\n"
      "(the analyses are safe); tightness approaches 1.0 as utilization\n"
      "grows (the synchronous critical instant is actually hit).");
  return 0;
}
