// Shared helpers for the experiment benches: fixed-width table printing in
// the style the paper's evaluation tables would use, and wall-clock timing.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace orte::bench {

inline void print_title(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Print a row of fixed-width cells (15 chars each, first cell 28).
inline void print_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::printf(i == 0 ? "%-28s" : "%15s", cells[i].c_str());
  }
  std::printf("\n");
}

inline void print_rule(std::size_t cells) {
  std::string line(28 + 15 * (cells - 1), '-');
  std::printf("%s\n", line.c_str());
}

inline std::string fmt(double v, int prec = 2) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string fmt_u(std::uint64_t v) { return std::to_string(v); }

class WallClock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace orte::bench
