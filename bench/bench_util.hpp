// Shared helpers for the experiment benches: fixed-width table printing in
// the style the paper's evaluation tables would use, wall-clock timing, and
// machine-readable JSON result files (BENCH_<name>.json) so the perf
// trajectory is tracked across PRs instead of only living in prose.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace orte::bench {

inline void print_title(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Print a row of fixed-width cells (15 chars each, first cell 28).
inline void print_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::printf(i == 0 ? "%-28s" : "%15s", cells[i].c_str());
  }
  std::printf("\n");
}

inline void print_rule(std::size_t cells) {
  std::string line(28 + 15 * (cells - 1), '-');
  std::printf("%s\n", line.c_str());
}

inline std::string fmt(double v, int prec = 2) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string fmt_u(std::uint64_t v) { return std::to_string(v); }

class WallClock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// --- Machine-readable results -------------------------------------------------

/// One JSON object in a JsonReport: chain num()/str() calls to add fields.
class JsonRow {
 public:
  JsonRow& num(std::string_view key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return raw(key, buf);
  }
  JsonRow& num_u(std::string_view key, std::uint64_t value) {
    return raw(key, std::to_string(value));
  }
  JsonRow& str(std::string_view key, std::string_view value) {
    std::string quoted = "\"";
    for (const char c : value) {
      if (c == '"' || c == '\\') quoted.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control
      quoted.push_back(c);
    }
    quoted.push_back('"');
    return raw(key, quoted);
  }

  [[nodiscard]] const std::string& body() const { return body_; }

 private:
  JsonRow& raw(std::string_view key, std::string_view rendered) {
    if (!body_.empty()) body_ += ", ";
    body_ += "\"";
    body_.append(key);
    body_ += "\": ";
    body_.append(rendered);
    return *this;
  }

  std::string body_;
};

/// Collects result rows and writes BENCH_<name>.json (into
/// $ORTE_BENCH_JSON_DIR when set, else the working directory) at
/// destruction. Every bench registers the same values its stdout tables
/// print, so CI and cross-PR tooling diff structured numbers, not prose.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;
  ~JsonReport() { write(); }

  /// Add a row tagged with the table it belongs to.
  JsonRow& row(std::string_view table) {
    rows_.emplace_back();
    rows_.back().str("table", table);
    return rows_.back();
  }

  /// Write BENCH_<name>.json now (idempotent; the destructor is a no-op
  /// afterwards).
  void write() {
    if (written_) return;
    written_ = true;
    std::string path;
    if (const char* dir = std::getenv("ORTE_BENCH_JSON_DIR")) {
      path = std::string(dir) + "/";
    }
    path += "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n", name_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "    {%s}%s\n", rows_[i].body().c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }

 private:
  std::string name_;
  std::vector<JsonRow> rows_;
  bool written_ = false;
};

}  // namespace orte::bench
