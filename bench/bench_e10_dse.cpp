// Experiment E10 / Table 9 — Design-space exploration of mappings (§3).
//
// Claim: contract-based vertical assumptions + distributed schedulability
// analysis let a tool "explore allocation decisions with respect to their
// impact on extra-functional requirements" before implementation.
//
// Workload: a 12-runnable application (3 chains of 4) to be mapped onto 4
// ECUs connected by CAN. For each candidate mapping we check
//   1. vertical fit (sum of CPU shares per ECU <= 70%),
//   2. per-ECU response-time analysis,
//   3. CAN analysis for every cross-ECU chain edge,
//   4. composed end-to-end latency per chain vs its 25 ms requirement.
// Search: exhaustive over chain-contiguity-preserving mappings plus random
// sampling of arbitrary mappings, reporting feasibility yield and the best
// mapping found.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "analysis/can_analysis.hpp"
#include "analysis/e2e.hpp"
#include "analysis/rta.hpp"
#include "bench_util.hpp"
#include "contracts/network.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

using namespace orte;
using sim::milliseconds;
using sim::microseconds;

namespace {

constexpr int kEcus = 4;
constexpr int kChains = 3;
constexpr int kPerChain = 4;
constexpr int kRunnables = kChains * kPerChain;
constexpr sim::Duration kRequirement = milliseconds(18);

struct RunnableSpec {
  std::string name;
  sim::Duration period;
  sim::Duration wcet;
  int chain;
  int pos;
};

std::vector<RunnableSpec> application() {
  std::vector<RunnableSpec> app;
  const sim::Duration periods[kChains] = {milliseconds(5), milliseconds(10),
                                          milliseconds(20)};
  const sim::Duration wcets[kChains] = {microseconds(600), microseconds(900),
                                        microseconds(1500)};
  for (int c = 0; c < kChains; ++c) {
    for (int p = 0; p < kPerChain; ++p) {
      app.push_back({"r" + std::to_string(c) + "_" + std::to_string(p),
                     periods[c], wcets[c], c, p});
    }
  }
  return app;
}

struct Evaluation {
  bool vertical_ok = false;
  bool cpu_ok = false;
  bool bus_ok = false;
  bool latency_ok = false;
  sim::Duration worst_chain = 0;
  [[nodiscard]] bool feasible() const {
    return vertical_ok && cpu_ok && bus_ok && latency_ok;
  }
};

Evaluation evaluate(const std::vector<RunnableSpec>& app,
                    const std::vector<int>& mapping) {
  Evaluation ev;
  // 1. Vertical fit via the contract network.
  contracts::ContractNetwork net;
  for (const auto& r : app) {
    contracts::Contract c;
    c.name = r.name;
    c.vertical.cpu_utilization =
        static_cast<double>(r.wcet) / static_cast<double>(r.period);
    net.add_component(c);
  }
  std::map<std::string, std::string> cmap;
  for (int i = 0; i < kRunnables; ++i) {
    cmap[app[static_cast<std::size_t>(i)].name] =
        "ecu" + std::to_string(mapping[static_cast<std::size_t>(i)]);
  }
  std::vector<contracts::NodeCapacity> nodes;
  for (int e = 0; e < kEcus; ++e) {
    nodes.push_back({.name = "ecu" + std::to_string(e), .cpu = 0.7});
  }
  ev.vertical_ok = net.check_vertical(cmap, nodes).ok;
  if (!ev.vertical_ok) return ev;

  // 2. Per-ECU RTA.
  std::map<std::string, sim::Duration> task_response;
  ev.cpu_ok = true;
  for (int e = 0; e < kEcus; ++e) {
    std::vector<analysis::AnalysisTask> tasks;
    for (int i = 0; i < kRunnables; ++i) {
      if (mapping[static_cast<std::size_t>(i)] != e) continue;
      const auto& r = app[static_cast<std::size_t>(i)];
      tasks.push_back({.name = r.name, .wcet = r.wcet, .period = r.period});
    }
    analysis::assign_deadline_monotonic(tasks);
    const auto result = analysis::analyze(tasks);
    if (!result.schedulable) {
      ev.cpu_ok = false;
      return ev;
    }
    for (const auto& [name, resp] : result.response) {
      task_response[name] = resp;
    }
  }

  // 3. CAN analysis for cross-ECU edges (one 8-byte frame per edge; id by
  //    chain rate).
  std::vector<analysis::CanMessage> msgs;
  std::vector<std::pair<int, int>> edge_of_msg;  // (chain, pos)
  for (const auto& r : app) {
    if (r.pos == kPerChain - 1) continue;
    const int next = r.chain * kPerChain + r.pos + 1;
    if (mapping[static_cast<std::size_t>(r.chain * kPerChain + r.pos)] ==
        mapping[static_cast<std::size_t>(next)]) {
      continue;  // same ECU: RTE-local copy
    }
    analysis::CanMessage m;
    m.name = "sg_" + r.name;
    m.id = static_cast<std::uint32_t>(0x100 + msgs.size() +
                                      100 * static_cast<std::uint32_t>(r.chain));
    m.bytes = 8;
    m.period = r.period;
    msgs.push_back(m);
    edge_of_msg.emplace_back(r.chain, r.pos);
  }
  const auto bus_result = analysis::analyze_can(msgs, 500'000);
  ev.bus_ok = bus_result.schedulable;
  if (!ev.bus_ok) return ev;

  // 4. End-to-end per chain. All stages are direct (event-chain semantics):
  //    the generated RTE activates downstream runnables on data reception,
  //    so no sampling delays accrue.
  ev.latency_ok = true;
  for (int c = 0; c < kChains; ++c) {
    std::vector<analysis::Stage> chain;
    for (int p = 0; p < kPerChain; ++p) {
      const auto& r = app[static_cast<std::size_t>(c * kPerChain + p)];
      chain.push_back({.name = r.name,
                       .response = task_response.at(r.name),
                       .period = r.period,
                       .sampled = false});
      if (p < kPerChain - 1) {
        const std::string sig = "sg_" + r.name;
        auto it = bus_result.response.find(sig);
        if (it != bus_result.response.end()) {
          chain.push_back({.name = sig, .response = it->second});
        }
      }
    }
    const auto e2e = analysis::e2e_latency(chain);
    ev.worst_chain = std::max(ev.worst_chain, e2e.worst);
    if (e2e.worst > kRequirement) ev.latency_ok = false;
  }
  return ev;
}

}  // namespace

int main() {
  bench::JsonReport report("e10_dse");
  const auto app = application();
  bench::print_title(
      "E10 / Table 9: mapping exploration, 12 runnables -> 4 ECUs over CAN");

  // Strategy 1: chain-contiguous mappings (each chain entirely on one ECU or
  // split once at a chosen position onto a chosen pair) — the designs a human
  // integrator would consider. Enumerate chain->ECU assignments: 4^3 = 64.
  int explored = 0, feasible = 0;
  sim::Duration best = INT64_MAX;
  std::string best_desc = "-";
  for (int a = 0; a < kEcus; ++a) {
    for (int b = 0; b < kEcus; ++b) {
      for (int c = 0; c < kEcus; ++c) {
        std::vector<int> mapping(kRunnables);
        for (int p = 0; p < kPerChain; ++p) {
          mapping[static_cast<std::size_t>(0 * kPerChain + p)] = a;
          mapping[static_cast<std::size_t>(1 * kPerChain + p)] = b;
          mapping[static_cast<std::size_t>(2 * kPerChain + p)] = c;
        }
        const auto ev = evaluate(app, mapping);
        ++explored;
        if (ev.feasible()) {
          ++feasible;
          if (ev.worst_chain < best) {
            best = ev.worst_chain;
            best_desc = "chains->(" + std::to_string(a) + "," +
                        std::to_string(b) + "," + std::to_string(c) + ")";
          }
        }
      }
    }
  }
  bench::print_row({"strategy", "explored", "feasible", "yield %",
                    "best e2e ms"});
  bench::print_rule(5);
  bench::print_row({"chain-contiguous", std::to_string(explored),
                    std::to_string(feasible),
                    bench::fmt(100.0 * feasible / explored, 1),
                    best == INT64_MAX ? "-" : bench::fmt(sim::to_ms(best), 2)});
  report.row("e10_mapping_exploration")
      .str("strategy", "chain_contiguous")
      .num_u("explored", static_cast<std::uint64_t>(explored))
      .num_u("feasible", static_cast<std::uint64_t>(feasible))
      .num("best_e2e_ms", best == INT64_MAX ? -1.0 : sim::to_ms(best));

  // Strategy 2: random arbitrary mappings.
  sim::Rng rng(42);
  int r_explored = 0, r_feasible = 0;
  int fail_vertical = 0, fail_cpu = 0, fail_bus = 0, fail_latency = 0;
  sim::Duration r_best = INT64_MAX;
  for (int s = 0; s < 5000; ++s) {
    std::vector<int> mapping(kRunnables);
    for (auto& m : mapping) m = static_cast<int>(rng.index(kEcus));
    const auto ev = evaluate(app, mapping);
    ++r_explored;
    if (ev.feasible()) {
      ++r_feasible;
      r_best = std::min(r_best, ev.worst_chain);
    } else if (!ev.vertical_ok) {
      ++fail_vertical;
    } else if (!ev.cpu_ok) {
      ++fail_cpu;
    } else if (!ev.bus_ok) {
      ++fail_bus;
    } else {
      ++fail_latency;
    }
  }
  bench::print_row({"random sampling", std::to_string(r_explored),
                    std::to_string(r_feasible),
                    bench::fmt(100.0 * r_feasible / r_explored, 1),
                    r_best == INT64_MAX ? "-"
                                        : bench::fmt(sim::to_ms(r_best), 2)});
  report.row("e10_mapping_exploration")
      .str("strategy", "random_sampling")
      .num_u("explored", static_cast<std::uint64_t>(r_explored))
      .num_u("feasible", static_cast<std::uint64_t>(r_feasible))
      .num("best_e2e_ms", r_best == INT64_MAX ? -1.0 : sim::to_ms(r_best))
      .num_u("fail_vertical", static_cast<std::uint64_t>(fail_vertical))
      .num_u("fail_cpu_rta", static_cast<std::uint64_t>(fail_cpu))
      .num_u("fail_bus_rta", static_cast<std::uint64_t>(fail_bus))
      .num_u("fail_latency", static_cast<std::uint64_t>(fail_latency));

  std::printf("\nbest chain-contiguous mapping: %s\n", best_desc.c_str());
  std::printf(
      "random-mapping rejection reasons: vertical=%d cpu-rta=%d bus-rta=%d "
      "latency=%d\n",
      fail_vertical, fail_cpu, fail_bus, fail_latency);
  std::puts(
      "\nExpected shape (paper S3): the analysis pipeline evaluates thousands\n"
      "of mappings in milliseconds and prunes the infeasible ones before any\n"
      "implementation exists (vertical overloads and latency violations\n"
      "dominate the rejections). Exploration pays off: random sampling finds\n"
      "mappings that beat the best human-obvious chain-contiguous design by\n"
      "splitting the slowest chain across ECUs — the cheap design-space\n"
      "exploration the rich-component methodology promises.");
  return 0;
}
