// Experiment E1 / Table 1 — Time predictability (paper §1, §3, §4).
//
// Claim: end-to-end latency over an event-triggered CAN backbone degrades
// and jitters as bus load rises; over a time-triggered FlexRay static
// segment it stays bounded and load-independent.
//
// Workload: sensor -> controller -> actuator across 3 ECUs (the control path
// of the brake-by-wire example), plus a background-traffic ECU sweeping the
// shared bus from 0 to ~90% load (CAN: higher-priority periodic frames;
// FlexRay: dynamic-segment frames, which by construction cannot touch the
// static slots carrying the control path).
#include <algorithm>
#include <cstdio>
#include <string>

#include "analysis/e2e.hpp"
#include "analysis/flexray_analysis.hpp"
#include "bench_util.hpp"
#include "can/can_bus.hpp"
#include "sim/kernel.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "tte/tte_switch.hpp"
#include "vfb/model.hpp"
#include "vfb/rte.hpp"
#include "vfb/system.hpp"

using namespace orte;
using sim::microseconds;
using sim::milliseconds;

namespace {

struct PathModel {
  vfb::Composition comp;
  sim::Stats e2e_ms;

  PathModel() {
    vfb::PortInterface ival;
    ival.name = "IVal";
    ival.elements.push_back(vfb::DataElement{"val", 64, 0, false});
    comp.add_interface(ival);

    vfb::Runnable sense;
    sense.name = "sense";
    sense.trigger = vfb::RunnableTrigger::timing(milliseconds(10));
    sense.execution_time = [] { return microseconds(200); };
    sense.accesses.push_back({"out", "val", vfb::DataAccessKind::kExplicitWrite});
    sense.behavior = [](vfb::RunnableContext& ctx) {
      ctx.write("out", "val", static_cast<std::uint64_t>(ctx.now()));
    };
    comp.add_type({"Sensor",
                   {vfb::Port{"out", "IVal", vfb::PortDirection::kProvided}},
                   {sense}});

    vfb::Runnable control;
    control.name = "control";
    control.trigger = vfb::RunnableTrigger::data_received("in", "val");
    control.execution_time = [] { return microseconds(400); };
    control.accesses.push_back({"in", "val", vfb::DataAccessKind::kExplicitRead});
    control.accesses.push_back(
        {"out", "val", vfb::DataAccessKind::kExplicitWrite});
    control.behavior = [](vfb::RunnableContext& ctx) {
      ctx.write("out", "val", ctx.read("in", "val"));
    };
    comp.add_type({"Controller",
                   {vfb::Port{"in", "IVal", vfb::PortDirection::kRequired},
                    vfb::Port{"out", "IVal", vfb::PortDirection::kProvided}},
                   {control}});

    vfb::Runnable act;
    act.name = "actuate";
    act.trigger = vfb::RunnableTrigger::data_received("in", "val");
    act.execution_time = [] { return microseconds(200); };
    act.accesses.push_back({"in", "val", vfb::DataAccessKind::kExplicitRead});
    act.behavior = [this](vfb::RunnableContext& ctx) {
      const auto stamped = static_cast<sim::Time>(ctx.read("in", "val"));
      e2e_ms.add(sim::to_ms(ctx.now() - stamped));
    };
    comp.add_type({"Actuator",
                   {vfb::Port{"in", "IVal", vfb::PortDirection::kRequired}},
                   {act}});

    comp.add_instance({"sensor", "Sensor"});
    comp.add_instance({"ctrl", "Controller"});
    comp.add_instance({"act", "Actuator"});
    comp.add_connector({"sensor", "out", "ctrl", "in"});
    comp.add_connector({"ctrl", "out", "act", "in"});
  }
};

struct Result {
  double mean_ms = 0, max_ms = 0, jitter_ms = 0, bus_util = 0;
};

/// Run the control path with `load` background bus utilization (approx).
Result run_case(vfb::BusKind bus, double load) {
  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  PathModel model;
  vfb::DeploymentPlan plan;
  plan.bus = bus;
  plan.instances["sensor"] = {.ecu = "ecu_s"};
  plan.instances["ctrl"] = {.ecu = "ecu_c"};
  plan.instances["act"] = {.ecu = "ecu_a"};
  vfb::System sys(kernel, trace, model.comp, plan);

  // Background traffic: frames of 8 bytes at a period chosen to hit `load`.
  if (load > 0) {
    if (bus == vfb::BusKind::kCan) {
      auto& noisy = sys.can_bus()->attach();
      const sim::Duration frame = sys.can_bus()->frame_time(8);
      const auto period =
          static_cast<sim::Duration>(static_cast<double>(frame) / load);
      // Background uses *higher priority* ids than the control signals —
      // the aggressive but realistic case (gateway traffic bursts).
      kernel.schedule_periodic(0, period, [&noisy, &kernel] {
        net::Frame f;
        f.id = 0x01;
        f.name = "background";
        f.payload.assign(8, 0xFF);
        f.enqueued_at = kernel.now();
        noisy.send(f);
      });
    } else {
      auto& noisy = sys.flexray_bus()->attach();
      const auto cycle = sys.flexray_bus()->cycle_len();
      const auto& cfg = sys.flexray_bus()->config();
      const auto id = static_cast<std::uint32_t>(cfg.static_slots + 1);
      // Fill the dynamic segment proportionally to `load`, capped at what a
      // cycle's minislot budget can actually carry.
      const sim::Duration tx = static_cast<sim::Duration>((8 + 8) * 8) *
                               (1'000'000'000 / cfg.bitrate_bps);
      const auto slots_per_frame =
          (tx + cfg.minislot_len - 1) / cfg.minislot_len;
      const int capacity = static_cast<int>(
          static_cast<sim::Duration>(cfg.minislots) / slots_per_frame);
      const int frames_per_cycle =
          std::max(1, static_cast<int>(load * capacity));
      kernel.schedule_periodic(
          0, cycle, [&noisy, &kernel, id, frames_per_cycle] {
            for (int i = 0; i < frames_per_cycle; ++i) {
              net::Frame f;
              f.id = id;
              f.name = "background";
              f.payload.assign(8, 0xFF);
              f.enqueued_at = kernel.now();
              noisy.send(f);
            }
          });
    }
  }

  sys.start();
  kernel.run_until(sim::seconds(10));
  Result r;
  r.mean_ms = model.e2e_ms.mean();
  r.max_ms = model.e2e_ms.max();
  r.jitter_ms = model.e2e_ms.spread();
  r.bus_util = bus == vfb::BusKind::kCan
                   ? sys.can_bus()->stats().utilization(kernel.now())
                   : sys.flexray_bus()->stats().utilization(kernel.now());
  return r;
}

/// TTE comparison: a 10 ms TT flow (the control signal) against best-effort
/// background of `load` x link capacity, all converging on one egress port.
Result run_tte_case(double load) {
  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  tte::TteSwitch sw(kernel, trace, {});
  auto& sensor = sw.attach("sensor");
  auto& noisy = sw.attach("noisy");
  sw.attach("actuator");
  sw.add_flow({.id = 1, .cls = tte::TrafficClass::kTimeTriggered,
               .source = 0, .destination = 2, .bytes = 100,
               .period = milliseconds(10), .offset = microseconds(100)});
  sw.add_flow({.id = 9, .cls = tte::TrafficClass::kBestEffort, .source = 1,
               .destination = 2, .bytes = 1000});
  kernel.schedule_periodic(0, milliseconds(10), [&] {
    sensor.send(1, std::vector<std::uint8_t>(100));
  });
  if (load > 0) {
    const auto be_tx = sw.tx_time(1000);
    const auto period =
        static_cast<sim::Duration>(static_cast<double>(be_tx) / load);
    kernel.schedule_periodic(0, period, [&] {
      noisy.send(9, std::vector<std::uint8_t>(1000));
    });
  }
  sw.start();
  kernel.run_until(sim::seconds(10));
  const auto& lat = sw.flow_latency_us(1);
  Result r;
  r.mean_ms = lat.mean() / 1000.0;
  r.max_ms = lat.max() / 1000.0;
  r.jitter_ms = lat.spread() / 1000.0;
  r.bus_util = load;
  return r;
}

}  // namespace

int main() {
  bench::JsonReport report("e1_predictability");
  const auto record = [&report](const char* bus, double load, const Result& r) {
    report.row("e1_latency_vs_load")
        .str("bus", bus)
        .num("target_load", load)
        .num("bus_util_pct", 100 * r.bus_util)
        .num("mean_ms", r.mean_ms)
        .num("max_ms", r.max_ms)
        .num("jitter_ms", r.jitter_ms);
  };
  bench::print_title(
      "E1 / Table 1: end-to-end latency vs bus load (CAN vs FlexRay static)");
  bench::print_row({"bus / target load", "bus util %", "mean ms", "max ms",
                    "jitter ms"});
  bench::print_rule(5);
  for (double load : {0.0, 0.3, 0.6, 0.9}) {
    const auto r = run_case(vfb::BusKind::kCan, load);
    bench::print_row({"CAN 500k / " + bench::fmt(load, 1),
                      bench::fmt(100 * r.bus_util, 1), bench::fmt(r.mean_ms, 3),
                      bench::fmt(r.max_ms, 3), bench::fmt(r.jitter_ms, 3)});
    record("can", load, r);
  }
  bench::print_rule(5);
  for (double load : {0.0, 0.3, 0.6, 0.9}) {
    const auto r = run_case(vfb::BusKind::kFlexRay, load);
    bench::print_row({"FlexRay static / " + bench::fmt(load, 1),
                      bench::fmt(100 * r.bus_util, 1), bench::fmt(r.mean_ms, 3),
                      bench::fmt(r.max_ms, 3), bench::fmt(r.jitter_ms, 3)});
    record("flexray_static", load, r);
  }
  bench::print_rule(5);
  for (double load : {0.0, 0.3, 0.6, 0.9}) {
    const auto r = run_tte_case(load);
    bench::print_row({"TTE TT-flow / " + bench::fmt(load, 1),
                      bench::fmt(100 * r.bus_util, 1),
                      bench::fmt(r.mean_ms, 3), bench::fmt(r.max_ms, 3),
                      bench::fmt(r.jitter_ms, 3)});
    record("tte_tt_flow", load, r);
  }
  std::puts(
      "\nExpected shape (paper S1,S3,S4): CAN max latency and jitter grow with\n"
      "load; FlexRay static-segment latency is load-invariant (temporal\n"
      "isolation of the time-triggered segment); a TTE TT-flow likewise, with\n"
      "residual jitter bounded by one best-effort frame of shuffling.");
  return 0;
}
