// Body domain + workshop diagnostics: LIN, DEM, DCM working together.
//
// A door module and a mirror module hang off a LIN sub-bus polled by the
// body ECU (the LIN master). At t = 3 s the door module's electronics die;
// the master sees no-response slots, debounces them into the DEM, and the
// mode machine degrades the door function. At t = 5 s a workshop tester
// connects and runs a UDS session against the DCM: read DTCs, read the
// identification DID, clear the memory after the (simulated) repair.
#include <cstdio>

#include "bsw/dcm.hpp"
#include "bsw/dem.hpp"
#include "bsw/mode.hpp"
#include "lin/lin_bus.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"

using namespace orte;
using sim::milliseconds;

namespace {
void print_bytes(const char* label, const std::vector<std::uint8_t>& bytes) {
  std::printf("%-28s", label);
  for (auto b : bytes) std::printf(" %02X", b);
  std::printf("\n");
}
}  // namespace

int main() {
  sim::Kernel kernel;
  sim::Trace trace;

  // --- Body LIN cluster ------------------------------------------------------
  lin::LinBus bus(kernel, trace, {});
  auto& master = bus.attach("body_ecu");
  auto& door = bus.attach("door_module");
  auto& mirror = bus.attach("mirror_module");
  bus.set_schedule({{.frame_id = 0x10, .publisher = 1, .bytes = 2},
                    {.frame_id = 0x11, .publisher = 2, .bytes = 2}});

  // Modules publish their state; the door dies at t = 3 s.
  kernel.schedule_periodic(0, milliseconds(50), [&] {
    net::Frame f;
    f.id = 0x10;
    f.name = "door_state";
    f.payload = {0x01, 0x00};  // locked
    door.send(std::move(f));
  });
  kernel.schedule_periodic(0, milliseconds(50), [&] {
    net::Frame f;
    f.id = 0x11;
    f.name = "mirror_state";
    f.payload = {0x02, 0x00};
    mirror.send(std::move(f));
  });
  door.crash_at(sim::seconds(3));

  // --- Health management on the body ECU -------------------------------------
  bsw::Dem dem(kernel, trace);
  dem.add_event({.name = "door_lin_timeout", .debounce_threshold = 3,
                 .dtc_code = 0x9A0110});
  bsw::ModeMachine door_mode(kernel, trace, "door_fn", "AVAILABLE");
  door_mode.add_mode("DEGRADED");
  door_mode.add_transition("AVAILABLE", "DEGRADED");
  dem.on_dtc_stored([&](const bsw::Dtc&) { door_mode.request("DEGRADED"); });

  // Monitor: every door slot either delivers (passed) or times out (failed).
  std::uint64_t last_no_responses = 0;
  master.on_receive([&](const net::Frame& f) {
    if (f.id == 0x10) dem.report("door_lin_timeout", bsw::EventStatus::kPassed);
  });
  kernel.schedule_periodic(bus.cycle_time(), bus.cycle_time(), [&] {
    if (bus.no_responses() > last_no_responses) {
      last_no_responses = bus.no_responses();
      dem.report("door_lin_timeout", bsw::EventStatus::kFailed);
    }
  });

  // --- Workshop tester (DCM) --------------------------------------------------
  bsw::Dcm dcm(kernel, trace, dem);
  dcm.add_did(0xF190, [] {
    return std::vector<std::uint8_t>{'O', 'R', 'T', 'E', '0', '0', '1'};
  });

  bus.start();
  kernel.run_until(sim::seconds(5));

  std::puts("body domain after 5 s (door module died at 3 s):");
  std::printf("  LIN no-response slots : %llu\n",
              static_cast<unsigned long long>(bus.no_responses()));
  std::printf("  DTC stored            : %s\n",
              dem.dtc("door_lin_timeout").has_value() ? "0x9A0110" : "none");
  std::printf("  door function mode    : %s\n\n", door_mode.current().c_str());

  std::puts("workshop tester session:");
  print_bytes("  10 03 (extended session)", dcm.handle({0x10, 0x03}));
  print_bytes("  19 02 FF (read DTCs)", dcm.handle({0x19, 0x02, 0xFF}));
  print_bytes("  22 F1 90 (read VIN DID)", dcm.handle({0x22, 0xF1, 0x90}));
  print_bytes("  14 FF FF FF (clear)", dcm.handle({0x14, 0xFF, 0xFF, 0xFF}));
  print_bytes("  19 02 FF (read again)", dcm.handle({0x19, 0x02, 0xFF}));

  const bool ok = dem.stored_dtcs().empty() && door_mode.in("DEGRADED") &&
                  bus.no_responses() > 10;
  std::puts(ok ? "\n=> diagnosis chain LIN -> DEM -> mode -> DCM complete"
               : "\n=> UNEXPECTED diagnostic state");
  return ok ? 0 : 1;
}
