// Fault-injection campaign over a multi-supplier deployment (src/fi).
//
// The paper's §1 integration scenario, measured instead of asserted: two
// supplier SWCs share the front ECU, a third supplier's consumers run on the
// cabin ECU, and everything meets on one CAN bus. A user-defined fault grid
// — bus faults, a babbling idiot, RTE value faults, task timing faults and
// clock drift — is expanded into deterministic scenarios; every run is
// scored against the rv/DEM/mode pipeline and aggregated into the
// fault-class x detector coverage matrix with per-stage reaction latencies.
//
// Worth noticing in the output: the babbling-idiot row scores *detected*
// rather than *contained* — on CAN, a rogue top-priority node disturbs real
// components (a containment leak the arbitration cannot prevent), which is
// exactly the argument the paper makes for TDMA buses.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "contracts/contract.hpp"
#include "fi/campaign.hpp"
#include "fi/fault.hpp"
#include "sim/time.hpp"
#include "vfb/deployment.hpp"
#include "vfb/model.hpp"
#include "vfb/rte.hpp"

using namespace orte;
using sim::milliseconds;
using sim::microseconds;

namespace {

/// Two supplier SWCs on the front ECU, two consumer SWCs on the cabin ECU,
/// one CAN bus. Fresh bundle per call (the campaign builds concurrently).
fi::ModelBundle multi_supplier() {
  fi::ModelBundle bundle;
  vfb::Composition& model = bundle.model;

  vfb::PortInterface ispeed;
  ispeed.name = "ISpeed";
  ispeed.elements.push_back(vfb::DataElement{"kmh", 16, 0, false});
  model.add_interface(ispeed);

  vfb::PortInterface iclimate;
  iclimate.name = "IClimate";
  iclimate.elements.push_back(vfb::DataElement{"setpoint", 16, 21, false});
  model.add_interface(iclimate);

  // Supplier A: speed sensor, 5 ms, plausible range [0, 250] km/h.
  vfb::Runnable sense;
  sense.name = "sense";
  sense.trigger = vfb::RunnableTrigger::timing(milliseconds(5));
  sense.execution_time = [] { return microseconds(150); };
  sense.accesses.push_back({"out", "kmh", vfb::DataAccessKind::kExplicitWrite});
  sense.behavior = [n = std::make_shared<std::uint64_t>(0)](
                       vfb::RunnableContext& ctx) {
    ctx.write("out", "kmh", 60 + (*n)++ % 120);
  };
  model.add_type({"SpeedSensor",
                  {vfb::Port{"out", "ISpeed", vfb::PortDirection::kProvided}},
                  {sense}});

  // Supplier B: climate controller, 20 ms, setpoint in [16, 30] C.
  vfb::Runnable regulate;
  regulate.name = "regulate";
  regulate.trigger = vfb::RunnableTrigger::timing(milliseconds(20));
  regulate.execution_time = [] { return microseconds(400); };
  regulate.accesses.push_back(
      {"out", "setpoint", vfb::DataAccessKind::kExplicitWrite});
  regulate.behavior = [n = std::make_shared<std::uint64_t>(0)](
                          vfb::RunnableContext& ctx) {
    ctx.write("out", "setpoint", 20 + (*n)++ % 4);
  };
  model.add_type(
      {"ClimateCtrl",
       {vfb::Port{"out", "IClimate", vfb::PortDirection::kProvided}},
       {regulate}});

  // Supplier C: the cabin-side consumers.
  vfb::Runnable show;
  show.name = "show";
  show.trigger = vfb::RunnableTrigger::data_received("in", "kmh");
  show.execution_time = [] { return microseconds(200); };
  show.accesses.push_back({"in", "kmh", vfb::DataAccessKind::kExplicitRead});
  show.behavior = [](vfb::RunnableContext& ctx) { (void)ctx.read("in", "kmh"); };
  model.add_type({"Dashboard",
                  {vfb::Port{"in", "ISpeed", vfb::PortDirection::kRequired}},
                  {show}});

  vfb::Runnable blow;
  blow.name = "blow";
  blow.trigger = vfb::RunnableTrigger::data_received("in", "setpoint");
  blow.execution_time = [] { return microseconds(300); };
  blow.accesses.push_back(
      {"in", "setpoint", vfb::DataAccessKind::kExplicitRead});
  blow.behavior = [](vfb::RunnableContext& ctx) {
    (void)ctx.read("in", "setpoint");
  };
  model.add_type({"CabinFan",
                  {vfb::Port{"in", "IClimate", vfb::PortDirection::kRequired}},
                  {blow}});

  model.add_instance({"speed_sensor", "SpeedSensor"});
  model.add_instance({"climate", "ClimateCtrl"});
  model.add_instance({"dashboard", "Dashboard"});
  model.add_instance({"cabin_fan", "CabinFan"});
  model.add_connector({"speed_sensor", "out", "dashboard", "in"});
  model.add_connector({"climate", "out", "cabin_fan", "in"});

  contracts::Contract c_speed;
  c_speed.name = "C_Speed";
  c_speed.guarantees.push_back({.flow = "out.kmh",
                                .range = {0, 250},
                                .timing = {.period = milliseconds(5),
                                           .latency = milliseconds(3)}});
  model.bind_contract("speed_sensor", c_speed);

  contracts::Contract c_climate;
  c_climate.name = "C_Climate";
  c_climate.guarantees.push_back({.flow = "out.setpoint",
                                  .range = {16, 30},
                                  .timing = {.period = milliseconds(20),
                                             .latency = milliseconds(10)}});
  model.bind_contract("climate", c_climate);

  contracts::Contract c_dash;
  c_dash.name = "C_Dash";
  c_dash.assumptions.push_back({.flow = "in.kmh",
                                .range = {0, 250},
                                .timing = {.latency = milliseconds(3)}});
  model.bind_contract("dashboard", c_dash);

  contracts::Contract c_fan;
  c_fan.name = "C_Fan";
  c_fan.assumptions.push_back({.flow = "in.setpoint",
                               .range = {16, 30},
                               .timing = {.latency = milliseconds(10)}});
  model.bind_contract("cabin_fan", c_fan);

  vfb::DeploymentPlan& plan = bundle.plan;
  plan.bus = vfb::BusKind::kCan;
  plan.instances["speed_sensor"] = {.ecu = "front_ecu"};
  plan.instances["climate"] = {.ecu = "front_ecu"};
  plan.instances["dashboard"] = {.ecu = "cabin_ecu"};
  plan.instances["cabin_fan"] = {.ecu = "cabin_ecu"};
  plan.recovery_mode = "RUN";
  return bundle;
}

}  // namespace

int main() {
  fi::CampaignConfig cfg;
  cfg.seed = 2026;
  cfg.replicates = 10;
  cfg.threads = 4;

  fi::Campaign campaign(multi_supplier, cfg);
  // The user-defined fault grid: every injection plane, aimed at both
  // suppliers on the shared ECU and at the bus between them.
  campaign.add_fault({.kind = fi::FaultKind::kFrameDrop,
                      .target = "pdu|front_ecu",
                      .probability = 0.5});
  campaign.add_fault({.kind = fi::FaultKind::kFrameCorrupt,
                      .probability = 0.7,
                      .value = 0x30});
  campaign.add_fault({.kind = fi::FaultKind::kFrameDelay,
                      .probability = 0.8,
                      .delay = milliseconds(4)});
  campaign.add_fault({.kind = fi::FaultKind::kBabblingIdiot,
                      .delay = microseconds(120)});
  campaign.add_fault({.kind = fi::FaultKind::kStuckAt,
                      .target = "climate.out.setpoint",
                      .value = 99});
  campaign.add_fault({.kind = fi::FaultKind::kValueCorrupt,
                      .target = "speed_sensor.out.kmh",
                      .probability = 0.6,
                      .value = 0x7000});
  campaign.add_fault({.kind = fi::FaultKind::kWcetOverrun,
                      .target = "speed_sensor",
                      .magnitude = 40.0});
  campaign.add_fault({.kind = fi::FaultKind::kExecutionJitter,
                      .target = "climate",
                      .magnitude = 0.9});
  campaign.add_fault({.kind = fi::FaultKind::kTaskCrash,
                      .target = "speed_sensor"});
  campaign.add_fault({.kind = fi::FaultKind::kClockDrift,
                      .target = "front_ecu",
                      .magnitude = 40000.0});

  std::printf("fi campaign: %zu scenarios (%zu faults x %zu replicates + "
              "baseline), %zu threads, seed %llu\n\n",
              campaign.scenario_count(), campaign.scenario_count() > 0
                  ? (campaign.scenario_count() - 1) / cfg.replicates
                  : 0,
              cfg.replicates, cfg.threads,
              static_cast<unsigned long long>(cfg.seed));

  const fi::Report report = campaign.run();

  // One line per distinct fault (replicate 0 of each).
  std::puts("fault                              outcome    detectors");
  for (const auto& s : report.scenarios) {
    if (s.baseline || (s.index - 1) % cfg.replicates != 0) continue;
    std::string dets;
    for (unsigned bit = 0; bit < fi::kDetectorCount; ++bit) {
      if ((s.detectors & (1u << bit)) != 0) {
        if (!dets.empty()) dets += '+';
        dets += fi::detector_name(1u << bit);
      }
    }
    std::printf("%-34s %-10s %s\n", s.fault.label().c_str(),
                std::string(to_string(s.outcome)).c_str(),
                dets.empty() ? "-" : dets.c_str());
  }

  std::printf("\n%s", report.render().c_str());

  const bool healthy =
      report.spurious_baselines == 0 && report.count(fi::Outcome::kSpurious) == 0;
  std::puts(healthy ? "\n=> baseline clean, coverage matrix above"
                    : "\n=> SPURIOUS DETECTIONS");
  return healthy ? 0 : 1;
}
