// Quickstart: the smallest complete OpenRTE application.
//
// Two software components on one ECU, wired on the Virtual Functional Bus:
//   SpeedSensor --ISpeed--> Dashboard
// The sensor publishes a speed value every 10 ms; the dashboard consumes it
// every 20 ms. The deployment maps both to one ECU; the RTE generator turns
// runnables into OS tasks and the connector into an in-memory route.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "sim/kernel.hpp"
#include "sim/trace.hpp"
#include "vfb/model.hpp"
#include "vfb/rte.hpp"
#include "vfb/system.hpp"

using namespace orte;

int main() {
  // 1. Describe the component model (deployment-independent).
  vfb::Composition model;

  vfb::PortInterface ispeed;
  ispeed.name = "ISpeed";
  ispeed.elements.push_back(vfb::DataElement{"kmh", 16, 0, false});
  model.add_interface(ispeed);

  vfb::Runnable sample;
  sample.name = "sample";
  sample.trigger = vfb::RunnableTrigger::timing(sim::milliseconds(10));
  sample.execution_time = [] { return sim::microseconds(150); };
  sample.accesses.push_back(
      {"out", "kmh", vfb::DataAccessKind::kExplicitWrite});
  sample.behavior = [speed = 0u](vfb::RunnableContext& ctx) mutable {
    speed = (speed + 3) % 200;  // a gently accelerating vehicle
    ctx.write("out", "kmh", speed);
  };
  model.add_type({"SpeedSensor",
                  {vfb::Port{"out", "ISpeed", vfb::PortDirection::kProvided}},
                  {sample}});

  vfb::Runnable refresh;
  refresh.name = "refresh";
  refresh.trigger = vfb::RunnableTrigger::timing(sim::milliseconds(20));
  refresh.execution_time = [] { return sim::microseconds(300); };
  refresh.accesses.push_back(
      {"in", "kmh", vfb::DataAccessKind::kImplicitRead});
  refresh.behavior = [](vfb::RunnableContext& ctx) {
    static std::uint64_t shown = 0;
    const auto kmh = ctx.read("in", "kmh");
    if (kmh != shown && kmh % 30 == 0) {
      std::printf("[%7.2f ms] dashboard shows %3llu km/h\n",
                  sim::to_ms(ctx.now()),
                  static_cast<unsigned long long>(kmh));
      shown = kmh;
    }
  };
  model.add_type({"Dashboard",
                  {vfb::Port{"in", "ISpeed", vfb::PortDirection::kRequired}},
                  {refresh}});

  model.add_instance({"sensor", "SpeedSensor"});
  model.add_instance({"dash", "Dashboard"});
  model.add_connector({"sensor", "out", "dash", "in"});

  // 2. Deploy: both instances on one ECU.
  vfb::DeploymentPlan plan;
  plan.instances["sensor"] = {.ecu = "body_ecu"};
  plan.instances["dash"] = {.ecu = "body_ecu"};

  // 3. Generate the system and verify the configuration before running it
  //    (the "prior to implementation system configuration check").
  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  vfb::System sys(kernel, trace, model, plan);
  const auto verdict = sys.analyze();
  std::printf("configuration check: %s (%zu task bounds computed)\n",
              verdict.schedulable ? "schedulable" : "NOT schedulable",
              verdict.task_response.size());

  // 4. Run for one simulated second.
  sys.run_for(sim::seconds(1));

  // 5. Inspect what the generated tasks did.
  std::puts("\ntask                     jobs  worst-response");
  for (const auto& task : sys.ecu("body_ecu").tasks()) {
    std::printf("%-24s %5llu  %8.3f ms\n", task->name().c_str(),
                static_cast<unsigned long long>(task->jobs_completed()),
                task->response_times().max());
  }
  std::printf("\nECU utilization: %.1f %%\n",
              100.0 * sys.ecu("body_ecu").utilization());
  return 0;
}
