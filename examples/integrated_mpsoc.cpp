// From a federated to an integrated architecture (§4).
//
// Four distributed application subsystems (DAS) — powertrain, chassis, body,
// multimedia — are consolidated onto one MPSoC: each DAS gets its own IP
// core (an Ecu) and all inter-DAS traffic goes through the TDMA NoC. The
// legacy body software keeps talking classic CAN through the CAN-overlay
// middleware. A babbling multimedia core demonstrates error containment:
// the safety-relevant DASes never notice.
#include <cstdio>
#include <memory>
#include <vector>

#include "noc/can_overlay.hpp"
#include "noc/noc.hpp"
#include "os/ecu.hpp"
#include "sim/kernel.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

using namespace orte;
using sim::microseconds;
using sim::milliseconds;

int main() {
  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);

  noc::Noc chip(kernel, trace,
                {.arbitration = noc::Arbitration::kTdma,
                 .link_bandwidth_bps = 100'000'000,
                 .slot_len = microseconds(10)});
  auto& ni_power = chip.attach("powertrain");
  auto& ni_chassis = chip.attach("chassis");
  auto& ni_body = chip.attach("body");
  auto& ni_media = chip.attach("multimedia");

  os::Ecu power(kernel, trace, "powertrain");
  os::Ecu chassis(kernel, trace, "chassis");
  os::Ecu body(kernel, trace, "body");

  // Powertrain publishes engine state to chassis every 2 ms.
  sim::Stats engine_latency_us;
  auto& engine_task = power.add_task(
      {.name = "engine_ctrl", .priority = 2, .period = milliseconds(2),
       .relative_deadline = milliseconds(2)});
  engine_task.set_body(microseconds(400), [&] {
    noc::NocMessage m;
    m.destination = 1;  // chassis core
    m.name = "engine_state";
    m.bytes = 32;
    ni_power.send(m);
  });

  auto& stability_task = chassis.add_task(
      {.name = "stability_ctrl", .priority = 2,
       .relative_deadline = milliseconds(2)});
  stability_task.set_body(microseconds(600));
  ni_chassis.on_receive([&](const noc::NocMessage& m) {
    if (m.name == "engine_state") {
      engine_latency_us.add(sim::to_us(m.delivered_at - m.enqueued_at));
      chassis.activate(stability_task);
    }
  });

  // Legacy body software runs unmodified on the CAN overlay: door module
  // broadcasts lock state with classic identifiers.
  noc::CanOverlay body_can(ni_body);
  noc::CanOverlay media_can(ni_media);
  std::uint64_t lock_frames_seen = 0;
  media_can.on_frame(0x2A0, [&](const noc::OverlayFrame&) {
    ++lock_frames_seen;
  });
  auto& door_task = body.add_task(
      {.name = "door_module", .priority = 1, .period = milliseconds(20)});
  door_task.set_body(microseconds(200), [&] {
    body_can.send(0x2A0, {0x01});
  });

  // Multimedia turns babbling idiot for a second — floods broadcast junk.
  chip.inject_babble(/*core=*/3, /*burst_bytes=*/120,
                     /*interval=*/microseconds(20),
                     /*from=*/sim::seconds(1), /*until=*/sim::seconds(2));

  power.start();
  chassis.start();
  body.start();
  chip.start();
  kernel.run_until(sim::seconds(3));

  std::puts("integrated MPSoC: 4 DASes on one chip, TDMA NoC, 3 s run");
  std::printf("  engine->chassis messages : %llu\n",
              static_cast<unsigned long long>(engine_latency_us.count()));
  std::printf("  NoC latency (us)         : min %.2f  max %.2f  (slot period %.0f us)\n",
              engine_latency_us.min(), engine_latency_us.max(),
              sim::to_us(chip.period()));
  std::printf("  stability activations    : %llu, deadline misses: %llu\n",
              static_cast<unsigned long long>(stability_task.jobs_completed()),
              static_cast<unsigned long long>(stability_task.deadline_misses()));
  std::printf("  legacy CAN frames seen   : %llu (overlay), inversions: %llu\n",
              static_cast<unsigned long long>(lock_frames_seen),
              static_cast<unsigned long long>(media_can.order_inversions()));

  // Containment verdict: the babble window must not have widened the
  // engine->chassis latency beyond one TDMA period + serialization.
  const double bound_us =
      sim::to_us(chip.period()) + sim::to_us(chip.tx_time(32));
  const bool contained = engine_latency_us.max() <= bound_us &&
                         stability_task.deadline_misses() == 0;
  std::printf("  babble containment       : %s (bound %.2f us)\n",
              contained ? "yes" : "NO", bound_us);
  return contained ? 0 : 1;
}
