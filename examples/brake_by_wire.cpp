// Brake-by-wire: the safety-critical distributed application the paper's
// introduction motivates ("the increased distribution of active-safety and
// future safety-critical functions, including by-wire systems").
//
// Topology (6 ECUs on one FlexRay backbone):
//   pedal_ecu   : PedalSensor       samples the pedal every 5 ms
//   brake_ecu   : BrakeController   computes per-wheel force on reception
//   wheel_fl/fr/rl/rr : WheelActuator applies force on reception
//
// The pedal value carries its sampling timestamp, so every wheel actuator
// measures the true pedal-to-caliper latency. The example then compares the
// observed worst case against the composed analytical bound (FlexRay static
// slot latency + task responses) — the §3 methodology executed end to end.
//
// The same timing expectations are also bound as rich-component contracts
// (pedal guarantees its 5 ms sampling period, each wheel assumes a bounded
// command age), so the generated system carries an online runtime-
// verification layer: the monitors watch the run live and report into a DEM /
// mode-management escalation chain. A healthy drive ends with zero
// violations, no DTCs and the vehicle still in RUN. The last 100 ms of the
// trace are exported as Chrome trace_event JSON and CSV histograms.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/e2e.hpp"
#include "analysis/flexray_analysis.hpp"
#include "bsw/dem.hpp"
#include "bsw/mode.hpp"
#include "contracts/contract.hpp"
#include "rv/trace_export.hpp"
#include "sim/kernel.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "vfb/model.hpp"
#include "vfb/rte.hpp"
#include "vfb/system.hpp"

using namespace orte;

int main() {
  vfb::Composition model;

  vfb::PortInterface ipedal;
  ipedal.name = "IPedal";
  ipedal.elements.push_back(vfb::DataElement{"stamp", 64, 0, false});
  model.add_interface(ipedal);

  vfb::PortInterface iforce;
  iforce.name = "IForce";
  iforce.elements.push_back(vfb::DataElement{"cmd", 64, 0, false});
  model.add_interface(iforce);

  // Pedal sensor: 5 ms sampling, 100 us execution.
  vfb::Runnable sample;
  sample.name = "sample";
  sample.trigger = vfb::RunnableTrigger::timing(sim::milliseconds(5));
  sample.execution_time = [] { return sim::microseconds(100); };
  sample.accesses.push_back(
      {"pedal", "stamp", vfb::DataAccessKind::kExplicitWrite});
  sample.behavior = [](vfb::RunnableContext& ctx) {
    ctx.write("pedal", "stamp", static_cast<std::uint64_t>(ctx.now()));
  };
  model.add_type({"PedalSensor",
                  {vfb::Port{"pedal", "IPedal", vfb::PortDirection::kProvided}},
                  {sample}});

  // Brake controller: activated by pedal data, 300 us control law, fans the
  // force command out to all four wheels through one provided port.
  vfb::Runnable control;
  control.name = "control";
  control.trigger = vfb::RunnableTrigger::data_received("pedal", "stamp");
  control.execution_time = [] { return sim::microseconds(300); };
  control.accesses.push_back(
      {"pedal", "stamp", vfb::DataAccessKind::kExplicitRead});
  control.accesses.push_back(
      {"force", "cmd", vfb::DataAccessKind::kExplicitWrite});
  control.behavior = [](vfb::RunnableContext& ctx) {
    ctx.write("force", "cmd", ctx.read("pedal", "stamp"));
  };
  model.add_type(
      {"BrakeController",
       {vfb::Port{"pedal", "IPedal", vfb::PortDirection::kRequired},
        vfb::Port{"force", "IForce", vfb::PortDirection::kProvided}},
       {control}});

  // Wheel actuator: applies the force, records pedal-to-caliper latency.
  sim::Stats e2e_ms;
  vfb::Runnable actuate;
  actuate.name = "actuate";
  actuate.trigger = vfb::RunnableTrigger::data_received("force", "cmd");
  actuate.execution_time = [] { return sim::microseconds(150); };
  actuate.accesses.push_back(
      {"force", "cmd", vfb::DataAccessKind::kExplicitRead});
  actuate.behavior = [&e2e_ms](vfb::RunnableContext& ctx) {
    const auto stamped = static_cast<sim::Time>(ctx.read("force", "cmd"));
    e2e_ms.add(sim::to_ms(ctx.now() - stamped));
  };
  model.add_type({"WheelActuator",
                  {vfb::Port{"force", "IForce", vfb::PortDirection::kRequired}},
                  {actuate}});

  model.add_instance({"pedal", "PedalSensor"});
  model.add_instance({"brake", "BrakeController"});
  const std::vector<std::string> wheels{"wheel_fl", "wheel_fr", "wheel_rl",
                                        "wheel_rr"};
  for (const auto& w : wheels) model.add_instance({w, "WheelActuator"});
  model.add_connector({"pedal", "pedal", "brake", "pedal"});
  for (const auto& w : wheels) model.add_connector({"brake", "force", w, "force"});

  // Rich-component contracts (§3): the pedal guarantees its sampling period,
  // each wheel assumes its force command is at most 10 ms old. The System
  // generator compiles these into online monitors over the live trace.
  contracts::Contract pedal_contract;
  pedal_contract.name = "C_PedalRate";
  pedal_contract.guarantees.push_back(
      {.flow = "pedal.stamp", .timing = {.period = sim::milliseconds(5)}});
  model.bind_contract("pedal", pedal_contract);
  for (const auto& w : wheels) {
    contracts::Contract wheel_contract;
    wheel_contract.name = "C_" + w;
    wheel_contract.assumptions.push_back(
        {.flow = "force.cmd", .timing = {.latency = sim::milliseconds(10)}});
    model.bind_contract(w, wheel_contract);
  }

  vfb::DeploymentPlan plan;
  plan.bus = vfb::BusKind::kFlexRay;
  plan.instances["pedal"] = {.ecu = "pedal_ecu"};
  plan.instances["brake"] = {.ecu = "brake_ecu"};
  for (const auto& w : wheels) plan.instances[w] = {.ecu = w + "_ecu"};

  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  vfb::System sys(kernel, trace, model, plan);

  // Health-management escalation chain: contract violations debounce into
  // DEM DTCs; three strikes switch the vehicle to DEGRADED (which also
  // quarantines the offending component's outputs at its RTE).
  bsw::Dem dem(kernel, trace);
  bsw::ModeMachine modes(kernel, trace, "vehicle", "RUN");
  modes.add_mode("DEGRADED");
  modes.add_transition("RUN", "DEGRADED");
  sys.monitors()->report_to(dem, /*debounce_threshold=*/3);
  sys.monitors()->escalate_to(modes, "DEGRADED", /*threshold=*/3);

  // Drive 9.9 s unretained (counts and monitors keep working), then retain
  // the last 100 ms for the timeline/ histogram exports.
  sys.run_for(sim::milliseconds(9900));
  trace.enable_retention(true);
  sys.run_for(sim::milliseconds(100));

  std::puts("brake-by-wire over FlexRay, 10 s of driving");
  std::printf("  pedal samples     : %llu\n",
              static_cast<unsigned long long>(
                  sys.task_of("pedal", sim::milliseconds(5))->jobs_completed()));
  std::printf("  wheel actuations  : %llu (4 wheels)\n",
              static_cast<unsigned long long>(e2e_ms.count()));
  std::printf("  pedal->caliper    : min %.3f ms  mean %.3f ms  max %.3f ms\n",
              e2e_ms.min(), e2e_ms.mean(), e2e_ms.max());
  std::printf("  jitter (max-min)  : %.3f ms\n", e2e_ms.spread());

  // Analytical bound: two FlexRay static-slot hops + three task responses.
  const auto& cfg = sys.flexray_bus()->config();
  const auto hop = analysis::flexray_static_latency(cfg, 1);
  const auto bound = analysis::e2e_latency({
      {.name = "fr_hop1", .response = hop.worst},
      {.name = "control", .response = sim::microseconds(300)},
      {.name = "fr_hop2", .response = hop.worst},
      {.name = "actuate", .response = sim::microseconds(150)},
  });
  std::printf("  analytic bound    : %.3f ms  (%s)\n", sim::to_ms(bound.worst),
              e2e_ms.max() <= sim::to_ms(bound.worst) ? "holds" : "VIOLATED");

  // Runtime-verification verdict for the same run.
  const rv::MonitorRegistry& rvr = *sys.monitors();
  std::printf("  rv monitors       : %zu (%llu records routed)\n",
              rvr.monitor_count(),
              static_cast<unsigned long long>(rvr.records_routed()));
  std::printf("  rv violations     : %zu  dtcs: %zu  mode: %s\n",
              rvr.health().total(), dem.stored_dtcs().size(),
              modes.current().c_str());
  if (!rvr.health().healthy()) std::fputs(rvr.health().render().c_str(), stdout);

  const std::string json = rv::to_chrome_trace(trace.records());
  const std::string csv = rv::to_csv_histograms(trace.records());
  rv::write_file("/tmp/brake_by_wire_trace.json", json);
  rv::write_file("/tmp/brake_by_wire_hist.csv", csv);
  std::printf(
      "  trace export      : /tmp/brake_by_wire_trace.json (%zu bytes), "
      "/tmp/brake_by_wire_hist.csv (%zu bytes)\n",
      json.size(), csv.size());

  const bool ok = e2e_ms.max() <= sim::to_ms(bound.worst) &&
                  rvr.health().healthy() && modes.in("RUN");
  return ok ? 0 : 1;
}
