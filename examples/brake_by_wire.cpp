// Brake-by-wire: the safety-critical distributed application the paper's
// introduction motivates ("the increased distribution of active-safety and
// future safety-critical functions, including by-wire systems").
//
// Topology (6 ECUs on one FlexRay backbone):
//   pedal_ecu   : PedalSensor       samples the pedal every 5 ms
//   brake_ecu   : BrakeController   computes per-wheel force on reception
//   wheel_fl/fr/rl/rr : WheelActuator applies force on reception
//
// The pedal value carries its sampling timestamp, so every wheel actuator
// measures the true pedal-to-caliper latency. The example then compares the
// observed worst case against the composed analytical bound (FlexRay static
// slot latency + task responses) — the §3 methodology executed end to end.
//
// The same timing expectations are also bound as rich-component contracts
// (pedal guarantees its 5 ms sampling period, each wheel assumes a bounded
// command age), so the generated system carries an online runtime-
// verification layer: the monitors watch the run live and report into a DEM /
// mode-management escalation chain — and the chain is a closed loop. The
// drive injects a pedal-sensor fault twice: each time the violation budget
// is exceeded, a DTC matures, the vehicle degrades and the sensor is
// quarantined; once the fault clears, conforming windows heal the DTC, it
// ages out, and the registry releases the quarantine and returns the
// vehicle to RUN on its own — no manual release() anywhere. The last 100 ms
// of the trace are exported as Chrome trace_event JSON and CSV histograms.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/e2e.hpp"
#include "analysis/flexray_analysis.hpp"
#include "bsw/dem.hpp"
#include "bsw/mode.hpp"
#include "contracts/contract.hpp"
#include "rv/trace_export.hpp"
#include "sim/kernel.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "vfb/model.hpp"
#include "vfb/rte.hpp"
#include "vfb/system.hpp"

using namespace orte;

int main() {
  vfb::Composition model;

  vfb::PortInterface ipedal;
  ipedal.name = "IPedal";
  ipedal.elements.push_back(vfb::DataElement{"stamp", 64, 0, false});
  model.add_interface(ipedal);

  vfb::PortInterface iforce;
  iforce.name = "IForce";
  iforce.elements.push_back(vfb::DataElement{"cmd", 64, 0, false});
  model.add_interface(iforce);

  // Pedal sensor: 5 ms sampling, 100 us execution. The injectable fault
  // drops every other sample — the implemented rate halves to 10 ms,
  // breaking the 5 ms guarantee while the task itself still runs on time
  // (invisible to the scheduler, caught by the arrival monitor).
  bool pedal_fault = false;
  int fault_skip = 0;
  vfb::Runnable sample;
  sample.name = "sample";
  sample.trigger = vfb::RunnableTrigger::timing(sim::milliseconds(5));
  sample.execution_time = [] { return sim::microseconds(100); };
  sample.accesses.push_back(
      {"pedal", "stamp", vfb::DataAccessKind::kExplicitWrite});
  sample.behavior = [&pedal_fault, &fault_skip](vfb::RunnableContext& ctx) {
    if (pedal_fault && (++fault_skip % 2 == 0)) return;
    ctx.write("pedal", "stamp", static_cast<std::uint64_t>(ctx.now()));
  };
  model.add_type({"PedalSensor",
                  {vfb::Port{"pedal", "IPedal", vfb::PortDirection::kProvided}},
                  {sample}});

  // Brake controller: activated by pedal data, 300 us control law, fans the
  // force command out to all four wheels through one provided port.
  vfb::Runnable control;
  control.name = "control";
  control.trigger = vfb::RunnableTrigger::data_received("pedal", "stamp");
  control.execution_time = [] { return sim::microseconds(300); };
  control.accesses.push_back(
      {"pedal", "stamp", vfb::DataAccessKind::kExplicitRead});
  control.accesses.push_back(
      {"force", "cmd", vfb::DataAccessKind::kExplicitWrite});
  control.behavior = [](vfb::RunnableContext& ctx) {
    ctx.write("force", "cmd", ctx.read("pedal", "stamp"));
  };
  model.add_type(
      {"BrakeController",
       {vfb::Port{"pedal", "IPedal", vfb::PortDirection::kRequired},
        vfb::Port{"force", "IForce", vfb::PortDirection::kProvided}},
       {control}});

  // Wheel actuator: applies the force, records pedal-to-caliper latency.
  sim::Stats e2e_ms;
  vfb::Runnable actuate;
  actuate.name = "actuate";
  actuate.trigger = vfb::RunnableTrigger::data_received("force", "cmd");
  actuate.execution_time = [] { return sim::microseconds(150); };
  actuate.accesses.push_back(
      {"force", "cmd", vfb::DataAccessKind::kExplicitRead});
  actuate.behavior = [&e2e_ms](vfb::RunnableContext& ctx) {
    const auto stamped = static_cast<sim::Time>(ctx.read("force", "cmd"));
    e2e_ms.add(sim::to_ms(ctx.now() - stamped));
  };
  model.add_type({"WheelActuator",
                  {vfb::Port{"force", "IForce", vfb::PortDirection::kRequired}},
                  {actuate}});

  model.add_instance({"pedal", "PedalSensor"});
  model.add_instance({"brake", "BrakeController"});
  const std::vector<std::string> wheels{"wheel_fl", "wheel_fr", "wheel_rl",
                                        "wheel_rr"};
  for (const auto& w : wheels) model.add_instance({w, "WheelActuator"});
  model.add_connector({"pedal", "pedal", "brake", "pedal"});
  for (const auto& w : wheels) model.add_connector({"brake", "force", w, "force"});

  // Rich-component contracts (§3): the pedal guarantees its sampling period,
  // each wheel assumes its force command is at most 10 ms old. The System
  // generator compiles these into online monitors over the live trace.
  contracts::Contract pedal_contract;
  pedal_contract.name = "C_PedalRate";
  pedal_contract.guarantees.push_back(
      {.flow = "pedal.stamp", .timing = {.period = sim::milliseconds(5)}});
  model.bind_contract("pedal", pedal_contract);
  for (const auto& w : wheels) {
    contracts::Contract wheel_contract;
    wheel_contract.name = "C_" + w;
    wheel_contract.assumptions.push_back(
        {.flow = "force.cmd", .timing = {.latency = sim::milliseconds(10)}});
    model.bind_contract(w, wheel_contract);
  }

  vfb::DeploymentPlan plan;
  plan.bus = vfb::BusKind::kFlexRay;
  plan.instances["pedal"] = {.ecu = "pedal_ecu"};
  plan.instances["brake"] = {.ecu = "brake_ecu"};
  for (const auto& w : wheels) plan.instances[w] = {.ecu = w + "_ecu"};
  // Closed-loop recovery target: when the last contract DTC ages out, the
  // registry requests RUN again (and releases the RTE quarantine).
  plan.recovery_mode = "RUN";

  sim::Kernel kernel;
  sim::Trace trace;
  trace.enable_retention(false);
  vfb::System sys(kernel, trace, model, plan);

  // Health-management escalation chain: over-budget contract violations
  // debounce into DEM DTCs; three strikes switch the vehicle to DEGRADED
  // (which also quarantines the offending component's outputs at its RTE).
  // The DEGRADED -> RUN transition is what the recovery path takes.
  bsw::Dem dem(kernel, trace);
  bsw::ModeMachine modes(kernel, trace, "vehicle", "RUN");
  modes.add_mode("DEGRADED");
  modes.add_transition("RUN", "DEGRADED");
  modes.add_transition("DEGRADED", "RUN");
  sys.monitors()->report_to(dem, /*debounce_threshold=*/3,
                            /*aging_cycles=*/3);
  sys.monitors()->escalate_to(modes, "DEGRADED", /*threshold=*/3);

  // One operation cycle = 100 ms of driving, then the rv heartbeat: flush
  // closes the evaluation window (reporting passed/failed per contract)
  // and the DEM ages healed DTCs.
  const auto heartbeat = [&] {
    sys.run_for(sim::milliseconds(100));
    sys.monitors()->flush();
    dem.operation_cycle_end();
  };
  const auto drive_until = [&](int max_beats, const auto& done) {
    for (int i = 0; i < max_beats && !done(); ++i) heartbeat();
  };
  const auto escalated = [&] { return sys.monitors()->escalated(); };
  const auto recovered = [&] { return !sys.monitors()->escalated(); };

  // Phase 1: 2 s of nominal driving.
  for (int i = 0; i < 20; ++i) heartbeat();
  const bool clean_start = sys.monitors()->health().healthy();

  // Phase 2: pedal fault — rate budget exceeded, DTC, DEGRADED, quarantine.
  pedal_fault = true;
  drive_until(10, escalated);
  const sim::Time degraded_at = kernel.now();
  const bool quarantined_once =
      sys.rte("pedal_ecu").is_quarantined("pedal") && modes.in("DEGRADED");

  // Phase 3: fault removed — the quarantined sensor's suppressed writes
  // prove conformance, the DTC heals and ages out, the registry releases
  // the quarantine and requests RUN again.
  pedal_fault = false;
  drive_until(30, recovered);
  const sim::Time recovered_at = kernel.now();

  // Phase 4 & 5: the loop re-armed itself — a re-injected fault degrades
  // again, and clears again.
  pedal_fault = true;
  drive_until(10, escalated);
  const sim::Time redegraded_at = kernel.now();
  pedal_fault = false;
  drive_until(30, recovered);
  const sim::Time rerecovered_at = kernel.now();

  // Final stretch: cruise, retaining the last 100 ms for the exports.
  for (int i = 0; i < 9; ++i) heartbeat();
  trace.enable_retention(true);
  heartbeat();

  std::printf("brake-by-wire over FlexRay, %.1f s of driving\n",
              sim::to_ms(kernel.now()) / 1000.0);
  std::printf("  pedal samples     : %llu\n",
              static_cast<unsigned long long>(
                  sys.task_of("pedal", sim::milliseconds(5))->jobs_completed()));
  std::printf("  wheel actuations  : %llu (4 wheels)\n",
              static_cast<unsigned long long>(e2e_ms.count()));
  std::printf("  pedal->caliper    : min %.3f ms  mean %.3f ms  max %.3f ms\n",
              e2e_ms.min(), e2e_ms.mean(), e2e_ms.max());
  std::printf("  jitter (max-min)  : %.3f ms\n", e2e_ms.spread());

  // Analytical bound: two FlexRay static-slot hops + three task responses.
  const auto& cfg = sys.flexray_bus()->config();
  const auto hop = analysis::flexray_static_latency(cfg, 1);
  const auto bound = analysis::e2e_latency({
      {.name = "fr_hop1", .response = hop.worst},
      {.name = "control", .response = sim::microseconds(300)},
      {.name = "fr_hop2", .response = hop.worst},
      {.name = "actuate", .response = sim::microseconds(150)},
  });
  std::printf("  analytic bound    : %.3f ms  (%s)\n", sim::to_ms(bound.worst),
              e2e_ms.max() <= sim::to_ms(bound.worst) ? "holds" : "VIOLATED");

  // Static/dynamic cross-check: the generator ran the holistic fixpoint over
  // the same chains the LatencyMonitors watch and stamped the static bound
  // into each spec — every observed worst case must stay below it.
  const rv::MonitorRegistry& rvr = *sys.monitors();
  bool static_bound_holds = true;
  std::size_t cross_checked = 0;
  for (const rv::LatencyMonitor* lm : rvr.latency_monitors()) {
    if (lm->spec().static_bound <= 0 || lm->samples() == 0) continue;
    ++cross_checked;
    if (lm->worst() > lm->spec().static_bound) static_bound_holds = false;
  }
  const auto& chain_bounds = sys.analyze().chain_bounds;
  std::printf("  holistic bound    : %.3f ms over %zu chains (%s)\n",
              chain_bounds.empty() || !chain_bounds.front().computable
                  ? 0.0
                  : sim::to_ms(chain_bounds.front().bound),
              cross_checked,
              static_bound_holds && cross_checked > 0 ? "holds" : "VIOLATED");

  // Runtime-verification verdict for the same run.
  std::printf("  rv monitors       : %zu (%llu records routed)\n",
              rvr.monitor_count(),
              static_cast<unsigned long long>(rvr.records_routed()));
  std::printf("  rv violations     : %zu  dtcs: %zu\n", rvr.health().total(),
              dem.stored_dtcs().size());

  // Closed-loop recovery verdict (§2: error handling used for mode
  // management) — violate -> degrade -> heal -> age out -> recover, twice.
  const bool quarantine_lifted =
      !sys.rte("pedal_ecu").is_quarantined("pedal");
  const bool fully_recovered =
      modes.in("RUN") && !rvr.escalated() && rvr.recoveries() == 2;
  std::printf("  fault timeline    : degraded @ %.1f s, recovered @ %.1f s, "
              "re-degraded @ %.1f s, re-recovered @ %.1f s\n",
              sim::to_ms(degraded_at) / 1000.0,
              sim::to_ms(recovered_at) / 1000.0,
              sim::to_ms(redegraded_at) / 1000.0,
              sim::to_ms(rerecovered_at) / 1000.0);
  std::printf("  recoveries        : %llu (automatic, DTC aging driven)\n",
              static_cast<unsigned long long>(rvr.recoveries()));
  std::printf("  final mode        : %s%s\n", modes.current().c_str(),
              fully_recovered ? " (recovered)" : "");
  std::printf("  quarantine lifted : %s\n", quarantine_lifted ? "yes" : "no");

  const std::string json = rv::to_chrome_trace(trace.records());
  const std::string csv = rv::to_csv_histograms(trace.records());
  rv::write_file("/tmp/brake_by_wire_trace.json", json);
  rv::write_file("/tmp/brake_by_wire_hist.csv", csv);
  std::printf(
      "  trace export      : /tmp/brake_by_wire_trace.json (%zu bytes), "
      "/tmp/brake_by_wire_hist.csv (%zu bytes)\n",
      json.size(), csv.size());

  const bool ok = e2e_ms.max() <= sim::to_ms(bound.worst) && clean_start &&
                  quarantined_once && fully_recovered && quarantine_lifted &&
                  static_bound_holds && cross_checked > 0;
  return ok ? 0 : 1;
}
