// Model linting: the static validator as a design-time gate.
//
// Part 1 runs the validator over a deliberately messy body-domain model and
// prints the full structured report — one pass collects violations of seven
// different rules (dangling names, connector typing, dead connectivity, a
// cross-task data race, timing nonsense, a client-server call cycle and a
// contract incompatibility) where the generator's old first-error-wins
// checks would have surfaced exactly one.
//
// Part 2 isolates the paper's concurrency point: the SAME producer/consumer
// topology is a torn-read hazard when the accesses are declared explicit
// (live RTE slot, different-priority preemptive tasks) and provably clean
// when declared implicit (task-boundary buffered), which is precisely what
// rule V4 separates.
#include <cstdio>

#include "contracts/contract.hpp"
#include "sim/time.hpp"
#include "validation/validator.hpp"
#include "vfb/deployment.hpp"
#include "vfb/model.hpp"

using namespace orte;
using sim::milliseconds;
using vfb::Composition;
using vfb::DataAccessKind;
using vfb::DataElement;
using vfb::DeploymentPlan;
using vfb::Operation;
using vfb::Port;
using vfb::PortDirection;
using vfb::PortInterface;
using vfb::Runnable;
using vfb::RunnableTrigger;

namespace {

PortInterface sr_interface(std::string name) {
  PortInterface i;
  i.name = std::move(name);
  i.kind = PortInterface::Kind::kSenderReceiver;
  i.elements.push_back(DataElement{"val", 32, 0, false});
  return i;
}

/// Producer (5 ms) -> consumer (10 ms) on one ECU, access kinds chosen by
/// the caller: the V4 demo model.
Composition speed_pipeline(DataAccessKind write_kind,
                           DataAccessKind read_kind) {
  Composition c;
  c.add_interface(sr_interface("ISpeed"));
  Runnable produce{.name = "produce",
                   .trigger = RunnableTrigger::timing(milliseconds(5))};
  produce.accesses.push_back({"speed_out", "val", write_kind});
  Runnable consume{.name = "consume",
                   .trigger = RunnableTrigger::timing(milliseconds(10))};
  consume.accesses.push_back({"speed_in", "val", read_kind});
  c.add_type({"WheelSensor",
              {Port{"speed_out", "ISpeed", PortDirection::kProvided}},
              {produce}});
  c.add_type({"Display",
              {Port{"speed_in", "ISpeed", PortDirection::kRequired}},
              {consume}});
  c.add_instance({"sensor", "WheelSensor"});
  c.add_instance({"display", "Display"});
  c.add_connector({"sensor", "speed_out", "display", "speed_in"});
  return c;
}

void print_report(const char* title,
                  const validation::Diagnostics& report) {
  std::printf("=== %s ===\n", title);
  std::printf("%zu finding(s): %zu error(s), %zu warning(s), %zu info(s)\n",
              report.size(), report.count(validation::Severity::kError),
              report.count(validation::Severity::kWarning),
              report.count(validation::Severity::kInfo));
  std::printf("rules hit:");
  for (const auto& rule : report.rules()) std::printf(" %s", rule.c_str());
  std::printf("\n%s\n", report.render().c_str());
}

}  // namespace

int main() {
  // --- Part 1: one messy model, seven rules in one report --------------------
  Composition c;
  c.add_interface(sr_interface("ISpeed"));
  PortInterface wide = sr_interface("ISpeedStamped");
  wide.elements.push_back(DataElement{"timestamp", 32, 0, false});
  c.add_interface(wide);
  PortInterface calc;
  calc.name = "ICalibrate";
  calc.kind = PortInterface::Kind::kClientServer;
  calc.operations.push_back(Operation{"adjust", milliseconds(1)});
  c.add_interface(calc);

  // Sensor: explicit 5 ms writer whose declared WCET exceeds its period (V5),
  // plus a client-server port caught in a call cycle (V6).
  Runnable sense{.name = "sense",
                 .trigger = RunnableTrigger::timing(milliseconds(5))};
  sense.wcet_bound = milliseconds(6);
  sense.accesses.push_back(
      {"speed_out", "val", DataAccessKind::kExplicitWrite});
  sense.server_calls.push_back("cal.adjust");
  c.add_type({"WheelSensor",
              {Port{"speed_out", "ISpeed", PortDirection::kProvided},
               Port{"cal", "ICalibrate", PortDirection::kRequired},
               Port{"srv", "ICalibrate", PortDirection::kProvided}},
              {sense}});

  // Calibrator: calls the sensor back — a synchronous call cycle (V6).
  Runnable tune{.name = "tune",
                .trigger = RunnableTrigger::timing(milliseconds(20))};
  tune.server_calls.push_back("back.adjust");
  c.add_type({"Calibrator",
              {Port{"srv", "ICalibrate", PortDirection::kProvided},
               Port{"back", "ICalibrate", PortDirection::kRequired}},
              {tune}});
  c.set_operation_handler("WheelSensor", "srv", "adjust",
                          [](std::uint64_t v) { return v; });
  c.set_operation_handler("Calibrator", "srv", "adjust",
                          [](std::uint64_t v) { return v + 1; });

  // Display: explicit 10 ms reader (V4 victim) whose second port reads a
  // differently-typed interface than its feed (V2) and whose third port is
  // read but never connected (V3).
  Runnable show{.name = "show",
                .trigger = RunnableTrigger::timing(milliseconds(10))};
  show.accesses.push_back({"speed_in", "val", DataAccessKind::kExplicitRead});
  show.accesses.push_back({"stamped_in", "val", DataAccessKind::kImplicitRead});
  show.accesses.push_back({"trim_in", "val", DataAccessKind::kImplicitRead});
  c.add_type({"Display",
              {Port{"speed_in", "ISpeed", PortDirection::kRequired},
               Port{"stamped_in", "ISpeedStamped", PortDirection::kRequired},
               Port{"trim_in", "ISpeed", PortDirection::kRequired}},
              {show}});

  c.add_instance({"sensor", "WheelSensor"});
  c.add_instance({"calib", "Calibrator"});
  c.add_instance({"display", "Display"});
  c.add_instance({"logger", "DataLogger"});  // V1: type never declared
  c.add_connector({"sensor", "speed_out", "display", "speed_in"});
  c.add_connector({"sensor", "speed_out", "display", "stamped_in"});  // V2
  c.add_connector({"calib", "srv", "sensor", "cal"});
  c.add_connector({"sensor", "srv", "calib", "back"});

  DeploymentPlan plan;
  plan.instances["sensor"] = {.ecu = "body"};
  plan.instances["calib"] = {.ecu = "body"};
  plan.instances["display"] = {.ecu = "body"};
  // V1: "logger" has no deployment at all.

  // V7: the sensor guarantees a wider speed range than the display assumes.
  contracts::Contract sensor_contract{.name = "CSensor"};
  sensor_contract.guarantees.push_back(
      contracts::FlowSpec{.flow = "speed_out.val",
                          .range = {0, 300}});
  contracts::Contract display_contract{.name = "CDisplay"};
  display_contract.assumptions.push_back(
      contracts::FlowSpec{.flow = "speed_in.val",
                          .range = {0, 260}});

  const auto report = validation::Validator(c)
                          .with_deployment(plan)
                          .with_contract("sensor", sensor_contract)
                          .with_contract("display", display_contract)
                          .run();
  print_report("full lint of the messy body-domain model", report);

  // --- Part 2: the V4 race, and its implicit twin ----------------------------
  DeploymentPlan one_ecu;
  one_ecu.instances["sensor"] = {.ecu = "body"};
  one_ecu.instances["display"] = {.ecu = "body"};

  const auto racy = validation::validate(
      speed_pipeline(DataAccessKind::kExplicitWrite,
                     DataAccessKind::kExplicitRead),
      one_ecu);
  print_report("explicit accesses across two task priorities", racy);

  const auto buffered = validation::validate(
      speed_pipeline(DataAccessKind::kImplicitWrite,
                     DataAccessKind::kImplicitRead),
      one_ecu);
  print_report("same topology, implicit (buffered) accesses", buffered);

  std::printf("race detected with explicit accesses: %s\n",
              racy.by_rule("V4").empty() ? "no" : "yes");
  std::printf("race detected with implicit accesses: %s\n",
              buffered.by_rule("V4").empty() ? "no" : "yes");
  return 0;
}
