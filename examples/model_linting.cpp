// Model linting: the static validator as a design-time gate.
//
// Part 1 runs the validator over a deliberately messy body-domain model and
// prints the full structured report — one pass collects violations of seven
// different rules (dangling names, connector typing, dead connectivity, a
// cross-task data race, timing nonsense, a client-server call cycle and a
// contract incompatibility) where the generator's old first-error-wins
// checks would have surfaced exactly one.
//
// Part 2 isolates the paper's concurrency point: the SAME producer/consumer
// topology is a torn-read hazard when the accesses are declared explicit
// (live RTE slot, different-priority preemptive tasks) and provably clean
// when declared implicit (task-boundary buffered), which is precisely what
// rule V4 separates.
//
// Part 3 exercises the whole-program rules (V8..V12) on a two-ECU chain
// model — transitive range conflicts no pairwise check can see, an
// end-to-end deadline the holistic analysis refutes, uncovered contract
// obligations, oversubscribed resource budgets and a dead relay chain —
// and exports the combined report as SARIF 2.1.0 (model_lint.sarif, or the
// path given as argv[1]) for CI code-scanning upload.
//
// Part 4 is the fault-detectability gate (V13..V15): the brake-by-wire
// campaign workload is fail-silent on a producer crash (V13) because its
// periodic guarantees have no watchdog alive supervision (V15); moved to an
// event-triggered bus its babbling idiot becomes detectable-but-never-
// containable (V14); and binding alive supervision — one DeploymentPlan
// flag — clears V13/V15. Exit-enforced like Part 3.
#include <cstdio>

#include "contracts/contract.hpp"
#include "fi/workloads.hpp"
#include "rv/trace_export.hpp"
#include "sim/time.hpp"
#include "validation/sarif.hpp"
#include "validation/validator.hpp"
#include "vfb/deployment.hpp"
#include "vfb/model.hpp"

using namespace orte;
using sim::milliseconds;
using vfb::Composition;
using vfb::DataAccessKind;
using vfb::DataElement;
using vfb::DeploymentPlan;
using vfb::Operation;
using vfb::Port;
using vfb::PortDirection;
using vfb::PortInterface;
using vfb::Runnable;
using vfb::RunnableTrigger;

namespace {

PortInterface sr_interface(std::string name) {
  PortInterface i;
  i.name = std::move(name);
  i.kind = PortInterface::Kind::kSenderReceiver;
  i.elements.push_back(DataElement{"val", 32, 0, false});
  return i;
}

/// Producer (5 ms) -> consumer (10 ms) on one ECU, access kinds chosen by
/// the caller: the V4 demo model.
Composition speed_pipeline(DataAccessKind write_kind,
                           DataAccessKind read_kind) {
  Composition c;
  c.add_interface(sr_interface("ISpeed"));
  Runnable produce{.name = "produce",
                   .trigger = RunnableTrigger::timing(milliseconds(5))};
  produce.accesses.push_back({"speed_out", "val", write_kind});
  Runnable consume{.name = "consume",
                   .trigger = RunnableTrigger::timing(milliseconds(10))};
  consume.accesses.push_back({"speed_in", "val", read_kind});
  c.add_type({"WheelSensor",
              {Port{"speed_out", "ISpeed", PortDirection::kProvided}},
              {produce}});
  c.add_type({"Display",
              {Port{"speed_in", "ISpeed", PortDirection::kRequired}},
              {consume}});
  c.add_instance({"sensor", "WheelSensor"});
  c.add_instance({"display", "Display"});
  c.add_connector({"sensor", "speed_out", "display", "speed_in"});
  return c;
}

void print_report(const char* title,
                  const validation::Diagnostics& report) {
  std::printf("=== %s ===\n", title);
  std::printf("%zu finding(s): %zu error(s), %zu warning(s), %zu info(s)\n",
              report.size(), report.count(validation::Severity::kError),
              report.count(validation::Severity::kWarning),
              report.count(validation::Severity::kInfo));
  std::printf("rules hit:");
  for (const auto& rule : report.rules()) std::printf(" %s", rule.c_str());
  std::printf("\n%s\n", report.render().c_str());
}

/// Part 3 model: two-ECU cause-effect chains engineered so every
/// whole-program rule (V8..V12) has at least one firing.
Composition chain_model() {
  Composition c;
  c.add_interface(sr_interface("IValue"));

  // Speedometer: autonomous 5 ms producer, guaranteed range [0, 100].
  Runnable sample{.name = "sample",
                  .trigger = RunnableTrigger::timing(milliseconds(5))};
  sample.wcet_bound = sim::milliseconds(1);
  sample.accesses.push_back(
      {"speed", "val", DataAccessKind::kImplicitWrite});
  c.add_type({"Speedometer",
              {Port{"speed", "IValue", PortDirection::kProvided}},
              {sample}});

  // Mixer: autonomous producer WITHOUT any range guarantee — the
  // unconstrained transitive source V8 warns about.
  Runnable mix{.name = "mix",
               .trigger = RunnableTrigger::timing(milliseconds(10))};
  mix.wcet_bound = sim::microseconds(200);
  mix.accesses.push_back({"noise", "val", DataAccessKind::kImplicitWrite});
  c.add_type({"Mixer",
              {Port{"noise", "IValue", PortDirection::kProvided}},
              {mix}});

  // Scaler: contract-free relay — V7 cannot bridge across it, V8 can.
  Runnable scale{.name = "scale",
                 .trigger = RunnableTrigger::data_received("in", "val")};
  scale.wcet_bound = sim::microseconds(500);
  scale.accesses.push_back({"in", "val", DataAccessKind::kImplicitRead});
  scale.accesses.push_back({"out", "val", DataAccessKind::kImplicitWrite});
  c.add_type({"Scaler",
              {Port{"in", "IValue", PortDirection::kRequired},
               Port{"out", "IValue", PortDirection::kProvided}},
              {scale}});

  // Hmi: end consumer with range + latency assumptions (V8 / V9 targets).
  Runnable show{.name = "show",
                .trigger = RunnableTrigger::data_received("disp", "val")};
  show.wcet_bound = sim::microseconds(300);
  show.accesses.push_back({"disp", "val", DataAccessKind::kImplicitRead});
  c.add_type({"Hmi",
              {Port{"disp", "IValue", PortDirection::kRequired}},
              {show}});

  // Echo: relay whose input is never connected — everything downstream of
  // it can only ever see initial values (the V12 dead-flow chain).
  Runnable echo{.name = "echo",
                .trigger = RunnableTrigger::timing(milliseconds(20))};
  echo.wcet_bound = sim::microseconds(100);
  echo.accesses.push_back({"ein", "val", DataAccessKind::kImplicitRead});
  echo.accesses.push_back({"eout", "val", DataAccessKind::kImplicitWrite});
  c.add_type({"Echo",
              {Port{"ein", "IValue", PortDirection::kRequired},
               Port{"eout", "IValue", PortDirection::kProvided}},
              {echo}});

  c.add_instance({"source", "Speedometer"});
  c.add_instance({"mixer", "Mixer"});
  c.add_instance({"scaler", "Scaler"});
  c.add_instance({"hmi", "Hmi"});
  c.add_instance({"gauge", "Hmi"});
  c.add_instance({"tap", "Hmi"});
  c.add_instance({"relay", "Echo"});

  c.add_connector({"source", "speed", "scaler", "in"});  // cross-ECU
  c.add_connector({"scaler", "out", "hmi", "disp"});     // same-ECU pipeline
  c.add_connector({"mixer", "noise", "gauge", "disp"});  // cross-ECU
  c.add_connector({"relay", "eout", "tap", "disp"});     // dead relay chain
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  // --- Part 1: one messy model, seven rules in one report --------------------
  Composition c;
  c.add_interface(sr_interface("ISpeed"));
  PortInterface wide = sr_interface("ISpeedStamped");
  wide.elements.push_back(DataElement{"timestamp", 32, 0, false});
  c.add_interface(wide);
  PortInterface calc;
  calc.name = "ICalibrate";
  calc.kind = PortInterface::Kind::kClientServer;
  calc.operations.push_back(Operation{"adjust", milliseconds(1)});
  c.add_interface(calc);

  // Sensor: explicit 5 ms writer whose declared WCET exceeds its period (V5),
  // plus a client-server port caught in a call cycle (V6).
  Runnable sense{.name = "sense",
                 .trigger = RunnableTrigger::timing(milliseconds(5))};
  sense.wcet_bound = milliseconds(6);
  sense.accesses.push_back(
      {"speed_out", "val", DataAccessKind::kExplicitWrite});
  sense.server_calls.push_back("cal.adjust");
  c.add_type({"WheelSensor",
              {Port{"speed_out", "ISpeed", PortDirection::kProvided},
               Port{"cal", "ICalibrate", PortDirection::kRequired},
               Port{"srv", "ICalibrate", PortDirection::kProvided}},
              {sense}});

  // Calibrator: calls the sensor back — a synchronous call cycle (V6).
  Runnable tune{.name = "tune",
                .trigger = RunnableTrigger::timing(milliseconds(20))};
  tune.server_calls.push_back("back.adjust");
  c.add_type({"Calibrator",
              {Port{"srv", "ICalibrate", PortDirection::kProvided},
               Port{"back", "ICalibrate", PortDirection::kRequired}},
              {tune}});
  c.set_operation_handler("WheelSensor", "srv", "adjust",
                          [](std::uint64_t v) { return v; });
  c.set_operation_handler("Calibrator", "srv", "adjust",
                          [](std::uint64_t v) { return v + 1; });

  // Display: explicit 10 ms reader (V4 victim) whose second port reads a
  // differently-typed interface than its feed (V2) and whose third port is
  // read but never connected (V3).
  Runnable show{.name = "show",
                .trigger = RunnableTrigger::timing(milliseconds(10))};
  show.accesses.push_back({"speed_in", "val", DataAccessKind::kExplicitRead});
  show.accesses.push_back({"stamped_in", "val", DataAccessKind::kImplicitRead});
  show.accesses.push_back({"trim_in", "val", DataAccessKind::kImplicitRead});
  c.add_type({"Display",
              {Port{"speed_in", "ISpeed", PortDirection::kRequired},
               Port{"stamped_in", "ISpeedStamped", PortDirection::kRequired},
               Port{"trim_in", "ISpeed", PortDirection::kRequired}},
              {show}});

  c.add_instance({"sensor", "WheelSensor"});
  c.add_instance({"calib", "Calibrator"});
  c.add_instance({"display", "Display"});
  c.add_instance({"logger", "DataLogger"});  // V1: type never declared
  c.add_connector({"sensor", "speed_out", "display", "speed_in"});
  c.add_connector({"sensor", "speed_out", "display", "stamped_in"});  // V2
  c.add_connector({"calib", "srv", "sensor", "cal"});
  c.add_connector({"sensor", "srv", "calib", "back"});

  DeploymentPlan plan;
  plan.instances["sensor"] = {.ecu = "body"};
  plan.instances["calib"] = {.ecu = "body"};
  plan.instances["display"] = {.ecu = "body"};
  // V1: "logger" has no deployment at all.

  // V7: the sensor guarantees a wider speed range than the display assumes.
  contracts::Contract sensor_contract{.name = "CSensor"};
  sensor_contract.guarantees.push_back(
      contracts::FlowSpec{.flow = "speed_out.val",
                          .range = {0, 300}});
  contracts::Contract display_contract{.name = "CDisplay"};
  display_contract.assumptions.push_back(
      contracts::FlowSpec{.flow = "speed_in.val",
                          .range = {0, 260}});

  const auto report = validation::Validator(c)
                          .with_deployment(plan)
                          .with_contract("sensor", sensor_contract)
                          .with_contract("display", display_contract)
                          .run();
  print_report("full lint of the messy body-domain model", report);

  // --- Part 2: the V4 race, and its implicit twin ----------------------------
  DeploymentPlan one_ecu;
  one_ecu.instances["sensor"] = {.ecu = "body"};
  one_ecu.instances["display"] = {.ecu = "body"};

  const auto racy = validation::validate(
      speed_pipeline(DataAccessKind::kExplicitWrite,
                     DataAccessKind::kExplicitRead),
      one_ecu);
  print_report("explicit accesses across two task priorities", racy);

  const auto buffered = validation::validate(
      speed_pipeline(DataAccessKind::kImplicitWrite,
                     DataAccessKind::kImplicitRead),
      one_ecu);
  print_report("same topology, implicit (buffered) accesses", buffered);

  std::printf("race detected with explicit accesses: %s\n",
              racy.by_rule("V4").empty() ? "no" : "yes");
  std::printf("race detected with implicit accesses: %s\n",
              buffered.by_rule("V4").empty() ? "no" : "yes");

  // --- Part 3: whole-program rules V8..V12 on a two-ECU chain model ----------
  const Composition chains = chain_model();

  DeploymentPlan chain_plan;
  chain_plan.instances["source"] = {.ecu = "front"};
  chain_plan.instances["mixer"] = {.ecu = "front"};
  chain_plan.instances["scaler"] = {.ecu = "rear"};
  chain_plan.instances["hmi"] = {.ecu = "rear"};
  chain_plan.instances["gauge"] = {.ecu = "rear"};
  chain_plan.instances["tap"] = {.ecu = "rear"};
  chain_plan.instances["relay"] = {.ecu = "rear"};

  // Source: range guarantee [0,100] on the chain head, a guarantee on a flow
  // that resolves to nothing (V10), and a vertical CPU assumption far below
  // the generated 1ms/5ms load (V11 warning).
  contracts::Contract c_source{.name = "CSource"};
  c_source.guarantees.push_back(
      contracts::FlowSpec{.flow = "speed.val",
                          .range = {0, 100},
                          .timing = {.period = milliseconds(5)}});
  c_source.guarantees.push_back(
      contracts::FlowSpec{.flow = "ghost",
                          .timing = {.period = milliseconds(1)}});
  c_source.vertical.cpu_utilization = 0.001;

  // Mixer: no flow guarantees at all, but a vertical assumption that
  // oversubscribes the front ECU together with the source (V11 error).
  contracts::Contract c_mixer{.name = "CMixer"};
  c_mixer.vertical.cpu_utilization = 1.1;

  // Hmi: assumes [200,300] from a chain whose transitive source guarantees
  // [0,100] — empty intersection through the contract-free scaler (V8
  // error) — plus a 50 us end-to-end deadline the holistic analysis refutes
  // (V9 error) and a relaxed 500 ms obligation it confirms (V9 info).
  contracts::Contract c_hmi{.name = "CHmi"};
  c_hmi.assumptions.push_back(
      contracts::FlowSpec{.flow = "disp.val", .range = {200, 300}});
  c_hmi.assumptions.push_back(
      contracts::FlowSpec{.flow = "disp.val",
                          .timing = {.latency = sim::microseconds(50)}});
  c_hmi.assumptions.push_back(
      contracts::FlowSpec{.flow = "disp",
                          .timing = {.latency = milliseconds(500)}});

  // Gauge: a range assumption fed by the guarantee-free mixer — the
  // unconstrained transitive source (V8 warning).
  contracts::Contract c_gauge{.name = "CGauge"};
  c_gauge.assumptions.push_back(
      contracts::FlowSpec{.flow = "disp.val", .range = {0, 50}});

  const auto chain_report = validation::Validator(chains)
                                .with_deployment(chain_plan)
                                .with_contract("source", c_source)
                                .with_contract("mixer", c_mixer)
                                .with_contract("hmi", c_hmi)
                                .with_contract("gauge", c_gauge)
                                .run();
  print_report("whole-program chain analysis (V8..V12)", chain_report);
  for (const char* rule : {"V8", "V9", "V10", "V11", "V12"}) {
    std::printf("%s findings: %zu\n", rule,
                chain_report.by_rule(rule).size());
  }

  // SARIF export of the whole-program report for CI code scanning.
  const std::string sarif_path =
      argc > 1 ? argv[1] : std::string("model_lint.sarif");
  rv::write_file(sarif_path, validation::to_sarif(chain_report));
  std::printf("SARIF report      : %s\n", sarif_path.c_str());

  const bool all_fired = !chain_report.by_rule("V8").empty() &&
                         !chain_report.by_rule("V9").empty() &&
                         !chain_report.by_rule("V10").empty() &&
                         !chain_report.by_rule("V11").empty() &&
                         !chain_report.by_rule("V12").empty();
  std::printf("all whole-program rules fired: %s\n", all_fired ? "yes" : "no");

  // --- Part 4: fault detectability & fail-silence (V13..V15) -----------------
  // The campaign workload, as shipped: periodic pedal guarantees, no alive
  // supervision. The crash of the pedal is fail-silent (V13) and every
  // periodic sender flow lacks a watchdog binding (V15).
  const fi::ModelBundle unsupervised = fi::workloads::brake_by_wire();
  const auto fail_silent =
      validation::validate(unsupervised.model, unsupervised.plan);
  print_report("campaign workload, no alive supervision (V13/V15)",
               fail_silent);

  // Same model on an event-triggered bus: TDMA slotting no longer contains
  // the babbling idiot structurally, so it becomes detectable — but every
  // observing monitor blames a victim, never the rogue node (V14).
  fi::ModelBundle on_can = fi::workloads::brake_by_wire();
  on_can.plan.bus = vfb::BusKind::kCan;
  const auto babbler = validation::validate(on_can.model, on_can.plan);
  std::printf("babbler containment gap on CAN (V14): %zu finding(s)\n\n",
              babbler.by_rule("V14").size());

  // The one-flag fix: DeploymentPlan::alive_supervision binds per-ECU
  // watchdog alive supervision from the contract periods; the crash plane
  // becomes observable and V13/V15 clear.
  const fi::ModelBundle supervised = fi::workloads::brake_by_wire(true);
  const auto watched =
      validation::validate(supervised.model, supervised.plan);
  print_report("same workload, watchdog alive supervision bound", watched);

  const bool detectability_gate = !fail_silent.by_rule("V13").empty() &&
                                  !fail_silent.by_rule("V15").empty() &&
                                  !babbler.by_rule("V14").empty() &&
                                  watched.by_rule("V13").empty() &&
                                  watched.by_rule("V15").empty();
  std::printf("crash fail-silent without watchdog, fixed by one flag: %s\n",
              detectability_gate ? "yes" : "no");
  return (all_fired && detectability_gate) ? 0 : 1;
}
