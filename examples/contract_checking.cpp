// Rich-component contract methodology (§3) on the brake-by-wire system:
//   1. specify contracts (assumptions / guarantees / vertical assumptions),
//   2. check horizontal compatibility of the composition,
//   3. compose end-to-end latency and compare to the system requirement,
//   4. check a candidate ECU mapping against vertical (resource) assumptions,
//   5. refine the controller and verify dominance (substitutability),
//   6. monitor a simulated trace against a timed-automaton deadline contract.
#include <cstdio>

#include "contracts/contract.hpp"
#include "contracts/network.hpp"
#include "contracts/timed_automaton.hpp"
#include "sim/time.hpp"

using namespace orte;
using namespace orte::contracts;
using sim::milliseconds;
using sim::microseconds;

int main() {
  // --- 1. Contracts ---------------------------------------------------------
  ContractNetwork net;

  Contract pedal;
  pedal.name = "pedal_sensor";
  pedal.guarantees.push_back(
      {.flow = "pedal_pos",
       .range = {0, 1000},  // 0.1% resolution
       .timing = {milliseconds(5), microseconds(200), milliseconds(1)},
       .confidence = 0.95});
  pedal.vertical = {.cpu_utilization = 0.05, .memory_bytes = 8 << 10,
                    .confidence = 0.95};
  net.add_component(pedal);

  Contract ctrl;
  ctrl.name = "brake_controller";
  ctrl.assumptions.push_back(
      {.flow = "pedal_pos",
       .range = {0, 1023},
       .timing = {milliseconds(5), milliseconds(1), milliseconds(4)}});
  ctrl.guarantees.push_back(
      {.flow = "force_cmd",
       .range = {0, 5000},
       .timing = {milliseconds(5), microseconds(500), milliseconds(3)},
       .confidence = 0.9});
  ctrl.vertical = {.cpu_utilization = 0.35, .memory_bytes = 64 << 10,
                   .confidence = 0.8};
  net.add_component(ctrl);

  Contract wheel;
  wheel.name = "wheel_actuator";
  wheel.assumptions.push_back(
      {.flow = "force_cmd",
       .range = {0, 6000},
       .timing = {milliseconds(5), milliseconds(1), milliseconds(5)}});
  wheel.vertical = {.cpu_utilization = 0.15, .memory_bytes = 16 << 10,
                    .confidence = 0.9};
  net.add_component(wheel);

  net.connect("pedal_sensor", "pedal_pos", "brake_controller", "pedal_pos");
  net.connect("brake_controller", "force_cmd", "wheel_actuator", "force_cmd");

  // --- 2. Horizontal compatibility -----------------------------------------
  const auto compat = net.check_compatibility();
  std::printf("compatibility: %s (confidence %.2f)\n",
              compat.ok ? "OK" : "VIOLATED", compat.confidence);
  for (const auto& v : compat.violations) std::printf("  ! %s\n", v.c_str());

  // --- 3. End-to-end latency composition ------------------------------------
  const auto e2e = net.end_to_end_latency(
      {"pedal_sensor", "brake_controller", "wheel_actuator"});
  const auto requirement = milliseconds(10);
  std::printf("end-to-end latency bound: %.1f ms (requirement %.1f ms) -> %s\n",
              sim::to_ms(e2e), sim::to_ms(requirement),
              e2e >= 0 && e2e <= requirement ? "realizable" : "NOT realizable");

  // --- 4. Vertical assumptions vs a candidate mapping -----------------------
  const auto vertical_good = net.check_vertical(
      {{"pedal_sensor", "ecu1"},
       {"brake_controller", "ecu1"},
       {"wheel_actuator", "ecu2"}},
      {{.name = "ecu1", .cpu = 0.6, .memory_bytes = 128 << 10},
       {.name = "ecu2", .cpu = 0.5, .memory_bytes = 64 << 10}});
  std::printf("mapping {pedal+ctrl->ecu1, wheel->ecu2}: %s (confidence %.2f)\n",
              vertical_good.ok ? "fits" : "overloaded",
              vertical_good.confidence);

  const auto vertical_bad = net.check_vertical(
      {{"pedal_sensor", "tiny"},
       {"brake_controller", "tiny"},
       {"wheel_actuator", "tiny"}},
      {{.name = "tiny", .cpu = 0.4, .memory_bytes = 32 << 10}});
  std::printf("mapping {all->tiny}: %s\n",
              vertical_bad.ok ? "fits" : "overloaded (as expected)");
  for (const auto& v : vertical_bad.violations)
    std::printf("  ! %s\n", v.c_str());

  // --- 5. Refinement / dominance --------------------------------------------
  Contract ctrl_v2 = ctrl;  // a faster controller from the next supplier drop
  ctrl_v2.name = "brake_controller_v2";
  ctrl_v2.guarantees[0].timing.latency = milliseconds(2);   // tighter
  ctrl_v2.assumptions[0].timing.latency = milliseconds(6);  // more tolerant
  std::printf("controller_v2 dominates v1: %s (drop-in replacement %s)\n",
              dominates(ctrl_v2, ctrl) ? "yes" : "no",
              dominates(ctrl_v2, ctrl) ? "allowed" : "forbidden");
  std::printf("v1 dominates v2: %s (downgrades are rejected)\n",
              dominates(ctrl, ctrl_v2) ? "yes" : "no");

  // --- 6. Behavioural contract as a timed-automaton monitor ------------------
  // Contract: every brake request must be answered by a force update within
  // 4 time units (ms). Feed it two traces.
  TimedAutomaton ta;
  const int idle = ta.add_location("idle");
  const int pending = ta.add_location("pending");
  const int err = ta.add_location("deadline_missed", /*error=*/true);
  const int clk = ta.add_clock("c");
  using C = TimedAutomaton::Constraint;
  ta.add_edge(idle, pending, "brake_request", {}, {clk});
  ta.add_edge(pending, idle, "force_update", {{clk, C::Op::kLe, 4}});
  ta.add_edge(pending, err, "force_update", {{clk, C::Op::kGt, 4}});

  const auto good = ta.run({{0, "brake_request"}, {3, "force_update"},
                            {10, "brake_request"}, {2, "force_update"}});
  const auto bad = ta.run({{0, "brake_request"}, {7, "force_update"}});
  std::printf("trace conformance: nominal=%s, degraded=%s (failed at event %zu)\n",
              good.accepted ? "pass" : "fail",
              bad.accepted ? "pass" : "fail", bad.failed_at);

  const bool all_ok = compat.ok && e2e <= requirement && vertical_good.ok &&
                      !vertical_bad.ok && dominates(ctrl_v2, ctrl) &&
                      good.accepted && !bad.accepted;
  std::puts(all_ok ? "\n=> contract methodology checks all pass"
                   : "\n=> UNEXPECTED contract verdicts");
  return all_ok ? 0 : 1;
}
