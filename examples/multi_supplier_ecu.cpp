// Multi-supplier ECU integration with timing isolation.
//
// The paper's §1 scenario: "application tasks from multiple Tier-1 suppliers
// are integrated into the same ECU ... protecting the tasks of each IP from
// the functional and timing errors of other IPs is of fundamental
// importance."
//
// Three suppliers share one ECU, each inside its own CPU partition
// (reservation). Supplier B ships a defective task that overruns x5 between
// t = 2 s and t = 4 s. The run shows:
//   * supplier A and C keep every deadline (timing isolation),
//   * B's overruns are throttled by its partition and detected by alive
//     supervision, which files a DTC and drives B's mode machine to LIMP.
#include <cstdio>

#include "bsw/dem.hpp"
#include "bsw/mode.hpp"
#include "bsw/watchdog.hpp"
#include "isolation/fault_injection.hpp"
#include "isolation/monitor.hpp"
#include "os/ecu.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"

using namespace orte;
using sim::milliseconds;
using sim::microseconds;

int main() {
  sim::Kernel kernel;
  sim::Trace trace;
  os::Ecu ecu(kernel, trace, "central_ecu");
  isolation::ContainmentMonitor monitor(trace);

  // One reservation per supplier: the ECU integrator hands out CPU shares.
  const int part_a = ecu.add_partition(
      {.name = "supplierA", .budget = milliseconds(2), .period = milliseconds(10)});
  const int part_b = ecu.add_partition(
      {.name = "supplierB", .budget = milliseconds(3), .period = milliseconds(10)});
  const int part_c = ecu.add_partition(
      {.name = "supplierC", .budget = milliseconds(4), .period = milliseconds(10)});

  auto& a = ecu.add_task({.name = "A_engine_monitor", .priority = 3,
                          .period = milliseconds(5),
                          .relative_deadline = milliseconds(5),
                          .partition = part_a});
  a.set_body(microseconds(800));

  auto& b = ecu.add_task({.name = "B_comfort_ctrl", .priority = 2,
                          .period = milliseconds(10),
                          .relative_deadline = milliseconds(10),
                          .partition = part_b});
  // B's contract says 2.5 ms; the defect makes it 12.5 ms during [2s, 4s).
  b.add_segment({.duration = isolation::overrunning_wcet(
                     kernel, microseconds(2500), 5.0, sim::seconds(2),
                     sim::seconds(4))});

  auto& c = ecu.add_task({.name = "C_body_gateway", .priority = 1,
                          .period = milliseconds(10),
                          .relative_deadline = milliseconds(10),
                          .partition = part_c});
  c.set_body(milliseconds(3));

  // Health management: alive supervision per supplier task + DEM + modes.
  // B nominally completes 5 jobs per 50 ms supervision cycle; when its
  // partition throttles the overruns, the completion rate collapses to ~1 —
  // the alive supervision demands at least 4.
  bsw::WatchdogManager wdg(kernel, trace, milliseconds(50));
  wdg.supervise({.entity = "B_alive", .min_indications = 4,
                 .failed_cycles_tolerance = 1});
  b.on_complete([&](sim::Time, sim::Time) { wdg.checkpoint("B_alive"); });

  bsw::Dem dem(kernel, trace);
  dem.add_event({.name = "B_timing_fault", .debounce_threshold = 1});
  bsw::ModeMachine b_mode(kernel, trace, "supplierB", "RUN");
  b_mode.add_mode("LIMP");
  b_mode.add_transition("RUN", "LIMP");
  wdg.on_violation([&](const std::string&, std::uint32_t) {
    dem.report("B_timing_fault", bsw::EventStatus::kFailed);
    b_mode.request("LIMP");
  });

  ecu.start();
  wdg.start();
  kernel.run_until(sim::seconds(6));

  std::puts("multi-supplier ECU, supplier B overruns x5 during [2s, 4s)");
  std::puts("task                jobs   kills  deadline-misses");
  for (const auto& t : ecu.tasks()) {
    std::printf("%-18s %6llu  %5llu  %6llu\n", t->name().c_str(),
                static_cast<unsigned long long>(t->jobs_completed()),
                static_cast<unsigned long long>(t->jobs_killed()),
                static_cast<unsigned long long>(t->deadline_misses()));
  }
  std::printf("\npartition throttles: A=%llu B=%llu C=%llu\n",
              static_cast<unsigned long long>(ecu.partition_throttles(part_a)),
              static_cast<unsigned long long>(ecu.partition_throttles(part_b)),
              static_cast<unsigned long long>(ecu.partition_throttles(part_c)));
  std::printf("victim deadline misses (A+C): %llu\n",
              static_cast<unsigned long long>(monitor.victim_misses("B_")));
  std::printf("watchdog violations: %llu, DTC stored: %s, supplier B mode: %s\n",
              static_cast<unsigned long long>(wdg.violations()),
              dem.dtc("B_timing_fault").has_value() ? "yes" : "no",
              b_mode.current().c_str());

  const bool isolated = monitor.victim_misses("B_") == 0 &&
                        dem.dtc("B_timing_fault").has_value() &&
                        b_mode.in("LIMP");
  std::puts(isolated ? "\n=> fault contained to supplier B"
                     : "\n=> ISOLATION FAILED");
  return isolated ? 0 : 1;
}
