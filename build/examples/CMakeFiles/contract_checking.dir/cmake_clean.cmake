file(REMOVE_RECURSE
  "CMakeFiles/contract_checking.dir/contract_checking.cpp.o"
  "CMakeFiles/contract_checking.dir/contract_checking.cpp.o.d"
  "contract_checking"
  "contract_checking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contract_checking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
