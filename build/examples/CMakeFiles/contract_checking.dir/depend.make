# Empty dependencies file for contract_checking.
# This may be replaced when dependencies are built.
