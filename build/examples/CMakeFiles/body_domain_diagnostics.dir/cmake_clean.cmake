file(REMOVE_RECURSE
  "CMakeFiles/body_domain_diagnostics.dir/body_domain_diagnostics.cpp.o"
  "CMakeFiles/body_domain_diagnostics.dir/body_domain_diagnostics.cpp.o.d"
  "body_domain_diagnostics"
  "body_domain_diagnostics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/body_domain_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
