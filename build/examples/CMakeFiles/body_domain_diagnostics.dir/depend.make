# Empty dependencies file for body_domain_diagnostics.
# This may be replaced when dependencies are built.
