# Empty compiler generated dependencies file for integrated_mpsoc.
# This may be replaced when dependencies are built.
