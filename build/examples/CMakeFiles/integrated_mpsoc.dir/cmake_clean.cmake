file(REMOVE_RECURSE
  "CMakeFiles/integrated_mpsoc.dir/integrated_mpsoc.cpp.o"
  "CMakeFiles/integrated_mpsoc.dir/integrated_mpsoc.cpp.o.d"
  "integrated_mpsoc"
  "integrated_mpsoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integrated_mpsoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
