# Empty dependencies file for integrated_mpsoc.
# This may be replaced when dependencies are built.
