file(REMOVE_RECURSE
  "CMakeFiles/multi_supplier_ecu.dir/multi_supplier_ecu.cpp.o"
  "CMakeFiles/multi_supplier_ecu.dir/multi_supplier_ecu.cpp.o.d"
  "multi_supplier_ecu"
  "multi_supplier_ecu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_supplier_ecu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
