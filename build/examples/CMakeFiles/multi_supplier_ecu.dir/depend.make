# Empty dependencies file for multi_supplier_ecu.
# This may be replaced when dependencies are built.
