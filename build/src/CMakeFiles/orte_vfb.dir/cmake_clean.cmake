file(REMOVE_RECURSE
  "CMakeFiles/orte_vfb.dir/vfb/model.cpp.o"
  "CMakeFiles/orte_vfb.dir/vfb/model.cpp.o.d"
  "CMakeFiles/orte_vfb.dir/vfb/rte.cpp.o"
  "CMakeFiles/orte_vfb.dir/vfb/rte.cpp.o.d"
  "CMakeFiles/orte_vfb.dir/vfb/system.cpp.o"
  "CMakeFiles/orte_vfb.dir/vfb/system.cpp.o.d"
  "liborte_vfb.a"
  "liborte_vfb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orte_vfb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
