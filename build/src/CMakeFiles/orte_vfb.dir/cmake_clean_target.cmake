file(REMOVE_RECURSE
  "liborte_vfb.a"
)
