# Empty compiler generated dependencies file for orte_vfb.
# This may be replaced when dependencies are built.
