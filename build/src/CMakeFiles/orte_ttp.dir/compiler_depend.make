# Empty compiler generated dependencies file for orte_ttp.
# This may be replaced when dependencies are built.
