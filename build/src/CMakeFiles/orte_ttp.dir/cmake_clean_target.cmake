file(REMOVE_RECURSE
  "liborte_ttp.a"
)
