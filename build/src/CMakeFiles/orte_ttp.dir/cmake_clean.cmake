file(REMOVE_RECURSE
  "CMakeFiles/orte_ttp.dir/ttp/clock_sync.cpp.o"
  "CMakeFiles/orte_ttp.dir/ttp/clock_sync.cpp.o.d"
  "CMakeFiles/orte_ttp.dir/ttp/ttp_bus.cpp.o"
  "CMakeFiles/orte_ttp.dir/ttp/ttp_bus.cpp.o.d"
  "liborte_ttp.a"
  "liborte_ttp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orte_ttp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
