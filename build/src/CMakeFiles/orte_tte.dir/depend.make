# Empty dependencies file for orte_tte.
# This may be replaced when dependencies are built.
