file(REMOVE_RECURSE
  "CMakeFiles/orte_tte.dir/tte/tte_switch.cpp.o"
  "CMakeFiles/orte_tte.dir/tte/tte_switch.cpp.o.d"
  "liborte_tte.a"
  "liborte_tte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orte_tte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
