file(REMOVE_RECURSE
  "liborte_tte.a"
)
