# Empty dependencies file for orte_flexray.
# This may be replaced when dependencies are built.
