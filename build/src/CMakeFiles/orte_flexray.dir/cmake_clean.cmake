file(REMOVE_RECURSE
  "CMakeFiles/orte_flexray.dir/flexray/dual_channel.cpp.o"
  "CMakeFiles/orte_flexray.dir/flexray/dual_channel.cpp.o.d"
  "CMakeFiles/orte_flexray.dir/flexray/flexray_bus.cpp.o"
  "CMakeFiles/orte_flexray.dir/flexray/flexray_bus.cpp.o.d"
  "liborte_flexray.a"
  "liborte_flexray.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orte_flexray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
