file(REMOVE_RECURSE
  "liborte_flexray.a"
)
