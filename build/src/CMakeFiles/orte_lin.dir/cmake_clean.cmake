file(REMOVE_RECURSE
  "CMakeFiles/orte_lin.dir/lin/lin_bus.cpp.o"
  "CMakeFiles/orte_lin.dir/lin/lin_bus.cpp.o.d"
  "liborte_lin.a"
  "liborte_lin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orte_lin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
