# Empty compiler generated dependencies file for orte_lin.
# This may be replaced when dependencies are built.
