file(REMOVE_RECURSE
  "liborte_lin.a"
)
