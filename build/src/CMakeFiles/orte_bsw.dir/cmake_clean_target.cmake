file(REMOVE_RECURSE
  "liborte_bsw.a"
)
