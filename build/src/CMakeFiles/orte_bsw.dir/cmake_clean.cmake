file(REMOVE_RECURSE
  "CMakeFiles/orte_bsw.dir/bsw/com.cpp.o"
  "CMakeFiles/orte_bsw.dir/bsw/com.cpp.o.d"
  "CMakeFiles/orte_bsw.dir/bsw/dcm.cpp.o"
  "CMakeFiles/orte_bsw.dir/bsw/dcm.cpp.o.d"
  "CMakeFiles/orte_bsw.dir/bsw/dem.cpp.o"
  "CMakeFiles/orte_bsw.dir/bsw/dem.cpp.o.d"
  "CMakeFiles/orte_bsw.dir/bsw/e2e_protection.cpp.o"
  "CMakeFiles/orte_bsw.dir/bsw/e2e_protection.cpp.o.d"
  "CMakeFiles/orte_bsw.dir/bsw/mode.cpp.o"
  "CMakeFiles/orte_bsw.dir/bsw/mode.cpp.o.d"
  "CMakeFiles/orte_bsw.dir/bsw/nvm.cpp.o"
  "CMakeFiles/orte_bsw.dir/bsw/nvm.cpp.o.d"
  "CMakeFiles/orte_bsw.dir/bsw/pdu_router.cpp.o"
  "CMakeFiles/orte_bsw.dir/bsw/pdu_router.cpp.o.d"
  "CMakeFiles/orte_bsw.dir/bsw/watchdog.cpp.o"
  "CMakeFiles/orte_bsw.dir/bsw/watchdog.cpp.o.d"
  "liborte_bsw.a"
  "liborte_bsw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orte_bsw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
