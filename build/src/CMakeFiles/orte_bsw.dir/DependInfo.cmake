
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bsw/com.cpp" "src/CMakeFiles/orte_bsw.dir/bsw/com.cpp.o" "gcc" "src/CMakeFiles/orte_bsw.dir/bsw/com.cpp.o.d"
  "/root/repo/src/bsw/dcm.cpp" "src/CMakeFiles/orte_bsw.dir/bsw/dcm.cpp.o" "gcc" "src/CMakeFiles/orte_bsw.dir/bsw/dcm.cpp.o.d"
  "/root/repo/src/bsw/dem.cpp" "src/CMakeFiles/orte_bsw.dir/bsw/dem.cpp.o" "gcc" "src/CMakeFiles/orte_bsw.dir/bsw/dem.cpp.o.d"
  "/root/repo/src/bsw/e2e_protection.cpp" "src/CMakeFiles/orte_bsw.dir/bsw/e2e_protection.cpp.o" "gcc" "src/CMakeFiles/orte_bsw.dir/bsw/e2e_protection.cpp.o.d"
  "/root/repo/src/bsw/mode.cpp" "src/CMakeFiles/orte_bsw.dir/bsw/mode.cpp.o" "gcc" "src/CMakeFiles/orte_bsw.dir/bsw/mode.cpp.o.d"
  "/root/repo/src/bsw/nvm.cpp" "src/CMakeFiles/orte_bsw.dir/bsw/nvm.cpp.o" "gcc" "src/CMakeFiles/orte_bsw.dir/bsw/nvm.cpp.o.d"
  "/root/repo/src/bsw/pdu_router.cpp" "src/CMakeFiles/orte_bsw.dir/bsw/pdu_router.cpp.o" "gcc" "src/CMakeFiles/orte_bsw.dir/bsw/pdu_router.cpp.o.d"
  "/root/repo/src/bsw/watchdog.cpp" "src/CMakeFiles/orte_bsw.dir/bsw/watchdog.cpp.o" "gcc" "src/CMakeFiles/orte_bsw.dir/bsw/watchdog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/orte_os.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orte_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orte_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
