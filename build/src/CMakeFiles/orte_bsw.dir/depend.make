# Empty dependencies file for orte_bsw.
# This may be replaced when dependencies are built.
