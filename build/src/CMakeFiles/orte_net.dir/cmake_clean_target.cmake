file(REMOVE_RECURSE
  "liborte_net.a"
)
