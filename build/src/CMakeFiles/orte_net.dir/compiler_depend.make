# Empty compiler generated dependencies file for orte_net.
# This may be replaced when dependencies are built.
