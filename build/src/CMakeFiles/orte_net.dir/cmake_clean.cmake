file(REMOVE_RECURSE
  "CMakeFiles/orte_net.dir/net/bus_stats.cpp.o"
  "CMakeFiles/orte_net.dir/net/bus_stats.cpp.o.d"
  "liborte_net.a"
  "liborte_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orte_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
