file(REMOVE_RECURSE
  "CMakeFiles/orte_can.dir/can/can_bus.cpp.o"
  "CMakeFiles/orte_can.dir/can/can_bus.cpp.o.d"
  "liborte_can.a"
  "liborte_can.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orte_can.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
