# Empty compiler generated dependencies file for orte_can.
# This may be replaced when dependencies are built.
