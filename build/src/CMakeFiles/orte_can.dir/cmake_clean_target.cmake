file(REMOVE_RECURSE
  "liborte_can.a"
)
