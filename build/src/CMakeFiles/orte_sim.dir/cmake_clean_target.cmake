file(REMOVE_RECURSE
  "liborte_sim.a"
)
