# Empty dependencies file for orte_sim.
# This may be replaced when dependencies are built.
