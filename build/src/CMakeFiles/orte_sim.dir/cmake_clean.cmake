file(REMOVE_RECURSE
  "CMakeFiles/orte_sim.dir/sim/kernel.cpp.o"
  "CMakeFiles/orte_sim.dir/sim/kernel.cpp.o.d"
  "liborte_sim.a"
  "liborte_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orte_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
