# Empty compiler generated dependencies file for orte_os.
# This may be replaced when dependencies are built.
