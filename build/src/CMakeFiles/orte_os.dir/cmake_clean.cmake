file(REMOVE_RECURSE
  "CMakeFiles/orte_os.dir/os/ecu.cpp.o"
  "CMakeFiles/orte_os.dir/os/ecu.cpp.o.d"
  "liborte_os.a"
  "liborte_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orte_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
