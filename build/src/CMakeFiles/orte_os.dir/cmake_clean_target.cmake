file(REMOVE_RECURSE
  "liborte_os.a"
)
