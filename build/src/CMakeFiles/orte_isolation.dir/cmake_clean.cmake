file(REMOVE_RECURSE
  "CMakeFiles/orte_isolation.dir/isolation/fault_injection.cpp.o"
  "CMakeFiles/orte_isolation.dir/isolation/fault_injection.cpp.o.d"
  "CMakeFiles/orte_isolation.dir/isolation/monitor.cpp.o"
  "CMakeFiles/orte_isolation.dir/isolation/monitor.cpp.o.d"
  "liborte_isolation.a"
  "liborte_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orte_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
