file(REMOVE_RECURSE
  "liborte_isolation.a"
)
