# Empty dependencies file for orte_isolation.
# This may be replaced when dependencies are built.
