# Empty dependencies file for orte_noc.
# This may be replaced when dependencies are built.
