file(REMOVE_RECURSE
  "CMakeFiles/orte_noc.dir/noc/can_overlay.cpp.o"
  "CMakeFiles/orte_noc.dir/noc/can_overlay.cpp.o.d"
  "CMakeFiles/orte_noc.dir/noc/noc.cpp.o"
  "CMakeFiles/orte_noc.dir/noc/noc.cpp.o.d"
  "liborte_noc.a"
  "liborte_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orte_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
