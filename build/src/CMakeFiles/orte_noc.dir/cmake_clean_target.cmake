file(REMOVE_RECURSE
  "liborte_noc.a"
)
