file(REMOVE_RECURSE
  "liborte_analysis.a"
)
