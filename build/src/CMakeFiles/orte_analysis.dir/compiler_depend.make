# Empty compiler generated dependencies file for orte_analysis.
# This may be replaced when dependencies are built.
