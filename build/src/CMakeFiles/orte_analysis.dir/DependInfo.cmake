
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/can_analysis.cpp" "src/CMakeFiles/orte_analysis.dir/analysis/can_analysis.cpp.o" "gcc" "src/CMakeFiles/orte_analysis.dir/analysis/can_analysis.cpp.o.d"
  "/root/repo/src/analysis/e2e.cpp" "src/CMakeFiles/orte_analysis.dir/analysis/e2e.cpp.o" "gcc" "src/CMakeFiles/orte_analysis.dir/analysis/e2e.cpp.o.d"
  "/root/repo/src/analysis/flexray_analysis.cpp" "src/CMakeFiles/orte_analysis.dir/analysis/flexray_analysis.cpp.o" "gcc" "src/CMakeFiles/orte_analysis.dir/analysis/flexray_analysis.cpp.o.d"
  "/root/repo/src/analysis/frame_packing.cpp" "src/CMakeFiles/orte_analysis.dir/analysis/frame_packing.cpp.o" "gcc" "src/CMakeFiles/orte_analysis.dir/analysis/frame_packing.cpp.o.d"
  "/root/repo/src/analysis/holistic.cpp" "src/CMakeFiles/orte_analysis.dir/analysis/holistic.cpp.o" "gcc" "src/CMakeFiles/orte_analysis.dir/analysis/holistic.cpp.o.d"
  "/root/repo/src/analysis/rta.cpp" "src/CMakeFiles/orte_analysis.dir/analysis/rta.cpp.o" "gcc" "src/CMakeFiles/orte_analysis.dir/analysis/rta.cpp.o.d"
  "/root/repo/src/analysis/sensitivity.cpp" "src/CMakeFiles/orte_analysis.dir/analysis/sensitivity.cpp.o" "gcc" "src/CMakeFiles/orte_analysis.dir/analysis/sensitivity.cpp.o.d"
  "/root/repo/src/analysis/tt_schedule.cpp" "src/CMakeFiles/orte_analysis.dir/analysis/tt_schedule.cpp.o" "gcc" "src/CMakeFiles/orte_analysis.dir/analysis/tt_schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/orte_os.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orte_can.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orte_flexray.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orte_contracts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orte_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orte_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
