file(REMOVE_RECURSE
  "CMakeFiles/orte_analysis.dir/analysis/can_analysis.cpp.o"
  "CMakeFiles/orte_analysis.dir/analysis/can_analysis.cpp.o.d"
  "CMakeFiles/orte_analysis.dir/analysis/e2e.cpp.o"
  "CMakeFiles/orte_analysis.dir/analysis/e2e.cpp.o.d"
  "CMakeFiles/orte_analysis.dir/analysis/flexray_analysis.cpp.o"
  "CMakeFiles/orte_analysis.dir/analysis/flexray_analysis.cpp.o.d"
  "CMakeFiles/orte_analysis.dir/analysis/frame_packing.cpp.o"
  "CMakeFiles/orte_analysis.dir/analysis/frame_packing.cpp.o.d"
  "CMakeFiles/orte_analysis.dir/analysis/holistic.cpp.o"
  "CMakeFiles/orte_analysis.dir/analysis/holistic.cpp.o.d"
  "CMakeFiles/orte_analysis.dir/analysis/rta.cpp.o"
  "CMakeFiles/orte_analysis.dir/analysis/rta.cpp.o.d"
  "CMakeFiles/orte_analysis.dir/analysis/sensitivity.cpp.o"
  "CMakeFiles/orte_analysis.dir/analysis/sensitivity.cpp.o.d"
  "CMakeFiles/orte_analysis.dir/analysis/tt_schedule.cpp.o"
  "CMakeFiles/orte_analysis.dir/analysis/tt_schedule.cpp.o.d"
  "liborte_analysis.a"
  "liborte_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orte_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
