file(REMOVE_RECURSE
  "CMakeFiles/orte_contracts.dir/contracts/contract.cpp.o"
  "CMakeFiles/orte_contracts.dir/contracts/contract.cpp.o.d"
  "CMakeFiles/orte_contracts.dir/contracts/network.cpp.o"
  "CMakeFiles/orte_contracts.dir/contracts/network.cpp.o.d"
  "CMakeFiles/orte_contracts.dir/contracts/timed_automaton.cpp.o"
  "CMakeFiles/orte_contracts.dir/contracts/timed_automaton.cpp.o.d"
  "liborte_contracts.a"
  "liborte_contracts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orte_contracts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
