# Empty dependencies file for orte_contracts.
# This may be replaced when dependencies are built.
