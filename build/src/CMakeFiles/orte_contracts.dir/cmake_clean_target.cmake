file(REMOVE_RECURSE
  "liborte_contracts.a"
)
