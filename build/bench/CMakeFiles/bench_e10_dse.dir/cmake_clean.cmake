file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_dse.dir/bench_e10_dse.cpp.o"
  "CMakeFiles/bench_e10_dse.dir/bench_e10_dse.cpp.o.d"
  "bench_e10_dse"
  "bench_e10_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
