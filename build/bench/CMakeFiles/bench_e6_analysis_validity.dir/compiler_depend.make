# Empty compiler generated dependencies file for bench_e6_analysis_validity.
# This may be replaced when dependencies are built.
