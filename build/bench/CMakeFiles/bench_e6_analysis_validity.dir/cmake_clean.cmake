file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_analysis_validity.dir/bench_e6_analysis_validity.cpp.o"
  "CMakeFiles/bench_e6_analysis_validity.dir/bench_e6_analysis_validity.cpp.o.d"
  "bench_e6_analysis_validity"
  "bench_e6_analysis_validity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_analysis_validity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
