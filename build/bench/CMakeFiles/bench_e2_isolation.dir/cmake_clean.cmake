file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_isolation.dir/bench_e2_isolation.cpp.o"
  "CMakeFiles/bench_e2_isolation.dir/bench_e2_isolation.cpp.o.d"
  "bench_e2_isolation"
  "bench_e2_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
