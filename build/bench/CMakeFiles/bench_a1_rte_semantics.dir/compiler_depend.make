# Empty compiler generated dependencies file for bench_a1_rte_semantics.
# This may be replaced when dependencies are built.
