file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_rte_semantics.dir/bench_a1_rte_semantics.cpp.o"
  "CMakeFiles/bench_a1_rte_semantics.dir/bench_a1_rte_semantics.cpp.o.d"
  "bench_a1_rte_semantics"
  "bench_a1_rte_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_rte_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
