# Empty compiler generated dependencies file for bench_a2_clock_sync.
# This may be replaced when dependencies are built.
