# Empty dependencies file for bench_e7_integration.
# This may be replaced when dependencies are built.
