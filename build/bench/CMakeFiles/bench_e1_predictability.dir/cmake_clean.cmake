file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_predictability.dir/bench_e1_predictability.cpp.o"
  "CMakeFiles/bench_e1_predictability.dir/bench_e1_predictability.cpp.o.d"
  "bench_e1_predictability"
  "bench_e1_predictability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_predictability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
