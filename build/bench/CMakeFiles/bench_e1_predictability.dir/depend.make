# Empty dependencies file for bench_e1_predictability.
# This may be replaced when dependencies are built.
