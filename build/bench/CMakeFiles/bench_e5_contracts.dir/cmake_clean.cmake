file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_contracts.dir/bench_e5_contracts.cpp.o"
  "CMakeFiles/bench_e5_contracts.dir/bench_e5_contracts.cpp.o.d"
  "bench_e5_contracts"
  "bench_e5_contracts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_contracts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
