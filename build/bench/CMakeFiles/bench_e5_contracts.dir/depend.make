# Empty dependencies file for bench_e5_contracts.
# This may be replaced when dependencies are built.
