file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_extensibility.dir/bench_e3_extensibility.cpp.o"
  "CMakeFiles/bench_e3_extensibility.dir/bench_e3_extensibility.cpp.o.d"
  "bench_e3_extensibility"
  "bench_e3_extensibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_extensibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
