file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_overlay.dir/bench_e11_overlay.cpp.o"
  "CMakeFiles/bench_e11_overlay.dir/bench_e11_overlay.cpp.o.d"
  "bench_e11_overlay"
  "bench_e11_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
