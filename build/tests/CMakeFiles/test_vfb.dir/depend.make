# Empty dependencies file for test_vfb.
# This may be replaced when dependencies are built.
