file(REMOVE_RECURSE
  "CMakeFiles/test_vfb.dir/test_vfb.cpp.o"
  "CMakeFiles/test_vfb.dir/test_vfb.cpp.o.d"
  "test_vfb"
  "test_vfb.pdb"
  "test_vfb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vfb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
