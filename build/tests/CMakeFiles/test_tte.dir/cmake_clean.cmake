file(REMOVE_RECURSE
  "CMakeFiles/test_tte.dir/test_tte.cpp.o"
  "CMakeFiles/test_tte.dir/test_tte.cpp.o.d"
  "test_tte"
  "test_tte.pdb"
  "test_tte[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
