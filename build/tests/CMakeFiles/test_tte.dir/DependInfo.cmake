
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_tte.cpp" "tests/CMakeFiles/test_tte.dir/test_tte.cpp.o" "gcc" "tests/CMakeFiles/test_tte.dir/test_tte.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/orte_tte.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orte_lin.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orte_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orte_vfb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orte_ttp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orte_isolation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orte_bsw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orte_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orte_os.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orte_can.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orte_flexray.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orte_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orte_contracts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/orte_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
