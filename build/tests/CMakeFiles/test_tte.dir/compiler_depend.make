# Empty compiler generated dependencies file for test_tte.
# This may be replaced when dependencies are built.
