# Empty dependencies file for test_bsw.
# This may be replaced when dependencies are built.
