file(REMOVE_RECURSE
  "CMakeFiles/test_bsw.dir/test_bsw.cpp.o"
  "CMakeFiles/test_bsw.dir/test_bsw.cpp.o.d"
  "test_bsw"
  "test_bsw.pdb"
  "test_bsw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bsw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
