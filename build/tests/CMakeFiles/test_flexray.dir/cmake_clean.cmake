file(REMOVE_RECURSE
  "CMakeFiles/test_flexray.dir/test_flexray.cpp.o"
  "CMakeFiles/test_flexray.dir/test_flexray.cpp.o.d"
  "test_flexray"
  "test_flexray.pdb"
  "test_flexray[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flexray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
