# Empty dependencies file for test_flexray.
# This may be replaced when dependencies are built.
