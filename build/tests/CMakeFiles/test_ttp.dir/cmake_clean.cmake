file(REMOVE_RECURSE
  "CMakeFiles/test_ttp.dir/test_ttp.cpp.o"
  "CMakeFiles/test_ttp.dir/test_ttp.cpp.o.d"
  "test_ttp"
  "test_ttp.pdb"
  "test_ttp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ttp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
