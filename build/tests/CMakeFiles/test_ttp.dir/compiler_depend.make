# Empty compiler generated dependencies file for test_ttp.
# This may be replaced when dependencies are built.
