# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_os[1]_include.cmake")
include("/root/repo/build/tests/test_can[1]_include.cmake")
include("/root/repo/build/tests/test_flexray[1]_include.cmake")
include("/root/repo/build/tests/test_ttp[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_bsw[1]_include.cmake")
include("/root/repo/build/tests/test_vfb[1]_include.cmake")
include("/root/repo/build/tests/test_contracts[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_isolation[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_tte[1]_include.cmake")
include("/root/repo/build/tests/test_extensions2[1]_include.cmake")
