// CAN 2.0A bus simulator.
//
// Modelled at frame granularity: priority arbitration on identifier at each
// bus-idle instant, non-preemptive transmission, worst-case bit-stuffed frame
// length, automatic retransmission after (injected) transmission errors.
// This is the event-triggered baseline of the paper's predictability and
// extensibility experiments (E1, E3) and the reference for the CAN
// response-time analysis in src/analysis.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "net/bus_stats.hpp"
#include "net/fault_hook.hpp"
#include "net/frame.hpp"
#include "sim/kernel.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace orte::can {

using net::Frame;
using sim::Duration;
using sim::Time;

class CanBus;

/// Worst-case (bit-stuffed) transmission time of a standard-format data
/// frame with `bytes` payload at `bitrate_bps` (Davis et al., RTSJ 2007:
/// C = (55 + 10 n) * tau_bit).
[[nodiscard]] Duration frame_transmission_time(std::size_t bytes,
                                               std::int64_t bitrate_bps);

/// Node-side CAN controller with a priority-ordered transmit queue.
class CanController : public net::Controller {
 public:
  void send(Frame frame) override;

  /// Frames waiting for arbitration (head = highest priority = lowest id).
  [[nodiscard]] std::size_t tx_queue_depth() const { return queue_.size(); }

 private:
  friend class CanBus;
  CanController(CanBus& bus, int node) : bus_(&bus), node_(node) {}

  const Frame* head() const { return queue_.empty() ? nullptr : &queue_[0]; }
  Frame pop_head();
  void push_sorted(Frame frame);
  void deliver(const Frame& f) { notify_receive(f); }

  CanBus* bus_;
  int node_;
  std::deque<Frame> queue_;
};

struct CanConfig {
  std::string name = "can0";
  std::int64_t bitrate_bps = 500'000;  ///< Classic high-speed CAN.
  /// Independent per-frame corruption probability (error frames +
  /// retransmission follow); 0 disables the fault model.
  double error_rate = 0.0;
  std::uint64_t seed = 1;
};

class CanBus {
 public:
  CanBus(sim::Kernel& kernel, sim::Trace& trace, CanConfig cfg);
  CanBus(const CanBus&) = delete;
  CanBus& operator=(const CanBus&) = delete;

  /// Attach a node; returns its controller (owned by the bus).
  CanController& attach();

  /// Transmission time of a frame with `bytes` payload, worst-case stuffing.
  [[nodiscard]] Duration frame_time(std::size_t bytes) const;

  /// Install the fault-injection hook, consulted once per successfully
  /// transmitted frame at the delivery point (after the built-in error/
  /// retransmission model). Drop, delay and in-place corruption are all
  /// honored. Replaces any previous hook; pass {} to clear.
  void set_fault_hook(net::FaultHook hook) { fault_hook_ = std::move(hook); }

  [[nodiscard]] const net::BusStats& stats() const { return stats_; }
  [[nodiscard]] const std::string& name() const { return cfg_.name; }
  [[nodiscard]] std::uint64_t retransmissions() const {
    return retransmissions_;
  }

 private:
  friend class CanController;

  void notify_pending();  ///< A controller enqueued a frame.
  void try_arbitrate();   ///< Schedule an arbitration decision point.
  void arbitrate();       ///< Start a transmission if bus idle + pending.
  void finish_tx();

  sim::Kernel& kernel_;
  sim::Trace& trace_;
  CanConfig cfg_;
  Duration bit_time_;
  std::vector<std::unique_ptr<CanController>> controllers_;
  net::BusStats stats_;
  sim::Rng rng_;
  net::FaultHook fault_hook_;

  bool busy_ = false;
  Time idle_at_ = 0;  ///< Earliest next arbitration (interframe space).
  bool arbitration_scheduled_ = false;
  Frame in_flight_;
  int in_flight_source_ = -1;
  std::uint64_t retransmissions_ = 0;
};

}  // namespace orte::can
