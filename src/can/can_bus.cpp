#include "can/can_bus.hpp"

#include <algorithm>
#include <stdexcept>

namespace orte::can {

namespace {
// Error frame + error delimiter + recovery, conservative (bits). The normal
// 3-bit interframe space is already part of the Davis frame-time formula.
constexpr int kErrorFrameBits = 31;
}  // namespace

// --- CanController -----------------------------------------------------------

void CanController::send(Frame frame) {
  if (frame.size() > 8) {
    throw std::invalid_argument("CAN payload exceeds 8 bytes");
  }
  frame.source = node_;
  push_sorted(std::move(frame));
  bus_->notify_pending();
}

void CanController::push_sorted(Frame frame) {
  // Priority queue by identifier; FIFO among equal ids (insertion after the
  // last equal id preserves sender ordering).
  auto it = std::find_if(queue_.begin(), queue_.end(), [&](const Frame& f) {
    return f.id > frame.id;
  });
  queue_.insert(it, std::move(frame));
}

Frame CanController::pop_head() {
  Frame f = std::move(queue_.front());
  queue_.pop_front();
  return f;
}

// --- CanBus ------------------------------------------------------------------

CanBus::CanBus(sim::Kernel& kernel, sim::Trace& trace, CanConfig cfg)
    : kernel_(kernel),
      trace_(trace),
      cfg_(std::move(cfg)),
      bit_time_(1'000'000'000 / cfg_.bitrate_bps),
      rng_(cfg_.seed) {
  if (cfg_.bitrate_bps <= 0) {
    throw std::invalid_argument("CAN bitrate must be positive");
  }
}

CanController& CanBus::attach() {
  const int node = static_cast<int>(controllers_.size());
  controllers_.push_back(
      std::unique_ptr<CanController>(new CanController(*this, node)));
  return *controllers_.back();
}

Duration frame_transmission_time(std::size_t bytes, std::int64_t bitrate_bps) {
  // Standard-format data frame, worst-case bit stuffing (Davis et al.,
  // "Controller Area Network schedulability analysis", RTSJ 2007):
  //   C = (55 + 10 * n) * tau_bit   for n data bytes.
  const Duration bit_time = 1'000'000'000 / bitrate_bps;
  return static_cast<Duration>(55 + 10 * static_cast<std::int64_t>(bytes)) *
         bit_time;
}

Duration CanBus::frame_time(std::size_t bytes) const {
  return frame_transmission_time(bytes, cfg_.bitrate_bps);
}

void CanBus::notify_pending() { try_arbitrate(); }

void CanBus::try_arbitrate() {
  if (busy_ || arbitration_scheduled_) return;
  // Defer the arbitration decision to the END of the current instant
  // (observer order): frames enqueued by different nodes within the same
  // simulated instant all take part, as they would within one bit time on
  // the wire — regardless of the order their software happened to run in.
  arbitration_scheduled_ = true;
  kernel_.schedule_at(std::max(kernel_.now(), idle_at_),
                      [this] {
                        arbitration_scheduled_ = false;
                        arbitrate();
                      },
                      sim::EventOrder::kObserver);
}

void CanBus::arbitrate() {
  if (busy_) return;
  // Among all controllers with a pending frame, the lowest identifier wins;
  // ties (same id from two nodes — a config error on real CAN) resolve by
  // node index for determinism.
  CanController* winner = nullptr;
  for (const auto& c : controllers_) {
    const Frame* head = c->head();
    if (head == nullptr) continue;
    if (winner == nullptr || head->id < winner->head()->id) {
      winner = c.get();
    }
  }
  if (winner == nullptr) return;

  busy_ = true;
  in_flight_ = winner->pop_head();
  in_flight_source_ = in_flight_.source;
  in_flight_.sent_at = kernel_.now();
  stats_.record_queueing_delay(kernel_.now() - in_flight_.enqueued_at);
  trace_.emit(kernel_.now(), "can.tx_start", in_flight_.name, in_flight_.id);
  kernel_.schedule_in(frame_time(in_flight_.size()), [this] { finish_tx(); },
                      sim::EventOrder::kHardware);
}

void CanBus::finish_tx() {
  busy_ = false;
  const bool corrupted = cfg_.error_rate > 0.0 && rng_.chance(cfg_.error_rate);
  stats_.record_tx(in_flight_.sent_at, kernel_.now(), !corrupted);
  if (corrupted) {
    // Error frame follows; CAN automatically retransmits: requeue at the
    // source controller with original enqueue timestamp.
    ++retransmissions_;
    trace_.emit(kernel_.now(), "can.error", in_flight_.name, in_flight_.id);
    idle_at_ = kernel_.now() + kErrorFrameBits * bit_time_;
    controllers_[static_cast<std::size_t>(in_flight_source_)]->push_sorted(
        std::move(in_flight_));
  } else {
    idle_at_ = kernel_.now();  // IFS is folded into the frame time
    Frame frame = std::move(in_flight_);
    const int source = in_flight_source_;
    net::FaultVerdict verdict;
    if (fault_hook_) verdict = fault_hook_(frame);
    if (verdict.drop) {
      // The frame made it over the wire but is injected away before any
      // listener sees it (receiver-side CRC reject without the error-frame
      // broadcast — the "silent loss" half of the fault space).
      stats_.record_drop();
      trace_.emit(kernel_.now(), "can.fault_drop", frame.name, frame.id);
    } else if (verdict.delay > 0) {
      trace_.emit(kernel_.now(), "can.fault_delay", frame.name,
                  verdict.delay);
      kernel_.schedule_in(
          verdict.delay,
          [this, frame = std::move(frame), source]() mutable {
            frame.delivered_at = kernel_.now();
            trace_.emit(kernel_.now(), "can.rx", frame.name, frame.id);
            for (const auto& c : controllers_) {
              if (c->node_ != source) c->deliver(frame);
            }
          },
          sim::EventOrder::kHardware);
    } else {
      frame.delivered_at = kernel_.now();
      trace_.emit(kernel_.now(), "can.rx", frame.name, frame.id);
      for (const auto& c : controllers_) {
        if (c->node_ != source) c->deliver(frame);
      }
    }
  }
  try_arbitrate();
}

}  // namespace orte::can
