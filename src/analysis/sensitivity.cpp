#include "analysis/sensitivity.hpp"

namespace orte::analysis {

namespace {
std::vector<AnalysisTask> scaled(const std::vector<AnalysisTask>& taskset,
                                 double alpha) {
  std::vector<AnalysisTask> out = taskset;
  for (auto& t : out) {
    t.wcet = static_cast<sim::Duration>(static_cast<double>(t.wcet) * alpha);
  }
  return out;
}
}  // namespace

double wcet_scaling_limit(const std::vector<AnalysisTask>& taskset,
                          double tolerance, double upper) {
  if (!analyze(taskset).schedulable) return 0.0;
  double lo = 1.0;
  double hi = upper;
  if (analyze(scaled(taskset, hi)).schedulable) return hi;
  while (hi - lo > tolerance) {
    const double mid = (lo + hi) / 2;
    if (analyze(scaled(taskset, mid)).schedulable) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::map<std::string, sim::Duration> task_slack(
    const std::vector<AnalysisTask>& taskset) {
  std::map<std::string, sim::Duration> out;
  for (const auto& t : taskset) {
    const auto r = response_time(t, taskset);
    const sim::Duration deadline = t.deadline > 0 ? t.deadline : t.period;
    out[t.name] = r.has_value() ? deadline - *r : -1;
  }
  return out;
}

}  // namespace orte::analysis
