#include "analysis/rta.hpp"

#include <algorithm>

namespace orte::analysis {

std::optional<Duration> response_time(
    const AnalysisTask& task, const std::vector<AnalysisTask>& taskset) {
  const Duration deadline =
      task.deadline > 0 ? task.deadline : task.period;
  const Duration horizon = deadline > 0 ? deadline : 1000 * task.period;
  Duration w = task.wcet + task.blocking;
  while (true) {
    Duration next = task.wcet + task.blocking;
    for (const auto& j : taskset) {
      // Equal-priority peers count as interference too: the dispatcher
      // breaks ties by arrival (incumbent wins), so a peer job released
      // before ours runs first — excluding it would give unsound bounds for
      // same-priority task groups (e.g. data-received event tasks, which
      // all share DeploymentPlan::data_task_priority on an ECU).
      if (j.priority < task.priority || j.name == task.name) continue;
      if (j.period <= 0) continue;
      const Duration interference = (w + j.jitter + j.period - 1) / j.period;
      next += interference * j.wcet;
    }
    if (next + task.jitter > horizon) return std::nullopt;
    if (next == w) return w + task.jitter;
    w = next;
  }
}

TasksetResult analyze(const std::vector<AnalysisTask>& taskset) {
  TasksetResult result;
  for (const auto& t : taskset) {
    if (t.period > 0) {
      result.utilization +=
          static_cast<double>(t.wcet) / static_cast<double>(t.period);
    }
    auto r = response_time(t, taskset);
    if (!r.has_value()) {
      result.schedulable = false;
      continue;
    }
    result.response[t.name] = *r;
  }
  return result;
}

void assign_deadline_monotonic(std::vector<AnalysisTask>& taskset) {
  std::vector<std::size_t> order(taskset.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Duration da =
        taskset[a].deadline > 0 ? taskset[a].deadline : taskset[a].period;
    const Duration db =
        taskset[b].deadline > 0 ? taskset[b].deadline : taskset[b].period;
    if (da != db) return da < db;
    return taskset[a].name < taskset[b].name;
  });
  int prio = static_cast<int>(taskset.size());
  for (std::size_t idx : order) {
    taskset[idx].priority = prio--;
  }
}

}  // namespace orte::analysis
