// FlexRay timing analysis: latency bounds for signals in the static (TDMA)
// segment and a sufficient schedulability test for the dynamic segment.
//
// Static segment: a signal in slot s is delivered at the end of slot s every
// cycle. A write that *just* misses the slot's transmission start waits one
// full cycle, so:
//   best  = time from slot start to slot end          = slot_len
//   worst = cycle_len + slot_len
//   jitter of the delivery *instants* = 0 (strictly periodic) — the
//   paper's timing-isolation claim in its purest form.
// Dynamic segment: frame m (priority = id order) is transmitted in the first
// cycle where every higher-priority pending frame plus m fits into the
// minislot budget; we provide the standard sufficient bound in cycles.
#pragma once

#include <optional>

#include "flexray/flexray_bus.hpp"
#include "sim/time.hpp"

namespace orte::analysis {

using sim::Duration;

struct FlexRayStaticLatency {
  Duration best = 0;
  Duration worst = 0;
  /// Sender-side waiting jitter (worst - best); delivery instants themselves
  /// are periodic with zero jitter.
  Duration write_to_delivery_jitter = 0;
};

/// Latency bounds from an application write to delivery for static slot
/// `slot` (1-based) under the given bus configuration.
FlexRayStaticLatency flexray_static_latency(const flexray::FlexRayConfig& cfg,
                                            std::uint32_t slot);

/// Worst-case number of communication cycles a dynamic frame with
/// `minislots_needed` waits, given the total higher-priority demand in
/// minislots per cycle. nullopt = may be deferred indefinitely (demand
/// exceeds the per-cycle budget).
std::optional<int> flexray_dynamic_cycles(std::size_t minislots_total,
                                          std::size_t hp_demand,
                                          std::size_t minislots_needed);

/// Communication cycle length implied by a configuration.
Duration flexray_cycle_length(const flexray::FlexRayConfig& cfg);
/// Static slot length implied by a configuration.
Duration flexray_slot_length(const flexray::FlexRayConfig& cfg);

}  // namespace orte::analysis
