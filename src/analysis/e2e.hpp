// End-to-end latency composition (§3: "assess realizability of end-to-end
// latencies at system level").
//
// A computation path is a chain of stages (tasks and messages). Two coupling
// semantics per stage boundary, following the automotive timing literature:
//  * direct/event-triggered: the downstream stage is activated by the
//    upstream completion — contributes only its response time,
//  * sampled/periodic: the downstream stage polls on its own period — adds a
//    worst-case sampling delay of one period (+ its response time).
#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"

namespace orte::analysis {

using sim::Duration;

struct Stage {
  std::string name;
  Duration response = 0;  ///< Worst-case response/transmission bound.
  Duration period = 0;    ///< Sampling period (used when sampled).
  bool sampled = false;   ///< True: asynchronous periodic pick-up.
};

struct E2eResult {
  Duration worst = 0;
  Duration best = 0;  ///< Sum of minimal stage times (no sampling waits).
  Duration jitter = 0;
};

/// Worst/best-case end-to-end latency over the chain.
E2eResult e2e_latency(const std::vector<Stage>& chain);

}  // namespace orte::analysis
