// Sensitivity & extensibility metrics over the response-time analysis.
//
// The paper frames "composability and extensibility vs efficiency" (§1) as a
// quantifiable trade: how much can execution demand grow before the system
// breaks? We use the standard WCET-scaling metric (binary search for the
// largest uniform scale factor preserving schedulability) — also known as
// the extensibility/elasticity metric of Zhu & Di Natale — plus per-task
// slack.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/rta.hpp"

namespace orte::analysis {

/// Largest alpha such that the task set with every WCET scaled by alpha is
/// schedulable; 0 when already unschedulable. Bisected to `tolerance`.
double wcet_scaling_limit(const std::vector<AnalysisTask>& taskset,
                          double tolerance = 1e-3, double upper = 16.0);

/// Per-task slack: deadline minus worst-case response (ns); negative =
/// unschedulable (reported as -1 when the recurrence diverges).
std::map<std::string, sim::Duration> task_slack(
    const std::vector<AnalysisTask>& taskset);

}  // namespace orte::analysis
