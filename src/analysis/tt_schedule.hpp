// Time-triggered schedule-table synthesis.
//
// "Time triggered architectures can provide timing isolation, but require
//  careful planning and tool support" (§1) — this is the tool support: given
// periodic jobs, build a non-overlapping dispatch table over the hyperperiod
// (EDF-ordered greedy placement, which is optimal for non-preemptive
// placement feasibility in the common harmonic-period automotive case).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "os/ecu.hpp"
#include "sim/time.hpp"

namespace orte::analysis {

using sim::Duration;

struct TtJobSpec {
  std::string task;
  Duration period = 0;
  Duration wcet = 0;
  Duration deadline = 0;  ///< 0 = implicit (== period).
};

struct TtSchedule {
  std::vector<os::TableEntry> entries;  ///< Activation offsets per job.
  Duration cycle = 0;                   ///< Hyperperiod.
  /// Start/finish window reserved per entry (diagnostics / utilization).
  std::vector<std::pair<Duration, Duration>> windows;
};

/// Build a dispatch table over the hyperperiod; nullopt when some job cannot
/// meet its deadline non-preemptively.
std::optional<TtSchedule> synthesize_schedule(
    const std::vector<TtJobSpec>& specs);

/// lcm of all periods (the table cycle).
Duration hyperperiod(const std::vector<TtJobSpec>& specs);

}  // namespace orte::analysis
