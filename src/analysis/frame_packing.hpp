// Signal-to-frame packing optimization.
//
// §2 lists "the relevant functional and system data for the configuration
// process" as an AUTOSAR target; deriving the communication matrix — which
// signals share a frame — is the classic instance. Packing fewer frames
// saves bus utilization (every frame pays header + stuffing overhead) but
// couples signal timings: a frame inherits the smallest period of its
// signals, so slow signals packed with fast ones are transmitted too often.
// The greedy first-fit-decreasing heuristic here groups signals by period
// (only identical periods share a frame — no oversampling waste) and packs
// each group FFD by size.
#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"

namespace orte::analysis {

struct PackSignal {
  std::string name;
  std::size_t bits = 8;
  sim::Duration period = 0;
};

struct PackedFrame {
  std::vector<std::string> signals;
  std::vector<std::size_t> offsets;  ///< Bit offset per signal.
  std::size_t used_bits = 0;
  sim::Duration period = 0;
};

struct PackingResult {
  std::vector<PackedFrame> frames;
  /// Bus utilization of the packed set on CAN at `bitrate` (uses the
  /// worst-case frame-time model).
  double can_utilization = 0.0;
};

/// Pack signals into frames of at most `frame_bits` payload (64 for CAN).
/// Signals with different periods never share a frame.
PackingResult pack_signals(std::vector<PackSignal> signals,
                           std::size_t frame_bits, std::int64_t bitrate_bps);

/// Baseline for comparison: one frame per signal.
PackingResult pack_naive(const std::vector<PackSignal>& signals,
                         std::int64_t bitrate_bps);

}  // namespace orte::analysis
