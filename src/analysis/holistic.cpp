#include "analysis/holistic.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace orte::analysis {

void HolisticModel::add_task(DistTask task) {
  for (const auto& t : tasks_) {
    if (t.name == task.name) {
      throw std::invalid_argument("duplicate task " + task.name);
    }
  }
  tasks_.push_back(std::move(task));
}

void HolisticModel::add_message(DistMessage message) {
  (void)task(message.from_task);  // validation: throws on unknown
  (void)task(message.to_task);
  messages_.push_back(std::move(message));
}

const DistTask& HolisticModel::task(const std::string& name) const {
  for (const auto& t : tasks_) {
    if (t.name == name) return t;
  }
  throw std::invalid_argument("unknown task " + name);
}

HolisticResult HolisticModel::analyze(std::int64_t can_bitrate_bps,
                                      int max_iterations) const {
  HolisticResult result;

  // Derive each task's effective period: chain heads carry their own; a
  // triggered task inherits the period of the chain head feeding it.
  std::map<std::string, Duration> period;
  std::map<std::string, std::string> triggered_by;  // task -> message
  std::map<std::string, std::string> msg_source;    // message -> task
  for (const auto& t : tasks_) period[t.name] = t.period;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& m : messages_) {
      msg_source[m.name] = m.from_task;
      triggered_by[m.to_task] = m.name;
      const Duration src = period.at(m.from_task);
      if (src > 0 && period.at(m.to_task) != src) {
        period[m.to_task] = src;
        changed = true;
      }
    }
  }
  for (const auto& t : tasks_) {
    if (period.at(t.name) <= 0) {
      throw std::invalid_argument("task without derivable period: " + t.name);
    }
  }

  // Fixpoint: jitters start at 0 and grow monotonically.
  std::map<std::string, Duration> task_jitter;
  std::map<std::string, Duration> msg_jitter;
  for (const auto& t : tasks_) task_jitter[t.name] = 0;
  for (const auto& m : messages_) msg_jitter[m.name] = 0;

  for (int iter = 1; iter <= max_iterations; ++iter) {
    result.iterations = iter;
    // 1. Per-ECU task analysis with current jitters.
    std::map<std::string, Duration> task_resp;
    std::set<std::string> ecus;
    for (const auto& t : tasks_) ecus.insert(t.ecu);
    bool all_ok = true;
    for (const auto& ecu : ecus) {
      std::vector<AnalysisTask> local;
      for (const auto& t : tasks_) {
        if (t.ecu != ecu) continue;
        AnalysisTask a;
        a.name = t.name;
        a.wcet = t.wcet;
        a.period = period.at(t.name);
        // Allow responses beyond the period during iteration; divergence is
        // detected against the 4x-period cap below.
        a.deadline = 4 * a.period;
        a.jitter = task_jitter.at(t.name);
        a.priority = t.priority;
        local.push_back(a);
      }
      for (const auto& a : local) {
        const auto r = response_time(a, local);
        if (!r.has_value()) {
          all_ok = false;
          continue;
        }
        task_resp[a.name] = *r;
      }
    }
    if (!all_ok) return result;  // schedulable stays false

    // 2. Bus analysis with message jitter = sender response.
    std::vector<CanMessage> bus;
    for (const auto& m : messages_) {
      CanMessage c;
      c.name = m.name;
      c.id = m.id;
      c.bytes = m.bytes;
      c.period = period.at(m.from_task);
      c.jitter = task_resp.at(m.from_task);
      bus.push_back(c);
    }
    std::map<std::string, Duration> msg_resp;
    for (const auto& c : bus) {
      const auto r = can_response_time(c, bus, can_bitrate_bps);
      if (!r.has_value()) return result;
      msg_resp[c.name] = *r;
    }

    // 3. Propagate: receiving tasks inherit message response as jitter.
    bool stable = true;
    for (const auto& m : messages_) {
      const Duration j = msg_resp.at(m.name);
      if (task_jitter.at(m.to_task) != j) {
        task_jitter[m.to_task] = j;
        stable = false;
      }
    }
    // Divergence guard: any response beyond 4 periods = hopeless.
    for (const auto& [name, r] : task_resp) {
      if (r > 4 * period.at(name)) return result;
    }

    if (stable) {
      // Converged. Final verdict: every response within its (implicit)
      // period — the iteration deliberately tolerated larger intermediate
      // values, but R > T is unschedulable under this single-busy-period
      // analysis.
      for (const auto& [name, r] : task_resp) {
        if (r > period.at(name)) return result;
      }
      for (const auto& m : messages_) {
        if (msg_resp.at(m.name) > period.at(m.from_task)) return result;
      }
      result.schedulable = true;
      result.task_response = task_resp;
      result.message_response = msg_resp;
      // Chain latency from the head's release: a stage's response time
      // already includes its inherited jitter (R = J + w), and the jitter
      // carries the whole upstream chain — so end-to-end is simply the last
      // stage's response.
      for (const auto& t : tasks_) {
        if (triggered_by.count(t.name)) continue;  // not a head
        std::string cursor = t.name;
        while (true) {
          const DistMessage* next = nullptr;
          for (const auto& m : messages_) {
            if (m.from_task == cursor) {
              next = &m;
              break;
            }
          }
          if (next == nullptr) break;
          cursor = next->to_task;
        }
        result.chain_latency[t.name] = task_resp.at(cursor);
      }
      return result;
    }
  }
  return result;  // did not converge within max_iterations
}

}  // namespace orte::analysis
