#include "analysis/holistic.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "analysis/flexray_analysis.hpp"

namespace orte::analysis {

void HolisticModel::add_task(DistTask task) {
  for (const auto& t : tasks_) {
    if (t.name == task.name) {
      throw std::invalid_argument("duplicate task " + task.name);
    }
  }
  tasks_.push_back(std::move(task));
}

void HolisticModel::add_message(DistMessage message) {
  (void)task(message.from_task);  // validation: throws on unknown
  // Empty to_task = pure bus load (a frame whose receiver is not a modelled
  // task — e.g. a polled signal); it contends for the medium but triggers
  // nothing.
  if (!message.to_task.empty()) (void)task(message.to_task);
  messages_.push_back(std::move(message));
}

void HolisticModel::add_dependency(std::string from_task, std::string to_task) {
  (void)task(from_task);
  (void)task(to_task);
  if (from_task == to_task) {
    throw std::invalid_argument("dependency self-loop on " + from_task);
  }
  dependencies_.push_back({std::move(from_task), std::move(to_task)});
}

const DistTask& HolisticModel::task(const std::string& name) const {
  for (const auto& t : tasks_) {
    if (t.name == name) return t;
  }
  throw std::invalid_argument("unknown task " + name);
}

HolisticResult HolisticModel::analyze(std::int64_t can_bitrate_bps,
                                      int max_iterations) const {
  BusSpec bus;
  bus.can_bitrate_bps = can_bitrate_bps;
  return analyze(bus, max_iterations);
}

HolisticResult HolisticModel::analyze(const BusSpec& bus,
                                      int max_iterations) const {
  HolisticResult result;

  // Derive each task's effective period: chain heads carry their own; a
  // triggered task inherits the period of the chain head feeding it
  // (through messages and local dependency edges alike).
  std::map<std::string, Duration> period;
  std::set<std::string> triggered;  // has an incoming message or dependency
  for (const auto& t : tasks_) period[t.name] = t.period;
  bool changed = true;
  while (changed) {
    changed = false;
    const auto inherit = [&](const std::string& from, const std::string& to) {
      triggered.insert(to);
      const Duration src = period.at(from);
      // Min over all sources: with several triggering edges the smallest
      // inter-arrival dominates, and the monotone-decreasing update
      // terminates where a last-writer-wins rule could oscillate.
      if (src > 0 && (period.at(to) <= 0 || src < period.at(to))) {
        period[to] = src;
        changed = true;
      }
    };
    for (const auto& m : messages_) {
      if (!m.to_task.empty()) inherit(m.from_task, m.to_task);
    }
    for (const auto& d : dependencies_) inherit(d.from_task, d.to_task);
  }
  for (const auto& t : tasks_) {
    if (period.at(t.name) <= 0) {
      throw std::invalid_argument("task without derivable period: " + t.name);
    }
  }

  // FlexRay static-segment delay per message: slot assignment by insertion
  // order unless pinned; a write that just misses its slot waits one full
  // communication cycle, so the bound is cycle + slot (delivery instants
  // themselves are strictly periodic — zero jitter on the bus side).
  std::map<std::string, Duration> flexray_delay;
  if (bus.use_flexray) {
    flexray::FlexRayConfig cfg = bus.flexray;
    cfg.static_slots = std::max<std::uint32_t>(
        cfg.static_slots, static_cast<std::uint32_t>(messages_.size()));
    std::uint32_t next_slot = 1;
    for (const auto& m : messages_) {
      const std::uint32_t slot = m.slot != 0 ? m.slot : next_slot++;
      flexray_delay[m.name] = flexray_static_latency(cfg, slot).worst;
    }
  }

  // Fixpoint: jitters start at 0 and grow monotonically.
  std::map<std::string, Duration> task_jitter;
  for (const auto& t : tasks_) task_jitter[t.name] = 0;

  for (int iter = 1; iter <= max_iterations; ++iter) {
    result.iterations = iter;
    // 1. Per-ECU task analysis with current jitters.
    std::map<std::string, Duration> task_resp;
    std::set<std::string> ecus;
    for (const auto& t : tasks_) ecus.insert(t.ecu);
    bool all_ok = true;
    for (const auto& ecu : ecus) {
      std::vector<AnalysisTask> local;
      for (const auto& t : tasks_) {
        if (t.ecu != ecu) continue;
        AnalysisTask a;
        a.name = t.name;
        a.wcet = t.wcet;
        a.period = period.at(t.name);
        // Allow responses beyond the period during iteration; divergence is
        // detected against the 4x-period cap below.
        a.deadline = 4 * a.period;
        a.jitter = task_jitter.at(t.name);
        a.priority = t.priority;
        local.push_back(a);
      }
      for (const auto& a : local) {
        const auto r = response_time(a, local);
        if (!r.has_value()) {
          all_ok = false;
          continue;
        }
        task_resp[a.name] = *r;
      }
    }
    if (!all_ok) return result;  // schedulable stays false

    // 2. Bus analysis with message jitter = sender response, so the message
    // response R = J + w + C carries the whole upstream chain.
    std::map<std::string, Duration> msg_resp;
    if (bus.use_flexray) {
      for (const auto& m : messages_) {
        msg_resp[m.name] = task_resp.at(m.from_task) + flexray_delay.at(m.name);
      }
    } else {
      std::vector<CanMessage> canbus;
      for (const auto& m : messages_) {
        CanMessage c;
        c.name = m.name;
        c.id = m.id;
        c.bytes = m.bytes;
        c.period = period.at(m.from_task);
        c.jitter = task_resp.at(m.from_task);
        canbus.push_back(c);
      }
      for (const auto& c : canbus) {
        const auto r = can_response_time(c, canbus, bus.can_bitrate_bps);
        if (!r.has_value()) return result;
        msg_resp[c.name] = *r;
      }
    }

    // 3. Propagate: a triggered task inherits the worst incoming response
    // (message delivery or local producer completion) as release jitter.
    std::map<std::string, Duration> next_jitter;
    for (const auto& t : tasks_) next_jitter[t.name] = 0;
    for (const auto& m : messages_) {
      if (m.to_task.empty()) continue;
      next_jitter[m.to_task] =
          std::max(next_jitter.at(m.to_task), msg_resp.at(m.name));
    }
    for (const auto& d : dependencies_) {
      next_jitter[d.to_task] =
          std::max(next_jitter.at(d.to_task), task_resp.at(d.from_task));
    }
    const bool stable = next_jitter == task_jitter;
    task_jitter = next_jitter;

    // Divergence guard: any response beyond 4 periods = hopeless.
    for (const auto& [name, r] : task_resp) {
      if (r > 4 * period.at(name)) return result;
    }

    if (stable) {
      // Converged. Final verdict: every response within its (implicit)
      // period — the iteration deliberately tolerated larger intermediate
      // values, but R > T is unschedulable under this single-busy-period
      // analysis.
      for (const auto& [name, r] : task_resp) {
        if (r > period.at(name)) return result;
      }
      for (const auto& m : messages_) {
        if (msg_resp.at(m.name) > period.at(m.from_task)) return result;
      }
      result.schedulable = true;
      result.task_response = task_resp;
      result.message_response = msg_resp;
      // Chain latency from the head's release: a stage's response time
      // already includes its inherited jitter (R = J + w), and the jitter
      // carries the whole upstream chain — so end-to-end is simply the last
      // stage's response. The walk follows the first outgoing edge at each
      // stage; fan-out consumers are bounded individually by task_response.
      for (const auto& t : tasks_) {
        if (triggered.count(t.name)) continue;  // not a head
        std::string cursor = t.name;
        while (true) {
          const std::string* next = nullptr;
          for (const auto& m : messages_) {
            if (m.from_task == cursor && !m.to_task.empty()) {
              next = &m.to_task;
              break;
            }
          }
          if (next == nullptr) {
            for (const auto& d : dependencies_) {
              if (d.from_task == cursor) {
                next = &d.to_task;
                break;
              }
            }
          }
          if (next == nullptr) break;
          cursor = *next;
        }
        result.chain_latency[t.name] = task_resp.at(cursor);
      }
      return result;
    }
  }
  return result;  // did not converge within max_iterations
}

}  // namespace orte::analysis
