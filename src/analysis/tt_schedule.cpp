#include "analysis/tt_schedule.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace orte::analysis {

Duration hyperperiod(const std::vector<TtJobSpec>& specs) {
  Duration h = 1;
  for (const auto& s : specs) {
    if (s.period <= 0) {
      throw std::invalid_argument("TT job needs a positive period: " + s.task);
    }
    h = std::lcm(h, s.period);
  }
  return h;
}

std::optional<TtSchedule> synthesize_schedule(
    const std::vector<TtJobSpec>& specs) {
  if (specs.empty()) return TtSchedule{{}, 1, {}};
  const Duration cycle = hyperperiod(specs);

  struct Job {
    const TtJobSpec* spec = nullptr;
    Duration release = 0;
    Duration deadline = 0;
  };
  std::vector<Job> jobs;
  for (const auto& s : specs) {
    const Duration rel_deadline = s.deadline > 0 ? s.deadline : s.period;
    for (Duration r = 0; r < cycle; r += s.period) {
      jobs.push_back(Job{&s, r, r + rel_deadline});
    }
  }
  // EDF order; ties by release then name for determinism.
  std::sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    if (a.release != b.release) return a.release < b.release;
    return a.spec->task < b.spec->task;
  });

  // Greedy placement on a single timeline of busy windows.
  std::vector<std::pair<Duration, Duration>> busy;  // sorted [start, end)
  TtSchedule schedule;
  schedule.cycle = cycle;
  for (const auto& job : jobs) {
    Duration start = job.release;
    bool placed = false;
    while (!placed) {
      placed = true;
      for (const auto& [b0, b1] : busy) {
        if (start < b1 && start + job.spec->wcet > b0) {
          start = b1;  // shift past the collision
          placed = false;
        }
      }
      if (start + job.spec->wcet > job.deadline) return std::nullopt;
    }
    busy.emplace_back(start, start + job.spec->wcet);
    std::sort(busy.begin(), busy.end());
    schedule.entries.push_back(os::TableEntry{start, job.spec->task});
    schedule.windows.emplace_back(start, start + job.spec->wcet);
  }
  std::sort(schedule.entries.begin(), schedule.entries.end(),
            [](const os::TableEntry& a, const os::TableEntry& b) {
              return a.offset < b.offset;
            });
  std::sort(schedule.windows.begin(), schedule.windows.end());
  return schedule;
}

}  // namespace orte::analysis
