// Holistic schedulability analysis for distributed transactions
// (Tindell & Clark): the complete §3 "distributed real-time schedulability
// analysis for ... CAN bus-based target architectures", extended to FlexRay
// static-segment paths and local (same-ECU) activation edges so the analyzer
// bounds exactly the chains the runtime LatencyMonitors watch.
//
// Transactions are chains  task -> message -> task -> ...  spanning ECUs,
// plus  task -> task  dependency edges for data-received activations that
// stay on one ECU (no bus hop, the consumer is released by the producer's
// write). Release jitter is inherited along the chain (a message inherits
// the sending task's response time as jitter; the receiving task inherits
// the message's response time; a dependent task inherits the producer's
// response time directly), which couples all node-local analyses; the
// coupled system is solved by fixpoint iteration. Responses are monotone in
// jitter, so the iteration converges or provably diverges past a deadline.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/can_analysis.hpp"
#include "analysis/rta.hpp"
#include "flexray/flexray_bus.hpp"
#include "sim/time.hpp"

namespace orte::analysis {

struct DistTask {
  std::string name;
  std::string ecu;
  Duration wcet = 0;
  Duration period = 0;  ///< For chain heads; inherited for triggered tasks.
  int priority = 0;     ///< Per-ECU priority (higher = more urgent).
};

struct DistMessage {
  std::string name;
  std::uint32_t id = 0;  ///< CAN identifier (lower = higher priority).
  std::size_t bytes = 8;
  std::string from_task;
  std::string to_task;
  /// FlexRay static slot (1-based). 0 = assigned by insertion order when the
  /// model is analyzed in FlexRay mode; ignored in CAN mode.
  std::uint32_t slot = 0;
};

/// Bus model used by the fixpoint. The default is CAN (the paper's primary
/// target); FlexRay mode bounds every message by its static-slot TDMA
/// latency (cycle + slot — a write that just misses its slot waits one full
/// communication cycle).
struct BusSpec {
  std::int64_t can_bitrate_bps = 500'000;
  bool use_flexray = false;
  flexray::FlexRayConfig flexray;
};

struct HolisticResult {
  bool schedulable = false;
  int iterations = 0;
  std::map<std::string, Duration> task_response;
  std::map<std::string, Duration> message_response;
  /// Worst end-to-end latency per chain head task (sum along the chain).
  std::map<std::string, Duration> chain_latency;
};

class HolisticModel {
 public:
  void add_task(DistTask task);
  /// Adds a message and marks `to_task` as triggered by it (the receiver
  /// inherits period and jitter through the chain). An empty `to_task`
  /// models pure bus load: the frame contends for the medium but triggers
  /// no task.
  void add_message(DistMessage message);
  /// Adds a local activation edge: `to_task` is released directly by
  /// `from_task` (same-ECU data-received pipeline, no bus hop). The
  /// dependent task inherits the producer's period and its response time as
  /// release jitter.
  void add_dependency(std::string from_task, std::string to_task);

  /// Run the fixpoint iteration on a CAN bus. `max_iterations` bounds the
  /// fixpoint; responses beyond 4x period are declared divergent.
  [[nodiscard]] HolisticResult analyze(std::int64_t can_bitrate_bps,
                                       int max_iterations = 100) const;
  /// Run the fixpoint iteration with an explicit bus model (CAN or FlexRay
  /// static segment).
  [[nodiscard]] HolisticResult analyze(const BusSpec& bus,
                                       int max_iterations = 100) const;

 private:
  struct Dependency {
    std::string from_task;
    std::string to_task;
  };

  std::vector<DistTask> tasks_;
  std::vector<DistMessage> messages_;
  std::vector<Dependency> dependencies_;

  [[nodiscard]] const DistTask& task(const std::string& name) const;
};

}  // namespace orte::analysis
