// Holistic schedulability analysis for distributed transactions
// (Tindell & Clark): the complete §3 "distributed real-time schedulability
// analysis for ... CAN bus-based target architectures".
//
// Transactions are chains  task -> message -> task -> ...  spanning ECUs.
// Release jitter is inherited along the chain (a message inherits the
// sending task's response time as jitter; the receiving task inherits the
// message's response time), which couples all node-local analyses; the
// coupled system is solved by fixpoint iteration. Responses are monotone in
// jitter, so the iteration converges or provably diverges past a deadline.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/can_analysis.hpp"
#include "analysis/rta.hpp"
#include "sim/time.hpp"

namespace orte::analysis {

struct DistTask {
  std::string name;
  std::string ecu;
  Duration wcet = 0;
  Duration period = 0;  ///< For chain heads; inherited for triggered tasks.
  int priority = 0;     ///< Per-ECU priority (higher = more urgent).
};

struct DistMessage {
  std::string name;
  std::uint32_t id = 0;  ///< CAN identifier.
  std::size_t bytes = 8;
  std::string from_task;
  std::string to_task;
};

struct HolisticResult {
  bool schedulable = false;
  int iterations = 0;
  std::map<std::string, Duration> task_response;
  std::map<std::string, Duration> message_response;
  /// Worst end-to-end latency per chain head task (sum along the chain).
  std::map<std::string, Duration> chain_latency;
};

class HolisticModel {
 public:
  void add_task(DistTask task);
  /// Adds a message and marks `to_task` as triggered by it (the receiver
  /// inherits period and jitter through the chain).
  void add_message(DistMessage message);

  /// Run the fixpoint iteration. `horizon_factor` bounds responses at
  /// horizon_factor * period before declaring divergence.
  [[nodiscard]] HolisticResult analyze(std::int64_t can_bitrate_bps,
                                       int max_iterations = 100) const;

 private:
  std::vector<DistTask> tasks_;
  std::vector<DistMessage> messages_;

  [[nodiscard]] const DistTask& task(const std::string& name) const;
};

}  // namespace orte::analysis
