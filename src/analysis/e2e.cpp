#include "analysis/e2e.hpp"

namespace orte::analysis {

E2eResult e2e_latency(const std::vector<Stage>& chain) {
  E2eResult r;
  for (const auto& s : chain) {
    r.worst += s.response;
    r.best += 0;  // a stage can complete arbitrarily fast in the best case
    if (s.sampled) {
      r.worst += s.period;  // just missed the sampling instant
      // Best case: sampled immediately — adds nothing.
    }
  }
  r.jitter = r.worst - r.best;
  return r;
}

}  // namespace orte::analysis
