#include "analysis/frame_packing.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "can/can_bus.hpp"

namespace orte::analysis {

namespace {
double utilization_of(const std::vector<PackedFrame>& frames,
                      std::int64_t bitrate_bps) {
  double u = 0.0;
  for (const auto& f : frames) {
    const std::size_t bytes = (f.used_bits + 7) / 8;
    u += static_cast<double>(
             can::frame_transmission_time(std::max<std::size_t>(bytes, 1),
                                          bitrate_bps)) /
         static_cast<double>(f.period);
  }
  return u;
}
}  // namespace

PackingResult pack_signals(std::vector<PackSignal> signals,
                           std::size_t frame_bits, std::int64_t bitrate_bps) {
  for (const auto& s : signals) {
    if (s.bits == 0 || s.bits > frame_bits) {
      throw std::invalid_argument("signal does not fit a frame: " + s.name);
    }
    if (s.period <= 0) {
      throw std::invalid_argument("signal needs a period: " + s.name);
    }
  }
  // Group by period; FFD within each group.
  std::map<sim::Duration, std::vector<PackSignal>> by_period;
  for (auto& s : signals) by_period[s.period].push_back(std::move(s));

  PackingResult result;
  for (auto& [period, group] : by_period) {
    std::sort(group.begin(), group.end(),
              [](const PackSignal& a, const PackSignal& b) {
                if (a.bits != b.bits) return a.bits > b.bits;
                return a.name < b.name;
              });
    std::vector<PackedFrame> frames;
    for (const auto& s : group) {
      PackedFrame* slot = nullptr;
      for (auto& f : frames) {
        if (f.used_bits + s.bits <= frame_bits) {
          slot = &f;
          break;
        }
      }
      if (slot == nullptr) {
        frames.push_back(PackedFrame{{}, {}, 0, period});
        slot = &frames.back();
      }
      slot->signals.push_back(s.name);
      slot->offsets.push_back(slot->used_bits);
      slot->used_bits += s.bits;
    }
    for (auto& f : frames) result.frames.push_back(std::move(f));
  }
  result.can_utilization = utilization_of(result.frames, bitrate_bps);
  return result;
}

PackingResult pack_naive(const std::vector<PackSignal>& signals,
                         std::int64_t bitrate_bps) {
  PackingResult result;
  for (const auto& s : signals) {
    result.frames.push_back(PackedFrame{{s.name}, {0}, s.bits, s.period});
  }
  result.can_utilization = utilization_of(result.frames, bitrate_bps);
  return result;
}

}  // namespace orte::analysis
