#include "analysis/flexray_analysis.hpp"

namespace orte::analysis {

Duration flexray_slot_length(const flexray::FlexRayConfig& cfg) {
  return flexray::FlexRayBus::slot_length(cfg);
}

Duration flexray_cycle_length(const flexray::FlexRayConfig& cfg) {
  return flexray::FlexRayBus::cycle_length(cfg);
}

FlexRayStaticLatency flexray_static_latency(const flexray::FlexRayConfig& cfg,
                                            std::uint32_t slot) {
  (void)slot;  // every static slot has the same width; position only shifts
               // the phase, not the bounds.
  FlexRayStaticLatency lat;
  const Duration slot_len = flexray_slot_length(cfg);
  const Duration cycle = flexray_cycle_length(cfg);
  lat.best = slot_len;                 // written right at slot start
  lat.worst = cycle + slot_len;        // just missed this cycle's slot
  lat.write_to_delivery_jitter = lat.worst - lat.best;
  return lat;
}

std::optional<int> flexray_dynamic_cycles(std::size_t minislots_total,
                                          std::size_t hp_demand,
                                          std::size_t minislots_needed) {
  if (minislots_needed > minislots_total) return std::nullopt;
  if (hp_demand + minislots_needed <= minislots_total) return 1;
  // Higher-priority demand alone saturates every cycle: no bound.
  if (hp_demand >= minislots_total) return std::nullopt;
  // Each cycle serves (total - hp) minislots of backlog in priority order; a
  // frame needing `minislots_needed` waits until the residual fits.
  const std::size_t per_cycle = minislots_total - hp_demand;
  std::size_t backlog = hp_demand + minislots_needed;
  int cycles = 0;
  while (backlog > minislots_total) {
    backlog -= per_cycle;
    ++cycles;
    if (cycles > 1000) return std::nullopt;  // defensive
  }
  return cycles + 1;
}

}  // namespace orte::analysis
