#include "analysis/can_analysis.hpp"

#include <algorithm>

#include "can/can_bus.hpp"

namespace orte::analysis {

std::optional<Duration> can_response_time(const CanMessage& msg,
                                          const std::vector<CanMessage>& all,
                                          std::int64_t bitrate_bps) {
  const Duration tau_bit = 1'000'000'000 / bitrate_bps;
  const Duration c_m = can::frame_transmission_time(msg.bytes, bitrate_bps);
  // Blocking: longest lower-priority (higher id) frame already on the wire.
  Duration blocking = 0;
  for (const auto& k : all) {
    if (k.id > msg.id) {
      blocking = std::max(
          blocking, can::frame_transmission_time(k.bytes, bitrate_bps));
    }
  }
  const Duration horizon = msg.period > 0 ? msg.period : sim::milliseconds(1000);
  Duration w = blocking;
  while (true) {
    Duration next = blocking;
    for (const auto& k : all) {
      if (k.id >= msg.id || k.period <= 0) continue;  // only higher priority
      const Duration c_k = can::frame_transmission_time(k.bytes, bitrate_bps);
      next += ((w + k.jitter + tau_bit + k.period - 1) / k.period) * c_k;
    }
    if (next + c_m + msg.jitter > horizon) return std::nullopt;
    if (next == w) return msg.jitter + w + c_m;
    w = next;
  }
}

CanAnalysisResult analyze_can(const std::vector<CanMessage>& messages,
                              std::int64_t bitrate_bps) {
  CanAnalysisResult result;
  for (const auto& m : messages) {
    if (m.period > 0) {
      result.utilization +=
          static_cast<double>(
              can::frame_transmission_time(m.bytes, bitrate_bps)) /
          static_cast<double>(m.period);
    }
    auto r = can_response_time(m, messages, bitrate_bps);
    if (!r.has_value()) {
      result.schedulable = false;
      continue;
    }
    result.response[m.name] = *r;
  }
  return result;
}

}  // namespace orte::analysis
