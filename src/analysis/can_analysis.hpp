// CAN message response-time analysis (Davis, Burns, Bril, Lukkien: RTSJ 2007
// revised analysis) — the bus-level half of §3's distributed schedulability
// analysis for CAN-based target architectures.
//
//   w^{n+1} = B_m + sum_{k in hp(m)} ceil((w^n + J_k + tau_bit) / T_k) * C_k
//   R_m     = J_m + w + C_m
// with B_m the longest lower-priority frame (non-preemptive transmission).
// Valid for queueing jitter J and R_m <= T_m (single-instance busy period),
// which holds for all workloads generated in this repository (utilization is
// checked first).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace orte::analysis {

using sim::Duration;

struct CanMessage {
  std::string name;
  std::uint32_t id = 0;  ///< Identifier: lower = higher priority.
  std::size_t bytes = 8;
  Duration period = 0;
  Duration jitter = 0;  ///< Queueing jitter at the sender.
};

/// Worst-case queuing-to-delivery time of `msg`; nullopt if unschedulable
/// (busy period exceeds the period, or bus over-utilized).
std::optional<Duration> can_response_time(const CanMessage& msg,
                                          const std::vector<CanMessage>& all,
                                          std::int64_t bitrate_bps);

struct CanAnalysisResult {
  bool schedulable = true;
  double utilization = 0.0;
  std::map<std::string, Duration> response;
};

CanAnalysisResult analyze_can(const std::vector<CanMessage>& messages,
                              std::int64_t bitrate_bps);

}  // namespace orte::analysis
