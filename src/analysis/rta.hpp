// Fixed-priority response-time analysis (the task-level half of §3's
// "distributed real-time schedulability analysis").
//
// Classic exact analysis for constrained-deadline, preemptive fixed-priority
// scheduling with release jitter and blocking:
//   w^{n+1} = C_i + B_i + sum_{j in hp(i)} ceil((w^n + J_j) / T_j) * C_j
//   R_i     = w + J_i
// The recurrence either converges (R_i is the exact worst case under the
// model) or exceeds the deadline, in which case the task is unschedulable.
// hp(i) here includes *equal*-priority peers: the dispatcher breaks priority
// ties by arrival order, so a peer released first delays us — counting its
// full interference keeps the bound sound (if pessimistic) for groups that
// share one priority level, such as generated data-received event tasks.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace orte::analysis {

using sim::Duration;

struct AnalysisTask {
  std::string name;
  Duration wcet = 0;
  Duration period = 0;
  Duration deadline = 0;  ///< 0 = implicit (== period).
  Duration jitter = 0;    ///< Release jitter.
  Duration blocking = 0;  ///< Max blocking from lower-priority critical sections.
  int priority = 0;       ///< Higher value = higher priority.
};

/// Worst-case response time of `task` among `taskset` (which may or may not
/// include it); nullopt when the recurrence exceeds the deadline (or, for
/// zero-deadline tasks, a 1000*period safety horizon).
std::optional<Duration> response_time(const AnalysisTask& task,
                                      const std::vector<AnalysisTask>& taskset);

struct TasksetResult {
  bool schedulable = true;
  double utilization = 0.0;
  std::map<std::string, Duration> response;  ///< Only for schedulable tasks.
};

TasksetResult analyze(const std::vector<AnalysisTask>& taskset);

/// Deadline-monotonic priority assignment (optimal for constrained
/// deadlines): mutates priorities in place, highest number = highest
/// priority.
void assign_deadline_monotonic(std::vector<AnalysisTask>& taskset);

}  // namespace orte::analysis
