// Distributed clock synchronization for the time-triggered architecture.
//
// TTP's TDMA schedule only works because every node shares a global time
// base of bounded precision. Each node owns a crystal with an individual
// drift rate; at every resynchronization interval the cluster runs the
// fault-tolerant average (FTA) algorithm on the clock differences observed
// from frame arrival instants: discard the k largest and k smallest
// readings, correct by the mean of the rest. With at most k arbitrarily
// faulty clocks, the achieved precision stays bounded by
//   Pi ~= 2 * rho * R + epsilon   (drift regain + reading error)
// whereas free-running clocks diverge without bound.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace orte::ttp {

struct ClockSyncConfig {
  std::size_t nodes = 4;
  double max_drift_ppm = 100.0;  ///< Crystal tolerance (+-).
  sim::Duration resync_interval = sim::milliseconds(10);
  /// Jitter of a clock-difference measurement (latch granularity etc).
  sim::Duration reading_error = sim::microseconds(1);
  std::size_t fault_tolerance = 1;  ///< k: faulty clocks tolerated by FTA.
  bool enable_sync = true;          ///< false = free-running baseline.
  std::uint64_t seed = 1;
};

class ClockSyncCluster {
 public:
  ClockSyncCluster(sim::Kernel& kernel, sim::Trace& trace,
                   ClockSyncConfig cfg);

  /// Arm the resynchronization rounds. Call once.
  void start();

  /// Node i's local clock reading at the current simulated instant.
  [[nodiscard]] sim::Time local_time(std::size_t node) const;

  /// Current precision: max pairwise difference of local clocks (ns).
  [[nodiscard]] sim::Duration precision() const;

  /// Worst precision observed at any resync boundary so far (ns).
  [[nodiscard]] sim::Duration worst_precision() const {
    return worst_precision_;
  }
  [[nodiscard]] const sim::Stats& precision_history_us() const {
    return precision_us_;
  }

  /// Inject a byzantine clock: node reports (and runs) an offset error of
  /// +delta from time `from` on. FTA must exclude it.
  void inject_byzantine(std::size_t node, sim::Duration delta, sim::Time from);

  [[nodiscard]] std::size_t rounds() const { return rounds_; }

 private:
  struct NodeClock {
    std::int64_t drift_ppm = 0;  ///< Rate deviation in parts-per-million.
    sim::Duration offset = 0;    ///< Accumulated correction state.
    sim::Duration byz_delta = 0;
    sim::Time byz_from = sim::kForever;
  };

  void resync();
  [[nodiscard]] sim::Time raw_clock(const NodeClock& c) const;

  sim::Kernel& kernel_;
  sim::Trace& trace_;
  ClockSyncConfig cfg_;
  sim::Rng rng_;
  std::vector<NodeClock> clocks_;
  sim::Duration worst_precision_ = 0;
  sim::Stats precision_us_;
  std::size_t rounds_ = 0;
  bool started_ = false;
};

}  // namespace orte::ttp
