#include "ttp/clock_sync.hpp"

#include <algorithm>
#include <stdexcept>

namespace orte::ttp {

ClockSyncCluster::ClockSyncCluster(sim::Kernel& kernel, sim::Trace& trace,
                                   ClockSyncConfig cfg)
    : kernel_(kernel), trace_(trace), cfg_(std::move(cfg)), rng_(cfg_.seed) {
  if (cfg_.nodes < 2) {
    throw std::invalid_argument("clock sync needs at least 2 nodes");
  }
  if (cfg_.nodes <= 2 * cfg_.fault_tolerance) {
    throw std::invalid_argument(
        "FTA needs more than 2k nodes to tolerate k faults");
  }
  clocks_.resize(cfg_.nodes);
  const auto ppm = static_cast<std::int64_t>(cfg_.max_drift_ppm);
  for (auto& c : clocks_) {
    c.drift_ppm = rng_.uniform(-ppm, ppm);
  }
}

sim::Time ClockSyncCluster::raw_clock(const NodeClock& c) const {
  const sim::Time t = kernel_.now();
  // Integer ppm arithmetic, split to avoid overflow: exact and
  // platform-independent over any horizon, unlike the previous
  // double multiply-and-cast which loses precision on long runs.
  const sim::Time drift = (t / 1'000'000) * c.drift_ppm +
                          (t % 1'000'000) * c.drift_ppm / 1'000'000;
  sim::Time local = t + drift + c.offset;
  if (t >= c.byz_from) local += c.byz_delta;
  return local;
}

sim::Time ClockSyncCluster::local_time(std::size_t node) const {
  return raw_clock(clocks_.at(node));
}

sim::Duration ClockSyncCluster::precision() const {
  sim::Time lo = raw_clock(clocks_[0]);
  sim::Time hi = lo;
  for (const auto& c : clocks_) {
    const sim::Time v = raw_clock(c);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return hi - lo;
}

void ClockSyncCluster::inject_byzantine(std::size_t node, sim::Duration delta,
                                        sim::Time from) {
  clocks_.at(node).byz_delta = delta;
  clocks_.at(node).byz_from = from;
}

void ClockSyncCluster::start() {
  if (started_) throw std::logic_error("ClockSyncCluster::start called twice");
  started_ = true;
  kernel_.schedule_periodic(
      kernel_.now() + cfg_.resync_interval, cfg_.resync_interval,
      [this] { resync(); }, sim::EventOrder::kHardware);
}

void ClockSyncCluster::resync() {
  ++rounds_;
  // Record the pre-correction precision: this is the bound the TDMA slot
  // guard intervals must absorb.
  const sim::Duration pi = precision();
  worst_precision_ = std::max(worst_precision_, pi);
  precision_us_.add(sim::to_us(pi));

  if (!cfg_.enable_sync) return;

  // Every node measures every other node's clock difference (from frame
  // arrival instants), each reading perturbed by the latch error; then
  // applies the fault-tolerant average.
  std::vector<sim::Duration> corrections(clocks_.size(), 0);
  for (std::size_t i = 0; i < clocks_.size(); ++i) {
    std::vector<sim::Duration> diffs;
    diffs.reserve(clocks_.size() - 1);
    const sim::Time own = raw_clock(clocks_[i]);
    for (std::size_t j = 0; j < clocks_.size(); ++j) {
      if (j == i) continue;
      const sim::Duration noise =
          rng_.uniform(-cfg_.reading_error, cfg_.reading_error);
      diffs.push_back(raw_clock(clocks_[j]) - own + noise);
    }
    std::sort(diffs.begin(), diffs.end());
    // Drop the k smallest and k largest readings (FTA).
    const std::size_t k = cfg_.fault_tolerance;
    sim::Duration sum = 0;
    std::size_t used = 0;
    for (std::size_t d = k; d + k < diffs.size(); ++d) {
      sum += diffs[d];
      ++used;
    }
    corrections[i] = used > 0 ? sum / static_cast<sim::Duration>(used) : 0;
  }
  for (std::size_t i = 0; i < clocks_.size(); ++i) {
    // A byzantine node's sync logic is part of the fault: it stops applying
    // corrections, so its error persists — FTA's job is to keep it from
    // dragging the healthy majority along.
    if (kernel_.now() >= clocks_[i].byz_from) continue;
    clocks_[i].offset += corrections[i];
  }
  trace_.emit(kernel_.now(), "ttp.resync", "cluster",
              static_cast<std::int64_t>(pi));
}

}  // namespace orte::ttp
