#include "ttp/ttp_bus.hpp"

#include <stdexcept>

namespace orte::ttp {

void TtpNode::send(Frame frame) {
  frame.source = index_;
  buffer_ = std::move(frame);
}

void TtpNode::crash_at(Time t) { crash_time_ = t; }

void TtpNode::babble(Time from, Time until) {
  babble_from_ = from;
  babble_until_ = until;
}

TtpBus::TtpBus(sim::Kernel& kernel, sim::Trace& trace, TtpConfig cfg)
    : kernel_(kernel), trace_(trace), cfg_(std::move(cfg)) {
  if (cfg_.slot_len <= 0) {
    throw std::invalid_argument("TTP slot length must be positive");
  }
}

TtpNode& TtpBus::attach(std::string name) {
  if (started_) throw std::logic_error("TtpBus::attach after start()");
  const int index = static_cast<int>(nodes_.size());
  nodes_.push_back(
      std::unique_ptr<TtpNode>(new TtpNode(*this, index, std::move(name))));
  membership_.push_back(true);
  return *nodes_.back();
}

void TtpBus::start() {
  if (started_) throw std::logic_error("TtpBus::start called twice");
  if (nodes_.empty()) throw std::logic_error("TtpBus::start with no nodes");
  started_ = true;
  kernel_.schedule_at(kernel_.now(), [this] { run_slot(0); },
                      sim::EventOrder::kHardware);
}

bool TtpBus::interference_at(Time t, int owner) {
  for (const auto& n : nodes_) {
    if (n->index_ == owner) continue;
    const bool babbling = t >= n->babble_from_ && t < n->babble_until_ &&
                          t < n->crash_time_;
    if (!babbling) continue;
    if (cfg_.bus_guardian) {
      // The local guardian only opens the node's driver inside its own slot:
      // the out-of-slot attempt is blocked at the source.
      ++guardian_blocks_;
      trace_.emit(t, "ttp.guardian_block", n->name_);
      continue;
    }
    return true;
  }
  return false;
}

void TtpBus::run_slot(std::size_t owner) {
  const Time slot_start = kernel_.now();
  const Time slot_end = slot_start + cfg_.slot_len;
  TtpNode& node = *nodes_[owner];

  const bool alive = slot_start < node.crash_time_;
  const bool clean = !interference_at(slot_start, static_cast<int>(owner));

  if (alive) {
    // Every member broadcasts in its slot — a data frame if the application
    // wrote one, otherwise an empty heartbeat (N-frame). The buffer is
    // latched when transmission completes, so a write made during the slot
    // still catches this round (state-message update-in-place).
    kernel_.schedule_at(
        slot_end,
        [this, owner, slot_start, clean]() mutable {
          TtpNode& node = *nodes_[owner];
          Frame frame;
          if (node.buffer_.has_value()) {
            frame = std::move(*node.buffer_);
            node.buffer_.reset();
          } else {
            frame.name = node.name_ + ".heartbeat";
          }
          frame.source = static_cast<int>(owner);
          frame.id = static_cast<std::uint32_t>(owner);
          frame.sent_at = slot_start;
          stats_.record_tx(frame.sent_at, kernel_.now(), clean);
          if (clean) {
            frame.delivered_at = kernel_.now();
            trace_.emit(kernel_.now(), "ttp.rx", frame.name, frame.id);
            if (!membership_[owner]) {
              membership_[owner] = true;  // reintegration
              trace_.emit(kernel_.now(), "ttp.membership_gain",
                          nodes_[owner]->name_);
            }
            for (const auto& n : nodes_) {
              if (n->index_ != frame.source) n->deliver(frame);
            }
          } else {
            ++collisions_;
            trace_.emit(kernel_.now(), "ttp.collision", frame.name, frame.id);
            if (membership_[owner]) {
              membership_[owner] = false;
              ++membership_losses_;
              trace_.emit(kernel_.now(), "ttp.membership_loss",
                          nodes_[owner]->name_);
            }
          }
          run_slot((owner + 1) % nodes_.size());
        },
        sim::EventOrder::kHardware);
  } else {
    kernel_.schedule_at(
        slot_end,
        [this, owner] {
          if (membership_[owner]) {
            membership_[owner] = false;
            ++membership_losses_;
            trace_.emit(kernel_.now(), "ttp.membership_loss",
                        nodes_[owner]->name_);
          }
          run_slot((owner + 1) % nodes_.size());
        },
        sim::EventOrder::kHardware);
  }
}

}  // namespace orte::ttp
