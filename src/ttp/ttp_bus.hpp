// TTP-style time-triggered protocol simulator (Kopetz & Grünsteidl, 1994).
//
// A TDMA round gives every node exactly one sending slot; nodes broadcast a
// frame in every slot they own (a heartbeat when the application wrote no
// payload). The bus provides:
//  * a membership service: a node that fails to transmit correctly in its
//    slot leaves the membership vector within one round,
//  * local bus guardians: a babbling node's out-of-slot transmissions are
//    blocked before they reach the medium (error containment, §4 req. 4),
//  * fault injection: crash (fail-silent) and babbling-idiot faults.
// With guardians disabled, babbling collides with — and corrupts — every
// overlapping slot, which is exactly the contrast experiment E4 measures.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/bus_stats.hpp"
#include "net/frame.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"

namespace orte::ttp {

using net::Frame;
using sim::Duration;
using sim::Time;

class TtpBus;

class TtpNode : public net::Controller {
 public:
  /// Store payload for broadcast in this node's next owned slot (state
  /// message semantics: later sends overwrite earlier ones).
  void send(Frame frame) override;

  /// Inject a fail-silent (crash) fault at absolute time t.
  void crash_at(Time t);
  /// Inject a babbling-idiot fault over [from, until): the node attempts to
  /// transmit continuously, also outside its slot.
  void babble(Time from, Time until);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int index() const { return index_; }

 private:
  friend class TtpBus;
  TtpNode(TtpBus& bus, int index, std::string name)
      : bus_(&bus), index_(index), name_(std::move(name)) {}
  void deliver(const Frame& f) { notify_receive(f); }

  TtpBus* bus_;
  int index_;
  std::string name_;
  std::optional<Frame> buffer_;
  Time crash_time_ = sim::kForever;
  Time babble_from_ = sim::kForever;
  Time babble_until_ = sim::kForever;
};

struct TtpConfig {
  std::string name = "ttp0";
  Duration slot_len = sim::microseconds(100);
  bool bus_guardian = true;  ///< Local guardians enforce slot boundaries.
};

class TtpBus {
 public:
  TtpBus(sim::Kernel& kernel, sim::Trace& trace, TtpConfig cfg);
  TtpBus(const TtpBus&) = delete;
  TtpBus& operator=(const TtpBus&) = delete;

  TtpNode& attach(std::string name);

  /// Begin TDMA rounds. Call once after all attaches.
  void start();

  [[nodiscard]] Duration round_len() const {
    return static_cast<Duration>(nodes_.size()) * cfg_.slot_len;
  }
  [[nodiscard]] const std::vector<bool>& membership() const {
    return membership_;
  }
  [[nodiscard]] std::uint64_t membership_losses() const {
    return membership_losses_;
  }
  [[nodiscard]] std::uint64_t guardian_blocks() const {
    return guardian_blocks_;
  }
  [[nodiscard]] std::uint64_t collisions() const { return collisions_; }
  [[nodiscard]] const net::BusStats& stats() const { return stats_; }
  [[nodiscard]] const TtpConfig& config() const { return cfg_; }

 private:
  friend class TtpNode;

  void run_slot(std::size_t owner);
  /// True when some node other than `owner` is babbling unguarded at `t`.
  bool interference_at(Time t, int owner);

  sim::Kernel& kernel_;
  sim::Trace& trace_;
  TtpConfig cfg_;
  std::vector<std::unique_ptr<TtpNode>> nodes_;
  std::vector<bool> membership_;
  net::BusStats stats_;
  std::uint64_t membership_losses_ = 0;
  std::uint64_t guardian_blocks_ = 0;
  std::uint64_t collisions_ = 0;
  bool started_ = false;
};

}  // namespace orte::ttp
