// Dual-channel FlexRay operation.
//
// FlexRay specifies two physical channels (A and B); safety-critical frames
// are transmitted on both so that a single channel fault (wire break, stuck
// transceiver) loses no data. This wrapper drives two identically-configured
// FlexRayBus instances in lockstep and deduplicates receptions: the first
// copy of a (slot, transmission instant) pair is delivered, the second is
// counted as redundant.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "flexray/flexray_bus.hpp"

namespace orte::flexray {

class DualChannelFlexRay;

/// Node-side view: sends go to both channels; receive callbacks fire once
/// per logical frame (deduplicated).
class DualChannelController : public net::Controller {
 public:
  void send(Frame frame) override;

 private:
  friend class DualChannelFlexRay;
  DualChannelController(DualChannelFlexRay& bus, int node)
      : bus_(&bus), node_(node) {}
  void handle(const Frame& f, int channel);

  DualChannelFlexRay* bus_;
  int node_;
  /// frame id -> sent_at of the last delivered logical frame.
  std::map<std::uint32_t, sim::Time> delivered_;
};

class DualChannelFlexRay {
 public:
  DualChannelFlexRay(sim::Kernel& kernel, sim::Trace& trace,
                     FlexRayConfig cfg);

  DualChannelController& attach();
  void assign_static_slot(std::uint32_t slot, const DualChannelController& c);
  void start();

  /// Blackout-fail one channel (0 = A, 1 = B) during [from, until).
  void fail_channel(int channel, sim::Time from, sim::Time until);

  [[nodiscard]] FlexRayBus& channel(int i) { return i == 0 ? *a_ : *b_; }
  [[nodiscard]] std::uint64_t redundant_receptions() const {
    return redundant_;
  }
  [[nodiscard]] std::uint64_t logical_receptions() const { return logical_; }

 private:
  friend class DualChannelController;

  std::unique_ptr<FlexRayBus> a_;
  std::unique_ptr<FlexRayBus> b_;
  std::vector<std::unique_ptr<DualChannelController>> nodes_;
  std::vector<std::pair<FlexRayController*, FlexRayController*>> legs_;
  std::uint64_t redundant_ = 0;
  std::uint64_t logical_ = 0;
};

}  // namespace orte::flexray
