#include "flexray/dual_channel.hpp"

#include <stdexcept>

namespace orte::flexray {

DualChannelFlexRay::DualChannelFlexRay(sim::Kernel& kernel, sim::Trace& trace,
                                       FlexRayConfig cfg) {
  FlexRayConfig cfg_a = cfg;
  cfg_a.name += ".A";
  FlexRayConfig cfg_b = cfg;
  cfg_b.name += ".B";
  a_ = std::make_unique<FlexRayBus>(kernel, trace, cfg_a);
  b_ = std::make_unique<FlexRayBus>(kernel, trace, cfg_b);
}

DualChannelController& DualChannelFlexRay::attach() {
  const int node = static_cast<int>(nodes_.size());
  nodes_.push_back(std::unique_ptr<DualChannelController>(
      new DualChannelController(*this, node)));
  auto& leg_a = a_->attach();
  auto& leg_b = b_->attach();
  legs_.emplace_back(&leg_a, &leg_b);
  DualChannelController* wrapper = nodes_.back().get();
  leg_a.on_receive([wrapper](const Frame& f) { wrapper->handle(f, 0); });
  leg_b.on_receive([wrapper](const Frame& f) { wrapper->handle(f, 1); });
  return *wrapper;
}

void DualChannelFlexRay::assign_static_slot(std::uint32_t slot,
                                            const DualChannelController& c) {
  const auto& leg = legs_.at(static_cast<std::size_t>(c.node_));
  a_->assign_static_slot(slot, *leg.first);
  b_->assign_static_slot(slot, *leg.second);
}

void DualChannelFlexRay::start() {
  a_->start();
  b_->start();
}

void DualChannelFlexRay::fail_channel(int channel, sim::Time from,
                                      sim::Time until) {
  channel ? b_->fail_channel(from, until) : a_->fail_channel(from, until);
}

void DualChannelController::send(Frame frame) {
  const auto& leg = bus_->legs_.at(static_cast<std::size_t>(node_));
  Frame copy = frame;
  leg.first->send(std::move(copy));
  leg.second->send(std::move(frame));
}

void DualChannelController::handle(const Frame& f, int channel) {
  (void)channel;
  auto it = delivered_.find(f.id);
  if (it != delivered_.end() && it->second == f.sent_at) {
    ++bus_->redundant_;  // second copy of the same transmission
    return;
  }
  delivered_[f.id] = f.sent_at;
  ++bus_->logical_;
  notify_receive(f);
}

}  // namespace orte::flexray
