#include "flexray/flexray_bus.hpp"

#include <algorithm>
#include <stdexcept>

namespace orte::flexray {

namespace {
// FlexRay frame overhead: 5 byte header + 3 byte trailer + action point /
// channel idle margin folded into a constant per-slot guard of 1 us.
constexpr std::int64_t kOverheadBytes = 8;
constexpr Duration kSlotGuard = sim::microseconds(1);
}  // namespace

void FlexRayController::send(Frame frame) {
  frame.source = node_;
  if (frame.id == 0) {
    throw std::invalid_argument("FlexRay frame id must be >= 1");
  }
  if (frame.id <= bus_->cfg_.static_slots) {
    if (frame.size() > bus_->cfg_.static_payload_bytes) {
      throw std::invalid_argument("static frame exceeds slot payload");
    }
    bus_->submit_static(std::move(frame));
  } else {
    bus_->submit_dynamic(std::move(frame));
  }
}

Duration FlexRayBus::slot_length(const FlexRayConfig& cfg) {
  const Duration bit_time = 1'000'000'000 / cfg.bitrate_bps;
  return static_cast<Duration>(
             (kOverheadBytes +
              static_cast<std::int64_t>(cfg.static_payload_bytes)) *
             8) *
             bit_time +
         kSlotGuard;
}

Duration FlexRayBus::cycle_length(const FlexRayConfig& cfg) {
  return static_cast<Duration>(cfg.static_slots) * slot_length(cfg) +
         static_cast<Duration>(cfg.minislots) * cfg.minislot_len +
         cfg.network_idle;
}

FlexRayBus::FlexRayBus(sim::Kernel& kernel, sim::Trace& trace,
                       FlexRayConfig cfg)
    : kernel_(kernel),
      trace_(trace),
      cfg_(std::move(cfg)),
      bit_time_(1'000'000'000 / cfg_.bitrate_bps) {
  if (cfg_.bitrate_bps <= 0 || cfg_.static_slots == 0) {
    throw std::invalid_argument("FlexRay config invalid");
  }
  static_slot_len_ = slot_length(cfg_);
  dynamic_len_ = static_cast<Duration>(cfg_.minislots) * cfg_.minislot_len;
  cycle_len_ = cycle_length(cfg_);
  slot_owner_.assign(cfg_.static_slots + 1, -1);
  slot_buffer_.assign(cfg_.static_slots + 1, std::nullopt);
}

FlexRayController& FlexRayBus::attach() {
  if (started_) throw std::logic_error("FlexRayBus::attach after start()");
  const int node = static_cast<int>(controllers_.size());
  controllers_.push_back(
      std::unique_ptr<FlexRayController>(new FlexRayController(*this, node)));
  return *controllers_.back();
}

void FlexRayBus::assign_static_slot(std::uint32_t slot,
                                    const FlexRayController& owner) {
  if (slot == 0 || slot > cfg_.static_slots) {
    throw std::invalid_argument("static slot id out of range");
  }
  if (slot_owner_[slot] != -1) {
    throw std::invalid_argument("static slot already assigned");
  }
  slot_owner_[slot] = owner.node_;
}

void FlexRayBus::start() {
  if (started_) throw std::logic_error("FlexRayBus::start called twice");
  started_ = true;
  kernel_.schedule_at(kernel_.now(), [this] { begin_cycle(); },
                      sim::EventOrder::kHardware);
}

void FlexRayBus::submit_static(Frame frame) {
  if (slot_owner_[frame.id] != frame.source) {
    throw std::logic_error("node writes a static slot it does not own");
  }
  slot_buffer_[frame.id] = std::move(frame);  // overwrite: state semantics
}

void FlexRayBus::submit_dynamic(Frame frame) {
  auto it = std::find_if(
      dynamic_queue_.begin(), dynamic_queue_.end(),
      [&](const Frame& f) { return f.id > frame.id; });
  dynamic_queue_.insert(it, std::move(frame));
  if (dynamic_queue_.size() > cfg_.dynamic_queue_limit) {
    stats_.record_drop();
    trace_.emit(kernel_.now(), "fr.dyn_drop", dynamic_queue_.back().name,
                dynamic_queue_.back().id);
    dynamic_queue_.pop_back();  // shed the lowest-priority frame
  }
}

void FlexRayBus::begin_cycle() {
  ++cycle_count_;
  trace_.emit(kernel_.now(), "fr.cycle", cfg_.name,
              static_cast<std::int64_t>(cycle_count_));
  run_static_slot(1);
}

void FlexRayBus::run_static_slot(std::size_t index) {
  if (index > cfg_.static_slots) {
    begin_dynamic_segment();
    return;
  }
  const Time slot_end = kernel_.now() + static_slot_len_;
  if (slot_buffer_[index].has_value()) {
    Frame frame = std::move(*slot_buffer_[index]);
    slot_buffer_[index].reset();
    frame.sent_at = kernel_.now();
    stats_.record_queueing_delay(kernel_.now() - frame.enqueued_at);
    trace_.emit(kernel_.now(), "fr.static_tx", frame.name, frame.id);
    kernel_.schedule_at(
        slot_end,
        [this, frame = std::move(frame), index]() mutable {
          stats_.record_tx(frame.sent_at, kernel_.now(), true);
          deliver(std::move(frame));
          run_static_slot(index + 1);
        },
        sim::EventOrder::kHardware);
  } else {
    kernel_.schedule_at(
        slot_end, [this, index] { run_static_slot(index + 1); },
        sim::EventOrder::kHardware);
  }
}

void FlexRayBus::begin_dynamic_segment() {
  // Mini-slotting: walk the priority-sorted queue; each frame needs
  // ceil(tx_time / minislot) minislots and transmits only if they all fit
  // before the segment ends. Frames that do not fit wait for the next cycle.
  const Time segment_end = kernel_.now() + dynamic_len_;
  Time cursor = kernel_.now();
  std::deque<Frame> deferred;
  while (!dynamic_queue_.empty()) {
    Frame frame = std::move(dynamic_queue_.front());
    dynamic_queue_.pop_front();
    const Duration tx_time =
        static_cast<Duration>(
            (kOverheadBytes + static_cast<std::int64_t>(frame.size())) * 8) *
        bit_time_;
    const auto needed_minislots =
        (tx_time + cfg_.minislot_len - 1) / cfg_.minislot_len;
    const Duration needed = needed_minislots * cfg_.minislot_len;
    if (cursor + needed > segment_end) {
      ++dynamic_deferrals_;
      deferred.push_back(std::move(frame));
      continue;
    }
    frame.sent_at = cursor;
    stats_.record_queueing_delay(cursor - frame.enqueued_at);
    trace_.emit(cursor, "fr.dyn_tx", frame.name, frame.id);
    const Time done = cursor + needed;
    kernel_.schedule_at(
        done,
        [this, frame = std::move(frame)]() mutable {
          stats_.record_tx(frame.sent_at, kernel_.now(), true);
          deliver(std::move(frame));
        },
        sim::EventOrder::kHardware);
    cursor = done;
  }
  dynamic_queue_ = std::move(deferred);
  // Next cycle after dynamic segment + network idle time.
  kernel_.schedule_at(segment_end + cfg_.network_idle,
                      [this] { begin_cycle(); }, sim::EventOrder::kHardware);
}

void FlexRayBus::deliver(Frame frame) {
  if (kernel_.now() >= blackout_from_ && kernel_.now() < blackout_until_) {
    stats_.record_drop();
    trace_.emit(kernel_.now(), "fr.blackout_drop", frame.name, frame.id);
    return;
  }
  if (fault_hook_) {
    const net::FaultVerdict verdict = fault_hook_(frame);
    if (verdict.drop) {
      stats_.record_drop();
      trace_.emit(kernel_.now(), "fr.fault_drop", frame.name, frame.id);
      return;
    }
    // verdict.delay intentionally ignored: the slot schedule owns timing.
  }
  frame.delivered_at = kernel_.now();
  trace_.emit(kernel_.now(), "fr.rx", frame.name, frame.id);
  for (const auto& c : controllers_) {
    if (c->node_ != frame.source) c->deliver(frame);
  }
}

}  // namespace orte::flexray
