// FlexRay bus simulator (protocol spec v2.1 structure, frame granularity).
//
// Communication cycle = static segment (TDMA slots, one owner each, state-
// message semantics: the slot buffer holds the latest written value) +
// dynamic segment (mini-slotting: lower frame id = higher priority, a frame
// transmits only if enough minislots remain in this cycle) + network idle
// time. This is the time-triggered comparator in experiments E1/E3 and the
// backbone of the brake-by-wire example.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/bus_stats.hpp"
#include "net/fault_hook.hpp"
#include "net/frame.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"

namespace orte::flexray {

using net::Frame;
using sim::Duration;
using sim::Time;

class FlexRayBus;

class FlexRayController : public net::Controller {
 public:
  /// Static frames (id in [1, n_static]) overwrite the slot buffer (state
  /// message semantics); dynamic frames (id > n_static) queue by priority.
  void send(Frame frame) override;

 private:
  friend class FlexRayBus;
  FlexRayController(FlexRayBus& bus, int node) : bus_(&bus), node_(node) {}
  void deliver(const Frame& f) { notify_receive(f); }

  FlexRayBus* bus_;
  int node_;
};

struct FlexRayConfig {
  std::string name = "fr0";
  std::int64_t bitrate_bps = 10'000'000;
  std::size_t static_slots = 16;
  std::size_t static_payload_bytes = 16;  ///< Payload capacity per slot.
  std::size_t minislots = 40;
  Duration minislot_len = sim::microseconds(2);
  Duration network_idle = sim::microseconds(50);
  /// Controller transmit-buffer depth for dynamic frames; when full, the
  /// lowest-priority pending frame is dropped (real controllers have finite
  /// message RAM — an unbounded backlog would hide a misconfigured system).
  std::size_t dynamic_queue_limit = 64;
};

class FlexRayBus {
 public:
  FlexRayBus(sim::Kernel& kernel, sim::Trace& trace, FlexRayConfig cfg);
  FlexRayBus(const FlexRayBus&) = delete;
  FlexRayBus& operator=(const FlexRayBus&) = delete;

  FlexRayController& attach();

  /// Static slot / cycle lengths implied by a configuration (shared with the
  /// timing analysis in src/analysis so both always agree).
  static Duration slot_length(const FlexRayConfig& cfg);
  static Duration cycle_length(const FlexRayConfig& cfg);

  /// Give a static slot (1-based id) to a node. Unassigned slots stay idle.
  void assign_static_slot(std::uint32_t slot, const FlexRayController& owner);

  /// Begin cycling. Call once after all assignments.
  void start();

  /// Fault injection: the channel goes dark during [from, until) — every
  /// frame scheduled for delivery in the window is lost (wire break, stuck
  /// transceiver). Used by the dual-channel redundancy tests.
  void fail_channel(Time from, Time until) {
    blackout_from_ = from;
    blackout_until_ = until;
  }

  /// Install the fault-injection hook, consulted once per frame at the
  /// delivery point. Drop and in-place corruption are honored; delay is
  /// ignored — the TDMA slot structure pins delivery instants, which is the
  /// containment property the fault campaigns measure. Pass {} to clear.
  void set_fault_hook(net::FaultHook hook) { fault_hook_ = std::move(hook); }

  [[nodiscard]] Duration static_slot_len() const { return static_slot_len_; }
  [[nodiscard]] Duration cycle_len() const { return cycle_len_; }
  [[nodiscard]] std::uint64_t cycles() const { return cycle_count_; }
  [[nodiscard]] const net::BusStats& stats() const { return stats_; }
  [[nodiscard]] const FlexRayConfig& config() const { return cfg_; }
  /// Dynamic frames that could not fit in their cycle and were deferred.
  [[nodiscard]] std::uint64_t dynamic_deferrals() const {
    return dynamic_deferrals_;
  }

 private:
  friend class FlexRayController;

  void submit_static(Frame frame);
  void submit_dynamic(Frame frame);
  void begin_cycle();
  void run_static_slot(std::size_t index);
  void begin_dynamic_segment();
  void deliver(Frame frame);

  sim::Kernel& kernel_;
  sim::Trace& trace_;
  FlexRayConfig cfg_;
  Duration bit_time_;
  Duration static_slot_len_;
  Duration dynamic_len_;
  Duration cycle_len_;

  std::vector<std::unique_ptr<FlexRayController>> controllers_;
  /// slot id (1-based) -> owning node, -1 if unassigned.
  std::vector<int> slot_owner_;
  /// Latest value written per static slot (state-message buffer).
  std::vector<std::optional<Frame>> slot_buffer_;
  /// Pending dynamic frames, sorted ascending by id.
  std::deque<Frame> dynamic_queue_;

  net::BusStats stats_;
  net::FaultHook fault_hook_;
  std::uint64_t cycle_count_ = 0;
  std::uint64_t dynamic_deferrals_ = 0;
  Time blackout_from_ = sim::kForever;
  Time blackout_until_ = sim::kForever;
  bool started_ = false;
};

}  // namespace orte::flexray
