// Network-on-Chip simulator for the integrated MPSoC architecture (§4).
//
// Each IP core attaches through a network interface (NI). Two arbitration
// modes realize the paper's contrast:
//  * kTdma  — every core owns a fixed slot per NoC period; injection outside
//    the slot is impossible (per-core guardian is implicit in the NI), so the
//    four composability requirements hold by construction: precise temporal
//    interface, stability of prior services, non-interfering interactions,
//    error containment.
//  * kFcfs  — a shared crossbar/bus served first-come-first-served: the
//    unprotected baseline where a babbling core starves its neighbours.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "sim/kernel.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace orte::noc {

using sim::Duration;
using sim::Time;

struct NocMessage {
  int source = -1;
  int destination = -1;  ///< Core index; -1 = broadcast to all other cores.
  std::string name;
  std::size_t bytes = 0;  ///< Wire size (payload + protocol overhead).
  net::Payload payload;   ///< Application data (middleware use); shared.
  /// Injection priority at the NI: lower = more urgent; the default appends
  /// FIFO. The CAN overlay maps CAN identifiers here.
  std::uint32_t priority = UINT32_MAX;
  Time enqueued_at = 0;
  Time delivered_at = 0;
};

enum class Arbitration {
  kTdma,  ///< Composable: one slot per core per period.
  kFcfs,  ///< Baseline: shared medium, first-come-first-served.
};

struct NocConfig {
  std::string name = "noc0";
  Arbitration arbitration = Arbitration::kTdma;
  std::int64_t link_bandwidth_bps = 100'000'000;  ///< Serialization rate.
  Duration slot_len = sim::microseconds(10);      ///< TDMA slot per core.
};

class Noc;

/// Core-side network interface. All inter-core communication goes through
/// here — cores have no shared memory (§4: "communicate solely by the
/// exchange of messages").
class NetworkInterface {
 public:
  using RxCallback = std::function<void(const NocMessage&)>;

  /// Queue a message for injection; honours the arbitration mode.
  void send(NocMessage msg);
  void on_receive(RxCallback cb) { rx_.push_back(std::move(cb)); }

  [[nodiscard]] int core() const { return core_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  /// End-to-end NI-to-NI latencies (microseconds) of delivered messages.
  [[nodiscard]] const sim::Stats& rx_latency() const { return rx_latency_; }
  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_received() const { return received_; }

 private:
  friend class Noc;
  NetworkInterface(Noc& noc, int core, std::string name)
      : noc_(&noc), core_(core), name_(std::move(name)) {}
  void deliver(const NocMessage& msg) {
    ++received_;
    rx_latency_.add(sim::to_us(msg.delivered_at - msg.enqueued_at));
    for (const auto& cb : rx_) cb(msg);
  }

  Noc* noc_;
  int core_;
  std::string name_;
  std::deque<NocMessage> queue_;
  std::vector<RxCallback> rx_;
  sim::Stats rx_latency_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

class Noc {
 public:
  Noc(sim::Kernel& kernel, sim::Trace& trace, NocConfig cfg);
  Noc(const Noc&) = delete;
  Noc& operator=(const Noc&) = delete;

  NetworkInterface& attach(std::string core_name);

  /// Start arbitration (TDMA slot rotation). Call once after attaches.
  void start();

  /// Inject a babbling-idiot fault: `core` floods the NoC with `burst_bytes`
  /// messages every `interval` during [from, until).
  void inject_babble(int core, std::size_t burst_bytes, Duration interval,
                     Time from, Time until);

  [[nodiscard]] Duration period() const {
    return static_cast<Duration>(interfaces_.size()) * cfg_.slot_len;
  }
  [[nodiscard]] Duration tx_time(std::size_t bytes) const {
    return static_cast<Duration>(bytes) * 8 * bit_time_;
  }
  /// Max message bytes that fit one TDMA slot.
  [[nodiscard]] std::size_t slot_capacity_bytes() const {
    return static_cast<std::size_t>(cfg_.slot_len / (8 * bit_time_));
  }
  [[nodiscard]] const NocConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  [[nodiscard]] const std::vector<std::unique_ptr<NetworkInterface>>&
  interfaces() const {
    return interfaces_;
  }

 private:
  friend class NetworkInterface;

  void notify_pending(int core);
  void run_tdma_slot(std::size_t core);
  void try_fcfs();
  void deliver(NocMessage msg);

  sim::Kernel& kernel_;
  sim::Trace& trace_;
  NocConfig cfg_;
  Duration bit_time_;
  std::vector<std::unique_ptr<NetworkInterface>> interfaces_;
  bool started_ = false;
  bool link_busy_ = false;  ///< FCFS mode only.
  std::uint64_t delivered_ = 0;
};

}  // namespace orte::noc
