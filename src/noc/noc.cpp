#include "noc/noc.hpp"

#include <stdexcept>

namespace orte::noc {

void NetworkInterface::send(NocMessage msg) {
  msg.source = core_;
  msg.enqueued_at = noc_->kernel_.now();
  if (noc_->cfg_.arbitration == Arbitration::kTdma &&
      msg.bytes > noc_->slot_capacity_bytes()) {
    throw std::invalid_argument("NoC message exceeds TDMA slot capacity");
  }
  ++sent_;
  if (msg.priority == UINT32_MAX) {
    queue_.push_back(std::move(msg));
  } else {
    // Priority-queued NI: insert before the first strictly-lower-priority
    // entry; stable among equals and ahead of all FIFO (UINT32_MAX) traffic
    // only when their priority value says so.
    auto it = queue_.begin();
    while (it != queue_.end() && it->priority <= msg.priority) ++it;
    queue_.insert(it, std::move(msg));
  }
  noc_->notify_pending(core_);
}

Noc::Noc(sim::Kernel& kernel, sim::Trace& trace, NocConfig cfg)
    : kernel_(kernel),
      trace_(trace),
      cfg_(std::move(cfg)),
      bit_time_(1'000'000'000 / cfg_.link_bandwidth_bps) {
  if (cfg_.link_bandwidth_bps <= 0 || cfg_.slot_len <= 0) {
    throw std::invalid_argument("NoC config invalid");
  }
}

NetworkInterface& Noc::attach(std::string core_name) {
  if (started_) throw std::logic_error("Noc::attach after start()");
  const int core = static_cast<int>(interfaces_.size());
  interfaces_.push_back(std::unique_ptr<NetworkInterface>(
      new NetworkInterface(*this, core, std::move(core_name))));
  return *interfaces_.back();
}

void Noc::start() {
  if (started_) throw std::logic_error("Noc::start called twice");
  if (interfaces_.empty()) throw std::logic_error("Noc::start with no cores");
  started_ = true;
  if (cfg_.arbitration == Arbitration::kTdma) {
    kernel_.schedule_at(kernel_.now(), [this] { run_tdma_slot(0); },
                        sim::EventOrder::kHardware);
  }
}

void Noc::inject_babble(int core, std::size_t burst_bytes, Duration interval,
                        Time from, Time until) {
  NetworkInterface* ni = interfaces_.at(static_cast<std::size_t>(core)).get();
  auto handle = kernel_.schedule_periodic(
      from, interval,
      [this, ni, burst_bytes] {
        NocMessage junk;
        junk.destination = -1;  // broadcast: worst case for the others
        junk.name = "babble";
        junk.bytes = burst_bytes;
        ni->send(junk);
        trace_.emit(kernel_.now(), "noc.babble", ni->name(),
                    static_cast<std::int64_t>(burst_bytes));
      },
      sim::EventOrder::kHardware);
  kernel_.schedule_at(until, [this, handle] { kernel_.cancel(handle); },
                      sim::EventOrder::kHardware);
}

void Noc::notify_pending(int core) {
  (void)core;
  if (cfg_.arbitration == Arbitration::kFcfs) try_fcfs();
  // TDMA mode drains queues at slot boundaries only.
}

void Noc::run_tdma_slot(std::size_t core) {
  NetworkInterface& ni = *interfaces_[core];
  const Time slot_end = kernel_.now() + cfg_.slot_len;
  // Drain as many whole messages as fit in this slot (guardian: the NI can
  // never transmit outside [now, slot_end), whatever the core does).
  Time cursor = kernel_.now();
  while (!ni.queue_.empty()) {
    const Duration t = tx_time(ni.queue_.front().bytes);
    if (cursor + t > slot_end) break;
    NocMessage msg = std::move(ni.queue_.front());
    ni.queue_.pop_front();
    const Time done = cursor + t;
    kernel_.schedule_at(
        done,
        [this, msg = std::move(msg)]() mutable { deliver(std::move(msg)); },
        sim::EventOrder::kHardware);
    cursor = done;
  }
  const std::size_t next = (core + 1) % interfaces_.size();
  kernel_.schedule_at(slot_end, [this, next] { run_tdma_slot(next); },
                      sim::EventOrder::kHardware);
}

void Noc::try_fcfs() {
  if (link_busy_) return;
  // Oldest pending message wins; ties resolve by core index (deterministic).
  NetworkInterface* best = nullptr;
  for (const auto& ni : interfaces_) {
    if (ni->queue_.empty()) continue;
    if (best == nullptr ||
        ni->queue_.front().enqueued_at < best->queue_.front().enqueued_at) {
      best = ni.get();
    }
  }
  if (best == nullptr) return;
  NocMessage msg = std::move(best->queue_.front());
  best->queue_.pop_front();
  link_busy_ = true;
  kernel_.schedule_in(
      tx_time(msg.bytes),
      [this, msg = std::move(msg)]() mutable {
        link_busy_ = false;
        deliver(std::move(msg));
        try_fcfs();
      },
      sim::EventOrder::kHardware);
}

void Noc::deliver(NocMessage msg) {
  msg.delivered_at = kernel_.now();
  ++delivered_;
  trace_.emit(kernel_.now(), "noc.rx", msg.name,
              static_cast<std::int64_t>(msg.bytes));
  if (msg.destination >= 0) {
    interfaces_.at(static_cast<std::size_t>(msg.destination))->deliver(msg);
    return;
  }
  for (const auto& ni : interfaces_) {
    if (ni->core() != msg.source) ni->deliver(msg);
  }
}

}  // namespace orte::noc
