#include "noc/can_overlay.hpp"

#include <stdexcept>

namespace orte::noc {

namespace {
// CAN-equivalent wire overhead carried over the NoC (id + DLC + CRC).
constexpr std::size_t kOverlayOverheadBytes = 5;
constexpr std::uint32_t kMaxCanId = 0x7FF;
}  // namespace

CanOverlay::CanOverlay(NetworkInterface& ni) : ni_(ni) {
  ni_.on_receive([this](const NocMessage& msg) {
    if (msg.name == "can_overlay") handle(msg);
  });
}

void CanOverlay::send(std::uint32_t id, std::vector<std::uint8_t> data) {
  if (id > kMaxCanId) {
    throw std::invalid_argument("CAN overlay id exceeds 11 bits");
  }
  if (data.size() > 8) {
    throw std::invalid_argument("CAN overlay payload exceeds 8 bytes");
  }
  NocMessage msg;
  msg.destination = -1;  // CAN is a broadcast medium
  msg.name = "can_overlay";
  msg.priority = id;  // lower id = higher injection priority, as on the bus
  msg.bytes = data.size() + kOverlayOverheadBytes;
  msg.payload = std::move(data);
  ++sent_;
  ni_.send(std::move(msg));
}

void CanOverlay::on_frame(std::uint32_t id, FrameCallback cb) {
  by_id_[id].push_back(std::move(cb));
}

void CanOverlay::on_any(FrameCallback cb) { any_.push_back(std::move(cb)); }

void CanOverlay::handle(const NocMessage& msg) {
  OverlayFrame frame;
  frame.id = msg.priority;
  frame.data = msg.payload;
  frame.sent_at = msg.enqueued_at;
  frame.received_at = msg.delivered_at;
  ++received_;
  // Priority-order conformance check (adjacent-pair approximation): on a real
  // CAN bus, a frame that was enqueued no later and has a lower id would have
  // been received first.
  if (have_rx_ && frame.id < last_rx_id_ && frame.sent_at <= last_rx_sent_at_) {
    ++inversions_;
  }
  have_rx_ = true;
  last_rx_id_ = frame.id;
  last_rx_sent_at_ = frame.sent_at;

  auto it = by_id_.find(frame.id);
  if (it != by_id_.end()) {
    for (const auto& cb : it->second) cb(frame);
  }
  for (const auto& cb : any_) cb(frame);
}

}  // namespace orte::noc
