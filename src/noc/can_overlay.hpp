// CAN-overlay middleware: the §4 legacy-integration service.
//
// "higher-level application specific services can be implemented in
//  middleware such that the APIs visible to the application software conform
//  with the requirements of existing legacy applications (e.g., a CAN overlay
//  network)".
//
// The overlay gives each IP core a classic CAN programming model — broadcast
// frames with 11-bit identifiers, lower id = higher priority, at most 8 data
// bytes — implemented on NoC messages. Within one core, identifier priority is
// preserved by mapping the CAN id onto the NI injection priority; across
// cores, TDMA slots serialize senders, so global id-order can invert — the
// overlay counts such inversions so experiment E11 can quantify the legacy
// conformance the paper promises.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "noc/noc.hpp"

namespace orte::noc {

struct OverlayFrame {
  std::uint32_t id = 0;   ///< CAN identifier (11-bit range enforced).
  net::Payload data;      ///< Up to 8 bytes; shared with the NoC message.
  Time sent_at = 0;
  Time received_at = 0;
};

class CanOverlay {
 public:
  using FrameCallback = std::function<void(const OverlayFrame&)>;

  /// Wrap the given NI. One overlay per core.
  explicit CanOverlay(NetworkInterface& ni);

  /// Broadcast a legacy CAN frame to every other core.
  void send(std::uint32_t id, std::vector<std::uint8_t> data);

  /// Subscribe to a specific identifier.
  void on_frame(std::uint32_t id, FrameCallback cb);
  /// Subscribe to all identifiers.
  void on_any(FrameCallback cb);

  [[nodiscard]] std::uint64_t frames_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t frames_received() const { return received_; }
  /// Received frames whose id is higher-priority (lower) than a previously
  /// received frame sent later — global priority-order inversions.
  [[nodiscard]] std::uint64_t order_inversions() const { return inversions_; }

 private:
  void handle(const NocMessage& msg);

  NetworkInterface& ni_;
  std::map<std::uint32_t, std::vector<FrameCallback>> by_id_;
  std::vector<FrameCallback> any_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t inversions_ = 0;
  Time last_rx_sent_at_ = 0;
  std::uint32_t last_rx_id_ = 0;
  bool have_rx_ = false;
};

}  // namespace orte::noc
