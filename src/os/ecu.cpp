#include "os/ecu.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace orte::os {

namespace {
constexpr Duration kUnevaluated = -1;
}

Ecu::Ecu(sim::Kernel& kernel, sim::Trace& trace, std::string name)
    : kernel_(kernel), trace_(trace), name_(std::move(name)) {}

Task& Ecu::add_task(TaskConfig cfg) {
  if (started_) throw std::logic_error("Ecu::add_task after start()");
  if (cfg.partition >= static_cast<int>(partitions_.size())) {
    throw std::invalid_argument("Ecu::add_task: unknown partition");
  }
  tasks_.push_back(std::make_unique<Task>(std::move(cfg)));
  tasks_.back()->ecu_ = this;
  return *tasks_.back();
}

int Ecu::add_partition(PartitionConfig cfg) {
  if (cfg.budget <= 0 || cfg.period <= 0) {
    throw std::invalid_argument("Ecu::add_partition: budget/period must be >0");
  }
  partitions_.push_back(Partition{std::move(cfg), 0, false, 0});
  return static_cast<int>(partitions_.size()) - 1;
}

int Ecu::add_resource(std::string name) {
  resources_.push_back(Resource{std::move(name)});
  return static_cast<int>(resources_.size()) - 1;
}

void Ecu::set_schedule_table(std::vector<TableEntry> entries, Duration cycle) {
  if (cycle <= 0) throw std::invalid_argument("schedule table cycle <= 0");
  for (const auto& e : entries) {
    if (e.offset < 0 || e.offset >= cycle) {
      throw std::invalid_argument("schedule table offset outside cycle");
    }
  }
  table_ = std::move(entries);
  table_cycle_ = cycle;
}

void Ecu::start() {
  if (started_) throw std::logic_error("Ecu::start called twice");
  started_ = true;
  started_at_ = kernel_.now();

  // Compute immediate-ceiling priorities from declared segment usage.
  for (const auto& task : tasks_) {
    for (const auto& seg : task->segments_) {
      if (seg.resource >= 0) {
        if (seg.resource >= static_cast<int>(resources_.size())) {
          throw std::logic_error("segment references unknown resource");
        }
        auto& res = resources_[static_cast<std::size_t>(seg.resource)];
        res.ceiling = std::max(res.ceiling, task->cfg_.priority);
      }
    }
  }

  // Arm implicit alarms for periodic tasks.
  for (const auto& task : tasks_) {
    if (task->cfg_.period > 0) {
      Task* t = task.get();
      kernel_.schedule_periodic(
          started_at_ + t->cfg_.offset, t->cfg_.period,
          [this, t] { activate_internal(*t); }, sim::EventOrder::kKernel);
    }
  }

  // Arm the time-triggered schedule table.
  for (const auto& entry : table_) {
    Task* t = find_task(entry.task);
    if (t == nullptr) {
      throw std::logic_error("schedule table references unknown task: " +
                             entry.task);
    }
    kernel_.schedule_periodic(
        started_at_ + entry.offset, table_cycle_,
        [this, t] { activate_internal(*t); }, sim::EventOrder::kKernel);
  }

  // Arm partition replenishment.
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    partitions_[i].budget_remaining = partitions_[i].cfg.budget;
    kernel_.schedule_periodic(
        started_at_ + partitions_[i].cfg.period, partitions_[i].cfg.period,
        [this, i] { replenish_partition(i); }, sim::EventOrder::kKernel);
  }
}

void Ecu::activate(Task& task) {
  if (!started_) throw std::logic_error("Ecu::activate before start()");
  activate_internal(task);
}

void Ecu::activate(std::string_view task_name) {
  Task* t = find_task(task_name);
  if (t == nullptr) {
    throw std::invalid_argument("Ecu::activate: unknown task");
  }
  activate(*t);
}

Task* Ecu::find_task(std::string_view name) {
  for (const auto& t : tasks_) {
    if (t->cfg_.name == name) return t.get();
  }
  return nullptr;
}

double Ecu::utilization() const {
  const Time elapsed = kernel_.now() - started_at_;
  if (elapsed <= 0) return 0.0;
  Duration busy = busy_time_;
  if (running_ != nullptr) busy += kernel_.now() - run_start_;
  return static_cast<double>(busy) / static_cast<double>(elapsed);
}

std::uint64_t Ecu::partition_throttles(int partition) const {
  return partitions_.at(static_cast<std::size_t>(partition)).throttle_count;
}

// --- Internal machinery -----------------------------------------------------

void Ecu::activate_internal(Task& task) {
  // Arrival-rate timing protection (AUTOSAR inter-arrival monitoring).
  if (task.cfg_.min_interarrival > 0 && task.last_arrival_ >= 0 &&
      kernel_.now() - task.last_arrival_ < task.cfg_.min_interarrival) {
    ++task.arrivals_blocked_;
    trace_.emit(kernel_.now(), "task.arrival_blocked", task.cfg_.name);
    return;
  }
  task.last_arrival_ = kernel_.now();
  ++task.activations_;
  if (task.state_ == Task::State::kSuspended) {
    begin_job(task);
    dispatch();
    return;
  }
  if (task.pending_.size() < task.cfg_.max_pending_activations) {
    task.pending_.push_back(kernel_.now());
    trace_.emit(kernel_.now(), "task.activation_queued", task.cfg_.name);
  } else {
    ++task.activations_lost_;
    trace_.emit(kernel_.now(), "task.activation_lost", task.cfg_.name);
  }
}

void Ecu::begin_job(Task& task) {
  assert(task.state_ == Task::State::kSuspended);
  if (task.segments_.empty()) {
    throw std::logic_error("task has no body: " + task.cfg_.name);
  }
  task.state_ = Task::State::kReady;
  task.segment_index_ = 0;
  task.segment_started_ = false;
  task.segment_remaining_ = kUnevaluated;
  task.job_budget_remaining_ = task.cfg_.budget;
  task.activation_time_ = kernel_.now();
  Duration rel = task.cfg_.relative_deadline;
  if (rel <= 0) rel = task.cfg_.period;
  task.absolute_deadline_ =
      rel > 0 ? task.activation_time_ + rel : sim::kForever;
  ++task.job_seq_;
  trace_.emit(kernel_.now(), "task.activate", task.cfg_.name);
  // Miss detection happens AT the deadline, so starved jobs that never
  // complete are counted too. The observer fires after same-instant
  // completions, so finishing exactly on the deadline is not a miss.
  // The 16-byte {Task*, seq} capture fits std::function's small-object
  // buffer, so arming a job costs no allocation; the Ecu is reached through
  // the task's back-pointer.
  if (task.absolute_deadline_ != sim::kForever) {
    Task* t = &task;
    const std::uint64_t seq = task.job_seq_;
    task.deadline_event_ = kernel_.schedule_at(
        task.absolute_deadline_,
        [t, seq] {
          if (t->state_ != Task::State::kSuspended && t->job_seq_ == seq) {
            ++t->deadline_misses_;
            t->ecu_->trace_.emit(t->ecu_->kernel_.now(), "task.deadline_miss",
                                 t->cfg_.name);
          }
        },
        sim::EventOrder::kObserver);
  }
}

int Ecu::effective_priority(const Task& task) const {
  int prio = task.cfg_.priority;
  if (task.state_ != Task::State::kSuspended && task.segment_started_ &&
      task.segment_index_ < task.segments_.size()) {
    const int res = task.segments_[task.segment_index_].resource;
    if (res >= 0) {
      prio = std::max(prio, resources_[static_cast<std::size_t>(res)].ceiling);
    }
  }
  return prio;
}

bool Ecu::eligible(const Task& task) const {
  if (task.state_ == Task::State::kSuspended) return false;
  if (task.cfg_.partition >= 0 &&
      partitions_[static_cast<std::size_t>(task.cfg_.partition)].exhausted) {
    return false;
  }
  return true;
}

Task* Ecu::pick_next() {
  Task* best = nullptr;
  int best_prio = 0;
  for (const auto& up : tasks_) {
    Task* t = up.get();
    if (!eligible(*t)) continue;
    const int prio = effective_priority(*t);
    // Strictly-higher priority wins; the incumbent wins ties so equal
    // priorities never preempt each other (OSEK semantics).
    if (best == nullptr || prio > best_prio ||
        (prio == best_prio && t == running_)) {
      best = t;
      best_prio = prio;
    }
  }
  return best;
}

void Ecu::charge(Task& task, Duration elapsed) {
  if (elapsed <= 0) return;
  busy_time_ += elapsed;
  assert(task.segment_remaining_ >= elapsed);
  task.segment_remaining_ -= elapsed;
  if (task.cfg_.budget > 0) {
    task.job_budget_remaining_ =
        std::max<Duration>(0, task.job_budget_remaining_ - elapsed);
  }
  if (task.cfg_.partition >= 0) {
    auto& p = partitions_[static_cast<std::size_t>(task.cfg_.partition)];
    p.budget_remaining = std::max<Duration>(0, p.budget_remaining - elapsed);
  }
}

void Ecu::pause_running() {
  assert(running_ != nullptr);
  charge(*running_, kernel_.now() - run_start_);
  if (run_event_armed_) {
    kernel_.cancel(run_event_);
    run_event_armed_ = false;
  }
  running_->state_ = Task::State::kReady;
  running_ = nullptr;
}

void Ecu::arm_run_event() {
  assert(running_ != nullptr);
  Task& t = *running_;
  assert(t.segment_remaining_ >= 0);
  Duration until = t.segment_remaining_;
  if (t.cfg_.budget > 0 && t.cfg_.overrun_action != OverrunAction::kNone) {
    until = std::min(until, t.job_budget_remaining_);
  }
  if (t.cfg_.partition >= 0) {
    const auto& p = partitions_[static_cast<std::size_t>(t.cfg_.partition)];
    until = std::min(until, p.budget_remaining);
  }
  run_event_ = kernel_.schedule_in(
      until, [this] { on_run_event(); }, sim::EventOrder::kKernel);
  run_event_armed_ = true;
}

void Ecu::dispatch() {
  if (in_dispatch_) return;
  in_dispatch_ = true;
  bool charge_switch = false;  // context-switch overhead owed by the incomer
  while (true) {
    Task* best = pick_next();
    if (best != running_) {
      if (running_ != nullptr) pause_running();
      running_ = best;
      if (running_ == nullptr) break;
      running_->state_ = Task::State::kRunning;
      ++context_switches_;
      run_start_ = kernel_.now();
      if (running_->segment_started_) {
        running_->segment_remaining_ += ctx_switch_;
      } else {
        charge_switch = true;  // added once the segment is evaluated below
      }
    }
    if (running_ == nullptr) break;
    Task& t = *running_;
    if (!t.segment_started_) {
      t.segment_started_ = true;
      auto& seg = t.segments_[t.segment_index_];
      t.segment_remaining_ = seg.duration ? seg.duration() : 0;
      if (t.segment_remaining_ < 0) {
        throw std::logic_error("negative segment duration: " + t.cfg_.name);
      }
      if (charge_switch) {
        t.segment_remaining_ += ctx_switch_;
        charge_switch = false;
      }
      trace_.emit(kernel_.now(), "task.start", t.cfg_.name,
                  static_cast<std::int64_t>(t.segment_index_));
      if (seg.before) seg.before();
      continue;  // the hook may have changed the ready set; re-evaluate
    }
    if (!run_event_armed_) arm_run_event();
    break;
  }
  in_dispatch_ = false;
}

void Ecu::on_run_event() {
  run_event_armed_ = false;
  assert(running_ != nullptr);
  Task& t = *running_;
  charge(t, kernel_.now() - run_start_);
  run_start_ = kernel_.now();
  if (t.segment_remaining_ == 0) {
    run_segment_boundary(t);
  } else if (t.cfg_.budget > 0 &&
             t.cfg_.overrun_action == OverrunAction::kKillJob &&
             t.job_budget_remaining_ == 0) {
    kill_job(t, "budget");
  } else if (t.cfg_.partition >= 0) {
    auto& p = partitions_[static_cast<std::size_t>(t.cfg_.partition)];
    if (p.budget_remaining == 0 && !p.exhausted) {
      p.exhausted = true;
      ++p.throttle_count;
      trace_.emit(kernel_.now(), "partition.exhausted", p.cfg.name);
      running_->state_ = Task::State::kReady;
      running_ = nullptr;
    }
  }
  dispatch();
}

void Ecu::run_segment_boundary(Task& task) {
  auto& seg = task.segments_[task.segment_index_];
  if (seg.after) seg.after();
  ++task.segment_index_;
  if (task.segment_index_ < task.segments_.size()) {
    task.segment_started_ = false;
    task.segment_remaining_ = kUnevaluated;
    return;  // dispatch() (in caller) will start the next segment
  }
  complete_job(task);
}

void Ecu::complete_job(Task& task) {
  const Time now = kernel_.now();
  task.response_times_.add(sim::to_ms(now - task.activation_time_));
  ++task.jobs_completed_;
  // Deadline misses are detected by the observer armed in begin_job.
  trace_.emit(now, "task.complete", task.cfg_.name,
              now - task.activation_time_);
  if (task.completion_cb_) task.completion_cb_(task.activation_time_, now);
  task.state_ = Task::State::kSuspended;
  // The job left the system before (or exactly at) its deadline: retire the
  // miss observer instead of letting it fire as a dead event. Cancelling a
  // handle whose event already fired (miss already counted) is a no-op.
  kernel_.cancel(task.deadline_event_);
  if (running_ == &task) running_ = nullptr;
  if (!task.pending_.empty()) {
    task.pending_.erase(task.pending_.begin());
    begin_job(task);
  }
}

void Ecu::kill_job(Task& task, std::string_view reason) {
  ++task.jobs_killed_;
  trace_.emit(kernel_.now(), "task.kill", task.cfg_.name, 0, reason);
  task.state_ = Task::State::kSuspended;
  kernel_.cancel(task.deadline_event_);  // stale-safe if it already fired
  if (running_ == &task) running_ = nullptr;
  if (!task.pending_.empty()) {
    task.pending_.erase(task.pending_.begin());
    begin_job(task);
  }
}

void Ecu::replenish_partition(std::size_t index) {
  auto& p = partitions_[index];
  p.budget_remaining = p.cfg.budget;
  if (p.exhausted) {
    p.exhausted = false;
    trace_.emit(kernel_.now(), "partition.replenish", p.cfg.name);
  }
  dispatch();
}

}  // namespace orte::os
