// OSEK/AUTOSAR-OS-style ECU kernel on top of the discrete-event simulator.
//
// Supported (cf. DESIGN.md S2):
//  * preemptive fixed-priority scheduling (BCC1-like basic tasks),
//  * periodic activation via implicit alarms (period + offset) and explicit
//    event activation (Ecu::activate) for chained / bus-triggered tasks,
//  * immediate priority-ceiling resources (OSEK OSEK-PCP) at segment
//    granularity,
//  * time-triggered dispatch via schedule tables,
//  * timing isolation: per-job execution budgets (kill / no action) and
//    partition budgets with periodic replenishment (throttle) — the
//    "resource reservation" policies the paper calls for in §1/§2,
//  * deadline and response-time monitoring with trace emission.
//
// Task bodies are modelled as ordered *segments*: each consumes simulated CPU
// time and can run zero-time actions at its start and end (RTE reads/writes,
// COM sends, mode requests). This keeps the simulation deterministic without
// threads or coroutines.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace orte::os {

using sim::Duration;
using sim::Time;

class Ecu;
class Task;

/// What to do when a job exhausts its execution budget.
enum class OverrunAction {
  kNone,     // budgets not enforced (baseline: no timing isolation)
  kKillJob,  // terminate the job, report, next activation runs normally
};

/// A contiguous chunk of task execution.
struct Segment {
  /// Simulated CPU time this segment consumes for one job. Re-evaluated per
  /// activation so execution-time variation / fault injection can be modelled.
  std::function<Duration()> duration;
  /// Zero-time action at segment start (e.g. RTE implicit read).
  std::function<void()> before;
  /// Zero-time action at segment completion (e.g. RTE implicit write, send).
  std::function<void()> after;
  /// If >= 0: segment runs holding the resource with this id (immediate
  /// priority ceiling applies for the whole segment).
  int resource = -1;
};

struct TaskConfig {
  std::string name;
  int priority = 0;  ///< Higher value = higher priority.
  /// Period for autonomous periodic activation; 0 = event-activated only.
  Duration period = 0;
  Time offset = 0;  ///< First activation instant for periodic tasks.
  /// Relative deadline; 0 means "== period" (or unbounded for event tasks).
  Duration relative_deadline = 0;
  /// Per-job execution budget; 0 = unlimited.
  Duration budget = 0;
  OverrunAction overrun_action = OverrunAction::kNone;
  /// Partition id from Ecu::add_partition, or -1 for none.
  int partition = -1;
  /// OSEK multiple-activation limit: how many pending activations may queue.
  std::size_t max_pending_activations = 1;
  /// AUTOSAR timing protection, arrival half: activations closer together
  /// than this are rejected (counted + traced as "task.arrival_blocked").
  /// 0 disables. Complements `budget` (the execution half): budgets stop a
  /// task from running too LONG, inter-arrival protection stops an event
  /// source from triggering it too OFTEN.
  Duration min_interarrival = 0;
};

struct PartitionConfig {
  std::string name;
  Duration budget = 0;  ///< CPU time available per replenishment period.
  Duration period = 0;  ///< Replenishment period.
};

/// One entry of a time-triggered schedule table.
struct TableEntry {
  Duration offset = 0;  ///< Offset within the table cycle.
  std::string task;     ///< Task to activate at this expiry point.
};

class Task {
 public:
  explicit Task(TaskConfig cfg) : cfg_(std::move(cfg)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  const TaskConfig& config() const { return cfg_; }
  const std::string& name() const { return cfg_.name; }

  /// Append an execution segment; segments run in order within each job.
  void add_segment(Segment seg) { segments_.push_back(std::move(seg)); }

  /// Convenience: single fixed-duration segment with completion action.
  void set_body(Duration wcet, std::function<void()> on_complete = {}) {
    segments_.clear();
    segments_.push_back(
        Segment{[wcet] { return wcet; }, {}, std::move(on_complete), -1});
  }

  /// Convenience: single variable-duration segment.
  void set_body(std::function<Duration()> duration,
                std::function<void()> on_complete = {}) {
    segments_.clear();
    segments_.push_back(
        Segment{std::move(duration), {}, std::move(on_complete), -1});
  }

  /// Invoked at each job completion with (activation, completion) instants.
  void on_complete(std::function<void(Time, Time)> cb) {
    completion_cb_ = std::move(cb);
  }

  /// Wrap every segment's execution time: on each job, `fn` receives the
  /// nominal duration the segment would have consumed and returns the one it
  /// actually consumes. This is the task-plane fault-injection seam (WCET
  /// overrun, execution jitter, crash-to-zero) — wraps compose, generated
  /// task bodies stay untouched. Call before the first activation.
  void transform_durations(std::function<Duration(Duration)> fn) {
    for (auto& seg : segments_) {
      if (!seg.duration) continue;
      seg.duration = [base = std::move(seg.duration), fn] {
        return fn(base());
      };
    }
  }

  // --- Observability -------------------------------------------------------
  const sim::Stats& response_times() const { return response_times_; }
  std::uint64_t jobs_completed() const { return jobs_completed_; }
  std::uint64_t jobs_killed() const { return jobs_killed_; }
  std::uint64_t deadline_misses() const { return deadline_misses_; }
  std::uint64_t activations_lost() const { return activations_lost_; }
  std::uint64_t activations() const { return activations_; }
  std::uint64_t arrivals_blocked() const { return arrivals_blocked_; }

 private:
  friend class Ecu;

  enum class State { kSuspended, kReady, kRunning };

  TaskConfig cfg_;
  Ecu* ecu_ = nullptr;  ///< Owning ECU (set at add_task); lets per-job
                        ///< observers capture only {Task*, seq} and stay
                        ///< within std::function's small-buffer size.
  std::vector<Segment> segments_;
  std::function<void(Time, Time)> completion_cb_;

  // --- Job runtime state (valid while State != kSuspended) -----------------
  State state_ = State::kSuspended;
  std::size_t segment_index_ = 0;
  Duration segment_remaining_ = 0;
  bool segment_started_ = false;  ///< `before` hook already ran.
  Duration job_budget_remaining_ = 0;
  Time activation_time_ = 0;
  Time absolute_deadline_ = sim::kForever;
  std::uint64_t job_seq_ = 0;  ///< Distinguishes jobs for deadline checks.
  /// Pending deadline-miss observer of the current job; cancelled when the
  /// job leaves the system before its deadline (O(1), generation-safe).
  sim::EventHandle deadline_event_;
  std::vector<Time> pending_;  ///< Queued activation instants.

  // --- Statistics -----------------------------------------------------------
  sim::Stats response_times_;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_killed_ = 0;
  std::uint64_t deadline_misses_ = 0;
  std::uint64_t activations_lost_ = 0;
  std::uint64_t activations_ = 0;
  std::uint64_t arrivals_blocked_ = 0;
  Time last_arrival_ = -1;
};

/// A simulated ECU: one CPU, one scheduler, a set of tasks and partitions.
class Ecu {
 public:
  Ecu(sim::Kernel& kernel, sim::Trace& trace, std::string name);
  Ecu(const Ecu&) = delete;
  Ecu& operator=(const Ecu&) = delete;

  const std::string& name() const { return name_; }
  sim::Kernel& kernel() { return kernel_; }
  sim::Trace& trace() { return trace_; }

  /// Register a task. Must be called before start().
  Task& add_task(TaskConfig cfg);

  /// Register a partition (shared CPU reservation); returns its id.
  int add_partition(PartitionConfig cfg);

  /// Register a priority-ceiling resource; returns its id. Ceilings are
  /// computed automatically at start() from segment usage.
  int add_resource(std::string name);

  /// Install a time-triggered schedule table (activations at fixed offsets,
  /// repeating every `cycle`).
  void set_schedule_table(std::vector<TableEntry> entries, Duration cycle);

  /// Fixed per-dispatch context-switch overhead (default 0). Charged to the
  /// incoming task whenever the running task changes.
  void set_context_switch_overhead(Duration d) { ctx_switch_ = d; }

  /// Compute ceilings, arm alarms and the schedule table. Call once, before
  /// Kernel::run_until.
  void start();

  /// Event-activate a task (chained activation, bus RX, application event).
  void activate(Task& task);
  void activate(std::string_view task_name);

  Task* find_task(std::string_view name);
  const std::vector<std::unique_ptr<Task>>& tasks() const { return tasks_; }

  /// Fraction of elapsed time the CPU was busy since start().
  double utilization() const;
  std::uint64_t context_switches() const { return context_switches_; }
  std::uint64_t partition_throttles(int partition) const;

 private:
  struct Partition {
    PartitionConfig cfg;
    Duration budget_remaining = 0;
    bool exhausted = false;
    std::uint64_t throttle_count = 0;
  };
  struct Resource {
    std::string name;
    int ceiling = std::numeric_limits<int>::min();
  };

  sim::Kernel& kernel_;
  sim::Trace& trace_;
  std::string name_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<Partition> partitions_;
  std::vector<Resource> resources_;
  std::vector<TableEntry> table_;
  Duration table_cycle_ = 0;
  Duration ctx_switch_ = 0;
  bool started_ = false;

  Task* running_ = nullptr;
  Time run_start_ = 0;  ///< When the running task last got the CPU.
  sim::EventHandle run_event_;  ///< Pending completion/budget-expiry event.
  bool run_event_armed_ = false;
  bool in_dispatch_ = false;
  Time started_at_ = 0;
  Duration busy_time_ = 0;
  std::uint64_t context_switches_ = 0;

  void activate_internal(Task& task);
  void begin_job(Task& task);
  void dispatch();
  void pause_running();
  void arm_run_event();
  void on_run_event();
  void charge(Task& task, Duration elapsed);
  void run_segment_boundary(Task& task);  // completion of a run-chunk
  void complete_job(Task& task);
  void kill_job(Task& task, std::string_view reason);
  int effective_priority(const Task& task) const;
  bool eligible(const Task& task) const;
  Task* pick_next();
  void replenish_partition(std::size_t index);
};

}  // namespace orte::os
