#include "net/bus_stats.hpp"

namespace orte::net {

void BusStats::record_tx(sim::Time start, sim::Time end, bool delivered) {
  busy_time_ += end - start;
  if (delivered) {
    ++frames_delivered_;
  } else {
    ++frames_corrupted_;
  }
}

}  // namespace orte::net
