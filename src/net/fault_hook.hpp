// Shared network fault-injection hook (fi layer entry point into the bus
// substrates).
//
// Every bus simulator offers one optional FaultHook called at its delivery
// point, once per frame that survived the protocol's own error model. The
// hook decides the frame's fate (drop it, delay its delivery where the
// protocol's timing allows, or pass it on) and may mutate the frame in
// place — payload corruption is "hook rewrites frame.payload". Keeping the
// hook at the net level means one fault catalog drives CAN, FlexRay and TTP
// alike without forking any bus model.
#pragma once

#include <functional>

#include "net/frame.hpp"
#include "sim/time.hpp"

namespace orte::net {

/// Verdict of a fault hook over one frame about to be delivered.
struct FaultVerdict {
  bool drop = false;
  /// Extra delivery latency. Honored by event-triggered buses (CAN); TDMA
  /// buses (FlexRay/TTP) ignore it — their slot structure pins delivery
  /// instants, which is exactly the containment property under test.
  sim::Duration delay = 0;
};

/// Installed via <Bus>::set_fault_hook(); called once per delivered frame.
/// The hook may mutate the frame (corruption) before returning its verdict.
using FaultHook = std::function<FaultVerdict(Frame&)>;

}  // namespace orte::net
