// Per-bus accounting shared by all protocol simulators.
#pragma once

#include <cstdint>

#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace orte::net {

class BusStats {
 public:
  /// Record one completed (or corrupted) transmission occupying the medium
  /// over [start, end).
  void record_tx(sim::Time start, sim::Time end, bool delivered);
  void record_queueing_delay(sim::Duration d) {
    queueing_delay_.add(sim::to_us(d));
  }
  void record_drop() { ++frames_dropped_; }

  [[nodiscard]] std::uint64_t frames_delivered() const {
    return frames_delivered_;
  }
  [[nodiscard]] std::uint64_t frames_corrupted() const {
    return frames_corrupted_;
  }
  [[nodiscard]] std::uint64_t frames_dropped() const {
    return frames_dropped_;
  }
  [[nodiscard]] sim::Duration busy_time() const { return busy_time_; }
  /// Bus utilization over [0, now].
  [[nodiscard]] double utilization(sim::Time now) const {
    return now > 0 ? static_cast<double>(busy_time_) / static_cast<double>(now)
                   : 0.0;
  }
  /// Queueing delays in microseconds.
  [[nodiscard]] const sim::Stats& queueing_delay() const {
    return queueing_delay_;
  }

 private:
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t frames_corrupted_ = 0;
  std::uint64_t frames_dropped_ = 0;
  sim::Duration busy_time_ = 0;
  sim::Stats queueing_delay_;
};

}  // namespace orte::net
