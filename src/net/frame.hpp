// Common frame and controller abstractions shared by the CAN, FlexRay, TTP
// and NoC substrates.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace orte::net {

using sim::Duration;
using sim::Time;

/// Immutable, cheaply-copyable frame payload. A frame fans out to every
/// receiving controller and often gets retained by several BSW layers
/// (COM staging, gateways, traces); copying a Payload bumps a refcount
/// instead of reallocating the byte buffer, so N-receiver delivery does no
/// per-receiver allocation. The bytes are frozen at construction — mutate by
/// building a new vector and reassigning.
class Payload {
 public:
  Payload() = default;
  Payload(std::vector<std::uint8_t> bytes)  // NOLINT: implicit by design
      : data_(bytes.empty()
                  ? nullptr
                  : std::make_shared<const std::vector<std::uint8_t>>(
                        std::move(bytes))) {}
  Payload(std::initializer_list<std::uint8_t> bytes)
      : Payload(std::vector<std::uint8_t>(bytes)) {}

  /// Replace the contents with `count` copies of `value` (vector idiom).
  void assign(std::size_t count, std::uint8_t value) {
    *this = Payload(std::vector<std::uint8_t>(count, value));
  }

  [[nodiscard]] std::size_t size() const { return data_ ? data_->size() : 0; }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    static const std::vector<std::uint8_t> kEmpty;
    return data_ ? *data_ : kEmpty;
  }
  // NOLINTNEXTLINE: implicit by design — lets vector-typed sinks accept it.
  operator const std::vector<std::uint8_t>&() const { return bytes(); }
  std::uint8_t operator[](std::size_t i) const { return bytes()[i]; }
  [[nodiscard]] auto begin() const { return bytes().begin(); }
  [[nodiscard]] auto end() const { return bytes().end(); }

  /// True when both payloads share the same underlying buffer (zero-copy
  /// check for tests/benches; byte equality is operator==).
  [[nodiscard]] bool shares_buffer_with(const Payload& other) const {
    return data_ == other.data_;
  }
  /// Holders of the underlying buffer (diagnostics; 0 for the empty payload).
  [[nodiscard]] long use_count() const { return data_.use_count(); }

  friend bool operator==(const Payload& a, const Payload& b) {
    return a.bytes() == b.bytes();
  }
  friend bool operator==(const Payload& a,
                         const std::vector<std::uint8_t>& b) {
    return a.bytes() == b;
  }
  friend bool operator==(const std::vector<std::uint8_t>& a,
                         const Payload& b) {
    return a == b.bytes();
  }

 private:
  std::shared_ptr<const std::vector<std::uint8_t>> data_;
};

/// A network frame at the data-link level. `id` is protocol-specific: CAN
/// identifier (lower = higher priority), FlexRay frame/slot id, TTP slot id,
/// NoC flow id. Copying a Frame shares the payload buffer (see Payload).
struct Frame {
  std::uint32_t id = 0;
  std::string name;  ///< For tracing; not on the wire.
  Payload payload;
  int source = -1;        ///< Sending node index.
  Time enqueued_at = 0;   ///< When the sender handed it to its controller.
  Time sent_at = 0;       ///< When transmission started on the medium.
  Time delivered_at = 0;  ///< When reception completed at listeners.

  [[nodiscard]] std::size_t size() const { return payload.size(); }
};

using RxCallback = std::function<void(const Frame&)>;

/// Interface every protocol controller implements towards the host
/// (ECU / IP core) software.
class Controller {
 public:
  virtual ~Controller() = default;

  /// Queue a frame for transmission according to the protocol's arbitration.
  virtual void send(Frame frame) = 0;

  /// Register a listener invoked on every received frame.
  void on_receive(RxCallback cb) { rx_callbacks_.push_back(std::move(cb)); }

 protected:
  void notify_receive(const Frame& frame) const {
    for (const auto& cb : rx_callbacks_) cb(frame);
  }

 private:
  std::vector<RxCallback> rx_callbacks_;
};

}  // namespace orte::net
