// Common frame and controller abstractions shared by the CAN, FlexRay, TTP
// and NoC substrates.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace orte::net {

using sim::Duration;
using sim::Time;

/// A network frame at the data-link level. `id` is protocol-specific: CAN
/// identifier (lower = higher priority), FlexRay frame/slot id, TTP slot id,
/// NoC flow id.
struct Frame {
  std::uint32_t id = 0;
  std::string name;  ///< For tracing; not on the wire.
  std::vector<std::uint8_t> payload;
  int source = -1;        ///< Sending node index.
  Time enqueued_at = 0;   ///< When the sender handed it to its controller.
  Time sent_at = 0;       ///< When transmission started on the medium.
  Time delivered_at = 0;  ///< When reception completed at listeners.

  [[nodiscard]] std::size_t size() const { return payload.size(); }
};

using RxCallback = std::function<void(const Frame&)>;

/// Interface every protocol controller implements towards the host
/// (ECU / IP core) software.
class Controller {
 public:
  virtual ~Controller() = default;

  /// Queue a frame for transmission according to the protocol's arbitration.
  virtual void send(Frame frame) = 0;

  /// Register a listener invoked on every received frame.
  void on_receive(RxCallback cb) { rx_callbacks_.push_back(std::move(cb)); }

 protected:
  void notify_receive(const Frame& frame) const {
    for (const auto& cb : rx_callbacks_) cb(frame);
  }

 private:
  std::vector<RxCallback> rx_callbacks_;
};

}  // namespace orte::net
