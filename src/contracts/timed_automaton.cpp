#include "contracts/timed_automaton.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <stdexcept>

namespace orte::contracts {

int TimedAutomaton::add_location(std::string name, bool error) {
  location_names_.push_back(std::move(name));
  error_.push_back(error);
  return static_cast<int>(location_names_.size()) - 1;
}

int TimedAutomaton::add_clock(std::string name) {
  clock_names_.push_back(std::move(name));
  return static_cast<int>(clock_names_.size()) - 1;
}

void TimedAutomaton::add_edge(int from, int to, std::string label,
                              std::vector<Constraint> guards,
                              std::vector<int> resets) {
  if (from < 0 || from >= static_cast<int>(location_names_.size()) ||
      to < 0 || to >= static_cast<int>(location_names_.size())) {
    throw std::invalid_argument("edge references unknown location");
  }
  edges_.push_back(
      Edge{from, to, std::move(label), std::move(guards), std::move(resets)});
}

int TimedAutomaton::location_id(std::string_view name) const {
  for (std::size_t i = 0; i < location_names_.size(); ++i) {
    if (location_names_[i] == name) return static_cast<int>(i);
  }
  throw std::invalid_argument("unknown location: " + std::string(name));
}

const std::string& TimedAutomaton::location_name(int id) const {
  return location_names_.at(static_cast<std::size_t>(id));
}

bool TimedAutomaton::satisfied(const Constraint& c,
                               const std::vector<std::int64_t>& clocks) const {
  const std::int64_t v = clocks.at(static_cast<std::size_t>(c.clock));
  switch (c.op) {
    case Constraint::Op::kLe: return v <= c.bound;
    case Constraint::Op::kLt: return v < c.bound;
    case Constraint::Op::kGe: return v >= c.bound;
    case Constraint::Op::kGt: return v > c.bound;
    case Constraint::Op::kEq: return v == c.bound;
  }
  return false;
}

std::int64_t TimedAutomaton::max_constant() const {
  std::int64_t k = 0;
  for (const auto& e : edges_) {
    for (const auto& g : e.guards) k = std::max(k, g.bound);
  }
  return k;
}

bool TimedAutomaton::reachable(int target) const {
  if (location_names_.empty()) return false;
  const std::int64_t clamp = max_constant() + 1;
  using State = std::pair<int, std::vector<std::int64_t>>;
  std::set<State> seen;
  std::deque<State> frontier;
  frontier.push_back({0, std::vector<std::int64_t>(clock_names_.size(), 0)});
  seen.insert(frontier.front());
  while (!frontier.empty()) {
    auto [loc, clocks] = frontier.front();
    frontier.pop_front();
    if (loc == target) return true;
    // Delay step: advance every clock by one unit (clamped).
    {
      std::vector<std::int64_t> next = clocks;
      for (auto& c : next) c = std::min(c + 1, clamp);
      State s{loc, std::move(next)};
      if (seen.insert(s).second) frontier.push_back(std::move(s));
    }
    // Discrete steps.
    for (const auto& e : edges_) {
      if (e.from != loc) continue;
      bool ok = true;
      for (const auto& g : e.guards) {
        if (!satisfied(g, clocks)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      std::vector<std::int64_t> next = clocks;
      for (int r : e.resets) next.at(static_cast<std::size_t>(r)) = 0;
      State s{e.to, std::move(next)};
      if (seen.insert(s).second) frontier.push_back(std::move(s));
    }
  }
  return false;
}

bool TimedAutomaton::error_reachable() const {
  for (std::size_t i = 0; i < error_.size(); ++i) {
    if (error_[i] && reachable(static_cast<int>(i))) return true;
  }
  return false;
}

bool TimedAutomaton::Stepper::step(std::int64_t delay,
                                   std::string_view label) {
  std::vector<std::int64_t> advanced = clocks_;
  for (auto& c : advanced) c += delay;
  const Edge* taken = nullptr;
  for (const auto& e : ta_->edges_) {
    if (e.from != location_ || e.label != label) continue;
    bool ok = true;
    for (const auto& g : e.guards) {
      if (!ta_->satisfied(g, advanced)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      taken = &e;
      break;
    }
  }
  if (taken == nullptr) return false;  // stuck: pre-event state kept
  for (int r : taken->resets) advanced.at(static_cast<std::size_t>(r)) = 0;
  clocks_ = std::move(advanced);
  location_ = taken->to;
  return !in_error();
}

TimedAutomaton::RunResult TimedAutomaton::run(
    const std::vector<std::pair<std::int64_t, std::string>>& word) const {
  RunResult result;
  Stepper stepper(*this);
  for (std::size_t i = 0; i < word.size(); ++i) {
    const auto& [delay, label] = word[i];
    if (!stepper.step(delay, label)) {
      result.accepted = false;
      result.failed_at = i;
      result.final_location = stepper.location();
      return result;
    }
  }
  result.final_location = stepper.location();
  return result;
}

}  // namespace orte::contracts
