// Rich component interfaces (§3): contract-based specifications.
//
// A contract pairs *assumptions* (what the component requires from its
// environment, per input flow) with *guarantees* (what it promises on its
// output flows), plus a *vertical assumption* capturing the platform
// resources it needs (CPU share, memory, bus bandwidth) annotated with a
// confidence level — "reflecting design experience on the ability to meet
// e.g. expected resource constraints".
//
// Flow specifications carry a value range and timing attributes (period,
// jitter, latency); compatibility of a connection means the source guarantee
// *implies* the sink assumption (range containment, timing refinement).
// Dominance (refinement between contracts) is: weaker-or-equal assumptions
// and stronger-or-equal guarantees.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "contracts/timed_automaton.hpp"
#include "sim/time.hpp"

namespace orte::contracts {

using sim::Duration;

/// Closed integer interval [lo, hi].
struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  [[nodiscard]] bool valid() const { return lo <= hi; }
  [[nodiscard]] bool contains(const Interval& other) const {
    return lo <= other.lo && other.hi <= hi;
  }
  [[nodiscard]] bool contains(std::int64_t v) const {
    return lo <= v && v <= hi;
  }
  bool operator==(const Interval&) const = default;
};

/// Timing attributes of a flow. Zero fields mean "unconstrained".
struct TimingSpec {
  Duration period = 0;   ///< Update period of the flow.
  Duration jitter = 0;   ///< Max deviation from the nominal instants.
  Duration latency = 0;  ///< Max age of the value when observed / offered.
  bool operator==(const TimingSpec&) const = default;
};

/// Specification of one named flow (a port-level data stream).
struct FlowSpec {
  std::string flow;
  Interval range{INT64_MIN, INT64_MAX};
  TimingSpec timing;
  /// Confidence the specifier attaches to this spec, in (0, 1].
  double confidence = 1.0;
};

/// Vertical (resource) assumption towards the execution platform.
struct ResourceSpec {
  double cpu_utilization = 0.0;  ///< Fraction of one processing node.
  std::size_t memory_bytes = 0;
  double bus_bandwidth_bps = 0.0;
  double confidence = 1.0;
};

/// Behavioural contract (§3 "extended automata model"): a timed automaton
/// observing the component's flow events. Each binding maps a flow name
/// ("port" or "port.element", same convention as FlowSpec) to the automaton
/// label fired when that flow updates; `tick` scales automaton time units to
/// simulation nanoseconds so the same automaton checks recorded words
/// (run()) and live traces (rv::AutomatonMonitor).
struct BehaviourSpec {
  TimedAutomaton automaton;
  struct LabelBinding {
    std::string flow;
    std::string label;
  };
  std::vector<LabelBinding> bindings;
  Duration tick = 1;  ///< Simulation ns per automaton time unit.
  double confidence = 1.0;
};

struct Contract {
  std::string name;
  std::vector<FlowSpec> assumptions;  ///< Indexed by input flow name.
  std::vector<FlowSpec> guarantees;   ///< Indexed by output flow name.
  ResourceSpec vertical;
  /// Optional behavioural contract, enforced online by the rv layer.
  std::optional<BehaviourSpec> behaviour;

  [[nodiscard]] const FlowSpec* assumption(std::string_view flow) const;
  [[nodiscard]] const FlowSpec* guarantee(std::string_view flow) const;
};

/// Outcome of a check: ok plus human-readable violations and the minimum
/// confidence of every spec the verdict rests on (§3: "system-level analysis
/// up to a degree of confidence characterized by the collection of vertical
/// assumptions").
struct CheckResult {
  bool ok = true;
  double confidence = 1.0;
  std::vector<std::string> violations;

  void merge(const CheckResult& other);
  void violation(std::string msg);
};

/// Does guarantee `g` (source) imply assumption `a` (sink)?
///  * value: g.range ⊆ a.range
///  * period: g.period <= a.period (faster or equal updates) when a demands
///  * jitter/latency: g <= a when a demands
CheckResult satisfies(const FlowSpec& g, const FlowSpec& a);

/// Refinement: `refined` can replace `abstract` in any context —
/// assumptions no stronger, guarantees no weaker.
bool dominates(const Contract& refined, const Contract& abstract);

}  // namespace orte::contracts
