#include "contracts/contract.hpp"

#include <algorithm>

namespace orte::contracts {

const FlowSpec* Contract::assumption(std::string_view flow) const {
  for (const auto& a : assumptions) {
    if (a.flow == flow) return &a;
  }
  return nullptr;
}

const FlowSpec* Contract::guarantee(std::string_view flow) const {
  for (const auto& g : guarantees) {
    if (g.flow == flow) return &g;
  }
  return nullptr;
}

void CheckResult::merge(const CheckResult& other) {
  ok = ok && other.ok;
  confidence = std::min(confidence, other.confidence);
  violations.insert(violations.end(), other.violations.begin(),
                    other.violations.end());
}

void CheckResult::violation(std::string msg) {
  ok = false;
  violations.push_back(std::move(msg));
}

CheckResult satisfies(const FlowSpec& g, const FlowSpec& a) {
  CheckResult r;
  r.confidence = std::min(g.confidence, a.confidence);
  if (!a.range.contains(g.range)) {
    r.violation("flow " + a.flow + ": guaranteed range [" +
                std::to_string(g.range.lo) + "," + std::to_string(g.range.hi) +
                "] exceeds assumed range [" + std::to_string(a.range.lo) +
                "," + std::to_string(a.range.hi) + "]");
  }
  // For each timing bound the sink demands, the source must offer a bound at
  // least as tight; an unspecified (0) offer cannot discharge a demand.
  const auto check_bound = [&](Duration demanded, Duration offered,
                               const char* what) {
    if (demanded > 0 && (offered == 0 || offered > demanded)) {
      r.violation("flow " + a.flow + ": guaranteed " + what + " " +
                  std::to_string(offered) + "ns does not meet assumed " +
                  std::to_string(demanded) + "ns");
    }
  };
  check_bound(a.timing.period, g.timing.period, "period");
  check_bound(a.timing.jitter, g.timing.jitter, "jitter");
  check_bound(a.timing.latency, g.timing.latency, "latency");
  return r;
}

namespace {
/// spec `s` is weaker than or equal to `t` (as an assumption): every
/// environment satisfying t also satisfies s.
bool weaker_or_equal(const FlowSpec& s, const FlowSpec& t) {
  // Wider accepted range, larger-or-unconstrained timing demands.
  if (!s.range.contains(t.range)) return false;
  const auto weaker_bound = [](Duration mine, Duration theirs) {
    // 0 = unconstrained = weakest.
    if (mine == 0) return true;
    if (theirs == 0) return false;
    return mine >= theirs;
  };
  return weaker_bound(s.timing.period, t.timing.period) &&
         weaker_bound(s.timing.jitter, t.timing.jitter) &&
         weaker_bound(s.timing.latency, t.timing.latency);
}

/// spec `s` is stronger than or equal to `t` (as a guarantee).
bool stronger_or_equal(const FlowSpec& s, const FlowSpec& t) {
  if (!t.range.contains(s.range)) return false;
  const auto stronger_bound = [](Duration mine, Duration theirs) {
    if (theirs == 0) return true;  // nothing promised by the abstract side
    if (mine == 0) return false;   // abstract promises, refined does not
    return mine <= theirs;
  };
  return stronger_bound(s.timing.period, t.timing.period) &&
         stronger_bound(s.timing.jitter, t.timing.jitter) &&
         stronger_bound(s.timing.latency, t.timing.latency);
}
}  // namespace

bool dominates(const Contract& refined, const Contract& abstract) {
  // Every abstract assumption must be matched by a weaker-or-equal refined
  // assumption on the same flow (the refined component asks for no more)...
  for (const auto& a_abs : abstract.assumptions) {
    const FlowSpec* a_ref = refined.assumption(a_abs.flow);
    if (a_ref == nullptr) continue;  // refined assumes nothing: weaker
    if (!weaker_or_equal(*a_ref, a_abs)) return false;
  }
  // ...and a refined assumption on a flow the abstract side left free is a
  // strengthening, hence forbidden.
  for (const auto& a_ref : refined.assumptions) {
    if (abstract.assumption(a_ref.flow) == nullptr) return false;
  }
  // Every abstract guarantee must be met or exceeded by the refinement.
  for (const auto& g_abs : abstract.guarantees) {
    const FlowSpec* g_ref = refined.guarantee(g_abs.flow);
    if (g_ref == nullptr) return false;
    if (!stronger_or_equal(*g_ref, g_abs)) return false;
  }
  return true;
}

}  // namespace orte::contracts
