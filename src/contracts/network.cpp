#include "contracts/network.hpp"

#include <stdexcept>

namespace orte::contracts {

void ContractNetwork::add_component(Contract contract) {
  const std::string name = contract.name;
  if (!components_.emplace(name, std::move(contract)).second) {
    throw std::invalid_argument("duplicate component contract: " + name);
  }
}

void ContractNetwork::connect(std::string from_component,
                              std::string from_flow, std::string to_component,
                              std::string to_flow) {
  (void)component(from_component);  // validation: throws on unknown
  (void)component(to_component);
  connections_.push_back(Connection{std::move(from_component),
                                    std::move(from_flow),
                                    std::move(to_component),
                                    std::move(to_flow)});
}

const Contract& ContractNetwork::component(std::string_view name) const {
  auto it = components_.find(name);
  if (it == components_.end()) {
    throw std::invalid_argument("unknown component contract: " +
                                std::string(name));
  }
  return it->second;
}

CheckResult ContractNetwork::check_compatibility() const {
  CheckResult result;
  for (const auto& conn : connections_) {
    const Contract& src = component(conn.from_component);
    const Contract& dst = component(conn.to_component);
    const FlowSpec* g = src.guarantee(conn.from_flow);
    const FlowSpec* a = dst.assumption(conn.to_flow);
    if (g == nullptr) {
      result.violation("connection " + conn.from_component + "." +
                       conn.from_flow + " -> " + conn.to_component + "." +
                       conn.to_flow + ": source guarantees nothing");
      continue;
    }
    if (a == nullptr) continue;  // sink assumes nothing: trivially ok
    CheckResult one = satisfies(*g, *a);
    if (!one.ok) {
      // Prefix violations with the connection for diagnosis.
      for (auto& v : one.violations) {
        v = conn.from_component + " -> " + conn.to_component + ": " + v;
      }
    }
    result.merge(one);
  }
  return result;
}

Duration ContractNetwork::end_to_end_latency(
    const std::vector<std::string>& chain) const {
  Duration total = 0;
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    // Find the connection chain[i] -> chain[i+1] and use the source-side
    // guaranteed latency on that flow.
    const Connection* found = nullptr;
    for (const auto& conn : connections_) {
      if (conn.from_component == chain[i] &&
          conn.to_component == chain[i + 1]) {
        found = &conn;
        break;
      }
    }
    if (found == nullptr) {
      throw std::invalid_argument("chain is not connected: " + chain[i] +
                                  " -> " + chain[i + 1]);
    }
    const FlowSpec* g = component(chain[i]).guarantee(found->from_flow);
    if (g == nullptr || g->timing.latency == 0) return -1;
    total += g->timing.latency;
  }
  return total;
}

CheckResult ContractNetwork::check_vertical(
    const std::map<std::string, std::string>& mapping,
    const std::vector<NodeCapacity>& nodes) const {
  CheckResult result;
  std::map<std::string, double> cpu;
  std::map<std::string, std::size_t> mem;
  double bus = 0.0;
  for (const auto& [name, contract] : components_) {
    auto mit = mapping.find(name);
    if (mit == mapping.end()) {
      result.violation("component " + name + " is unmapped");
      continue;
    }
    cpu[mit->second] += contract.vertical.cpu_utilization;
    mem[mit->second] += contract.vertical.memory_bytes;
    bus += contract.vertical.bus_bandwidth_bps;
    result.confidence =
        std::min(result.confidence, contract.vertical.confidence);
  }
  double bus_capacity = 0.0;
  for (const auto& node : nodes) {
    if (cpu[node.name] > node.cpu) {
      result.violation("node " + node.name + ": cpu demand " +
                       std::to_string(cpu[node.name]) + " exceeds capacity " +
                       std::to_string(node.cpu));
    }
    if (mem[node.name] > node.memory_bytes) {
      result.violation("node " + node.name + ": memory demand exceeds " +
                       std::to_string(node.memory_bytes) + " bytes");
    }
    bus_capacity = std::max(bus_capacity, node.bus_bandwidth_bps);
  }
  if (bus_capacity > 0.0 && bus > bus_capacity) {
    result.violation("shared bus: bandwidth demand " + std::to_string(bus) +
                     " bps exceeds budget " + std::to_string(bus_capacity));
  }
  // Components mapped to undeclared nodes.
  for (const auto& [comp, node] : mapping) {
    bool known = false;
    for (const auto& n : nodes) {
      if (n.name == node) known = true;
    }
    if (!known) {
      result.violation("component " + comp + " mapped to unknown node " +
                       node);
    }
  }
  return result;
}

Contract ContractNetwork::compose(std::string name) const {
  Contract composite;
  composite.name = std::move(name);
  composite.vertical.confidence = 1.0;

  const auto fed_internally = [this](const std::string& comp,
                                     const std::string& flow) {
    for (const auto& c : connections_) {
      if (c.to_component == comp && c.to_flow == flow) return true;
    }
    return false;
  };
  const auto consumed_internally = [this](const std::string& comp,
                                          const std::string& flow) {
    for (const auto& c : connections_) {
      if (c.from_component == comp && c.from_flow == flow) return true;
    }
    return false;
  };
  // Upstream latency feeding component `comp` (walk the chain backwards,
  // summing the guaranteed latencies of internal links). Returns -1 when
  // some internal link guarantees no latency bound.
  const auto upstream_latency = [this](const std::string& comp) -> Duration {
    Duration total = 0;
    std::string cursor = comp;
    for (std::size_t hops = 0; hops <= components_.size(); ++hops) {
      const Connection* in = nullptr;
      for (const auto& c : connections_) {
        if (c.to_component == cursor) {
          in = &c;
          break;
        }
      }
      if (in == nullptr) return total;
      const FlowSpec* g = component(in->from_component).guarantee(in->from_flow);
      if (g == nullptr || g->timing.latency == 0) return -1;
      total += g->timing.latency;
      cursor = in->from_component;
    }
    return -1;  // cycle
  };

  for (const auto& [comp_name, contract] : components_) {
    composite.vertical.cpu_utilization += contract.vertical.cpu_utilization;
    composite.vertical.memory_bytes += contract.vertical.memory_bytes;
    composite.vertical.bus_bandwidth_bps +=
        contract.vertical.bus_bandwidth_bps;
    composite.vertical.confidence =
        std::min(composite.vertical.confidence, contract.vertical.confidence);

    for (const auto& a : contract.assumptions) {
      if (fed_internally(comp_name, a.flow)) continue;  // discharged inside
      FlowSpec external = a;
      external.flow = comp_name + "." + a.flow;
      composite.assumptions.push_back(std::move(external));
    }
    for (const auto& g : contract.guarantees) {
      if (consumed_internally(comp_name, g.flow)) continue;
      FlowSpec external = g;
      external.flow = comp_name + "." + g.flow;
      if (external.timing.latency > 0) {
        const Duration up = upstream_latency(comp_name);
        external.timing.latency = up < 0 ? 0 : external.timing.latency + up;
      }
      composite.guarantees.push_back(std::move(external));
    }
  }
  return composite;
}

}  // namespace orte::contracts
