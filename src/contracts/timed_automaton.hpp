// Timed automata for behavioural contracts (§3: "contracts expressed in
// extended automata model, subsuming timed automata").
//
// Two analyses, both exact for integer-valued clocks:
//  * reachable(loc): breadth-first exploration with clock values clamped one
//    past the largest constant (standard integer-semantics abstraction) —
//    used for contract consistency ("is the error location reachable?"),
//  * run(word): deterministic monitoring of a timed word — used to check
//    recorded simulation traces against a behavioural contract
//    (conformance: did every response happen within its deadline?).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace orte::contracts {

class TimedAutomaton {
 public:
  struct Constraint {
    enum class Op { kLe, kLt, kGe, kGt, kEq };
    int clock = 0;
    Op op = Op::kLe;
    std::int64_t bound = 0;
  };

  /// First added location is initial. Returns the location id.
  int add_location(std::string name, bool error = false);
  int add_clock(std::string name);
  void add_edge(int from, int to, std::string label,
                std::vector<Constraint> guards = {},
                std::vector<int> resets = {});

  [[nodiscard]] int location_id(std::string_view name) const;
  [[nodiscard]] const std::string& location_name(int id) const;
  [[nodiscard]] std::size_t locations() const { return location_names_.size(); }

  /// Exhaustive reachability (delay steps of 1 time unit + discrete edges),
  /// clocks clamped at max-constant+1. Exact for integer timed automata.
  [[nodiscard]] bool reachable(int location) const;
  /// Convenience: is any error location reachable?
  [[nodiscard]] bool error_reachable() const;

  /// Monitor a timed word: pairs of (delay before event, label). At each
  /// event the first enabled edge with that label fires; an event with no
  /// enabled edge moves the monitor to the implicit error verdict.
  struct RunResult {
    bool accepted = true;  ///< No stuck event, no error location entered.
    int final_location = 0;
    std::size_t failed_at = 0;  ///< Index of the offending event, if any.
  };
  [[nodiscard]] RunResult run(
      const std::vector<std::pair<std::int64_t, std::string>>& word) const;

  /// Incremental monitor state for online checking (the rv layer): feed one
  /// (delay, label) event at a time. Feeding the events of a word one by one
  /// is equivalent to run() over that word. The automaton must outlive the
  /// stepper.
  class Stepper {
   public:
    explicit Stepper(const TimedAutomaton& ta)
        : ta_(&ta), clocks_(ta.clock_names_.size(), 0) {}

    /// Advance time by `delay` units, then consume `label`. Returns false
    /// when no enabled edge exists or an error location is entered; the
    /// stepper stays in its pre-event state on a stuck event so the caller
    /// can choose to reset() and keep monitoring.
    bool step(std::int64_t delay, std::string_view label);

    [[nodiscard]] int location() const { return location_; }
    [[nodiscard]] bool in_error() const {
      return ta_->error_.at(static_cast<std::size_t>(location_));
    }

    /// Back to the initial location with all clocks at zero.
    void reset() {
      location_ = 0;
      std::fill(clocks_.begin(), clocks_.end(), 0);
    }

   private:
    const TimedAutomaton* ta_;
    int location_ = 0;
    std::vector<std::int64_t> clocks_;
  };

 private:
  friend class Stepper;
  struct Edge {
    int from = 0;
    int to = 0;
    std::string label;
    std::vector<Constraint> guards;
    std::vector<int> resets;
  };

  [[nodiscard]] bool satisfied(const Constraint& c,
                               const std::vector<std::int64_t>& clocks) const;
  [[nodiscard]] std::int64_t max_constant() const;

  std::vector<std::string> location_names_;
  std::vector<bool> error_;
  std::vector<std::string> clock_names_;
  std::vector<Edge> edges_;
};

}  // namespace orte::contracts
