// Networks of rich components: system-level contract analysis (§3).
//
// Components are contract-carrying design units; connections wire an output
// flow of one component to an input flow of another. The network supports
//  * horizontal compatibility: every connection's source guarantee implies
//    the sink assumption,
//  * end-to-end latency composition along a component chain, checked against
//    a requirement ("realizability of end-to-end latencies at system level"),
//  * vertical compatibility: per-node sums of resource assumptions against
//    declared node capacities, with aggregated confidence — driving the
//    design-space exploration of mappings (experiment E10).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "contracts/contract.hpp"

namespace orte::contracts {

struct Connection {
  std::string from_component;
  std::string from_flow;
  std::string to_component;
  std::string to_flow;
};

/// Execution-platform node capacities for vertical checks.
struct NodeCapacity {
  std::string name;
  double cpu = 1.0;  ///< Available utilization (1.0 = one core).
  std::size_t memory_bytes = SIZE_MAX;
  double bus_bandwidth_bps = 0.0;  ///< Shared bus budget (0 = unchecked).
};

class ContractNetwork {
 public:
  void add_component(Contract contract);
  void connect(std::string from_component, std::string from_flow,
               std::string to_component, std::string to_flow);

  [[nodiscard]] const Contract& component(std::string_view name) const;
  [[nodiscard]] std::size_t size() const { return components_.size(); }
  [[nodiscard]] const std::vector<Connection>& connections() const {
    return connections_;
  }

  /// Horizontal compatibility of every connection.
  [[nodiscard]] CheckResult check_compatibility() const;

  /// Sum of guaranteed latencies along components [c0, c1, ...]; uses each
  /// component's guarantee on its outgoing flow in the chain. Returns the
  /// composed bound, or -1 when some component guarantees no latency.
  [[nodiscard]] Duration end_to_end_latency(
      const std::vector<std::string>& chain) const;

  /// Vertical check: `mapping` assigns each component to a node; resource
  /// assumptions per node must fit the capacity. Bus bandwidth sums over all
  /// components against the (single, shared) bus budget when any capacity
  /// declares one.
  [[nodiscard]] CheckResult check_vertical(
      const std::map<std::string, std::string>& mapping,
      const std::vector<NodeCapacity>& nodes) const;

  /// Contract composition (§3 compositionality: "deducing global properties
  /// of the composed object from the properties of its components"): derive
  /// the system-level contract of this network.
  ///  * assumptions = the assumptions of input flows no internal connection
  ///    feeds (the composite's external inputs),
  ///  * guarantees  = the guarantees of output flows not consumed internally
  ///    (the composite's external outputs); when the producing component sits
  ///    at the end of an internal chain, the guaranteed latency is widened to
  ///    the composed chain latency,
  ///  * vertical    = sum of all resource assumptions, minimum confidence.
  /// Flow names are qualified "component.flow" to stay unambiguous.
  [[nodiscard]] Contract compose(std::string name) const;

 private:
  std::map<std::string, Contract, std::less<>> components_;
  std::vector<Connection> connections_;
};

}  // namespace orte::contracts
