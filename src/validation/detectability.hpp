// Static fault-detectability & fail-silence analysis (rules V13–V15).
//
// The fi layer measures fault coverage dynamically (E9b): inject a fault,
// run the system, score whether any rv monitor fired and whether every
// reaction blamed the fault's containment domain. This pass computes the
// same verdicts *statically*, before any simulation: for each fi::Fault
// plane it derives the set of trace observables the fault perturbs (frame
// delivery, `rte.write`/`rte.deliver` values, task timing, clock skew),
// propagates value perturbations along the V8 slot dataflow graph, and
// intersects the result with the monitor inventory vfb::System would
// compile from the bound contracts:
//
//  V13 undetectable fault class — the fault perturbs observables but no
//      compiled monitor watches any of them (the canonical instance: crash
//      of a producer with no alive supervision — a dead component emits
//      nothing, and every data-flow monitor judges only what it sees).
//  V14 containment gap          — the fault is detectable, but every
//      observing monitor blames an instance outside the fault's containment
//      domain, so a campaign can never score it `contained` (e.g. a
//      babbling idiot on CAN: the rogue node is not a component, every
//      latency blame lands on a victim).
//  V15 alive-supervision coverage — a periodic guarantee implies a
//      heartbeat, but the plan binds no bsw::WatchdogManager alive
//      supervision (DeploymentPlan::alive_supervision), leaving the
//      fail-silent crash of the producer invisible (the V13 fix, one model
//      flag away).
//
// All three are warnings: the model still generates and runs; what it
// cannot do is *argue fail-silence* for the flagged fault class. The
// verdicts are the static half of a cross-check asserted in tests and
// bench_e13: predicted-undetectable faults must score `missed` in the E9b
// campaign, predicted-detectable ones must be detected.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "contracts/contract.hpp"
#include "fi/fault.hpp"
#include "validation/diagnostics.hpp"
#include "vfb/deployment.hpp"
#include "vfb/model.hpp"

namespace orte::validation {

/// One compiled runtime-monitor plane, reduced to what detectability needs:
/// the observable it watches and the instance its violations would blame.
/// Mirrors vfb::System::build_monitors (plus the alive-supervision planes
/// System::build_alive_supervision adds when the plan opts in).
struct MonitorPlane {
  enum class Kind {
    kArrival,       ///< Guarantee period — senses write *timing*.
    kDeadline,      ///< Generated-task deadline — senses task timing.
    kLatency,       ///< Assumption latency — senses delivery of an edge.
    kRangeWrite,    ///< Guarantee range — senses the written *value*.
    kRangeDeliver,  ///< Assumption range — senses the delivered value.
    kAutomaton,     ///< Behaviour contract — senses write values/order.
    kAlive,         ///< Watchdog alive supervision — senses write *absence*.
  };
  Kind kind = Kind::kArrival;
  std::string contract;
  /// Rendered observable the plane watches, e.g. "write-timing pedal.out.pos"
  /// or "delivery pedal.out.pos -> wheel_fl".
  std::string observable;
  /// Instance a violation of this plane blames (the containment attribution
  /// fi::blamed_instance would compute at run time).
  std::string blame;
};

[[nodiscard]] std::string_view to_string(MonitorPlane::Kind kind);

/// Static verdict over one fault plane.
struct FaultVerdict {
  fi::Fault fault;
  std::string label;    ///< "crash:pedal"-style scenario label.
  /// The fault perturbs at least one observable. False = structurally inert
  /// (e.g. a babbling idiot on a TDMA bus): the campaign scores it missed,
  /// but no V13 fires — there is nothing a monitor *could* have seen.
  bool perturbs = false;
  bool detectable = false;       ///< >= 1 monitor observes a perturbation.
  /// Detectable, but no observing monitor blames inside the fault's domain:
  /// detection can never score `contained` (V14).
  bool containment_gap = false;
  /// Detectable and *every* observing monitor blames inside the domain —
  /// the static prediction of the campaign's `contained` outcome.
  bool contained = false;
  std::vector<MonitorPlane> observers;  ///< Planes that see the fault.
};

struct DetectabilityAnalysis {
  /// The full compiled monitor inventory (every plane, observer or not).
  std::vector<MonitorPlane> monitors;
  std::vector<FaultVerdict> verdicts;  ///< One per input fault, in order.
};

/// Run the propagation analysis for an explicit fault list (the cross-check
/// surface: bench_e13 and test_fi feed the standard campaign grid through
/// this and compare each verdict against the measured outcome).
[[nodiscard]] DetectabilityAnalysis analyze_detectability(
    const vfb::Composition& model, const vfb::DeploymentPlan& plan,
    const std::map<std::string, contracts::Contract, std::less<>>& contracts,
    const std::vector<fi::Fault>& faults);

/// V13–V15 over a canonical fault inventory derived from the model itself
/// (one representative per fault plane the deployment can express: frame
/// faults and a babbler when cross-ECU edges exist, clock drift per
/// frame-sourcing ECU, crash/overrun per guaranteeing producer, stuck-at
/// per constrained guarantee flow). Requires a deployment plan; silent when
/// the plan disables runtime_verification (V10's jurisdiction).
void check_detectability(
    const vfb::Composition& model, const vfb::DeploymentPlan& plan,
    const std::map<std::string, contracts::Contract, std::less<>>& contracts,
    Diagnostics& out);

}  // namespace orte::validation
