#include "validation/validator.hpp"

#include "validation/detectability.hpp"
#include "validation/flow_analysis.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace orte::validation {

namespace {

using vfb::ComponentType;
using vfb::Composition;
using vfb::Connector;
using vfb::DataAccessKind;
using vfb::DataElement;
using vfb::DeploymentPlan;
using vfb::InstanceDeployment;
using vfb::Operation;
using vfb::Port;
using vfb::PortDirection;
using vfb::PortInterface;
using vfb::Runnable;
using vfb::RunnableTrigger;
using sim::Duration;

bool is_write(DataAccessKind k) {
  return k == DataAccessKind::kImplicitWrite ||
         k == DataAccessKind::kExplicitWrite;
}
const Port* find_port(const ComponentType& type, std::string_view name) {
  for (const auto& p : type.ports) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const DataElement* find_element(const PortInterface& iface,
                                std::string_view name) {
  for (const auto& e : iface.elements) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const Operation* find_operation(const PortInterface& iface,
                                std::string_view name) {
  for (const auto& o : iface.operations) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

std::string dot(std::string_view a, std::string_view b) {
  return std::string(a) + "." + std::string(b);
}
std::string dot(std::string_view a, std::string_view b, std::string_view c) {
  return dot(a, b) + "." + std::string(c);
}
std::string conn_subject(const Connector& c) {
  return dot(c.from_instance, c.from_port) + "->" +
         dot(c.to_instance, c.to_port);
}

/// Task-mapping shadow of System::build_tasks: which generated task a
/// runnable lands in and at which priority, per ECU. The race detector (V4)
/// reasons about exactly the tasks the generator would emit.
struct TaskRef {
  std::string name;
  int priority = 0;
  bool table_dispatched = false;  ///< TT periodic: non-preemptive dispatch.
};

/// One whole-model validation run; collects into `out`.
class Pass {
 public:
  Pass(const Composition& model, const DeploymentPlan* plan,
       const std::map<std::string, contracts::Contract, std::less<>>& bound)
      : model_(model), plan_(plan), contracts_(bound) {}

  Diagnostics run() {
    check_type_references();  // V1/V2/V5 (type level)
    check_connectors();       // V1/V2 (connector level)
    check_connectivity();     // V3
    check_call_graph();       // V1/V2/V3/V6 (server calls)
    if (plan_ != nullptr) {
      check_deployment();  // V1/V2/V5 (plan level)
      check_races();       // V4
    }
    check_contracts();  // V7
    if (!contracts_.empty()) {
      // Whole-program passes (flow_analysis.cpp): transitive ranges and
      // dead flows need only the model; deadline/budget cross-checks need
      // the deployment too.
      check_flow_ranges(model_, contracts_, out_);             // V8/V12
      check_monitor_coverage(model_, plan_, contracts_, out_); // V10
      if (plan_ != nullptr) {
        check_chain_deadlines(model_, *plan_, contracts_, out_);  // V9
        check_resource_budgets(model_, *plan_, contracts_, out_); // V11
        check_detectability(model_, *plan_, contracts_, out_);    // V13-V15
      }
    }
    return std::move(out_);
  }

 private:
  // --- V1/V2/V5: every name a type mentions must resolve; accesses and
  // triggers must agree with port kind and direction; timing must be sane.
  void check_type_references() {
    for (const auto& [tname, type] : model_.types()) {
      for (const auto& p : type.ports) {
        if (model_.find_interface(p.interface) == nullptr) {
          out_.add("V1", Severity::kError, dot(tname, p.name),
                   "port references unknown interface " + p.interface,
                   "add_interface(\"" + p.interface + "\") before the type");
        }
      }
      for (const auto& r : type.runnables) {
        check_runnable(tname, type, r);
      }
    }
    for (const auto& inst : model_.instances()) {
      if (model_.find_type(inst.type) == nullptr) {
        out_.add("V1", Severity::kError, inst.name,
                 "instance references unknown component type " + inst.type,
                 "add_type(\"" + inst.type + "\") before the instance");
      }
    }
  }

  void check_runnable(const std::string& tname, const ComponentType& type,
                      const Runnable& r) {
    for (const auto& acc : r.accesses) {
      const std::string subject = dot(tname, r.name, acc.port);
      const Port* p = find_port(type, acc.port);
      if (p == nullptr) {
        out_.add("V1", Severity::kError, subject,
                 "data access on unknown port " + acc.port);
        continue;
      }
      const PortInterface* iface = model_.find_interface(p->interface);
      if (iface == nullptr) continue;  // flagged at the port already
      if (iface->kind != PortInterface::Kind::kSenderReceiver) {
        out_.add("V2", Severity::kError, subject,
                 "data access on non-SR port " + acc.port,
                 "use server_calls for client-server ports");
        continue;
      }
      if (find_element(*iface, acc.element) == nullptr) {
        out_.add("V1", Severity::kError, subject + "." + acc.element,
                 "interface " + iface->name + " has no element " + acc.element);
      }
      if (is_write(acc.kind) && p->direction != PortDirection::kProvided) {
        out_.add("V2", Severity::kError, subject,
                 "runnable " + r.name + " writes required port " + acc.port,
                 "writes go through provided ports");
      }
      if (!is_write(acc.kind) && p->direction != PortDirection::kRequired) {
        out_.add("V2", Severity::kError, subject,
                 "runnable " + r.name + " reads provided port " + acc.port,
                 "reads go through required ports");
      }
    }
    switch (r.trigger.kind) {
      case RunnableTrigger::Kind::kTiming:
        if (r.trigger.period <= 0) {
          out_.add("V5", Severity::kError, dot(tname, r.name),
                   "timing runnable " + r.name + " has no period",
                   "set trigger = RunnableTrigger::timing(period)");
        } else if (r.wcet_bound > 0 && r.wcet_bound >= r.trigger.period) {
          out_.add("V5", Severity::kWarning, dot(tname, r.name),
                   "declared wcet_bound >= trigger period: the task can never "
                   "complete within its activation window");
        }
        break;
      case RunnableTrigger::Kind::kDataReceived: {
        const Port* p = find_port(type, r.trigger.port);
        if (p == nullptr) {
          out_.add("V1", Severity::kError, dot(tname, r.name, r.trigger.port),
                   "data-received trigger on unknown port " + r.trigger.port);
          break;
        }
        const PortInterface* iface = model_.find_interface(p->interface);
        if (iface != nullptr &&
            find_element(*iface, r.trigger.element) == nullptr) {
          out_.add("V1", Severity::kError,
                   dot(tname, r.name, r.trigger.port) + "." + r.trigger.element,
                   "data-received trigger on unknown element " +
                       r.trigger.element);
        }
        if (p->direction != PortDirection::kRequired) {
          out_.add("V5", Severity::kError, dot(tname, r.name, r.trigger.port),
                   "data-received trigger on provided port " + r.trigger.port,
                   "data-received events fire on required ports only");
        }
        break;
      }
      case RunnableTrigger::Kind::kInit:
        break;
    }
  }

  // --- V1/V2: connector endpoints resolve; direction, interface kind and
  // element sets agree; a required port is fed at most once.
  void check_connectors() {
    std::map<std::pair<std::string, std::string>, int> feeds;
    for (const auto& c : model_.connectors()) {
      const Port* from = resolve_connector_end(c, c.from_instance, c.from_port);
      const Port* to = resolve_connector_end(c, c.to_instance, c.to_port);
      if (to != nullptr) ++feeds[{c.to_instance, c.to_port}];
      if (from == nullptr || to == nullptr) continue;
      if (from->direction != PortDirection::kProvided) {
        out_.add("V2", Severity::kError, conn_subject(c),
                 "connector source " + c.from_port + " is not a provided port",
                 "swap the connector endpoints");
      }
      if (to->direction != PortDirection::kRequired) {
        out_.add("V2", Severity::kError, conn_subject(c),
                 "connector target " + c.to_port + " is not a required port",
                 "swap the connector endpoints");
      }
      if (from->interface != to->interface) {
        out_.add("V2", Severity::kError, conn_subject(c),
                 "connector interface mismatch: " + from->interface + " vs " +
                     to->interface + interface_mismatch_detail(from, to),
                 "connected ports must share one interface definition");
      }
    }
    for (const auto& [key, n] : feeds) {
      if (n > 1) {
        out_.add("V2", Severity::kError, dot(key.first, key.second),
                 "required port " + dot(key.first, key.second) +
                     " fed by multiple connectors",
                 "a required port accepts exactly one feeding connector");
      }
    }
  }

  /// When two differently-named interfaces collide on a connector, say how
  /// far apart they actually are (kind / element set / structurally equal).
  std::string interface_mismatch_detail(const Port* from, const Port* to) {
    const PortInterface* fi = model_.find_interface(from->interface);
    const PortInterface* ti = model_.find_interface(to->interface);
    if (fi == nullptr || ti == nullptr) return {};
    if (fi->kind != ti->kind) {
      return " (kind mismatch: sender-receiver vs client-server)";
    }
    std::vector<std::string> only_from;
    std::vector<std::string> only_to;
    for (const auto& e : fi->elements) {
      if (find_element(*ti, e.name) == nullptr) only_from.push_back(e.name);
    }
    for (const auto& e : ti->elements) {
      if (find_element(*fi, e.name) == nullptr) only_to.push_back(e.name);
    }
    if (only_from.empty() && only_to.empty()) {
      return " (element sets agree; the interfaces differ in name only)";
    }
    std::string detail = " (element-set disagreement:";
    for (const auto& e : only_from) detail += " -" + e;
    for (const auto& e : only_to) detail += " +" + e;
    return detail + ")";
  }

  const Port* resolve_connector_end(const Connector& c,
                                    const std::string& instance,
                                    const std::string& port) {
    const auto* inst = model_.find_instance(instance);
    if (inst == nullptr) {
      out_.add("V1", Severity::kError, conn_subject(c),
               "connector references unknown instance " + instance);
      return nullptr;
    }
    const ComponentType* type = model_.find_type(inst->type);
    if (type == nullptr) return nullptr;  // instance already flagged
    const Port* p = find_port(*type, port);
    if (p == nullptr) {
      out_.add("V1", Severity::kError, conn_subject(c),
               "instance " + instance + " has no port " + port);
    }
    return p;
  }

  // --- V3: required ports that are read but never fed; elements carried by
  // a connector that no runnable ever writes or reads.
  void check_connectivity() {
    for (const auto& inst : model_.instances()) {
      const ComponentType* type = model_.find_type(inst.type);
      if (type == nullptr) continue;
      for (const auto& p : type->ports) {
        const PortInterface* iface = model_.find_interface(p.interface);
        if (iface == nullptr ||
            iface->kind != PortInterface::Kind::kSenderReceiver) {
          continue;
        }
        if (p.direction == PortDirection::kRequired &&
            model_.connection_to(inst.name, p.name) == nullptr) {
          if (port_is_read(*type, p.name)) {
            out_.add("V3", Severity::kWarning, dot(inst.name, p.name),
                     "required port is read but has no feeding connector: "
                     "reads only ever see the init value",
                     "add_connector({provider, port, \"" + inst.name +
                         "\", \"" + p.name + "\"})");
          } else {
            out_.add("V3", Severity::kInfo, dot(inst.name, p.name),
                     "required port is not connected");
          }
        }
        if (p.direction == PortDirection::kProvided &&
            model_.connections_from(inst.name, p.name).empty() &&
            port_is_written(*type, p.name)) {
          out_.add("V3", Severity::kInfo, dot(inst.name, p.name),
                   "writes to unconnected provided port reach no receiver");
        }
      }
    }
    for (const auto& c : model_.connectors()) {
      const auto* from_inst = model_.find_instance(c.from_instance);
      const auto* to_inst = model_.find_instance(c.to_instance);
      if (from_inst == nullptr || to_inst == nullptr) continue;
      const ComponentType* from_type = model_.find_type(from_inst->type);
      const ComponentType* to_type = model_.find_type(to_inst->type);
      if (from_type == nullptr || to_type == nullptr) continue;
      const Port* from = find_port(*from_type, c.from_port);
      if (from == nullptr) continue;
      const PortInterface* iface = model_.find_interface(from->interface);
      if (iface == nullptr ||
          iface->kind != PortInterface::Kind::kSenderReceiver) {
        continue;
      }
      for (const auto& elem : iface->elements) {
        if (!element_is_written(*from_type, c.from_port, elem.name)) {
          out_.add("V3", Severity::kInfo,
                   dot(c.from_instance, c.from_port, elem.name),
                   "element is never written by any runnable of " +
                       from_type->name + "; receivers only ever see init");
        }
        if (!element_is_read(*to_type, c.to_port, elem.name)) {
          out_.add("V3", Severity::kInfo,
                   dot(c.to_instance, c.to_port, elem.name),
                   "element is delivered but never read by any runnable of " +
                       to_type->name);
        }
      }
    }
  }

  static bool port_is_read(const ComponentType& type, std::string_view port) {
    for (const auto& r : type.runnables) {
      if (r.trigger.kind == RunnableTrigger::Kind::kDataReceived &&
          r.trigger.port == port) {
        return true;
      }
      for (const auto& acc : r.accesses) {
        if (!is_write(acc.kind) && acc.port == port) return true;
      }
    }
    return false;
  }
  static bool port_is_written(const ComponentType& type,
                              std::string_view port) {
    for (const auto& r : type.runnables) {
      for (const auto& acc : r.accesses) {
        if (is_write(acc.kind) && acc.port == port) return true;
      }
    }
    return false;
  }
  static bool element_is_written(const ComponentType& type,
                                 std::string_view port,
                                 std::string_view element) {
    for (const auto& r : type.runnables) {
      for (const auto& acc : r.accesses) {
        if (is_write(acc.kind) && acc.port == port && acc.element == element) {
          return true;
        }
      }
    }
    return false;
  }
  static bool element_is_read(const ComponentType& type, std::string_view port,
                              std::string_view element) {
    for (const auto& r : type.runnables) {
      if (r.trigger.kind == RunnableTrigger::Kind::kDataReceived &&
          r.trigger.port == port && r.trigger.element == element) {
        return true;
      }
      for (const auto& acc : r.accesses) {
        if (!is_write(acc.kind) && acc.port == port &&
            acc.element == element) {
          return true;
        }
      }
    }
    return false;
  }

  // --- V1/V2/V3/V6: server calls resolve end to end (format, port, kind,
  // connector, operation, registered handler) and the instance-level call
  // graph is acyclic.
  void check_call_graph() {
    // instance -> (server instance, call label) edges.
    std::map<std::string, std::vector<std::pair<std::string, std::string>>>
        edges;
    for (const auto& inst : model_.instances()) {
      const ComponentType* type = model_.find_type(inst.type);
      if (type == nullptr) continue;
      for (const auto& r : type->runnables) {
        for (const auto& call : r.server_calls) {
          check_server_call(inst.name, *type, r, call, edges);
        }
      }
    }
    detect_cycles(edges);
  }

  void check_server_call(
      const std::string& instance, const ComponentType& type,
      const Runnable& r, const std::string& call,
      std::map<std::string,
               std::vector<std::pair<std::string, std::string>>>& edges) {
    const std::string subject = dot(instance, r.name);
    const auto sep = call.find('.');
    if (sep == std::string::npos) {
      out_.add("V1", Severity::kError, subject,
               "server call must be 'port.operation': " + call);
      return;
    }
    const std::string port = call.substr(0, sep);
    const std::string op = call.substr(sep + 1);
    const Port* p = find_port(type, port);
    if (p == nullptr) {
      out_.add("V1", Severity::kError, subject,
               "server call on unknown port " + port + ": " + call);
      return;
    }
    const PortInterface* iface = model_.find_interface(p->interface);
    if (iface == nullptr) return;  // dangling interface flagged already
    if (iface->kind != PortInterface::Kind::kClientServer ||
        p->direction != PortDirection::kRequired) {
      out_.add("V2", Severity::kError, subject,
               "server call through a port that is not a required "
               "client-server port: " +
                   call);
      return;
    }
    if (find_operation(*iface, op) == nullptr) {
      out_.add("V1", Severity::kError, subject,
               "unknown operation in server call: " + call);
      return;
    }
    const Connector* conn = model_.connection_to(instance, port);
    if (conn == nullptr) {
      out_.add("V3", Severity::kError, subject,
               "server call on unconnected port " + dot(instance, port),
               "connect the port to a providing server instance");
      return;
    }
    edges[instance].emplace_back(conn->from_instance, call);
    const auto* server_inst = model_.find_instance(conn->from_instance);
    if (server_inst != nullptr &&
        model_.operation_handler(server_inst->type, conn->from_port, op) ==
            nullptr) {
      out_.add("V1", Severity::kError, subject,
               "no handler registered for operation " + op + " on type " +
                   server_inst->type,
               "set_operation_handler(\"" + server_inst->type + "\", \"" +
                   conn->from_port + "\", \"" + op + "\", ...)");
    }
  }

  void detect_cycles(
      const std::map<std::string,
                     std::vector<std::pair<std::string, std::string>>>&
          edges) {
    enum class Color { kWhite, kGrey, kBlack };
    std::map<std::string, Color> color;
    std::vector<std::string> path;
    auto dfs = [&](auto&& self, const std::string& node) -> void {
      color[node] = Color::kGrey;
      path.push_back(node);
      auto it = edges.find(node);
      if (it != edges.end()) {
        for (const auto& [server, call] : it->second) {
          const auto cit = color.find(server);
          const Color c = cit == color.end() ? Color::kWhite : cit->second;
          if (c == Color::kGrey) {
            std::string cycle;
            auto start = std::find(path.begin(), path.end(), server);
            for (auto p = start; p != path.end(); ++p) cycle += *p + " -> ";
            cycle += server;
            out_.add("V6", Severity::kError, server,
                     "client-server call cycle: " + cycle,
                     "synchronous call cycles deadlock; break the cycle or "
                     "invert one dependency");
          } else if (c == Color::kWhite) {
            self(self, server);
          }
        }
      }
      path.pop_back();
      color[node] = Color::kBlack;
    };
    for (const auto& [node, _] : edges) {
      const auto cit = color.find(node);
      if (cit == color.end() || cit->second == Color::kWhite) dfs(dfs, node);
    }
  }

  // --- V1/V2/V5 (plan level): every instance deployed, partitions resolve,
  // client-server connectors stay on one ECU, per-ECU task budget holds.
  void check_deployment() {
    for (const auto& inst : model_.instances()) {
      const auto it = plan_->instances.find(inst.name);
      if (it == plan_->instances.end()) {
        out_.add("V1", Severity::kError, inst.name,
                 "no deployment for instance " + inst.name,
                 "plan.instances[\"" + inst.name + "\"] = {.ecu = ...}");
        continue;
      }
      const InstanceDeployment& dep = it->second;
      if (!dep.partition.empty()) {
        const bool found = std::any_of(
            plan_->partitions.begin(), plan_->partitions.end(),
            [&](const vfb::PartitionSpec& p) {
              return p.name == dep.partition && p.ecu == dep.ecu;
            });
        if (!found) {
          out_.add("V1", Severity::kError, inst.name,
                   "instance assigned to unknown partition " + dep.partition +
                       " on ECU " + dep.ecu,
                   "declare the partition in plan.partitions");
        }
      }
      check_budget(inst.name, dep);
    }
    for (const auto& [name, dep] : plan_->instances) {
      if (model_.find_instance(name) == nullptr) {
        out_.add("V1", Severity::kWarning, name,
                 "deployment for unknown instance " + name);
      }
    }
    for (const auto& c : model_.connectors()) {
      const auto from = plan_->instances.find(c.from_instance);
      const auto to = plan_->instances.find(c.to_instance);
      if (from == plan_->instances.end() || to == plan_->instances.end()) {
        continue;  // undeployed ends flagged above
      }
      const auto* from_inst = model_.find_instance(c.from_instance);
      if (from_inst == nullptr) continue;
      const ComponentType* type = model_.find_type(from_inst->type);
      if (type == nullptr) continue;
      const Port* p = find_port(*type, c.from_port);
      if (p == nullptr) continue;
      const PortInterface* iface = model_.find_interface(p->interface);
      if (iface != nullptr &&
          iface->kind == PortInterface::Kind::kClientServer &&
          from->second.ecu != to->second.ecu) {
        out_.add("V2", Severity::kError, conn_subject(c),
                 "client-server connector spans ECUs (unsupported): " +
                     c.from_instance + " -> " + c.to_instance,
                 "deploy client and server on one ECU");
      }
    }
  }

  void check_budget(const std::string& instance,
                    const InstanceDeployment& dep) {
    if (dep.budget <= 0) return;
    const auto* inst = model_.find_instance(instance);
    if (inst == nullptr) return;
    const ComponentType* type = model_.find_type(inst->type);
    if (type == nullptr) return;
    for (const auto& r : type->runnables) {
      if (r.wcet_bound > 0 && r.wcet_bound > dep.budget) {
        out_.add("V5", Severity::kWarning, dot(instance, r.name),
                 "execution budget is below the runnable's declared WCET "
                 "bound: every job overruns",
                 "raise the budget or split the runnable");
      }
    }
  }

  // --- V4: cross-task data races. Mirrors the generator's task derivation:
  // one task per (instance, period) with rate-monotonic priorities per ECU,
  // one event task per data-received runnable at plan.data_task_priority.
  // Explicit accesses touch live RTE slots, so a preempting writer tears a
  // lower-priority reader (torn read) and two writers in different tasks
  // lose updates; implicit accesses are buffered at task boundaries and
  // pass by construction.
  void check_races() {
    // (instance, runnable name) -> generated task.
    std::map<std::pair<std::string, std::string>, TaskRef> task_of;
    build_task_map(task_of);

    for (const auto& c : model_.connectors()) {
      const auto from_dep = plan_->instances.find(c.from_instance);
      const auto to_dep = plan_->instances.find(c.to_instance);
      if (from_dep == plan_->instances.end() ||
          to_dep == plan_->instances.end() ||
          from_dep->second.ecu != to_dep->second.ecu) {
        continue;  // cross-ECU: decoupled by the bus, no shared slot
      }
      const ComponentType* from_type = type_of(c.from_instance);
      const ComponentType* to_type = type_of(c.to_instance);
      if (from_type == nullptr || to_type == nullptr) continue;
      const Port* from = find_port(*from_type, c.from_port);
      if (from == nullptr) continue;
      const PortInterface* iface = model_.find_interface(from->interface);
      if (iface == nullptr ||
          iface->kind != PortInterface::Kind::kSenderReceiver) {
        continue;
      }
      for (const auto& elem : iface->elements) {
        check_element_races(c, *from_type, *to_type, elem.name, task_of);
      }
    }

    // Lost updates inside one instance: two explicit writers of the same
    // (port, element) mapped to different tasks.
    for (const auto& inst : model_.instances()) {
      const ComponentType* type = type_of(inst.name);
      if (type == nullptr || plan_->instances.count(inst.name) == 0) continue;
      check_intra_instance_races(inst.name, *type, task_of);
    }
  }

  const ComponentType* type_of(const std::string& instance) const {
    const auto* inst = model_.find_instance(instance);
    return inst == nullptr ? nullptr : model_.find_type(inst->type);
  }

  void build_task_map(
      std::map<std::pair<std::string, std::string>, TaskRef>& task_of) {
    // ECUs in deterministic order, as the generator builds them.
    std::set<std::string> ecus;
    for (const auto& [_, dep] : plan_->instances) ecus.insert(dep.ecu);
    const bool tt =
        plan_->scheduling == vfb::SchedulingPolicy::kTimeTriggered;

    for (const auto& ecu : ecus) {
      struct Group {
        std::string instance;
        Duration period = 0;
      };
      std::vector<Group> groups;
      for (const auto& inst : model_.instances()) {
        const auto dep = plan_->instances.find(inst.name);
        if (dep == plan_->instances.end() || dep->second.ecu != ecu) continue;
        const ComponentType* type = model_.find_type(inst.type);
        if (type == nullptr) continue;
        for (const auto& r : type->runnables) {
          switch (r.trigger.kind) {
            case RunnableTrigger::Kind::kTiming: {
              const auto git = std::find_if(
                  groups.begin(), groups.end(), [&](const Group& g) {
                    return g.instance == inst.name &&
                           g.period == r.trigger.period;
                  });
              if (git == groups.end()) {
                groups.push_back(Group{inst.name, r.trigger.period});
              }
              break;
            }
            case RunnableTrigger::Kind::kDataReceived:
              task_of[{inst.name, r.name}] =
                  TaskRef{"tk|" + inst.name + "|" + r.name,
                          plan_->data_task_priority, false};
              break;
            case RunnableTrigger::Kind::kInit:
              break;  // runs once before start; no task
          }
        }
      }
      if (groups.size() > vfb::kMaxPeriodicTasksPerEcu) {
        out_.add("V5", Severity::kError, ecu,
                 "too many periodic tasks on ECU " + ecu + " (" +
                     std::to_string(groups.size()) + " > " +
                     std::to_string(vfb::kMaxPeriodicTasksPerEcu) + ")",
                 "merge runnable periods or split the deployment");
      }
      std::sort(groups.begin(), groups.end(),
                [](const Group& a, const Group& b) {
                  if (a.period != b.period) return a.period < b.period;
                  return a.instance < b.instance;
                });
      int rank = 0;
      std::map<std::pair<std::string, Duration>, int> priority;
      for (const auto& g : groups) {
        priority[{g.instance, g.period}] =
            vfb::kPeriodicBasePriority - rank++;
      }
      for (const auto& inst : model_.instances()) {
        const auto dep = plan_->instances.find(inst.name);
        if (dep == plan_->instances.end() || dep->second.ecu != ecu) continue;
        const ComponentType* type = model_.find_type(inst.type);
        if (type == nullptr) continue;
        for (const auto& r : type->runnables) {
          if (r.trigger.kind != RunnableTrigger::Kind::kTiming) continue;
          const auto pit = priority.find({inst.name, r.trigger.period});
          if (pit == priority.end()) continue;
          task_of[{inst.name, r.name}] = TaskRef{
              "tk|" + inst.name + "|" + std::to_string(r.trigger.period),
              pit->second, tt};
        }
      }
    }
  }

  /// Can `a` and `b` interleave mid-execution? Distinct tasks at distinct
  /// priorities under preemptive dispatch; TT table entries are
  /// non-preemptive among themselves but event tasks still preempt them.
  static bool can_preempt_pair(const TaskRef& a, const TaskRef& b) {
    if (a.name == b.name) return false;       // same task: serialized
    if (a.priority == b.priority) return false;  // FIFO peers never preempt
    if (a.table_dispatched && b.table_dispatched) return false;  // TT slots
    return true;
  }

  const TaskRef* task_for(
      const std::map<std::pair<std::string, std::string>, TaskRef>& task_of,
      const std::string& instance, const std::string& runnable) const {
    const auto it = task_of.find({instance, runnable});
    return it == task_of.end() ? nullptr : &it->second;
  }

  void emit_race(const char* kind, const std::string& subject,
                 const std::string& victim_access, const TaskRef& victim,
                 const std::string& aggressor_access,
                 const TaskRef& aggressor) {
    const TaskRef& hi = aggressor.priority > victim.priority ? aggressor
                                                             : victim;
    const TaskRef& lo = aggressor.priority > victim.priority ? victim
                                                             : aggressor;
    out_.add("V4", Severity::kWarning, subject,
             std::string(kind) + " hazard: " + victim_access +
                 " races with " + aggressor_access + "; task " + hi.name +
                 " (prio " + std::to_string(hi.priority) + ") preempts task " +
                 lo.name + " (prio " + std::to_string(lo.priority) + ")",
             "declare the accesses implicit (buffered) or map both runnables "
             "into one task");
  }

  void check_element_races(
      const Connector& c, const ComponentType& from_type,
      const ComponentType& to_type, const std::string& elem,
      const std::map<std::pair<std::string, std::string>, TaskRef>& task_of) {
    struct Acc {
      const Runnable* runnable;
      const TaskRef* task;
    };
    std::vector<Acc> writers;
    std::vector<Acc> readers;
    for (const auto& r : from_type.runnables) {
      for (const auto& acc : r.accesses) {
        if (acc.port == c.from_port && acc.element == elem &&
            acc.kind == DataAccessKind::kExplicitWrite) {
          if (const TaskRef* t = task_for(task_of, c.from_instance, r.name)) {
            writers.push_back({&r, t});
          }
        }
      }
    }
    for (const auto& r : to_type.runnables) {
      for (const auto& acc : r.accesses) {
        if (acc.port == c.to_port && acc.element == elem &&
            acc.kind == DataAccessKind::kExplicitRead) {
          if (const TaskRef* t = task_for(task_of, c.to_instance, r.name)) {
            readers.push_back({&r, t});
          }
        }
      }
    }
    const std::string slot = dot(c.to_instance, c.to_port, elem);
    for (const auto& w : writers) {
      for (const auto& rd : readers) {
        if (!can_preempt_pair(*w.task, *rd.task)) continue;
        emit_race("torn-read", slot,
                  dot(c.to_instance, rd.runnable->name) + " explicit read of " +
                      slot,
                  *rd.task,
                  dot(c.from_instance, w.runnable->name) +
                      " explicit write of " +
                      dot(c.from_instance, c.from_port, elem),
                  *w.task);
      }
    }
  }

  void check_intra_instance_races(
      const std::string& instance, const ComponentType& type,
      const std::map<std::pair<std::string, std::string>, TaskRef>& task_of) {
    // (port, element) -> explicit writers.
    std::map<std::pair<std::string, std::string>,
             std::vector<std::pair<const Runnable*, const TaskRef*>>>
        writers;
    for (const auto& r : type.runnables) {
      for (const auto& acc : r.accesses) {
        if (acc.kind != DataAccessKind::kExplicitWrite) continue;
        if (const TaskRef* t = task_for(task_of, instance, r.name)) {
          writers[{acc.port, acc.element}].emplace_back(&r, t);
        }
      }
    }
    for (const auto& [key, ws] : writers) {
      for (std::size_t i = 0; i < ws.size(); ++i) {
        for (std::size_t j = i + 1; j < ws.size(); ++j) {
          if (!can_preempt_pair(*ws[i].second, *ws[j].second)) continue;
          const std::string slot = dot(instance, key.first, key.second);
          emit_race("lost-update", slot,
                    dot(instance, ws[i].first->name) + " explicit write of " +
                        slot,
                    *ws[i].second,
                    dot(instance, ws[j].first->name) + " explicit write of " +
                        slot,
                    *ws[j].second);
        }
      }
    }
  }

  // --- V7: bound rich-component contracts must be compatible across every
  // connector (source guarantee implies sink assumption), the same predicate
  // contracts::ContractNetwork::check_compatibility applies per connection.
  void check_contracts() {
    for (const auto& [instance, _] : contracts_) {
      if (model_.find_instance(instance) == nullptr) {
        out_.add("V1", Severity::kWarning, instance,
                 "contract bound to unknown instance " + instance);
      }
    }
    if (contracts_.empty()) return;
    for (const auto& c : model_.connectors()) {
      const auto from_it = contracts_.find(c.from_instance);
      const auto to_it = contracts_.find(c.to_instance);
      if (from_it == contracts_.end() || to_it == contracts_.end()) continue;
      const ComponentType* from_type = type_of(c.from_instance);
      if (from_type == nullptr) continue;
      const Port* from = find_port(*from_type, c.from_port);
      if (from == nullptr) continue;
      const PortInterface* iface = model_.find_interface(from->interface);
      if (iface == nullptr ||
          iface->kind != PortInterface::Kind::kSenderReceiver) {
        continue;
      }
      for (const auto& elem : iface->elements) {
        const contracts::FlowSpec* g =
            flow_of(from_it->second, c.from_port, elem.name, /*assume=*/false);
        const contracts::FlowSpec* a =
            flow_of(to_it->second, c.to_port, elem.name, /*assume=*/true);
        if (g == nullptr || a == nullptr) continue;
        const auto result = contracts::satisfies(*g, *a);
        for (const auto& violation : result.violations) {
          out_.add("V7", Severity::kError,
                   conn_subject(c) + "." + elem.name,
                   "contract incompatibility (" + from_it->second.name +
                       " -> " + to_it->second.name + "): " + violation,
                   "weaken the sink assumption or strengthen the source "
                   "guarantee");
        }
      }
    }
  }

  static const contracts::FlowSpec* flow_of(const contracts::Contract& c,
                                            const std::string& port,
                                            const std::string& element,
                                            bool assume) {
    const std::string qualified = port + "." + element;
    const contracts::FlowSpec* f =
        assume ? c.assumption(qualified) : c.guarantee(qualified);
    if (f == nullptr) f = assume ? c.assumption(port) : c.guarantee(port);
    return f;
  }

  const Composition& model_;
  const DeploymentPlan* plan_;
  const std::map<std::string, contracts::Contract, std::less<>>& contracts_;
  Diagnostics out_;
};

}  // namespace

Validator& Validator::with_contract(std::string instance,
                                    contracts::Contract contract) {
  contracts_[std::move(instance)] = std::move(contract);
  return *this;
}

Diagnostics Validator::run() const {
  return Pass(*model_, plan_, contracts_).run();
}

namespace {
/// Contracts bound directly on the model (Composition::bind_contract) feed
/// rule V7, so both enforcement points — this static pass and the rv layer's
/// online monitors — check the same specification.
Validator with_model_contracts(Validator v, const vfb::Composition& model) {
  for (const auto& [instance, contract] : model.bound_contracts()) {
    v.with_contract(instance, contract);
  }
  return v;
}
}  // namespace

Diagnostics validate(const vfb::Composition& model) {
  return with_model_contracts(Validator(model), model).run();
}

Diagnostics validate(const vfb::Composition& model,
                     const vfb::DeploymentPlan& plan) {
  return with_model_contracts(Validator(model).with_deployment(plan), model)
      .run();
}

}  // namespace orte::validation
