#include "validation/flow_analysis.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/holistic.hpp"

namespace orte::validation {

namespace {

using contracts::Contract;
using contracts::FlowSpec;
using contracts::Interval;
using sim::Duration;
using vfb::ComponentInstance;
using vfb::ComponentType;
using vfb::Connector;
using vfb::DataAccessKind;
using vfb::DeploymentPlan;
using vfb::Port;
using vfb::PortDirection;
using vfb::PortInterface;
using vfb::Runnable;
using vfb::RunnableTrigger;

using ContractMap = std::map<std::string, Contract, std::less<>>;

bool is_write(DataAccessKind k) {
  return k == DataAccessKind::kImplicitWrite ||
         k == DataAccessKind::kExplicitWrite;
}

const Port* find_port(const ComponentType& type, std::string_view name) {
  for (const auto& p : type.ports) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::string dot(std::string_view a, std::string_view b) {
  return std::string(a) + "." + std::string(b);
}
std::string dot(std::string_view a, std::string_view b, std::string_view c) {
  return dot(a, b) + "." + std::string(c);
}

/// Slot key "instance.port.element" — same shape as Rte::key, so V8/V12
/// subjects line up with the runtime trace subjects.
std::string slot_key(std::string_view instance, std::string_view port,
                     std::string_view element) {
  return dot(instance, port, element);
}

/// "port.element" flow lookup with "port" fallback (the validator/System
/// convention).
const FlowSpec* flow_of(const Contract& c, const std::string& port,
                        const std::string& element, bool assume) {
  const std::string qualified = port + "." + element;
  const FlowSpec* f = assume ? c.assumption(qualified) : c.guarantee(qualified);
  if (f == nullptr) f = assume ? c.assumption(port) : c.guarantee(port);
  return f;
}

struct SplitFlow {
  std::string port;
  std::string element;  ///< Empty = every element of the port.
};
SplitFlow split_flow(const std::string& flow) {
  const auto d = flow.find('.');
  if (d == std::string::npos) return {flow, {}};
  return {flow.substr(0, d), flow.substr(d + 1)};
}

bool unconstrained(const Interval& r) {
  return r.lo == std::numeric_limits<std::int64_t>::min() &&
         r.hi == std::numeric_limits<std::int64_t>::max();
}

std::string interval_str(const Interval& r) {
  return "[" + std::to_string(r.lo) + ", " + std::to_string(r.hi) + "]";
}

const ComponentType* type_of(const vfb::Composition& model,
                             const std::string& instance) {
  const ComponentInstance* inst = model.find_instance(instance);
  return inst == nullptr ? nullptr : model.find_type(inst->type);
}

/// Sender-receiver interface of (instance, port), or null when anything on
/// the way does not resolve (rule V1/V2 territory — these passes stay
/// silent there).
const PortInterface* sr_interface(const vfb::Composition& model,
                                  const std::string& instance,
                                  const std::string& port,
                                  const Port** port_out = nullptr) {
  const ComponentType* type = type_of(model, instance);
  if (type == nullptr) return nullptr;
  const Port* p = find_port(*type, port);
  if (p == nullptr) return nullptr;
  const PortInterface* iface = model.find_interface(p->interface);
  if (iface == nullptr || iface->kind != PortInterface::Kind::kSenderReceiver) {
    return nullptr;
  }
  if (port_out != nullptr) *port_out = p;
  return iface;
}

/// Model-only mirror of System::resolve_flow — which "rte.write" sender keys
/// a contract flow of `instance` would resolve to (empty = nothing routable,
/// so no monitor would be compiled from the clause).
std::vector<std::string> resolve_flow(const vfb::Composition& model,
                                      const std::string& instance,
                                      const std::string& flow) {
  const SplitFlow f = split_flow(flow);
  const Port* p = nullptr;
  const PortInterface* iface = sr_interface(model, instance, f.port, &p);
  if (iface == nullptr) return {};

  std::string src_instance = instance;
  std::string src_port = f.port;
  if (p->direction == PortDirection::kRequired) {
    const Connector* conn = model.connection_to(instance, f.port);
    if (conn == nullptr) return {};
    src_instance = conn->from_instance;
    src_port = conn->from_port;
  }
  std::vector<std::string> subjects;
  for (const auto& elem : iface->elements) {
    if (!f.element.empty() && elem.name != f.element) continue;
    subjects.push_back(slot_key(src_instance, src_port, elem.name));
  }
  return subjects;
}

// ---------------------------------------------------------------------------
// V8 / V12: slot dataflow graph with abstract interval propagation.
// ---------------------------------------------------------------------------

/// Abstract value of one slot: Bottom (no dynamic data ever reaches it),
/// an interval hull, or Top (reached by an unconstrained source).
struct AbsVal {
  enum class Kind { kBottom, kInterval, kTop };
  Kind kind = Kind::kBottom;
  Interval iv{0, 0};
  std::string origin;  ///< Human-readable provenance for messages.

  static AbsVal bottom() { return {}; }
  static AbsVal top(std::string origin) {
    return {Kind::kTop, {0, 0}, std::move(origin)};
  }
  static AbsVal interval(Interval iv, std::string origin) {
    return {Kind::kInterval, iv, std::move(origin)};
  }

  bool operator==(const AbsVal& o) const {
    return kind == o.kind && (kind != Kind::kInterval || iv == o.iv);
  }
};

AbsVal join(const AbsVal& a, const AbsVal& b) {
  using K = AbsVal::Kind;
  if (a.kind == K::kBottom) return b;
  if (b.kind == K::kBottom) return a;
  if (a.kind == K::kTop) return a;
  if (b.kind == K::kTop) return b;
  AbsVal out = a;
  out.iv.lo = std::min(a.iv.lo, b.iv.lo);
  out.iv.hi = std::max(a.iv.hi, b.iv.hi);
  return out;
}

/// One runnable's dataflow footprint: the slots it reads (data accesses plus
/// its data-received trigger) and the slots it writes.
struct RunnableFlow {
  const std::string* instance;
  const Runnable* runnable;
  std::vector<std::string> reads;
  std::vector<std::string> writes;
  /// Provided-port (port, element) per written slot, parallel to `writes`.
  std::vector<std::pair<std::string, std::string>> write_ports;
};

struct FlowGraph {
  std::vector<RunnableFlow> runnables;
  /// Connector edges between slots: from provided slot to required slot.
  std::vector<std::pair<std::string, std::string>> edges;
  /// Written slot -> is it written at all (for V3-overlap guards).
  std::set<std::string> written;
  /// Required slots that have a feeding connector.
  std::set<std::string> fed;
};

FlowGraph build_flow_graph(const vfb::Composition& model) {
  FlowGraph g;
  for (const auto& inst : model.instances()) {
    const ComponentType* type = type_of(model, inst.name);
    if (type == nullptr) continue;
    for (const auto& r : type->runnables) {
      RunnableFlow rf;
      rf.instance = &inst.name;
      rf.runnable = &r;
      for (const auto& acc : r.accesses) {
        const std::string key = slot_key(inst.name, acc.port, acc.element);
        if (is_write(acc.kind)) {
          rf.writes.push_back(key);
          rf.write_ports.emplace_back(acc.port, acc.element);
          g.written.insert(key);
        } else {
          rf.reads.push_back(key);
        }
      }
      if (r.trigger.kind == RunnableTrigger::Kind::kDataReceived) {
        rf.reads.push_back(
            slot_key(inst.name, r.trigger.port, r.trigger.element));
      }
      g.runnables.push_back(std::move(rf));
    }
  }
  for (const auto& c : model.connectors()) {
    const PortInterface* iface =
        sr_interface(model, c.from_instance, c.from_port);
    if (iface == nullptr) continue;
    for (const auto& elem : iface->elements) {
      g.edges.emplace_back(slot_key(c.from_instance, c.from_port, elem.name),
                           slot_key(c.to_instance, c.to_port, elem.name));
      g.fed.insert(slot_key(c.to_instance, c.to_port, elem.name));
    }
  }
  return g;
}

/// Interval fixpoint over the graph. Monotone in the (Bottom < intervals <
/// Top) lattice with hull joins over the finite set of guarantee endpoints,
/// so it converges.
std::map<std::string, AbsVal> propagate_ranges(const vfb::Composition& model,
                                               const ContractMap& contracts,
                                               const FlowGraph& g) {
  std::map<std::string, AbsVal> val;
  const auto get = [&](const std::string& key) -> AbsVal {
    const auto it = val.find(key);
    return it == val.end() ? AbsVal::bottom() : it->second;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    const auto raise = [&](const std::string& key, const AbsVal& v) {
      AbsVal next = join(get(key), v);
      if (!(next == get(key))) {
        val[key] = std::move(next);
        changed = true;
      }
    };
    for (const auto& rf : g.runnables) {
      const auto cit = contracts.find(*rf.instance);
      for (std::size_t i = 0; i < rf.writes.size(); ++i) {
        // A direct guarantee on the written flow is authoritative (the
        // component promises the range regardless of what it reads — V7
        // checks the adjacent links); otherwise the write relays the hull
        // of everything the runnable reads, and a read-free writer is an
        // unconstrained source.
        const FlowSpec* guarantee =
            cit == contracts.end()
                ? nullptr
                : flow_of(cit->second, rf.write_ports[i].first,
                          rf.write_ports[i].second, /*assume=*/false);
        if (guarantee != nullptr && !unconstrained(guarantee->range)) {
          raise(rf.writes[i],
                AbsVal::interval(guarantee->range,
                                 "guarantee " + cit->second.name + "." +
                                     guarantee->flow));
          continue;
        }
        if (rf.reads.empty()) {
          raise(rf.writes[i],
                AbsVal::top("unconstrained writer " +
                            dot(*rf.instance, rf.runnable->name)));
          continue;
        }
        AbsVal relay = AbsVal::bottom();
        for (const auto& read : rf.reads) relay = join(relay, get(read));
        if (relay.kind != AbsVal::Kind::kBottom) raise(rf.writes[i], relay);
      }
    }
    for (const auto& [from, to] : g.edges) raise(to, get(from));
  }
  return val;
}

// ---------------------------------------------------------------------------
// V9: generator mirror + holistic fixpoint.
// ---------------------------------------------------------------------------

std::string periodic_task_name(const std::string& instance, Duration period) {
  return "tk|" + instance + "|" + std::to_string(period);
}
std::string event_task_name(const std::string& instance,
                            const std::string& runnable) {
  return "tk|" + instance + "|" + runnable;
}

/// Mirror of System::inlined_wcet, lenient on unresolvable calls (those are
/// V1/V2 errors, not this pass's business).
Duration inlined_wcet(const vfb::Composition& model,
                      const std::string& instance, const Runnable& r) {
  const ComponentType* type = type_of(model, instance);
  if (type == nullptr) return 0;
  Duration inlined = 0;
  for (const auto& call : r.server_calls) {
    const auto sep = call.find('.');
    if (sep == std::string::npos) continue;
    const Port* p = find_port(*type, call.substr(0, sep));
    if (p == nullptr) continue;
    const PortInterface* iface = model.find_interface(p->interface);
    if (iface == nullptr) continue;
    for (const auto& op : iface->operations) {
      if (op.name == call.substr(sep + 1)) inlined += op.wcet;
    }
  }
  return inlined;
}

Duration runnable_wcet(const vfb::Composition& model,
                       const std::string& instance, const Runnable& r) {
  Duration w = r.wcet_bound;
  if (w <= 0 && r.execution_time) w = r.execution_time();
  return w + inlined_wcet(model, instance, r);
}

/// The generator mirror: every task the deployment would emit, plus the
/// writer-task index used to root chains.
struct GeneratedTasks {
  std::vector<analysis::DistTask> tasks;
  /// (instance, runnable) -> event task name for data-received runnables.
  std::map<std::pair<std::string, std::string>, std::string> event_task;
  /// Smallest-period task writing slot (instance, port, element).
  std::map<std::string, std::string> writer_task;
};

GeneratedTasks derive_tasks(const vfb::Composition& model,
                            const DeploymentPlan& plan) {
  GeneratedTasks out;
  std::set<std::string> ecus;
  for (const auto& [_, dep] : plan.instances) ecus.insert(dep.ecu);

  for (const auto& ecu : ecus) {
    struct Group {
      std::string instance;
      Duration period = 0;
      Duration wcet = 0;
    };
    std::vector<Group> groups;
    for (const auto& inst : model.instances()) {
      const auto dep = plan.instances.find(inst.name);
      if (dep == plan.instances.end() || dep->second.ecu != ecu) continue;
      const ComponentType* type = type_of(model, inst.name);
      if (type == nullptr) continue;
      for (const auto& r : type->runnables) {
        switch (r.trigger.kind) {
          case RunnableTrigger::Kind::kTiming: {
            auto git = std::find_if(groups.begin(), groups.end(),
                                    [&](const Group& g) {
                                      return g.instance == inst.name &&
                                             g.period == r.trigger.period;
                                    });
            if (git == groups.end()) {
              groups.push_back(Group{inst.name, r.trigger.period, 0});
              git = groups.end() - 1;
            }
            git->wcet += runnable_wcet(model, inst.name, r);
            break;
          }
          case RunnableTrigger::Kind::kDataReceived: {
            analysis::DistTask t;
            t.name = event_task_name(inst.name, r.name);
            t.ecu = ecu;
            t.wcet = runnable_wcet(model, inst.name, r);
            t.period = 0;  // inherited through the chain
            t.priority = plan.data_task_priority;
            out.event_task[{inst.name, r.name}] = t.name;
            out.tasks.push_back(std::move(t));
            break;
          }
          case RunnableTrigger::Kind::kInit:
            break;  // runs once before start; no task
        }
      }
    }
    std::sort(groups.begin(), groups.end(), [](const Group& a, const Group& b) {
      if (a.period != b.period) return a.period < b.period;
      return a.instance < b.instance;
    });
    int rank = 0;
    for (const auto& g : groups) {
      analysis::DistTask t;
      t.name = periodic_task_name(g.instance, g.period);
      t.ecu = ecu;
      t.wcet = g.wcet;
      t.period = g.period;
      t.priority = vfb::kPeriodicBasePriority - rank++;
      out.tasks.push_back(std::move(t));
    }
  }

  // Which task publishes each written slot: the smallest-period timing
  // runnable wins (System::writer_period semantics); event-relay writers
  // root in their event task.
  for (const auto& inst : model.instances()) {
    if (plan.instances.find(inst.name) == plan.instances.end()) continue;
    const ComponentType* type = type_of(model, inst.name);
    if (type == nullptr) continue;
    std::map<std::string, Duration> best_period;
    for (const auto& r : type->runnables) {
      for (const auto& acc : r.accesses) {
        if (!is_write(acc.kind)) continue;
        const std::string key = slot_key(inst.name, acc.port, acc.element);
        if (r.trigger.kind == RunnableTrigger::Kind::kTiming &&
            r.trigger.period > 0) {
          const auto bit = best_period.find(key);
          if (bit == best_period.end() || r.trigger.period < bit->second) {
            best_period[key] = r.trigger.period;
            out.writer_task[key] =
                periodic_task_name(inst.name, r.trigger.period);
          }
        } else if (r.trigger.kind == RunnableTrigger::Kind::kDataReceived &&
                   best_period.find(key) == best_period.end() &&
                   out.writer_task.find(key) == out.writer_task.end()) {
          out.writer_task[key] = event_task_name(inst.name, r.name);
        }
      }
    }
  }
  return out;
}

/// One activation edge of the generated system: the writer's task to a
/// data-received consumer, carried by the bus (cross-ECU) or directly
/// (same ECU).
struct ChainEdge {
  std::string sender_key;  ///< Producing slot (sender ECU side).
  std::string from_task;
  std::string to_task;  ///< Empty = delivered but no event task.
  std::string to_ecu;
  bool cross_ecu = false;
  Duration sort_period = sim::kForever;  ///< Writer's period, for frame ids.
};

std::vector<ChainEdge> derive_edges(const vfb::Composition& model,
                                    const DeploymentPlan& plan,
                                    const GeneratedTasks& gen) {
  std::vector<ChainEdge> edges;
  std::set<std::tuple<std::string, std::string, std::string>> seen;
  for (const auto& c : model.connectors()) {
    const auto from_dep = plan.instances.find(c.from_instance);
    const auto to_dep = plan.instances.find(c.to_instance);
    if (from_dep == plan.instances.end() || to_dep == plan.instances.end()) {
      continue;
    }
    const PortInterface* iface =
        sr_interface(model, c.from_instance, c.from_port);
    if (iface == nullptr) continue;
    const ComponentType* to_type = type_of(model, c.to_instance);
    if (to_type == nullptr) continue;
    const bool cross = from_dep->second.ecu != to_dep->second.ecu;
    for (const auto& elem : iface->elements) {
      const std::string sender_key =
          slot_key(c.from_instance, c.from_port, elem.name);
      const auto wit = gen.writer_task.find(sender_key);
      if (wit == gen.writer_task.end()) continue;  // never written (V3)
      // Consuming event tasks of this element on the receiver.
      bool any_event = false;
      for (const auto& r : to_type->runnables) {
        if (r.trigger.kind != RunnableTrigger::Kind::kDataReceived ||
            r.trigger.port != c.to_port || r.trigger.element != elem.name) {
          continue;
        }
        const auto eit = gen.event_task.find({c.to_instance, r.name});
        if (eit == gen.event_task.end()) continue;
        any_event = true;
        if (!seen.insert({sender_key, wit->second, eit->second}).second) {
          continue;
        }
        ChainEdge e;
        e.sender_key = sender_key;
        e.from_task = wit->second;
        e.to_task = eit->second;
        e.to_ecu = to_dep->second.ecu;
        e.cross_ecu = cross;
        edges.push_back(std::move(e));
      }
      // Cross-ECU delivery without an event consumer still loads the bus.
      if (cross && !any_event &&
          seen.insert({sender_key, wit->second, "ecu:" + to_dep->second.ecu})
              .second) {
        ChainEdge e;
        e.sender_key = sender_key;
        e.from_task = wit->second;
        e.to_ecu = to_dep->second.ecu;
        e.cross_ecu = true;
        edges.push_back(std::move(e));
      }
    }
  }
  // Frame-id ordering mirror: rate-monotonic by the writer's period.
  std::map<std::string, Duration> task_period;
  for (const auto& t : gen.tasks) {
    task_period[t.name] = t.period > 0 ? t.period : sim::kForever;
  }
  for (auto& e : edges) {
    const auto it = task_period.find(e.from_task);
    if (it != task_period.end()) e.sort_period = it->second;
  }
  std::sort(edges.begin(), edges.end(),
            [](const ChainEdge& a, const ChainEdge& b) {
              if (a.cross_ecu != b.cross_ecu) return a.cross_ecu > b.cross_ecu;
              if (a.sort_period != b.sort_period) {
                return a.sort_period < b.sort_period;
              }
              if (a.sender_key != b.sender_key) {
                return a.sender_key < b.sender_key;
              }
              return a.to_task < b.to_task;
            });
  return edges;
}

}  // namespace

ChainAnalysis analyze_chains(const vfb::Composition& model,
                             const DeploymentPlan& plan,
                             const ContractMap& contracts) {
  ChainAnalysis out;
  const GeneratedTasks gen = derive_tasks(model, plan);
  const std::vector<ChainEdge> edges = derive_edges(model, plan, gen);

  // Periods must be derivable: chain heads carry their own, everything else
  // inherits through the edges. Tasks that stay period-free (event tasks
  // nothing ever activates — V3/V12 territory) are excluded from the model.
  std::map<std::string, Duration> period;
  for (const auto& t : gen.tasks) period[t.name] = t.period;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& e : edges) {
      if (e.to_task.empty()) continue;
      const Duration src = period.at(e.from_task);
      Duration& dst = period.at(e.to_task);
      if (src > 0 && (dst <= 0 || src < dst)) {
        dst = src;
        changed = true;
      }
    }
  }
  std::set<std::string> included;
  for (const auto& t : gen.tasks) {
    if (period.at(t.name) > 0) included.insert(t.name);
  }

  analysis::HolisticModel holistic;
  for (const auto& t : gen.tasks) {
    if (included.count(t.name)) holistic.add_task(t);
  }
  std::uint32_t next_id = plan.can_base_id;
  std::map<std::string, std::vector<std::string>> msgs_of_sender;
  for (const auto& e : edges) {
    if (!included.count(e.from_task)) continue;
    if (!e.to_task.empty() && !included.count(e.to_task)) continue;
    if (e.cross_ecu) {
      analysis::DistMessage m;
      m.name = "msg|" + e.sender_key + "|" +
               (e.to_task.empty() ? e.to_ecu : e.to_task);
      m.id = next_id++;
      m.bytes = 8;  // CAN maximum payload — conservative for any element
      m.from_task = e.from_task;
      m.to_task = e.to_task;
      msgs_of_sender[e.sender_key].push_back(m.name);
      holistic.add_message(std::move(m));
    } else if (!e.to_task.empty()) {
      holistic.add_dependency(e.from_task, e.to_task);
    }
  }

  analysis::BusSpec bus;
  if (plan.bus == vfb::BusKind::kCan) {
    bus.can_bitrate_bps = plan.can.bitrate_bps;
  } else {
    bus.use_flexray = true;
    bus.flexray = plan.flexray;
    // Mirror the generator's config adjustment (System::build raises the
    // payload floor; the slot count is raised inside the holistic model).
    bus.flexray.static_payload_bytes =
        std::max<std::size_t>(bus.flexray.static_payload_bytes, 8);
  }
  const analysis::HolisticResult result = holistic.analyze(bus);
  out.schedulable = result.schedulable;
  out.iterations = result.iterations;

  // One bound per latency assumption of every bound contract.
  for (const auto& [instance, contract] : contracts) {
    for (const auto& a : contract.assumptions) {
      if (a.timing.latency <= 0) continue;
      ChainBound cb;
      cb.contract = contract.name;
      cb.instance = instance;
      cb.flow = a.flow;
      cb.deadline = a.timing.latency;

      const SplitFlow f = split_flow(a.flow);
      const ComponentType* type = type_of(model, instance);
      if (type == nullptr) {
        out.bounds.push_back(std::move(cb));
        continue;
      }
      // The chain tail: the data-received runnable this flow activates
      // (same selection as System::build_monitors' sink_detail).
      for (const auto& r : type->runnables) {
        if (r.trigger.kind == RunnableTrigger::Kind::kDataReceived &&
            r.trigger.port == f.port &&
            (f.element.empty() || r.trigger.element == f.element)) {
          const auto eit = gen.event_task.find({instance, r.name});
          if (eit != gen.event_task.end()) cb.sink_task = eit->second;
        }
      }
      if (result.schedulable) {
        if (!cb.sink_task.empty() && included.count(cb.sink_task)) {
          cb.bound = result.task_response.at(cb.sink_task);
          cb.computable = true;
        } else if (cb.sink_task.empty()) {
          // No event consumer: the obligation ends at delivery (cross-ECU)
          // or at the producer's publication (same ECU).
          Duration worst = 0;
          bool found = false;
          for (const auto& subject : resolve_flow(model, instance, a.flow)) {
            const auto mit = msgs_of_sender.find(subject);
            if (mit != msgs_of_sender.end()) {
              for (const auto& mname : mit->second) {
                worst = std::max(worst, result.message_response.at(mname));
                found = true;
              }
              continue;
            }
            const auto wit = gen.writer_task.find(subject);
            if (wit != gen.writer_task.end() &&
                included.count(wit->second)) {
              worst = std::max(worst, result.task_response.at(wit->second));
              found = true;
            }
          }
          cb.bound = worst;
          cb.computable = found;
        }
      }
      out.bounds.push_back(std::move(cb));
    }
  }
  return out;
}

void check_flow_ranges(const vfb::Composition& model,
                       const ContractMap& contracts, Diagnostics& out) {
  const FlowGraph g = build_flow_graph(model);
  const std::map<std::string, AbsVal> val =
      propagate_ranges(model, contracts, g);
  const auto value = [&](const std::string& key) -> AbsVal {
    const auto it = val.find(key);
    return it == val.end() ? AbsVal::bottom() : it->second;
  };

  // --- V8: every constrained assumption against the propagated hull -------
  for (const auto& [instance, contract] : contracts) {
    for (const auto& a : contract.assumptions) {
      if (unconstrained(a.range)) continue;
      const SplitFlow f = split_flow(a.flow);
      const Port* p = nullptr;
      const PortInterface* iface = sr_interface(model, instance, f.port, &p);
      if (iface == nullptr || p->direction != PortDirection::kRequired) {
        continue;
      }
      const Connector* conn = model.connection_to(instance, f.port);
      if (conn == nullptr) continue;  // V3's finding, nothing flows
      // A direct guarantee on the feeding flow is V7's jurisdiction — V8
      // only reports what the pairwise check cannot see.
      const auto pit = contracts.find(conn->from_instance);
      for (const auto& elem : iface->elements) {
        if (!f.element.empty() && elem.name != f.element) continue;
        if (pit != contracts.end() &&
            flow_of(pit->second, conn->from_port, elem.name,
                    /*assume=*/false) != nullptr) {
          continue;
        }
        const std::string key = slot_key(instance, f.port, elem.name);
        const AbsVal v = value(key);
        const std::string subject = key;
        switch (v.kind) {
          case AbsVal::Kind::kBottom:
            break;  // nothing dynamic arrives: V3/V12 territory
          case AbsVal::Kind::kTop:
            out.add("V8", Severity::kWarning, subject,
                    "assumption range " + interval_str(a.range) +
                        " cannot be established: the transitive source is "
                        "unconstrained (" + v.origin + ")",
                    "add a range guarantee to the producing component's "
                    "contract");
            break;
          case AbsVal::Kind::kInterval:
            if (v.iv.hi < a.range.lo || v.iv.lo > a.range.hi) {
              out.add("V8", Severity::kError, subject,
                      "transitive value range " + interval_str(v.iv) +
                          " (via " + v.origin +
                          ") can never satisfy assumption " +
                          interval_str(a.range),
                      "the chain delivers values outside the assumed window; "
                      "fix the source guarantee or the assumption");
            } else if (!a.range.contains(v.iv)) {
              out.add("V8", Severity::kWarning, subject,
                      "transitive value range " + interval_str(v.iv) +
                          " (via " + v.origin + ") may exceed assumption " +
                          interval_str(a.range),
                      "tighten the upstream guarantees or widen the "
                      "assumption");
            }
            break;
        }
      }
    }
  }

  // --- V12: liveness on the same graph ------------------------------------
  // Forward: can a slot's value ever change after init? Autonomous writers
  // (no reads) produce; relays produce iff some input does.
  std::map<std::string, bool> productive;
  const auto prod = [&](const std::string& key) {
    const auto it = productive.find(key);
    return it != productive.end() && it->second;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    const auto raise = [&](const std::string& key, bool v) {
      if (v && !prod(key)) {
        productive[key] = true;
        changed = true;
      }
    };
    for (const auto& rf : g.runnables) {
      bool produces = rf.reads.empty();
      for (const auto& read : rf.reads) produces = produces || prod(read);
      for (const auto& w : rf.writes) raise(w, produces);
    }
    for (const auto& [from, to] : g.edges) raise(to, prod(from));
  }
  // Backward: does a written value ever reach a terminal consumer? A reader
  // that writes nothing consumes; a relay consumes iff something it writes
  // is consumed downstream.
  std::map<std::string, bool> consumed;
  const auto cons = [&](const std::string& key) {
    const auto it = consumed.find(key);
    return it != consumed.end() && it->second;
  };
  changed = true;
  while (changed) {
    changed = false;
    const auto raise = [&](const std::string& key, bool v) {
      if (v && !cons(key)) {
        consumed[key] = true;
        changed = true;
      }
    };
    for (const auto& rf : g.runnables) {
      bool consumes = rf.writes.empty();
      for (const auto& w : rf.writes) consumes = consumes || cons(w);
      for (const auto& read : rf.reads) raise(read, consumes);
    }
    for (const auto& [from, to] : g.edges) raise(from, cons(to));
  }

  // Fire only where V3 stays silent: the immediate link is fine, the chain
  // beyond it is dead. One diagnostic per slot.
  std::set<std::string> reported;
  for (const auto& rf : g.runnables) {
    for (const auto& read : rf.reads) {
      if (prod(read) || !g.fed.count(read)) continue;  // unfed: V3 warning
      // The feeding slot must itself be written (else V3 flags the element
      // as never written) — V12 adds the *transitive* case.
      bool fed_by_written = false;
      for (const auto& [from, to] : g.edges) {
        if (to == read && g.written.count(from)) fed_by_written = true;
      }
      if (!fed_by_written) continue;
      if (!reported.insert(read).second) continue;
      out.add("V12", Severity::kWarning, read,
              "dead flow: the value read here can never change — every "
              "transitive source only relays initial values",
              "the relay chain upstream has no autonomous producer; connect "
              "a real source or drop the consumer");
    }
  }
  for (const auto& rf : g.runnables) {
    for (std::size_t i = 0; i < rf.writes.size(); ++i) {
      const std::string& w = rf.writes[i];
      if (cons(w)) continue;
      // Only when the write is connected and its elements are read by the
      // immediate receiver (both V3-silent): the dead end is further down.
      bool delivered_and_read = false;
      for (const auto& [from, to] : g.edges) {
        if (from != w) continue;
        for (const auto& other : g.runnables) {
          for (const auto& read : other.reads) {
            if (read == to) delivered_and_read = true;
          }
        }
      }
      if (!delivered_and_read) continue;
      if (!reported.insert(w).second) continue;
      out.add("V12", Severity::kInfo, w,
              "dead flow: this write is relayed downstream but no terminal "
              "consumer ever reads the result",
              "the relay chain ends in unread or unconnected flows; wire up "
              "a consumer or remove the chain");
    }
  }
}

void check_chain_deadlines(const vfb::Composition& model,
                           const DeploymentPlan& plan,
                           const ContractMap& contracts, Diagnostics& out) {
  bool any = false;
  for (const auto& [_, contract] : contracts) {
    for (const auto& a : contract.assumptions) {
      if (a.timing.latency > 0) any = true;
    }
  }
  if (!any) return;
  const ChainAnalysis chains = analyze_chains(model, plan, contracts);
  for (const auto& b : chains.bounds) {
    const std::string subject = dot(b.instance, b.flow);
    if (!b.computable) {
      out.add("V9", Severity::kWarning, subject,
              "end-to-end latency obligation of contract " + b.contract +
                  " (" + std::to_string(b.deadline) +
                  " ns) cannot be statically bounded" +
                  (chains.schedulable
                       ? " (chain does not resolve to analyzable tasks)"
                       : " (holistic fixpoint found the deployment "
                         "unschedulable or divergent)"),
              "give every chain stage a WCET bound and a derivable period");
      continue;
    }
    if (b.bound > b.deadline) {
      out.add("V9", Severity::kError, subject,
              "contract " + b.contract + " assumes latency <= " +
                  std::to_string(b.deadline) +
                  " ns but the holistic bound over " +
                  (b.sink_task.empty() ? std::string("the delivery path")
                                       : "task " + b.sink_task) +
                  " is " + std::to_string(b.bound) + " ns",
              "shorten the chain, raise priorities, or relax the assumption");
    } else {
      out.add("V9", Severity::kInfo, subject,
              "end-to-end obligation holds statically: bound " +
                  std::to_string(b.bound) + " ns <= deadline " +
                  std::to_string(b.deadline) + " ns (slack " +
                  std::to_string(b.deadline - b.bound) + " ns, " +
                  std::to_string(chains.iterations) +
                  " fixpoint iterations)");
    }
  }
}

void check_monitor_coverage(const vfb::Composition& model,
                            const DeploymentPlan* plan,
                            const ContractMap& contracts, Diagnostics& out) {
  std::size_t obligations = 0;
  for (const auto& [instance, contract] : contracts) {
    if (model.find_instance(instance) == nullptr) continue;  // V1's finding
    for (const auto& g : contract.guarantees) {
      const bool timed = g.timing.period > 0;
      if (timed) {
        ++obligations;
        if (resolve_flow(model, instance, g.flow).empty()) {
          out.add("V10", Severity::kWarning, dot(instance, g.flow),
                  "arrival guarantee of contract " + contract.name +
                      " resolves to no traced flow: no monitor will watch it",
                  "name an existing \"port\" or \"port.element\" flow, or "
                  "connect the port");
        }
      }
      if (!unconstrained(g.range)) {
        ++obligations;
        if (resolve_flow(model, instance, g.flow).empty()) {
          out.add("V10", Severity::kWarning, dot(instance, g.flow),
                  "value-range guarantee of contract " + contract.name +
                      " resolves to no traced flow: no range monitor will "
                      "watch it",
                  "name an existing \"port\" or \"port.element\" flow, or "
                  "connect the port");
        }
      }
    }
    for (const auto& a : contract.assumptions) {
      const bool latency_bound = a.timing.latency > 0;
      const bool value_bound = !unconstrained(a.range);
      if (!latency_bound && !value_bound) continue;
      if (latency_bound) ++obligations;
      if (value_bound) ++obligations;
      if (resolve_flow(model, instance, a.flow).empty()) {
        out.add("V10", Severity::kWarning, dot(instance, a.flow),
                (latency_bound ? std::string("latency")
                               : std::string("value-range")) +
                    " assumption of contract " + contract.name +
                    " resolves to no traced flow: no monitor will watch it",
                "the flow must resolve through a feeding connector to a "
                "producer");
      }
    }
    if (contract.behaviour.has_value()) {
      ++obligations;
      bool any_label = false;
      for (const auto& binding : contract.behaviour->bindings) {
        if (!resolve_flow(model, instance, binding.flow).empty()) {
          any_label = true;
        }
      }
      if (!any_label) {
        out.add("V10", Severity::kWarning, instance,
                "behavioural contract " + contract.name +
                    " has no resolvable label binding: the automaton "
                    "observer would see no events",
                "bind at least one flow that resolves to a traced subject");
      }
    }
  }
  if (plan != nullptr && !plan->runtime_verification && obligations > 0) {
    out.add("V10", Severity::kWarning, "deployment",
            "runtime verification is disabled but " +
                std::to_string(obligations) +
                " contract obligation(s) exist: nothing watches them at "
                "runtime",
            "set plan.runtime_verification = true or drop the contracts");
  }
}

void check_resource_budgets(const vfb::Composition& model,
                            const DeploymentPlan& plan,
                            const ContractMap& contracts, Diagnostics& out) {
  // Generated per-instance CPU share: periodic runnables' wcet/period on the
  // instance's ECU (event tasks inherit chain periods and are judged by V9).
  std::map<std::string, double> measured;
  for (const auto& inst : model.instances()) {
    if (plan.instances.find(inst.name) == plan.instances.end()) continue;
    const ComponentType* type = type_of(model, inst.name);
    if (type == nullptr) continue;
    double u = 0.0;
    for (const auto& r : type->runnables) {
      if (r.trigger.kind != RunnableTrigger::Kind::kTiming ||
          r.trigger.period <= 0) {
        continue;
      }
      u += static_cast<double>(runnable_wcet(model, inst.name, r)) /
           static_cast<double>(r.trigger.period);
    }
    measured[inst.name] = u;
  }

  std::map<std::string, double> declared_per_ecu;
  double declared_bus_bps = 0.0;
  for (const auto& [instance, contract] : contracts) {
    const auto dep = plan.instances.find(instance);
    if (dep == plan.instances.end()) continue;
    const contracts::ResourceSpec& v = contract.vertical;
    declared_bus_bps += v.bus_bandwidth_bps;
    if (v.cpu_utilization <= 0) continue;
    declared_per_ecu[dep->second.ecu] += v.cpu_utilization;
    const auto mit = measured.find(instance);
    if (mit != measured.end() && mit->second > v.cpu_utilization) {
      out.add("V11", Severity::kWarning, instance,
              "generated periodic load " + std::to_string(mit->second) +
                  " of instance " + instance +
                  " exceeds its vertical CPU assumption " +
                  std::to_string(v.cpu_utilization) + " (contract " +
                  contract.name + ")",
              "raise the vertical assumption or reduce WCET/periods");
    }
  }
  for (const auto& [ecu, sum] : declared_per_ecu) {
    if (sum > 1.0) {
      out.add("V11", Severity::kError, ecu,
              "vertical CPU assumptions of the instances deployed on " + ecu +
                  " sum to " + std::to_string(sum) +
                  " > 1.0: the contracts oversubscribe the node",
              "move an instance to another ECU or renegotiate the "
              "assumptions");
    }
  }
  const double bitrate = plan.bus == vfb::BusKind::kCan
                             ? static_cast<double>(plan.can.bitrate_bps)
                             : static_cast<double>(plan.flexray.bitrate_bps);
  if (declared_bus_bps > bitrate && bitrate > 0) {
    out.add("V11", Severity::kWarning, "bus",
            "declared bus-bandwidth assumptions sum to " +
                std::to_string(declared_bus_bps) + " bps > bus bitrate " +
                std::to_string(bitrate) + " bps",
            "the vertical assumptions exceed what the medium offers");
  }
}

}  // namespace orte::validation
