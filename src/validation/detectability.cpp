#include "validation/detectability.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace orte::validation {

namespace {

using contracts::Contract;
using contracts::FlowSpec;
using vfb::ComponentInstance;
using vfb::ComponentType;
using vfb::Connector;
using vfb::DataAccessKind;
using vfb::DeploymentPlan;
using vfb::Port;
using vfb::PortDirection;
using vfb::PortInterface;
using vfb::Runnable;
using vfb::RunnableTrigger;

using ContractMap = std::map<std::string, Contract, std::less<>>;

bool is_write(DataAccessKind k) {
  return k == DataAccessKind::kImplicitWrite ||
         k == DataAccessKind::kExplicitWrite;
}

std::string dot(std::string_view a, std::string_view b, std::string_view c) {
  std::string out(a);
  out += '.';
  out += b;
  out += '.';
  out += c;
  return out;
}

std::string slot_key(std::string_view instance, std::string_view port,
                     std::string_view element) {
  return dot(instance, port, element);
}

std::string first_segment(std::string_view key) {
  return std::string(key.substr(0, key.find('.')));
}

const ComponentType* type_of(const vfb::Composition& model,
                             const std::string& instance) {
  const ComponentInstance* inst = model.find_instance(instance);
  return inst == nullptr ? nullptr : model.find_type(inst->type);
}

const Port* find_port(const ComponentType& type, std::string_view name) {
  for (const auto& p : type.ports) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const PortInterface* sr_interface(const vfb::Composition& model,
                                  const std::string& instance,
                                  const std::string& port,
                                  const Port** port_out = nullptr) {
  const ComponentType* type = type_of(model, instance);
  if (type == nullptr) return nullptr;
  const Port* p = find_port(*type, port);
  if (p == nullptr) return nullptr;
  const PortInterface* iface = model.find_interface(p->interface);
  if (iface == nullptr || iface->kind != PortInterface::Kind::kSenderReceiver) {
    return nullptr;
  }
  if (port_out != nullptr) *port_out = p;
  return iface;
}

struct SplitFlow {
  std::string port;
  std::string element;
};
SplitFlow split_flow(const std::string& flow) {
  const auto d = flow.find('.');
  if (d == std::string::npos) return {flow, {}};
  return {flow.substr(0, d), flow.substr(d + 1)};
}

/// Model-only mirror of System::resolve_flow (see flow_analysis.cpp): the
/// "rte.write" sender keys a contract flow of `instance` resolves to.
std::vector<std::string> resolve_flow(const vfb::Composition& model,
                                      const std::string& instance,
                                      const std::string& flow) {
  const SplitFlow f = split_flow(flow);
  const Port* p = nullptr;
  const PortInterface* iface = sr_interface(model, instance, f.port, &p);
  if (iface == nullptr) return {};

  std::string src_instance = instance;
  std::string src_port = f.port;
  if (p->direction == PortDirection::kRequired) {
    const Connector* conn = model.connection_to(instance, f.port);
    if (conn == nullptr) return {};
    src_instance = conn->from_instance;
    src_port = conn->from_port;
  }
  std::vector<std::string> subjects;
  for (const auto& elem : iface->elements) {
    if (!f.element.empty() && elem.name != f.element) continue;
    subjects.push_back(slot_key(src_instance, src_port, elem.name));
  }
  return subjects;
}

/// Mirror of System::resolve_flow_endpoints: (producer key, receiver key)
/// pairs for a required-port flow.
struct FlowEndpoint {
  std::string producer_key;
  std::string receiver_key;
};
std::vector<FlowEndpoint> resolve_flow_endpoints(const vfb::Composition& model,
                                                 const std::string& instance,
                                                 const std::string& flow) {
  const SplitFlow f = split_flow(flow);
  const Port* p = nullptr;
  const PortInterface* iface = sr_interface(model, instance, f.port, &p);
  if (iface == nullptr || p->direction != PortDirection::kRequired) return {};
  const Connector* conn = model.connection_to(instance, f.port);
  if (conn == nullptr) return {};
  std::vector<FlowEndpoint> endpoints;
  for (const auto& elem : iface->elements) {
    if (!f.element.empty() && elem.name != f.element) continue;
    endpoints.push_back(
        {slot_key(conn->from_instance, conn->from_port, elem.name),
         slot_key(instance, f.port, elem.name)});
  }
  return endpoints;
}

bool range_constrained(const contracts::Interval& range) {
  return range.lo != INT64_MIN || range.hi != INT64_MAX;
}

/// Sender-key match mirroring the fi injector: exact key, or instance
/// prefix followed by '.'. An empty target matches everything.
bool key_matches(const std::string& target, std::string_view key) {
  if (target.empty() || key == target) return true;
  return key.size() > target.size() &&
         key.compare(0, target.size(), target) == 0 &&
         key[target.size()] == '.';
}

/// Local fault label (fi::Fault::label lives in the fi library, which sits
/// above validation in the link order — the analysis renders its own).
std::string fault_label(const fi::Fault& f) {
  std::string_view kind;
  switch (f.kind) {
    case fi::FaultKind::kFrameDrop:
      kind = "frame_drop";
      break;
    case fi::FaultKind::kFrameCorrupt:
      kind = "frame_corrupt";
      break;
    case fi::FaultKind::kFrameDelay:
      kind = "frame_delay";
      break;
    case fi::FaultKind::kBabblingIdiot:
      kind = "babbling_idiot";
      break;
    case fi::FaultKind::kValueCorrupt:
      kind = "value_corrupt";
      break;
    case fi::FaultKind::kStuckAt:
      kind = "stuck_at";
      break;
    case fi::FaultKind::kTaskCrash:
      kind = "crash";
      break;
    case fi::FaultKind::kWcetOverrun:
      kind = "wcet_overrun";
      break;
    case fi::FaultKind::kExecutionJitter:
      kind = "exec_jitter";
      break;
    case fi::FaultKind::kClockDrift:
      kind = "clock_drift";
      break;
  }
  std::string out(kind);
  out += ':';
  out += f.target.empty() ? "*" : f.target;
  return out;
}

// --- Perturbation atoms -------------------------------------------------------

/// One perturbed observable. The kinds partition what the trace can show:
/// a fault and a monitor meet exactly when they name the same atom.
struct Atom {
  enum class Kind {
    kWriteValue,    ///< The value published under a sender key changes.
    kWriteTiming,   ///< The instants of writes under a sender key shift.
    kWriteAbsence,  ///< Writes under a sender key stop entirely.
    kDeliverValue,  ///< The value arriving at a receiver slot changes.
    kDelivery,      ///< Delivery along one connector edge is lost/late.
    kTaskTiming,    ///< An instance's task timing records degrade.
  };
  Kind kind;
  std::string key;

  auto operator<=>(const Atom&) const = default;
};

std::string render(const Atom& a) {
  std::string_view prefix;
  switch (a.kind) {
    case Atom::Kind::kWriteValue:
      prefix = "write-value ";
      break;
    case Atom::Kind::kWriteTiming:
      prefix = "write-timing ";
      break;
    case Atom::Kind::kWriteAbsence:
      prefix = "write-absence ";
      break;
    case Atom::Kind::kDeliverValue:
      prefix = "deliver-value ";
      break;
    case Atom::Kind::kDelivery:
      prefix = "delivery ";
      break;
    case Atom::Kind::kTaskTiming:
      prefix = "task-timing ";
      break;
  }
  return std::string(prefix) + a.key;
}

// --- World model --------------------------------------------------------------

/// One connector edge at element granularity, with deployment context.
struct Edge {
  std::string producer_key;  ///< Sender slot key ("rte.write" subject).
  std::string receiver_key;  ///< Receiver slot key ("rte.deliver" subject).
  std::string src_instance;
  std::string dst_instance;
  std::string src_ecu;  ///< Empty when the producer is not deployed.
  std::string dst_ecu;
  bool cross_ecu = false;
};

/// Read/write slot footprint of one runnable (mirror of the V8 graph).
struct RunnableIo {
  std::string instance;
  bool periodic = false;
  std::vector<std::string> reads;
  std::vector<std::string> writes;
};

struct World {
  std::vector<Edge> edges;
  std::vector<RunnableIo> runnables;
  /// Instance -> every sender slot key its runnables write.
  std::map<std::string, std::set<std::string>> writes_of;
  /// Instances with at least one timing-triggered runnable.
  std::set<std::string> periodic_instances;
};

World build_world(const vfb::Composition& model, const DeploymentPlan& plan) {
  World w;
  for (const auto& inst : model.instances()) {
    const ComponentType* type = type_of(model, inst.name);
    if (type == nullptr) continue;
    for (const auto& r : type->runnables) {
      RunnableIo io;
      io.instance = inst.name;
      io.periodic = r.trigger.kind == RunnableTrigger::Kind::kTiming;
      if (io.periodic) w.periodic_instances.insert(inst.name);
      for (const auto& acc : r.accesses) {
        const std::string key = slot_key(inst.name, acc.port, acc.element);
        if (is_write(acc.kind)) {
          io.writes.push_back(key);
          w.writes_of[inst.name].insert(key);
        } else {
          io.reads.push_back(key);
        }
      }
      if (r.trigger.kind == RunnableTrigger::Kind::kDataReceived) {
        io.reads.push_back(
            slot_key(inst.name, r.trigger.port, r.trigger.element));
      }
      w.runnables.push_back(std::move(io));
    }
  }
  const auto ecu_of = [&plan](const std::string& instance) -> std::string {
    const auto it = plan.instances.find(instance);
    return it == plan.instances.end() ? std::string() : it->second.ecu;
  };
  for (const auto& c : model.connectors()) {
    const PortInterface* iface =
        sr_interface(model, c.from_instance, c.from_port);
    if (iface == nullptr) continue;
    for (const auto& elem : iface->elements) {
      Edge e;
      e.producer_key = slot_key(c.from_instance, c.from_port, elem.name);
      e.receiver_key = slot_key(c.to_instance, c.to_port, elem.name);
      e.src_instance = c.from_instance;
      e.dst_instance = c.to_instance;
      e.src_ecu = ecu_of(c.from_instance);
      e.dst_ecu = ecu_of(c.to_instance);
      e.cross_ecu =
          !e.src_ecu.empty() && !e.dst_ecu.empty() && e.src_ecu != e.dst_ecu;
      w.edges.push_back(std::move(e));
    }
  }
  return w;
}

// --- Monitor inventory --------------------------------------------------------

/// A compiled plane plus the atom it observes.
struct Plane {
  MonitorPlane pub;
  Atom atom;
};

std::vector<Plane> build_planes(const vfb::Composition& model,
                                const DeploymentPlan& plan,
                                const ContractMap& contracts, const World& w) {
  std::vector<Plane> planes;
  const auto add = [&planes](MonitorPlane::Kind kind, std::string contract,
                             Atom atom, std::string blame) {
    planes.push_back(Plane{MonitorPlane{kind, std::move(contract),
                                        render(atom), std::move(blame)},
                           std::move(atom)});
  };

  // (1) Deadline monitors: one per generated *periodic* task (event tasks
  // get a monitor too, but with no period there is no bound to miss).
  for (const auto& instance : w.periodic_instances) {
    const auto cit = contracts.find(instance);
    add(MonitorPlane::Kind::kDeadline,
        cit == contracts.end() ? "tk|" + instance : cit->second.name,
        Atom{Atom::Kind::kTaskTiming, instance}, instance);
  }

  for (const auto& [instance, contract] : contracts) {
    // (2) Arrival monitors: periodic guarantees watch write timing.
    for (const auto& g : contract.guarantees) {
      if (g.timing.period <= 0) continue;
      for (const auto& key : resolve_flow(model, instance, g.flow)) {
        add(MonitorPlane::Kind::kArrival, contract.name,
            Atom{Atom::Kind::kWriteTiming, key}, first_segment(key));
      }
    }
    // (2b) Guarantee-side range monitors watch written values.
    for (const auto& g : contract.guarantees) {
      if (!range_constrained(g.range)) continue;
      for (const auto& key : resolve_flow(model, instance, g.flow)) {
        add(MonitorPlane::Kind::kRangeWrite, contract.name,
            Atom{Atom::Kind::kWriteValue, key}, first_segment(key));
      }
    }
    // (2c) Assumption-side range monitors watch delivered values and blame
    // the feeding producer.
    for (const auto& a : contract.assumptions) {
      if (!range_constrained(a.range)) continue;
      for (const auto& ep : resolve_flow_endpoints(model, instance, a.flow)) {
        add(MonitorPlane::Kind::kRangeDeliver, contract.name,
            Atom{Atom::Kind::kDeliverValue, ep.receiver_key},
            first_segment(ep.producer_key));
      }
    }
    // (3) Latency monitors watch one delivery edge (producer write ->
    // consumer activation) and blame the producer.
    for (const auto& a : contract.assumptions) {
      if (a.timing.latency <= 0) continue;
      for (const auto& key : resolve_flow(model, instance, a.flow)) {
        add(MonitorPlane::Kind::kLatency, contract.name,
            Atom{Atom::Kind::kDelivery, key + " -> " + instance},
            first_segment(key));
      }
    }
    // (4) Automaton observers consume write events of the bound flows: a
    // perturbed value or shifted timing can break the word.
    if (contract.behaviour.has_value()) {
      for (const auto& binding : contract.behaviour->bindings) {
        for (const auto& key : resolve_flow(model, instance, binding.flow)) {
          add(MonitorPlane::Kind::kAutomaton, contract.name,
              Atom{Atom::Kind::kWriteValue, key}, first_segment(key));
          add(MonitorPlane::Kind::kAutomaton, contract.name,
              Atom{Atom::Kind::kWriteTiming, key}, first_segment(key));
        }
      }
    }
    // (5) Alive supervision (System::build_alive_supervision): when the plan
    // opts in, every periodic guarantee key is watchdog-supervised — the
    // only plane that observes the *absence* of writes.
    if (plan.alive_supervision) {
      for (const auto& g : contract.guarantees) {
        if (g.timing.period <= 0) continue;
        for (const auto& key : resolve_flow(model, instance, g.flow)) {
          add(MonitorPlane::Kind::kAlive, contract.name,
              Atom{Atom::Kind::kWriteAbsence, key}, first_segment(key));
        }
      }
    }
  }
  return planes;
}

// --- Fault -> perturbation set ------------------------------------------------

/// Value-perturbation fixpoint over the V8 relay structure: a perturbed
/// sender key perturbs every receiver slot its edges feed; a runnable
/// reading a perturbed slot perturbs everything it writes.
void propagate_values(const World& w, std::set<std::string>& writes,
                      std::set<std::string>& delivers) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& e : w.edges) {
      if (writes.count(e.producer_key) != 0 &&
          delivers.insert(e.receiver_key).second) {
        changed = true;
      }
    }
    for (const auto& rf : w.runnables) {
      const bool tainted_read =
          std::any_of(rf.reads.begin(), rf.reads.end(),
                      [&delivers](const std::string& r) {
                        return delivers.count(r) != 0;
                      });
      if (!tainted_read) continue;
      for (const auto& wkey : rf.writes) {
        if (writes.insert(wkey).second) changed = true;
      }
    }
  }
}

std::set<Atom> perturbation_of(const fi::Fault& f, const World& w,
                               const DeploymentPlan& plan) {
  std::set<Atom> atoms;
  const auto add_delivery = [&atoms](const Edge& e) {
    atoms.insert(
        Atom{Atom::Kind::kDelivery, e.producer_key + " -> " + e.dst_instance});
  };
  switch (f.kind) {
    case fi::FaultKind::kFrameDrop:
    case fi::FaultKind::kFrameDelay:
      // Frames exist only on cross-ECU edges; the target is a frame-name
      // substring which the model mirror approximates against the producer
      // key ("" = every frame).
      for (const auto& e : w.edges) {
        if (e.cross_ecu && (f.target.empty() ||
                            e.producer_key.find(f.target) != std::string::npos)) {
          add_delivery(e);
        }
      }
      break;
    case fi::FaultKind::kFrameCorrupt: {
      std::set<std::string> writes;
      std::set<std::string> delivers;
      for (const auto& e : w.edges) {
        if (e.cross_ecu && (f.target.empty() ||
                            e.producer_key.find(f.target) != std::string::npos)) {
          delivers.insert(e.receiver_key);
        }
      }
      propagate_values(w, writes, delivers);
      for (const auto& k : writes) {
        atoms.insert(Atom{Atom::Kind::kWriteValue, k});
      }
      for (const auto& k : delivers) {
        atoms.insert(Atom{Atom::Kind::kDeliverValue, k});
      }
      break;
    }
    case fi::FaultKind::kBabblingIdiot:
      // On an arbitrated bus the flood starves every real frame; TDMA buses
      // contain the babbler structurally (static slots) — it perturbs
      // NOTHING a component-level monitor could see.
      if (plan.bus == vfb::BusKind::kCan) {
        for (const auto& e : w.edges) {
          if (e.cross_ecu) add_delivery(e);
        }
      }
      break;
    case fi::FaultKind::kValueCorrupt:
    case fi::FaultKind::kStuckAt: {
      std::set<std::string> writes;
      std::set<std::string> delivers;
      for (const auto& [instance, keys] : w.writes_of) {
        for (const auto& key : keys) {
          if (key_matches(f.target, key)) writes.insert(key);
        }
      }
      propagate_values(w, writes, delivers);
      for (const auto& k : writes) {
        atoms.insert(Atom{Atom::Kind::kWriteValue, k});
      }
      for (const auto& k : delivers) {
        atoms.insert(Atom{Atom::Kind::kDeliverValue, k});
      }
      break;
    }
    case fi::FaultKind::kTaskCrash: {
      // Fail-silence: a dead producer emits NO observable — no late write,
      // no bad value, no deadline record. The only perturbation is the
      // absence of its writes, which only alive supervision can sense.
      const auto it = w.writes_of.find(f.target);
      if (it != w.writes_of.end()) {
        for (const auto& key : it->second) {
          atoms.insert(Atom{Atom::Kind::kWriteAbsence, key});
        }
      }
      break;
    }
    case fi::FaultKind::kWcetOverrun:
    case fi::FaultKind::kExecutionJitter: {
      atoms.insert(Atom{Atom::Kind::kTaskTiming, f.target});
      const auto it = w.writes_of.find(f.target);
      if (it != w.writes_of.end()) {
        for (const auto& key : it->second) {
          atoms.insert(Atom{Atom::Kind::kWriteTiming, key});
        }
      }
      for (const auto& e : w.edges) {
        if (e.src_instance == f.target) add_delivery(e);
      }
      break;
    }
    case fi::FaultKind::kClockDrift:
      for (const auto& e : w.edges) {
        if (e.cross_ecu && e.src_ecu == f.target) add_delivery(e);
      }
      break;
  }
  return atoms;
}

// --- Containment domain mirror ------------------------------------------------

struct Domain {
  bool everything = false;
  std::set<std::string> instances;

  [[nodiscard]] bool contains(const std::string& instance) const {
    return everything || instances.count(instance) != 0;
  }
};

Domain domain_of(const fi::Fault& f, const DeploymentPlan& plan) {
  Domain d;
  switch (f.kind) {
    case fi::FaultKind::kFrameDrop:
    case fi::FaultKind::kFrameCorrupt:
    case fi::FaultKind::kFrameDelay:
      d.everything = true;
      break;
    case fi::FaultKind::kBabblingIdiot:
      break;  // the rogue node is not a component: empty domain
    case fi::FaultKind::kValueCorrupt:
    case fi::FaultKind::kStuckAt:
      d.instances.insert(first_segment(f.target));
      break;
    case fi::FaultKind::kTaskCrash:
    case fi::FaultKind::kWcetOverrun:
    case fi::FaultKind::kExecutionJitter:
      d.instances.insert(f.target);
      break;
    case fi::FaultKind::kClockDrift:
      for (const auto& [instance, dep] : plan.instances) {
        if (dep.ecu == f.target) d.instances.insert(instance);
      }
      break;
  }
  return d;
}

FaultVerdict judge(const fi::Fault& f, const World& w,
                   const DeploymentPlan& plan,
                   const std::vector<Plane>& planes) {
  FaultVerdict v;
  v.fault = f;
  v.label = fault_label(f);
  const std::set<Atom> atoms = perturbation_of(f, w, plan);
  v.perturbs = !atoms.empty();
  const Domain domain = domain_of(f, plan);
  bool any_in_domain = false;
  bool all_in_domain = true;
  for (const auto& p : planes) {
    if (atoms.count(p.atom) == 0) continue;
    v.observers.push_back(p.pub);
    if (domain.contains(p.pub.blame)) {
      any_in_domain = true;
    } else {
      all_in_domain = false;
    }
  }
  v.detectable = !v.observers.empty();
  v.containment_gap = v.detectable && !any_in_domain;
  v.contained = v.detectable && all_in_domain;
  return v;
}

/// The canonical per-model fault inventory check_detectability judges: one
/// representative per plane the deployment can physically express.
std::vector<fi::Fault> canonical_faults(const ContractMap& contracts,
                                        const World& w,
                                        const vfb::Composition& model) {
  std::vector<fi::Fault> faults;
  const bool networked =
      std::any_of(w.edges.begin(), w.edges.end(),
                  [](const Edge& e) { return e.cross_ecu; });
  if (networked) {
    faults.push_back({.kind = fi::FaultKind::kFrameDrop});
    faults.push_back({.kind = fi::FaultKind::kFrameCorrupt});
    faults.push_back({.kind = fi::FaultKind::kBabblingIdiot});
    std::set<std::string> sourcing_ecus;
    for (const auto& e : w.edges) {
      if (e.cross_ecu) sourcing_ecus.insert(e.src_ecu);
    }
    for (const auto& ecu : sourcing_ecus) {
      faults.push_back({.kind = fi::FaultKind::kClockDrift, .target = ecu});
    }
  }
  for (const auto& [instance, contract] : contracts) {
    bool resolvable_guarantee = false;
    for (const auto& g : contract.guarantees) {
      if (!resolve_flow(model, instance, g.flow).empty()) {
        resolvable_guarantee = true;
      }
      if (range_constrained(g.range)) {
        for (const auto& key : resolve_flow(model, instance, g.flow)) {
          faults.push_back(
              {.kind = fi::FaultKind::kStuckAt, .target = key});
        }
      }
    }
    if (!resolvable_guarantee || w.writes_of.count(instance) == 0) continue;
    faults.push_back({.kind = fi::FaultKind::kTaskCrash, .target = instance});
    if (w.periodic_instances.count(instance) != 0) {
      faults.push_back(
          {.kind = fi::FaultKind::kWcetOverrun, .target = instance});
    }
  }
  return faults;
}

}  // namespace

std::string_view to_string(MonitorPlane::Kind kind) {
  switch (kind) {
    case MonitorPlane::Kind::kArrival:
      return "arrival";
    case MonitorPlane::Kind::kDeadline:
      return "deadline";
    case MonitorPlane::Kind::kLatency:
      return "latency";
    case MonitorPlane::Kind::kRangeWrite:
      return "range-write";
    case MonitorPlane::Kind::kRangeDeliver:
      return "range-deliver";
    case MonitorPlane::Kind::kAutomaton:
      return "automaton";
    case MonitorPlane::Kind::kAlive:
      return "alive";
  }
  return "?";
}

DetectabilityAnalysis analyze_detectability(
    const vfb::Composition& model, const vfb::DeploymentPlan& plan,
    const std::map<std::string, contracts::Contract, std::less<>>& contracts,
    const std::vector<fi::Fault>& faults) {
  DetectabilityAnalysis out;
  const World w = build_world(model, plan);
  const std::vector<Plane> planes =
      plan.runtime_verification ? build_planes(model, plan, contracts, w)
                                : std::vector<Plane>{};
  out.monitors.reserve(planes.size());
  for (const auto& p : planes) out.monitors.push_back(p.pub);
  out.verdicts.reserve(faults.size());
  for (const auto& f : faults) {
    out.verdicts.push_back(judge(f, w, plan, planes));
  }
  return out;
}

void check_detectability(
    const vfb::Composition& model, const vfb::DeploymentPlan& plan,
    const std::map<std::string, contracts::Contract, std::less<>>& contracts,
    Diagnostics& out) {
  // With the rv layer disabled NOTHING is detectable — V10 already flags
  // obligations a disabled registry would orphan; repeating that per fault
  // plane would be noise.
  if (!plan.runtime_verification || contracts.empty()) return;

  const World w = build_world(model, plan);
  const std::vector<Plane> planes = build_planes(model, plan, contracts, w);
  const std::vector<fi::Fault> faults = canonical_faults(contracts, w, model);

  for (const auto& f : faults) {
    const FaultVerdict v = judge(f, w, plan, planes);
    if (v.perturbs && !v.detectable) {
      const bool crash = f.kind == fi::FaultKind::kTaskCrash;
      out.add("V13", Severity::kWarning, v.label,
              "fault plane perturbs observable flows but no compiled runtime "
              "monitor watches any of them — a campaign scores it missed",
              crash ? "a crashed producer is fail-silent; set "
                      "DeploymentPlan::alive_supervision = true to bind "
                      "watchdog alive supervision from the contract periods"
                    : "declare a range/period/latency obligation on an "
                      "affected flow so a monitor is compiled for it");
    }
    if (v.containment_gap) {
      out.add("V14", Severity::kWarning, v.label,
              "fault is detectable, but every observing monitor blames an "
              "instance outside the fault's containment domain — detection "
              "can never score as contained",
              "add an obligation whose violation blames the faulty domain "
              "(e.g. a bus guardian / TDMA slotting for rogue nodes) or "
              "accept the leak as a measured gap");
    }
  }

  // V15: periodic guarantees imply a heartbeat; without alive supervision
  // the producer's crash is invisible (the one-flag fix for V13's crash
  // planes). One diagnostic per supervised-able sender key.
  if (!plan.alive_supervision) {
    std::set<std::string> flagged;
    for (const auto& [instance, contract] : contracts) {
      for (const auto& g : contract.guarantees) {
        if (g.timing.period <= 0) continue;
        for (const auto& key : resolve_flow(model, instance, g.flow)) {
          if (!flagged.insert(key).second) continue;
          out.add("V15", Severity::kWarning, key,
                  "periodic guarantee " + contract.name + "." + g.flow +
                      " implies a heartbeat, but no watchdog alive "
                      "supervision is bound to it",
                  "set DeploymentPlan::alive_supervision = true to "
                  "supervise contract periods with bsw::WatchdogManager");
        }
      }
    }
  }
}

}  // namespace orte::validation
