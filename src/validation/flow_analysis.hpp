// Whole-program contract dataflow analysis: the transitive half of the
// design-time validation story (§2–§3).
//
// V7 checks each connector pairwise — a source guarantee against the
// adjacent sink assumption. These passes reason about whole chains instead:
//
//  V8  transitive flow ranges  — abstract interpretation of FlowSpec value
//                                intervals through connectors and runnable
//                                read->write relays: empty intersections and
//                                unconstrained transitive sources that no
//                                pairwise check can see.
//  V9  end-to-end deadlines    — the holistic fixpoint (analysis::
//                                HolisticModel) over the exact task/message
//                                set the generator would emit, including
//                                data-received event tasks and FlexRay
//                                static-slot hops; each latency assumption
//                                is compared against the computed bound.
//  V10 monitor coverage        — which contract obligations the rv layer
//                                (vfb::System::build_monitors) would actually
//                                watch at runtime; obligations that resolve
//                                to no monitor are certified by nothing.
//  V11 budget consistency      — generated per-instance load and per-ECU /
//                                per-bus sums against the contracts'
//                                vertical ResourceSpec assumptions.
//  V12 dead flows              — liveness on the V8 dataflow graph: reads
//                                whose transitive source never produces
//                                fresh data, and writes whose values
//                                dead-end in relay chains (both only where
//                                the local rule V3 stays silent).
//
// analyze_chains() is shared with vfb::System so the static V9 bound is
// recorded next to each LatencyMonitor threshold — the bound >= observed
// cross-check that certifies the dynamic layer against the static one.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "contracts/contract.hpp"
#include "validation/diagnostics.hpp"
#include "vfb/deployment.hpp"
#include "vfb/model.hpp"

namespace orte::validation {

/// One statically bounded end-to-end obligation: a latency assumption of a
/// bound contract, resolved through the feeding connector to its producer
/// and consuming event task, with the holistic response-time bound of that
/// chain (measured from the chain head's release — an over-approximation of
/// what the matching rv::LatencyMonitor observes from the producer's write).
struct ChainBound {
  std::string contract;   ///< Contract carrying the latency assumption.
  std::string instance;   ///< Consuming instance the contract is bound to.
  std::string flow;       ///< Assumption flow name ("port" or "port.element").
  std::string sink_task;  ///< Generated task bounding the chain tail; empty =
                          ///< no data-received runnable (chain ends at bus
                          ///< delivery).
  sim::Duration deadline = 0;  ///< The contracted latency obligation.
  sim::Duration bound = 0;     ///< Holistic bound; valid when computable.
  bool computable = false;     ///< False: chain unresolvable or the fixpoint
                               ///< found the model unschedulable/divergent.
};

/// Result of folding the generated deployment into the holistic fixpoint.
struct ChainAnalysis {
  bool schedulable = false;  ///< Holistic verdict over tasks and messages.
  int iterations = 0;        ///< Fixpoint iterations until convergence.
  std::vector<ChainBound> bounds;  ///< One entry per latency assumption.
};

/// Mirror the generator's task/message derivation (one task per (instance,
/// period), one event task per data-received runnable, one bus message per
/// cross-ECU signal receiver) and run the holistic fixpoint over it. The
/// mirror is conservative where it simplifies: signals are analyzed
/// unpacked (more frames than the generator's PDU packing emits), and
/// FlexRay slot counts grow with the message count (a longer cycle can only
/// raise the bound).
[[nodiscard]] ChainAnalysis analyze_chains(
    const vfb::Composition& model, const vfb::DeploymentPlan& plan,
    const std::map<std::string, contracts::Contract, std::less<>>& contracts);

/// V8 + V12: build the slot dataflow graph (connectors plus runnable
/// read->write relays), propagate guarantee intervals to a fixpoint, and
/// report transitive range conflicts and dead flows.
void check_flow_ranges(
    const vfb::Composition& model,
    const std::map<std::string, contracts::Contract, std::less<>>& contracts,
    Diagnostics& out);

/// V9: run analyze_chains and judge every latency assumption — error when
/// the obligation is below the static bound, info (with slack) otherwise,
/// warning when the chain cannot be bounded.
void check_chain_deadlines(
    const vfb::Composition& model, const vfb::DeploymentPlan& plan,
    const std::map<std::string, contracts::Contract, std::less<>>& contracts,
    Diagnostics& out);

/// V10: cross-check contract obligations against the monitor inventory
/// vfb::System would compile. `plan` may be null (the runtime_verification
/// opt-out is then not checkable).
void check_monitor_coverage(
    const vfb::Composition& model, const vfb::DeploymentPlan* plan,
    const std::map<std::string, contracts::Contract, std::less<>>& contracts,
    Diagnostics& out);

/// V11: generated load vs vertical ResourceSpec assumptions — per-instance
/// CPU share, per-ECU sums, and bus bandwidth against the plan's bitrate.
void check_resource_budgets(
    const vfb::Composition& model, const vfb::DeploymentPlan& plan,
    const std::map<std::string, contracts::Contract, std::less<>>& contracts,
    Diagnostics& out);

}  // namespace orte::validation
