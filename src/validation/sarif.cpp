#include "validation/sarif.hpp"

#include <cstdio>
#include <map>
#include <string_view>
#include <vector>

namespace orte::validation {

namespace {

/// JSON string escaping per RFC 8259: the two mandatory escapes plus
/// control characters as \u00XX.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string_view sarif_level(Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kInfo:
      return "note";
  }
  return "none";
}

/// One-line descriptions for the reportingDescriptor table. Rules are
/// stable IDs (DESIGN.md §4); unknown IDs get a generic text so the export
/// never fails on a rule added later.
std::string_view rule_description(std::string_view rule) {
  static const std::map<std::string_view, std::string_view> kRules = {
      {"V1", "Every referenced name resolves (interfaces, types, ports)"},
      {"V2", "Accesses and triggers agree with port kind and direction"},
      {"V3", "Connectivity: no unconnected, unwritten, or unread flows"},
      {"V4", "Cross-task data races on unprotected shared flows"},
      {"V5", "Deployment sanity: mapping, partitions, timing bounds"},
      {"V6", "Client/server call graph resolves and terminates"},
      {"V7", "Pairwise contract compatibility across connectors"},
      {"V8", "Transitive flow value ranges (whole-chain interval analysis)"},
      {"V9", "End-to-end latency obligations vs holistic static bound"},
      {"V10", "Contract obligations covered by runtime monitors"},
      {"V11", "Resource budgets vs vertical contract assumptions"},
      {"V12", "Dead or unreachable data flows in relay chains"},
      {"V13", "Fault planes invisible to every compiled runtime monitor"},
      {"V14", "Detectable faults no observing monitor blames in-domain"},
      {"V15", "Periodic guarantees without watchdog alive supervision"},
  };
  const auto it = kRules.find(rule);
  return it == kRules.end() ? std::string_view("orte model validation rule")
                            : it->second;
}

}  // namespace

std::string to_sarif(const Diagnostics& report) {
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"orte-validator\",\n"
      "          \"informationUri\": "
      "\"https://example.org/orte\",\n"
      "          \"rules\": [\n";
  const std::vector<std::string> rules = report.rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out += "            {\n";
    out += "              \"id\": \"" + json_escape(rules[i]) + "\",\n";
    out += "              \"shortDescription\": { \"text\": \"" +
           json_escape(rule_description(rules[i])) + "\" }\n";
    out += "            }";
    out += (i + 1 < rules.size()) ? ",\n" : "\n";
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  const auto& diags = report.all();
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out += "        {\n";
    out += "          \"ruleId\": \"" + json_escape(d.rule) + "\",\n";
    out += "          \"level\": \"" + std::string(sarif_level(d.severity)) +
           "\",\n";
    out += "          \"message\": { \"text\": \"" + json_escape(d.message) +
           "\" },\n";
    out +=
        "          \"locations\": [\n"
        "            {\n"
        "              \"logicalLocations\": [\n"
        "                { \"fullyQualifiedName\": \"" +
        json_escape(d.subject) +
        "\" }\n"
        "              ]\n"
        "            }\n"
        "          ]";
    if (!d.hint.empty()) {
      out += ",\n          \"properties\": { \"hint\": \"" +
             json_escape(d.hint) + "\" }";
    }
    out += "\n        }";
    out += (i + 1 < diags.size()) ? ",\n" : "\n";
  }
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace orte::validation
