// Structured diagnostics for the static model validator (§2–§3: design-time
// reliability — "prior to implementation system configuration checks").
//
// Unlike the first-error-wins throws the VFB layer grew up with, a
// Diagnostics report accumulates *every* violation the analysis finds, each
// carrying a stable rule ID (V1..V7), a severity, the model path it is about
// ("instance.runnable.access" style), a message and a fix hint. Strict-mode
// consumers (System generation) render the report into one exception;
// interactive consumers (linters, CI) iterate and filter it.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace orte::validation {

enum class Severity {
  kError,    ///< Model cannot be generated / would misbehave; strict mode throws.
  kWarning,  ///< Generation succeeds but the model carries a likely hazard.
  kInfo,     ///< Dead or degenerate model structure worth knowing about.
};

[[nodiscard]] std::string_view to_string(Severity severity);

struct Diagnostic {
  std::string rule;      ///< Stable rule ID, e.g. "V4".
  Severity severity = Severity::kError;
  std::string subject;   ///< Model path, e.g. "k.consume.in.val".
  std::string message;   ///< What is wrong.
  std::string hint;      ///< How to fix it; may be empty.
};

/// Ordered collection of diagnostics plus rendering / filtering helpers.
class Diagnostics {
 public:
  void add(Diagnostic diagnostic);
  void add(std::string rule, Severity severity, std::string subject,
           std::string message, std::string hint = {});

  [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }
  [[nodiscard]] bool empty() const { return diags_.empty(); }
  [[nodiscard]] std::size_t size() const { return diags_.size(); }
  [[nodiscard]] std::size_t count(Severity severity) const;
  [[nodiscard]] bool has_errors() const {
    return count(Severity::kError) > 0;
  }
  /// Diagnostics carrying the given rule ID, in report order. The returned
  /// pointers alias this container's storage: any subsequent add()
  /// invalidates them — re-query instead of caching across mutations.
  [[nodiscard]] std::vector<const Diagnostic*> by_rule(
      std::string_view rule) const;
  /// Distinct rule IDs present, in first-appearance order.
  [[nodiscard]] std::vector<std::string> rules() const;

  /// Multi-line human-readable report, led by a one-line summary
  /// ("N errors, M warnings, K infos"):
  ///   error[V1] p.out: message (hint: ...)
  /// Errors render first, then warnings, then infos; within each severity
  /// diagnostics sort by rule ID (natural order, V2 before V10), insertion
  /// order within one rule. Empty report renders as the empty string.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace orte::validation
