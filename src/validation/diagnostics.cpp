#include "validation/diagnostics.hpp"

#include <algorithm>

namespace orte::validation {

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kInfo:
      return "info";
  }
  return "unknown";
}

void Diagnostics::add(Diagnostic diagnostic) {
  diags_.push_back(std::move(diagnostic));
}

void Diagnostics::add(std::string rule, Severity severity, std::string subject,
                      std::string message, std::string hint) {
  diags_.push_back(Diagnostic{std::move(rule), severity, std::move(subject),
                              std::move(message), std::move(hint)});
}

std::size_t Diagnostics::count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(), [severity](const auto& d) {
        return d.severity == severity;
      }));
}

std::vector<const Diagnostic*> Diagnostics::by_rule(
    std::string_view rule) const {
  std::vector<const Diagnostic*> out;
  for (const auto& d : diags_) {
    if (d.rule == rule) out.push_back(&d);
  }
  return out;
}

std::vector<std::string> Diagnostics::rules() const {
  std::vector<std::string> out;
  for (const auto& d : diags_) {
    if (std::find(out.begin(), out.end(), d.rule) == out.end()) {
      out.push_back(d.rule);
    }
  }
  return out;
}

std::string Diagnostics::render() const {
  if (diags_.empty()) return {};
  const auto plural = [](std::size_t n, const char* noun) {
    return std::to_string(n) + " " + noun + (n == 1 ? "" : "s");
  };
  std::string out = plural(count(Severity::kError), "error") + ", " +
                    plural(count(Severity::kWarning), "warning") + ", " +
                    plural(count(Severity::kInfo), "info") + "\n";
  // Stable presentation order: severity first, then rule ID (natural order —
  // V2 before V10), insertion order within one rule.
  std::vector<const Diagnostic*> sorted;
  sorted.reserve(diags_.size());
  for (const auto& d : diags_) sorted.push_back(&d);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Diagnostic* a, const Diagnostic* b) {
                     if (a->rule.size() != b->rule.size()) {
                       return a->rule.size() < b->rule.size();
                     }
                     return a->rule < b->rule;
                   });
  for (const Severity sev :
       {Severity::kError, Severity::kWarning, Severity::kInfo}) {
    for (const auto* dp : sorted) {
      const auto& d = *dp;
      if (d.severity != sev) continue;
      out.append(to_string(sev));
      out.push_back('[');
      out.append(d.rule);
      out.append("] ");
      out.append(d.subject);
      out.append(": ");
      out.append(d.message);
      if (!d.hint.empty()) {
        out.append(" (hint: ");
        out.append(d.hint);
        out.push_back(')');
      }
      out.push_back('\n');
    }
  }
  return out;
}

}  // namespace orte::validation
