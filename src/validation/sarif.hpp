// SARIF 2.1.0 export of validation diagnostics — the interchange format CI
// systems (GitHub code scanning, Azure DevOps, ...) ingest natively, so the
// model linter's V1..V12 findings surface in the same review surfaces as
// compiler and clang-tidy output.
//
// One run, one tool ("orte-validator"), one reportingDescriptor per distinct
// rule ID present, one result per diagnostic. The model path (Diagnostic::
// subject, e.g. "brake.in.force") has no file/line, so it is emitted as a
// logicalLocation fullyQualifiedName — the SARIF-sanctioned way to anchor
// results in non-textual artifacts. Fix hints ride in result.properties.hint.
#pragma once

#include <string>

#include "validation/diagnostics.hpp"

namespace orte::validation {

/// Serialize a report as a SARIF 2.1.0 JSON document (UTF-8, two-space
/// indent, trailing newline). Severities map kError -> "error", kWarning ->
/// "warning", kInfo -> "note".
[[nodiscard]] std::string to_sarif(const Diagnostics& report);

}  // namespace orte::validation
