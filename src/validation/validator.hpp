// Static model validator: whole-model analysis of a Composition (and
// optionally a DeploymentPlan) *before* any runtime object is constructed.
//
// The paper's reliability argument (§2–§3) rests on design-time checks: the
// AUTOSAR methodology validates the system configuration "prior to
// implementation", and SPEEDS-style rich components add contract
// compatibility on top. This pass reports every violation it finds as a
// structured Diagnostic instead of throwing on the first one.
//
// Rule inventory (IDs are stable; DESIGN.md carries the full table):
//  V1 dangling references  — names in instances, ports, accesses, triggers,
//                            connectors, server calls, deployments and
//                            partitions that do not resolve.
//  V2 connector typing     — provided->required direction, interface
//                            agreement (kind / element set named in the
//                            mismatch message), single feed per required
//                            port, access-direction rules, same-ECU
//                            client-server connectors.
//  V3 connectivity         — unconnected required ports that are read,
//                            never-written / never-read elements, server
//                            calls on unconnected ports.
//  V4 data races           — explicit read/write accesses to the same
//                            element from runnables mapped to
//                            different-priority preemptive tasks on one ECU
//                            (torn-read / lost-update hazards); implicit
//                            (buffered) accesses pass by construction.
//  V5 timing sanity        — zero-period timing triggers, wcet_bound >=
//                            period, data-received triggers on provided
//                            ports, budgets below a runnable's WCET, per-ECU
//                            task-count limit.
//  V6 call cycles          — client-server call cycles over server_calls
//                            (instance-level DFS; the cycle is printed).
//  V7 contract mismatch    — a connector whose bound contracts fail the
//                            contracts:: compatibility predicate (source
//                            guarantee must imply sink assumption).
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "contracts/contract.hpp"
#include "validation/diagnostics.hpp"
#include "vfb/deployment.hpp"
#include "vfb/model.hpp"

namespace orte::validation {

class Validator {
 public:
  explicit Validator(const vfb::Composition& model) : model_(&model) {}

  /// Enable the deployment-dependent rules (V4 races, parts of V1/V2/V5).
  Validator& with_deployment(const vfb::DeploymentPlan& plan) {
    plan_ = &plan;
    return *this;
  }

  /// Bind a rich-component contract to an instance for rule V7. Flow names
  /// must be "port" (covers every element of the port) or "port.element".
  Validator& with_contract(std::string instance, contracts::Contract contract);

  /// Run every applicable rule; never throws on model defects.
  [[nodiscard]] Diagnostics run() const;

 private:
  const vfb::Composition* model_;
  const vfb::DeploymentPlan* plan_ = nullptr;
  std::map<std::string, contracts::Contract, std::less<>> contracts_;
};

/// Convenience wrappers.
[[nodiscard]] Diagnostics validate(const vfb::Composition& model);
[[nodiscard]] Diagnostics validate(const vfb::Composition& model,
                                   const vfb::DeploymentPlan& plan);

}  // namespace orte::validation
