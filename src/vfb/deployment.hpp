// Deployment plan: the mapping side of the AUTOSAR methodology (§2).
//
// A DeploymentPlan assigns component instances to ECUs, picks the backbone
// bus and scheduling policy, and attaches timing-isolation attributes
// (budgets, partitions). It is consumed by two independent passes:
//  * validation::Validator — the design-time static analysis (rules that
//    need deployment context: races, cross-ECU feasibility, task limits),
//  * vfb::System — the generator that turns Composition + plan into an
//    executable distributed system.
// Keeping it free of generator state lets the validator run without
// constructing any runtime object.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "can/can_bus.hpp"
#include "flexray/flexray_bus.hpp"
#include "os/ecu.hpp"
#include "sim/time.hpp"

namespace orte::vfb {

enum class BusKind { kCan, kFlexRay };

struct InstanceDeployment {
  std::string ecu;
  /// Timing-isolation attributes applied to every task of this instance.
  sim::Duration budget = 0;
  os::OverrunAction overrun_action = os::OverrunAction::kNone;
  std::string partition;  ///< Partition name on the instance's ECU; "" = none.
};

struct PartitionSpec {
  std::string ecu;
  std::string name;
  sim::Duration budget = 0;
  sim::Duration period = 0;
};

enum class SchedulingPolicy {
  kFixedPriority,  ///< Rate-monotonic priorities (the ET baseline).
  /// Periodic tasks dispatched from a synthesized time-triggered schedule
  /// table (analysis::synthesize_schedule over the runnables' WCET bounds):
  /// contention-free by construction — the §1 "timing isolation via careful
  /// planning and tool support". Data-received tasks remain event-driven.
  kTimeTriggered,
};

struct DeploymentPlan {
  std::map<std::string, InstanceDeployment> instances;
  std::vector<PartitionSpec> partitions;
  BusKind bus = BusKind::kCan;
  SchedulingPolicy scheduling = SchedulingPolicy::kFixedPriority;
  can::CanConfig can;
  flexray::FlexRayConfig flexray;
  /// Priority for data-received event tasks (above periodic tasks so network
  /// deliveries propagate promptly).
  int data_task_priority = 200;
  std::uint32_t can_base_id = 0x100;
  /// Generate the runtime-verification layer (rv::MonitorRegistry): deadline
  /// monitors for every generated task plus arrival/latency/automaton
  /// monitors compiled from the model's bound contracts. Monitors are pure
  /// observers (zero simulated-time cost); opt out to shed the host-side
  /// dispatch overhead on monitoring-free measurement runs.
  bool runtime_verification = true;
  /// Bind bsw::WatchdogManager alive supervision from contract periods: one
  /// watchdog per ECU hosting periodic guarantees, each resolved sender key
  /// supervised with a cycle of twice its largest contracted period, the
  /// checkpoint fed by the key's `rte.write` records (quarantined-but-alive
  /// producers still checkpoint through `rte.quarantine_drop`). Expiry is
  /// reported into the rv registry as an "alive" violation — the fail-
  /// silence detector the data-flow monitor planes cannot provide (a dead
  /// producer emits nothing; see validation rules V13/V15).
  bool alive_supervision = false;
  /// Mode the rv layer requests when the last contract DTC ages out after a
  /// degraded-mode escalation (the closed §2 loop: violate → degrade → heal
  /// → recover). Empty = return to whatever mode was current when the
  /// escalation fired. The transition back (e.g. DEGRADED -> RUN) must be
  /// declared on the mode machine handed to escalate_to().
  std::string recovery_mode;
};

/// Task-numbering constants shared by the generator and the validator so the
/// race detector reasons about exactly the tasks the generator would emit.
inline constexpr int kPeriodicBasePriority = 150;
inline constexpr std::size_t kMaxPeriodicTasksPerEcu = 140;

}  // namespace orte::vfb
