#include "vfb/model.hpp"

#include <stdexcept>

#include "validation/validator.hpp"

namespace orte::vfb {

namespace {
[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument("Composition: " + msg);
}
std::string key3(std::string_view a, std::string_view b, std::string_view c) {
  std::string k;
  k.reserve(a.size() + b.size() + c.size() + 2);
  k.append(a).push_back('.');
  k.append(b).push_back('.');
  k.append(c);
  return k;
}
}  // namespace

void Composition::add_interface(PortInterface iface) {
  const std::string name = iface.name;
  if (!interfaces_.emplace(name, std::move(iface)).second) {
    fail("duplicate interface " + name);
  }
}

void Composition::add_type(ComponentType type) {
  const std::string name = type.name;
  if (!types_.emplace(name, std::move(type)).second) {
    fail("duplicate component type " + name);
  }
}

void Composition::add_instance(ComponentInstance instance) {
  for (const auto& i : instances_) {
    if (i.name == instance.name) fail("duplicate instance " + instance.name);
  }
  instances_.push_back(std::move(instance));
}

void Composition::add_connector(Connector connector) {
  connectors_.push_back(std::move(connector));
}

void Composition::set_operation_handler(std::string_view type,
                                        std::string_view port,
                                        std::string_view operation,
                                        OperationHandler handler) {
  handlers_[key3(type, port, operation)] = std::move(handler);
}

void Composition::bind_contract(std::string instance,
                                contracts::Contract contract) {
  contracts_[std::move(instance)] = std::move(contract);
}

const PortInterface& Composition::interface(std::string_view name) const {
  auto it = interfaces_.find(name);
  if (it == interfaces_.end()) fail("unknown interface " + std::string(name));
  return it->second;
}

const ComponentType& Composition::type(std::string_view name) const {
  auto it = types_.find(name);
  if (it == types_.end()) fail("unknown component type " + std::string(name));
  return it->second;
}

const ComponentInstance& Composition::instance(std::string_view name) const {
  for (const auto& i : instances_) {
    if (i.name == name) return i;
  }
  fail("unknown instance " + std::string(name));
}

const Port& Composition::port_of(std::string_view inst,
                                 std::string_view port) const {
  const ComponentType& t = type(instance(inst).type);
  for (const auto& p : t.ports) {
    if (p.name == port) return p;
  }
  fail("instance " + std::string(inst) + " has no port " + std::string(port));
}

const DataElement& Composition::element_of(std::string_view inst,
                                           std::string_view port,
                                           std::string_view element) const {
  const PortInterface& iface = interface(port_of(inst, port).interface);
  for (const auto& e : iface.elements) {
    if (e.name == element) return e;
  }
  fail("interface " + iface.name + " has no element " + std::string(element));
}

const Composition::OperationHandler* Composition::operation_handler(
    std::string_view type, std::string_view port,
    std::string_view operation) const {
  auto it = handlers_.find(key3(type, port, operation));
  return it == handlers_.end() ? nullptr : &it->second;
}

std::vector<const Connector*> Composition::connections_from(
    std::string_view instance, std::string_view port) const {
  std::vector<const Connector*> out;
  for (const auto& c : connectors_) {
    if (c.from_instance == instance && c.from_port == port) {
      out.push_back(&c);
    }
  }
  return out;
}

const Connector* Composition::connection_to(std::string_view instance,
                                            std::string_view port) const {
  for (const auto& c : connectors_) {
    if (c.to_instance == instance && c.to_port == port) return &c;
  }
  return nullptr;
}

const PortInterface* Composition::find_interface(std::string_view name) const {
  auto it = interfaces_.find(name);
  return it == interfaces_.end() ? nullptr : &it->second;
}

const ComponentType* Composition::find_type(std::string_view name) const {
  auto it = types_.find(name);
  return it == types_.end() ? nullptr : &it->second;
}

const ComponentInstance* Composition::find_instance(
    std::string_view name) const {
  for (const auto& i : instances_) {
    if (i.name == name) return &i;
  }
  return nullptr;
}

void Composition::validate() const {
  const auto report = validation::validate(*this);
  if (report.has_errors()) {
    fail("model validation failed\n" + report.render());
  }
}

}  // namespace orte::vfb
