#include "vfb/system.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <tuple>

#include "analysis/frame_packing.hpp"
#include "analysis/tt_schedule.hpp"
#include "validation/validator.hpp"

namespace orte::vfb {

namespace {

std::string periodic_task_name(const std::string& instance,
                               sim::Duration period) {
  return "tk|" + instance + "|" + std::to_string(period);
}
std::string event_task_name(const std::string& instance,
                            const std::string& runnable) {
  return "tk|" + instance + "|" + runnable;
}

/// One cross-ECU data element to be carried as a COM signal.
struct SignalSpec {
  std::string name;        ///< COM signal / I-PDU name.
  std::string sender_key;  ///< Rte sender key.
  std::string sender_ecu;
  std::size_t bit_length = 32;
  std::uint64_t init = 0;
  bool queued = false;
  std::size_t queue_length = Rte::kDefaultQueueLength;
  QueueOverflow overflow = QueueOverflow::kReject;
  sim::Duration sort_period = sim::kForever;
  /// (receiver ECU, receiver Rte key) pairs.
  std::vector<std::pair<std::string, std::string>> receivers;
  std::uint32_t frame_id = 0;
};

}  // namespace

System::System(sim::Kernel& kernel, sim::Trace& trace,
               const Composition& model, DeploymentPlan plan)
    : kernel_(kernel), trace_(trace), model_(model), plan_(std::move(plan)) {
  build();
}

const InstanceDeployment& System::deployment(
    const std::string& instance) const {
  auto it = plan_.instances.find(instance);
  if (it == plan_.instances.end()) {
    // The validator (rule V1) rejects undeployed instances before generation
    // starts, so reaching this is a generator defect, not a user error.
    throw std::logic_error("internal: no deployment for instance " + instance +
                           " escaped validation");
  }
  return it->second;
}

System::EcuCtx& System::ctx(const std::string& ecu_name) {
  auto it = ecus_.find(ecu_name);
  if (it == ecus_.end()) {
    throw std::invalid_argument("unknown ECU " + ecu_name);
  }
  return it->second;
}

sim::Duration System::inlined_wcet(const std::string& instance,
                                   const Runnable& runnable) const {
  // Malformed or unresolvable server calls are rejected by the validator
  // (rules V1/V2/V3) before generation; the throws below are backstops for
  // validator gaps, carrying instance + runnable to locate the defect.
  const auto gap = [&](const std::string& what) -> std::logic_error {
    return std::logic_error("internal: " + what + " (instance " + instance +
                            ", runnable " + runnable.name +
                            ") escaped validation");
  };
  sim::Duration inlined = 0;
  for (const auto& call : runnable.server_calls) {
    const auto dot = call.find('.');
    if (dot == std::string::npos) {
      throw gap("server call must be 'port.operation': " + call);
    }
    const std::string port = call.substr(0, dot);
    const std::string op = call.substr(dot + 1);
    const Connector* conn = model_.connection_to(instance, port);
    if (conn == nullptr) {
      throw gap("server call on unconnected port " + instance + "." + port);
    }
    if (deployment(conn->from_instance).ecu != deployment(instance).ecu) {
      throw gap("cross-ECU server call: " + call);
    }
    const Port& server_port =
        model_.port_of(conn->from_instance, conn->from_port);
    const PortInterface& iface = model_.interface(server_port.interface);
    auto oit =
        std::find_if(iface.operations.begin(), iface.operations.end(),
                     [&](const Operation& o) { return o.name == op; });
    if (oit == iface.operations.end()) {
      throw gap("unknown operation in server call: " + call);
    }
    inlined += oit->wcet;
  }
  return inlined;
}

sim::Duration System::writer_period(const std::string& instance,
                                    const std::string& port,
                                    const std::string& element) const {
  const ComponentType& t = model_.type(model_.instance(instance).type);
  sim::Duration best = sim::kForever;
  for (const auto& r : t.runnables) {
    if (r.trigger.kind != RunnableTrigger::Kind::kTiming) continue;
    for (const auto& acc : r.accesses) {
      const bool writes = acc.kind == DataAccessKind::kImplicitWrite ||
                          acc.kind == DataAccessKind::kExplicitWrite;
      if (writes && acc.port == port && acc.element == element) {
        best = std::min(best, r.trigger.period);
      }
    }
  }
  return best;
}

void System::build() {
  // Strict-mode static validation: the full rule set (V1..V7) runs over the
  // model *and* the deployment plan before any runtime object exists. Any
  // error-severity diagnostic aborts generation with the complete rendered
  // report; warnings (e.g. V4 race hazards) and infos are tolerated here and
  // can be inspected via validation::validate(model, plan) directly.
  const validation::Diagnostics report = validation::validate(model_, plan_);
  if (report.has_errors()) {
    throw std::invalid_argument("System: model validation failed\n" +
                                report.render());
  }

  // ECU set, in deterministic (sorted) order.
  std::set<std::string> names;
  for (const auto& [inst, dep] : plan_.instances) names.insert(dep.ecu);
  ecu_names_.assign(names.begin(), names.end());

  // ---- Derive cross-ECU signals -------------------------------------------
  std::vector<SignalSpec> signals;
  for (const auto& conn : model_.connectors()) {
    const Port& from = model_.port_of(conn.from_instance, conn.from_port);
    const PortInterface& iface = model_.interface(from.interface);
    const std::string& sender_ecu = deployment(conn.from_instance).ecu;
    const std::string& receiver_ecu = deployment(conn.to_instance).ecu;
    if (iface.kind == PortInterface::Kind::kClientServer) {
      if (sender_ecu != receiver_ecu) {
        // Rejected by validator rule V2; backstop for validator gaps.
        throw std::logic_error(
            "internal: client-server connector spans ECUs (unsupported): " +
            conn.from_instance + " -> " + conn.to_instance +
            " escaped validation");
      }
      continue;
    }
    if (sender_ecu == receiver_ecu) continue;
    for (const auto& elem : iface.elements) {
      const std::string sender_key =
          Rte::key(conn.from_instance, conn.from_port, elem.name);
      const std::string receiver_key =
          Rte::key(conn.to_instance, conn.to_port, elem.name);
      auto it = std::find_if(signals.begin(), signals.end(),
                             [&](const SignalSpec& s) {
                               return s.sender_key == sender_key;
                             });
      if (it == signals.end()) {
        SignalSpec spec;
        spec.name = "sg|" + sender_key;
        spec.sender_key = sender_key;
        spec.sender_ecu = sender_ecu;
        spec.bit_length = elem.bit_length;
        spec.init = elem.init;
        spec.queued = elem.queued;
        spec.queue_length = elem.queue_length;
        spec.overflow = elem.overflow;
        spec.sort_period =
            writer_period(conn.from_instance, conn.from_port, elem.name);
        signals.push_back(std::move(spec));
        it = signals.end() - 1;
      }
      it->receivers.emplace_back(receiver_ecu, receiver_key);
    }
  }
  signal_count_ = signals.size();

  // ---- Pack signals into I-PDUs ---------------------------------------------
  // Signals from the same sender ECU with the same producer period share a
  // frame (period-grouped FFD via the analysis library): every frame pays
  // header + stuffing overhead once for up to 64 payload bits.
  struct PduSpec {
    std::string name;
    std::string sender_ecu;
    sim::Duration sort_period = sim::kForever;
    std::uint32_t frame_id = 0;
    std::size_t length_bytes = 0;
    std::vector<std::pair<SignalSpec*, std::size_t>> signals;  // +bit offset
  };
  std::vector<PduSpec> pdus;
  {
    std::map<std::pair<std::string, sim::Duration>, std::vector<SignalSpec*>>
        by_group;
    for (auto& s : signals) {
      by_group[{s.sender_ecu, s.sort_period}].push_back(&s);
    }
    for (auto& [key, group] : by_group) {
      std::vector<analysis::PackSignal> pack_in;
      pack_in.reserve(group.size());
      for (const SignalSpec* s : group) {
        // pack_signals only needs a positive period for utilization math;
        // event-produced signals (kForever) use a placeholder.
        pack_in.push_back({s->name, s->bit_length,
                           key.second == sim::kForever ? sim::seconds(1)
                                                       : key.second});
      }
      const auto packed = analysis::pack_signals(
          pack_in, 64, plan_.can.bitrate_bps);
      for (std::size_t fi = 0; fi < packed.frames.size(); ++fi) {
        const auto& frame = packed.frames[fi];
        PduSpec pdu;
        pdu.name = "pdu|" + key.first + "|" +
                   std::to_string(key.second == sim::kForever
                                      ? -1
                                      : key.second) +
                   "|" + std::to_string(fi);
        pdu.sender_ecu = key.first;
        pdu.sort_period = key.second;
        pdu.length_bytes = (frame.used_bits + 7) / 8;
        for (std::size_t si = 0; si < frame.signals.size(); ++si) {
          auto it = std::find_if(group.begin(), group.end(),
                                 [&](const SignalSpec* s) {
                                   return s->name == frame.signals[si];
                                 });
          pdu.signals.emplace_back(*it, frame.offsets[si]);
        }
        pdus.push_back(std::move(pdu));
      }
    }
  }
  // Frame id assignment: rate-monotonic priority order on CAN, dedicated
  // static slots on FlexRay.
  std::sort(pdus.begin(), pdus.end(), [](const PduSpec& a, const PduSpec& b) {
    if (a.sort_period != b.sort_period) return a.sort_period < b.sort_period;
    return a.name < b.name;
  });
  for (std::size_t i = 0; i < pdus.size(); ++i) {
    pdus[i].frame_id =
        plan_.bus == BusKind::kCan
            ? plan_.can_base_id + static_cast<std::uint32_t>(i)
            : static_cast<std::uint32_t>(i + 1);  // FlexRay slot id
    analyzed_pdus_.push_back(
        {pdus[i].name, pdus[i].frame_id, pdus[i].length_bytes,
         pdus[i].sort_period == sim::kForever ? 0 : pdus[i].sort_period});
  }

  // ---- Bus + per-ECU infrastructure ----------------------------------------
  if (plan_.bus == BusKind::kCan) {
    can_ = std::make_unique<can::CanBus>(kernel_, trace_, plan_.can);
  } else {
    plan_.flexray.static_slots =
        std::max(plan_.flexray.static_slots, pdus.size());
    plan_.flexray.static_payload_bytes = std::max(
        plan_.flexray.static_payload_bytes, static_cast<std::size_t>(8));
    flexray_ =
        std::make_unique<flexray::FlexRayBus>(kernel_, trace_, plan_.flexray);
  }
  for (const auto& name : ecu_names_) {
    EcuCtx c;
    c.ecu = std::make_unique<os::Ecu>(kernel_, trace_, name);
    c.com = std::make_unique<bsw::Com>(kernel_, trace_);
    c.rte = std::make_unique<Rte>(kernel_, trace_, model_, name);
    c.controller = plan_.bus == BusKind::kCan
                       ? static_cast<net::Controller*>(&can_->attach())
                       : static_cast<net::Controller*>(&flexray_->attach());
    ecus_.emplace(name, std::move(c));
  }

  // ---- COM configuration ----------------------------------------------------
  for (const auto& pspec : pdus) {
    EcuCtx& sender = ctx(pspec.sender_ecu);
    bsw::IPduConfig pdu_cfg;
    pdu_cfg.name = pspec.name;
    pdu_cfg.frame_id = pspec.frame_id;
    pdu_cfg.length_bytes = pspec.length_bytes;
    pdu_cfg.mode = bsw::TxMode::kDirect;
    sender.com->add_tx_ipdu(pdu_cfg, *sender.controller);
    if (plan_.bus == BusKind::kFlexRay) {
      flexray_->assign_static_slot(
          pspec.frame_id,
          static_cast<flexray::FlexRayController&>(*sender.controller));
    }

    // Receiving ECUs of this PDU and which of its signals each consumes.
    std::map<std::string,
             std::vector<std::tuple<const SignalSpec*, std::size_t,
                                    std::vector<std::string>>>>
        rx_by_ecu;

    for (const auto& [sspec, offset] : pspec.signals) {
      bsw::SignalConfig sig;
      sig.name = sspec->name;
      sig.ipdu = pspec.name;
      sig.bit_offset = offset;
      sig.bit_length = sspec->bit_length;
      sig.triggered = true;  // a write transmits the whole packed PDU
      sender.com->add_signal(sig);
      sender.rte->add_remote_route(sspec->sender_key, *sender.com,
                                   sspec->name);
      std::map<std::string, std::vector<std::string>> keys_by_ecu;
      for (const auto& [ecu_name, receiver_key] : sspec->receivers) {
        keys_by_ecu[ecu_name].push_back(receiver_key);
      }
      for (auto& [ecu_name, keys] : keys_by_ecu) {
        rx_by_ecu[ecu_name].emplace_back(sspec, offset, std::move(keys));
      }
    }

    for (const auto& [ecu_name, consumed] : rx_by_ecu) {
      EcuCtx& receiver = ctx(ecu_name);
      receiver.com->add_rx_ipdu(pdu_cfg, *receiver.controller);
      for (const auto& [sspec, offset, keys] : consumed) {
        bsw::SignalConfig sig;
        sig.name = sspec->name;
        sig.ipdu = pspec.name;
        sig.bit_offset = offset;
        sig.bit_length = sspec->bit_length;
        receiver.com->add_signal(sig);
        for (const auto& key : keys) {
          receiver.rte->add_remote_receiver(key, sspec->queued, sspec->init,
                                            sspec->queue_length,
                                            sspec->overflow);
        }
        Rte* rte = receiver.rte.get();
        receiver.com->on_signal(sspec->name,
                                [rte, keys = keys](std::uint64_t value) {
                                  for (const auto& key : keys) {
                                    rte->deliver(key, value);
                                  }
                                });
      }
    }
  }

  // ---- Local routes ----------------------------------------------------------
  for (const auto& conn : model_.connectors()) {
    const Port& from = model_.port_of(conn.from_instance, conn.from_port);
    const PortInterface& iface = model_.interface(from.interface);
    if (iface.kind != PortInterface::Kind::kSenderReceiver) continue;
    const std::string& sender_ecu = deployment(conn.from_instance).ecu;
    if (sender_ecu != deployment(conn.to_instance).ecu) continue;
    EcuCtx& c = ctx(sender_ecu);
    for (const auto& elem : iface.elements) {
      c.rte->add_local_route(
          Rte::key(conn.from_instance, conn.from_port, elem.name),
          Rte::key(conn.to_instance, conn.to_port, elem.name), elem.queued,
          elem.init, elem.queue_length, elem.overflow);
    }
  }

  build_tasks();
  // Static end-to-end bounds (holistic fixpoint over the generated chains),
  // computed once: build_monitors stamps them into each LatencySpec and
  // analyze() reports them next to the task/PDU responses.
  if (!model_.bound_contracts().empty()) {
    chain_bounds_ =
        validation::analyze_chains(model_, plan_, model_.bound_contracts())
            .bounds;
  }
  if (plan_.runtime_verification) build_monitors();
  if (plan_.alive_supervision) build_alive_supervision();

  // Warm the trace's intern tables with the categories and subjects the
  // generated system emits hottest, so every ID (and its slot in the count
  // indexes) exists before the first simulated event. Monitor attachment
  // already interned everything the rv layer routes on; this covers the
  // emit side, keeping the measured run free of first-sight intern misses.
  for (const char* category :
       {"rte.write", "rte.deliver", "rte.runnable", "task.release",
        "task.start", "task.complete", "task.deadline_miss"}) {
    trace_.intern_category(category);
  }
  for (const auto& t : analyzed_tasks_) trace_.intern_subject(t.name);
}

std::vector<std::string> System::resolve_flow(const std::string& instance,
                                              const std::string& flow) const {
  // Flow naming follows the validator convention: "port" covers every element
  // of the port's interface, "port.element" one element. Writes are traced
  // under the *sender* key, so required-port flows resolve through the
  // feeding connector to the producer's key. Unresolvable names yield {} —
  // contracts may mention flows of ports a reduced deployment leaves
  // unconnected, and a monitor on nothing is worse than no monitor.
  const auto dot = flow.find('.');
  const std::string port = dot == std::string::npos ? flow : flow.substr(0, dot);
  const std::string element =
      dot == std::string::npos ? std::string() : flow.substr(dot + 1);

  const ComponentInstance* inst = model_.find_instance(instance);
  if (inst == nullptr) return {};
  const ComponentType* type = model_.find_type(inst->type);
  if (type == nullptr) return {};
  const Port* p = nullptr;
  for (const auto& candidate : type->ports) {
    if (candidate.name == port) p = &candidate;
  }
  if (p == nullptr) return {};
  const PortInterface* iface = model_.find_interface(p->interface);
  if (iface == nullptr || iface->kind != PortInterface::Kind::kSenderReceiver) {
    return {};
  }

  std::string src_instance = instance;
  std::string src_port = port;
  if (p->direction == PortDirection::kRequired) {
    const Connector* conn = model_.connection_to(instance, port);
    if (conn == nullptr) return {};
    src_instance = conn->from_instance;
    src_port = conn->from_port;
  }

  std::vector<std::string> subjects;
  for (const auto& elem : iface->elements) {
    if (!element.empty() && elem.name != element) continue;
    subjects.push_back(Rte::key(src_instance, src_port, elem.name));
  }
  return subjects;
}

int System::node_of(const std::string& ecu_name) const {
  for (std::size_t i = 0; i < ecu_names_.size(); ++i) {
    if (ecu_names_[i] == ecu_name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<System::FlowEndpoint> System::resolve_flow_endpoints(
    const std::string& instance, const std::string& flow) const {
  const auto dot = flow.find('.');
  const std::string port =
      dot == std::string::npos ? flow : flow.substr(0, dot);
  const std::string element =
      dot == std::string::npos ? std::string() : flow.substr(dot + 1);

  const ComponentInstance* inst = model_.find_instance(instance);
  if (inst == nullptr) return {};
  const ComponentType* type = model_.find_type(inst->type);
  if (type == nullptr) return {};
  const Port* p = nullptr;
  for (const auto& candidate : type->ports) {
    if (candidate.name == port) p = &candidate;
  }
  if (p == nullptr || p->direction != PortDirection::kRequired) return {};
  const PortInterface* iface = model_.find_interface(p->interface);
  if (iface == nullptr || iface->kind != PortInterface::Kind::kSenderReceiver) {
    return {};
  }
  const Connector* conn = model_.connection_to(instance, port);
  if (conn == nullptr) return {};

  std::vector<FlowEndpoint> endpoints;
  for (const auto& elem : iface->elements) {
    if (!element.empty() && elem.name != element) continue;
    endpoints.push_back(
        FlowEndpoint{Rte::key(conn->from_instance, conn->from_port, elem.name),
                     Rte::key(instance, port, elem.name)});
  }
  return endpoints;
}

namespace {
/// A flow range of [INT64_MIN, INT64_MAX] is the FlowSpec default: no value
/// constraint was declared, so no monitor is synthesized for it.
bool range_constrained(const contracts::Interval& range) {
  return range.lo != INT64_MIN || range.hi != INT64_MAX;
}
}  // namespace

void System::build_monitors() {
  registry_ = std::make_unique<rv::MonitorRegistry>(trace_);

  // Contract name per instance (for labelling the task deadline monitors).
  std::map<std::string, std::string, std::less<>> contract_of;
  for (const auto& [instance, contract] : model_.bound_contracts()) {
    contract_of[instance] = contract.name;
  }

  // (1) Deadline monitors: one per generated task, bound = the activation
  // period (the implicit AUTOSAR deadline). Event tasks keep a monitor too —
  // deadline-miss records still surface when a budget/deadline is configured.
  for (const auto& t : analyzed_tasks_) {
    // Task names are "tk|<instance>|<period-or-runnable>".
    std::string instance;
    const auto bar = t.name.find('|');
    if (bar != std::string::npos) {
      const auto end = t.name.find('|', bar + 1);
      instance = t.name.substr(bar + 1, end == std::string::npos
                                            ? std::string::npos
                                            : end - bar - 1);
    }
    rv::DeadlineSpec spec;
    auto cit = contract_of.find(instance);
    spec.contract = cit != contract_of.end() ? cit->second : t.name;
    spec.task = t.name;
    spec.deadline = t.period;
    registry_->add_deadline(std::move(spec));
  }

  for (const auto& [instance, contract] : model_.bound_contracts()) {
    // (2) Arrival monitors: every guarantee with a contracted period watches
    // the instance's own output flow.
    for (const auto& g : contract.guarantees) {
      if (g.timing.period <= 0) continue;
      for (const auto& subject : resolve_flow(instance, g.flow)) {
        rv::ArrivalSpec spec;
        spec.contract = contract.name;
        spec.subject = subject;
        spec.period = g.timing.period;
        spec.jitter = g.timing.jitter;
        spec.confidence = g.confidence;
        registry_->add_arrival(std::move(spec));
      }
    }

    // (2b) Range monitors, guarantee side: every guarantee with a declared
    // value range watches the producer's own writes — the value as the
    // component emitted it, before any transport.
    for (const auto& g : contract.guarantees) {
      if (!range_constrained(g.range)) continue;
      for (const auto& subject : resolve_flow(instance, g.flow)) {
        rv::RangeSpec spec;
        spec.contract = contract.name;
        spec.subject = subject;
        spec.category = "rte.write";
        spec.range = g.range;
        spec.confidence = g.confidence;
        registry_->add_range(std::move(spec));
      }
    }

    // (2c) Range monitors, assumption side: every assumption with a declared
    // value range watches this instance's receiver slots ("rte.deliver" — the
    // value as it ARRIVED). Violations blame the feeding producer's key, so
    // escalation sanctions the component whose flow went bad (or whose
    // channel corrupted it), never the victim consuming the value.
    for (const auto& a : contract.assumptions) {
      if (!range_constrained(a.range)) continue;
      for (const auto& ep : resolve_flow_endpoints(instance, a.flow)) {
        rv::RangeSpec spec;
        spec.contract = contract.name;
        spec.subject = ep.receiver_key;
        spec.category = "rte.deliver";
        spec.report_subject = ep.producer_key;
        spec.range = a.range;
        spec.confidence = a.confidence;
        registry_->add_range(std::move(spec));
      }
    }

    // (3) Latency monitors: every assumption with a latency bound watches the
    // chain from the feeding producer's write to this instance's consuming
    // runnable activation. Each spec also records the holistic static bound
    // of the same chain (computed once below), so the monitor carries both
    // halves of the static/dynamic cross-check.
    for (const auto& a : contract.assumptions) {
      if (a.timing.latency <= 0) continue;
      const auto dot = a.flow.find('.');
      const std::string port =
          dot == std::string::npos ? a.flow : a.flow.substr(0, dot);
      const std::string element =
          dot == std::string::npos ? std::string() : a.flow.substr(dot + 1);
      // The chain tail: the data-received runnable this flow activates (when
      // one exists, its name disambiguates the "rte.runnable" records).
      std::string sink_detail;
      if (const ComponentInstance* inst = model_.find_instance(instance)) {
        if (const ComponentType* type = model_.find_type(inst->type)) {
          for (const auto& r : type->runnables) {
            if (r.trigger.kind == RunnableTrigger::Kind::kDataReceived &&
                r.trigger.port == port &&
                (element.empty() || r.trigger.element == element)) {
              sink_detail = r.name;
            }
          }
        }
      }
      // Only a chain ending in a data-received task gets its bound stamped:
      // there the monitor's write->activation span is covered by the event
      // task's holistic response. For periodic sinks the monitor measures
      // sampling age (write -> next periodic activation), which the
      // delivery-path bound deliberately does not claim to cover.
      sim::Duration static_bound = 0;
      for (const auto& cb : chain_bounds_) {
        if (cb.contract == contract.name && cb.instance == instance &&
            cb.flow == a.flow && cb.computable && !cb.sink_task.empty()) {
          static_bound = cb.bound;
        }
      }
      for (const auto& subject : resolve_flow(instance, a.flow)) {
        rv::LatencySpec spec;
        spec.contract = contract.name;
        spec.source_subject = subject;
        spec.sink_subject = instance;
        spec.sink_detail = sink_detail;
        spec.bound = a.timing.latency;
        spec.static_bound = static_bound;
        spec.confidence = a.confidence;
        registry_->add_latency(std::move(spec));
      }
    }

    // (4) Behavioural contract: one automaton observer per instance, label
    // rules compiled from the flow bindings.
    if (contract.behaviour.has_value()) {
      rv::AutomatonSpec spec;
      spec.contract = contract.name;
      spec.automaton = contract.behaviour->automaton;
      spec.tick = contract.behaviour->tick;
      spec.confidence = contract.behaviour->confidence;
      for (const auto& binding : contract.behaviour->bindings) {
        for (const auto& subject : resolve_flow(instance, binding.flow)) {
          spec.labels.push_back({"rte.write", subject, binding.label});
        }
      }
      if (!spec.labels.empty()) registry_->add_automaton(std::move(spec));
    }
  }

  // Containment reaction: when escalation fires, silence the offending
  // instance's outputs at its RTE.
  registry_->quarantine_with(
      [this](const std::string& instance, const rv::Violation&) {
        if (plan_.instances.find(instance) != plan_.instances.end()) {
          quarantine(instance);
        }
      });
  // Rehabilitation reaction: when a contract's DTC ages out, restore the
  // instance's delivery — the release half of the closed error-handling
  // loop; no integrator code has to call Rte::release by hand.
  registry_->release_with([this](const std::string& instance) {
    if (plan_.instances.find(instance) != plan_.instances.end()) {
      ctx(deployment(instance).ecu).rte->release(instance);
    }
  });
  registry_->recover_to(plan_.recovery_mode);
}

void System::build_alive_supervision() {
  // Collect the supervised heartbeats: every periodic guarantee resolves to
  // sender keys; each key is one watchdog entity on its producer's ECU. A
  // key guaranteed at several periods is supervised at the LARGEST one (the
  // weakest heartbeat every guarantee still implies).
  struct Heartbeat {
    std::string contract;
    sim::Duration period = 0;
  };
  std::map<std::string, std::map<std::string, Heartbeat>> per_ecu;
  for (const auto& [instance, contract] : model_.bound_contracts()) {
    for (const auto& g : contract.guarantees) {
      if (g.timing.period <= 0) continue;
      for (const auto& key : resolve_flow(instance, g.flow)) {
        const std::string producer = key.substr(0, key.find('.'));
        const auto dep = plan_.instances.find(producer);
        if (dep == plan_.instances.end()) continue;
        Heartbeat& hb = per_ecu[dep->second.ecu][key];
        if (g.timing.period > hb.period) {
          hb.period = g.timing.period;
          hb.contract = contract.name;
        }
      }
    }
  }
  if (per_ecu.empty()) return;

  for (auto& [ecu_name, keys] : per_ecu) {
    // Supervision cycle: twice the slowest supervised period on the ECU, so
    // every nominal cycle sees >= 2 indications of every entity — robust
    // against release phase and WCET-overrun backlogs without tuning.
    sim::Duration slowest = 0;
    for (const auto& [key, hb] : keys) {
      slowest = std::max(slowest, hb.period);
    }
    auto wdg =
        std::make_unique<bsw::WatchdogManager>(kernel_, trace_, 2 * slowest);
    for (const auto& [key, hb] : keys) {
      wdg->supervise({.entity = key,
                      .min_indications = 1,
                      .failed_cycles_tolerance = 1});
      alive_contract_of_[key] = hb.contract;
      checkpoint_routes_[trace_.intern_subject(key)] = wdg.get();
    }
    // Expiry -> rv pipeline: the watchdog is the one detector that senses
    // the ABSENCE of writes, so a fail-silent producer (kTaskCrash) becomes
    // a first-class "alive" violation with the producer's key as subject —
    // blame attribution lands on the crashed instance, inside its
    // containment domain.
    wdg->on_violation([this](const std::string& entity, std::uint32_t count) {
      if (registry_ == nullptr) return;
      rv::Violation v;
      const auto cit = alive_contract_of_.find(entity);
      v.contract = cit != alive_contract_of_.end() ? cit->second : entity;
      v.subject = entity;
      v.kind = "alive";
      v.observed = count;
      v.bound = 1;  // min indications per supervision cycle
      v.when = kernel_.now();
      v.detail = "watchdog alive-supervision expiry";
      registry_->report_external(v);
    });
    watchdogs_[ecu_name] = std::move(wdg);
  }

  // Checkpoint feed: a supervised key indicates liveness whenever its RTE
  // publishes under it — including quarantined publishes (a sanctioned but
  // alive producer keeps its heartbeat; quarantine is containment, not
  // death). Routed on interned IDs, so unsupervised traffic costs one map
  // miss.
  const sim::TraceId write_id = trace_.intern_category("rte.write");
  const sim::TraceId qdrop_id = trace_.intern_category("rte.quarantine_drop");
  trace_.subscribe_ids(
      [this, write_id, qdrop_id](const sim::TraceEvent& ev) {
        if (ev.category_id != write_id && ev.category_id != qdrop_id) return;
        const auto it = checkpoint_routes_.find(ev.subject_id);
        if (it == checkpoint_routes_.end()) return;
        it->second->checkpoint(trace_.subject_name(ev.subject_id));
      });
}

void System::quarantine(const std::string& instance) {
  ctx(deployment(instance).ecu).rte->quarantine(instance);
}

void System::build_tasks() {
  for (const auto& ecu_name : ecu_names_) {
    EcuCtx& c = ctx(ecu_name);

    for (const auto& p : plan_.partitions) {
      if (p.ecu != ecu_name) continue;
      os::PartitionConfig cfg;
      cfg.name = p.name;
      cfg.budget = p.budget;
      cfg.period = p.period;
      c.partition_ids[p.name] = c.ecu->add_partition(cfg);
    }

    // Collect (instance, period) groups and event runnables on this ECU.
    struct Group {
      std::string instance;
      sim::Duration period = 0;
      std::vector<const Runnable*> runnables;
    };
    std::vector<Group> groups;
    struct EventRunnable {
      std::string instance;
      const Runnable* runnable = nullptr;
    };
    std::vector<EventRunnable> events;

    for (const auto& inst : model_.instances()) {
      if (deployment(inst.name).ecu != ecu_name) continue;
      const ComponentType& t = model_.type(inst.type);
      for (const auto& r : t.runnables) {
        switch (r.trigger.kind) {
          case RunnableTrigger::Kind::kTiming: {
            auto git = std::find_if(groups.begin(), groups.end(),
                                    [&](const Group& g) {
                                      return g.instance == inst.name &&
                                             g.period == r.trigger.period;
                                    });
            if (git == groups.end()) {
              groups.push_back(Group{inst.name, r.trigger.period, {}});
              git = groups.end() - 1;
            }
            git->runnables.push_back(&r);
            break;
          }
          case RunnableTrigger::Kind::kDataReceived:
            events.push_back(EventRunnable{inst.name, &r});
            break;
          case RunnableTrigger::Kind::kInit:
            events.push_back(EventRunnable{inst.name, &r});  // handled below
            break;
        }
      }
    }

    // Rate-monotonic priorities per ECU: shorter period = higher priority.
    std::sort(groups.begin(), groups.end(), [](const Group& a, const Group& b) {
      if (a.period != b.period) return a.period < b.period;
      return a.instance < b.instance;
    });
    if (groups.size() > kMaxPeriodicTasksPerEcu) {
      // Rejected by validator rule V5; backstop for validator gaps.
      throw std::logic_error("internal: too many periodic tasks on ECU " +
                             ecu_name + " escaped validation");
    }

    auto make_segment = [this, &c](const std::string& instance,
                                   const Runnable* r) {
      // Inline the WCET of declared synchronous server calls (the RTE
      // executes them in the caller's context).
      const sim::Duration inlined = inlined_wcet(instance, *r);
      os::Segment seg;
      Rte* rte = c.rte.get();
      const Runnable* runnable = r;
      seg.duration = [runnable, inlined]() -> sim::Duration {
        if (runnable->enabled_if && !runnable->enabled_if()) return 0;
        return (runnable->execution_time ? runnable->execution_time() : 0) +
               inlined;
      };
      seg.before = [rte, instance, runnable] {
        rte->capture_implicit(instance, *runnable);
      };
      seg.after = [rte, instance, runnable] {
        if (runnable->enabled_if && !runnable->enabled_if()) return;
        rte->run_behavior(instance, *runnable);
      };
      return seg;
    };

    // Time-triggered deployment: synthesize a dispatch table over the
    // runnables' declared WCET bounds; periodic tasks become table-activated.
    const bool tt = plan_.scheduling == SchedulingPolicy::kTimeTriggered;
    if (tt && !groups.empty()) {
      std::vector<analysis::TtJobSpec> specs;
      for (const auto& g : groups) {
        analysis::TtJobSpec spec;
        spec.task = periodic_task_name(g.instance, g.period);
        spec.period = g.period;
        for (const Runnable* r : g.runnables) {
          sim::Duration wcet = r->wcet_bound;
          if (wcet <= 0 && r->execution_time) wcet = r->execution_time();
          spec.wcet += wcet + inlined_wcet(g.instance, *r);
        }
        specs.push_back(std::move(spec));
      }
      const auto schedule = analysis::synthesize_schedule(specs);
      if (!schedule.has_value()) {
        throw std::invalid_argument(
            "time-triggered schedule synthesis failed for ECU " + ecu_name +
            " (WCET bounds do not fit non-preemptively)");
      }
      c.ecu->set_schedule_table(schedule->entries, schedule->cycle);
    }

    int rank = 0;
    for (const auto& g : groups) {
      const InstanceDeployment& dep = deployment(g.instance);
      os::TaskConfig cfg;
      cfg.name = periodic_task_name(g.instance, g.period);
      cfg.priority = kPeriodicBasePriority - rank;
      ++rank;
      cfg.period = tt ? 0 : g.period;  // TT: activated by the table
      if (tt) cfg.relative_deadline = g.period;  // keep miss monitoring
      cfg.budget = dep.budget;
      cfg.overrun_action = dep.overrun_action;
      if (!dep.partition.empty()) {
        cfg.partition = c.partition_ids.at(dep.partition);
      }
      {
        sim::Duration wcet = 0;
        for (const Runnable* r : g.runnables) {
          sim::Duration w = r->wcet_bound;
          if (w <= 0 && r->execution_time) w = r->execution_time();
          wcet += w + inlined_wcet(g.instance, *r);
        }
        analyzed_tasks_.push_back(
            {cfg.name, ecu_name, g.period, wcet, cfg.priority});
      }
      os::Task& task = c.ecu->add_task(cfg);
      // AUTOSAR implicit semantics are task-scoped: ALL implicit inputs of
      // the task's runnables are snapshotted once when the task starts, so
      // multi-element / multi-runnable reads within one job are consistent.
      bool first_segment = true;
      for (const Runnable* r : g.runnables) {
        os::Segment seg = make_segment(g.instance, r);
        if (first_segment) {
          Rte* rte = c.rte.get();
          const std::string instance = g.instance;
          const std::vector<const Runnable*> group = g.runnables;
          seg.before = [rte, instance, group] {
            for (const Runnable* rr : group) {
              rte->capture_implicit(instance, *rr);
            }
          };
          first_segment = false;
        } else {
          seg.before = {};
        }
        task.add_segment(std::move(seg));
      }
    }

    for (const auto& e : events) {
      if (e.runnable->trigger.kind == RunnableTrigger::Kind::kInit) {
        // Init runnables execute once at t=start, outside any task.
        Rte* rte = c.rte.get();
        const std::string instance = e.instance;
        const Runnable* r = e.runnable;
        kernel_.schedule_at(
            kernel_.now(),
            [rte, instance, r] {
              rte->capture_implicit(instance, *r);
              rte->run_behavior(instance, *r);
            },
            sim::EventOrder::kSoftware);
        continue;
      }
      const InstanceDeployment& dep = deployment(e.instance);
      os::TaskConfig cfg;
      cfg.name = event_task_name(e.instance, e.runnable->name);
      cfg.priority = plan_.data_task_priority;
      cfg.budget = dep.budget;
      cfg.overrun_action = dep.overrun_action;
      cfg.max_pending_activations = 8;
      if (!dep.partition.empty()) {
        cfg.partition = c.partition_ids.at(dep.partition);
      }
      {
        sim::Duration w = e.runnable->wcet_bound;
        if (w <= 0 && e.runnable->execution_time) w = e.runnable->execution_time();
        analyzed_tasks_.push_back(
            {cfg.name, ecu_name, 0, w + inlined_wcet(e.instance, *e.runnable),
             cfg.priority});
      }
      os::Task& task = c.ecu->add_task(cfg);
      task.add_segment(make_segment(e.instance, e.runnable));
      os::Ecu* ecu = c.ecu.get();
      os::Task* task_ptr = &task;
      c.rte->on_update(
          Rte::key(e.instance, e.runnable->trigger.port,
                   e.runnable->trigger.element),
          [ecu, task_ptr] { ecu->activate(*task_ptr); });
    }
  }
}

void System::start() {
  if (started_) throw std::logic_error("System::start called twice");
  started_ = true;
  for (auto& [name, c] : ecus_) {
    c.ecu->start();
    c.com->start();
  }
  if (flexray_) flexray_->start();
  for (auto& [ecu_name, wdg] : watchdogs_) wdg->start();
}

void System::run_for(sim::Duration horizon) {
  if (!started_) start();
  kernel_.run_until(kernel_.now() + horizon);
}

SystemAnalysis System::analyze() const {
  SystemAnalysis out;
  // Per-ECU task analysis over the generated configuration.
  for (const auto& ecu_name : ecu_names_) {
    std::vector<analysis::AnalysisTask> local;
    for (const auto& t : analyzed_tasks_) {
      if (t.ecu != ecu_name) continue;
      if (t.period <= 0) {
        out.complete = false;  // event task: needs chain context (holistic)
        continue;
      }
      local.push_back({.name = t.name, .wcet = t.wcet, .period = t.period,
                       .priority = t.priority});
    }
    const auto result = analysis::analyze(local);
    if (!result.schedulable) out.schedulable = false;
    for (const auto& [name, r] : result.response) out.task_response[name] = r;
  }
  // Bus analysis of the generated PDUs.
  if (plan_.bus == BusKind::kCan) {
    std::vector<analysis::CanMessage> msgs;
    for (const auto& p : analyzed_pdus_) {
      if (p.period <= 0) {
        out.complete = false;
        continue;
      }
      msgs.push_back({.name = p.name, .id = p.frame_id, .bytes = p.bytes,
                      .period = p.period});
    }
    const auto bus = analysis::analyze_can(msgs, plan_.can.bitrate_bps);
    if (!bus.schedulable) out.schedulable = false;
    out.bus_utilization = bus.utilization;
    for (const auto& [name, r] : bus.response) out.pdu_response[name] = r;
  } else {
    // FlexRay static slots: delivery is periodic by construction; the bound
    // is one cycle + slot regardless of load.
    const auto slot = flexray::FlexRayBus::slot_length(plan_.flexray);
    const auto cycle = flexray::FlexRayBus::cycle_length(plan_.flexray);
    for (const auto& p : analyzed_pdus_) {
      out.pdu_response[p.name] = cycle + slot;
    }
    out.bus_utilization =
        cycle > 0 ? static_cast<double>(
                        static_cast<sim::Duration>(analyzed_pdus_.size()) *
                        slot) /
                        static_cast<double>(cycle)
                  : 0.0;
  }
  // End-to-end chain bounds computed at generation time — the static half
  // of the cross-check against the rv::LatencyMonitor observations.
  out.chain_bounds = chain_bounds_;
  return out;
}

os::Ecu& System::ecu(const std::string& name) { return *ctx(name).ecu; }
Rte& System::rte(const std::string& ecu_name) { return *ctx(ecu_name).rte; }
bsw::Com& System::com(const std::string& ecu_name) {
  return *ctx(ecu_name).com;
}

os::Task* System::task_of(const std::string& instance, sim::Duration period) {
  const std::string& ecu_name = deployment(instance).ecu;
  return ctx(ecu_name).ecu->find_task(periodic_task_name(instance, period));
}

}  // namespace orte::vfb
