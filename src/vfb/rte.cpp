#include "vfb/rte.hpp"

#include <stdexcept>

namespace orte::vfb {

namespace {
std::string runnable_key(const std::string& instance,
                         const Runnable& runnable) {
  return instance + "/" + runnable.name;
}
/// Element name carried by a receiver key ("instance.port.element").
std::string element_of_key(const std::string& receiver_key) {
  const auto pos = receiver_key.rfind('.');
  return pos == std::string::npos ? receiver_key
                                  : receiver_key.substr(pos + 1);
}
}  // namespace

// --- RunnableContext ---------------------------------------------------------

std::uint64_t RunnableContext::read(std::string_view port,
                                    std::string_view element) {
  return rte_->context_read(*instance_, *runnable_, port, element);
}

void RunnableContext::write(std::string_view port, std::string_view element,
                            std::uint64_t value) {
  rte_->context_write(*instance_, *runnable_, port, element, value);
}

std::uint64_t RunnableContext::call(std::string_view port,
                                    std::string_view operation,
                                    std::uint64_t argument) {
  return rte_->context_call(*instance_, port, operation, argument);
}

sim::Time RunnableContext::now() const { return rte_->kernel_.now(); }

// --- Rte ----------------------------------------------------------------------

Rte::Rte(sim::Kernel& kernel, sim::Trace& trace,
         const Composition& composition, std::string ecu_name)
    : kernel_(kernel),
      trace_(trace),
      composition_(composition),
      ecu_name_(std::move(ecu_name)) {}

std::string Rte::key(std::string_view instance, std::string_view port,
                     std::string_view element) {
  std::string k;
  k.reserve(instance.size() + port.size() + element.size() + 2);
  k.append(instance).push_back('.');
  k.append(port).push_back('.');
  k.append(element);
  return k;
}

void Rte::add_local_route(const std::string& sender_key,
                          const std::string& receiver_key, bool queued,
                          std::uint64_t init, std::size_t queue_length,
                          QueueOverflow overflow) {
  local_routes_[sender_key].push_back(receiver_key);
  Slot& slot = slots_[receiver_key];
  slot.element = element_of_key(receiver_key);
  slot.queued = queued;
  slot.value = init;
  slot.queue_limit = queue_length;
  slot.overflow = overflow;
}

void Rte::add_remote_route(const std::string& sender_key, bsw::Com& com,
                           std::string signal) {
  remote_routes_[sender_key].push_back(RemoteRoute{&com, std::move(signal)});
}

void Rte::add_remote_receiver(const std::string& receiver_key, bool queued,
                              std::uint64_t init, std::size_t queue_length,
                              QueueOverflow overflow) {
  Slot& slot = slots_[receiver_key];
  slot.element = element_of_key(receiver_key);
  slot.queued = queued;
  slot.value = init;
  slot.queue_limit = queue_length;
  slot.overflow = overflow;
}

void Rte::deliver(const std::string& receiver_key, std::uint64_t value) {
  auto it = slots_.find(receiver_key);
  if (it == slots_.end()) {
    throw std::logic_error("Rte::deliver to unknown slot " + receiver_key);
  }
  Slot& slot = it->second;
  if (slot.queued) {
    // Bounded AUTOSAR-style queue; slot.value keeps the init (queued slots
    // are read through the queue, never last-is-best).
    if (slot.queue_limit > 0 && slot.queue.size() >= slot.queue_limit) {
      ++overflows_;
      // Detail carries the element name so the record correlates with
      // element-level diagnostics (validator rules V3/V4) without parsing
      // the receiver key.
      trace_.emit(kernel_.now(), "rte.queue_overflow", receiver_key,
                  static_cast<std::int64_t>(value), slot.element);
      if (slot.overflow == QueueOverflow::kReject) {
        return;  // value lost; no data-received activation
      }
      slot.queue.pop_front();  // kDropOldest: displace the head
    }
    slot.queue.push_back(value);
  } else {
    slot.value = value;
  }
  slot.last_update = kernel_.now();
  // Receiver-side observation point: the value as it ARRIVED, after any bus
  // transport (and any injected corruption en route). Sender-side monitors
  // watch "rte.write"; assumption-side range monitors watch this record, so
  // in-transit damage is observable even when the producer wrote in-spec.
  trace_.emit(kernel_.now(), "rte.deliver", receiver_key,
              static_cast<std::int64_t>(value), slot.element);
  auto hooks = update_hooks_.find(receiver_key);
  if (hooks != update_hooks_.end()) {
    for (const auto& cb : hooks->second) cb();
  }
}

void Rte::on_update(const std::string& receiver_key,
                    std::function<void()> cb) {
  update_hooks_[receiver_key].push_back(std::move(cb));
}

void Rte::capture_implicit(const std::string& instance,
                           const Runnable& runnable) {
  auto& snapshot = implicit_in_[runnable_key(instance, runnable)];
  snapshot.clear();
  for (const auto& acc : runnable.accesses) {
    if (acc.kind != DataAccessKind::kImplicitRead) continue;
    const Connector* conn = composition_.connection_to(instance, acc.port);
    const std::string k = key(instance, acc.port, acc.element);
    auto it = slots_.find(k);
    std::uint64_t value;
    if (it != slots_.end()) {
      value = it->second.value;
    } else {
      value = composition_.element_of(instance, acc.port, acc.element).init;
    }
    (void)conn;
    snapshot[k] = value;
  }
  implicit_out_[runnable_key(instance, runnable)].clear();
}

void Rte::run_behavior(const std::string& instance, const Runnable& runnable) {
  trace_.emit(kernel_.now(), "rte.runnable", instance, 0, runnable.name);
  if (runnable.behavior) {
    RunnableContext ctx(*this, instance, runnable);
    runnable.behavior(ctx);
  }
  // Publish implicit writes in declaration order.
  const std::string rk = runnable_key(instance, runnable);
  auto& outbox = implicit_out_[rk];
  for (const auto& acc : runnable.accesses) {
    if (acc.kind != DataAccessKind::kImplicitWrite) continue;
    const std::string k = key(instance, acc.port, acc.element);
    auto it = outbox.find(k);
    if (it != outbox.end()) publish(k, it->second);
  }
  outbox.clear();
}

const DataAccess* Rte::find_access(const Runnable& runnable,
                                   std::string_view port,
                                   std::string_view element) const {
  for (const auto& acc : runnable.accesses) {
    if (acc.port == port && acc.element == element) return &acc;
  }
  return nullptr;
}

std::uint64_t Rte::context_read(const std::string& instance,
                                const Runnable& runnable,
                                std::string_view port,
                                std::string_view element) {
  ++reads_;
  const DataAccess* acc = find_access(runnable, port, element);
  if (acc == nullptr) {
    throw std::logic_error("undeclared read access: " + runnable.name + " " +
                           std::string(port) + "." + std::string(element));
  }
  const std::string k = key(instance, port, element);
  if (acc->kind == DataAccessKind::kImplicitRead) {
    const auto& snapshot = implicit_in_[runnable_key(instance, runnable)];
    auto it = snapshot.find(k);
    if (it != snapshot.end()) return it->second;
    return composition_.element_of(instance, port, element).init;
  }
  auto it = slots_.find(k);
  if (it == slots_.end()) {
    return composition_.element_of(instance, port, element).init;
  }
  Slot& slot = it->second;
  if (slot.queued) {
    if (slot.queue.empty()) {
      return composition_.element_of(instance, port, element).init;
    }
    const std::uint64_t v = slot.queue.front();
    slot.queue.pop_front();
    return v;
  }
  return slot.value;
}

void Rte::context_write(const std::string& instance, const Runnable& runnable,
                        std::string_view port, std::string_view element,
                        std::uint64_t value) {
  ++writes_;
  const DataAccess* acc = find_access(runnable, port, element);
  if (acc == nullptr) {
    throw std::logic_error("undeclared write access: " + runnable.name + " " +
                           std::string(port) + "." + std::string(element));
  }
  const std::string k = key(instance, port, element);
  if (acc->kind == DataAccessKind::kImplicitWrite) {
    implicit_out_[runnable_key(instance, runnable)][k] = value;
    return;
  }
  publish(k, value);
}

std::uint64_t Rte::context_call(const std::string& instance,
                                std::string_view port,
                                std::string_view operation,
                                std::uint64_t argument) {
  ++calls_;
  const Connector* conn = composition_.connection_to(instance, port);
  if (conn == nullptr) {
    throw std::logic_error("client-server port not connected: " +
                           instance + "." + std::string(port));
  }
  const auto& server_type = composition_.instance(conn->from_instance).type;
  const auto* handler = composition_.operation_handler(
      server_type, conn->from_port, operation);
  if (handler == nullptr) {
    throw std::logic_error("no handler for operation " +
                           std::string(operation) + " on " + server_type);
  }
  trace_.emit(kernel_.now(), "rte.call", instance, 0, std::string(operation));
  return (*handler)(argument);
}

void Rte::quarantine(const std::string& instance) {
  quarantined_.insert(instance);
}

void Rte::release(const std::string& instance) {
  quarantined_.erase(instance);
}

bool Rte::is_quarantined(std::string_view instance) const {
  return quarantined_.find(instance) != quarantined_.end();
}

void Rte::publish(const std::string& sender_key, std::uint64_t value) {
  if (write_interceptor_ && !write_interceptor_(sender_key, value)) {
    ++intercepted_drops_;
    trace_.emit(kernel_.now(), "rte.fault_drop", sender_key,
                static_cast<std::int64_t>(value));
    return;
  }
  if (!quarantined_.empty()) {
    const std::string_view instance =
        std::string_view(sender_key).substr(0, sender_key.find('.'));
    if (is_quarantined(instance)) {
      ++quarantined_drops_;
      trace_.emit(kernel_.now(), "rte.quarantine_drop", sender_key,
                  static_cast<std::int64_t>(value));
      return;
    }
  }
  trace_.emit(kernel_.now(), "rte.write", sender_key,
              static_cast<std::int64_t>(value));
  auto lit = local_routes_.find(sender_key);
  if (lit != local_routes_.end()) {
    for (const auto& receiver : lit->second) deliver(receiver, value);
  }
  auto rit = remote_routes_.find(sender_key);
  if (rit != remote_routes_.end()) {
    for (const auto& route : rit->second) {
      route.com->send_signal(route.signal, value);
    }
  }
}

std::uint64_t Rte::peek(const std::string& receiver_key) const {
  auto it = slots_.find(receiver_key);
  if (it == slots_.end()) {
    throw std::invalid_argument("Rte::peek: unknown slot " + receiver_key);
  }
  const Slot& slot = it->second;
  if (slot.queued) {
    // Next value a reader would pop; the init value when the queue is empty.
    return slot.queue.empty() ? slot.value : slot.queue.front();
  }
  return slot.value;
}

}  // namespace orte::vfb
