// AUTOSAR-style component model: the design-time view of the Virtual
// Functional Bus (§2).
//
// Software components (SWC types) expose ports typed by port interfaces
// (sender-receiver data elements or client-server operations) and contain
// runnables triggered by timing or data-received events. Compositions
// instantiate types and wire ports with assembly connectors. The model is
// deployment-independent: the same Composition maps onto 1 ECU or N ECUs
// (location independence), which is exactly what the extensibility and
// integration experiments exercise.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "contracts/contract.hpp"
#include "sim/time.hpp"

namespace orte::vfb {

using sim::Duration;

/// Overflow semantics of a bounded queued element, mirroring AUTOSAR queued
/// sender-receiver communication.
enum class QueueOverflow {
  kReject,      ///< Full queue: the incoming value is discarded (E_LIMIT).
  kDropOldest,  ///< Full queue: the oldest queued value is displaced.
};

struct DataElement {
  std::string name;
  std::size_t bit_length = 32;  ///< 1..64; packed into COM signals as-is.
  std::uint64_t init = 0;
  bool queued = false;  ///< Queued (event) semantics instead of last-is-best.
  /// Receiver-side queue bound for queued elements; 0 = unbounded (opt-out).
  std::size_t queue_length = 16;
  QueueOverflow overflow = QueueOverflow::kReject;
};

struct Operation {
  std::string name;
  Duration wcet = 0;  ///< Server execution time, inlined into sync callers.
};

struct PortInterface {
  enum class Kind { kSenderReceiver, kClientServer };
  std::string name;
  Kind kind = Kind::kSenderReceiver;
  std::vector<DataElement> elements;    ///< Sender-receiver payload.
  std::vector<Operation> operations;    ///< Client-server operations.
};

enum class PortDirection { kProvided, kRequired };

struct Port {
  std::string name;
  std::string interface;
  PortDirection direction = PortDirection::kProvided;
};

enum class DataAccessKind {
  kImplicitRead,   ///< Stable copy taken at runnable start.
  kImplicitWrite,  ///< Published at runnable completion.
  kExplicitRead,   ///< Reads the live value during execution.
  kExplicitWrite,  ///< Publishes immediately during execution.
};

struct DataAccess {
  std::string port;
  std::string element;
  DataAccessKind kind = DataAccessKind::kExplicitRead;
};

struct RunnableTrigger {
  enum class Kind { kTiming, kDataReceived, kInit };
  Kind kind = Kind::kTiming;
  Duration period = 0;   ///< kTiming.
  std::string port;      ///< kDataReceived.
  std::string element;   ///< kDataReceived.

  static RunnableTrigger timing(Duration period) {
    return {Kind::kTiming, period, {}, {}};
  }
  static RunnableTrigger data_received(std::string port, std::string element) {
    return {Kind::kDataReceived, 0, std::move(port), std::move(element)};
  }
  static RunnableTrigger init() { return {Kind::kInit, 0, {}, {}}; }
};

class RunnableContext;  // defined in rte.hpp

struct Runnable {
  std::string name;
  RunnableTrigger trigger;
  /// Execution time per activation (re-evaluated each run, so fault
  /// injection / jittery execution is a closure away). Null = zero time.
  std::function<Duration()> execution_time;
  /// Declared WCET bound for design-time analysis and time-triggered
  /// schedule synthesis; 0 = "use a probe of execution_time" (valid only for
  /// deterministic execution-time closures).
  Duration wcet_bound = 0;
  std::vector<DataAccess> accesses;
  /// "port.operation" sync server calls this runnable may make; their WCET is
  /// inlined into this runnable's budget by the RTE generator.
  std::vector<std::string> server_calls;
  /// The actual computation; runs at runnable completion (zero sim-time).
  std::function<void(RunnableContext&)> behavior;
  /// Mode-dependent execution (AUTOSAR mode disabling): when set and
  /// returning false at activation, the runnable consumes no CPU and its
  /// behavior is skipped for that activation. Typically wired to a
  /// bsw::ModeMachine ("run only in RUN mode").
  std::function<bool()> enabled_if;
};

struct ComponentType {
  std::string name;
  std::vector<Port> ports;
  std::vector<Runnable> runnables;
};

struct ComponentInstance {
  std::string name;
  std::string type;
};

/// Assembly connector: provided port -> required port. Fan-out is expressed
/// with several connectors sharing the same source.
struct Connector {
  std::string from_instance;
  std::string from_port;
  std::string to_instance;
  std::string to_port;
};

/// A self-contained VFB system model. Mirrors what the AUTOSAR software
/// component template carries, as a typed API instead of ARXML.
class Composition {
 public:
  using OperationHandler = std::function<std::uint64_t(std::uint64_t)>;

  void add_interface(PortInterface iface);
  void add_type(ComponentType type);
  void add_instance(ComponentInstance instance);
  void add_connector(Connector connector);

  /// Register the implementation of a client-server operation for a type.
  void set_operation_handler(std::string_view type, std::string_view port,
                             std::string_view operation,
                             OperationHandler handler);

  /// Bind a rich-component contract (§3) to an instance. Flow names follow
  /// the validator convention: "port" (every element of the port) or
  /// "port.element". Bound contracts are checked statically (validator rule
  /// V7 on every connector) AND compiled into online monitors by
  /// vfb::System / rv::MonitorRegistry — one specification, two enforcement
  /// points. Re-binding an instance replaces its contract.
  void bind_contract(std::string instance, contracts::Contract contract);

  /// Structural validation via validation::Validator (model-only rules).
  /// Throws std::invalid_argument carrying the full rendered report when any
  /// error-severity diagnostic is found; warnings and infos are tolerated.
  void validate() const;

  // --- Lookups (throw on unknown names) ------------------------------------
  const PortInterface& interface(std::string_view name) const;
  const ComponentType& type(std::string_view name) const;
  const ComponentInstance& instance(std::string_view name) const;
  const Port& port_of(std::string_view instance, std::string_view port) const;
  const DataElement& element_of(std::string_view instance,
                                std::string_view port,
                                std::string_view element) const;
  const OperationHandler* operation_handler(std::string_view type,
                                            std::string_view port,
                                            std::string_view operation) const;

  // --- Non-throwing finders (used by the static validator) -----------------
  const PortInterface* find_interface(std::string_view name) const;
  const ComponentType* find_type(std::string_view name) const;
  const ComponentInstance* find_instance(std::string_view name) const;

  const std::vector<ComponentInstance>& instances() const {
    return instances_;
  }
  const std::vector<Connector>& connectors() const { return connectors_; }
  const std::map<std::string, contracts::Contract, std::less<>>&
  bound_contracts() const {
    return contracts_;
  }
  const std::map<std::string, PortInterface, std::less<>>& interfaces() const {
    return interfaces_;
  }
  const std::map<std::string, ComponentType, std::less<>>& types() const {
    return types_;
  }

  /// Connectors whose source is (instance, port).
  std::vector<const Connector*> connections_from(std::string_view instance,
                                                 std::string_view port) const;
  /// The single connector feeding required port (instance, port), or null.
  const Connector* connection_to(std::string_view instance,
                                 std::string_view port) const;

 private:
  std::map<std::string, PortInterface, std::less<>> interfaces_;
  std::map<std::string, ComponentType, std::less<>> types_;
  std::vector<ComponentInstance> instances_;
  std::vector<Connector> connectors_;
  std::map<std::string, OperationHandler, std::less<>> handlers_;
  std::map<std::string, contracts::Contract, std::less<>> contracts_;
};

}  // namespace orte::vfb
