// System generation: Composition + DeploymentPlan -> executable system.
//
// This is the AUTOSAR methodology step the paper describes ("all subsequent
// development steps up to the generation of executable code"): from the
// deployment-independent VFB model and the mapping of component instances to
// ECUs, the generator derives
//  * one OS task per (instance, period) for timing runnables — rate-monotonic
//    priorities per ECU — plus one event task per data-received runnable,
//  * COM signals/I-PDUs for every cross-ECU connector element, with frame
//    identifiers by rate on CAN or dedicated static slots on FlexRay,
//  * RTE routing tables (local copies vs network sends) and data-received
//    activations,
//  * timing-isolation attributes (budgets, partitions) from the plan —
//    the §1/§2 multi-supplier protection story.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/can_analysis.hpp"
#include "analysis/rta.hpp"
#include "bsw/com.hpp"
#include "bsw/watchdog.hpp"
#include "can/can_bus.hpp"
#include "flexray/flexray_bus.hpp"
#include "os/ecu.hpp"
#include "rv/registry.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"
#include "validation/flow_analysis.hpp"
#include "vfb/deployment.hpp"
#include "vfb/model.hpp"
#include "vfb/rte.hpp"

namespace orte::vfb {

/// Design-time verdict over a generated deployment (§2: "prior to
/// implementation system configuration checks").
struct SystemAnalysis {
  bool schedulable = true;
  /// False when some task or PDU had no analyzable period/WCET (e.g. purely
  /// event-produced signals): the verdict then covers only the rest.
  bool complete = true;
  double bus_utilization = 0.0;
  std::map<std::string, sim::Duration> task_response;  ///< Worst case, ns.
  std::map<std::string, sim::Duration> pdu_response;   ///< Worst case, ns.
  /// Holistic end-to-end bound per contract latency assumption (the static
  /// half of the static/dynamic cross-check; the same bounds are recorded in
  /// each rv::LatencyMonitor's spec as `static_bound`).
  std::vector<validation::ChainBound> chain_bounds;
};

/// A generated, runnable distributed system.
class System {
 public:
  System(sim::Kernel& kernel, sim::Trace& trace, const Composition& model,
         DeploymentPlan plan);
  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Run the schedulability analyses over the deployment the generator just
  /// built: per-ECU response-time analysis of the generated tasks (WCET
  /// bounds from the runnables) and, on CAN, the Davis analysis of the
  /// generated PDUs. Call before start() to verify the configuration.
  [[nodiscard]] SystemAnalysis analyze() const;

  /// Start all ECUs, COM stacks and the bus; then advance simulated time.
  void start();
  void run_for(sim::Duration horizon);

  [[nodiscard]] os::Ecu& ecu(const std::string& name);
  [[nodiscard]] Rte& rte(const std::string& ecu_name);
  [[nodiscard]] bsw::Com& com(const std::string& ecu_name);
  [[nodiscard]] os::Task* task_of(const std::string& instance,
                                  sim::Duration period);
  [[nodiscard]] can::CanBus* can_bus() { return can_.get(); }
  [[nodiscard]] flexray::FlexRayBus* flexray_bus() { return flexray_.get(); }
  [[nodiscard]] const std::vector<std::string>& ecu_names() const {
    return ecu_names_;
  }
  /// Bus node index of an ECU's controller (== its index in ecu_names();
  /// controllers attach in that order), or -1 for an unknown name. Lets
  /// frame-level instrumentation (fault injection, per-node accounting)
  /// address "frames sent by ECU X" via net::Frame::source.
  [[nodiscard]] int node_of(const std::string& ecu_name) const;
  [[nodiscard]] std::size_t signal_count() const { return signal_count_; }

  // --- Runtime verification (rv layer) ---------------------------------------
  /// The monitor registry compiled from the model's bound contracts and the
  /// generated tasks; null when the plan disables runtime_verification. The
  /// registry arrives pre-populated (deadline monitors for every generated
  /// task, arrival/latency/automaton monitors from contracts) with the
  /// quarantine hook wired to this system's RTEs; callers attach escalation
  /// via monitors()->report_to(dem) / escalate_to(modes, ...).
  [[nodiscard]] rv::MonitorRegistry* monitors() { return registry_.get(); }
  /// Watchdog manager supervising an ECU's contract heartbeats, or null —
  /// built only when the plan sets alive_supervision (one per ECU hosting a
  /// periodic guarantee; see DeploymentPlan::alive_supervision).
  [[nodiscard]] bsw::WatchdogManager* watchdog(const std::string& ecu_name) {
    const auto it = watchdogs_.find(ecu_name);
    return it == watchdogs_.end() ? nullptr : it->second.get();
  }
  /// Drop all future port writes of `instance` at its RTE (containment
  /// reaction; see Rte::quarantine). Safe for any deployed instance.
  void quarantine(const std::string& instance);

 private:
  struct EcuCtx {
    std::unique_ptr<os::Ecu> ecu;
    std::unique_ptr<bsw::Com> com;
    std::unique_ptr<Rte> rte;
    net::Controller* controller = nullptr;
    std::map<std::string, int> partition_ids;
  };

  void build();
  void build_bus();
  void build_signals();
  void build_tasks();
  void build_monitors();
  /// Bind watchdog alive supervision from contract periods (the fail-
  /// silence detector; plan_.alive_supervision opt-in): per frame-sourcing
  /// ECU one WatchdogManager whose supervised entities are the resolved
  /// periodic-guarantee sender keys, checkpointed from their "rte.write" /
  /// "rte.quarantine_drop" records; expiries are reported into the rv
  /// registry as kind "alive" violations under the guaranteeing contract.
  void build_alive_supervision();
  /// Trace subjects ("rte.write" sender keys) a contract flow of `instance`
  /// resolves to; empty when the flow names nothing routable.
  std::vector<std::string> resolve_flow(const std::string& instance,
                                        const std::string& flow) const;
  /// Producer/receiver key pairs a required-port contract flow of `instance`
  /// resolves to: the producer's sender key ("rte.write" subject, also the
  /// blame target) and this instance's slot key ("rte.deliver" subject).
  /// Empty for provided-port or unroutable flows.
  struct FlowEndpoint {
    std::string producer_key;
    std::string receiver_key;
  };
  std::vector<FlowEndpoint> resolve_flow_endpoints(
      const std::string& instance, const std::string& flow) const;
  EcuCtx& ctx(const std::string& ecu_name);
  const InstanceDeployment& deployment(const std::string& instance) const;
  /// Summed WCET of the synchronous server operations `runnable` declares.
  sim::Duration inlined_wcet(const std::string& instance,
                             const Runnable& runnable) const;
  /// Smallest period of any runnable of `instance`'s type writing (port,
  /// element); kForever when none does.
  sim::Duration writer_period(const std::string& instance,
                              const std::string& port,
                              const std::string& element) const;

  sim::Kernel& kernel_;
  sim::Trace& trace_;
  const Composition& model_;
  DeploymentPlan plan_;

  std::map<std::string, EcuCtx> ecus_;
  std::vector<std::string> ecu_names_;
  std::unique_ptr<can::CanBus> can_;
  std::unique_ptr<flexray::FlexRayBus> flexray_;
  std::unique_ptr<rv::MonitorRegistry> registry_;
  /// ECU name -> its alive-supervision watchdog (empty without the opt-in).
  std::map<std::string, std::unique_ptr<bsw::WatchdogManager>> watchdogs_;
  /// Supervised sender key -> guaranteeing contract ("alive" violations).
  std::map<std::string, std::string, std::less<>> alive_contract_of_;
  /// Interned subject ID of a supervised key -> the watchdog to checkpoint.
  std::unordered_map<sim::TraceId, bsw::WatchdogManager*> checkpoint_routes_;
  std::size_t signal_count_ = 0;
  bool started_ = false;

  // --- Retained analysis model of the generated configuration ---------------
  struct AnalyzedTask {
    std::string name;
    std::string ecu;
    sim::Duration period = 0;  ///< 0 = event-activated (not analyzable here).
    sim::Duration wcet = 0;
    int priority = 0;
  };
  struct AnalyzedPdu {
    std::string name;
    std::uint32_t frame_id = 0;
    std::size_t bytes = 0;
    sim::Duration period = 0;  ///< 0 = event-produced.
  };
  std::vector<AnalyzedTask> analyzed_tasks_;
  std::vector<AnalyzedPdu> analyzed_pdus_;
  /// Holistic end-to-end bounds, one per contract latency assumption
  /// (validation::analyze_chains over the generated deployment).
  std::vector<validation::ChainBound> chain_bounds_;
};

}  // namespace orte::vfb
