// Per-ECU Runtime Environment: "the run-time implementation of the Virtual
// Functional Bus on a specific ECU" (§2).
//
// The RTE routes every port write to its connected receivers: same-ECU
// connections become in-memory copies (plus data-received activations),
// cross-ECU connections become COM signal transmissions. It also implements
// the two AUTOSAR access semantics:
//  * implicit — a runnable sees a stable snapshot taken when it starts and
//    publishes its outputs only when it completes,
//  * explicit — reads/writes touch the live values immediately.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "bsw/com.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"
#include "vfb/model.hpp"

namespace orte::vfb {

class Rte;

/// The API surface a runnable's behavior sees (Rte_Read/Rte_Write/Rte_Call).
class RunnableContext {
 public:
  /// Read a data element through a required port. Implicit accesses return
  /// the snapshot captured at runnable start; queued elements pop FIFO.
  std::uint64_t read(std::string_view port, std::string_view element);
  /// Write a data element through a provided port. Implicit accesses are
  /// published at runnable completion; explicit ones immediately.
  void write(std::string_view port, std::string_view element,
             std::uint64_t value);
  /// Synchronous client-server call through a required port.
  std::uint64_t call(std::string_view port, std::string_view operation,
                     std::uint64_t argument);
  [[nodiscard]] sim::Time now() const;
  [[nodiscard]] const std::string& instance() const { return *instance_; }

 private:
  friend class Rte;
  RunnableContext(Rte& rte, const std::string& instance,
                  const Runnable& runnable)
      : rte_(&rte), instance_(&instance), runnable_(&runnable) {}

  Rte* rte_;
  const std::string* instance_;
  const Runnable* runnable_;
};

class Rte {
 public:
  /// Default bound of a queued receiver slot (AUTOSAR queue length).
  static constexpr std::size_t kDefaultQueueLength = 16;

  Rte(sim::Kernel& kernel, sim::Trace& trace, const Composition& composition,
      std::string ecu_name);
  Rte(const Rte&) = delete;
  Rte& operator=(const Rte&) = delete;

  static std::string key(std::string_view instance, std::string_view port,
                         std::string_view element);

  // --- Wiring (called by the System generator) ------------------------------
  /// Same-ECU connection: writes to `sender` propagate to `receiver`.
  /// For queued receivers, `queue_length` bounds the slot queue (0 =
  /// unbounded) and `overflow` picks the full-queue semantics.
  void add_local_route(const std::string& sender_key,
                       const std::string& receiver_key, bool queued,
                       std::uint64_t init,
                       std::size_t queue_length = kDefaultQueueLength,
                       QueueOverflow overflow = QueueOverflow::kReject);
  /// Cross-ECU connection: writes to `sender` go out as a COM signal.
  void add_remote_route(const std::string& sender_key, bsw::Com& com,
                        std::string signal);
  /// Declare a receiver slot fed from the network (COM rx side).
  void add_remote_receiver(const std::string& receiver_key, bool queued,
                           std::uint64_t init,
                           std::size_t queue_length = kDefaultQueueLength,
                           QueueOverflow overflow = QueueOverflow::kReject);
  /// Network delivery entry point (wired to Com::on_signal).
  void deliver(const std::string& receiver_key, std::uint64_t value);
  /// Run `cb` whenever `receiver_key` is updated (data-received activation).
  void on_update(const std::string& receiver_key, std::function<void()> cb);

  // --- Execution (called from generated task segments) ----------------------
  /// Snapshot all implicit-read accesses of the runnable (segment start).
  void capture_implicit(const std::string& instance, const Runnable& runnable);
  /// Execute the behavior and publish implicit writes (segment end).
  void run_behavior(const std::string& instance, const Runnable& runnable);

  // --- Fault injection (fi layer) --------------------------------------------
  /// Interceptor over every outbound port write, consulted at the publish
  /// choke point BEFORE quarantine filtering and routing. It may rewrite the
  /// value in place (corruption, stuck-at) or return false to swallow the
  /// write entirely (fail-silent crash) — swallowed writes are counted and
  /// traced as "rte.fault_drop". One interceptor per RTE; pass {} to clear.
  using WriteInterceptor =
      std::function<bool(std::string_view sender_key, std::uint64_t& value)>;
  void intercept_writes(WriteInterceptor hook) {
    write_interceptor_ = std::move(hook);
  }
  /// Writes swallowed by the interceptor since construction.
  [[nodiscard]] std::uint64_t intercepted_drops() const {
    return intercepted_drops_;
  }

  // --- Health management (graceful degradation, §1/§4) -----------------------
  /// Quarantine an instance: its port writes are dropped at the RTE instead
  /// of propagating (local routes and COM transmissions alike), so receivers
  /// keep their last good value / init — the "fail silent at the component
  /// boundary" containment reaction. Each drop emits an "rte.quarantine_drop"
  /// trace record. Reads, calls, and already-delivered values are unaffected.
  void quarantine(const std::string& instance);
  /// Lift a quarantine (e.g. after a recovery mode transition).
  void release(const std::string& instance);
  [[nodiscard]] bool is_quarantined(std::string_view instance) const;
  /// Writes suppressed by quarantine since construction.
  [[nodiscard]] std::uint64_t quarantined_drops() const {
    return quarantined_drops_;
  }

  // --- Introspection ---------------------------------------------------------
  [[nodiscard]] std::uint64_t writes() const { return writes_; }
  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t calls() const { return calls_; }
  /// Values lost to full receiver queues (rejected or displaced).
  [[nodiscard]] std::uint64_t overflows() const { return overflows_; }
  [[nodiscard]] const std::string& ecu_name() const { return ecu_name_; }
  /// Live value of a receiver slot (testing/diagnosis).
  [[nodiscard]] std::uint64_t peek(const std::string& receiver_key) const;

 private:
  friend class RunnableContext;

  struct Slot {
    std::uint64_t value = 0;  ///< Last-is-best slots only; init for queued.
    /// Data-element name (last key segment), kept so runtime trace records
    /// name the element a diagnosis (V3/V4 rules) talks about directly.
    std::string element;
    bool queued = false;
    std::deque<std::uint64_t> queue;
    std::size_t queue_limit = kDefaultQueueLength;  ///< 0 = unbounded.
    QueueOverflow overflow = QueueOverflow::kReject;
    sim::Time last_update = -1;
  };

  std::uint64_t context_read(const std::string& instance,
                             const Runnable& runnable, std::string_view port,
                             std::string_view element);
  void context_write(const std::string& instance, const Runnable& runnable,
                     std::string_view port, std::string_view element,
                     std::uint64_t value);
  std::uint64_t context_call(const std::string& instance,
                             std::string_view port, std::string_view operation,
                             std::uint64_t argument);
  void publish(const std::string& sender_key, std::uint64_t value);
  const DataAccess* find_access(const Runnable& runnable,
                                std::string_view port,
                                std::string_view element) const;

  sim::Kernel& kernel_;
  sim::Trace& trace_;
  const Composition& composition_;
  std::string ecu_name_;

  std::map<std::string, Slot> slots_;  ///< Receiver-side caches.
  std::map<std::string, std::vector<std::string>> local_routes_;
  struct RemoteRoute {
    bsw::Com* com = nullptr;
    std::string signal;
  };
  std::map<std::string, std::vector<RemoteRoute>> remote_routes_;
  std::map<std::string, std::vector<std::function<void()>>> update_hooks_;
  /// Implicit snapshot/outbox per "instance/runnable".
  std::map<std::string, std::map<std::string, std::uint64_t>> implicit_in_;
  std::map<std::string, std::map<std::string, std::uint64_t>> implicit_out_;

  std::set<std::string, std::less<>> quarantined_;
  WriteInterceptor write_interceptor_;
  std::uint64_t intercepted_drops_ = 0;

  std::uint64_t writes_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t calls_ = 0;
  std::uint64_t overflows_ = 0;
  std::uint64_t quarantined_drops_ = 0;
};

}  // namespace orte::vfb
