// Execution-time fault injectors for the timing-isolation experiments.
//
// The paper's §1 scenario: "protecting the tasks of each IP from the
// functional and timing errors of other IPs". These helpers build the
// *timing errors*: WCET overruns confined to a window, stochastic execution
// jitter, and permanent crashes (zero work).
#pragma once

#include <functional>

#include "sim/kernel.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace orte::isolation {

/// Execution time that overruns by `factor` during [from, until), nominal
/// `base` otherwise. factor 3.0 = task runs 3x its contract.
std::function<sim::Duration()> overrunning_wcet(const sim::Kernel& kernel,
                                                sim::Duration base,
                                                double factor, sim::Time from,
                                                sim::Time until);

/// Execution time uniformly distributed in [base*(1-jitter), base].
/// (WCET is the upper bound: real executions undershoot it.)
std::function<sim::Duration()> jittery_wcet(sim::Rng& rng, sim::Duration base,
                                            double jitter_fraction);

/// Fail-silent from `from` on: executes nominally before, then zero work
/// (models a crashed supplier whose task still gets dispatched).
std::function<sim::Duration()> crashing_wcet(const sim::Kernel& kernel,
                                             sim::Duration base,
                                             sim::Time from);

}  // namespace orte::isolation
