// Containment monitor: classifies trace events per subject so experiments can
// separate aggressor damage from victim damage (error containment = victims
// unaffected while the aggressor is sanctioned).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "sim/trace.hpp"

namespace orte::isolation {

class ContainmentMonitor {
 public:
  /// Subscribes to the trace; only events from subscription time on count.
  explicit ContainmentMonitor(sim::Trace& trace);

  [[nodiscard]] std::uint64_t deadline_misses(std::string_view task) const;
  [[nodiscard]] std::uint64_t kills(std::string_view task) const;
  [[nodiscard]] std::uint64_t activations_lost(std::string_view task) const;
  [[nodiscard]] std::uint64_t total_deadline_misses() const;
  /// Deadline misses of every task except `aggressor` (victim damage).
  [[nodiscard]] std::uint64_t victim_misses(std::string_view aggressor) const;

 private:
  std::map<std::string, std::uint64_t> misses_;
  std::map<std::string, std::uint64_t> kills_;
  std::map<std::string, std::uint64_t> lost_;
};

}  // namespace orte::isolation
