// Containment monitor: classifies trace events per subject so experiments can
// separate aggressor damage from victim damage (error containment = victims
// unaffected while the aggressor is sanctioned).
//
// Implemented over the trace's incremental count index rather than a
// listener: construction snapshots the per-subject counts as a baseline and
// every query is "current index minus baseline". Semantics are unchanged
// (only events from subscription time on count) but the monitor adds zero
// per-record cost — the first consumer of the rv-style counting index.
// Baselines are keyed by interned subject ID (stable for the trace's
// lifetime), so queries compare integers, never strings.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>

#include "sim/trace.hpp"

namespace orte::isolation {

class ContainmentMonitor {
 public:
  /// Snapshots the trace's counts; only events from this point on count.
  explicit ContainmentMonitor(const sim::Trace& trace);

  [[nodiscard]] std::uint64_t deadline_misses(std::string_view task) const;
  [[nodiscard]] std::uint64_t kills(std::string_view task) const;
  [[nodiscard]] std::uint64_t activations_lost(std::string_view task) const;
  [[nodiscard]] std::uint64_t total_deadline_misses() const;
  /// Deadline misses of every task except `aggressor` (victim damage).
  [[nodiscard]] std::uint64_t victim_misses(std::string_view aggressor) const;

 private:
  using Baseline = std::unordered_map<sim::TraceId, std::uint64_t>;

  std::uint64_t delta(std::string_view category, const Baseline& baseline,
                      std::string_view subject) const;

  const sim::Trace* trace_;
  Baseline misses_at_start_;
  Baseline kills_at_start_;
  Baseline lost_at_start_;
  std::uint64_t total_misses_at_start_ = 0;
};

}  // namespace orte::isolation
