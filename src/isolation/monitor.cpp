#include "isolation/monitor.hpp"

namespace orte::isolation {

ContainmentMonitor::ContainmentMonitor(sim::Trace& trace) {
  trace.subscribe([this](const sim::TraceRecord& rec) {
    if (rec.category == "task.deadline_miss") {
      ++misses_[rec.subject];
    } else if (rec.category == "task.kill") {
      ++kills_[rec.subject];
    } else if (rec.category == "task.activation_lost") {
      ++lost_[rec.subject];
    }
  });
}

std::uint64_t ContainmentMonitor::deadline_misses(std::string_view task) const {
  auto it = misses_.find(std::string(task));
  return it == misses_.end() ? 0 : it->second;
}

std::uint64_t ContainmentMonitor::kills(std::string_view task) const {
  auto it = kills_.find(std::string(task));
  return it == kills_.end() ? 0 : it->second;
}

std::uint64_t ContainmentMonitor::activations_lost(
    std::string_view task) const {
  auto it = lost_.find(std::string(task));
  return it == lost_.end() ? 0 : it->second;
}

std::uint64_t ContainmentMonitor::total_deadline_misses() const {
  std::uint64_t n = 0;
  for (const auto& [task, count] : misses_) n += count;
  return n;
}

std::uint64_t ContainmentMonitor::victim_misses(
    std::string_view aggressor) const {
  std::uint64_t n = 0;
  for (const auto& [task, count] : misses_) {
    if (task.find(aggressor) == std::string::npos) n += count;
  }
  return n;
}

}  // namespace orte::isolation
