#include "isolation/monitor.hpp"

#include <string>

namespace orte::isolation {

namespace {
constexpr std::string_view kMiss = "task.deadline_miss";
constexpr std::string_view kKill = "task.kill";
constexpr std::string_view kLost = "task.activation_lost";
}  // namespace

ContainmentMonitor::ContainmentMonitor(const sim::Trace& trace)
    : trace_(&trace), total_misses_at_start_(trace.count(kMiss)) {
  const auto snapshot = [&trace](std::string_view category, Baseline& out) {
    for (const auto& [subject_id, count] :
         trace.subject_counts_by_id(trace.category_id(category))) {
      out.emplace(subject_id, count);
    }
  };
  snapshot(kMiss, misses_at_start_);
  snapshot(kKill, kills_at_start_);
  snapshot(kLost, lost_at_start_);
}

std::uint64_t ContainmentMonitor::delta(std::string_view category,
                                        const Baseline& baseline,
                                        std::string_view subject) const {
  // Category/subject IDs are resolved per query (not cached at
  // construction): the watched names may be interned only by emissions
  // that happen after this monitor started.
  const sim::TraceId subj = trace_->subject_id(subject);
  if (subj == sim::kNoTraceId) return 0;
  const std::uint64_t now = trace_->count(trace_->category_id(category), subj);
  auto it = baseline.find(subj);
  return now - (it == baseline.end() ? 0 : it->second);
}

std::uint64_t ContainmentMonitor::deadline_misses(std::string_view task) const {
  return delta(kMiss, misses_at_start_, task);
}

std::uint64_t ContainmentMonitor::kills(std::string_view task) const {
  return delta(kKill, kills_at_start_, task);
}

std::uint64_t ContainmentMonitor::activations_lost(
    std::string_view task) const {
  return delta(kLost, lost_at_start_, task);
}

std::uint64_t ContainmentMonitor::total_deadline_misses() const {
  return trace_->count(kMiss) - total_misses_at_start_;
}

std::uint64_t ContainmentMonitor::victim_misses(
    std::string_view aggressor) const {
  std::uint64_t n = 0;
  for (const auto& [task_id, count] :
       trace_->subject_counts_by_id(trace_->category_id(kMiss))) {
    if (trace_->subject_name(task_id).find(aggressor) !=
        std::string_view::npos) {
      continue;
    }
    auto it = misses_at_start_.find(task_id);
    n += count - (it == misses_at_start_.end() ? 0 : it->second);
  }
  return n;
}

}  // namespace orte::isolation
